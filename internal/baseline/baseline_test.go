package baseline

import (
	"math/rand"
	"reflect"
	"testing"

	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// paperGraph is the Figure 5 graph (see core's example test).
func paperGraph() *graph.Graph {
	g := graph.New(3)
	g.AddEdge(0, "subClassOf_r", 0)
	g.AddEdge(0, "type_r", 1)
	g.AddEdge(1, "type_r", 2)
	g.AddEdge(2, "subClassOf", 0)
	g.AddEdge(2, "type", 2)
	return g
}

const paperCNF = `
S -> S1 S5
S -> S3 S6
S -> S1 S2
S -> S3 S4
S5 -> S S2
S6 -> S S4
S1 -> subClassOf_r
S2 -> subClassOf
S3 -> type_r
S4 -> type
`

func TestHellingsPaperExample(t *testing.T) {
	cnf := grammar.MustParseCNF(paperCNF)
	rel := Hellings(paperGraph(), cnf)
	want := map[string][]matrix.Pair{
		"S":  {{I: 0, J: 0}, {I: 0, J: 2}, {I: 1, J: 2}},
		"S1": {{I: 0, J: 0}},
		"S2": {{I: 2, J: 0}},
		"S3": {{I: 0, J: 1}, {I: 1, J: 2}},
		"S4": {{I: 2, J: 2}},
		"S5": {{I: 0, J: 0}, {I: 1, J: 0}},
		"S6": {{I: 0, J: 2}, {I: 1, J: 2}},
	}
	for nt, pairs := range want {
		if got := rel[nt]; !reflect.DeepEqual(got, pairs) {
			t.Errorf("R_%s = %v, want %v", nt, got, pairs)
		}
	}
}

func TestGLLPaperExample(t *testing.T) {
	// GLL runs on the original Figure 3 grammar (no CNF needed).
	g := grammar.MustParse(`
		S -> subClassOf_r S subClassOf
		S -> type_r S type
		S -> subClassOf_r subClassOf
		S -> type_r type
	`)
	got := NewGLL(g).Relation(paperGraph(), "S")
	want := []matrix.Pair{{I: 0, J: 0}, {I: 0, J: 2}, {I: 1, J: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("R_S = %v, want %v", got, want)
	}
}

func TestGLLDyck(t *testing.T) {
	g := grammar.MustParse("S -> a S b | a b")
	gll := NewGLL(g)
	for _, tc := range []struct {
		word []string
		want bool
	}{
		{[]string{"a", "b"}, true},
		{[]string{"a", "a", "b", "b"}, true},
		{[]string{"a", "b", "b"}, false},
	} {
		wg := graph.Word(tc.word)
		rel := gll.Relation(wg, "S")
		has := false
		for _, p := range rel {
			if p.I == 0 && p.J == len(tc.word) {
				has = true
			}
		}
		if has != tc.want {
			t.Errorf("word %v: recognised=%v, want %v", tc.word, has, tc.want)
		}
	}
}

func TestGLLEpsilonGivesReflexivePairs(t *testing.T) {
	g := grammar.MustParse("S -> a S | eps")
	rel := NewGLL(g).Relation(graph.Chain(3, "a"), "S")
	// ε gives (v,v) for all v; a-prefixes give (i,j) for i<j.
	want := []matrix.Pair{
		{I: 0, J: 0}, {I: 0, J: 1}, {I: 0, J: 2},
		{I: 1, J: 1}, {I: 1, J: 2},
		{I: 2, J: 2},
	}
	if !reflect.DeepEqual(rel, want) {
		t.Errorf("R_S = %v, want %v", rel, want)
	}
}

func TestGLLUnknownStart(t *testing.T) {
	g := grammar.MustParse("S -> a")
	if rel := NewGLL(g).Relation(graph.Chain(2, "a"), "Zed"); rel != nil {
		t.Errorf("unknown start: %v", rel)
	}
}

func TestGLLLeftRecursion(t *testing.T) {
	// Left recursion is the acid test for GLL (recursive descent loops
	// forever; GLL's GSS merges the contexts).
	g := grammar.MustParse("S -> S a | a")
	rel := NewGLL(g).Relation(graph.Chain(4, "a"), "S")
	want := []matrix.Pair{
		{I: 0, J: 1}, {I: 0, J: 2}, {I: 0, J: 3},
		{I: 1, J: 2}, {I: 1, J: 3},
		{I: 2, J: 3},
	}
	if !reflect.DeepEqual(rel, want) {
		t.Errorf("R_S = %v, want %v", rel, want)
	}
}

func TestGLLOnCycle(t *testing.T) {
	// a-cycle of length 3 with S → S a | a: every pair reachable.
	g := grammar.MustParse("S -> S a | a")
	rel := NewGLL(g).Relation(graph.Cycle(3, "a"), "S")
	if len(rel) != 9 {
		t.Errorf("|R_S| = %d, want 9 (all pairs)", len(rel))
	}
}

func TestHellingsAndGLLAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	grams := []string{
		"S -> a S b | a b",
		"S -> S S | a",
		"S -> A B\nA -> a | a A\nB -> b | b B",
		paperCNF,
	}
	labels := []string{"a", "b", "subClassOf", "subClassOf_r", "type", "type_r"}
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(10)
		g := graph.Random(rng, n, 3*n, labels)
		for gi, src := range grams {
			gram := grammar.MustParse(src)
			cnf := grammar.MustCNF(gram)
			hel := Hellings(g, cnf)
			gll := NewGLL(gram).Relation(g, "S")
			if !reflect.DeepEqual(hel["S"], gll) {
				t.Fatalf("trial %d grammar %d: Hellings %v vs GLL %v",
					trial, gi, hel["S"], gll)
			}
		}
	}
}

func TestHellingsEmptyGraph(t *testing.T) {
	cnf := grammar.MustParseCNF("S -> a b")
	rel := Hellings(graph.New(0), cnf)
	if len(rel["S"]) != 0 {
		t.Errorf("R_S on empty graph = %v", rel["S"])
	}
}
