package baseline

import (
	"sort"

	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// GLL evaluates R_start with a GLL-style parser generalised from strings to
// graphs, following Grigorev & Ragozina: descriptors (grammar slot, GSS
// node, graph node) are processed from a worklist; a graph-structured stack
// (GSS) merges the call contexts of every top-down expansion of a
// non-terminal at a graph node; pops are memoised so contexts arriving
// after a non-terminal instance already finished are replayed.
//
// Unlike the matrix engine, GLL runs on the original grammar — no CNF
// needed — and naturally handles ε-productions, so (v, v) pairs appear for
// nullable start symbols. It computes only the queried non-terminal's
// relation, which is exactly what the paper's GLL baseline does.
//
// Implementation notes: non-terminals, slots and GSS nodes are interned to
// dense integers; a descriptor is a packed uint64 (slot | gss | node), so
// the hot de-duplication set is a single map[uint64]struct{}.
type GLL struct {
	g *grammar.Grammar

	ntNames []string
	ntIndex map[string]int

	// Flat production list; prodsOf[nt] indexes into it.
	prods   []flatProd
	prodsOf [][]int

	// Slots: one per (production, dot) pair, dot in [0, len(rhs)].
	slotBase []int // prods[i] occupies slots [slotBase[i], slotBase[i]+len(rhs)]
	numSlots int
}

type flatProd struct {
	lhs int
	rhs []gllSym
}

type gllSym struct {
	nt       int // valid when !terminal
	label    string
	terminal bool
}

// NewGLL prepares a GLL evaluator for the grammar.
func NewGLL(g *grammar.Grammar) *GLL {
	e := &GLL{g: g, ntIndex: map[string]int{}}
	intern := func(name string) int {
		if i, ok := e.ntIndex[name]; ok {
			return i
		}
		i := len(e.ntNames)
		e.ntNames = append(e.ntNames, name)
		e.ntIndex[name] = i
		return i
	}
	for _, p := range g.Productions {
		intern(p.Lhs)
		for _, s := range p.Rhs {
			if !s.Terminal {
				intern(s.Name)
			}
		}
	}
	e.prodsOf = make([][]int, len(e.ntNames))
	for _, p := range g.Productions {
		lhs := e.ntIndex[p.Lhs]
		rhs := make([]gllSym, len(p.Rhs))
		for i, s := range p.Rhs {
			if s.Terminal {
				rhs[i] = gllSym{label: s.Name, terminal: true}
			} else {
				rhs[i] = gllSym{nt: e.ntIndex[s.Name]}
			}
		}
		e.prodsOf[lhs] = append(e.prodsOf[lhs], len(e.prods))
		e.prods = append(e.prods, flatProd{lhs: lhs, rhs: rhs})
	}
	e.slotBase = make([]int, len(e.prods))
	for i, p := range e.prods {
		e.slotBase[i] = e.numSlots
		e.numSlots += len(p.rhs) + 1
	}
	return e
}

// gssEdge is a caller waiting on a GSS node: continue at slot `ret` in
// caller context `to`.
type gssEdge struct {
	ret int
	to  int32
}

// Relation computes R_start = {(m, n) | ∃ m π n, l(π) ∈ L(G_start)} over
// the graph, seeding a parse of start at every node. The result is sorted.
func (e *GLL) Relation(g *graph.Graph, start string) []matrix.Pair {
	startNT, ok := e.ntIndex[start]
	if !ok || len(e.prodsOf[startNT]) == 0 {
		return nil
	}
	n := g.Nodes()
	adj := graph.NewAdjacency(g)

	// GSS nodes are (nt, node) pairs, addressed densely.
	gssID := func(nt int, node int32) int32 { return int32(nt)*int32(n) + node }
	gssNode := func(id int32) int32 { return id % int32(n) }
	gssNT := func(id int32) int { return int(id) / n }

	numGSS := len(e.ntNames) * n
	gssEdges := make([][]gssEdge, numGSS)
	popped := make([][]int32, numGSS)
	scheduled := make([]bool, numGSS)

	type descriptor struct {
		slot int32
		gss  int32
		node int32
	}
	// Descriptors pack into one word — slot in the high bits, then GSS id,
	// then node, 20 bits each — when everything fits; otherwise a
	// struct-keyed set is used. 2²⁰ covers graphs up to ~10⁶ nodes.
	pack := func(d descriptor) uint64 {
		return uint64(d.slot)<<40 | uint64(d.gss)<<20 | uint64(d.node)
	}
	usePacked := n < 1<<20 && numGSS < 1<<20 && e.numSlots < 1<<20
	seenPacked := map[uint64]struct{}{}
	seenStruct := map[descriptor]struct{}{}
	var work []descriptor
	push := func(d descriptor) {
		if usePacked {
			k := pack(d)
			if _, ok := seenPacked[k]; ok {
				return
			}
			seenPacked[k] = struct{}{}
		} else {
			if _, ok := seenStruct[d]; ok {
				return
			}
			seenStruct[d] = struct{}{}
		}
		work = append(work, d)
	}

	results := matrix.NewSparse(n)

	pop := func(u int32, node int32) {
		for _, p := range popped[u] {
			if p == node {
				return
			}
		}
		popped[u] = append(popped[u], node)
		if gssNT(u) == startNT {
			results.Set(int(gssNode(u)), int(node))
		}
		for _, ge := range gssEdges[u] {
			push(descriptor{slot: int32(ge.ret), gss: ge.to, node: node})
		}
	}

	schedule := func(v int32) {
		if scheduled[v] {
			return
		}
		scheduled[v] = true
		for _, pi := range e.prodsOf[gssNT(v)] {
			push(descriptor{slot: int32(e.slotBase[pi]), gss: v, node: gssNode(v)})
		}
	}

	create := func(nt int, node int32, retSlot int, u int32) int32 {
		v := gssID(nt, node)
		edge := gssEdge{ret: retSlot, to: u}
		for _, ge := range gssEdges[v] {
			if ge == edge {
				return v
			}
		}
		gssEdges[v] = append(gssEdges[v], edge)
		for _, p := range popped[v] {
			push(descriptor{slot: int32(retSlot), gss: u, node: p})
		}
		return v
	}

	// slotProd[slot] = production index; computed once.
	slotProd := make([]int32, e.numSlots)
	slotDot := make([]int32, e.numSlots)
	for pi := range e.prods {
		for dot := 0; dot <= len(e.prods[pi].rhs); dot++ {
			slotProd[e.slotBase[pi]+dot] = int32(pi)
			slotDot[e.slotBase[pi]+dot] = int32(dot)
		}
	}

	// Seed a parse of start at every node.
	for v := 0; v < n; v++ {
		schedule(gssID(startNT, int32(v)))
	}

	for len(work) > 0 {
		d := work[len(work)-1]
		work = work[:len(work)-1]
		pi := slotProd[d.slot]
		dot := int(slotDot[d.slot])
		p := &e.prods[pi]
		if dot >= len(p.rhs) {
			pop(d.gss, d.node)
			continue
		}
		sym := p.rhs[dot]
		if sym.terminal {
			for _, edge := range adj.Out(int(d.node)) {
				if edge.Label == sym.label {
					push(descriptor{slot: d.slot + 1, gss: d.gss, node: int32(edge.To)})
				}
			}
			continue
		}
		callee := create(sym.nt, d.node, int(d.slot)+1, d.gss)
		schedule(callee)
	}

	if results.Nnz() == 0 {
		return nil
	}
	pairs := matrix.Pairs(results)
	sort.Slice(pairs, func(x, y int) bool {
		if pairs[x].I != pairs[y].I {
			return pairs[x].I < pairs[y].I
		}
		return pairs[x].J < pairs[y].J
	})
	return pairs
}
