// Package baseline implements the CFPQ algorithms the paper compares
// against: the worklist algorithm of Hellings ("Conjunctive context-free
// path queries", 2014) and a GLL-based evaluator in the style of Grigorev &
// Ragozina ("Context-Free Path Querying with Structural Representation of
// Result", 2016). Both serve as independent correctness oracles for the
// matrix engine and as benchmark baselines.
package baseline

import (
	"sort"

	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// Hellings computes every context-free relation R_A of the CNF grammar on
// the graph with the classic worklist (dynamic transitive closure)
// algorithm. The result maps non-terminal name → sorted pair list.
//
// The algorithm maintains the invariant that every derived triple (A, u, v)
// is justified by a path; new triples are produced by joining a popped
// triple with already-known triples on the left and on the right through
// every binary rule.
func Hellings(g *graph.Graph, cnf *grammar.CNF) map[string][]matrix.Pair {
	n := g.Nodes()
	nn := cnf.NonterminalCount()

	// has[a*n+u] = set of v with (A, u, v) derived.
	has := make([]map[int32]bool, nn*n)
	// inv[a*n+v] = list of u with (A, u, v) derived (for left-joins).
	inv := make([][]int32, nn*n)

	type triple struct {
		a    int32
		u, v int32
	}
	var work []triple

	add := func(a, u, v int32) {
		idx := int(a)*n + int(u)
		if has[idx] == nil {
			has[idx] = map[int32]bool{}
		}
		if has[idx][v] {
			return
		}
		has[idx][v] = true
		inv[int(a)*n+int(v)] = append(inv[int(a)*n+int(v)], u)
		work = append(work, triple{a, u, v})
	}

	for t, as := range cnf.TermRules {
		for _, e := range g.EdgesWithLabel(t) {
			for _, a := range as {
				add(int32(a), int32(e.From), int32(e.To))
			}
		}
	}

	// Rules indexed by their B and C components.
	type ac struct{ a, other int32 }
	byB := make([][]ac, nn)
	byC := make([][]ac, nn)
	for _, r := range cnf.Binary {
		byB[r.B] = append(byB[r.B], ac{int32(r.A), int32(r.C)})
		byC[r.C] = append(byC[r.C], ac{int32(r.A), int32(r.B)})
	}

	for len(work) > 0 {
		t := work[len(work)-1]
		work = work[:len(work)-1]
		// t = (B, u, v); for A → B C and (C, v, w): add (A, u, w).
		for _, rc := range byB[t.a] {
			for w := range has[int(rc.other)*n+int(t.v)] {
				add(rc.a, t.u, w)
			}
		}
		// t = (C, u, v); for A → B C and (B, w, u): add (A, w, v).
		for _, rb := range byC[t.a] {
			for _, w := range inv[int(rb.other)*n+int(t.u)] {
				add(rb.a, w, t.v)
			}
		}
	}

	out := make(map[string][]matrix.Pair, nn)
	for a := 0; a < nn; a++ {
		var pairs []matrix.Pair
		for u := 0; u < n; u++ {
			for v := range has[a*n+u] {
				pairs = append(pairs, matrix.Pair{I: u, J: int(v)})
			}
		}
		sort.Slice(pairs, func(x, y int) bool {
			if pairs[x].I != pairs[y].I {
				return pairs[x].I < pairs[y].I
			}
			return pairs[x].J < pairs[y].J
		})
		out[cnf.Names[a]] = pairs
	}
	return out
}
