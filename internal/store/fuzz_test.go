// Native fuzz target for WAL crash recovery. Like the rest of the fuzz
// suite it is gated on go1.18 (native fuzzing) and runs only its seed
// corpus under plain `go test`.
//
// Run with:
//
//	go test -fuzz=FuzzWALReplay -fuzztime=30s ./internal/store

//go:build go1.18

package store

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at the WAL reader and checks the
// recovery contract: no panic, the recovered prefix is a valid frame
// boundary, replaying the truncated prefix is a fixpoint (recovery is
// idempotent), and re-encoding the recovered batches reproduces the
// prefix byte for byte (no silent record mangling).
func FuzzWALReplay(f *testing.F) {
	seed := func(batches ...walBatch) []byte {
		var buf bytes.Buffer
		for _, b := range batches {
			if _, err := appendFrame(&buf, b.kind, b.recs); err != nil {
				f.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add(seed(walBatch{kind: recTokens, recs: []EdgeRecord{{From: "a", Label: "x", To: "b"}}}))
	f.Add(seed(
		walBatch{kind: recTokens, recs: []EdgeRecord{{From: "0", Label: "loves", To: "1"}, {From: "n\n", Label: "x", To: "%"}}},
		walBatch{kind: recIDs, recs: []EdgeRecord{{From: "4", Label: "y", To: "17"}}},
	))
	f.Add(append(seed(walBatch{kind: recTokens, recs: []EdgeRecord{{From: "a", Label: "x", To: "b"}}}), 0xde, 0xad, 0xbe)) // torn tail
	// collect adapts the streaming replay back to a slice for the
	// invariant checks; production callers consume one batch at a time.
	collect := func(data []byte) ([]walBatch, int64, error) {
		var batches []walBatch
		good, err := replayWAL(bytes.NewReader(data), func(b walBatch, frameBytes int64) error {
			if frameBytes <= 0 {
				return fmt.Errorf("frame of %d bytes", frameBytes)
			}
			batches = append(batches, b)
			return nil
		})
		return batches, good, err
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		batches, good, err := collect(data)
		if err != nil {
			t.Fatalf("in-memory replay reported I/O error: %v", err)
		}
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("goodBytes %d outside [0,%d]", good, len(data))
		}
		// Idempotence: replaying the recovered prefix yields the same
		// batches and consumes the whole prefix.
		again, good2, err := collect(data[:good])
		if err != nil {
			t.Fatal(err)
		}
		if good2 != good || !reflect.DeepEqual(again, batches) {
			t.Fatalf("recovery not idempotent: %d/%d bytes, %v vs %v", good2, good, again, batches)
		}
		// Round trip: re-encoding the recovered batches reproduces the
		// recovered prefix exactly.
		var re bytes.Buffer
		for _, b := range batches {
			if _, err := appendFrame(&re, b.kind, b.recs); err != nil {
				t.Fatalf("re-encoding recovered batch: %v", err)
			}
		}
		if !bytes.Equal(re.Bytes(), data[:good]) {
			t.Fatalf("re-encoded prefix differs from recovered prefix")
		}
	})
}
