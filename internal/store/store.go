// Package store is the durable storage subsystem behind cfpqd's
// persistent mode: a versioned on-disk layout holding graph snapshots,
// registered grammars and evaluated closure indexes, plus an append-only
// write-ahead log (WAL) of edge additions — so a restarted service
// warm-starts from saved state instead of re-loading graphs and re-running
// every closure.
//
// # Layout
//
//	<dir>/
//	    MANIFEST                              store magic + format version
//	    grammars/<name>.grammar               registered grammar texts
//	    graphs/<name>/
//	        snapshot                          graph + node names at baseSeq (CRC-trailed)
//	        wal                               CRC-framed AddEdges batches after baseSeq
//	        epoch                             edge-stream identity (minted at create/replace)
//	        indexes/<grammar>@<backend>.idx   evaluated index at a seq watermark
//
// Registry names are escaped for the filesystem (see encodeName); every
// snapshot artifact carries a CRC trailer and is written atomically
// (temp + fsync + rename + dir fsync), and WAL appends fsync per batch
// unless Options.NoSync relaxes that for tests.
//
// # Sequencing and recovery
//
// Each graph has a monotonically increasing seq: the number of edges ever
// journaled for it. The snapshot records baseSeq (edges folded in), each
// index file records the seq its relations cover, and WAL frames carry the
// edges of (baseSeq, seq]. Open replays the WAL over the snapshot,
// truncating at the first torn or corrupt frame — a crash mid-append loses
// at most the batch being written, never earlier records. An index whose
// watermark is behind the final seq is patched forward by the caller with
// the incremental delta closure (EdgesSince supplies the exact tail while
// it is still in the WAL; older indexes are repaired by re-seeding with
// the full edge set), so recovery never re-runs a closure from scratch.
//
// # Compaction
//
// A long WAL makes recovery slow; Compact folds a graph's WAL into a
// fresh snapshot of the store's in-memory mirror and truncates the log.
// Index files survive compaction untouched: their seq watermark stays
// meaningful because the repair path above covers watermarks older than
// the snapshot base. A background goroutine compacts any graph whose WAL
// exceeds Options.CompactBytes.
package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cfpq/internal/core"
	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// ErrNotFound marks lookups of graphs, grammars or indexes the store does
// not hold.
var ErrNotFound = errors.New("not found in store")

const (
	manifestName    = "MANIFEST"
	manifestContent = "CFPQSTORE v1\n"
	grammarsDir     = "grammars"
	graphsDir       = "graphs"
	indexesDir      = "indexes"
	grammarExt      = ".grammar"
	indexExt        = ".idx"
)

// Options tunes a Store.
type Options struct {
	// NoSync disables fsync after WAL appends and snapshot writes. Only
	// tests and benchmarks should set it: a crash can then lose
	// acknowledged records.
	NoSync bool
	// CompactBytes is the WAL size above which the background compactor
	// folds a graph's log into a fresh snapshot. 0 means the 4 MiB
	// default; negative disables background compaction (Compact can still
	// be called explicitly).
	CompactBytes int64
	// RetainFor is how long a follower's tail reservation (ReserveTail)
	// keeps the background compactor away from WAL records the follower
	// has not streamed yet. 0 means the 30 s default; a follower that
	// goes silent longer than this stops holding compaction back and
	// re-bootstraps from the snapshot instead. Explicit Compact/Snapshot
	// calls ignore reservations.
	RetainFor time.Duration
}

const (
	defaultCompactBytes = 4 << 20
	defaultRetainFor    = 30 * time.Second
)

// Store is an open on-disk store. It is safe for concurrent use; every
// graph carries its own lock, so appends to different graphs proceed in
// parallel.
type Store struct {
	dir  string
	opts Options

	mu     sync.Mutex
	graphs map[string]*graphLog

	compactCh chan string
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// watchCh is the change-broadcast channel: closed and replaced on
	// every append and registry change, so replication long-polls wake
	// without busy-waiting. Guarded by watchMu.
	watchMu sync.Mutex
	watchCh chan struct{}

	// reservations tracks follower tail positions per graph (graph name →
	// follower id → reservation), so background compaction retains WAL
	// tails an attached follower still needs. Guarded by resMu.
	resMu        sync.Mutex
	reservations map[string]map[string]reservation

	// configVersion counts registry changes (graph created/replaced,
	// grammar saved). Followers compare it across polls to detect that
	// the leader's registry drifted and a manifest re-sync is due.
	configVersion atomic.Uint64

	appends     atomic.Int64
	snapshots   atomic.Int64
	compactions atomic.Int64
	walWritten  atomic.Int64 // WAL bytes written this session
	fsyncs      atomic.Int64 // WAL fsyncs issued this session
	replayed    atomic.Int64 // WAL records replayed at Open
	recovered   atomic.Int64 // bytes truncated from torn WAL tails at Open

	// fsyncObs, when set, observes every append-path WAL fsync's latency —
	// the serving layer's fsync-latency histogram hook (SetFsyncObserver).
	fsyncObs atomic.Pointer[func(time.Duration)]
}

// SetFsyncObserver installs a callback invoked with the wall time of every
// WAL fsync issued on the append path. The serving layer feeds its fsync
// latency histogram through it; nil removes the observer. Safe to call
// while the store is serving.
func (s *Store) SetFsyncObserver(fn func(d time.Duration)) {
	if fn == nil {
		s.fsyncObs.Store(nil)
		return
	}
	s.fsyncObs.Store(&fn)
}

// reservation is one follower's replication position on one graph.
type reservation struct {
	seq  uint64
	seen time.Time
}

// graphLog is one graph's durable state: the open WAL plus an in-memory
// mirror (graph, name table, seq) maintained from snapshot + replay +
// appends, from which snapshots and compactions are written without
// consulting the serving layer.
type graphLog struct {
	mu   sync.Mutex
	name string
	dir  string
	wal  *os.File

	g       *graph.Graph
	names   []string // node id → name ("" = unnamed)
	nameIDs map[string]int

	baseSeq  uint64       // seq covered by the on-disk snapshot
	seq      uint64       // seq after the last record
	epoch    uint64       // edge-stream identity; changes when the graph is replaced
	pending  []graph.Edge // id-resolved edges of (baseSeq, seq]
	tail     []TailBatch  // the WAL batches of (baseSeq, seq], original tokens kept for replication
	walSize  int64
	snapTime time.Time
}

// TailBatch is one WAL batch as the replication stream ships it: the
// records of the seq range (Seq-len(Recs), Seq], the resolution kind a
// follower's replay must use, and the frame's size in WAL bytes (the unit
// replication lag-in-bytes is measured in).
type TailBatch struct {
	Seq   uint64
	Kind  RecordKind
	Recs  []EdgeRecord
	Bytes int64
}

// Open opens (creating if needed) a store rooted at dir and recovers its
// state: every graph's snapshot is loaded and its WAL replayed, with torn
// tails truncated to the last good record.
func Open(dir string, opts Options) (*Store, error) {
	if opts.CompactBytes == 0 {
		opts.CompactBytes = defaultCompactBytes
	}
	if opts.RetainFor == 0 {
		opts.RetainFor = defaultRetainFor
	}
	for _, d := range []string{dir, filepath.Join(dir, grammarsDir), filepath.Join(dir, graphsDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	manifest := filepath.Join(dir, manifestName)
	if raw, err := os.ReadFile(manifest); err == nil {
		if string(raw) != manifestContent {
			return nil, fmt.Errorf("store: %s is not a version-1 cfpq store (manifest %q)", dir, raw)
		}
	} else if os.IsNotExist(err) {
		if werr := writeFileAtomic(manifest, !opts.NoSync, func(w io.Writer) error {
			_, err := io.WriteString(w, manifestContent)
			return err
		}); werr != nil {
			return nil, werr
		}
	} else {
		return nil, err
	}

	s := &Store{
		dir:          dir,
		opts:         opts,
		graphs:       map[string]*graphLog{},
		compactCh:    make(chan string, 64),
		closed:       make(chan struct{}),
		watchCh:      make(chan struct{}),
		reservations: map[string]map[string]reservation{},
	}
	entries, err := os.ReadDir(filepath.Join(dir, graphsDir))
	if err != nil {
		return nil, err
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		name, err := decodeName(ent.Name())
		if err != nil {
			return nil, fmt.Errorf("store: undecodable graph directory %q: %v", ent.Name(), err)
		}
		gl, err := s.openGraphLog(name)
		if err != nil {
			return nil, fmt.Errorf("store: recovering graph %q: %w", name, err)
		}
		s.graphs[name] = gl
	}
	s.wg.Add(1)
	go s.compactor()
	return s, nil
}

// openGraphLog loads one graph's snapshot, replays and truncates its WAL,
// and leaves the WAL open for appending.
func (s *Store) openGraphLog(name string) (*graphLog, error) {
	gdir := filepath.Join(s.dir, graphsDir, encodeName(name))
	raw, err := os.ReadFile(filepath.Join(gdir, "snapshot"))
	if err != nil {
		return nil, err
	}
	g, names, baseSeq, err := readSnapshot(raw)
	if err != nil {
		return nil, err
	}
	st, err := os.Stat(filepath.Join(gdir, "snapshot"))
	if err != nil {
		return nil, err
	}
	epoch, ok := readEpochFile(gdir)
	if !ok {
		// Pre-epoch store layout (or a lost epoch file): mint one now. It
		// persists from here on, so followers attached to this graph keep a
		// stable stream identity across restarts.
		epoch = mintEpoch()
		if err := writeEpochFile(gdir, epoch, !s.opts.NoSync); err != nil {
			return nil, err
		}
	}
	gl := &graphLog{
		name:     name,
		dir:      gdir,
		g:        g,
		names:    names,
		nameIDs:  invertNames(names),
		baseSeq:  baseSeq,
		seq:      baseSeq,
		epoch:    epoch,
		snapTime: st.ModTime(),
	}
	wal, err := os.OpenFile(filepath.Join(gdir, "wal"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	// Streamed replay: each decoded batch is folded into the mirror as it
	// is read, so opening a graph holds one batch in memory at a time, not
	// the whole WAL.
	goodBytes, err := replayWAL(wal, func(b walBatch, frameBytes int64) error {
		gl.apply(b, frameBytes)
		s.replayed.Add(int64(len(b.recs)))
		return nil
	})
	if err != nil {
		wal.Close()
		return nil, err
	}
	if size, err := wal.Seek(0, io.SeekEnd); err != nil {
		wal.Close()
		return nil, err
	} else if size > goodBytes {
		// Torn tail: truncate to the last good frame so future appends
		// start on a clean boundary.
		s.recovered.Add(size - goodBytes)
		if err := wal.Truncate(goodBytes); err != nil {
			wal.Close()
			return nil, err
		}
		if !s.opts.NoSync {
			if err := wal.Sync(); err != nil {
				wal.Close()
				return nil, err
			}
		}
	}
	if _, err := wal.Seek(goodBytes, io.SeekStart); err != nil {
		wal.Close()
		return nil, err
	}
	gl.wal = wal
	gl.walSize = goodBytes
	return gl, nil
}

// invertNames builds the token→id table from the id→name slice.
func invertNames(names []string) map[string]int {
	out := make(map[string]int)
	for id, name := range names {
		if name != "" {
			out[name] = id
		}
	}
	return out
}

// resolveToken maps a node token to an id against the mirror, interning
// new names and growing the node range for out-of-range numeric ids — the
// rules the serving layer's own interning follows, so replay reproduces
// the exact id assignment of the original mutations.
func (gl *graphLog) resolveToken(tok string) int {
	if id, ok := gl.nameIDs[tok]; ok {
		return id
	}
	if id, err := strconv.Atoi(tok); err == nil && id >= 0 {
		if id >= gl.g.Nodes() {
			gl.g.EnsureNode(id)
			gl.syncNames()
		}
		return id
	}
	id := gl.g.Nodes()
	gl.g.EnsureNode(id)
	gl.syncNames()
	gl.names[id] = tok
	gl.nameIDs[tok] = id
	return id
}

// resolveID maps a canonical decimal id token (validated at decode/append
// time) straight to its id, never consulting the name table: an
// id-addressed writer means id 7 even when some node is *named* "7".
func (gl *graphLog) resolveID(tok string) int {
	id, _ := strconv.Atoi(tok)
	if id >= gl.g.Nodes() {
		gl.g.EnsureNode(id)
		gl.syncNames()
	}
	return id
}

// syncNames keeps the name slice as long as the node range.
func (gl *graphLog) syncNames() {
	for len(gl.names) < gl.g.Nodes() {
		gl.names = append(gl.names, "")
	}
}

// apply folds one decoded frame into the mirror, advancing seq, and keeps
// the original tokens in the replication tail so followers can be served
// the exact frame the leader journaled. frameBytes is the frame's on-disk
// size (replication lag in bytes is computed from these).
func (gl *graphLog) apply(b walBatch, frameBytes int64) {
	resolve := gl.resolveToken
	if b.kind == recIDs {
		resolve = gl.resolveID
	}
	for _, r := range b.recs {
		from, to := resolve(r.From), resolve(r.To)
		gl.g.AddEdge(from, r.Label, to)
		gl.syncNames()
		gl.pending = append(gl.pending, graph.Edge{From: from, Label: r.Label, To: to})
	}
	gl.seq += uint64(len(b.recs))
	gl.tail = append(gl.tail, TailBatch{Seq: gl.seq, Kind: RecordKind(b.kind), Recs: b.recs, Bytes: frameBytes})
}

// lookup returns the graphLog for a registered graph.
func (s *Store) lookup(name string) (*graphLog, error) {
	s.mu.Lock()
	gl := s.graphs[name]
	s.mu.Unlock()
	if gl == nil {
		return nil, fmt.Errorf("store: graph %q: %w", name, ErrNotFound)
	}
	return gl, nil
}

// CreateGraph installs (or replaces) a graph: a fresh directory with a
// full snapshot at seq 0 and an empty WAL. Replacing drops the previous
// snapshot, WAL and every saved index (their node-id namespace died with
// the old graph). names maps node id → name and may be nil.
func (s *Store) CreateGraph(name string, g *graph.Graph, names []string) error {
	return s.CreateGraphAt(name, g, names, 0, 0)
}

// CreateGraphAt is CreateGraph with an explicit starting seq and stream
// epoch: the snapshot records that its edges cover the stream's first seq
// records. A follower bootstrapping from a leader snapshot passes the
// leader's seq and epoch so its local edge-stream position and identity
// line up with the leader's WAL; epoch 0 mints a fresh identity (the
// leader/standalone case).
func (s *Store) CreateGraphAt(name string, g *graph.Graph, names []string, seq, epoch uint64) error {
	if name == "" {
		return fmt.Errorf("store: empty graph name")
	}
	gdir := filepath.Join(s.dir, graphsDir, encodeName(name))
	s.mu.Lock()
	old := s.graphs[name]
	s.mu.Unlock()
	if old != nil {
		old.mu.Lock()
		defer old.mu.Unlock()
		if old.wal != nil {
			old.wal.Close()
			old.wal = nil
		}
	}
	if err := os.RemoveAll(gdir); err != nil {
		return err
	}
	if err := os.MkdirAll(gdir, 0o755); err != nil {
		return err
	}
	if epoch == 0 {
		epoch = mintEpoch()
	}
	mirror := g.Clone()
	mnames := make([]string, mirror.Nodes())
	copy(mnames, names)
	gl := &graphLog{
		name:     name,
		dir:      gdir,
		g:        mirror,
		names:    mnames,
		nameIDs:  invertNames(mnames),
		baseSeq:  seq,
		seq:      seq,
		epoch:    epoch,
		snapTime: time.Now(),
	}
	if err := writeFileAtomic(filepath.Join(gdir, "snapshot"), !s.opts.NoSync, func(w io.Writer) error {
		return writeSnapshot(w, gl.g, gl.names, seq)
	}); err != nil {
		return err
	}
	if err := writeEpochFile(gdir, epoch, !s.opts.NoSync); err != nil {
		return err
	}
	wal, err := os.OpenFile(filepath.Join(gdir, "wal"), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	gl.wal = wal
	if !s.opts.NoSync {
		if err := syncDir(gdir); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.graphs[name] = gl
	s.mu.Unlock()
	s.snapshots.Add(1)
	s.configVersion.Add(1)
	s.changed()
	return nil
}

// Append journals one batch of edges for a graph: the frame is written
// and fsynced (the write-ahead contract — callers apply the mutation
// in memory only after Append returns), the in-memory mirror advances,
// and the new seq is returned. Batches from concurrent callers serialise
// per graph.
func (s *Store) Append(name string, recs []EdgeRecord) (uint64, error) {
	return s.append(name, recTokens, recs, -1)
}

// ErrSeqMismatch marks a replicated append whose batch does not start at
// the graph's current edge-stream position — the local copy diverged from
// the leader's stream and must re-bootstrap from a snapshot.
var ErrSeqMismatch = errors.New("store: replicated batch out of sequence")

// AppendReplicated journals one batch received from a replication stream,
// preserving the leader's resolution kind. endSeq is the leader's seq
// after the batch; the append is rejected with ErrSeqMismatch unless the
// batch lands exactly at the graph's current position, so a follower can
// never silently skip or double-apply records.
func (s *Store) AppendReplicated(name string, kind RecordKind, recs []EdgeRecord, endSeq uint64) error {
	if !kind.Valid() {
		return fmt.Errorf("store: unknown WAL record kind %d", byte(kind))
	}
	if uint64(len(recs)) > endSeq {
		return fmt.Errorf("store: batch of %d records cannot end at seq %d: %w", len(recs), endSeq, ErrSeqMismatch)
	}
	_, err := s.append(name, byte(kind), recs, int64(endSeq)-int64(len(recs)))
	return err
}

// append journals one batch. expectStart ≥ 0 demands the batch start
// exactly at that seq (the replicated-apply contract); -1 skips the check.
func (s *Store) append(name string, kind byte, recs []EdgeRecord, expectStart int64) (uint64, error) {
	gl, err := s.lookup(name)
	if err != nil {
		return 0, err
	}
	if len(recs) == 0 {
		gl.mu.Lock()
		defer gl.mu.Unlock()
		return gl.seq, nil
	}
	for _, r := range recs {
		if r.Label == "" || r.From == "" || r.To == "" {
			// Empty node tokens are rejected for the same reason the
			// frame decoder treats them as corruption: an empty name
			// cannot round-trip through the snapshot's name table.
			return 0, fmt.Errorf("store: record %+v has an empty token", r)
		}
	}
	gl.mu.Lock()
	defer gl.mu.Unlock()
	if gl.wal == nil {
		return 0, fmt.Errorf("store: graph %q: WAL unavailable (store closed or failed)", name)
	}
	if expectStart >= 0 && gl.seq != uint64(expectStart) {
		return 0, fmt.Errorf("store: graph %q: batch starts at seq %d but the log is at %d: %w",
			name, expectStart, gl.seq, ErrSeqMismatch)
	}
	n, err := appendFrame(gl.wal, kind, recs)
	if err != nil {
		gl.rewindOrFail()
		return 0, err
	}
	if !s.opts.NoSync {
		syncStart := time.Now()
		//lint:allow cfpqlint/lockscope durability protocol: the fsync MUST complete under the per-graph log lock before the append is acknowledged
		if err := gl.wal.Sync(); err != nil {
			// The frame's bytes may or may not have reached disk; either
			// way the caller is told the batch failed, so the frame must
			// not survive to be replayed. Discard it (or fail the log).
			gl.rewindOrFail()
			return 0, err
		}
		s.fsyncs.Add(1)
		if obs := s.fsyncObs.Load(); obs != nil {
			(*obs)(time.Since(syncStart))
		}
	}
	gl.walSize += n
	gl.apply(walBatch{kind: kind, recs: recs}, n)
	s.appends.Add(1)
	s.walWritten.Add(n)
	if s.opts.CompactBytes > 0 && gl.walSize > s.opts.CompactBytes {
		select {
		case s.compactCh <- name:
		default:
		}
	}
	seq := gl.seq
	s.changed()
	return seq, nil
}

// rewindOrFail discards a partially persisted frame by truncating the WAL
// back to the last acknowledged byte. If even that fails the log is
// closed (fail-stop): stacking new frames after an unacknowledged one
// would make recovery silently discard acknowledged records that follow
// the tear, which is worse than rejecting writes. Callers hold gl.mu.
func (gl *graphLog) rewindOrFail() {
	if pos, err := gl.wal.Seek(gl.walSize, io.SeekStart); err == nil && pos == gl.walSize {
		if gl.wal.Truncate(gl.walSize) == nil {
			return
		}
	}
	gl.wal.Close()
	gl.wal = nil
}

// Log is an append handle bound to one graph, satisfying the cfpq
// package's Prepared WAL interface: id-addressed edges are journaled as
// decimal tokens.
type Log struct {
	s    *Store
	name string
}

// Log returns the append handle for a graph. Attach at most one mutating
// writer per graph: the WAL is a single edge stream and replay assumes one
// interning history.
func (s *Store) Log(name string) *Log { return &Log{s: s, name: name} }

// AppendEdges journals id-addressed edges. The frames are marked as such,
// so replay resolves the endpoints as ids even when a node's *name* is a
// numeral.
func (l *Log) AppendEdges(edges []graph.Edge) error {
	recs := make([]EdgeRecord, len(edges))
	for i, e := range edges {
		if e.From < 0 || e.To < 0 {
			return fmt.Errorf("store: negative node in edge %+v", e)
		}
		recs[i] = EdgeRecord{
			From:  strconv.Itoa(e.From),
			Label: e.Label,
			To:    strconv.Itoa(e.To),
		}
	}
	_, err := l.s.append(l.name, recIDs, recs, -1)
	return err
}

// IndexData is one evaluated index to persist alongside a snapshot: the
// CFPQIDX2 bytes of a closure over the graph's first Seq edges.
type IndexData struct {
	Grammar string
	Backend string
	Seq     uint64
	Data    []byte
}

// Snapshot folds a graph's WAL into a fresh snapshot of the mirror and
// truncates the log; the optional indexes are written alongside. Appends
// to the graph block for the duration, so the snapshot is consistent: it
// covers exactly the records the truncation discards.
func (s *Store) Snapshot(name string, indexes []IndexData) error {
	gl, err := s.lookup(name)
	if err != nil {
		return err
	}
	gl.mu.Lock()
	defer gl.mu.Unlock()
	if gl.wal == nil {
		return fmt.Errorf("store: graph %q: store closed", name)
	}
	for _, ix := range indexes {
		if err := s.saveIndexLocked(gl, ix); err != nil {
			return err
		}
	}
	if err := writeFileAtomic(filepath.Join(gl.dir, "snapshot"), !s.opts.NoSync, func(w io.Writer) error {
		return writeSnapshot(w, gl.g, gl.names, gl.seq)
	}); err != nil {
		return err
	}
	//lint:allow cfpqlint/lockscope compaction swaps the WAL under the per-graph log lock; appends must not interleave with the truncate
	if err := gl.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := gl.wal.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if !s.opts.NoSync {
		//lint:allow cfpqlint/lockscope compaction fsync, same protocol: the truncated WAL must be durable before new appends are accepted
		if err := gl.wal.Sync(); err != nil {
			return err
		}
	}
	gl.baseSeq = gl.seq
	gl.pending = nil
	gl.tail = nil
	gl.walSize = 0
	gl.snapTime = time.Now()
	s.snapshots.Add(1)
	// Followers parked on the truncated tail wake, see their position fall
	// behind the new base and re-bootstrap from the fresh snapshot.
	s.changed()
	return nil
}

// Compact is Snapshot without fresh index data: the WAL is folded into
// the graph snapshot and existing index files stay as they are (recovery
// repairs indexes whose watermark predates the new snapshot base).
func (s *Store) Compact(name string) error {
	err := s.Snapshot(name, nil)
	if err == nil {
		s.compactions.Add(1)
	}
	return err
}

// compactor is the background goroutine folding oversized WALs.
func (s *Store) compactor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.closed:
			return
		case name := <-s.compactCh:
			if s.compactEligible(name) {
				// Best effort: a failed background compaction leaves the
				// WAL long but the store correct; the next append re-arms.
				_ = s.Compact(name)
			}
		}
	}
}

// compactEligible reports whether the background compactor should fold a
// graph's WAL now: the log is oversized AND no live follower reservation
// still needs its tail. A follower that keeps up never blocks compaction
// (its reservation sits at the head); one that stalls holds it back for at
// most Options.RetainFor, after which the leader compacts anyway and the
// follower re-bootstraps from the snapshot. Explicit Compact/Snapshot
// calls skip this check entirely — they always signal "snapshot required"
// to lagging followers rather than silently diverge.
func (s *Store) compactEligible(name string) bool {
	gl, err := s.lookup(name)
	if err != nil {
		return false
	}
	gl.mu.Lock()
	oversized := gl.walSize > s.opts.CompactBytes
	seq := gl.seq
	gl.mu.Unlock()
	if !oversized {
		return false
	}
	return !s.tailNeeded(name, seq, time.Now())
}

// tailNeeded reports whether a live reservation still trails the head of
// the graph's stream; expired reservations are pruned as a side effect.
func (s *Store) tailNeeded(name string, headSeq uint64, now time.Time) bool {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	needed := false
	for id, r := range s.reservations[name] {
		if now.Sub(r.seen) > s.opts.RetainFor {
			delete(s.reservations[name], id)
			continue
		}
		if r.seq < headSeq {
			needed = true
		}
	}
	return needed
}

// ReserveTail records a follower's replication position on a graph. The
// background compactor retains WAL records past seq while the reservation
// is fresh (Options.RetainFor); followers refresh it with every poll.
func (s *Store) ReserveTail(name, follower string, seq uint64) {
	if follower == "" {
		return
	}
	s.resMu.Lock()
	defer s.resMu.Unlock()
	m := s.reservations[name]
	if m == nil {
		m = map[string]reservation{}
		s.reservations[name] = m
	}
	m[follower] = reservation{seq: seq, seen: time.Now()}
}

// FollowerInfo is one follower's reservation, for replication status.
type FollowerInfo struct {
	ID         string  `json:"id"`
	Graph      string  `json:"graph"`
	AckedSeq   uint64  `json:"acked_seq"`
	AgeSeconds float64 `json:"age_seconds"`
}

// TailReservations lists live follower reservations across all graphs,
// sorted by (graph, follower id). Expired entries are pruned.
func (s *Store) TailReservations() []FollowerInfo {
	now := time.Now()
	s.resMu.Lock()
	defer s.resMu.Unlock()
	var out []FollowerInfo
	for name, m := range s.reservations {
		for id, r := range m {
			if now.Sub(r.seen) > s.opts.RetainFor {
				delete(m, id)
				continue
			}
			out = append(out, FollowerInfo{ID: id, Graph: name, AckedSeq: r.seq, AgeSeconds: now.Sub(r.seen).Seconds()})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Graph != out[j].Graph {
			return out[i].Graph < out[j].Graph
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// changed wakes everything parked on Changed().
func (s *Store) changed() {
	s.watchMu.Lock()
	close(s.watchCh)
	s.watchCh = make(chan struct{})
	s.watchMu.Unlock()
}

// Changed returns a channel closed at the next store change — a WAL
// append, snapshot, graph creation or grammar save. Long-poll handlers
// park on it instead of busy-polling; after it fires, call again for the
// next generation.
func (s *Store) Changed() <-chan struct{} {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	return s.watchCh
}

// ConfigVersion counts registry changes (graphs created or replaced,
// grammars saved) this session. Replication polls carry it so followers
// notice registry drift and re-sync their manifest; it intentionally
// resets across restarts — a spurious re-sync is idempotent and cheap.
func (s *Store) ConfigVersion() uint64 { return s.configVersion.Load() }

// GraphSeq returns a graph's current edge-stream position.
func (s *Store) GraphSeq(name string) (uint64, error) {
	gl, err := s.lookup(name)
	if err != nil {
		return 0, err
	}
	gl.mu.Lock()
	defer gl.mu.Unlock()
	return gl.seq, nil
}

// GraphPos returns a graph's current edge-stream position together with
// the stream's epoch — the pair replication positions are expressed in.
func (s *Store) GraphPos(name string) (seq, epoch uint64, err error) {
	gl, err := s.lookup(name)
	if err != nil {
		return 0, 0, err
	}
	gl.mu.Lock()
	defer gl.mu.Unlock()
	return gl.seq, gl.epoch, nil
}

// mintEpoch produces a fresh edge-stream identity. Wall-clock nanoseconds
// are unique enough here: two epochs only need to differ when one graph
// replaces another, which cannot happen twice in the same nanosecond.
func mintEpoch() uint64 { return uint64(time.Now().UnixNano()) }

// readEpochFile loads a graph directory's persisted stream identity.
func readEpochFile(gdir string) (uint64, bool) {
	raw, err := os.ReadFile(filepath.Join(gdir, "epoch"))
	if err != nil {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	return v, true
}

func writeEpochFile(gdir string, epoch uint64, sync bool) error {
	return writeFileAtomic(filepath.Join(gdir, "epoch"), sync, func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%d\n", epoch)
		return err
	})
}

// ReplicaSnapshot serialises a consistent snapshot of a graph's mirror at
// its current seq — the bootstrap payload a leader serves to followers —
// along with the stream position and epoch it captures. Unlike Snapshot it
// does not touch the on-disk state or the WAL.
func (s *Store) ReplicaSnapshot(name string) (data []byte, seq, epoch uint64, err error) {
	gl, err := s.lookup(name)
	if err != nil {
		return nil, 0, 0, err
	}
	gl.mu.Lock()
	defer gl.mu.Unlock()
	var buf bytes.Buffer
	if err := writeSnapshot(&buf, gl.g, gl.names, gl.seq); err != nil {
		return nil, 0, 0, err
	}
	return buf.Bytes(), gl.seq, gl.epoch, nil
}

// DecodeSnapshot decodes a snapshot produced by ReplicaSnapshot (the same
// CRC-trailed format the on-disk graph snapshots use) into the graph, its
// id→name table and the seq the snapshot covers.
func DecodeSnapshot(raw []byte) (*graph.Graph, []string, uint64, error) {
	return readSnapshot(raw)
}

// TailSince returns up to maxBytes worth of WAL batches after seq, the
// graph's current head seq, and the tail bytes remaining beyond the
// returned batches. ok is false when the position cannot be served — seq
// predates the snapshot base (compacted away), overshoots the head (the
// graph was replaced), or splits a batch — and the caller must re-bootstrap
// from a snapshot instead of silently diverging. maxBytes ≤ 0 means
// unbounded; at least one batch is always returned when any is pending.
func (s *Store) TailSince(name string, seq uint64, maxBytes int64) (batches []TailBatch, headSeq uint64, remainingBytes int64, ok bool) {
	gl, err := s.lookup(name)
	if err != nil {
		return nil, 0, 0, false
	}
	gl.mu.Lock()
	defer gl.mu.Unlock()
	if seq < gl.baseSeq || seq > gl.seq {
		return nil, gl.seq, 0, false
	}
	start := -1
	for i, b := range gl.tail {
		batchStart := b.Seq - uint64(len(b.Recs))
		if batchStart == seq {
			start = i
			break
		}
		if batchStart > seq {
			// seq falls inside a batch: frames are atomic, so this position
			// was never a valid stream point.
			return nil, gl.seq, 0, false
		}
	}
	if start < 0 {
		if seq != gl.seq {
			return nil, gl.seq, 0, false
		}
		return nil, gl.seq, 0, true // caught up
	}
	var taken int64
	i := start
	for ; i < len(gl.tail); i++ {
		b := gl.tail[i]
		if len(batches) > 0 && maxBytes > 0 && taken+b.Bytes > maxBytes {
			break // the stream is contiguous: nothing after the first cut ships
		}
		recs := make([]EdgeRecord, len(b.Recs))
		copy(recs, b.Recs)
		batches = append(batches, TailBatch{Seq: b.Seq, Kind: b.Kind, Recs: recs, Bytes: b.Bytes})
		taken += b.Bytes
	}
	for ; i < len(gl.tail); i++ {
		remainingBytes += gl.tail[i].Bytes
	}
	return batches, gl.seq, remainingBytes, true
}

// SaveIndex persists one evaluated index for (graph, grammar, backend):
// CFPQIDX2 payload bytes covering the graph's first seq edges.
func (s *Store) SaveIndex(graphName, grammarName, backend string, seq uint64, data []byte) error {
	gl, err := s.lookup(graphName)
	if err != nil {
		return err
	}
	gl.mu.Lock()
	defer gl.mu.Unlock()
	return s.saveIndexLocked(gl, IndexData{Grammar: grammarName, Backend: backend, Seq: seq, Data: data})
}

func (s *Store) saveIndexLocked(gl *graphLog, ix IndexData) error {
	dir := filepath.Join(gl.dir, indexesDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, encodeName(ix.Grammar)+"@"+ix.Backend+indexExt)
	return writeFileAtomic(path, !s.opts.NoSync, func(w io.Writer) error {
		return writeIndexFile(w, ix.Seq, ix.Data)
	})
}

// DropGrammarIndexes removes every saved index built for the named
// grammar, across all graphs. A serving layer calls this when a grammar is
// replaced: the old indexes' relations would otherwise warm-start under
// the new grammar's name if the non-terminal sets happen to match.
func (s *Store) DropGrammarIndexes(grammarName string) error {
	s.mu.Lock()
	logs := make([]*graphLog, 0, len(s.graphs))
	for _, gl := range s.graphs {
		logs = append(logs, gl)
	}
	s.mu.Unlock()
	prefix := encodeName(grammarName) + "@"
	var first error
	for _, gl := range logs {
		gl.mu.Lock()
		entries, err := os.ReadDir(filepath.Join(gl.dir, indexesDir))
		if err != nil && !os.IsNotExist(err) && first == nil {
			first = err
		}
		for _, ent := range entries {
			if strings.HasPrefix(ent.Name(), prefix) && strings.HasSuffix(ent.Name(), indexExt) {
				if err := os.Remove(filepath.Join(gl.dir, indexesDir, ent.Name())); err != nil && first == nil {
					first = err
				}
			}
		}
		gl.mu.Unlock()
	}
	return first
}

// SaveGrammar persists a registered grammar's text.
func (s *Store) SaveGrammar(name, text string) error {
	if name == "" {
		return fmt.Errorf("store: empty grammar name")
	}
	path := filepath.Join(s.dir, grammarsDir, encodeName(name)+grammarExt)
	if err := writeFileAtomic(path, !s.opts.NoSync, func(w io.Writer) error {
		_, err := io.WriteString(w, text)
		return err
	}); err != nil {
		return err
	}
	s.configVersion.Add(1)
	s.changed()
	return nil
}

// Grammars returns every persisted grammar, name → source text.
func (s *Store) Grammars() (map[string]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, grammarsDir))
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), grammarExt) {
			continue
		}
		name, err := decodeName(strings.TrimSuffix(ent.Name(), grammarExt))
		if err != nil {
			return nil, err
		}
		raw, err := os.ReadFile(filepath.Join(s.dir, grammarsDir, ent.Name()))
		if err != nil {
			return nil, err
		}
		out[name] = string(raw)
	}
	return out, nil
}

// GraphNames lists recovered graphs, sorted.
func (s *Store) GraphNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.graphs))
	for name := range s.graphs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// GraphState returns an independent copy of a graph's recovered state —
// the graph, its id→name table and its current seq — safe to hand to a
// serving layer that will mutate it.
func (s *Store) GraphState(name string) (*graph.Graph, []string, uint64, error) {
	gl, err := s.lookup(name)
	if err != nil {
		return nil, nil, 0, err
	}
	gl.mu.Lock()
	defer gl.mu.Unlock()
	names := make([]string, len(gl.names))
	copy(names, gl.names)
	return gl.g.Clone(), names, gl.seq, nil
}

// EdgesSince returns the id-resolved edges journaled after seq, provided
// they are still in the WAL (seq at or above the snapshot base). A false
// second result means the tail was compacted away and the caller must
// repair from the full edge set instead.
func (s *Store) EdgesSince(name string, seq uint64) ([]graph.Edge, bool) {
	gl, err := s.lookup(name)
	if err != nil {
		return nil, false
	}
	gl.mu.Lock()
	defer gl.mu.Unlock()
	if seq < gl.baseSeq || seq > gl.seq {
		return nil, false
	}
	tail := gl.pending[seq-gl.baseSeq:]
	out := make([]graph.Edge, len(tail))
	copy(out, tail)
	return out, true
}

// IndexInfo names one saved index and its seq watermark.
type IndexInfo struct {
	Graph   string
	Grammar string
	Backend string
	Seq     uint64
}

// Indexes lists the saved indexes of a graph, sorted by (grammar,
// backend). Only the fixed-size header (magic + seq) of each file is
// read — payload CRC validation happens at LoadIndex — so the listing
// stays cheap under the graph lock no matter how large the indexes are.
// Files with unreadable headers are skipped: a lost index only costs a
// rebuild.
func (s *Store) Indexes(name string) []IndexInfo {
	gl, err := s.lookup(name)
	if err != nil {
		return nil
	}
	gl.mu.Lock()
	defer gl.mu.Unlock()
	return indexInfosLocked(gl)
}

func indexInfosLocked(gl *graphLog) []IndexInfo {
	entries, err := os.ReadDir(filepath.Join(gl.dir, indexesDir))
	if err != nil {
		return nil
	}
	var out []IndexInfo
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), indexExt) {
			continue
		}
		base := strings.TrimSuffix(ent.Name(), indexExt)
		at := strings.LastIndex(base, "@")
		if at < 0 {
			continue
		}
		gname, err := decodeName(base[:at])
		if err != nil {
			continue
		}
		seq, err := readIndexFileHeader(filepath.Join(gl.dir, indexesDir, ent.Name()))
		if err != nil {
			continue
		}
		out = append(out, IndexInfo{Graph: gl.name, Grammar: gname, Backend: base[at+1:], Seq: seq})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Grammar != out[j].Grammar {
			return out[i].Grammar < out[j].Grammar
		}
		return out[i].Backend < out[j].Backend
	})
	return out
}

// LoadIndex reads one saved index, validated against the CNF it was built
// for and materialised with the given backend (nil means the backend
// recorded in the CFPQIDX2 payload). The returned seq is the edge-stream
// position the index covers.
func (s *Store) LoadIndex(info IndexInfo, cnf *grammar.CNF, be matrix.Backend) (*core.Index, uint64, error) {
	gl, err := s.lookup(info.Graph)
	if err != nil {
		return nil, 0, err
	}
	gl.mu.Lock()
	path := filepath.Join(gl.dir, indexesDir, encodeName(info.Grammar)+"@"+info.Backend+indexExt)
	raw, err := os.ReadFile(path)
	gl.mu.Unlock()
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, fmt.Errorf("store: index %s@%s for graph %q: %w", info.Grammar, info.Backend, info.Graph, ErrNotFound)
		}
		return nil, 0, err
	}
	seq, payload, err := readIndexFile(raw)
	if err != nil {
		return nil, 0, err
	}
	ix, err := core.ReadIndex(strings.NewReader(string(payload)), cnf, be)
	if err != nil {
		return nil, 0, err
	}
	return ix, seq, nil
}

// GraphStats describes one graph's durable state.
type GraphStats struct {
	Graph    string `json:"graph"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`
	Seq      uint64 `json:"seq"`
	BaseSeq  uint64 `json:"base_seq"`
	WALBytes int64  `json:"wal_bytes"`
	// SnapshotAgeSeconds is the age of the on-disk snapshot file.
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	Indexes            int     `json:"indexes"`
}

// Stats summarises the store.
type Stats struct {
	Dir      string       `json:"dir"`
	Graphs   []GraphStats `json:"graphs"`
	Grammars int          `json:"grammars"`
	// Appends counts WAL batches written this session; WALBytes the bytes
	// across all live WALs; WALWritten the bytes written this session;
	// WALFsyncs the fsyncs issued for WAL appends this session.
	Appends    int64 `json:"appends"`
	WALBytes   int64 `json:"wal_bytes"`
	WALWritten int64 `json:"wal_written"`
	WALFsyncs  int64 `json:"wal_fsyncs"`
	// Snapshots and Compactions count snapshot writes this session
	// (compactions are the background/threshold-triggered subset).
	Snapshots   int64 `json:"snapshots"`
	Compactions int64 `json:"compactions"`
	// ReplayedRecords and RecoveredBytes report Open-time recovery work:
	// WAL records replayed, and torn tail bytes truncated.
	ReplayedRecords int64 `json:"replayed_records"`
	RecoveredBytes  int64 `json:"recovered_bytes"`
}

// Stats snapshots the store's statistics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	logs := make([]*graphLog, 0, len(s.graphs))
	for _, gl := range s.graphs {
		logs = append(logs, gl)
	}
	s.mu.Unlock()
	st := Stats{
		Dir:             s.dir,
		Appends:         s.appends.Load(),
		WALWritten:      s.walWritten.Load(),
		WALFsyncs:       s.fsyncs.Load(),
		Snapshots:       s.snapshots.Load(),
		Compactions:     s.compactions.Load(),
		ReplayedRecords: s.replayed.Load(),
		RecoveredBytes:  s.recovered.Load(),
	}
	now := time.Now()
	for _, gl := range logs {
		gl.mu.Lock()
		gs := GraphStats{
			Graph:              gl.name,
			Nodes:              gl.g.Nodes(),
			Edges:              gl.g.EdgeCount(),
			Seq:                gl.seq,
			BaseSeq:            gl.baseSeq,
			WALBytes:           gl.walSize,
			SnapshotAgeSeconds: now.Sub(gl.snapTime).Seconds(),
			Indexes:            len(indexInfosLocked(gl)),
		}
		gl.mu.Unlock()
		st.Graphs = append(st.Graphs, gs)
		st.WALBytes += gs.WALBytes
	}
	sort.Slice(st.Graphs, func(i, j int) bool { return st.Graphs[i].Graph < st.Graphs[j].Graph })
	if grams, err := s.Grammars(); err == nil {
		st.Grammars = len(grams)
	}
	return st
}

// WALCounters returns the session's WAL write counters — appended
// batches, bytes written, fsyncs issued — without touching any per-graph
// lock or the filesystem, so metrics endpoints can poll them freely.
func (s *Store) WALCounters() (appends, bytesWritten, fsyncs int64) {
	return s.appends.Load(), s.walWritten.Load(), s.fsyncs.Load()
}

// Close stops the background compactor and closes every WAL. The store
// must not be used afterwards.
func (s *Store) Close() error {
	s.closeOnce.Do(func() { close(s.closed) })
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, gl := range s.graphs {
		gl.mu.Lock()
		if gl.wal != nil {
			if err := gl.wal.Close(); err != nil && first == nil {
				first = err
			}
			gl.wal = nil
		}
		gl.mu.Unlock()
	}
	return first
}
