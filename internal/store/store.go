// Package store is the durable storage subsystem behind cfpqd's
// persistent mode: a versioned on-disk layout holding graph snapshots,
// registered grammars and evaluated closure indexes, plus an append-only
// write-ahead log (WAL) of edge additions — so a restarted service
// warm-starts from saved state instead of re-loading graphs and re-running
// every closure.
//
// # Layout
//
//	<dir>/
//	    MANIFEST                              store magic + format version
//	    grammars/<name>.grammar               registered grammar texts
//	    graphs/<name>/
//	        snapshot                          graph + node names at baseSeq (CRC-trailed)
//	        wal                               CRC-framed AddEdges batches after baseSeq
//	        indexes/<grammar>@<backend>.idx   evaluated index at a seq watermark
//
// Registry names are escaped for the filesystem (see encodeName); every
// snapshot artifact carries a CRC trailer and is written atomically
// (temp + fsync + rename + dir fsync), and WAL appends fsync per batch
// unless Options.NoSync relaxes that for tests.
//
// # Sequencing and recovery
//
// Each graph has a monotonically increasing seq: the number of edges ever
// journaled for it. The snapshot records baseSeq (edges folded in), each
// index file records the seq its relations cover, and WAL frames carry the
// edges of (baseSeq, seq]. Open replays the WAL over the snapshot,
// truncating at the first torn or corrupt frame — a crash mid-append loses
// at most the batch being written, never earlier records. An index whose
// watermark is behind the final seq is patched forward by the caller with
// the incremental delta closure (EdgesSince supplies the exact tail while
// it is still in the WAL; older indexes are repaired by re-seeding with
// the full edge set), so recovery never re-runs a closure from scratch.
//
// # Compaction
//
// A long WAL makes recovery slow; Compact folds a graph's WAL into a
// fresh snapshot of the store's in-memory mirror and truncates the log.
// Index files survive compaction untouched: their seq watermark stays
// meaningful because the repair path above covers watermarks older than
// the snapshot base. A background goroutine compacts any graph whose WAL
// exceeds Options.CompactBytes.
package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cfpq/internal/core"
	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// ErrNotFound marks lookups of graphs, grammars or indexes the store does
// not hold.
var ErrNotFound = errors.New("not found in store")

const (
	manifestName    = "MANIFEST"
	manifestContent = "CFPQSTORE v1\n"
	grammarsDir     = "grammars"
	graphsDir       = "graphs"
	indexesDir      = "indexes"
	grammarExt      = ".grammar"
	indexExt        = ".idx"
)

// Options tunes a Store.
type Options struct {
	// NoSync disables fsync after WAL appends and snapshot writes. Only
	// tests and benchmarks should set it: a crash can then lose
	// acknowledged records.
	NoSync bool
	// CompactBytes is the WAL size above which the background compactor
	// folds a graph's log into a fresh snapshot. 0 means the 4 MiB
	// default; negative disables background compaction (Compact can still
	// be called explicitly).
	CompactBytes int64
}

const defaultCompactBytes = 4 << 20

// Store is an open on-disk store. It is safe for concurrent use; every
// graph carries its own lock, so appends to different graphs proceed in
// parallel.
type Store struct {
	dir  string
	opts Options

	mu     sync.Mutex
	graphs map[string]*graphLog

	compactCh chan string
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	appends     atomic.Int64
	snapshots   atomic.Int64
	compactions atomic.Int64
	walWritten  atomic.Int64 // WAL bytes written this session
	replayed    atomic.Int64 // WAL records replayed at Open
	recovered   atomic.Int64 // bytes truncated from torn WAL tails at Open
}

// graphLog is one graph's durable state: the open WAL plus an in-memory
// mirror (graph, name table, seq) maintained from snapshot + replay +
// appends, from which snapshots and compactions are written without
// consulting the serving layer.
type graphLog struct {
	mu   sync.Mutex
	name string
	dir  string
	wal  *os.File

	g       *graph.Graph
	names   []string // node id → name ("" = unnamed)
	nameIDs map[string]int

	baseSeq  uint64       // seq covered by the on-disk snapshot
	seq      uint64       // seq after the last record
	pending  []graph.Edge // id-resolved edges of (baseSeq, seq]
	walSize  int64
	snapTime time.Time
}

// Open opens (creating if needed) a store rooted at dir and recovers its
// state: every graph's snapshot is loaded and its WAL replayed, with torn
// tails truncated to the last good record.
func Open(dir string, opts Options) (*Store, error) {
	if opts.CompactBytes == 0 {
		opts.CompactBytes = defaultCompactBytes
	}
	for _, d := range []string{dir, filepath.Join(dir, grammarsDir), filepath.Join(dir, graphsDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	manifest := filepath.Join(dir, manifestName)
	if raw, err := os.ReadFile(manifest); err == nil {
		if string(raw) != manifestContent {
			return nil, fmt.Errorf("store: %s is not a version-1 cfpq store (manifest %q)", dir, raw)
		}
	} else if os.IsNotExist(err) {
		if werr := writeFileAtomic(manifest, !opts.NoSync, func(w io.Writer) error {
			_, err := io.WriteString(w, manifestContent)
			return err
		}); werr != nil {
			return nil, werr
		}
	} else {
		return nil, err
	}

	s := &Store{
		dir:       dir,
		opts:      opts,
		graphs:    map[string]*graphLog{},
		compactCh: make(chan string, 64),
		closed:    make(chan struct{}),
	}
	entries, err := os.ReadDir(filepath.Join(dir, graphsDir))
	if err != nil {
		return nil, err
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		name, err := decodeName(ent.Name())
		if err != nil {
			return nil, fmt.Errorf("store: undecodable graph directory %q: %v", ent.Name(), err)
		}
		gl, err := s.openGraphLog(name)
		if err != nil {
			return nil, fmt.Errorf("store: recovering graph %q: %w", name, err)
		}
		s.graphs[name] = gl
	}
	s.wg.Add(1)
	go s.compactor()
	return s, nil
}

// openGraphLog loads one graph's snapshot, replays and truncates its WAL,
// and leaves the WAL open for appending.
func (s *Store) openGraphLog(name string) (*graphLog, error) {
	gdir := filepath.Join(s.dir, graphsDir, encodeName(name))
	raw, err := os.ReadFile(filepath.Join(gdir, "snapshot"))
	if err != nil {
		return nil, err
	}
	g, names, baseSeq, err := readSnapshot(raw)
	if err != nil {
		return nil, err
	}
	st, err := os.Stat(filepath.Join(gdir, "snapshot"))
	if err != nil {
		return nil, err
	}
	gl := &graphLog{
		name:     name,
		dir:      gdir,
		g:        g,
		names:    names,
		nameIDs:  invertNames(names),
		baseSeq:  baseSeq,
		seq:      baseSeq,
		snapTime: st.ModTime(),
	}
	wal, err := os.OpenFile(filepath.Join(gdir, "wal"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	batches, goodBytes, err := replayWAL(wal)
	if err != nil {
		wal.Close()
		return nil, err
	}
	if size, err := wal.Seek(0, io.SeekEnd); err != nil {
		wal.Close()
		return nil, err
	} else if size > goodBytes {
		// Torn tail: truncate to the last good frame so future appends
		// start on a clean boundary.
		s.recovered.Add(size - goodBytes)
		if err := wal.Truncate(goodBytes); err != nil {
			wal.Close()
			return nil, err
		}
		if !s.opts.NoSync {
			if err := wal.Sync(); err != nil {
				wal.Close()
				return nil, err
			}
		}
	}
	if _, err := wal.Seek(goodBytes, io.SeekStart); err != nil {
		wal.Close()
		return nil, err
	}
	gl.wal = wal
	gl.walSize = goodBytes
	for _, b := range batches {
		gl.apply(b)
		s.replayed.Add(int64(len(b.recs)))
	}
	return gl, nil
}

// invertNames builds the token→id table from the id→name slice.
func invertNames(names []string) map[string]int {
	out := make(map[string]int)
	for id, name := range names {
		if name != "" {
			out[name] = id
		}
	}
	return out
}

// resolveToken maps a node token to an id against the mirror, interning
// new names and growing the node range for out-of-range numeric ids — the
// rules the serving layer's own interning follows, so replay reproduces
// the exact id assignment of the original mutations.
func (gl *graphLog) resolveToken(tok string) int {
	if id, ok := gl.nameIDs[tok]; ok {
		return id
	}
	if id, err := strconv.Atoi(tok); err == nil && id >= 0 {
		if id >= gl.g.Nodes() {
			gl.g.EnsureNode(id)
			gl.syncNames()
		}
		return id
	}
	id := gl.g.Nodes()
	gl.g.EnsureNode(id)
	gl.syncNames()
	gl.names[id] = tok
	gl.nameIDs[tok] = id
	return id
}

// resolveID maps a canonical decimal id token (validated at decode/append
// time) straight to its id, never consulting the name table: an
// id-addressed writer means id 7 even when some node is *named* "7".
func (gl *graphLog) resolveID(tok string) int {
	id, _ := strconv.Atoi(tok)
	if id >= gl.g.Nodes() {
		gl.g.EnsureNode(id)
		gl.syncNames()
	}
	return id
}

// syncNames keeps the name slice as long as the node range.
func (gl *graphLog) syncNames() {
	for len(gl.names) < gl.g.Nodes() {
		gl.names = append(gl.names, "")
	}
}

// apply folds one decoded frame into the mirror, advancing seq.
func (gl *graphLog) apply(b walBatch) {
	resolve := gl.resolveToken
	if b.kind == recIDs {
		resolve = gl.resolveID
	}
	for _, r := range b.recs {
		from, to := resolve(r.From), resolve(r.To)
		gl.g.AddEdge(from, r.Label, to)
		gl.syncNames()
		gl.pending = append(gl.pending, graph.Edge{From: from, Label: r.Label, To: to})
	}
	gl.seq += uint64(len(b.recs))
}

// lookup returns the graphLog for a registered graph.
func (s *Store) lookup(name string) (*graphLog, error) {
	s.mu.Lock()
	gl := s.graphs[name]
	s.mu.Unlock()
	if gl == nil {
		return nil, fmt.Errorf("store: graph %q: %w", name, ErrNotFound)
	}
	return gl, nil
}

// CreateGraph installs (or replaces) a graph: a fresh directory with a
// full snapshot at seq 0 and an empty WAL. Replacing drops the previous
// snapshot, WAL and every saved index (their node-id namespace died with
// the old graph). names maps node id → name and may be nil.
func (s *Store) CreateGraph(name string, g *graph.Graph, names []string) error {
	if name == "" {
		return fmt.Errorf("store: empty graph name")
	}
	gdir := filepath.Join(s.dir, graphsDir, encodeName(name))
	s.mu.Lock()
	old := s.graphs[name]
	s.mu.Unlock()
	if old != nil {
		old.mu.Lock()
		defer old.mu.Unlock()
		if old.wal != nil {
			old.wal.Close()
			old.wal = nil
		}
	}
	if err := os.RemoveAll(gdir); err != nil {
		return err
	}
	if err := os.MkdirAll(gdir, 0o755); err != nil {
		return err
	}
	mirror := g.Clone()
	mnames := make([]string, mirror.Nodes())
	copy(mnames, names)
	gl := &graphLog{
		name:     name,
		dir:      gdir,
		g:        mirror,
		names:    mnames,
		nameIDs:  invertNames(mnames),
		snapTime: time.Now(),
	}
	if err := writeFileAtomic(filepath.Join(gdir, "snapshot"), !s.opts.NoSync, func(w io.Writer) error {
		return writeSnapshot(w, gl.g, gl.names, 0)
	}); err != nil {
		return err
	}
	wal, err := os.OpenFile(filepath.Join(gdir, "wal"), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	gl.wal = wal
	if !s.opts.NoSync {
		if err := syncDir(gdir); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.graphs[name] = gl
	s.mu.Unlock()
	s.snapshots.Add(1)
	return nil
}

// Append journals one batch of edges for a graph: the frame is written
// and fsynced (the write-ahead contract — callers apply the mutation
// in memory only after Append returns), the in-memory mirror advances,
// and the new seq is returned. Batches from concurrent callers serialise
// per graph.
func (s *Store) Append(name string, recs []EdgeRecord) (uint64, error) {
	return s.append(name, recTokens, recs)
}

func (s *Store) append(name string, kind byte, recs []EdgeRecord) (uint64, error) {
	gl, err := s.lookup(name)
	if err != nil {
		return 0, err
	}
	if len(recs) == 0 {
		gl.mu.Lock()
		defer gl.mu.Unlock()
		return gl.seq, nil
	}
	for _, r := range recs {
		if r.Label == "" || r.From == "" || r.To == "" {
			// Empty node tokens are rejected for the same reason the
			// frame decoder treats them as corruption: an empty name
			// cannot round-trip through the snapshot's name table.
			return 0, fmt.Errorf("store: record %+v has an empty token", r)
		}
	}
	gl.mu.Lock()
	defer gl.mu.Unlock()
	if gl.wal == nil {
		return 0, fmt.Errorf("store: graph %q: WAL unavailable (store closed or failed)", name)
	}
	n, err := appendFrame(gl.wal, kind, recs)
	if err != nil {
		gl.rewindOrFail()
		return 0, err
	}
	if !s.opts.NoSync {
		if err := gl.wal.Sync(); err != nil {
			// The frame's bytes may or may not have reached disk; either
			// way the caller is told the batch failed, so the frame must
			// not survive to be replayed. Discard it (or fail the log).
			gl.rewindOrFail()
			return 0, err
		}
	}
	gl.walSize += n
	gl.apply(walBatch{kind: kind, recs: recs})
	s.appends.Add(1)
	s.walWritten.Add(n)
	if s.opts.CompactBytes > 0 && gl.walSize > s.opts.CompactBytes {
		select {
		case s.compactCh <- name:
		default:
		}
	}
	return gl.seq, nil
}

// rewindOrFail discards a partially persisted frame by truncating the WAL
// back to the last acknowledged byte. If even that fails the log is
// closed (fail-stop): stacking new frames after an unacknowledged one
// would make recovery silently discard acknowledged records that follow
// the tear, which is worse than rejecting writes. Callers hold gl.mu.
func (gl *graphLog) rewindOrFail() {
	if pos, err := gl.wal.Seek(gl.walSize, io.SeekStart); err == nil && pos == gl.walSize {
		if gl.wal.Truncate(gl.walSize) == nil {
			return
		}
	}
	gl.wal.Close()
	gl.wal = nil
}

// Log is an append handle bound to one graph, satisfying the cfpq
// package's Prepared WAL interface: id-addressed edges are journaled as
// decimal tokens.
type Log struct {
	s    *Store
	name string
}

// Log returns the append handle for a graph. Attach at most one mutating
// writer per graph: the WAL is a single edge stream and replay assumes one
// interning history.
func (s *Store) Log(name string) *Log { return &Log{s: s, name: name} }

// AppendEdges journals id-addressed edges. The frames are marked as such,
// so replay resolves the endpoints as ids even when a node's *name* is a
// numeral.
func (l *Log) AppendEdges(edges []graph.Edge) error {
	recs := make([]EdgeRecord, len(edges))
	for i, e := range edges {
		if e.From < 0 || e.To < 0 {
			return fmt.Errorf("store: negative node in edge %+v", e)
		}
		recs[i] = EdgeRecord{
			From:  strconv.Itoa(e.From),
			Label: e.Label,
			To:    strconv.Itoa(e.To),
		}
	}
	_, err := l.s.append(l.name, recIDs, recs)
	return err
}

// IndexData is one evaluated index to persist alongside a snapshot: the
// CFPQIDX2 bytes of a closure over the graph's first Seq edges.
type IndexData struct {
	Grammar string
	Backend string
	Seq     uint64
	Data    []byte
}

// Snapshot folds a graph's WAL into a fresh snapshot of the mirror and
// truncates the log; the optional indexes are written alongside. Appends
// to the graph block for the duration, so the snapshot is consistent: it
// covers exactly the records the truncation discards.
func (s *Store) Snapshot(name string, indexes []IndexData) error {
	gl, err := s.lookup(name)
	if err != nil {
		return err
	}
	gl.mu.Lock()
	defer gl.mu.Unlock()
	if gl.wal == nil {
		return fmt.Errorf("store: graph %q: store closed", name)
	}
	for _, ix := range indexes {
		if err := s.saveIndexLocked(gl, ix); err != nil {
			return err
		}
	}
	if err := writeFileAtomic(filepath.Join(gl.dir, "snapshot"), !s.opts.NoSync, func(w io.Writer) error {
		return writeSnapshot(w, gl.g, gl.names, gl.seq)
	}); err != nil {
		return err
	}
	if err := gl.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := gl.wal.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if !s.opts.NoSync {
		if err := gl.wal.Sync(); err != nil {
			return err
		}
	}
	gl.baseSeq = gl.seq
	gl.pending = nil
	gl.walSize = 0
	gl.snapTime = time.Now()
	s.snapshots.Add(1)
	return nil
}

// Compact is Snapshot without fresh index data: the WAL is folded into
// the graph snapshot and existing index files stay as they are (recovery
// repairs indexes whose watermark predates the new snapshot base).
func (s *Store) Compact(name string) error {
	err := s.Snapshot(name, nil)
	if err == nil {
		s.compactions.Add(1)
	}
	return err
}

// compactor is the background goroutine folding oversized WALs.
func (s *Store) compactor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.closed:
			return
		case name := <-s.compactCh:
			gl, err := s.lookup(name)
			if err != nil {
				continue
			}
			gl.mu.Lock()
			oversized := gl.walSize > s.opts.CompactBytes
			gl.mu.Unlock()
			if oversized {
				// Best effort: a failed background compaction leaves the
				// WAL long but the store correct; the next append re-arms.
				_ = s.Compact(name)
			}
		}
	}
}

// SaveIndex persists one evaluated index for (graph, grammar, backend):
// CFPQIDX2 payload bytes covering the graph's first seq edges.
func (s *Store) SaveIndex(graphName, grammarName, backend string, seq uint64, data []byte) error {
	gl, err := s.lookup(graphName)
	if err != nil {
		return err
	}
	gl.mu.Lock()
	defer gl.mu.Unlock()
	return s.saveIndexLocked(gl, IndexData{Grammar: grammarName, Backend: backend, Seq: seq, Data: data})
}

func (s *Store) saveIndexLocked(gl *graphLog, ix IndexData) error {
	dir := filepath.Join(gl.dir, indexesDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, encodeName(ix.Grammar)+"@"+ix.Backend+indexExt)
	return writeFileAtomic(path, !s.opts.NoSync, func(w io.Writer) error {
		return writeIndexFile(w, ix.Seq, ix.Data)
	})
}

// DropGrammarIndexes removes every saved index built for the named
// grammar, across all graphs. A serving layer calls this when a grammar is
// replaced: the old indexes' relations would otherwise warm-start under
// the new grammar's name if the non-terminal sets happen to match.
func (s *Store) DropGrammarIndexes(grammarName string) error {
	s.mu.Lock()
	logs := make([]*graphLog, 0, len(s.graphs))
	for _, gl := range s.graphs {
		logs = append(logs, gl)
	}
	s.mu.Unlock()
	prefix := encodeName(grammarName) + "@"
	var first error
	for _, gl := range logs {
		gl.mu.Lock()
		entries, err := os.ReadDir(filepath.Join(gl.dir, indexesDir))
		if err != nil && !os.IsNotExist(err) && first == nil {
			first = err
		}
		for _, ent := range entries {
			if strings.HasPrefix(ent.Name(), prefix) && strings.HasSuffix(ent.Name(), indexExt) {
				if err := os.Remove(filepath.Join(gl.dir, indexesDir, ent.Name())); err != nil && first == nil {
					first = err
				}
			}
		}
		gl.mu.Unlock()
	}
	return first
}

// SaveGrammar persists a registered grammar's text.
func (s *Store) SaveGrammar(name, text string) error {
	if name == "" {
		return fmt.Errorf("store: empty grammar name")
	}
	path := filepath.Join(s.dir, grammarsDir, encodeName(name)+grammarExt)
	return writeFileAtomic(path, !s.opts.NoSync, func(w io.Writer) error {
		_, err := io.WriteString(w, text)
		return err
	})
}

// Grammars returns every persisted grammar, name → source text.
func (s *Store) Grammars() (map[string]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, grammarsDir))
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), grammarExt) {
			continue
		}
		name, err := decodeName(strings.TrimSuffix(ent.Name(), grammarExt))
		if err != nil {
			return nil, err
		}
		raw, err := os.ReadFile(filepath.Join(s.dir, grammarsDir, ent.Name()))
		if err != nil {
			return nil, err
		}
		out[name] = string(raw)
	}
	return out, nil
}

// GraphNames lists recovered graphs, sorted.
func (s *Store) GraphNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.graphs))
	for name := range s.graphs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// GraphState returns an independent copy of a graph's recovered state —
// the graph, its id→name table and its current seq — safe to hand to a
// serving layer that will mutate it.
func (s *Store) GraphState(name string) (*graph.Graph, []string, uint64, error) {
	gl, err := s.lookup(name)
	if err != nil {
		return nil, nil, 0, err
	}
	gl.mu.Lock()
	defer gl.mu.Unlock()
	names := make([]string, len(gl.names))
	copy(names, gl.names)
	return gl.g.Clone(), names, gl.seq, nil
}

// EdgesSince returns the id-resolved edges journaled after seq, provided
// they are still in the WAL (seq at or above the snapshot base). A false
// second result means the tail was compacted away and the caller must
// repair from the full edge set instead.
func (s *Store) EdgesSince(name string, seq uint64) ([]graph.Edge, bool) {
	gl, err := s.lookup(name)
	if err != nil {
		return nil, false
	}
	gl.mu.Lock()
	defer gl.mu.Unlock()
	if seq < gl.baseSeq || seq > gl.seq {
		return nil, false
	}
	tail := gl.pending[seq-gl.baseSeq:]
	out := make([]graph.Edge, len(tail))
	copy(out, tail)
	return out, true
}

// IndexInfo names one saved index and its seq watermark.
type IndexInfo struct {
	Graph   string
	Grammar string
	Backend string
	Seq     uint64
}

// Indexes lists the saved indexes of a graph, sorted by (grammar,
// backend). Only the fixed-size header (magic + seq) of each file is
// read — payload CRC validation happens at LoadIndex — so the listing
// stays cheap under the graph lock no matter how large the indexes are.
// Files with unreadable headers are skipped: a lost index only costs a
// rebuild.
func (s *Store) Indexes(name string) []IndexInfo {
	gl, err := s.lookup(name)
	if err != nil {
		return nil
	}
	gl.mu.Lock()
	defer gl.mu.Unlock()
	return indexInfosLocked(gl)
}

func indexInfosLocked(gl *graphLog) []IndexInfo {
	entries, err := os.ReadDir(filepath.Join(gl.dir, indexesDir))
	if err != nil {
		return nil
	}
	var out []IndexInfo
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), indexExt) {
			continue
		}
		base := strings.TrimSuffix(ent.Name(), indexExt)
		at := strings.LastIndex(base, "@")
		if at < 0 {
			continue
		}
		gname, err := decodeName(base[:at])
		if err != nil {
			continue
		}
		seq, err := readIndexFileHeader(filepath.Join(gl.dir, indexesDir, ent.Name()))
		if err != nil {
			continue
		}
		out = append(out, IndexInfo{Graph: gl.name, Grammar: gname, Backend: base[at+1:], Seq: seq})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Grammar != out[j].Grammar {
			return out[i].Grammar < out[j].Grammar
		}
		return out[i].Backend < out[j].Backend
	})
	return out
}

// LoadIndex reads one saved index, validated against the CNF it was built
// for and materialised with the given backend (nil means the backend
// recorded in the CFPQIDX2 payload). The returned seq is the edge-stream
// position the index covers.
func (s *Store) LoadIndex(info IndexInfo, cnf *grammar.CNF, be matrix.Backend) (*core.Index, uint64, error) {
	gl, err := s.lookup(info.Graph)
	if err != nil {
		return nil, 0, err
	}
	gl.mu.Lock()
	path := filepath.Join(gl.dir, indexesDir, encodeName(info.Grammar)+"@"+info.Backend+indexExt)
	raw, err := os.ReadFile(path)
	gl.mu.Unlock()
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, fmt.Errorf("store: index %s@%s for graph %q: %w", info.Grammar, info.Backend, info.Graph, ErrNotFound)
		}
		return nil, 0, err
	}
	seq, payload, err := readIndexFile(raw)
	if err != nil {
		return nil, 0, err
	}
	ix, err := core.ReadIndex(strings.NewReader(string(payload)), cnf, be)
	if err != nil {
		return nil, 0, err
	}
	return ix, seq, nil
}

// GraphStats describes one graph's durable state.
type GraphStats struct {
	Graph    string `json:"graph"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`
	Seq      uint64 `json:"seq"`
	BaseSeq  uint64 `json:"base_seq"`
	WALBytes int64  `json:"wal_bytes"`
	// SnapshotAgeSeconds is the age of the on-disk snapshot file.
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	Indexes            int     `json:"indexes"`
}

// Stats summarises the store.
type Stats struct {
	Dir      string       `json:"dir"`
	Graphs   []GraphStats `json:"graphs"`
	Grammars int          `json:"grammars"`
	// Appends counts WAL batches written this session; WALBytes the bytes
	// across all live WALs; WALWritten the bytes written this session.
	Appends    int64 `json:"appends"`
	WALBytes   int64 `json:"wal_bytes"`
	WALWritten int64 `json:"wal_written"`
	// Snapshots and Compactions count snapshot writes this session
	// (compactions are the background/threshold-triggered subset).
	Snapshots   int64 `json:"snapshots"`
	Compactions int64 `json:"compactions"`
	// ReplayedRecords and RecoveredBytes report Open-time recovery work:
	// WAL records replayed, and torn tail bytes truncated.
	ReplayedRecords int64 `json:"replayed_records"`
	RecoveredBytes  int64 `json:"recovered_bytes"`
}

// Stats snapshots the store's statistics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	logs := make([]*graphLog, 0, len(s.graphs))
	for _, gl := range s.graphs {
		logs = append(logs, gl)
	}
	s.mu.Unlock()
	st := Stats{
		Dir:             s.dir,
		Appends:         s.appends.Load(),
		WALWritten:      s.walWritten.Load(),
		Snapshots:       s.snapshots.Load(),
		Compactions:     s.compactions.Load(),
		ReplayedRecords: s.replayed.Load(),
		RecoveredBytes:  s.recovered.Load(),
	}
	now := time.Now()
	for _, gl := range logs {
		gl.mu.Lock()
		gs := GraphStats{
			Graph:              gl.name,
			Nodes:              gl.g.Nodes(),
			Edges:              gl.g.EdgeCount(),
			Seq:                gl.seq,
			BaseSeq:            gl.baseSeq,
			WALBytes:           gl.walSize,
			SnapshotAgeSeconds: now.Sub(gl.snapTime).Seconds(),
			Indexes:            len(indexInfosLocked(gl)),
		}
		gl.mu.Unlock()
		st.Graphs = append(st.Graphs, gs)
		st.WALBytes += gs.WALBytes
	}
	sort.Slice(st.Graphs, func(i, j int) bool { return st.Graphs[i].Graph < st.Graphs[j].Graph })
	if grams, err := s.Grammars(); err == nil {
		st.Grammars = len(grams)
	}
	return st
}

// Close stops the background compactor and closes every WAL. The store
// must not be used afterwards.
func (s *Store) Close() error {
	s.closeOnce.Do(func() { close(s.closed) })
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, gl := range s.graphs {
		gl.mu.Lock()
		if gl.wal != nil {
			if err := gl.wal.Close(); err != nil && first == nil {
				first = err
			}
			gl.wal = nil
		}
		gl.mu.Unlock()
	}
	return first
}
