package store

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"cfpq/internal/core"
	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// testOpts skips fsync: the tests simulate crashes by editing files, not
// by killing the process, and sync-per-append makes them needlessly slow.
var testOpts = Options{NoSync: true, CompactBytes: -1}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// sampleGraph builds a small named graph: a → b → c with labels.
func sampleGraph() (*graph.Graph, []string) {
	g := graph.New(3)
	g.AddEdge(0, "x", 1)
	g.AddEdge(1, "y", 2)
	return g, []string{"a", "b", "c"}
}

func TestGraphStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	g, names := sampleGraph()
	if err := s.CreateGraph("g", g, names); err != nil {
		t.Fatal(err)
	}
	// Records mixing known names, new names and numeric ids.
	seq, err := s.Append("g", []EdgeRecord{
		{From: "a", Label: "x", To: "d"}, // interns d as node 3
		{From: "3", Label: "y", To: "0"}, // numeric addressing
		{From: "e", Label: "z", To: "e"}, // self-loop on new node 4
	})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("seq = %d, want 3", seq)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: snapshot + WAL replay must rebuild the same state.
	s2 := mustOpen(t, dir)
	g2, names2, seq2, err := s2.GraphState("g")
	if err != nil {
		t.Fatal(err)
	}
	if seq2 != 3 {
		t.Errorf("recovered seq = %d, want 3", seq2)
	}
	if g2.Nodes() != 5 || g2.EdgeCount() != 5 {
		t.Errorf("recovered graph %v, want 5 nodes / 5 edges", g2)
	}
	wantNames := []string{"a", "b", "c", "d", "e"}
	if !reflect.DeepEqual(names2, wantNames) {
		t.Errorf("names = %v, want %v", names2, wantNames)
	}
	for _, e := range []graph.Edge{
		{From: 0, Label: "x", To: 1},
		{From: 1, Label: "y", To: 2},
		{From: 0, Label: "x", To: 3},
		{From: 3, Label: "y", To: 0},
		{From: 4, Label: "z", To: 4},
	} {
		if !g2.HasEdge(e.From, e.Label, e.To) {
			t.Errorf("recovered graph missing %v", e)
		}
	}
	if tail, ok := s2.EdgesSince("g", 0); !ok || len(tail) != 3 {
		t.Errorf("EdgesSince(0) = %v, %v", tail, ok)
	}
	if tail, ok := s2.EdgesSince("g", 2); !ok || len(tail) != 1 {
		t.Errorf("EdgesSince(2) = %v, %v", tail, ok)
	}
}

// appendBatches journals n single-edge batches with distinct labels.
func appendBatches(t *testing.T, s *Store, name string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := s.Append(name, []EdgeRecord{
			{From: "a", Label: "l" + string(rune('0'+i)), To: "b"},
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTornWALTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	g, names := sampleGraph()
	if err := s.CreateGraph("g", g, names); err != nil {
		t.Fatal(err)
	}
	appendBatches(t, s, "g", 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, graphsDir, "g", "wal")
	whole, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the WAL at every length: recovery must always land on a record
	// boundary at or before the cut, never fail, never over-recover.
	for cut := len(whole); cut >= 0; cut-- {
		if err := os.WriteFile(walPath, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir, testOpts)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		_, _, seq, err := s2.GraphState("g")
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		frame := len(whole) / 5 // identical single-edge frames
		wantRecords := cut / frame
		if int(seq) != wantRecords {
			t.Fatalf("cut %d: recovered seq %d, want %d", cut, seq, wantRecords)
		}
		// Recovery truncates the torn tail on disk.
		if fi, err := os.Stat(walPath); err != nil || fi.Size() != int64(wantRecords*frame) {
			t.Fatalf("cut %d: wal size %v after recovery, want %d", cut, fi.Size(), wantRecords*frame)
		}
		s2.Close()
	}
}

func TestCorruptWALRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	g, names := sampleGraph()
	if err := s.CreateGraph("g", g, names); err != nil {
		t.Fatal(err)
	}
	appendBatches(t, s, "g", 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, graphsDir, "g", "wal")
	whole, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	frame := len(whole) / 5
	// Flip one payload byte in the third record: records 1–2 survive, the
	// corrupt record and everything after it are discarded.
	mut := append([]byte{}, whole...)
	mut[2*frame+8] ^= 0xff
	if err := os.WriteFile(walPath, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	_, _, seq, err := s2.GraphState("g")
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Errorf("recovered seq = %d, want 2 (corruption in record 3)", seq)
	}
}

func TestSnapshotFoldsWAL(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	g, names := sampleGraph()
	if err := s.CreateGraph("g", g, names); err != nil {
		t.Fatal(err)
	}
	appendBatches(t, s, "g", 4)
	if err := s.Snapshot("g", nil); err != nil {
		t.Fatal(err)
	}
	// WAL is empty, state intact, EdgesSince now needs repair below base.
	if fi, err := os.Stat(filepath.Join(dir, graphsDir, "g", "wal")); err != nil || fi.Size() != 0 {
		t.Errorf("wal size after snapshot: %v, %v", fi, err)
	}
	if _, ok := s.EdgesSince("g", 2); ok {
		t.Error("EdgesSince below the snapshot base reported ok")
	}
	if tail, ok := s.EdgesSince("g", 4); !ok || len(tail) != 0 {
		t.Errorf("EdgesSince(base) = %v, %v", tail, ok)
	}
	appendBatches(t, s, "g", 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	g2, _, seq, err := s2.GraphState("g")
	if err != nil {
		t.Fatal(err)
	}
	if seq != 5 || g2.EdgeCount() != 2+5 {
		t.Errorf("after snapshot+append reopen: seq %d edges %d, want 5 and 7", seq, g2.EdgeCount())
	}
}

func TestCreateGraphReplacesEverything(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	g, names := sampleGraph()
	if err := s.CreateGraph("g", g, names); err != nil {
		t.Fatal(err)
	}
	appendBatches(t, s, "g", 2)
	if err := s.SaveIndex("g", "q", "sparse", 2, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	fresh := graph.New(1)
	if err := s.CreateGraph("g", fresh, nil); err != nil {
		t.Fatal(err)
	}
	g2, _, seq, err := s.GraphState("g")
	if err != nil {
		t.Fatal(err)
	}
	if seq != 0 || g2.Nodes() != 1 || g2.EdgeCount() != 0 {
		t.Errorf("replacement state: seq %d, %v", seq, g2)
	}
	if ixs := s.Indexes("g"); len(ixs) != 0 {
		t.Errorf("stale indexes survived replacement: %v", ixs)
	}
}

func TestIndexSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	cnf := grammar.MustParseCNF("S -> x S y | x y")
	g := graph.New(0)
	g.AddEdge(0, "x", 1)
	g.AddEdge(1, "y", 2)
	if err := s.CreateGraph("g", g, nil); err != nil {
		t.Fatal(err)
	}
	ix, _ := core.NewEngine(core.WithBackend(matrix.DenseParallel(0))).Run(g, cnf)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveIndex("g", "q", "dense-parallel", 0, buf.Bytes()); err != nil {
		t.Fatal(err)
	}

	infos := s.Indexes("g")
	if len(infos) != 1 || infos[0].Grammar != "q" || infos[0].Backend != "dense-parallel" || infos[0].Seq != 0 {
		t.Fatalf("Indexes = %+v", infos)
	}
	got, seq, err := s.LoadIndex(infos[0], cnf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 0 || !got.Equal(ix) {
		t.Error("loaded index differs")
	}
	// nil backend materialises the recorded one.
	if got.Backend() == nil || got.Backend().Name() != "dense-parallel" {
		t.Errorf("loaded backend = %v, want recorded dense-parallel", got.Backend())
	}

	// A payload-corrupted file still lists (listings read only the
	// header) but is refused by Load — which is where the CRC matters.
	path := filepath.Join(dir, graphsDir, "g", indexesDir, "q@dense-parallel.idx")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x55
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := s.Indexes("g"); len(got) != 1 {
		t.Errorf("payload-corrupt index dropped from listing: %v", got)
	}
	if _, _, err := s.LoadIndex(infos[0], cnf, nil); err == nil {
		t.Error("corrupt index loaded")
	}
	// A header-corrupted file (bad magic) is skipped even in listings.
	raw[0] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := s.Indexes("g"); len(got) != 0 {
		t.Errorf("magic-corrupt index still listed: %v", got)
	}
}

func TestDropGrammarIndexes(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	g, names := sampleGraph()
	if err := s.CreateGraph("g", g, names); err != nil {
		t.Fatal(err)
	}
	for _, gram := range []string{"q1", "q2"} {
		if err := s.SaveIndex("g", gram, "sparse", 0, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.DropGrammarIndexes("q1"); err != nil {
		t.Fatal(err)
	}
	infos := s.Indexes("g")
	// Both files exist but carry junk payloads; listing validates only the
	// wrapper, so count files directly.
	var kept []string
	for _, info := range infos {
		kept = append(kept, info.Grammar)
	}
	entries, _ := os.ReadDir(filepath.Join(s.dir, graphsDir, "g", indexesDir))
	if len(entries) != 1 || entries[0].Name() != "q2@sparse.idx" {
		t.Errorf("surviving index files: %v (listed %v)", entries, kept)
	}
}

func TestGrammarsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	want := map[string]string{
		"plain":       "S -> a b",
		"weird name/": "S -> x S | x",
	}
	for name, text := range want {
		if err := s.SaveGrammar(name, text); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	s2 := mustOpen(t, dir)
	got, err := s2.Grammars()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Grammars = %v, want %v", got, want)
	}
}

func TestNameEncodingRoundTrip(t *testing.T) {
	cases := []string{"plain", "has space", "a/b", "pct%40", "@at", ".dot", "ünïcode", "UPPER.lower-_"}
	seen := map[string]bool{}
	for _, name := range cases {
		enc := encodeName(name)
		if seen[enc] {
			t.Fatalf("encoding collision on %q", enc)
		}
		seen[enc] = true
		dec, err := decodeName(enc)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if dec != name {
			t.Errorf("%q → %q → %q", name, enc, dec)
		}
		if filepath.Base(enc) != enc || enc == "." || enc == ".." {
			t.Errorf("%q encodes to unsafe path component %q", name, enc)
		}
	}
	// Graphs with hostile names must survive a store round trip.
	dir := t.TempDir()
	s := mustOpen(t, dir)
	g, names := sampleGraph()
	if err := s.CreateGraph("../escape/attempt", g, names); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := mustOpen(t, dir)
	if got := s2.GraphNames(); !reflect.DeepEqual(got, []string{"../escape/attempt"}) {
		t.Errorf("GraphNames = %v", got)
	}
}

func TestLogAppendsIDTokens(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	g := graph.New(2)
	g.AddEdge(0, "x", 1)
	if err := s.CreateGraph("g", g, nil); err != nil {
		t.Fatal(err)
	}
	l := s.Log("g")
	if err := l.AppendEdges([]graph.Edge{{From: 1, Label: "y", To: 2}}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := mustOpen(t, dir)
	g2, _, seq, err := s2.GraphState("g")
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 || g2.Nodes() != 3 || !g2.HasEdge(1, "y", 2) {
		t.Errorf("recovered %v at seq %d", g2, seq)
	}
}

func TestLogIgnoresNumericNames(t *testing.T) {
	// A node NAMED "7" (at id 0) must not capture id-addressed appends to
	// node 7: Log frames are marked id-addressed and replay skips the
	// name table for them.
	dir := t.TempDir()
	s := mustOpen(t, dir)
	g := graph.New(1)
	if err := s.CreateGraph("g", g, []string{"7"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Log("g").AppendEdges([]graph.Edge{{From: 7, Label: "x", To: 7}}); err != nil {
		t.Fatal(err)
	}
	check := func(st *Store, when string) {
		g2, _, _, err := st.GraphState("g")
		if err != nil {
			t.Fatal(err)
		}
		if !g2.HasEdge(7, "x", 7) || g2.HasEdge(0, "x", 0) {
			t.Errorf("%s: edge landed on the wrong node (has(7)=%v has(0)=%v)",
				when, g2.HasEdge(7, "x", 7), g2.HasEdge(0, "x", 0))
		}
	}
	check(s, "live mirror")
	s.Close()
	check(mustOpen(t, dir), "after replay")

	// Token-addressed appends keep the names-first rule: "7" resolves to
	// the node named "7" (id 0), matching the serving layer's interning.
	s2 := mustOpen(t, t.TempDir())
	if err := s2.CreateGraph("g", graph.New(1), []string{"7"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Append("g", []EdgeRecord{{From: "7", Label: "x", To: "7"}}); err != nil {
		t.Fatal(err)
	}
	g3, _, _, err := s2.GraphState("g")
	if err != nil {
		t.Fatal(err)
	}
	if !g3.HasEdge(0, "x", 0) {
		t.Error("token append did not resolve through the name table")
	}
}

func TestBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true, CompactBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g, names := sampleGraph()
	if err := s.CreateGraph("g", g, names); err != nil {
		t.Fatal(err)
	}
	appendBatches(t, s, "g", 8) // well past 64 bytes of frames
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if len(st.Graphs) == 1 && st.Graphs[0].WALBytes == 0 && st.Graphs[0].BaseSeq == 8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never folded the WAL: %+v", st.Graphs)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// State is intact after the fold.
	g2, _, seq, err := s.GraphState("g")
	if err != nil {
		t.Fatal(err)
	}
	if seq != 8 || g2.EdgeCount() != 2+8 {
		t.Errorf("post-compaction state: seq %d, %v", seq, g2)
	}
}

func TestOpenRejectsForeignDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("something else"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testOpts); err == nil {
		t.Error("foreign manifest accepted")
	}
}

func TestStatsReportsRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	g, names := sampleGraph()
	if err := s.CreateGraph("g", g, names); err != nil {
		t.Fatal(err)
	}
	appendBatches(t, s, "g", 3)
	s.Close()
	// Tear the tail: recovery stats must report truncated bytes.
	walPath := filepath.Join(dir, graphsDir, "g", "wal")
	whole, _ := os.ReadFile(walPath)
	if err := os.WriteFile(walPath, whole[:len(whole)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	st := s2.Stats()
	if st.ReplayedRecords != 2 {
		t.Errorf("ReplayedRecords = %d, want 2", st.ReplayedRecords)
	}
	if st.RecoveredBytes == 0 {
		t.Error("RecoveredBytes = 0, want the torn tail")
	}
	if len(st.Graphs) != 1 || st.Graphs[0].Seq != 2 {
		t.Errorf("graph stats: %+v", st.Graphs)
	}
}
