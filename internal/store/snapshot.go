package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cfpq/internal/graph"
)

// On-disk formats of the two snapshot artifacts.
//
// Graph snapshot ("snapshot" in a graph directory):
//
//	magic "CFPQSNAP1"
//	uint64 baseSeq                       total edges folded into this snapshot
//	uint32 nodeCount
//	uint32 namedCount
//	per named node: uint32 id, uint16 nameLen, name bytes
//	uint32 edgeCount
//	per edge: uint32 from, uint32 to, uint16 labelLen, label bytes
//	uint32 crc32 of everything after the magic
//
// Index file ("indexes/<grammar>@<backend>.idx"):
//
//	magic "CFPQSIDX1"
//	uint64 seq                           edge-stream position the index covers
//	CFPQIDX2 payload (core.Index.WriteTo)
//	uint32 crc32 of everything after the magic
//
// Both are written atomically (temp file, fsync, rename, directory fsync)
// and validated by their CRC trailer on read, so a torn snapshot write is
// detected and the previous snapshot — replaced only by the rename — is
// never lost.

const (
	snapshotMagic  = "CFPQSNAP1"
	indexFileMagic = "CFPQSIDX1"

	// maxSnapshotNodes bounds the node count a snapshot may declare, so a
	// (CRC-colliding or hand-corrupted) header cannot drive an unbounded
	// allocation before the first edge is validated.
	maxSnapshotNodes = 1 << 26
)

// writeSnapshot encodes the graph + name table at baseSeq.
func writeSnapshot(w io.Writer, g *graph.Graph, names []string, baseSeq uint64) error {
	cw := &crcWriter{w: w}
	var err error
	emit := func(data any) {
		if err == nil {
			err = binary.Write(cw, binary.LittleEndian, data)
		}
	}
	emitString := func(s string) {
		if err == nil && len(s) > 1<<16-1 {
			err = fmt.Errorf("store: string too long for snapshot: %d bytes", len(s))
		}
		emit(uint16(len(s)))
		if err == nil {
			_, err = io.WriteString(cw, s)
		}
	}
	if _, werr := io.WriteString(w, snapshotMagic); werr != nil {
		return werr
	}
	emit(baseSeq)
	emit(uint32(g.Nodes()))
	named := 0
	for id := range names {
		if id < g.Nodes() && names[id] != "" {
			named++
		}
	}
	emit(uint32(named))
	for id, name := range names {
		if id >= g.Nodes() || name == "" {
			continue
		}
		emit(uint32(id))
		emitString(name)
	}
	edges := g.Edges()
	emit(uint32(len(edges)))
	for _, e := range edges {
		emit(uint32(e.From))
		emit(uint32(e.To))
		emitString(e.Label)
	}
	if err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, cw.crc)
}

// readSnapshot decodes and CRC-checks a graph snapshot.
func readSnapshot(raw []byte) (g *graph.Graph, names []string, baseSeq uint64, err error) {
	if len(raw) < len(snapshotMagic)+4 || string(raw[:len(snapshotMagic)]) != snapshotMagic {
		return nil, nil, 0, fmt.Errorf("store: bad snapshot magic")
	}
	body := raw[len(snapshotMagic) : len(raw)-4]
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return nil, nil, 0, fmt.Errorf("store: snapshot CRC mismatch")
	}
	br := bufio.NewReader(bytes.NewReader(body))
	read := func(data any) {
		if err == nil {
			err = binary.Read(br, binary.LittleEndian, data)
		}
	}
	readString := func() string {
		var n uint16
		read(&n)
		if err != nil {
			return ""
		}
		buf := make([]byte, n)
		if _, rerr := io.ReadFull(br, buf); rerr != nil {
			err = rerr
			return ""
		}
		return string(buf)
	}
	read(&baseSeq)
	var nodes, named uint32
	read(&nodes)
	read(&named)
	if err != nil {
		return nil, nil, 0, err
	}
	if nodes > maxSnapshotNodes {
		return nil, nil, 0, fmt.Errorf("store: snapshot declares %d nodes, above the %d limit", nodes, maxSnapshotNodes)
	}
	g = graph.New(int(nodes))
	names = make([]string, nodes)
	for k := uint32(0); k < named; k++ {
		var id uint32
		read(&id)
		name := readString()
		if err != nil {
			return nil, nil, 0, err
		}
		if id >= nodes {
			return nil, nil, 0, fmt.Errorf("store: snapshot names node %d outside [0,%d)", id, nodes)
		}
		names[id] = name
	}
	var edgeCount uint32
	read(&edgeCount)
	if err != nil {
		return nil, nil, 0, err
	}
	for k := uint32(0); k < edgeCount; k++ {
		var from, to uint32
		read(&from)
		read(&to)
		label := readString()
		if err != nil {
			return nil, nil, 0, err
		}
		if from >= nodes || to >= nodes {
			return nil, nil, 0, fmt.Errorf("store: snapshot edge (%d,%d) outside [0,%d)", from, to, nodes)
		}
		g.AddEdge(int(from), label, int(to))
	}
	return g, names, baseSeq, nil
}

// writeIndexFile wraps an already-serialised CFPQIDX2 payload with the
// store's seq watermark and CRC trailer.
func writeIndexFile(w io.Writer, seq uint64, payload []byte) error {
	if _, err := io.WriteString(w, indexFileMagic); err != nil {
		return err
	}
	var seqBuf [8]byte
	binary.LittleEndian.PutUint64(seqBuf[:], seq)
	if _, err := w.Write(seqBuf[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	crc := crc32.ChecksumIEEE(seqBuf[:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	return binary.Write(w, binary.LittleEndian, crc)
}

// readIndexFileHeader reads just the magic and seq watermark of an index
// file — the cheap form listings use; the payload CRC is validated only
// when the index is actually loaded.
func readIndexFileHeader(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var head [len(indexFileMagic) + 8]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return 0, err
	}
	if string(head[:len(indexFileMagic)]) != indexFileMagic {
		return 0, fmt.Errorf("store: bad index file magic")
	}
	return binary.LittleEndian.Uint64(head[len(indexFileMagic):]), nil
}

// readIndexFile validates the wrapper and returns the seq watermark and
// the embedded CFPQIDX2 payload.
func readIndexFile(raw []byte) (seq uint64, payload []byte, err error) {
	if len(raw) < len(indexFileMagic)+12 || string(raw[:len(indexFileMagic)]) != indexFileMagic {
		return 0, nil, fmt.Errorf("store: bad index file magic")
	}
	body := raw[len(indexFileMagic) : len(raw)-4]
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return 0, nil, fmt.Errorf("store: index file CRC mismatch")
	}
	return binary.LittleEndian.Uint64(body[:8]), body[8:], nil
}

// crcWriter accumulates an IEEE CRC-32 over everything written through it.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p[:n])
	return n, err
}

// writeFileAtomic writes a file via temp + fsync + rename (+ directory
// fsync unless sync is off), so readers only ever observe the previous or
// the complete new content.
func writeFileAtomic(path string, sync bool, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	// CreateTemp's 0600 would make snapshots unreadable to the group the
	// WAL (plain O_CREATE, 0644 minus umask) is readable to.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	bw := bufio.NewWriter(tmp)
	if err := write(bw); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if sync {
		return syncDir(dir)
	}
	return nil
}

// syncDir fsyncs a directory so a completed rename survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// encodeName maps an arbitrary registry name to a safe file-name
// component: ASCII letters, digits, '.', '_' and '-' pass through, every
// other byte (including '%' itself and a leading '.') escapes to %XX. The
// mapping is injective, so distinct registry names never collide on disk.
func encodeName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		safe := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '_' || c == '-' || (c == '.' && i > 0)
		if safe {
			b.WriteByte(c)
		} else {
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}

// decodeName inverts encodeName.
func decodeName(enc string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(enc); i++ {
		if enc[i] != '%' {
			b.WriteByte(enc[i])
			continue
		}
		if i+3 > len(enc) {
			return "", fmt.Errorf("store: truncated escape in %q", enc)
		}
		var c byte
		if _, err := fmt.Sscanf(enc[i+1:i+3], "%02X", &c); err != nil {
			return "", fmt.Errorf("store: bad escape in %q", enc)
		}
		b.WriteByte(c)
		i += 2
	}
	return b.String(), nil
}
