package store

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

// Tests for the leader-side replication surface of the store: the tailing
// read API (TailSince), stream identity (epoch), replicated appends, and
// the interplay between follower reservations and compaction.

func TestTailSinceBoundaries(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	g, names := sampleGraph()
	if err := s.CreateGraph("g", g, names); err != nil {
		t.Fatal(err)
	}
	// Two batches: seqs (0,2] and (2,3].
	if _, err := s.Append("g", []EdgeRecord{
		{From: "a", Label: "x", To: "d"},
		{From: "b", Label: "y", To: "d"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append("g", []EdgeRecord{
		{From: "d", Label: "z", To: "a"},
	}); err != nil {
		t.Fatal(err)
	}

	batches, head, remaining, ok := s.TailSince("g", 0, 0)
	if !ok || head != 3 || remaining != 0 {
		t.Fatalf("TailSince(0) = ok=%v head=%d remaining=%d, want ok 3 0", ok, head, remaining)
	}
	if len(batches) != 2 || batches[0].Seq != 2 || batches[1].Seq != 3 {
		t.Fatalf("TailSince(0) batches = %+v, want seqs 2,3", batches)
	}
	if len(batches[0].Recs) != 2 || len(batches[1].Recs) != 1 {
		t.Fatalf("batch record counts = %d,%d, want 2,1", len(batches[0].Recs), len(batches[1].Recs))
	}

	// From a batch boundary: only the later batch ships.
	batches, _, _, ok = s.TailSince("g", 2, 0)
	if !ok || len(batches) != 1 || batches[0].Seq != 3 {
		t.Fatalf("TailSince(2) = %+v ok=%v, want the seq-3 batch", batches, ok)
	}

	// Caught up: ok with no batches.
	batches, head, _, ok = s.TailSince("g", 3, 0)
	if !ok || len(batches) != 0 || head != 3 {
		t.Fatalf("TailSince(head) = %+v head=%d ok=%v, want empty ok", batches, head, ok)
	}

	// Inside a batch: frames are atomic, never a valid stream point.
	if _, _, _, ok := s.TailSince("g", 1, 0); ok {
		t.Error("TailSince(1) inside a batch reported ok")
	}
	// Past the head: the follower is from another stream.
	if _, _, _, ok := s.TailSince("g", 4, 0); ok {
		t.Error("TailSince(4) past the head reported ok")
	}
	if _, _, _, ok := s.TailSince("nope", 0, 0); ok {
		t.Error("TailSince on an unknown graph reported ok")
	}
}

func TestTailSincePaging(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	g, names := sampleGraph()
	if err := s.CreateGraph("g", g, names); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Append("g", []EdgeRecord{{From: "a", Label: "x", To: "b"}}); err != nil {
			t.Fatal(err)
		}
	}
	all, _, _, ok := s.TailSince("g", 0, 0)
	if !ok || len(all) != 3 {
		t.Fatalf("unbounded tail = %d batches, want 3", len(all))
	}

	// A cap of exactly one frame pages one batch and tallies the rest.
	page, _, remaining, ok := s.TailSince("g", 0, all[0].Bytes)
	if !ok || len(page) != 1 || page[0].Seq != all[0].Seq {
		t.Fatalf("paged tail = %+v, want just the first batch", page)
	}
	if want := all[1].Bytes + all[2].Bytes; remaining != want {
		t.Errorf("remainingBytes = %d, want %d", remaining, want)
	}

	// Even a cap smaller than any frame ships at least one batch, so a
	// lagging follower always makes progress.
	page, _, _, ok = s.TailSince("g", 0, 1)
	if !ok || len(page) != 1 {
		t.Fatalf("tiny-cap tail = %d batches, want 1", len(page))
	}
}

func TestEpochPersistsAndChangesOnReplace(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	g, names := sampleGraph()
	if err := s.CreateGraph("g", g, names); err != nil {
		t.Fatal(err)
	}
	_, epoch1, err := s.GraphPos("g")
	if err != nil {
		t.Fatal(err)
	}
	if epoch1 == 0 {
		t.Fatal("CreateGraph minted epoch 0")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The epoch survives a restart: a follower of this leader resumes the
	// same stream.
	s2 := mustOpen(t, dir)
	seq, epoch2, err := s2.GraphPos("g")
	if err != nil {
		t.Fatal(err)
	}
	if epoch2 != epoch1 || seq != 0 {
		t.Fatalf("reopened pos = (%d, %d), want (0, %d)", seq, epoch2, epoch1)
	}

	// Replacing the graph mints a new epoch even though the seq range
	// overlaps, so a follower of the old stream gets 410, not bad data.
	g2, names2 := sampleGraph()
	if err := s2.CreateGraph("g", g2, names2); err != nil {
		t.Fatal(err)
	}
	if _, epoch3, _ := s2.GraphPos("g"); epoch3 == epoch1 {
		t.Error("replacement kept the old epoch")
	}
}

func TestCreateGraphAtRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	g, names := sampleGraph()
	// A follower bootstraps at the leader's position, adopting its epoch.
	if err := s.CreateGraphAt("g", g, names, 42, 777); err != nil {
		t.Fatal(err)
	}
	seq, epoch, err := s.GraphPos("g")
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 || epoch != 777 {
		t.Fatalf("pos = (%d, %d), want (42, 777)", seq, epoch)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	if seq, epoch, _ := s2.GraphPos("g"); seq != 42 || epoch != 777 {
		t.Fatalf("reopened pos = (%d, %d), want (42, 777)", seq, epoch)
	}
}

func TestAppendReplicated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	g, names := sampleGraph()
	if err := s.CreateGraphAt("g", g, names, 10, 5); err != nil {
		t.Fatal(err)
	}

	// A wrong start position must be rejected, not spliced in.
	err := s.AppendReplicated("g", RecordIDs, []EdgeRecord{{From: "0", Label: "x", To: "1"}}, 10)
	if !errors.Is(err, ErrSeqMismatch) {
		t.Fatalf("mis-sequenced append: err = %v, want ErrSeqMismatch", err)
	}

	// The leader journaled this batch with canonical-id resolution; the
	// follower must re-journal it with the same kind so its own replay
	// reproduces the exact id assignment.
	recs := []EdgeRecord{
		{From: "7", Label: "z", To: "0"},
		{From: "0", Label: "x", To: "2"},
	}
	if err := s.AppendReplicated("g", RecordIDs, recs, 12); err != nil {
		t.Fatal(err)
	}
	batches, head, _, ok := s.TailSince("g", 10, 0)
	if !ok || head != 12 || len(batches) != 1 {
		t.Fatalf("tail after replicated append = %+v head=%d ok=%v", batches, head, ok)
	}
	if batches[0].Kind != RecordIDs || !reflect.DeepEqual(batches[0].Recs, recs) {
		t.Fatalf("re-journaled batch = %+v, want kind ids with original records", batches[0])
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay: "7" grew the node range as an id (no interning as a name).
	s2 := mustOpen(t, dir)
	g2, names2, seq, err := s2.GraphState("g")
	if err != nil {
		t.Fatal(err)
	}
	if seq != 12 {
		t.Errorf("replayed seq = %d, want 12", seq)
	}
	if g2.Nodes() != 8 {
		t.Errorf("replayed nodes = %d, want 8 (id 7 grows the range)", g2.Nodes())
	}
	if len(names2) != 8 || names2[7] != "" {
		t.Errorf("names = %v, want 8 entries with id 7 unnamed", names2)
	}
	if !g2.HasEdge(7, "z", 0) || !g2.HasEdge(0, "x", 2) {
		t.Error("replayed graph is missing replicated edges")
	}
}

func TestCompactionRetention(t *testing.T) {
	dir := t.TempDir()
	// CompactBytes 1: any non-empty WAL counts as oversized, so eligibility
	// is decided purely by reservations.
	s, err := Open(dir, Options{NoSync: true, CompactBytes: 1, RetainFor: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	g, names := sampleGraph()
	if err := s.CreateGraph("g", g, names); err != nil {
		t.Fatal(err)
	}
	head, err := s.Append("g", []EdgeRecord{{From: "a", Label: "x", To: "b"}})
	if err != nil {
		t.Fatal(err)
	}

	// A live reservation trailing the head holds background compaction.
	s.ReserveTail("g", "f1", 0)
	if s.compactEligible("g") {
		t.Error("compactEligible with a live trailing reservation")
	}
	// A caught-up follower never blocks compaction.
	s.ReserveTail("g", "f1", head)
	if !s.compactEligible("g") {
		t.Error("not compactEligible with the reservation at the head")
	}
	// An expired reservation is pruned: a stalled follower holds the WAL
	// for at most RetainFor.
	s.ReserveTail("g", "f1", 0)
	time.Sleep(60 * time.Millisecond)
	if !s.compactEligible("g") {
		t.Error("not compactEligible after the reservation expired")
	}

	// Explicit Compact ignores reservations entirely: the lagging follower
	// must get "snapshot required" from its old position afterwards.
	s.ReserveTail("g", "f1", 0)
	if err := s.Compact("g"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := s.TailSince("g", 0, 0); ok {
		t.Error("compacted tail still served from seq 0")
	}
	if _, _, _, ok := s.TailSince("g", head, 0); !ok {
		t.Error("caught-up position unservable after compaction")
	}
}

func TestReplicaSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	g, names := sampleGraph()
	if err := s.CreateGraph("g", g, names); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append("g", []EdgeRecord{{From: "a", Label: "w", To: "e"}}); err != nil {
		t.Fatal(err)
	}
	raw, seq, epoch, err := s.ReplicaSnapshot("g")
	if err != nil {
		t.Fatal(err)
	}
	wantSeq, wantEpoch, _ := s.GraphPos("g")
	if seq != wantSeq || epoch != wantEpoch {
		t.Fatalf("snapshot pos = (%d, %d), want (%d, %d)", seq, epoch, wantSeq, wantEpoch)
	}
	g2, names2, seq2, err := DecodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	if seq2 != seq {
		t.Errorf("decoded seq = %d, want %d", seq2, seq)
	}
	if g2.Nodes() != 4 || !g2.HasEdge(0, "w", 3) {
		t.Errorf("decoded graph = %v, want the appended edge a-w->e", g2)
	}
	if !reflect.DeepEqual(names2, []string{"a", "b", "c", "e"}) {
		t.Errorf("decoded names = %v", names2)
	}
	if _, _, _, err := s.ReplicaSnapshot("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown graph: err = %v, want ErrNotFound", err)
	}
	if got := len(g2.Edges()); got != 3 {
		t.Errorf("decoded edge count = %d, want 3 (sample + appended)", got)
	}
}
