package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"
)

// The write-ahead log is a flat sequence of CRC-framed records, one frame
// per AddEdges batch:
//
//	uint32 payloadLen
//	uint32 crc32(payload)     (IEEE)
//	payload:
//	    uint8  kind           recTokens | recIDs
//	    uint32 edgeCount
//	    per edge: 3 × (uint16 tokenLen, token bytes)   from, label, to
//
// recTokens frames journal endpoints as the tokens the mutation named them
// by — a node name, or the decimal id for unnamed nodes — so replay re-runs
// the exact interning the serving layer performed (name table first, then
// numeric) and reproduces the same id assignment. recIDs frames come from
// id-addressed writers (Store.Log): endpoints are canonical decimal ids
// and replay NEVER consults the name table, so a node whose *name* happens
// to be a numeral cannot alias a different id. Frames are only ever
// appended; recovery reads frames until the first torn or corrupt one and
// truncates the file there, so a crash mid-append loses at most the record
// being written.

// EdgeRecord is one journaled edge, endpoints addressed by node token:
// a node name, or the decimal id of an unnamed node. On replay, unknown
// non-numeric tokens intern as new nodes and numeric tokens beyond the
// node range grow the graph — the same rules the serving layer applies.
type EdgeRecord struct {
	From  string
	Label string
	To    string
}

// Frame kinds: how replay resolves the endpoint tokens.
const (
	recTokens byte = 1 // names-first, then decimal ids (serving-layer interning)
	recIDs    byte = 2 // canonical decimal ids only, name table ignored
)

// RecordKind is the exported form of a frame's resolution kind, carried by
// the replication tail so a follower re-journals each batch with the exact
// resolution semantics the leader recorded.
type RecordKind byte

// The two record kinds, see the frame format above.
const (
	RecordTokens = RecordKind(recTokens)
	RecordIDs    = RecordKind(recIDs)
)

// String renders the kind for the replication wire form.
func (k RecordKind) String() string {
	switch k {
	case RecordTokens:
		return "tokens"
	case RecordIDs:
		return "ids"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// ParseRecordKind inverts RecordKind.String.
func ParseRecordKind(s string) (RecordKind, error) {
	switch s {
	case "tokens":
		return RecordTokens, nil
	case "ids":
		return RecordIDs, nil
	default:
		return 0, fmt.Errorf("store: unknown WAL record kind %q", s)
	}
}

// Valid reports whether k is one of the two defined kinds.
func (k RecordKind) Valid() bool { return k == RecordTokens || k == RecordIDs }

// walBatch is one decoded frame.
type walBatch struct {
	kind byte
	recs []EdgeRecord
}

// maxWALPayload bounds a frame's declared payload so a corrupt length
// field cannot drive a huge allocation; it matches the serving layer's
// 64 MiB document bound.
const maxWALPayload = 64 << 20

// appendFrame encodes one batch as a frame and writes it to w.
func appendFrame(w io.Writer, kind byte, recs []EdgeRecord) (int64, error) {
	payload, err := encodeFrame(kind, recs)
	if err != nil {
		return 0, err
	}
	var head [8]byte
	binary.LittleEndian.PutUint32(head[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(head[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(head[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return int64(len(head)) + int64(len(payload)), nil
}

func encodeFrame(kind byte, recs []EdgeRecord) ([]byte, error) {
	if kind != recTokens && kind != recIDs {
		return nil, fmt.Errorf("store: unknown WAL record kind %d", kind)
	}
	size := 5
	for _, r := range recs {
		for _, tok := range []string{r.From, r.Label, r.To} {
			if len(tok) > 1<<16-1 {
				return nil, fmt.Errorf("store: token too long for WAL record: %d bytes", len(tok))
			}
			size += 2 + len(tok)
		}
	}
	if size > maxWALPayload {
		return nil, fmt.Errorf("store: WAL batch of %d bytes exceeds the %d frame bound", size, maxWALPayload)
	}
	payload := make([]byte, 0, size)
	payload = append(payload, kind)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(recs)))
	for _, r := range recs {
		for _, tok := range []string{r.From, r.Label, r.To} {
			payload = binary.LittleEndian.AppendUint16(payload, uint16(len(tok)))
			payload = append(payload, tok...)
		}
	}
	return payload, nil
}

// canonicalID reports whether tok is the canonical decimal rendering of a
// non-negative int — the only endpoint form recIDs frames may carry.
func canonicalID(tok string) bool {
	id, err := strconv.Atoi(tok)
	return err == nil && id >= 0 && strconv.Itoa(id) == tok
}

func decodeFrame(payload []byte) (walBatch, error) {
	if len(payload) < 5 {
		return walBatch{}, fmt.Errorf("store: WAL payload of %d bytes is shorter than its header", len(payload))
	}
	kind := payload[0]
	if kind != recTokens && kind != recIDs {
		return walBatch{}, fmt.Errorf("store: unknown WAL record kind %d", kind)
	}
	count := binary.LittleEndian.Uint32(payload[1:5])
	off := 5
	token := func() (string, error) {
		if off+2 > len(payload) {
			return "", fmt.Errorf("store: WAL payload truncated at token length")
		}
		n := int(binary.LittleEndian.Uint16(payload[off : off+2]))
		off += 2
		if off+n > len(payload) {
			return "", fmt.Errorf("store: WAL payload truncated inside token")
		}
		tok := string(payload[off : off+n])
		off += n
		return tok, nil
	}
	// Each edge needs at least 6 bytes (three empty tokens), bounding the
	// allocation by the payload actually present.
	if int64(count) > int64(len(payload))/6+1 {
		return walBatch{}, fmt.Errorf("store: WAL payload declares %d edges in %d bytes", count, len(payload))
	}
	recs := make([]EdgeRecord, 0, count)
	for k := uint32(0); k < count; k++ {
		var r EdgeRecord
		var err error
		if r.From, err = token(); err != nil {
			return walBatch{}, err
		}
		if r.Label, err = token(); err != nil {
			return walBatch{}, err
		}
		if r.To, err = token(); err != nil {
			return walBatch{}, err
		}
		if r.Label == "" || r.From == "" || r.To == "" {
			// An empty node token would be indistinguishable from
			// "unnamed" in the snapshot's name table and make replay
			// diverge from the live state; Append rejects these, so a
			// frame carrying one is corrupt.
			return walBatch{}, fmt.Errorf("store: WAL record with empty token %+v", r)
		}
		if kind == recIDs && (!canonicalID(r.From) || !canonicalID(r.To)) {
			return walBatch{}, fmt.Errorf("store: id-addressed WAL record with non-id endpoint %+v", r)
		}
		recs = append(recs, r)
	}
	if off != len(payload) {
		return walBatch{}, fmt.Errorf("store: %d trailing bytes in WAL payload", len(payload)-off)
	}
	return walBatch{kind: kind, recs: recs}, nil
}

// replayWAL reads frames from r until EOF or the first torn/corrupt frame,
// handing each decoded batch (with its on-disk frame size) to apply one at
// a time — so replaying an arbitrarily long log holds a single batch in
// memory, never the whole WAL — and returns the byte offset of the end of
// the last good frame. A short header, short payload, CRC mismatch or
// undecodable payload all end the replay at the preceding frame boundary —
// that is the crash-recovery contract: everything before the tear
// survives, the tear itself is discarded. Only an I/O failure (not
// corruption) or an apply error is reported as an error.
func replayWAL(r io.Reader, apply func(b walBatch, frameBytes int64) error) (goodBytes int64, err error) {
	br := bufio.NewReader(r)
	for {
		var head [8]byte
		if _, err := io.ReadFull(br, head[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return goodBytes, nil
			}
			return goodBytes, err
		}
		length := binary.LittleEndian.Uint32(head[0:4])
		sum := binary.LittleEndian.Uint32(head[4:8])
		if length > maxWALPayload {
			return goodBytes, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return goodBytes, nil
			}
			return goodBytes, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return goodBytes, nil
		}
		b, err := decodeFrame(payload)
		if err != nil {
			return goodBytes, nil
		}
		if err := apply(b, 8+int64(length)); err != nil {
			return goodBytes, err
		}
		goodBytes += 8 + int64(length)
	}
}
