package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Edge-list format: the minimal labelled-graph text format, one edge per
// line as three whitespace-separated fields
//
//	from label to
//
// with '#' comments and blank lines skipped. Node fields are arbitrary
// (whitespace-free) names, interned to ids in first-appearance order, so
// the format round-trips through the same (Graph, name map) pair as the
// N-Triples loader. Unlike the N-Triples loader no inverse edges are
// synthesised: the file says exactly which edges exist.

// ParseEdgeList reads an edge-list document into a list of edges over node
// names (not yet interned to ids).
func ParseEdgeList(r io.Reader) ([][3]string, error) {
	var out [][3]string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("edgelist: line %d: expected 3 fields (from label to), got %d in %q",
				lineNo, len(fields), line)
		}
		out = append(out, [3]string{fields[0], fields[1], fields[2]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("edgelist: read: %w", err)
	}
	return out, nil
}

// LoadEdgeList reads an edge-list document into a graph, interning node
// names in first-appearance order; the returned map gives node id ← name.
func LoadEdgeList(r io.Reader) (*Graph, map[string]int, error) {
	rows, err := ParseEdgeList(r)
	if err != nil {
		return nil, nil, err
	}
	ids := map[string]int{}
	intern := func(name string) int {
		if id, ok := ids[name]; ok {
			return id
		}
		id := len(ids)
		ids[name] = id
		return id
	}
	g := New(0)
	for _, row := range rows {
		g.AddEdge(intern(row[0]), row[1], intern(row[2]))
	}
	return g, ids, nil
}

// WriteEdgeList writes the graph in edge-list syntax. Node ids are rendered
// through names when a name table is supplied (ids without a name, or a nil
// table, fall back to the decimal id).
func WriteEdgeList(w io.Writer, g *Graph, names []string) error {
	bw := bufio.NewWriter(w)
	render := func(v int) string {
		if v < len(names) && names[v] != "" {
			return names[v]
		}
		return fmt.Sprintf("%d", v)
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\n", render(e.From), e.Label, render(e.To)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
