package graph

import (
	"fmt"
	"math/rand"
)

// Chain returns a directed chain 0 → 1 → … → n-1 with every edge labelled
// label. A chain is exactly Valiant's setting: CFPQ over a chain is
// context-free recognition of a linear word.
func Chain(n int, label string) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, label, i+1)
	}
	return g
}

// Word returns a chain spelling the given word: node i connects to node i+1
// with label word[i]. CFPQ relations on Word(w) from node 0 to node len(w)
// coincide with string recognition of w.
func Word(word []string) *Graph {
	g := New(len(word) + 1)
	for i, l := range word {
		g.AddEdge(i, l, i+1)
	}
	return g
}

// Cycle returns a directed cycle of n nodes with the given label. Cyclic
// graphs are the case Valiant's original algorithm cannot handle and the
// paper's closure can.
func Cycle(n int, label string) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, label, (i+1)%n)
	}
	return g
}

// TwoCycles returns the classic worst-case CFPQ instance: two cycles of
// coprime lengths m and n sharing node 0, the first labelled a, the second
// labelled b. Querying S → a S b | a b on it produces a dense result.
func TwoCycles(m, n int, a, b string) *Graph {
	g := New(m + n - 1)
	// Cycle 0 →a→ 1 →a→ … →a→ m-1 →a→ 0.
	for i := 0; i < m; i++ {
		g.AddEdge(i, a, (i+1)%m)
	}
	// Cycle 0 →b→ m →b→ m+1 →b→ … →b→ m+n-2 →b→ 0.
	prev := 0
	for i := 0; i < n-1; i++ {
		g.AddEdge(prev, b, m+i)
		prev = m + i
	}
	g.AddEdge(prev, b, 0)
	return g
}

// CompleteBipartite returns edges from each of the first m nodes to each of
// the last n nodes, labelled label.
func CompleteBipartite(m, n int, label string) *Graph {
	g := New(m + n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			g.AddEdge(i, label, m+j)
		}
	}
	return g
}

// Random returns a uniform random labelled graph: n nodes, e edges, labels
// drawn uniformly from labels. Deterministic for a given rng state.
func Random(rng *rand.Rand, n, e int, labels []string) *Graph {
	if n <= 0 || len(labels) == 0 {
		panic("graph: Random requires nodes and labels")
	}
	g := New(n)
	for i := 0; i < e; i++ {
		g.AddEdge(rng.Intn(n), labels[rng.Intn(len(labels))], rng.Intn(n))
	}
	return g
}

// PreferentialAttachment generates a scale-free directed graph: nodes
// arrive one at a time and attach m edges to existing nodes with
// probability proportional to their current degree (Barabási–Albert).
// Labels are drawn uniformly. Scale-free degree distributions are the
// stress case for row-parallel SpGEMM: a few rows carry most of the work.
func PreferentialAttachment(rng *rand.Rand, n, m int, labels []string) *Graph {
	if n < 2 || m < 1 || len(labels) == 0 {
		panic("graph: PreferentialAttachment requires n ≥ 2, m ≥ 1 and labels")
	}
	g := New(n)
	// targets holds one entry per edge endpoint, so sampling uniformly
	// from it is degree-proportional sampling.
	targets := []int{0}
	for v := 1; v < n; v++ {
		k := m
		if k > v {
			k = v
		}
		chosen := map[int]bool{}
		for len(chosen) < k {
			t := targets[rng.Intn(len(targets))]
			if t == v || chosen[t] {
				// Rejection keeps the multigraph simple per new node.
				if len(chosen) >= v {
					break
				}
				continue
			}
			chosen[t] = true
			g.AddEdge(v, labels[rng.Intn(len(labels))], t)
			targets = append(targets, t)
		}
		targets = append(targets, v)
	}
	return g
}

// OntologyConfig shapes SyntheticOntology.
type OntologyConfig struct {
	// Classes is the number of classes in the subClassOf hierarchy.
	Classes int
	// MaxBranch bounds the fan-out when attaching a class to a parent.
	MaxBranch int
	// Instances is the number of individuals, each attached to 1..MaxTypes
	// classes with type edges.
	Instances int
	// MaxTypes bounds the number of type edges per instance.
	MaxTypes int
	// Seed makes the generator deterministic.
	Seed int64
}

// SyntheticOntology generates an RDF-like triple set shaped like the
// ontologies in the paper's dataset: a subClassOf tree over classes plus
// type edges from instances to classes. The paper's queries (same-layer and
// adjacent-layer, Figures 10 and 11) only inspect this structure, so graphs
// generated here exercise the same code paths as the original RDF files.
func SyntheticOntology(cfg OntologyConfig) []Triple {
	if cfg.Classes < 1 {
		panic("graph: SyntheticOntology requires at least one class")
	}
	if cfg.MaxBranch < 1 {
		cfg.MaxBranch = 3
	}
	if cfg.MaxTypes < 1 {
		cfg.MaxTypes = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var triples []Triple
	class := func(i int) string { return fmt.Sprintf("class%d", i) }
	inst := func(i int) string { return fmt.Sprintf("inst%d", i) }
	// Class hierarchy: each class i ≥ 1 picks a parent among earlier
	// classes, biased toward recent ones to get realistic depth.
	for i := 1; i < cfg.Classes; i++ {
		lo := i - cfg.MaxBranch*2
		if lo < 0 {
			lo = 0
		}
		parent := lo + rng.Intn(i-lo)
		triples = append(triples, Triple{
			Subject:   class(i),
			Predicate: "subClassOf",
			Object:    class(parent),
		})
	}
	for i := 0; i < cfg.Instances; i++ {
		k := 1 + rng.Intn(cfg.MaxTypes)
		for j := 0; j < k; j++ {
			triples = append(triples, Triple{
				Subject:   inst(i),
				Predicate: "type",
				Object:    class(rng.Intn(cfg.Classes)),
			})
		}
	}
	return triples
}
