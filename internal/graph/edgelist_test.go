package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestLoadEdgeList(t *testing.T) {
	src := `
# a comment
alice	knows	bob
bob knows carol
carol	likes	alice
`
	g, ids, err := LoadEdgeList(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != 3 || g.EdgeCount() != 3 {
		t.Fatalf("got %v, want 3 nodes / 3 edges", g)
	}
	want := map[string]int{"alice": 0, "bob": 1, "carol": 2}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("ids = %v, want %v", ids, want)
	}
	if !g.HasEdge(ids["alice"], "knows", ids["bob"]) ||
		!g.HasEdge(ids["bob"], "knows", ids["carol"]) ||
		!g.HasEdge(ids["carol"], "likes", ids["alice"]) {
		t.Fatalf("edges missing: %v", g.Edges())
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	for _, src := range []string{"a b", "a b c d", "only-one-field"} {
		if _, _, err := LoadEdgeList(strings.NewReader(src)); err == nil {
			t.Errorf("LoadEdgeList(%q): expected error", src)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	src := "x a y\ny a z\nz b x\n"
	g, ids, err := LoadEdgeList(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g, NodeNames(g.Nodes(), ids)); err != nil {
		t.Fatal(err)
	}
	g2, ids2, err := LoadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, ids2) {
		t.Fatalf("name maps differ after round trip: %v vs %v", ids, ids2)
	}
	if g.Nodes() != g2.Nodes() || g.EdgeCount() != g2.EdgeCount() {
		t.Fatalf("graphs differ after round trip: %v vs %v", g, g2)
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e.From, e.Label, e.To) {
			t.Fatalf("round trip lost edge %v", e)
		}
	}
}
