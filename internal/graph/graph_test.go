package graph

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestAddEdgeGrowsNodes(t *testing.T) {
	g := New(0)
	g.AddEdge(3, "a", 7)
	if g.Nodes() != 8 {
		t.Errorf("Nodes = %d, want 8", g.Nodes())
	}
	if g.EdgeCount() != 1 {
		t.Errorf("EdgeCount = %d, want 1", g.EdgeCount())
	}
	if !g.HasEdge(3, "a", 7) {
		t.Error("edge (3,a,7) missing")
	}
	if g.HasEdge(7, "a", 3) {
		t.Error("reverse edge should not exist")
	}
}

func TestParallelEdgesKept(t *testing.T) {
	g := New(2)
	g.AddEdge(0, "a", 1)
	g.AddEdge(0, "a", 1)
	g.AddEdge(0, "b", 1)
	if g.EdgeCount() != 3 {
		t.Errorf("EdgeCount = %d, want 3 (multigraph keeps parallels)", g.EdgeCount())
	}
	if got := len(g.EdgesWithLabel("a")); got != 2 {
		t.Errorf("a-edges = %d, want 2", got)
	}
}

func TestLabelsSorted(t *testing.T) {
	g := New(2)
	g.AddEdge(0, "z", 1)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "m", 0)
	if got, want := g.Labels(), []string{"a", "m", "z"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Labels = %v, want %v", got, want)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New(2)
	g.AddEdge(0, "a", 1)
	c := g.Clone()
	c.AddEdge(1, "b", 0)
	if g.EdgeCount() != 1 {
		t.Errorf("original mutated: EdgeCount = %d", g.EdgeCount())
	}
	if c.EdgeCount() != 2 {
		t.Errorf("clone EdgeCount = %d, want 2", c.EdgeCount())
	}
}

func TestDisjointUnion(t *testing.T) {
	a := New(2)
	a.AddEdge(0, "x", 1)
	b := New(3)
	b.AddEdge(1, "y", 2)
	shift := a.DisjointUnion(b)
	if shift != 2 {
		t.Errorf("shift = %d, want 2", shift)
	}
	if a.Nodes() != 5 {
		t.Errorf("Nodes = %d, want 5", a.Nodes())
	}
	if !a.HasEdge(3, "y", 4) {
		t.Error("shifted edge (3,y,4) missing")
	}
}

func TestRepeat(t *testing.T) {
	g := Cycle(3, "a")
	r := Repeat(g, 4)
	if r.Nodes() != 12 {
		t.Errorf("Nodes = %d, want 12", r.Nodes())
	}
	if r.EdgeCount() != 12 {
		t.Errorf("EdgeCount = %d, want 12", r.EdgeCount())
	}
	// Copies must be disjoint: no edge crosses a 3-node block boundary.
	for _, e := range r.Edges() {
		if e.From/3 != e.To/3 {
			t.Errorf("edge %v crosses copies", e)
		}
	}
}

func TestRepeatPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Repeat(g, 0) should panic")
		}
	}()
	Repeat(New(1), 0)
}

func TestChainWordCycle(t *testing.T) {
	c := Chain(4, "a")
	if c.EdgeCount() != 3 || !c.HasEdge(0, "a", 1) || !c.HasEdge(2, "a", 3) {
		t.Errorf("bad chain: %v", c.Edges())
	}
	w := Word([]string{"a", "b", "a"})
	if w.Nodes() != 4 || !w.HasEdge(1, "b", 2) {
		t.Errorf("bad word graph: %v", w.Edges())
	}
	cy := Cycle(3, "x")
	if !cy.HasEdge(2, "x", 0) {
		t.Error("cycle must wrap around")
	}
}

func TestTwoCycles(t *testing.T) {
	g := TwoCycles(2, 3, "a", "b")
	if g.Nodes() != 4 {
		t.Errorf("Nodes = %d, want 4", g.Nodes())
	}
	if got := len(g.EdgesWithLabel("a")); got != 2 {
		t.Errorf("a-edges = %d, want 2", got)
	}
	if got := len(g.EdgesWithLabel("b")); got != 3 {
		t.Errorf("b-edges = %d, want 3", got)
	}
	// Both cycles pass through node 0.
	foundA, foundB := false, false
	for _, e := range g.EdgesWithLabel("a") {
		if e.To == 0 {
			foundA = true
		}
	}
	for _, e := range g.EdgesWithLabel("b") {
		if e.To == 0 {
			foundB = true
		}
	}
	if !foundA || !foundB {
		t.Error("both cycles must close at node 0")
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(2, 3, "e")
	if g.EdgeCount() != 6 {
		t.Errorf("EdgeCount = %d, want 6", g.EdgeCount())
	}
	for i := 0; i < 2; i++ {
		for j := 2; j < 5; j++ {
			if !g.HasEdge(i, "e", j) {
				t.Errorf("missing edge (%d,e,%d)", i, j)
			}
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(rand.New(rand.NewSource(7)), 10, 30, []string{"a", "b"})
	b := Random(rand.New(rand.NewSource(7)), 10, 30, []string{"a", "b"})
	if !reflect.DeepEqual(a.Edges(), b.Edges()) {
		t.Error("Random with same seed should be identical")
	}
	if a.EdgeCount() != 30 {
		t.Errorf("EdgeCount = %d, want 30", a.EdgeCount())
	}
}

func TestAdjacency(t *testing.T) {
	g := New(3)
	g.AddEdge(0, "a", 1)
	g.AddEdge(0, "b", 2)
	g.AddEdge(1, "a", 2)
	adj := NewAdjacency(g)
	if got := len(adj.Out(0)); got != 2 {
		t.Errorf("Out(0) = %d edges, want 2", got)
	}
	if got := len(adj.In(2)); got != 2 {
		t.Errorf("In(2) = %d edges, want 2", got)
	}
	if got := len(adj.Out(2)); got != 0 {
		t.Errorf("Out(2) = %d edges, want 0", got)
	}
}

func TestOutEdges(t *testing.T) {
	g := New(3)
	g.AddEdge(0, "b", 1)
	g.AddEdge(0, "a", 2)
	g.AddEdge(1, "a", 0)
	out := g.OutEdges(0)
	if len(out) != 2 {
		t.Fatalf("OutEdges(0) = %v", out)
	}
	// Grouped by sorted label: a before b.
	if out[0].Label != "a" || out[1].Label != "b" {
		t.Errorf("OutEdges order: %v", out)
	}
}

func TestParseNTriples(t *testing.T) {
	src := `# a comment
<http://ex/a> <http://ex/p> <http://ex/b> .
_:blank <http://ex/p> "a literal" .

<http://ex/b> <http://ex/q> <http://ex/c>.
`
	triples, err := ParseNTriples(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != 3 {
		t.Fatalf("got %d triples, want 3", len(triples))
	}
	want := Triple{Subject: "http://ex/a", Predicate: "http://ex/p", Object: "http://ex/b"}
	if triples[0] != want {
		t.Errorf("triple[0] = %v, want %v", triples[0], want)
	}
	if triples[1].Subject != "_:blank" || triples[1].Object != "a literal" {
		t.Errorf("triple[1] = %v", triples[1])
	}
}

func TestParseNTriplesErrors(t *testing.T) {
	cases := []string{
		"<a> <b> .",       // two terms
		"<a <b> <c> .",    // unterminated IRI
		`<a> <b> "oops .`, // unterminated literal
	}
	for _, src := range cases {
		if _, err := ParseNTriples(strings.NewReader(src)); err == nil {
			t.Errorf("ParseNTriples(%q) succeeded, want error", src)
		}
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	triples := []Triple{
		{"a", "p", "b"},
		{"b", "q", "c"},
	}
	var b strings.Builder
	if err := WriteNTriples(&b, triples); err != nil {
		t.Fatal(err)
	}
	got, err := ParseNTriples(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, triples) {
		t.Errorf("round trip: %v != %v", got, triples)
	}
}

func TestFromTriplesAddsInverses(t *testing.T) {
	g, ids := FromTriples([]Triple{{"x", "subClassOf", "y"}})
	if g.EdgeCount() != 2 {
		t.Fatalf("EdgeCount = %d, want 2 (edge + inverse)", g.EdgeCount())
	}
	x, y := ids["x"], ids["y"]
	if !g.HasEdge(x, "subClassOf", y) {
		t.Error("forward edge missing")
	}
	if !g.HasEdge(y, "subClassOf"+InverseSuffix, x) {
		t.Error("inverse edge missing")
	}
}

func TestNodeNames(t *testing.T) {
	g, ids := FromTriples([]Triple{{"x", "p", "y"}})
	names := NodeNames(g.Nodes(), ids)
	if names[ids["x"]] != "x" || names[ids["y"]] != "y" {
		t.Errorf("NodeNames = %v", names)
	}
}

func TestSyntheticOntologyShape(t *testing.T) {
	cfg := OntologyConfig{Classes: 20, Instances: 30, MaxBranch: 3, MaxTypes: 2, Seed: 1}
	triples := SyntheticOntology(cfg)
	subClass, typ := 0, 0
	for _, tr := range triples {
		switch tr.Predicate {
		case "subClassOf":
			subClass++
		case "type":
			typ++
		default:
			t.Errorf("unexpected predicate %q", tr.Predicate)
		}
	}
	if subClass != 19 {
		t.Errorf("subClassOf count = %d, want Classes-1 = 19", subClass)
	}
	if typ < 30 {
		t.Errorf("type count = %d, want >= Instances", typ)
	}
	// Determinism.
	again := SyntheticOntology(cfg)
	if !reflect.DeepEqual(triples, again) {
		t.Error("SyntheticOntology must be deterministic for a fixed seed")
	}
	// The subClassOf structure must be acyclic (child points to earlier id).
	classID := func(s string) int {
		var id int
		if _, err := fmt.Sscanf(s, "class%d", &id); err != nil {
			t.Fatalf("bad class name %q", s)
		}
		return id
	}
	for _, tr := range triples {
		if tr.Predicate == "subClassOf" && classID(tr.Subject) <= classID(tr.Object) {
			t.Errorf("hierarchy edge %v not strictly child→parent", tr)
		}
	}
}

func TestLoadNTriples(t *testing.T) {
	src := "<a> <p> <b> .\n<b> <p> <c> .\n"
	g, ids, err := LoadNTriples(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != 3 {
		t.Errorf("Nodes = %d, want 3", g.Nodes())
	}
	if g.EdgeCount() != 4 {
		t.Errorf("EdgeCount = %d, want 4 (2 triples × 2 directions)", g.EdgeCount())
	}
	if !g.HasEdge(ids["c"], "p"+InverseSuffix, ids["b"]) {
		t.Error("inverse edge missing after load")
	}
}

func TestPreferentialAttachment(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := PreferentialAttachment(rng, 200, 2, []string{"a", "b"})
	if g.Nodes() != 200 {
		t.Fatalf("Nodes = %d", g.Nodes())
	}
	// Node v attaches min(v, 2) edges: 1 + 2×198 = 397.
	if g.EdgeCount() != 397 {
		t.Errorf("EdgeCount = %d, want 397", g.EdgeCount())
	}
	// Scale-free shape: the max in-degree should clearly exceed the mean.
	indeg := make([]int, g.Nodes())
	for _, e := range g.Edges() {
		indeg[e.To]++
	}
	max := 0
	for _, d := range indeg {
		if d > max {
			max = d
		}
	}
	if max < 8 {
		t.Errorf("max in-degree %d: no hub formed", max)
	}
	// Determinism.
	again := PreferentialAttachment(rand.New(rand.NewSource(9)), 200, 2, []string{"a", "b"})
	if !reflect.DeepEqual(g.Edges(), again.Edges()) {
		t.Error("PreferentialAttachment must be deterministic per seed")
	}
}

func TestPreferentialAttachmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("n=1 should panic")
		}
	}()
	PreferentialAttachment(rand.New(rand.NewSource(1)), 1, 1, []string{"a"})
}

func TestStatsAndString(t *testing.T) {
	g := New(3)
	g.AddEdge(0, "a", 1)
	s := g.Stats()
	if s.Nodes != 3 || s.Edges != 1 || s.Labels != 1 {
		t.Errorf("Stats = %+v", s)
	}
	if str := g.String(); !strings.Contains(str, "nodes: 3") {
		t.Errorf("String = %q", str)
	}
}
