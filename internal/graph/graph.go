// Package graph implements edge-labelled directed multigraphs — the data
// model of context-free path querying — together with an N-Triples
// reader/writer, RDF expansion with inverse edges (as used in the paper's
// evaluation), graph algebra, and synthetic generators.
package graph

import (
	"fmt"
	"sort"
)

// Edge is a labelled directed edge (From, Label, To) ∈ V × Σ × V.
type Edge struct {
	From  int
	Label string
	To    int
}

// Graph is an edge-labelled directed multigraph with nodes 0..N-1.
// Adjacency is stored per label, which is the access pattern of every CFPQ
// algorithm (initialisation scans edges by label).
type Graph struct {
	n       int
	byLabel map[string][]Edge
	edges   int
}

// New returns a graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{n: n, byLabel: map[string][]Edge{}}
}

// Nodes returns the number of nodes.
func (g *Graph) Nodes() int { return g.n }

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int { return g.edges }

// EnsureNode grows the graph so that node v exists.
func (g *Graph) EnsureNode(v int) {
	if v >= g.n {
		g.n = v + 1
	}
}

// AddEdge inserts the edge (from, label, to), growing the node set if
// needed. Parallel edges (same endpoints, same label) are kept: the graph is
// a multigraph, exactly as in the paper's initialisation step which unions
// contributions from multiple edges.
func (g *Graph) AddEdge(from int, label string, to int) {
	if from < 0 || to < 0 {
		panic(fmt.Sprintf("graph: negative node in edge (%d,%s,%d)", from, label, to))
	}
	g.EnsureNode(from)
	g.EnsureNode(to)
	g.byLabel[label] = append(g.byLabel[label], Edge{From: from, Label: label, To: to})
	g.edges++
}

// Labels returns the sorted set of edge labels present in the graph.
func (g *Graph) Labels() []string {
	out := make([]string, 0, len(g.byLabel))
	for l := range g.byLabel {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// EdgesWithLabel returns the edges carrying the given label. The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) EdgesWithLabel(label string) []Edge {
	return g.byLabel[label]
}

// Edges returns all edges, grouped by label in sorted label order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for _, l := range g.Labels() {
		out = append(out, g.byLabel[l]...)
	}
	return out
}

// HasEdge reports whether an edge (from, label, to) exists.
func (g *Graph) HasEdge(from int, label string, to int) bool {
	for _, e := range g.byLabel[label] {
		if e.From == from && e.To == to {
			return true
		}
	}
	return false
}

// OutEdges returns all edges leaving node v. Cost is O(|E|); CFPQ engines
// that need fast per-node access should build an adjacency index with
// NewAdjacency.
func (g *Graph) OutEdges(v int) []Edge {
	var out []Edge
	for _, l := range g.Labels() {
		for _, e := range g.byLabel[l] {
			if e.From == v {
				out = append(out, e)
			}
		}
	}
	return out
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	out := New(g.n)
	for l, es := range g.byLabel {
		cp := make([]Edge, len(es))
		copy(cp, es)
		out.byLabel[l] = cp
		out.edges += len(es)
	}
	return out
}

// DisjointUnion appends a copy of other to g, shifting other's node ids by
// g.Nodes(). It returns the shift applied, so callers can map other's node
// ids into the combined graph.
func (g *Graph) DisjointUnion(other *Graph) int {
	shift := g.n
	g.n += other.n
	for l, es := range other.byLabel {
		for _, e := range es {
			g.byLabel[l] = append(g.byLabel[l], Edge{From: e.From + shift, Label: l, To: e.To + shift})
			g.edges++
		}
	}
	return shift
}

// Repeat returns k disjoint copies of g as one graph. The paper builds its
// synthetic graphs g1, g2, g3 "simply repeating the existing graphs"; this
// is that operation.
func Repeat(g *Graph, k int) *Graph {
	if k < 1 {
		panic("graph: Repeat requires k >= 1")
	}
	out := New(0)
	for i := 0; i < k; i++ {
		out.DisjointUnion(g)
	}
	return out
}

// Stats summarises a graph for reports.
type Stats struct {
	Nodes  int
	Edges  int
	Labels int
}

// Stats returns summary statistics.
func (g *Graph) Stats() Stats {
	return Stats{Nodes: g.n, Edges: g.edges, Labels: len(g.byLabel)}
}

// String renders a short description.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{nodes: %d, edges: %d, labels: %d}", g.n, g.edges, len(g.byLabel))
}

// Adjacency is a per-node out-edge index over a Graph, used by worklist
// algorithms (Hellings, GLL) that traverse from nodes rather than scanning
// label lists.
type Adjacency struct {
	out [][]Edge
	in  [][]Edge
}

// NewAdjacency builds the index.
func NewAdjacency(g *Graph) *Adjacency {
	a := &Adjacency{
		out: make([][]Edge, g.n),
		in:  make([][]Edge, g.n),
	}
	for _, l := range g.Labels() {
		for _, e := range g.byLabel[l] {
			a.out[e.From] = append(a.out[e.From], e)
			a.in[e.To] = append(a.in[e.To], e)
		}
	}
	return a
}

// Out returns the out-edges of v.
func (a *Adjacency) Out(v int) []Edge { return a.out[v] }

// In returns the in-edges of v.
func (a *Adjacency) In(v int) []Edge { return a.in[v] }
