package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Triple is an RDF triple (Subject, Predicate, Object) of IRI/literal
// strings, before conversion to graph node ids.
type Triple struct {
	Subject, Predicate, Object string
}

// ParseNTriples reads a (simplified) N-Triples document: one triple per
// line, three whitespace-separated terms terminated by '.', with IRIs in
// <angle brackets>, blank nodes as _:name, and literals in double quotes.
// Comments (#) and blank lines are skipped. This covers the RDF ontology
// files used in the paper's evaluation.
func ParseNTriples(r io.Reader) ([]Triple, error) {
	var out []Triple
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseTripleLine(line)
		if err != nil {
			return nil, fmt.Errorf("ntriples: line %d: %w", lineNo, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ntriples: read: %w", err)
	}
	return out, nil
}

func parseTripleLine(line string) (Triple, error) {
	terms, err := splitTerms(line)
	if err != nil {
		return Triple{}, err
	}
	if len(terms) != 3 {
		return Triple{}, fmt.Errorf("expected 3 terms, got %d in %q", len(terms), line)
	}
	return Triple{Subject: terms[0], Predicate: terms[1], Object: terms[2]}, nil
}

// splitTerms tokenizes a triple line, stripping the trailing '.' and the
// IRI/literal delimiters.
func splitTerms(line string) ([]string, error) {
	line = strings.TrimSpace(line)
	line = strings.TrimSuffix(line, ".")
	line = strings.TrimSpace(line)
	var terms []string
	i := 0
	for i < len(line) {
		switch {
		case line[i] == ' ' || line[i] == '\t':
			i++
		case line[i] == '<':
			j := strings.IndexByte(line[i:], '>')
			if j < 0 {
				return nil, fmt.Errorf("unterminated IRI in %q", line)
			}
			terms = append(terms, line[i+1:i+j])
			i += j + 1
		case line[i] == '"':
			j := i + 1
			for j < len(line) && line[j] != '"' {
				if line[j] == '\\' {
					j++
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated literal in %q", line)
			}
			lit := line[i+1 : j]
			j++
			// Skip any datatype/lang suffix (^^<...> or @lang).
			for j < len(line) && line[j] != ' ' && line[j] != '\t' {
				j++
			}
			terms = append(terms, lit)
			i = j
		default:
			j := i
			for j < len(line) && line[j] != ' ' && line[j] != '\t' {
				j++
			}
			terms = append(terms, line[i:j])
			i = j
		}
	}
	return terms, nil
}

// WriteNTriples writes triples in N-Triples syntax, one per line, with all
// terms serialised as IRIs.
func WriteNTriples(w io.Writer, triples []Triple) error {
	bw := bufio.NewWriter(w)
	for _, t := range triples {
		if _, err := fmt.Fprintf(bw, "<%s> <%s> <%s> .\n", t.Subject, t.Predicate, t.Object); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// InverseSuffix is appended to a predicate name to form the label of the
// reversed edge when RDF is expanded to a graph. The paper writes p⁻¹; we
// use "_r" so labels remain plain identifiers in grammar files.
const InverseSuffix = "_r"

// FromTriples converts RDF triples to an edge-labelled graph exactly as the
// paper does: "For each triple (o, p, s) from an RDF file, we added edges
// (o, p, s) and (s, p⁻¹, o) to the graph." Node ids are assigned in first
// appearance order; the returned map gives id ← IRI.
func FromTriples(triples []Triple) (*Graph, map[string]int) {
	ids := map[string]int{}
	intern := func(term string) int {
		if id, ok := ids[term]; ok {
			return id
		}
		id := len(ids)
		ids[term] = id
		return id
	}
	g := New(0)
	for _, t := range triples {
		o := intern(t.Subject)
		s := intern(t.Object)
		g.AddEdge(o, t.Predicate, s)
		g.AddEdge(s, t.Predicate+InverseSuffix, o)
	}
	return g, ids
}

// LoadNTriples reads an N-Triples document and expands it to a graph with
// inverse edges; the returned map gives node id ← IRI.
func LoadNTriples(r io.Reader) (*Graph, map[string]int, error) {
	triples, err := ParseNTriples(r)
	if err != nil {
		return nil, nil, err
	}
	g, ids := FromTriples(triples)
	return g, ids, nil
}

// NodeNames inverts an id map into a slice indexed by node id. Nodes without
// a name (none, when the map came from FromTriples) get empty strings.
func NodeNames(n int, ids map[string]int) []string {
	names := make([]string, n)
	type pair struct {
		name string
		id   int
	}
	pairs := make([]pair, 0, len(ids))
	for name, id := range ids {
		pairs = append(pairs, pair{name, id})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].id < pairs[j].id })
	for _, p := range pairs {
		if p.id >= 0 && p.id < n {
			names[p.id] = p.name
		}
	}
	return names
}
