package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseNTriples feeds arbitrary text to the N-Triples parser: it must
// never panic, and — whenever the parsed terms are representable in the
// writer's all-IRI output syntax (no '>' inside a term, which the IRI
// delimiter cannot escape) — the triples must survive a write-parse round
// trip exactly.
func FuzzParseNTriples(f *testing.F) {
	f.Add("<a> <p> <b> .\n<b> <p> <c> .\n")
	f.Add("# comment\n\n<s> <p> \"a literal\" .\n")
	f.Add("_:blank <p> <x> .")
	f.Add("<s> <p> \"esc\\\"aped\"^^<type> .")
	f.Add("<s> <p> \"lang\"@en .")
	f.Add("malformed line without terms")
	f.Fuzz(func(t *testing.T, input string) {
		triples, err := ParseNTriples(strings.NewReader(input)) // must not panic
		if err != nil {
			return
		}
		representable := true
		for _, tr := range triples {
			if strings.ContainsAny(tr.Subject+tr.Predicate+tr.Object, ">\n\r") {
				representable = false
				break
			}
		}
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, triples); err != nil {
			t.Fatalf("write failed: %v", err)
		}
		if !representable {
			// Still must not panic on the reparse.
			_, _ = ParseNTriples(bytes.NewReader(buf.Bytes()))
			return
		}
		back, err := ParseNTriples(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparse failed: %v\nwritten:\n%s", err, buf.String())
		}
		if len(back) != len(triples) {
			t.Fatalf("round trip changed triple count: %d -> %d\nwritten:\n%s",
				len(triples), len(back), buf.String())
		}
		for i := range triples {
			if back[i] != triples[i] {
				t.Fatalf("round trip changed triple %d: %v -> %v", i, triples[i], back[i])
			}
		}
	})
}

// FuzzParseEdgeList feeds arbitrary text to the edge-list loader: it must
// never panic, and accepted input must round-trip through WriteEdgeList —
// the rendered form of the reloaded graph must be byte-identical to the
// rendered form of the first load (node names are whitespace-free by
// construction, so the written file is always re-readable).
func FuzzParseEdgeList(f *testing.F) {
	f.Add("a knows b\nb knows c\n")
	f.Add("# comment\n\nx\ty\tz\n")
	f.Add("1 p 2\n2 p 1\n")
	f.Add("too many fields here now")
	f.Fuzz(func(t *testing.T, input string) {
		g, ids, err := LoadEdgeList(strings.NewReader(input)) // must not panic
		if err != nil {
			return
		}
		names := NodeNames(g.Nodes(), ids)
		var first bytes.Buffer
		if err := WriteEdgeList(&first, g, names); err != nil {
			t.Fatalf("write failed: %v", err)
		}
		g2, ids2, err := LoadEdgeList(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("reload failed: %v\nwritten:\n%s", err, first.String())
		}
		if g2.Nodes() != g.Nodes() || g2.EdgeCount() != g.EdgeCount() {
			t.Fatalf("reload changed shape: %v -> %v", g.Stats(), g2.Stats())
		}
		var second bytes.Buffer
		if err := WriteEdgeList(&second, g2, NodeNames(g2.Nodes(), ids2)); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("round trip not stable:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
		}
	})
}
