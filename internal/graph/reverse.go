package graph

import (
	"fmt"
	"io"
	"sort"
)

// Reverse returns the graph with every edge flipped (labels unchanged).
func Reverse(g *Graph) *Graph {
	out := New(g.n)
	for l, es := range g.byLabel {
		for _, e := range es {
			out.AddEdge(e.To, l, e.From)
		}
	}
	return out
}

// WriteDOT renders the graph in Graphviz DOT syntax for visualisation.
// Node names are optional; when nil, numeric ids are used.
func WriteDOT(w io.Writer, g *Graph, names []string) error {
	name := func(v int) string {
		if names != nil && v < len(names) && names[v] != "" {
			return names[v]
		}
		return fmt.Sprintf("n%d", v)
	}
	if _, err := fmt.Fprintln(w, "digraph G {"); err != nil {
		return err
	}
	labels := g.Labels()
	sort.Strings(labels)
	for _, l := range labels {
		for _, e := range g.byLabel[l] {
			if _, err := fmt.Fprintf(w, "  %q -> %q [label=%q];\n", name(e.From), name(e.To), l); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
