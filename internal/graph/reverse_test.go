package graph

import (
	"strings"
	"testing"
)

func TestReverse(t *testing.T) {
	g := New(3)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "b", 2)
	r := Reverse(g)
	if r.Nodes() != 3 || r.EdgeCount() != 2 {
		t.Fatalf("reverse stats: %v", r.Stats())
	}
	if !r.HasEdge(1, "a", 0) || !r.HasEdge(2, "b", 1) {
		t.Error("edges not flipped")
	}
	if r.HasEdge(0, "a", 1) {
		t.Error("original direction survived")
	}
	// Double reversal is the identity.
	rr := Reverse(r)
	if !rr.HasEdge(0, "a", 1) || !rr.HasEdge(1, "b", 2) || rr.EdgeCount() != 2 {
		t.Error("double reversal broken")
	}
}

func TestWriteDOT(t *testing.T) {
	g := New(2)
	g.AddEdge(0, "p", 1)
	var b strings.Builder
	if err := WriteDOT(&b, g, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"digraph G {", `"n0" -> "n1" [label="p"];`, "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTWithNames(t *testing.T) {
	g := New(2)
	g.AddEdge(0, "p", 1)
	var b strings.Builder
	if err := WriteDOT(&b, g, []string{"alpha", "beta"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"alpha" -> "beta"`) {
		t.Errorf("named DOT output wrong:\n%s", b.String())
	}
}
