package core

import (
	"fmt"
	"sort"
	"strings"
)

// CellSets reassembles the paper's matrix-of-sets view of the index: entry
// (i, j) holds the set of non-terminal names A with (i, j) ∈ R_A. This is
// the matrix T the paper prints in Figures 6–8.
func (ix *Index) CellSets() [][][]string {
	out := make([][][]string, ix.n)
	for i := range out {
		out[i] = make([][]string, ix.n)
	}
	for a, m := range ix.mats {
		name := ix.cnf.Names[a]
		m.Range(func(i, j int) bool {
			out[i][j] = append(out[i][j], name)
			return true
		})
	}
	for i := range out {
		for j := range out[i] {
			sort.Strings(out[i][j])
		}
	}
	return out
}

// FormatMatrix renders the matrix-of-sets view in the paper's style:
//
//	[ {S1}  {S3}  .    ]
//	[ .     .     {S3,S} ]
//	[ {S2}  .     {S4} ]
//
// Empty cells print as ".". Columns are aligned for readability.
func (ix *Index) FormatMatrix() string {
	cells := ix.CellSets()
	text := make([][]string, ix.n)
	width := make([]int, ix.n)
	for i := range cells {
		text[i] = make([]string, ix.n)
		for j := range cells[i] {
			s := "."
			if len(cells[i][j]) > 0 {
				s = "{" + strings.Join(cells[i][j], ",") + "}"
			}
			text[i][j] = s
			if len(s) > width[j] {
				width[j] = len(s)
			}
		}
	}
	var b strings.Builder
	for i := range text {
		b.WriteString("[ ")
		for j, s := range text[i] {
			fmt.Fprintf(&b, "%-*s ", width[j], s)
		}
		b.WriteString("]\n")
	}
	return b.String()
}
