package core

import (
	"math/rand"
	"testing"

	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// TestReversalDuality checks the structural invariant
//
//	(i, j) ∈ R_A(G, D)  ⟺  (j, i) ∈ R_A(reverse G, reverse D)
//
// on random graphs and grammars: reversing every production body and every
// edge transposes every relation. This exercises the CNF pipeline, the
// initialisation and the closure in one end-to-end algebraic check.
func TestReversalDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	grammars := []*grammar.Grammar{
		grammar.MustParse("S -> a S b | a b"),
		grammar.MustParse("S -> S S | a | b c"),
		grammar.MustParse("S -> A B\nA -> a | a A\nB -> b | B b"),
	}
	for trial := 0; trial < 8; trial++ {
		n := 3 + rng.Intn(10)
		g := graph.Random(rng, n, 3*n, []string{"a", "b", "c"})
		rg := graph.Reverse(g)
		for gi, gram := range grammars {
			cnf := grammar.MustCNF(gram)
			rcnf := grammar.MustCNF(grammar.Reverse(gram))
			fwd, _ := NewEngine().Run(g, cnf)
			bwd, _ := NewEngine().Run(rg, rcnf)
			for _, nt := range []string{"S", "A", "B"} {
				if _, ok := cnf.Index(nt); !ok {
					continue
				}
				f := fwd.Relation(nt)
				b := bwd.Relation(nt)
				if len(f) != len(b) {
					t.Fatalf("trial %d grammar %d: |R_%s| forward %d, backward %d",
						trial, gi, nt, len(f), len(b))
				}
				bset := map[matrix.Pair]bool{}
				for _, p := range b {
					bset[p] = true
				}
				for _, p := range f {
					if !bset[matrix.Pair{I: p.J, J: p.I}] {
						t.Fatalf("trial %d grammar %d: %v ∈ R_%s forward but transpose missing",
							trial, gi, p, nt)
					}
				}
			}
		}
	}
}

func TestReverseGrammarLanguage(t *testing.T) {
	g := grammar.MustParse("S -> a b c")
	r := grammar.Reverse(g)
	c := grammar.MustCNF(r)
	if !c.Derives("S", []string{"c", "b", "a"}) {
		t.Error("reversed grammar should derive c b a")
	}
	if c.Derives("S", []string{"a", "b", "c"}) {
		t.Error("reversed grammar should not derive a b c")
	}
}
