package core

import (
	"fmt"
	"math/rand"
	"testing"

	"cfpq/internal/baseline"
	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// benchInput builds a reproducible random graph and the Dyck grammar.
func benchInput(n int) (*graph.Graph, *grammar.CNF) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Random(rng, n, 4*n, []string{"a", "b"})
	return g, grammar.MustParseCNF("S -> a S b | a b")
}

// BenchmarkClosureBackends compares the full Algorithm 1 closure across
// matrix backends on random graphs.
func BenchmarkClosureBackends(b *testing.B) {
	for _, n := range []int{100, 400} {
		g, cnf := benchInput(n)
		for _, be := range matrix.Backends() {
			b.Run(fmt.Sprintf("%s/n=%d", be.Name(), n), func(b *testing.B) {
				e := NewEngine(WithBackend(be))
				for i := 0; i < b.N; i++ {
					e.Run(g, cnf)
				}
			})
		}
	}
}

// BenchmarkIterationSchedule is the ablation bench for the naive
// (paper-literal, snapshot) schedule versus the in-place schedule.
func BenchmarkIterationSchedule(b *testing.B) {
	g, cnf := benchInput(300)
	schedules := []struct {
		name string
		opts []Option
	}{
		{"in-place", []Option{WithBackend(matrix.Sparse())}},
		{"naive", []Option{WithBackend(matrix.Sparse()), WithNaiveIteration()}},
		{"delta", []Option{WithBackend(matrix.Sparse()), WithDeltaIteration()}},
	}
	for _, s := range schedules {
		b.Run(s.name, func(b *testing.B) {
			e := NewEngine(s.opts...)
			for i := 0; i < b.N; i++ {
				e.Run(g, cnf)
			}
		})
	}
}

// BenchmarkAgainstBaselines pits the matrix engine against the Hellings
// worklist and GLL baselines on the same input.
func BenchmarkAgainstBaselines(b *testing.B) {
	g, cnf := benchInput(200)
	gram := cnf.Grammar()
	b.Run("matrix-sparse", func(b *testing.B) {
		e := NewEngine(WithBackend(matrix.Sparse()))
		for i := 0; i < b.N; i++ {
			e.Run(g, cnf)
		}
	})
	b.Run("hellings", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.Hellings(g, cnf)
		}
	})
	b.Run("gll", func(b *testing.B) {
		gll := baseline.NewGLL(gram)
		for i := 0; i < b.N; i++ {
			gll.Relation(g, "S")
		}
	})
}

// BenchmarkSinglePathClosure measures the Section 5 length-annotated
// closure.
func BenchmarkSinglePathClosure(b *testing.B) {
	g, cnf := benchInput(150)
	for i := 0; i < b.N; i++ {
		NewPathIndex(g, cnf)
	}
}

// BenchmarkPathExtraction measures witness extraction amortised over all
// pairs of the relation.
func BenchmarkPathExtraction(b *testing.B) {
	g, cnf := benchInput(150)
	px := NewPathIndex(g, cnf)
	rel := px.Relation("S")
	if len(rel) == 0 {
		b.Skip("empty relation")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lp := rel[i%len(rel)]
		if _, ok := px.Path("S", lp.I, lp.J); !ok {
			b.Fatal("missing path")
		}
	}
}
