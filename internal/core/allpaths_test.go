package core

import (
	"testing"

	"cfpq/internal/grammar"
	"cfpq/internal/graph"
)

func TestAllPathsOnWordGraph(t *testing.T) {
	// Unambiguous grammar, acyclic graph: exactly one path per pair.
	cnf := grammar.MustParseCNF("S -> a S b | a b")
	g := graph.Word([]string{"a", "a", "b", "b"})
	ix, _ := NewEngine().Run(g, cnf)
	paths := ix.AllPaths(g, "S", 0, 4, AllPathsOptions{})
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1: %v", len(paths), paths)
	}
	if err := ValidatePath(paths[0], 0, 4); err != nil {
		t.Fatal(err)
	}
	if got := Labels(paths[0]); len(got) != 4 {
		t.Errorf("labels = %v", got)
	}
	// Inner pair too.
	inner := ix.AllPaths(g, "S", 1, 3, AllPathsOptions{})
	if len(inner) != 1 || len(inner[0]) != 2 {
		t.Errorf("inner paths = %v", inner)
	}
}

func TestAllPathsCycleBounded(t *testing.T) {
	// On the two-cycles instance the all-path semantics is infinite; the
	// enumeration must respect MaxPaths and produce valid, distinct,
	// length-ordered paths.
	g := graph.TwoCycles(2, 3, "a", "b")
	cnf := grammar.MustParseCNF("S -> a S b | a b")
	ix, _ := NewEngine().Run(g, cnf)
	paths := ix.AllPaths(g, "S", 0, 0, AllPathsOptions{MaxPaths: 5, MaxLength: 40})
	if len(paths) == 0 {
		t.Fatal("expected paths for (S,0,0)")
	}
	if len(paths) > 5 {
		t.Fatalf("MaxPaths violated: %d", len(paths))
	}
	seen := map[string]bool{}
	prevLen := 0
	for _, p := range paths {
		if err := ValidatePath(p, 0, 0); err != nil {
			t.Fatal(err)
		}
		if !cnf.Derives("S", Labels(p)) {
			t.Fatalf("path labels %v not in L(S)", Labels(p))
		}
		k := pathKey(p)
		if seen[k] {
			t.Fatalf("duplicate path %v", Labels(p))
		}
		seen[k] = true
		if len(p) < prevLen {
			t.Fatal("paths not in nondecreasing length order")
		}
		prevLen = len(p)
	}
}

func TestAllPathsAmbiguousGrammarDistinct(t *testing.T) {
	// S → S S | a on a chain: hugely ambiguous derivations, but the set of
	// distinct paths from 0 to n is exactly one per n.
	cnf := grammar.MustParseCNF("S -> S S | a")
	g := graph.Chain(5, "a")
	ix, _ := NewEngine().Run(g, cnf)
	for end := 1; end <= 4; end++ {
		paths := ix.AllPaths(g, "S", 0, end, AllPathsOptions{MaxLength: 6})
		if len(paths) != 1 {
			t.Errorf("(0,%d): got %d distinct paths, want 1", end, len(paths))
		}
	}
}

func TestAllPathsAbsentPair(t *testing.T) {
	cnf := grammar.MustParseCNF("S -> a b")
	g := graph.Word([]string{"a", "b"})
	ix, _ := NewEngine().Run(g, cnf)
	if got := ix.AllPaths(g, "S", 1, 0, AllPathsOptions{}); got != nil {
		t.Errorf("paths for absent pair: %v", got)
	}
	if got := ix.AllPaths(g, "Zed", 0, 2, AllPathsOptions{}); got != nil {
		t.Errorf("paths for unknown non-terminal: %v", got)
	}
}

func TestAllPathsMultipleWitnesses(t *testing.T) {
	// Diamond: two distinct a-edges from 0 to {1,2}, then b-edges to 3.
	// S → a b has two witnesses 0→1→3 and 0→2→3.
	g := graph.New(4)
	g.AddEdge(0, "a", 1)
	g.AddEdge(0, "a", 2)
	g.AddEdge(1, "b", 3)
	g.AddEdge(2, "b", 3)
	cnf := grammar.MustParseCNF("S -> a b")
	ix, _ := NewEngine().Run(g, cnf)
	paths := ix.AllPaths(g, "S", 0, 3, AllPathsOptions{})
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2: %v", len(paths), paths)
	}
	for _, p := range paths {
		if err := ValidatePath(p, 0, 3); err != nil {
			t.Fatal(err)
		}
	}
}
