package core

import (
	"context"
	"fmt"
	"sort"

	"cfpq/internal/grammar"
	"cfpq/internal/graph"
)

// PathIndex implements the paper's Section 5: the closure over matrices
// whose entries are (non-terminal, path length) pairs. Entry lengths[a][i]
// maps column j → l_A, the length of some path i π j with A ⇒* l(π).
//
// As in the paper, the length is fixed the first time a non-terminal is
// derived for a cell and never overwritten ("if some non-terminal A with an
// associated path length l₁ is in a⁽ᵖ⁾ᵢⱼ, then A is not added ... with an
// associated path length l₂ for all l₂ ≠ l₁"). The recorded length is
// therefore *a* witness length — not necessarily minimal — and paper
// Theorem 5 guarantees a path of exactly that length exists, which Path
// recovers by the paper's "simple search".
type PathIndex struct {
	cnf     *grammar.CNF
	g       *graph.Graph
	n       int
	lengths []map[int32]uint32 // flat [a*n + i] → column → length
}

// NewPathIndex evaluates the single-path closure for the graph and grammar.
// The closure is the same fixpoint as Algorithm 1, with the scalar semiring
// replaced by length bookkeeping. Lengths are fixed at first derivation, as
// in the paper.
func NewPathIndex(g *graph.Graph, cnf *grammar.CNF) *PathIndex {
	//lint:allow cfpqlint/ctxflow ctx-less convenience API kept for the paper-faithful surface; newPathIndex threads the caller ctx
	p, _ := newPathIndex(context.Background(), g, cnf, false)
	return p
}

// NewPathIndexContext is NewPathIndex with cooperative cancellation between
// fixpoint passes.
func NewPathIndexContext(ctx context.Context, g *graph.Graph, cnf *grammar.CNF) (*PathIndex, error) {
	return newPathIndex(ctx, g, cnf, false)
}

// NewShortestPathIndexContext is NewShortestPathIndex with cooperative
// cancellation between fixpoint passes.
func NewShortestPathIndexContext(ctx context.Context, g *graph.Graph, cnf *grammar.CNF) (*PathIndex, error) {
	return newPathIndex(ctx, g, cnf, true)
}

// NewShortestPathIndex is NewPathIndex over the min-plus relaxation: the
// recorded length of every pair is the *minimum* witness-path length, as in
// Hellings' single-path algorithm (which the paper contrasts with: "the
// length of these paths is not necessarily upper bounded" — here it is
// minimal, at the cost of more fixpoint work). Path extraction works
// unchanged and returns a shortest witness.
func NewShortestPathIndex(g *graph.Graph, cnf *grammar.CNF) *PathIndex {
	//lint:allow cfpqlint/ctxflow ctx-less convenience API kept for the paper-faithful surface; newPathIndex threads the caller ctx
	p, _ := newPathIndex(context.Background(), g, cnf, true)
	return p
}

func newPathIndex(ctx context.Context, g *graph.Graph, cnf *grammar.CNF, shortest bool) (*PathIndex, error) {
	n := g.Nodes()
	p := &PathIndex{
		cnf:     cnf,
		g:       g,
		n:       n,
		lengths: make([]map[int32]uint32, cnf.NonterminalCount()*n),
	}
	row := func(a, i int) map[int32]uint32 {
		r := p.lengths[a*n+i]
		if r == nil {
			r = map[int32]uint32{}
			p.lengths[a*n+i] = r
		}
		return r
	}
	// Initialisation: every matching edge contributes length 1.
	for t, as := range cnf.TermRules {
		for _, e := range g.EdgesWithLabel(t) {
			for _, a := range as {
				r := row(a, e.From)
				if _, ok := r[int32(e.To)]; !ok {
					r[int32(e.To)] = 1
				}
			}
		}
	}
	// Fixpoint: for A → B C, (i,k,l_B) and (k,j,l_C) yield (i,j,l_B+l_C).
	// First-found mode never overwrites (the paper's rule); shortest mode
	// relaxes with min until no length decreases (lengths are positive
	// integers bounded below, so this terminates). The context is checked
	// between passes.
	for changed := true; changed; {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		changed = false
		for _, r := range cnf.Binary {
			for i := 0; i < n; i++ {
				brow := p.lengths[r.B*n+i]
				if len(brow) == 0 {
					continue
				}
				for k, lb := range brow {
					crow := p.lengths[r.C*n+int(k)]
					if len(crow) == 0 {
						continue
					}
					var arow map[int32]uint32
					for j, lc := range crow {
						if arow == nil {
							arow = row(r.A, i)
						}
						cur, ok := arow[j]
						switch {
						case !ok:
							arow[j] = lb + lc
							changed = true
						case shortest && lb+lc < cur:
							arow[j] = lb + lc
							changed = true
						}
					}
				}
			}
		}
	}
	return p, nil
}

// Length returns the recorded witness-path length for (nt, i, j), or false
// when (i, j) ∉ R_nt.
func (p *PathIndex) Length(nt string, i, j int) (int, bool) {
	a, ok := p.cnf.Index(nt)
	if !ok {
		return 0, false
	}
	r := p.lengths[a*p.n+i]
	if r == nil {
		return 0, false
	}
	l, ok := r[int32(j)]
	return int(l), ok
}

// Has reports whether (i, j) ∈ R_nt; the PathIndex computes the same
// relations as the Boolean closure (paper Theorem 2 + Theorem 5).
func (p *PathIndex) Has(nt string, i, j int) bool {
	_, ok := p.Length(nt, i, j)
	return ok
}

// Relation returns R_nt as a sorted pair list together with the recorded
// witness length of each pair.
func (p *PathIndex) Relation(nt string) []LengthPair {
	a, ok := p.cnf.Index(nt)
	if !ok {
		return nil
	}
	var out []LengthPair
	for i := 0; i < p.n; i++ {
		r := p.lengths[a*p.n+i]
		for j, l := range r {
			out = append(out, LengthPair{I: i, J: int(j), Length: int(l)})
		}
	}
	sort.Slice(out, func(x, y int) bool {
		if out[x].I != out[y].I {
			return out[x].I < out[y].I
		}
		return out[x].J < out[y].J
	})
	return out
}

// LengthPair is a pair of R_A annotated with its witness-path length.
type LengthPair struct {
	I, J   int
	Length int
}

// Path recovers a concrete path i π j with nt ⇒* l(π) of exactly the
// recorded witness length, by the paper's simple search: a cell of length 1
// is an edge whose label has a terminal rule for nt; a longer cell splits
// at some middle node r through a binary rule A → B C with
// l_B(i,r) + l_C(r,j) = l_A(i,j). Returns false when (i, j) ∉ R_nt.
func (p *PathIndex) Path(nt string, i, j int) ([]graph.Edge, bool) {
	a, ok := p.cnf.Index(nt)
	if !ok {
		return nil, false
	}
	return p.path(a, i, j)
}

func (p *PathIndex) path(a, i, j int) ([]graph.Edge, bool) {
	r := p.lengths[a*p.n+i]
	if r == nil {
		return nil, false
	}
	la, ok := r[int32(j)]
	if !ok {
		return nil, false
	}
	if la == 1 {
		for t, as := range p.cnf.TermRules {
			if !containsInt(as, a) {
				continue
			}
			for _, e := range p.g.EdgesWithLabel(t) {
				if e.From == i && e.To == j {
					return []graph.Edge{e}, true
				}
			}
		}
		// Unreachable if the index is consistent.
		panic(fmt.Sprintf("core: no edge witnesses (%s, %d, %d) of length 1", p.cnf.Names[a], i, j))
	}
	for _, rule := range p.cnf.Binary {
		if rule.A != a {
			continue
		}
		brow := p.lengths[rule.B*p.n+i]
		for k, lb := range brow {
			if lb >= la {
				continue
			}
			crow := p.lengths[rule.C*p.n+int(k)]
			if lc, ok := crow[int32(j)]; ok && lb+lc == la {
				left, okL := p.path(rule.B, i, int(k))
				if !okL {
					continue
				}
				right, okR := p.path(rule.C, int(k), j)
				if !okR {
					continue
				}
				return append(left, right...), true
			}
		}
	}
	panic(fmt.Sprintf("core: no split witnesses (%s, %d, %d) of length %d", p.cnf.Names[a], i, j, la))
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Labels extracts the label word of a path.
func Labels(path []graph.Edge) []string {
	out := make([]string, len(path))
	for i, e := range path {
		out[i] = e.Label
	}
	return out
}

// ValidatePath checks that path is contiguous from i to j.
func ValidatePath(path []graph.Edge, i, j int) error {
	at := i
	for idx, e := range path {
		if e.From != at {
			return fmt.Errorf("core: edge %d starts at %d, want %d", idx, e.From, at)
		}
		at = e.To
	}
	if at != j {
		return fmt.Errorf("core: path ends at %d, want %d", at, j)
	}
	return nil
}
