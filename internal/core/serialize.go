package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"cfpq/internal/grammar"
	"cfpq/internal/matrix"
)

// Index serialization: a computed closure can be persisted and reloaded so
// repeated queries over a static graph skip the fixpoint entirely. The
// format is a compact row-sparse binary encoding; the payload is
// independent of the backend the index was computed with, but the header
// records the backend's identity so a reload can materialise the exact
// same representation and kernel (serial/parallel included) without the
// caller having to remember it out of band.
//
// Layout of the current format (all integers little-endian):
//
//	magic "CFPQIDX2"
//	uint16 backendNameLen, backend name bytes ("" = unrecorded)
//	uint32 nodeCount
//	uint32 nonterminalCount
//	per non-terminal:
//	    uint16 nameLen, name bytes
//	    uint32 nnz
//	    nnz × (uint32 row, uint32 col)   in row-major order
//
// The previous format, magic "CFPQIDX1", is identical minus the backend
// name and is still read transparently (it predates backend recording, so
// indexes loaded from it fall back to the reader's backend choice).
//
// The grammar itself is NOT serialised (names only): the reader supplies
// the CNF, and names must match exactly. This keeps the index format
// stable under grammar-text round-trips and forces the caller to pair the
// index with the grammar it was built from.

const (
	indexMagicV1 = "CFPQIDX1"
	indexMagic   = "CFPQIDX2"
)

// MaxIndexNodes bounds the node count ReadIndex accepts. Matrix
// allocation is driven by the declared node count before any entry is
// validated, so without a bound a corrupt or hostile header declaring
// 2³²-1 nodes would allocate gigabytes up front. The default matches the
// store's snapshot node bound — every graph the store can persist has a
// reloadable index — and sits four orders of magnitude beyond the
// paper's largest evaluation graph; callers with genuinely bigger
// indexes may raise it (fuzzing lowers it for throughput).
var MaxIndexNodes = 1 << 26

// WriteTo serialises the index in the CFPQIDX2 format, recording the
// backend the matrices were allocated from (an empty backend name when the
// index predates backend recording).
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	emit := func(data any) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		written += int64(binary.Size(data))
		return nil
	}
	emitString := func(s string) error {
		if len(s) > 1<<16-1 {
			return fmt.Errorf("core: string too long for index header: %d bytes", len(s))
		}
		if err := emit(uint16(len(s))); err != nil {
			return err
		}
		if _, err := bw.WriteString(s); err != nil {
			return err
		}
		written += int64(len(s))
		return nil
	}
	if _, err := bw.WriteString(indexMagic); err != nil {
		return written, err
	}
	written += int64(len(indexMagic))
	backendName := ""
	if ix.backend != nil {
		backendName = ix.backend.Name()
	}
	if err := emitString(backendName); err != nil {
		return written, err
	}
	if err := emit(uint32(ix.n)); err != nil {
		return written, err
	}
	if err := emit(uint32(len(ix.mats))); err != nil {
		return written, err
	}
	for a, m := range ix.mats {
		if err := emitString(ix.cnf.Names[a]); err != nil {
			return written, err
		}
		if err := emit(uint32(m.Nnz())); err != nil {
			return written, err
		}
		var rangeErr error
		m.Range(func(i, j int) bool {
			if err := emit(uint32(i)); err != nil {
				rangeErr = err
				return false
			}
			if err := emit(uint32(j)); err != nil {
				rangeErr = err
				return false
			}
			return true
		})
		if rangeErr != nil {
			return written, rangeErr
		}
	}
	return written, bw.Flush()
}

// readString reads a uint16-length-prefixed string.
func readString(br *bufio.Reader) (string, error) {
	var n uint16
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// ReadIndex deserialises an index previously written with WriteTo,
// accepting both the current CFPQIDX2 format and the legacy CFPQIDX1. The
// supplied CNF must be the grammar the index was computed for:
// non-terminal names and count are validated. Matrices are materialised
// with the given backend; nil means the backend recorded in the file
// (falling back to serial sparse for legacy indexes or unknown names).
func ReadIndex(r io.Reader, cnf *grammar.CNF, be matrix.Backend) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading index magic: %w", err)
	}
	recorded := ""
	switch string(magic) {
	case indexMagic:
		name, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("core: reading index backend: %w", err)
		}
		recorded = name
	case indexMagicV1:
		// Legacy format: no backend recorded.
	default:
		return nil, fmt.Errorf("core: bad index magic %q", magic)
	}
	if be == nil {
		if rb, ok := matrix.BackendByName(recorded); ok {
			be = rb
		} else {
			be = matrix.Sparse()
		}
	}
	var n32, nn32 uint32
	if err := binary.Read(br, binary.LittleEndian, &n32); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &nn32); err != nil {
		return nil, err
	}
	if int64(n32) > int64(MaxIndexNodes) {
		return nil, fmt.Errorf("core: index declares %d nodes, above the %d limit (core.MaxIndexNodes)", n32, MaxIndexNodes)
	}
	n := int(n32)
	if int(nn32) != cnf.NonterminalCount() {
		return nil, fmt.Errorf("core: index has %d non-terminals, grammar has %d",
			nn32, cnf.NonterminalCount())
	}
	ix := &Index{cnf: cnf, n: n, backend: be, mats: make([]matrix.Bool, cnf.NonterminalCount())}
	for k := 0; k < int(nn32); k++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		a, ok := cnf.Index(name)
		if !ok {
			return nil, fmt.Errorf("core: index non-terminal %q not in grammar", name)
		}
		if ix.mats[a] != nil {
			return nil, fmt.Errorf("core: duplicate non-terminal %q in index", name)
		}
		m := be.NewMatrix(n)
		var nnz uint32
		if err := binary.Read(br, binary.LittleEndian, &nnz); err != nil {
			return nil, err
		}
		for e := uint32(0); e < nnz; e++ {
			var i, j uint32
			if err := binary.Read(br, binary.LittleEndian, &i); err != nil {
				return nil, err
			}
			if err := binary.Read(br, binary.LittleEndian, &j); err != nil {
				return nil, err
			}
			if int(i) >= n || int(j) >= n {
				return nil, fmt.Errorf("core: entry (%d,%d) out of range for %d nodes", i, j, n)
			}
			m.Set(int(i), int(j))
		}
		ix.mats[a] = m
	}
	for a, m := range ix.mats {
		if m == nil {
			return nil, fmt.Errorf("core: non-terminal %q missing from index", cnf.Names[a])
		}
	}
	return ix, nil
}
