package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"cfpq/internal/grammar"
	"cfpq/internal/matrix"
)

// Index serialization: a computed closure can be persisted and reloaded so
// repeated queries over a static graph skip the fixpoint entirely. The
// format is a compact row-sparse binary encoding, independent of the
// backend the index was computed with; WriteTo always writes the sparse
// form and ReadIndex materialises into whichever backend the reading
// engine uses.
//
// Layout (all integers little-endian):
//
//	magic "CFPQIDX1"
//	uint32 nodeCount
//	uint32 nonterminalCount
//	per non-terminal:
//	    uint16 nameLen, name bytes
//	    uint32 nnz
//	    nnz × (uint32 row, uint32 col)   in row-major order
//
// The grammar itself is NOT serialised (names only): the reader supplies
// the CNF, and names must match exactly. This keeps the index format
// stable under grammar-text round-trips and forces the caller to pair the
// index with the grammar it was built from.

const indexMagic = "CFPQIDX1"

// WriteTo serialises the index.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	emit := func(data any) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		written += int64(binary.Size(data))
		return nil
	}
	if _, err := bw.WriteString(indexMagic); err != nil {
		return written, err
	}
	written += int64(len(indexMagic))
	if err := emit(uint32(ix.n)); err != nil {
		return written, err
	}
	if err := emit(uint32(len(ix.mats))); err != nil {
		return written, err
	}
	for a, m := range ix.mats {
		name := ix.cnf.Names[a]
		if len(name) > 1<<16-1 {
			return written, fmt.Errorf("core: non-terminal name too long: %d bytes", len(name))
		}
		if err := emit(uint16(len(name))); err != nil {
			return written, err
		}
		if _, err := bw.WriteString(name); err != nil {
			return written, err
		}
		written += int64(len(name))
		if err := emit(uint32(m.Nnz())); err != nil {
			return written, err
		}
		var rangeErr error
		m.Range(func(i, j int) bool {
			if err := emit(uint32(i)); err != nil {
				rangeErr = err
				return false
			}
			if err := emit(uint32(j)); err != nil {
				rangeErr = err
				return false
			}
			return true
		})
		if rangeErr != nil {
			return written, rangeErr
		}
	}
	return written, bw.Flush()
}

// ReadIndex deserialises an index previously written with WriteTo. The
// supplied CNF must be the grammar the index was computed for:
// non-terminal names and count are validated. Matrices are materialised
// with the given backend (nil means serial sparse).
func ReadIndex(r io.Reader, cnf *grammar.CNF, be matrix.Backend) (*Index, error) {
	if be == nil {
		be = matrix.Sparse()
	}
	br := bufio.NewReader(r)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading index magic: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("core: bad index magic %q", magic)
	}
	var n32, nn32 uint32
	if err := binary.Read(br, binary.LittleEndian, &n32); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &nn32); err != nil {
		return nil, err
	}
	n := int(n32)
	if int(nn32) != cnf.NonterminalCount() {
		return nil, fmt.Errorf("core: index has %d non-terminals, grammar has %d",
			nn32, cnf.NonterminalCount())
	}
	ix := &Index{cnf: cnf, n: n, backend: be, mats: make([]matrix.Bool, cnf.NonterminalCount())}
	for k := 0; k < int(nn32); k++ {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, err
		}
		nameBytes := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBytes); err != nil {
			return nil, err
		}
		a, ok := cnf.Index(string(nameBytes))
		if !ok {
			return nil, fmt.Errorf("core: index non-terminal %q not in grammar", nameBytes)
		}
		if ix.mats[a] != nil {
			return nil, fmt.Errorf("core: duplicate non-terminal %q in index", nameBytes)
		}
		m := be.NewMatrix(n)
		var nnz uint32
		if err := binary.Read(br, binary.LittleEndian, &nnz); err != nil {
			return nil, err
		}
		for e := uint32(0); e < nnz; e++ {
			var i, j uint32
			if err := binary.Read(br, binary.LittleEndian, &i); err != nil {
				return nil, err
			}
			if err := binary.Read(br, binary.LittleEndian, &j); err != nil {
				return nil, err
			}
			if int(i) >= n || int(j) >= n {
				return nil, fmt.Errorf("core: entry (%d,%d) out of range for %d nodes", i, j, n)
			}
			m.Set(int(i), int(j))
		}
		ix.mats[a] = m
	}
	for a, m := range ix.mats {
		if m == nil {
			return nil, fmt.Errorf("core: non-terminal %q missing from index", cnf.Names[a])
		}
	}
	return ix, nil
}
