package core

import (
	"context"
	"math/rand"
	"testing"

	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// sameGen is the paper's same-generation query over subClassOf/type edges.
func sameGen(t *testing.T) *grammar.Grammar {
	t.Helper()
	return grammar.MustParse(`
		S -> subClassOf_r S subClassOf | subClassOf_r subClassOf
		S -> type_r S type | type_r type
	`)
}

// TestQueryFromAgreesWithFilteredQuery checks, on random graphs and the
// same-generation grammar, that the source-restricted evaluation returns
// exactly the full query filtered to source rows — for every backend and
// for source sets of several sizes (including ones that saturate).
func TestQueryFromAgreesWithFilteredQuery(t *testing.T) {
	gram := sameGen(t)
	rng := rand.New(rand.NewSource(7))
	for _, be := range matrix.Backends() {
		e := NewEngine(WithBackend(be))
		for trial := 0; trial < 8; trial++ {
			n := 5 + rng.Intn(20)
			g := graph.Random(rng, n, 3*n, []string{"subClassOf", "subClassOf_r", "type", "type_r"})
			full, err := e.Query(g, gram, "S", QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 2, n / 2, n} {
				if k < 1 {
					k = 1
				}
				sources := make([]int, 0, k)
				seen := map[int]bool{}
				for len(sources) < k {
					s := rng.Intn(n)
					if !seen[s] {
						seen[s] = true
						sources = append(sources, s)
					}
				}
				got, err := e.QueryFromContext(context.Background(), g, gram, "S", sources, QueryOptions{})
				if err != nil {
					t.Fatal(err)
				}
				var want []matrix.Pair
				for _, p := range full {
					if seen[p.I] {
						want = append(want, p)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("%s n=%d k=%d: got %d pairs, want %d", be.Name(), n, k, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s n=%d k=%d: pair %d: got %v, want %v", be.Name(), n, k, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestRunFromActiveRowsMatchFullClosure checks the stronger invariant the
// restricted closure promises: at its fixpoint, EVERY active row equals the
// full closure's row — not just the source rows.
func TestRunFromActiveRowsMatchFullClosure(t *testing.T) {
	gram := sameGen(t)
	cnf := grammar.MustCNF(gram)
	rng := rand.New(rand.NewSource(11))
	e := NewEngine()
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(16)
		g := graph.Random(rng, n, 2*n, []string{"subClassOf", "subClassOf_r", "type", "type_r"})
		fullIx, _ := e.Run(g, cnf)
		src := []int{rng.Intn(n)}
		ix, fs, err := e.RunFromContext(context.Background(), g, cnf, src)
		if err != nil {
			t.Fatal(err)
		}
		if fs.Saturated {
			if !ix.Equal(fullIx) {
				t.Fatalf("saturated restricted closure differs from full closure")
			}
			continue
		}
		// Restricted bits must be a subset of the full closure; and every
		// full-closure bit in a restricted row that carries ANY bit of the
		// source's reachable fragment must be present. We verify subset +
		// exactness on the source row, which the API contract rests on.
		for _, nt := range cnf.Names {
			m, fm := ix.Matrix(nt), fullIx.Matrix(nt)
			m.Range(func(i, j int) bool {
				if !fm.Get(i, j) {
					t.Fatalf("restricted bit (%s,%d,%d) not in full closure", nt, i, j)
				}
				return true
			})
			fm.Range(func(i, j int) bool {
				if i == src[0] && !m.Get(i, j) {
					t.Fatalf("full-closure bit (%s,%d,%d) missing from restricted source row", nt, i, j)
				}
				return true
			})
		}
	}
}

// TestRunFromSaturationFallsBack forces saturation (query from every node
// of a strongly connected instance) and checks the result is the complete
// all-pairs closure.
func TestRunFromSaturationFallsBack(t *testing.T) {
	gram := grammar.MustParse("S -> a S b | a b")
	cnf := grammar.MustCNF(gram)
	g := graph.TwoCycles(5, 4, "a", "b")
	e := NewEngine()
	fullIx, _ := e.Run(g, cnf)
	sources := make([]int, g.Nodes())
	for i := range sources {
		sources[i] = i
	}
	ix, fs, err := e.RunFromContext(context.Background(), g, cnf, sources)
	if err != nil {
		t.Fatal(err)
	}
	if !fs.Saturated {
		t.Fatalf("expected saturation with all nodes as sources, frontier=%d", fs.Frontier)
	}
	if !ix.Equal(fullIx) {
		t.Fatalf("saturated result differs from full closure")
	}
}

// TestQueryFromEdgeCases covers empty source sets, out-of-range sources,
// unknown non-terminals and empty-path inclusion.
func TestQueryFromEdgeCases(t *testing.T) {
	ctx := context.Background()
	e := NewEngine()
	g := graph.Chain(4, "a")
	gram := grammar.MustParse("S -> a S | a | eps")

	if pairs, err := e.QueryFromContext(ctx, g, gram, "S", nil, QueryOptions{}); err != nil || len(pairs) != 0 {
		t.Fatalf("empty sources: got %v, %v", pairs, err)
	}
	if _, err := e.QueryFromContext(ctx, g, gram, "S", []int{4}, QueryOptions{}); err == nil {
		t.Fatal("out-of-range source: expected error")
	}
	if _, err := e.QueryFromContext(ctx, g, gram, "Nope", []int{0}, QueryOptions{}); err == nil {
		t.Fatal("unknown non-terminal: expected error")
	}
	pairs, err := e.QueryFromContext(ctx, g, gram, "S", []int{2}, QueryOptions{IncludeEmptyPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	// From node 2: (2,2) by ε, (2,3) by a.
	want := []matrix.Pair{{I: 2, J: 2}, {I: 2, J: 3}}
	if len(pairs) != len(want) {
		t.Fatalf("got %v, want %v", pairs, want)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("got %v, want %v", pairs, want)
		}
	}
}

// TestAddMulRowsMatchesMaskedAddMul cross-checks the masked kernel against
// the unmasked one row by row, across backends.
func TestAddMulRowsMatchesMaskedAddMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, be := range matrix.Backends() {
		for trial := 0; trial < 6; trial++ {
			n := 3 + rng.Intn(20)
			newRand := func() matrix.Bool {
				m := be.NewMatrix(n)
				for k := 0; k < 2*n; k++ {
					m.Set(rng.Intn(n), rng.Intn(n))
				}
				return m
			}
			a, b := newRand(), newRand()
			dst := newRand()
			mask := make([]bool, n)
			for i := range mask {
				mask[i] = rng.Intn(2) == 0
			}
			full := dst.Clone()
			full.AddMul(a, b)
			masked := dst.Clone()
			masked.AddMulRows(a, b, mask)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					want := dst.Get(i, j)
					if mask[i] {
						want = full.Get(i, j)
					}
					if masked.Get(i, j) != want {
						t.Fatalf("%s n=%d (%d,%d): masked=%v want=%v mask=%v",
							be.Name(), n, i, j, masked.Get(i, j), want, mask[i])
					}
				}
			}
		}
	}
}

// TestRunFromSaturationThreshold drives the restricted closure exactly
// across the ½-row saturation threshold: an a-chain of k edges from the
// single source reaches k+1 rows, so on a 10-node graph a 4-edge chain
// (frontier 5, 5·2 = n) stays restricted while a 5-edge chain (frontier
// 6, 6·2 > n) saturates and falls back to the full closure — for every
// backend, with the source row agreeing with the full closure either way.
func TestRunFromSaturationThreshold(t *testing.T) {
	const n = 10
	gram := grammar.MustParse("S -> a S | a")
	cnf := grammar.MustCNF(gram)
	for _, be := range matrix.Backends() {
		e := NewEngine(WithBackend(be))
		for edges := 1; edges < n; edges++ {
			g := graph.New(n)
			for i := 0; i < edges; i++ {
				g.AddEdge(i, "a", i+1)
			}
			fullIx, _ := e.Run(g, cnf)
			ix, fs, err := e.RunFromContext(context.Background(), g, cnf, []int{0})
			if err != nil {
				t.Fatal(err)
			}
			reach := edges + 1
			wantSat := reach*saturationDen > n*saturationNum
			if fs.Saturated != wantSat {
				t.Fatalf("%s %d-edge chain: Saturated=%v, want %v (frontier %d of %d)",
					be.Name(), edges, fs.Saturated, wantSat, reach, n)
			}
			wantFrontier := reach
			if wantSat {
				wantFrontier = n
			}
			if fs.Frontier != wantFrontier {
				t.Fatalf("%s %d-edge chain: Frontier=%d, want %d",
					be.Name(), edges, fs.Frontier, wantFrontier)
			}
			if wantSat && !ix.Equal(fullIx) {
				t.Fatalf("%s %d-edge chain: saturated fallback differs from full closure", be.Name(), edges)
			}
			m, fm := ix.Matrix("S"), fullIx.Matrix("S")
			for j := 0; j < n; j++ {
				if m.Get(0, j) != fm.Get(0, j) {
					t.Fatalf("%s %d-edge chain: source row disagrees at column %d", be.Name(), edges, j)
				}
			}
		}
	}
}
