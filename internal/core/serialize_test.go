package core

import (
	"bytes"
	"math/rand"
	"testing"

	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

func TestIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	cnf := grammar.MustParseCNF(paperCNF)
	g := graph.Random(rng, 12, 40, []string{"subClassOf", "subClassOf_r", "type", "type_r"})
	for _, writeBE := range matrix.Backends() {
		ix, _ := NewEngine(WithBackend(writeBE)).Run(g, cnf)
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		for _, readBE := range matrix.Backends() {
			got, err := ReadIndex(bytes.NewReader(buf.Bytes()), cnf, readBE)
			if err != nil {
				t.Fatalf("%s→%s: %v", writeBE.Name(), readBE.Name(), err)
			}
			if got.Nodes() != ix.Nodes() {
				t.Fatalf("node count mismatch")
			}
			for a := 0; a < cnf.NonterminalCount(); a++ {
				nt := cnf.Names[a]
				a1, a2 := ix.Relation(nt), got.Relation(nt)
				if len(a1) != len(a2) {
					t.Fatalf("%s→%s: R_%s size mismatch", writeBE.Name(), readBE.Name(), nt)
				}
				for k := range a1 {
					if a1[k] != a2[k] {
						t.Fatalf("%s→%s: R_%s differs at %d", writeBE.Name(), readBE.Name(), nt, k)
					}
				}
			}
		}
	}
}

func TestIndexRoundTripSupportsUpdate(t *testing.T) {
	// A reloaded index must accept incremental updates.
	cnf := grammar.MustParseCNF("S -> a S b | a b")
	g := graph.New(4)
	g.AddEdge(0, "a", 1)
	ix, _ := NewEngine().Run(g, cnf)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf, cnf, nil)
	if err != nil {
		t.Fatal(err)
	}
	NewEngine().Update(got, graph.Edge{From: 1, Label: "b", To: 2})
	if !got.Has("S", 0, 2) {
		t.Error("(0,2) missing after update on reloaded index")
	}
}

func TestReadIndexErrors(t *testing.T) {
	cnf := grammar.MustParseCNF("S -> a b")
	ix, _ := NewEngine().Run(graph.Word([]string{"a", "b"}), cnf)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncations at every interesting boundary must error, not panic.
	for _, cut := range []int{0, 4, len(indexMagic), len(indexMagic) + 2, len(good) / 2, len(good) - 1} {
		if _, err := ReadIndex(bytes.NewReader(good[:cut]), cnf, nil); err == nil {
			t.Errorf("truncation at %d succeeded", cut)
		}
	}
	// Corrupt magic.
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, err := ReadIndex(bytes.NewReader(bad), cnf, nil); err == nil {
		t.Error("bad magic accepted")
	}
	// Wrong grammar (different non-terminal set).
	other := grammar.MustParseCNF("Z -> a\nY -> b")
	if _, err := ReadIndex(bytes.NewReader(good), other, nil); err == nil {
		t.Error("mismatched grammar accepted")
	}
}

func TestIndexRecordsBackend(t *testing.T) {
	// CFPQIDX2 records the computing backend: reading with a nil backend
	// must materialise the exact representation the index was built with.
	cnf := grammar.MustParseCNF("S -> a S b | a b")
	g := graph.Cycle(6, "a")
	g.AddEdge(0, "b", 1)
	for _, be := range matrix.Backends() {
		ix, _ := NewEngine(WithBackend(be)).Run(g, cnf)
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadIndex(&buf, cnf, nil)
		if err != nil {
			t.Fatalf("%s: %v", be.Name(), err)
		}
		if got.Backend() == nil || got.Backend().Name() != be.Name() {
			t.Errorf("backend %s round-tripped as %v", be.Name(), got.Backend())
		}
	}
}

func TestReadIndexLegacyV1(t *testing.T) {
	// A CFPQIDX1 file (no backend header) must still read; the reader's
	// backend choice applies, with nil falling back to serial sparse.
	cnf := grammar.MustParseCNF("S -> a b")
	ix, _ := NewEngine().Run(graph.Word([]string{"a", "b"}), cnf)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	v2 := buf.Bytes()
	// Rewrite the header: magic "CFPQIDX1", dropping the uint16-prefixed
	// backend name that follows the magic in v2.
	legacy := append([]byte(indexMagicV1), v2[len(indexMagic)+2+len(ix.Backend().Name()):]...)
	got, err := ReadIndex(bytes.NewReader(legacy), cnf, nil)
	if err != nil {
		t.Fatalf("legacy read: %v", err)
	}
	if !got.Equal(ix) {
		t.Error("legacy index relations differ")
	}
	if got.Backend() == nil || got.Backend().Name() != "sparse" {
		t.Errorf("legacy read backend = %v, want sparse fallback", got.Backend())
	}
}

func TestReadIndexNodeLimit(t *testing.T) {
	cnf := grammar.MustParseCNF("S -> a b")
	ix, _ := NewEngine().Run(graph.Word([]string{"a", "b"}), cnf)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the node count (follows magic + backend string) to 2³²-1;
	// the guard must reject it instead of allocating.
	raw := buf.Bytes()
	off := len(indexMagic) + 2 + len(ix.Backend().Name())
	for k := 0; k < 4; k++ {
		raw[off+k] = 0xff
	}
	if _, err := ReadIndex(bytes.NewReader(raw), cnf, nil); err == nil {
		t.Error("oversized node count accepted")
	}
}

func TestWriteToReportsBytes(t *testing.T) {
	cnf := grammar.MustParseCNF("S -> a b")
	ix, _ := NewEngine().Run(graph.Word([]string{"a", "b"}), cnf)
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
}
