package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// saturationNum/saturationDen is the frontier-saturation threshold of the
// source-restricted closure: once more than half of all rows are active,
// masked products no longer save work over the plain closure (they scan the
// same operand rows and add mask bookkeeping), so the evaluation falls back
// to the full fixpoint.
const (
	saturationNum = 1
	saturationDen = 2
)

// FromStats extends Stats with what the source-restricted closure did.
type FromStats struct {
	Stats
	// Frontier is the final number of active rows — the sources plus every
	// node that became reachable through a derivation fragment.
	Frontier int `json:"frontier"`
	// Saturated reports that the frontier outgrew the saturation threshold
	// and the evaluation fell back to the full all-pairs closure.
	Saturated bool `json:"saturated"`
}

// RunFromContext computes the source-restricted closure: only the matrix
// rows of an *active set* — the given sources plus every node that shows up
// as the target of a computed relation entry — are maintained. At the
// fixpoint, every active row of every relation matrix is identical to the
// corresponding row of the full all-pairs closure (in particular the source
// rows), while rows outside the active set are left empty and unpaid-for.
//
// The schedule is the semi-naive delta iteration restricted to active
// rows, with the bookkeeping proportional to the frontier, not the graph:
// rows are seeded from a per-node out-edge index exactly once, when they
// activate; each pass multiplies only the previous pass's new bits
// (Δ_B × T_C and T_B × Δ_C, row-masked); and column activation scans only
// those new bits, cascading through a worklist (a seeded bit can activate
// the row its column names, whose seeds activate further rows, …).
// Completeness is the standard semi-naive argument plus: a missing pair
// (i, A, j) with i active would need a smaller missing pair in an active
// row, or a column never activated — both impossible at the fixpoint,
// since every added bit's column is activated when the bit is added.
//
// When the active set outgrows the saturation threshold (half of all
// rows), the remaining rows are seeded and the plain closure finishes the
// job; the result is then the full all-pairs index and FromStats.Saturated
// is set.
//
// Sources outside [0, g.Nodes()) are rejected; duplicate sources are fine.
// The engine's naive/delta schedule options do not apply to the restricted
// closure (they concern the all-pairs fixpoint only) except after
// saturation, where the closure finishes under the engine's schedule.
func (e *Engine) RunFromContext(ctx context.Context, g *graph.Graph, cnf *grammar.CNF, sources []int) (_ *Index, fs FromStats, _ error) {
	n := g.Nodes()
	for _, s := range sources {
		if s < 0 || s >= n {
			return nil, FromStats{}, fmt.Errorf("core: source node %d out of range [0,%d)", s, n)
		}
	}
	nn := cnf.NonterminalCount()
	// Pre-allocation budget check: the restricted closure starts with the
	// index matrices plus an equal set of delta matrices.
	if err := e.checkBudget(2 * int64(nn) * e.backend.EmptyBytes(n)); err != nil {
		return nil, FromStats{}, err
	}
	start := time.Now()
	defer func() { fs.Duration = time.Since(start) }()
	ix := &Index{cnf: cnf, n: n, backend: e.backend, mats: make([]matrix.Bool, nn)}
	for a := range ix.mats {
		ix.mats[a] = e.backend.NewMatrix(n)
	}
	fs.observePeak(2 * ix.Bytes())
	if len(sources) == 0 || n == 0 {
		return ix, fs, nil
	}
	pt := e.newPassTracer(ctx, "frontier", ix)

	// Per-row seeds: for every node, the terminal-rule bits its out-edges
	// contribute (Algorithm 1's initialisation, indexed by row). Built
	// once, O(E).
	type seed struct {
		to int
		as []int // non-terminal indices with A → label
	}
	seedsByRow := make([][]seed, n)
	for t, as := range cnf.TermRules {
		for _, edge := range g.EdgesWithLabel(t) {
			seedsByRow[edge.From] = append(seedsByRow[edge.From], seed{to: edge.To, as: as})
		}
	}

	active := make([]bool, n)
	count := 0
	var queue []int // activated rows waiting to be seeded
	activate := func(j int) {
		if !active[j] {
			active[j] = true
			count++
			queue = append(queue, j)
		}
	}
	// drain seeds every queued row into the index and into delta (the
	// seeded bits are new, so they must multiply next pass), activating
	// the columns they name — which can queue further rows.
	drain := func(delta []matrix.Bool) {
		for len(queue) > 0 {
			i := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, sd := range seedsByRow[i] {
				for _, a := range sd.as {
					if !ix.mats[a].Get(i, sd.to) {
						ix.mats[a].Set(i, sd.to)
						delta[a].Set(i, sd.to)
					}
				}
				activate(sd.to)
			}
		}
	}
	// fallback activates and seeds every remaining row and finishes with
	// the plain all-pairs closure from the current (sound) state. The pass
	// tracer is handed through, so the event chain continues across the
	// schedule switch (the fallback's seeding rows are one more "frontier"
	// event, then events carry the all-pairs phase).
	fallback := func(delta []matrix.Bool) (*Index, FromStats, error) {
		pt.beginPass()
		for i := 0; i < n; i++ {
			activate(i)
		}
		drain(delta)
		pt.endPass(0, count)
		fs.Frontier = n
		fs.Saturated = true
		st, err := e.closeTraced(ctx, ix, pt)
		fs.Stats.Add(st)
		if err != nil {
			return nil, fs, err
		}
		return ix, fs, nil
	}
	saturated := func() bool { return count*saturationDen > n*saturationNum }

	delta := make([]matrix.Bool, nn)
	for a := range delta {
		delta[a] = e.backend.NewMatrix(n)
	}
	pt.beginPass()
	for _, s := range sources {
		activate(s)
	}
	drain(delta)
	pt.endPass(0, count)
	if saturated() {
		return fallback(delta)
	}

	for {
		if err := ctx.Err(); err != nil {
			return nil, fs, err
		}
		est := ix.Bytes() + matsBytes(delta) + int64(nn)*e.backend.EmptyBytes(n)
		fs.observePeak(est)
		if err := e.checkBudget(est); err != nil {
			return nil, fs, err
		}
		empty := true
		for a := range delta {
			if delta[a].Nnz() > 0 {
				empty = false
				break
			}
		}
		if empty {
			fs.Frontier = count
			return ix, fs, nil
		}
		fs.Iterations++
		pt.beginPass()
		next := make([]matrix.Bool, nn)
		for a := range next {
			next[a] = e.backend.NewMatrix(n)
		}
		for _, r := range ix.cnf.Binary {
			fs.Products += 2
			next[r.A].AddMulRows(delta[r.B], ix.mats[r.C], active)
			next[r.A].AddMulRows(ix.mats[r.B], delta[r.C], active)
		}
		for a := range next {
			next[a].AndNot(ix.mats[a]) // keep only genuinely new bits
			ix.mats[a].Or(next[a])
			// Activate the columns of the new bits: those nodes head
			// derivation fragments later products read rows of.
			next[a].Range(func(i, j int) bool {
				activate(j)
				return true
			})
		}
		// Seed the rows those columns activated; seeded bits join next so
		// they multiply in the coming pass.
		drain(next)
		pt.endPass(2*len(ix.cnf.Binary), count)
		if saturated() {
			return fallback(next)
		}
		delta = next
	}
}

// QueryFromContext evaluates R_start restricted to the given source nodes:
// the result is exactly Query's pair list filtered to pairs whose first
// component is a source, computed without paying for the full n×n closure
// when the reachable frontier is small.
func (e *Engine) QueryFromContext(ctx context.Context, g *graph.Graph, gram *grammar.Grammar, start string, sources []int, opts QueryOptions) ([]matrix.Pair, error) {
	pairs, _, err := e.queryFrom(ctx, g, gram, start, sources, opts)
	return pairs, err
}

// QueryFromStatsContext is QueryFromContext, additionally reporting what
// the restricted closure did (frontier size, saturation, closure work) —
// the numbers the bench harness tracks.
func (e *Engine) QueryFromStatsContext(ctx context.Context, g *graph.Graph, gram *grammar.Grammar, start string, sources []int, opts QueryOptions) ([]matrix.Pair, FromStats, error) {
	return e.queryFrom(ctx, g, gram, start, sources, opts)
}

func (e *Engine) queryFrom(ctx context.Context, g *graph.Graph, gram *grammar.Grammar, start string, sources []int, opts QueryOptions) ([]matrix.Pair, FromStats, error) {
	if !gram.HasNonterminal(start) {
		return nil, FromStats{}, fmt.Errorf("core: unknown non-terminal %q", start)
	}
	cnf, err := grammar.ToCNF(gram)
	if err != nil {
		return nil, FromStats{}, err
	}
	ix, fs, err := e.RunFromContext(ctx, g, cnf, sources)
	if err != nil {
		return nil, fs, err
	}
	inSources := make([]bool, g.Nodes())
	for _, s := range sources {
		inSources[s] = true
	}
	var pairs []matrix.Pair
	if m := ix.Matrix(start); m != nil {
		m.Range(func(i, j int) bool {
			if inSources[i] {
				pairs = append(pairs, matrix.Pair{I: i, J: j})
			}
			return true
		})
	}
	if opts.IncludeEmptyPaths && cnf.Nullable[start] {
		seen := make(map[matrix.Pair]bool, len(pairs))
		for _, p := range pairs {
			seen[p] = true
		}
		for v, in := range inSources {
			if p := (matrix.Pair{I: v, J: v}); in && !seen[p] {
				pairs = append(pairs, p)
			}
		}
		sort.Slice(pairs, func(a, b int) bool {
			if pairs[a].I != pairs[b].I {
				return pairs[a].I < pairs[b].I
			}
			return pairs[a].J < pairs[b].J
		})
	}
	return pairs, fs, nil
}
