package core

import (
	"context"
	"testing"

	"cfpq/internal/grammar"
	"cfpq/internal/graph"
)

func traceTestIndex(t *testing.T) (*Engine, *Index) {
	t.Helper()
	g := graph.New(3)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "b", 2)
	cnf, err := grammar.ToCNF(grammar.MustParse("S -> a b"))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	ix, _, err := e.RunContext(context.Background(), g, cnf)
	if err != nil {
		t.Fatal(err)
	}
	return e, ix
}

func TestNewPassTracerNilWhenDisabled(t *testing.T) {
	e, ix := traceTestIndex(t)
	if pt := e.newPassTracer(context.Background(), "full", ix); pt != nil {
		t.Fatal("tracer allocated with no trace installed")
	}
	// An installed but hook-less trace is equally disabled.
	if pt := e.newPassTracer(WithTraceContext(context.Background(), &Trace{}), "full", ix); pt != nil {
		t.Fatal("tracer allocated for a trace with no hooks")
	}
}

func TestDisabledTracerCostsNoAllocations(t *testing.T) {
	// The disabled state is a nil *passTracer threaded through the closure
	// loop: every per-pass hook must be a pointer test, never an
	// allocation or an nnz scan.
	var pt *passTracer
	allocs := testing.AllocsPerRun(1000, func() {
		pt.snapshot()
		pt.setPhase("full")
		pt.beginPass()
		pt.endPass(3, 0)
		_ = pt.started()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %.1f per pass, want 0", allocs)
	}
}

func TestUntracedRunAllocatesNoEvents(t *testing.T) {
	// End to end: an untraced evaluation and a traced one of the same
	// instance must agree on the index while the untraced one never
	// constructs PassEvents (the traced run observing >0 events proves
	// the hook path is live, so the nil path is the one under test).
	g := graph.New(4)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(2, "b", 3)
	cnf, err := grammar.ToCNF(grammar.MustParse("S -> a S b | a b"))
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	traced := WithTraceContext(context.Background(), &Trace{Pass: func(PassEvent) { events++ }})
	e := NewEngine()
	if _, _, err := e.RunContext(traced, g, cnf); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("traced run fired no events")
	}
	if _, _, err := e.RunContext(context.Background(), g, cnf); err != nil {
		t.Fatal(err)
	}
}
