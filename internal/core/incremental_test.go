package core

import (
	"math/rand"
	"reflect"
	"testing"

	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// TestUpdateMatchesRecompute is the dynamic-CFPQ correctness property: for
// random graphs, closing a prefix of the edges and then Update-ing the rest
// one by one must equal closing the whole graph from scratch — for every
// backend and every non-terminal.
func TestUpdateMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	grams := []*grammar.CNF{
		grammar.MustParseCNF("S -> a S b | a b"),
		grammar.MustParseCNF(paperCNF),
		grammar.MustParseCNF("S -> S S | a"),
	}
	labels := []string{"a", "b", "subClassOf", "subClassOf_r", "type", "type_r"}
	for trial := 0; trial < 8; trial++ {
		n := 3 + rng.Intn(10)
		full := graph.Random(rng, n, 3*n, labels)
		edges := full.Edges()
		split := rng.Intn(len(edges))
		prefix := graph.New(n)
		for _, ed := range edges[:split] {
			prefix.AddEdge(ed.From, ed.Label, ed.To)
		}
		for gi, cnf := range grams {
			for _, be := range matrix.Backends() {
				e := NewEngine(WithBackend(be))
				want, _ := e.Run(full, cnf)
				got, _ := e.Run(prefix, cnf)
				for _, ed := range edges[split:] {
					e.Update(got, ed)
				}
				for a := 0; a < cnf.NonterminalCount(); a++ {
					nt := cnf.Names[a]
					if !reflect.DeepEqual(got.Relation(nt), want.Relation(nt)) {
						t.Fatalf("trial %d grammar %d backend %s: incremental R_%s = %v, want %v",
							trial, gi, be.Name(), nt, got.Relation(nt), want.Relation(nt))
					}
				}
			}
		}
	}
}

func TestUpdateBatch(t *testing.T) {
	// Updating with a batch of edges must equal one-by-one updates.
	cnf := grammar.MustParseCNF("S -> a S b | a b")
	g := graph.Word([]string{"a", "a", "b", "b"})
	e := NewEngine()
	// Start from an empty graph of the same size.
	empty := graph.New(g.Nodes())
	batch, _ := e.Run(empty, cnf)
	single, _ := e.Run(empty, cnf)
	e.Update(batch, g.Edges()...)
	for _, ed := range g.Edges() {
		e.Update(single, ed)
	}
	if !batch.Equal(single) {
		t.Error("batch and single-edge updates disagree")
	}
	if !batch.Has("S", 0, 4) {
		t.Error("(0,4) missing after updates")
	}
}

func TestUpdateNoOp(t *testing.T) {
	cnf := grammar.MustParseCNF("S -> a b")
	g := graph.Word([]string{"a", "b"})
	e := NewEngine()
	ix, _ := e.Run(g, cnf)
	before := ix.Clone()
	// Re-adding an existing edge changes nothing.
	stats := e.Update(ix, graph.Edge{From: 0, Label: "a", To: 1})
	if stats.Iterations != 0 {
		t.Errorf("re-adding an existing edge ran %d passes", stats.Iterations)
	}
	// Adding an edge with an irrelevant label changes nothing.
	stats = e.Update(ix, graph.Edge{From: 1, Label: "zzz", To: 2})
	if stats.Iterations != 0 {
		t.Errorf("irrelevant label ran %d passes", stats.Iterations)
	}
	if !ix.Equal(before) {
		t.Error("no-op updates mutated the index")
	}
}

func TestUpdateCreatesLongRangePairs(t *testing.T) {
	// Close a broken chain, then add the missing middle edge; distant
	// pairs must appear.
	cnf := grammar.MustParseCNF("S -> a S b | a b")
	g := graph.New(6)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	// gap: 2 -b-> 3 missing initially
	g.AddEdge(3, "b", 4)
	g.AddEdge(4, "b", 5)
	e := NewEngine()
	ix, _ := e.Run(g, cnf)
	if ix.Count("S") != 0 {
		t.Fatalf("no pairs expected before the bridge, got %v", ix.Relation("S"))
	}
	stats := e.Update(ix, graph.Edge{From: 2, Label: "b", To: 3})
	if stats.Iterations == 0 {
		t.Fatal("bridge edge should trigger propagation")
	}
	// a-edges 0→1→2, b-edges 2→3→4→5: aⁿbⁿ paths are a b (1→2→3) and
	// a a b b (0→…→4).
	want := []matrix.Pair{{I: 0, J: 4}, {I: 1, J: 3}}
	if got := ix.Relation("S"); !reflect.DeepEqual(got, want) {
		t.Errorf("R_S = %v, want %v", got, want)
	}
}
