package core

import (
	"math/rand"
	"reflect"
	"testing"

	"cfpq/internal/baseline"
	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// TestMatrixEngineAgreesWithOracles is the headline correctness property:
// on random graphs and a spread of grammars, every matrix backend must
// compute exactly the relations produced by two independent algorithms —
// Hellings' worklist and the GLL-based evaluator.
func TestMatrixEngineAgreesWithOracles(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	grams := []string{
		"S -> a S b | a b",
		"S -> S S | a",
		"S -> A B\nA -> a | a A\nB -> b | b B",
		"S -> subClassOf_r S subClassOf | type_r S type | subClassOf_r subClassOf | type_r type",
		"S -> B subClassOf | subClassOf\nB -> subClassOf_r B subClassOf | subClassOf_r subClassOf",
	}
	labels := []string{"a", "b", "subClassOf", "subClassOf_r", "type", "type_r"}
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(12)
		g := graph.Random(rng, n, 3*n, labels)
		for gi, src := range grams {
			gram := grammar.MustParse(src)
			cnf := grammar.MustCNF(gram)
			oracle := baseline.Hellings(g, cnf)
			gll := baseline.NewGLL(gram).Relation(g, "S")
			if !reflect.DeepEqual(oracle["S"], gll) {
				t.Fatalf("trial %d grammar %d: oracles disagree: Hellings %v, GLL %v",
					trial, gi, oracle["S"], gll)
			}
			for _, be := range matrix.Backends() {
				ix, _ := NewEngine(WithBackend(be)).Run(g, cnf)
				for a := 0; a < cnf.NonterminalCount(); a++ {
					nt := cnf.Names[a]
					got := ix.Relation(nt)
					want := oracle[nt]
					if len(got) == 0 && len(want) == 0 {
						continue
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("trial %d grammar %d backend %s: R_%s = %v, want %v",
							trial, gi, be.Name(), nt, got, want)
					}
				}
			}
		}
	}
}

// TestRandomCNFGrammarsAgainstHellings drives every matrix backend with
// fully random CNF grammars (not just hand-picked ones) on random graphs
// against the worklist oracle: all four backends must produce exactly the
// relations Hellings computes, for every non-terminal.
func TestRandomCNFGrammarsAgainstHellings(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := grammar.RandomConfig{
		Nonterminals: 4,
		Terminals:    3,
		Productions:  12,
		MaxBody:      3,
		EpsilonProb:  0.05,
	}
	for trial := 0; trial < 20; trial++ {
		gram := grammar.RandomGrammar(rng, cfg)
		cnf, err := grammar.ToCNF(gram)
		if err != nil {
			t.Fatal(err)
		}
		if cnf.NonterminalCount() == 0 {
			continue
		}
		n := 2 + rng.Intn(8)
		g := graph.Random(rng, n, 3*n, gram.Terminals())
		oracle := baseline.Hellings(g, cnf)
		for _, be := range matrix.Backends() {
			ix, _ := NewEngine(WithBackend(be)).Run(g, cnf)
			for a := 0; a < cnf.NonterminalCount(); a++ {
				nt := cnf.Names[a]
				got, want := ix.Relation(nt), oracle[nt]
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d backend %s: R_%s = %v, want %v\ngrammar:\n%s",
						trial, be.Name(), nt, got, want, gram)
				}
			}
		}
	}
}

// TestRandomGrammarsIncrementalAgreement checks the dynamic path on random
// inputs: withhold a slice of a random graph's edges, close the rest, then
// feed the withheld edges through Engine.Update — the patched index must
// equal a cold closure of the full graph, on every backend.
func TestRandomGrammarsIncrementalAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	cfg := grammar.DefaultRandomConfig()
	for trial := 0; trial < 12; trial++ {
		gram := grammar.RandomGrammar(rng, cfg)
		cnf, err := grammar.ToCNF(gram)
		if err != nil {
			t.Fatal(err)
		}
		if cnf.NonterminalCount() == 0 {
			continue
		}
		n := 3 + rng.Intn(8)
		full := graph.Random(rng, n, 4*n, gram.Terminals())
		edges := full.Edges()
		hold := 1 + rng.Intn(3)
		if hold > len(edges) {
			hold = len(edges)
		}
		partial := graph.New(full.Nodes())
		for _, e := range edges[:len(edges)-hold] {
			partial.AddEdge(e.From, e.Label, e.To)
		}
		for _, be := range matrix.Backends() {
			e := NewEngine(WithBackend(be))
			ix, _ := e.Run(partial, cnf)
			e.Update(ix, edges[len(edges)-hold:]...)
			want, _ := NewEngine(WithBackend(be)).Run(full, cnf)
			if !ix.Equal(want) {
				t.Fatalf("trial %d backend %s: incremental update disagrees with cold closure\ngrammar:\n%s",
					trial, be.Name(), gram)
			}
		}
	}
}
