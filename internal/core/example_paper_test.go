package core

import (
	"reflect"
	"testing"

	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// paperCNF is the grammar G' of paper Figure 4 — the same-generation query
// grammar already in Chomsky Normal Form, with the paper's auxiliary names.
const paperCNF = `
S -> S1 S5
S -> S3 S6
S -> S1 S2
S -> S3 S4
S5 -> S S2
S6 -> S S4
S1 -> subClassOf_r
S2 -> subClassOf
S3 -> type_r
S4 -> type
`

// paperGraph is the input graph of paper Figure 5, reconstructed from the
// initial matrix T₀ of Figure 6:
//
//	T₀[0][0] = {S1} → edge (0, subClassOf⁻¹, 0)
//	T₀[0][1] = {S3} → edge (0, type⁻¹, 1)
//	T₀[1][2] = {S3} → edge (1, type⁻¹, 2)
//	T₀[2][0] = {S2} → edge (2, subClassOf, 0)
//	T₀[2][2] = {S4} → edge (2, type, 2)
func paperGraph() *graph.Graph {
	g := graph.New(3)
	g.AddEdge(0, "subClassOf_r", 0)
	g.AddEdge(0, "type_r", 1)
	g.AddEdge(1, "type_r", 2)
	g.AddEdge(2, "subClassOf", 0)
	g.AddEdge(2, "type", 2)
	return g
}

// cells builds the expected matrix-of-sets state from a compact spec.
func cells(spec map[[2]int][]string) [][][]string {
	out := make([][][]string, 3)
	for i := range out {
		out[i] = make([][]string, 3)
	}
	for pos, set := range spec {
		out[pos[0]][pos[1]] = set
	}
	return out
}

// TestPaperExampleIterations replays Section 4.3 exactly: with the paper's
// naive iteration T ← T ∪ (T × T), the matrix states after initialisation
// and after each loop pass must equal Figures 6, 7 and 8, reaching the
// fixpoint at T₆ = T₅.
func TestPaperExampleIterations(t *testing.T) {
	cnf := grammar.MustParseCNF(paperCNF)
	want := [][][][]string{
		// T0 (Figure 6)
		cells(map[[2]int][]string{
			{0, 0}: {"S1"}, {0, 1}: {"S3"},
			{1, 2}: {"S3"},
			{2, 0}: {"S2"}, {2, 2}: {"S4"},
		}),
		// T1 (Figure 7): S appears at (1,2)
		cells(map[[2]int][]string{
			{0, 0}: {"S1"}, {0, 1}: {"S3"},
			{1, 2}: {"S", "S3"},
			{2, 0}: {"S2"}, {2, 2}: {"S4"},
		}),
		// T2 (Figure 8): S5 at (1,0), S6 at (1,2)
		cells(map[[2]int][]string{
			{0, 0}: {"S1"}, {0, 1}: {"S3"},
			{1, 0}: {"S5"}, {1, 2}: {"S", "S3", "S6"},
			{2, 0}: {"S2"}, {2, 2}: {"S4"},
		}),
		// T3: S at (0,2)
		cells(map[[2]int][]string{
			{0, 0}: {"S1"}, {0, 1}: {"S3"}, {0, 2}: {"S"},
			{1, 0}: {"S5"}, {1, 2}: {"S", "S3", "S6"},
			{2, 0}: {"S2"}, {2, 2}: {"S4"},
		}),
		// T4: S5 at (0,0), S6 at (0,2)
		cells(map[[2]int][]string{
			{0, 0}: {"S1", "S5"}, {0, 1}: {"S3"}, {0, 2}: {"S", "S6"},
			{1, 0}: {"S5"}, {1, 2}: {"S", "S3", "S6"},
			{2, 0}: {"S2"}, {2, 2}: {"S4"},
		}),
		// T5: S at (0,0)
		cells(map[[2]int][]string{
			{0, 0}: {"S", "S1", "S5"}, {0, 1}: {"S3"}, {0, 2}: {"S", "S6"},
			{1, 0}: {"S5"}, {1, 2}: {"S", "S3", "S6"},
			{2, 0}: {"S2"}, {2, 2}: {"S4"},
		}),
		// T6 = T5: fixpoint
		cells(map[[2]int][]string{
			{0, 0}: {"S", "S1", "S5"}, {0, 1}: {"S3"}, {0, 2}: {"S", "S6"},
			{1, 0}: {"S5"}, {1, 2}: {"S", "S3", "S6"},
			{2, 0}: {"S2"}, {2, 2}: {"S4"},
		}),
	}

	var got [][][][]string
	e := NewEngine(
		WithBackend(matrix.Dense()),
		WithNaiveIteration(),
		WithTrace(func(iteration int, ix *Index) {
			got = append(got, ix.CellSets())
		}),
	)
	_, stats := e.Run(paperGraph(), cnf)

	if stats.Iterations != 6 {
		t.Errorf("Iterations = %d, want 6 (paper: T6 = T5)", stats.Iterations)
	}
	if len(got) != len(want) {
		t.Fatalf("traced %d states, want %d", len(got), len(want))
	}
	for k := range want {
		if !reflect.DeepEqual(got[k], want[k]) {
			t.Errorf("T%d mismatch:\ngot  %v\nwant %v", k, got[k], want[k])
		}
	}
}

// TestPaperExampleRelations checks the final context-free relations against
// Figure 9.
func TestPaperExampleRelations(t *testing.T) {
	cnf := grammar.MustParseCNF(paperCNF)
	for _, be := range matrix.Backends() {
		e := NewEngine(WithBackend(be))
		ix, _ := e.Run(paperGraph(), cnf)
		want := map[string][]matrix.Pair{
			"S":  {{I: 0, J: 0}, {I: 0, J: 2}, {I: 1, J: 2}},
			"S1": {{I: 0, J: 0}},
			"S2": {{I: 2, J: 0}},
			"S3": {{I: 0, J: 1}, {I: 1, J: 2}},
			"S4": {{I: 2, J: 2}},
			"S5": {{I: 0, J: 0}, {I: 1, J: 0}},
			"S6": {{I: 0, J: 2}, {I: 1, J: 2}},
		}
		for nt, pairs := range want {
			if got := ix.Relation(nt); !reflect.DeepEqual(got, pairs) {
				t.Errorf("%s: R_%s = %v, want %v", be.Name(), nt, got, pairs)
			}
		}
	}
}

// TestPaperExampleWithMechanicalCNF runs the same query through the full
// pipeline — the Figure 3 grammar normalised by our own ToCNF rather than
// the paper's hand-made CNF — and checks that R_S is unchanged (the paper:
// "a grammar G'_S is equivalent to the grammar G_S").
func TestPaperExampleWithMechanicalCNF(t *testing.T) {
	g := grammar.MustParse(`
		S -> subClassOf_r S subClassOf
		S -> type_r S type
		S -> subClassOf_r subClassOf
		S -> type_r type
	`)
	e := NewEngine()
	pairs, err := e.Query(paperGraph(), g, "S", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []matrix.Pair{{I: 0, J: 0}, {I: 0, J: 2}, {I: 1, J: 2}}
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("R_S = %v, want %v", pairs, want)
	}
}

// TestPaperExampleSinglePath exercises Section 5 on the worked example: the
// pair (1, 2) ∈ R_S must come with a witness path whose labels derive from
// S; the paper gives the 2-edge witness type⁻¹ · type.
func TestPaperExampleSinglePath(t *testing.T) {
	cnf := grammar.MustParseCNF(paperCNF)
	g := paperGraph()
	px := NewPathIndex(g, cnf)
	for _, pair := range [][2]int{{0, 0}, {0, 2}, {1, 2}} {
		path, ok := px.Path("S", pair[0], pair[1])
		if !ok {
			t.Fatalf("no path for (S, %d, %d)", pair[0], pair[1])
		}
		if err := ValidatePath(path, pair[0], pair[1]); err != nil {
			t.Fatal(err)
		}
		if !cnf.Derives("S", Labels(path)) {
			t.Errorf("labels %v of witness for (%d,%d) do not derive from S",
				Labels(path), pair[0], pair[1])
		}
		l, ok := px.Length("S", pair[0], pair[1])
		if !ok || l != len(path) {
			t.Errorf("(S,%d,%d): recorded length %d, path length %d",
				pair[0], pair[1], l, len(path))
		}
	}
	// The shortest witness for (1,2) is exactly the paper's type⁻¹ type.
	if l, _ := px.Length("S", 1, 2); l != 2 {
		t.Errorf("length(S,1,2) = %d, want 2 (paper: type⁻¹ · type)", l)
	}
	if _, ok := px.Path("S", 2, 1); ok {
		t.Error("(2,1) ∉ R_S but a path was returned")
	}
}
