package core

import (
	"testing"

	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// TestChainClosureConvergesLogarithmically pins down the property that
// makes the squaring closure a_cf equivalent in power to Valiant's a₊
// (paper Theorem 1): each pass T ← T ∪ T·T doubles the derivation-tree
// height covered, so on a linear input of length n (Valiant's setting) the
// fixpoint arrives after O(log n) passes, not O(n).
func TestChainClosureConvergesLogarithmically(t *testing.T) {
	cnf := grammar.MustParseCNF("S -> S S | a") // a⁺, maximally associative
	for _, n := range []int{8, 64, 512} {
		g := graph.Chain(n+1, "a")
		_, stats := NewEngine(WithBackend(matrix.Dense()), WithNaiveIteration()).Run(g, cnf)
		// Height needed: ceil(log2 n) + 1; passes: that + 1 idle pass.
		bound := 2
		for m := 1; m < n; m *= 2 {
			bound++
		}
		if stats.Iterations > bound {
			t.Errorf("chain n=%d: %d passes, want ≤ %d (logarithmic convergence)",
				n, stats.Iterations, bound)
		}
		// And distinctly fewer than linear (meaningful from n = 64 up).
		if n >= 64 && stats.Iterations >= n/4 {
			t.Errorf("chain n=%d: %d passes looks linear", n, stats.Iterations)
		}
	}
}

// TestChainRecognitionMatchesCYK: CFPQ over a word chain is exactly string
// recognition (Valiant's original problem), cross-checked against CYK for
// every span, not just the full word.
func TestChainRecognitionMatchesCYK(t *testing.T) {
	cnf := grammar.MustParseCNF("S -> a S b | a b | S S")
	word := []string{"a", "a", "b", "b", "a", "b", "a", "b"}
	g := graph.Word(word)
	ix, _ := NewEngine().Run(g, cnf)
	for i := 0; i <= len(word); i++ {
		for j := i + 1; j <= len(word); j++ {
			want := cnf.Derives("S", word[i:j])
			got := ix.Has("S", i, j)
			if got != want {
				t.Errorf("span [%d,%d) %v: matrix=%v cyk=%v", i, j, word[i:j], got, want)
			}
		}
	}
}
