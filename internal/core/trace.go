package core

import (
	"context"
	"time"
)

// NNZ records one non-terminal's set-bit count across a single fixpoint
// pass: Before is the count when the previous PassEvent fired (zero for the
// first event of a fresh evaluation), After the count when this one fired.
// Because passes only add bits, the per-nonterminal deltas of an
// evaluation's events telescope: their sum equals the bits the evaluation
// added to that relation.
type NNZ struct {
	Nonterminal string `json:"nonterminal"`
	Before      int    `json:"before"`
	After       int    `json:"after"`
}

// Delta returns the bits the pass added to this relation.
func (z NNZ) Delta() int { return z.After - z.Before }

// PassEvent describes one step of a closure evaluation: the seeding step
// (Pass 0, Products 0) or one fixpoint pass. Events of a single evaluation
// are delivered in order from the goroutine running the closure; the slices
// they carry must not be retained or mutated after the hook returns.
type PassEvent struct {
	// Phase names the schedule that ran the pass: "full" (in-place
	// all-pairs), "naive" (snapshot semantics), "delta" (semi-naive),
	// "frontier" (source-restricted), or "update" (incremental edge
	// propagation). A saturated source-restricted evaluation switches
	// phase mid-stream when it falls back to the all-pairs schedule.
	Phase string `json:"phase"`
	// Pass numbers the events of one evaluation from 0 (the seeding step).
	Pass int `json:"pass"`
	// Products is the number of Boolean matrix multiplications this pass
	// executed (0 for the seeding step).
	Products int `json:"products"`
	// NNZ reports every non-terminal relation's size before/after the
	// pass, in grammar order.
	NNZ []NNZ `json:"nnz"`
	// Frontier is the number of active rows after the pass; it is 0 in
	// every phase except "frontier".
	Frontier int `json:"frontier,omitempty"`
	// Nodes is the graph's node count, the denominator of Saturation.
	Nodes int `json:"nodes"`
	// Bytes is the estimated heap footprint of the index matrices after
	// the pass.
	Bytes int64 `json:"bytes"`
	// Duration is the wall time of the pass.
	Duration time.Duration `json:"duration_ns"`
}

// Saturation is the frontier saturation ratio Frontier/Nodes — how much of
// the graph the source-restricted closure is actively maintaining. It is 0
// outside the "frontier" phase and reaches 1 when a saturated evaluation
// falls back to the all-pairs closure.
func (ev PassEvent) Saturation() float64 {
	if ev.Nodes == 0 {
		return 0
	}
	return float64(ev.Frontier) / float64(ev.Nodes)
}

// TotalDelta sums the per-nonterminal bit deltas of the pass.
func (ev PassEvent) TotalDelta() int {
	total := 0
	for _, z := range ev.NNZ {
		total += z.Delta()
	}
	return total
}

// Trace is a set of hooks, in the style of httptrace.ClientTrace, invoked
// at the named points of a closure evaluation. Nil hooks are skipped; a
// disabled trace (nil *Trace, or all hooks nil) costs the evaluation one
// pointer test and no allocations.
type Trace struct {
	// Pass is called after the seeding step and after every fixpoint pass
	// of RunContext, CloseContext, RunFromContext and UpdateContext.
	Pass func(PassEvent)
}

// enabled reports whether any hook is set.
func (t *Trace) enabled() bool { return t != nil && t.Pass != nil }

// traceKey is the context key WithTraceContext stores a *Trace under.
type traceKey struct{}

// WithTraceContext returns a context carrying the trace; evaluations run
// with the returned context fire its hooks. A nil trace returns ctx
// unchanged.
func WithTraceContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// ContextTrace returns the trace attached to ctx, or nil.
func ContextTrace(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// WithTracer installs an engine-wide trace, fired for every evaluation the
// engine runs and merged with any context-attached trace.
func WithTracer(t *Trace) Option {
	return func(e *Engine) { e.tracer = t }
}

// passTracer drives PassEvent delivery for one evaluation. A nil passTracer
// is the disabled state: every method no-ops, so tracing off costs the
// closure loop a pointer test per pass and no allocations or nnz scans.
type passTracer struct {
	engineTrace  *Trace
	contextTrace *Trace
	phase        string
	ix           *Index
	// before holds each relation's nnz as of the previous event, indexed
	// like Index.mats; events chain from it so deltas telescope even when
	// an evaluation switches schedules (frontier saturation fallback).
	before    []int
	pass      int
	passStart time.Time
}

// newPassTracer returns the evaluation's tracer, or nil when neither the
// engine nor the context carries an enabled trace.
func (e *Engine) newPassTracer(ctx context.Context, phase string, ix *Index) *passTracer {
	et, ct := e.tracer, ContextTrace(ctx)
	if !et.enabled() {
		et = nil
	}
	if !ct.enabled() {
		ct = nil
	}
	if et == nil && ct == nil {
		return nil
	}
	return &passTracer{
		engineTrace:  et,
		contextTrace: ct,
		phase:        phase,
		ix:           ix,
		before:       make([]int, len(ix.mats)),
	}
}

// setPhase renames the phase of subsequent events (saturation fallback).
func (pt *passTracer) setPhase(phase string) {
	if pt == nil {
		return
	}
	pt.phase = phase
}

// snapshot re-bases the before counts on the index's current state, so the
// next event reports deltas relative to it. Used by evaluations that start
// from a non-empty index (incremental updates) before they seed.
func (pt *passTracer) snapshot() {
	if pt == nil {
		return
	}
	for a, m := range pt.ix.mats {
		pt.before[a] = m.Nnz()
	}
}

// beginPass marks the start of the wall-time window the next event reports.
func (pt *passTracer) beginPass() {
	if pt == nil {
		return
	}
	pt.passStart = time.Now()
}

// endPass fires a PassEvent for the work done since beginPass and advances
// the event chain (pass number and before counts).
func (pt *passTracer) endPass(products, frontier int) {
	if pt == nil {
		return
	}
	ev := PassEvent{
		Phase:    pt.phase,
		Pass:     pt.pass,
		Products: products,
		NNZ:      make([]NNZ, len(pt.ix.mats)),
		Frontier: frontier,
		Nodes:    pt.ix.n,
		Bytes:    pt.ix.Bytes(),
		Duration: time.Since(pt.passStart),
	}
	for a, m := range pt.ix.mats {
		ev.NNZ[a] = NNZ{Nonterminal: pt.ix.cnf.Names[a], Before: pt.before[a], After: m.Nnz()}
		pt.before[a] = ev.NNZ[a].After
	}
	pt.pass++
	if pt.engineTrace != nil {
		pt.engineTrace.Pass(ev)
	}
	if pt.contextTrace != nil {
		pt.contextTrace.Pass(ev)
	}
}

// started reports whether the tracer has already emitted its seeding event,
// so a schedule taking over mid-evaluation (saturation fallback) does not
// emit a second one.
func (pt *passTracer) started() bool { return pt != nil && pt.pass > 0 }
