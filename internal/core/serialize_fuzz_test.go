// Native fuzz target for the index deserialiser — the bytes a warm start
// trusts. Gated on go1.18 like the rest of the fuzz suite; under plain
// `go test` only the seed corpus runs.
//
// Run with:
//
//	go test -fuzz=FuzzReadIndex -fuzztime=30s ./internal/core

//go:build go1.18

package core

import (
	"bytes"
	"testing"

	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// FuzzReadIndex throws arbitrary bytes at ReadIndex and checks it never
// panics or over-allocates (the MaxIndexNodes guard), and that accepted
// inputs are genuinely well-formed: re-serialising the accepted index and
// re-reading it reproduces identical relations.
func FuzzReadIndex(f *testing.F) {
	// Tighten the allocation guard: the default 4M-node bound is safe but
	// makes header-mutating executions allocate hundreds of MB each,
	// strangling the fuzzer's throughput without exercising anything new.
	MaxIndexNodes = 1 << 12
	cnf := grammar.MustParseCNF("S -> a S b | a b")
	// Seeds: a real CFPQIDX2 image, its truncation, a legacy CFPQIDX1
	// image, and garbage.
	g := graph.New(0)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "b", 2)
	ix, _ := NewEngine().Run(g, cnf)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)-3])
	legacy := append([]byte(indexMagicV1), good[len(indexMagic)+2+len("sparse"):]...)
	f.Add(legacy)
	f.Add([]byte("CFPQIDX2 garbage follows the magic"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Read with an explicit sparse backend: the fuzzer controls the
		// recorded backend name, and a dense materialisation's n×n/8
		// allocation is the caller's informed choice, not a safe default
		// for untrusted bytes.
		got, err := ReadIndex(bytes.NewReader(data), cnf, matrix.Sparse())
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("re-serialising accepted index: %v", err)
		}
		again, err := ReadIndex(bytes.NewReader(out.Bytes()), cnf, matrix.Sparse())
		if err != nil {
			t.Fatalf("re-reading re-serialised index: %v", err)
		}
		if !got.Equal(again) {
			t.Fatal("round trip of accepted index changed relations")
		}
	})
}
