package core

import (
	"context"
	"time"

	"cfpq/internal/matrix"
)

// WithDeltaIteration selects the semi-naive (incremental) closure schedule,
// the paper's Section 7 direction of "asymptotically more efficient
// transitive closure" algorithms: instead of re-multiplying full matrices
// every pass, each pass multiplies only the *frontier* Δ — the bits added
// in the previous pass — against the full matrices:
//
//	T_A += ΔT_B × T_C  ∪  T_B × ΔT_C        for every A → B C
//
// Every product an entry could come from is still covered (any new entry
// must involve at least one newly-added operand entry), so the fixpoint is
// identical; the work per pass shrinks as the closure converges.
//
// Mutually exclusive with WithNaiveIteration (the engine panics if both
// are set).
func WithDeltaIteration() Option {
	return func(e *Engine) { e.delta = true }
}

// closeDelta runs the semi-naive fixpoint. The initial frontier is the
// whole initialised index. pt (may be nil) is the evaluation's pass tracer,
// already past its seeding event.
func (e *Engine) closeDelta(ctx context.Context, ix *Index, pt *passTracer) (stats Stats, err error) {
	start := time.Now()
	defer func() {
		stats.Duration = time.Since(start)
		stats.observePeak(ix.Bytes())
	}()
	if e.trace != nil {
		e.trace(0, ix)
	}
	n := ix.n
	nn := len(ix.mats)
	delta := make([]matrix.Bool, nn)
	for a, m := range ix.mats {
		delta[a] = m.Clone()
	}
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		// Working set of the coming pass: index + current frontier + the
		// empty next-frontier matrices about to be allocated.
		est := ix.Bytes() + matsBytes(delta) + int64(nn)*e.backend.EmptyBytes(n)
		stats.observePeak(est)
		if err := e.checkBudget(est); err != nil {
			return stats, err
		}
		stats.Iterations++
		pt.beginPass()
		next := make([]matrix.Bool, nn)
		for a := range next {
			next[a] = e.backend.NewMatrix(n)
		}
		for _, r := range ix.cnf.Binary {
			stats.Products += 2
			next[r.A].AddMul(delta[r.B], ix.mats[r.C])
			next[r.A].AddMul(ix.mats[r.B], delta[r.C])
		}
		changed := false
		for a := range next {
			next[a].AndNot(ix.mats[a]) // keep only genuinely new bits
			if next[a].Nnz() > 0 {
				ix.mats[a].Or(next[a])
				changed = true
			}
		}
		delta = next
		pt.endPass(2*len(ix.cnf.Binary), 0)
		if e.trace != nil {
			e.trace(stats.Iterations, ix)
		}
		if !changed {
			return stats, nil
		}
	}
}
