package core

import (
	"fmt"

	"cfpq/internal/matrix"
)

// MemoryBudgetError reports that a closure evaluation was abandoned
// because its estimated matrix storage outgrew the engine's memory
// budget (WithMemoryBudget). The index under construction is discarded;
// the error fires before the allocation that would breach the budget,
// not after the process is already swapping.
type MemoryBudgetError struct {
	// BudgetBytes is the configured allowance.
	BudgetBytes int64
	// EstimatedBytes is the estimate that breached it.
	EstimatedBytes int64
}

func (e *MemoryBudgetError) Error() string {
	return fmt.Sprintf("core: memory budget exceeded: closure needs an estimated %d bytes, budget is %d", e.EstimatedBytes, e.BudgetBytes)
}

// WithMemoryBudget bounds the estimated matrix bytes a single closure
// evaluation may hold at once. The estimate covers the index matrices
// plus schedule-dependent working copies (per-pass clones in naive mode,
// delta/frontier matrices in the semi-naive and source-restricted
// schedules); it is checked before matrix allocation and between fixpoint
// passes, and a breach aborts the evaluation with a *MemoryBudgetError.
// bytes ≤ 0 means unlimited (the default). The budget is enforced on the
// context-taking evaluation paths (RunContext, CloseContext,
// RunFromContext and everything built on them).
func WithMemoryBudget(bytes int64) Option {
	return func(e *Engine) { e.budget = bytes }
}

// Bytes estimates the heap bytes of the index's relation matrices.
func (ix *Index) Bytes() int64 {
	var total int64
	for _, m := range ix.mats {
		total += m.Bytes()
	}
	return total
}

// checkBudget returns a *MemoryBudgetError when estimated bytes exceed
// the engine's budget; a zero or negative budget never fails.
func (e *Engine) checkBudget(estimated int64) error {
	if e.budget > 0 && estimated > e.budget {
		return &MemoryBudgetError{BudgetBytes: e.budget, EstimatedBytes: estimated}
	}
	return nil
}

// matsBytes sums the byte estimates of a working matrix set (a delta or
// next frontier slice).
func matsBytes(mats []matrix.Bool) int64 {
	var total int64
	for _, m := range mats {
		total += m.Bytes()
	}
	return total
}
