// Native fuzz target for the headline correctness property. Gated on the
// go1.18 release tag (when native fuzzing landed) so the file drops out
// cleanly on older toolchains.
//
// Run with:
//
//	go test -fuzz=FuzzClosureAgreement -fuzztime=30s ./internal/core
//
// Under plain `go test` only the seed corpus below runs.

//go:build go1.18

package core

import (
	"math/rand"
	"reflect"
	"testing"

	"cfpq/internal/baseline"
	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// FuzzClosureAgreement derives a random graph and a random CNF grammar
// from the fuzzed seed and checks that all four matrix backends compute
// exactly the relations of the Hellings worklist oracle — and that the
// incremental update path (closing a partial graph, then feeding the rest
// through Update) reaches the same fixpoint.
func FuzzClosureAgreement(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(12), uint8(10))
	f.Add(int64(42), uint8(9), uint8(30), uint8(14))
	f.Add(int64(7), uint8(2), uint8(3), uint8(6))
	f.Fuzz(func(t *testing.T, seed int64, nodes, edges, prods uint8) {
		n := 2 + int(nodes)%12
		e := int(edges) % 40
		np := 1 + int(prods)%16
		rng := rand.New(rand.NewSource(seed))
		gram := grammar.RandomGrammar(rng, grammar.RandomConfig{
			Nonterminals: 1 + np/4,
			Terminals:    1 + np%3,
			Productions:  np,
			MaxBody:      3,
			EpsilonProb:  0.1,
		})
		cnf, err := grammar.ToCNF(gram)
		if err != nil {
			t.Fatalf("ToCNF of a generated grammar: %v\n%s", err, gram)
		}
		if cnf.NonterminalCount() == 0 {
			t.Skip("grammar normalises to nothing")
		}
		terms := gram.Terminals()
		if len(terms) == 0 {
			t.Skip("no terminals")
		}
		g := graph.Random(rng, n, e, terms)
		oracle := baseline.Hellings(g, cnf)
		for _, be := range matrix.Backends() {
			ix, _ := NewEngine(WithBackend(be)).Run(g, cnf)
			for a := 0; a < cnf.NonterminalCount(); a++ {
				nt := cnf.Names[a]
				got, want := ix.Relation(nt), oracle[nt]
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("backend %s: R_%s = %v, want %v\ngrammar:\n%s",
						be.Name(), nt, got, want, gram)
				}
			}
		}
		// Incremental path: close the graph minus its last edge, patch the
		// edge back in, compare against the full closure.
		all := g.Edges()
		if len(all) == 0 {
			return
		}
		partial := graph.New(g.Nodes())
		for _, ed := range all[:len(all)-1] {
			partial.AddEdge(ed.From, ed.Label, ed.To)
		}
		eng := NewEngine()
		ix, _ := eng.Run(partial, cnf)
		eng.Update(ix, all[len(all)-1])
		want, _ := NewEngine().Run(g, cnf)
		if !ix.Equal(want) {
			t.Fatalf("incremental update disagrees with cold closure\ngrammar:\n%s", gram)
		}
	})
}
