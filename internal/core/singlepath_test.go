package core

import (
	"math/rand"
	"testing"

	"cfpq/internal/grammar"
	"cfpq/internal/graph"
)

func TestPathIndexMatchesBooleanClosure(t *testing.T) {
	// Theorem 2 + Theorem 5: the single-path closure derives exactly the
	// same relations as the Boolean closure.
	rng := rand.New(rand.NewSource(21))
	grams := []*grammar.CNF{
		grammar.MustParseCNF("S -> a S b | a b"),
		grammar.MustParseCNF(paperCNF),
		grammar.MustParseCNF("S -> S S | a"),
	}
	labels := []string{"a", "b", "subClassOf", "subClassOf_r", "type", "type_r"}
	for trial := 0; trial < 8; trial++ {
		n := 3 + rng.Intn(10)
		g := graph.Random(rng, n, 3*n, labels)
		for gi, cnf := range grams {
			ix, _ := NewEngine().Run(g, cnf)
			px := NewPathIndex(g, cnf)
			for a := 0; a < cnf.NonterminalCount(); a++ {
				nt := cnf.Names[a]
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						if ix.Has(nt, i, j) != px.Has(nt, i, j) {
							t.Fatalf("trial %d grammar %d: (%s,%d,%d): bool=%v path=%v",
								trial, gi, nt, i, j, ix.Has(nt, i, j), px.Has(nt, i, j))
						}
					}
				}
			}
		}
	}
}

func TestPathWitnessesAreValid(t *testing.T) {
	// For every pair in every relation: the extracted path must be
	// contiguous, have exactly the recorded length, and its label word
	// must derive from the queried non-terminal (checked by CYK).
	rng := rand.New(rand.NewSource(22))
	cnf := grammar.MustParseCNF("S -> a S b | a b")
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(8)
		g := graph.Random(rng, n, 3*n, []string{"a", "b"})
		px := NewPathIndex(g, cnf)
		for _, lp := range px.Relation("S") {
			path, ok := px.Path("S", lp.I, lp.J)
			if !ok {
				t.Fatalf("trial %d: Path(S,%d,%d) failed but pair is in relation", trial, lp.I, lp.J)
			}
			if len(path) != lp.Length {
				t.Fatalf("trial %d: path length %d ≠ recorded %d", trial, len(path), lp.Length)
			}
			if err := ValidatePath(path, lp.I, lp.J); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !cnf.Derives("S", Labels(path)) {
				t.Fatalf("trial %d: witness labels %v not in L(S)", trial, Labels(path))
			}
		}
	}
}

func TestPathOnCycle(t *testing.T) {
	// On a cycle the witness for a fixed pair may wind around; lengths are
	// still finite and paths valid.
	g := graph.TwoCycles(2, 3, "a", "b")
	cnf := grammar.MustParseCNF("S -> a S b | a b")
	px := NewPathIndex(g, cnf)
	rel := px.Relation("S")
	if len(rel) == 0 {
		t.Fatal("empty relation on two-cycles")
	}
	for _, lp := range rel {
		path, ok := px.Path("S", lp.I, lp.J)
		if !ok {
			t.Fatalf("no path for %v", lp)
		}
		if err := ValidatePath(path, lp.I, lp.J); err != nil {
			t.Fatal(err)
		}
		if !cnf.Derives("S", Labels(path)) {
			t.Fatalf("invalid witness %v for %v", Labels(path), lp)
		}
	}
	// (0,0) requires winding: a⁶b⁶ → length 12.
	if l, ok := px.Length("S", 0, 0); !ok || l < 4 {
		t.Errorf("length(S,0,0) = %d,%v; want a wound path", l, ok)
	}
}

func TestPathIndexUnknownNonterminal(t *testing.T) {
	g := graph.Chain(2, "a")
	cnf := grammar.MustParseCNF("S -> a")
	px := NewPathIndex(g, cnf)
	if _, ok := px.Length("Z", 0, 1); ok {
		t.Error("unknown non-terminal should have no lengths")
	}
	if _, ok := px.Path("Z", 0, 1); ok {
		t.Error("unknown non-terminal should have no paths")
	}
	if px.Relation("Z") != nil {
		t.Error("unknown non-terminal should have nil relation")
	}
}

func TestPathLengthOneIsEdge(t *testing.T) {
	g := graph.Chain(2, "a")
	cnf := grammar.MustParseCNF("S -> a")
	px := NewPathIndex(g, cnf)
	path, ok := px.Path("S", 0, 1)
	if !ok || len(path) != 1 || path[0].Label != "a" {
		t.Fatalf("Path = %v, %v", path, ok)
	}
}

func TestValidatePathErrors(t *testing.T) {
	e1 := graph.Edge{From: 0, Label: "a", To: 1}
	e2 := graph.Edge{From: 2, Label: "b", To: 3}
	if err := ValidatePath([]graph.Edge{e1, e2}, 0, 3); err == nil {
		t.Error("discontiguous path should fail validation")
	}
	if err := ValidatePath([]graph.Edge{e1}, 0, 2); err == nil {
		t.Error("wrong endpoint should fail validation")
	}
	if err := ValidatePath([]graph.Edge{e1}, 0, 1); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
}
