package core

import (
	"math/rand"
	"reflect"
	"testing"

	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

func TestDeltaIterationMatchesDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	grams := []*grammar.CNF{
		grammar.MustParseCNF("S -> a S b | a b"),
		grammar.MustParseCNF(paperCNF),
		grammar.MustParseCNF("S -> S S | a"),
	}
	labels := []string{"a", "b", "subClassOf", "subClassOf_r", "type", "type_r"}
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(15)
		g := graph.Random(rng, n, 3*n, labels)
		for gi, cnf := range grams {
			ref, _ := NewEngine().Run(g, cnf)
			for _, be := range matrix.Backends() {
				ix, _ := NewEngine(WithBackend(be), WithDeltaIteration()).Run(g, cnf)
				for a := 0; a < cnf.NonterminalCount(); a++ {
					nt := cnf.Names[a]
					if !reflect.DeepEqual(ix.Relation(nt), ref.Relation(nt)) {
						t.Fatalf("trial %d grammar %d backend %s: delta disagrees on R_%s",
							trial, gi, be.Name(), nt)
					}
				}
			}
		}
	}
}

func TestDeltaIterationPaperExampleRelations(t *testing.T) {
	cnf := grammar.MustParseCNF(paperCNF)
	ix, stats := NewEngine(WithDeltaIteration()).Run(paperGraph(), cnf)
	want := []matrix.Pair{{I: 0, J: 0}, {I: 0, J: 2}, {I: 1, J: 2}}
	if got := ix.Relation("S"); !reflect.DeepEqual(got, want) {
		t.Errorf("R_S = %v, want %v", got, want)
	}
	if stats.Iterations == 0 || stats.Products == 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestDeltaAndNaiveMutuallyExclusive(t *testing.T) {
	e := NewEngine(WithNaiveIteration(), WithDeltaIteration())
	defer func() {
		if recover() == nil {
			t.Error("combining naive and delta schedules should panic")
		}
	}()
	e.Run(graph.Chain(2, "a"), grammar.MustParseCNF("S -> a"))
}

func TestDeltaTraceFires(t *testing.T) {
	calls := 0
	e := NewEngine(WithDeltaIteration(), WithTrace(func(int, *Index) { calls++ }))
	e.Run(graph.Word([]string{"a", "b"}), grammar.MustParseCNF("S -> a b"))
	if calls < 2 {
		t.Errorf("trace fired %d times, want at least init + 1 pass", calls)
	}
}
