package core

import (
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// Update incorporates newly added graph edges into an already-closed index
// without recomputing the closure from scratch (dynamic CFPQ). It is the
// semi-naive delta step seeded with just the new edges: the initial
// frontier contains the bits the new edges contribute through terminal
// rules, and each pass propagates only frontier bits through the binary
// rules until nothing new appears.
//
// The caller must have added the edges to the graph as well if it intends
// to keep using graph-dependent APIs (AllPaths, PathIndex); Update itself
// needs only the edge list. Nodes referenced by the edges must be within
// the index's node range (indices are fixed-size matrices; grow by
// re-running Run on the enlarged graph).
//
// Update returns closure statistics for the incremental run; zero
// iterations of change means the edges added nothing new.
func (e *Engine) Update(ix *Index, edges ...graph.Edge) Stats {
	n := ix.n
	nn := len(ix.mats)
	delta := make([]matrix.Bool, nn)
	for a := range delta {
		delta[a] = e.backend.NewMatrix(n)
	}
	seeded := false
	for _, edge := range edges {
		for _, a := range ix.cnf.TermRules[edge.Label] {
			if !ix.mats[a].Get(edge.From, edge.To) {
				delta[a].Set(edge.From, edge.To)
				ix.mats[a].Set(edge.From, edge.To)
				seeded = true
			}
		}
	}
	stats := Stats{}
	if !seeded {
		return stats
	}
	for {
		stats.Iterations++
		next := make([]matrix.Bool, nn)
		for a := range next {
			next[a] = e.backend.NewMatrix(n)
		}
		for _, r := range ix.cnf.Binary {
			stats.Products += 2
			next[r.A].AddMul(delta[r.B], ix.mats[r.C])
			next[r.A].AddMul(ix.mats[r.B], delta[r.C])
		}
		changed := false
		for a := range next {
			next[a].AndNot(ix.mats[a])
			if next[a].Nnz() > 0 {
				ix.mats[a].Or(next[a])
				changed = true
			}
		}
		delta = next
		if !changed {
			return stats
		}
	}
}
