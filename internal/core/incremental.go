package core

import (
	"context"
	"time"

	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// Delta is the per-nonterminal relation of newly derived pairs of one
// index update: exactly the bits the update added that were not in the
// index before. UpdateContext returns the union of its seed frontier and
// every propagation pass; NewlyDerived synthesises the same shape from a
// full rebuild by subtracting the old index. A Delta is immutable once
// returned and safe to read concurrently.
type Delta struct {
	cnf  *grammar.CNF
	n    int
	mats []matrix.Bool // indexed like Index.mats; nil or empty = nothing new
}

// newDelta allocates an empty delta over the index's current shape.
func newDelta(ix *Index) *Delta {
	return &Delta{cnf: ix.cnf, n: ix.n, mats: make([]matrix.Bool, len(ix.mats))}
}

// Nodes returns the node range the delta's pairs index into.
func (d *Delta) Nodes() int { return d.n }

// Empty reports whether the update derived nothing new.
func (d *Delta) Empty() bool {
	for _, m := range d.mats {
		if m != nil && m.Nnz() > 0 {
			return false
		}
	}
	return true
}

// Pairs returns the newly derived pairs of one non-terminal in row-major
// order; unknown non-terminals and untouched relations return nil.
func (d *Delta) Pairs(nt string) []matrix.Pair {
	a, ok := d.cnf.Index(nt)
	if !ok || d.mats[a] == nil || d.mats[a].Nnz() == 0 {
		return nil
	}
	return matrix.Pairs(d.mats[a])
}

// Nonterminals returns the names whose relations gained at least one pair,
// in the grammar's nonterminal order.
func (d *Delta) Nonterminals() []string {
	var out []string
	for a, m := range d.mats {
		if m != nil && m.Nnz() > 0 {
			out = append(out, d.cnf.Names[a])
		}
	}
	return out
}

// or folds src into the accumulated delta, adopting src when the slot is
// still empty (the caller hands over ownership of src).
func (d *Delta) or(a int, src matrix.Bool) {
	if src.Nnz() == 0 {
		return
	}
	if d.mats[a] == nil {
		d.mats[a] = src
		return
	}
	d.mats[a].Or(src)
}

// NewlyDerived computes cur minus old per nonterminal — the delta a full
// rebuild implies. Both indexes must share the grammar and node range (grow
// old first); it is the repair-path substitute for an incremental delta,
// so subscribers to an index that had to be rebuilt still see exactly the
// pairs the rebuild added.
func NewlyDerived(cur, old *Index) *Delta {
	d := newDelta(cur)
	for a := range cur.mats {
		diff := cur.mats[a].Clone()
		diff.AndNot(old.mats[a])
		if diff.Nnz() > 0 {
			d.mats[a] = diff
		}
	}
	return d
}

// Update incorporates newly added graph edges into an already-closed index
// without recomputing the closure from scratch (dynamic CFPQ). It is the
// semi-naive delta step seeded with just the new edges: the initial
// frontier contains the bits the new edges contribute through terminal
// rules, and each pass propagates only frontier bits through the binary
// rules until nothing new appears.
//
// Frontier matrices are allocated from the index's own backend (recorded at
// Init/ReadIndex time), so an index built with a parallel kernel keeps that
// kernel through updates regardless of how this engine was configured; the
// engine's backend is the fallback for indexes without one.
//
// Edges that reference nodes beyond the index's node range transparently
// grow the matrices first (Index.Grow): the old closure is unaffected by
// isolated new nodes, so grow-then-propagate is exactly the closure of the
// enlarged graph. The caller must have added the edges to the graph as well
// if it intends to keep using graph-dependent APIs (AllPaths, PathIndex);
// Update itself needs only the edge list.
//
// Update returns closure statistics for the incremental run; zero
// iterations of change means the edges added nothing new.
func (e *Engine) Update(ix *Index, edges ...graph.Edge) Stats {
	//lint:allow cfpqlint/ctxflow ctx-less convenience API kept for the paper-faithful surface; UpdateContext is the ctx-aware path
	stats, _, _ := e.UpdateContext(context.Background(), ix, edges...)
	return stats
}

// UpdateContext is Update with cooperative cancellation between delta
// passes, and it additionally returns the update's Delta: the union of
// every newly derived pair — seed bits plus each propagation pass — which
// is exactly what a live-query subscriber must be pushed. On cancellation
// the index is sound (every bit justified) but the consequences of the new
// edges may be only partially propagated; the returned Delta then covers
// precisely the bits that did land in the index, so publishing it and later
// publishing the repair's NewlyDerived delta delivers every pair exactly
// once. Callers that must not serve a partially propagated state should
// rebuild.
func (e *Engine) UpdateContext(ctx context.Context, ix *Index, edges ...graph.Edge) (stats Stats, _ *Delta, _ error) {
	start := time.Now()
	defer func() { stats.Duration = time.Since(start) }()
	be := ix.backend
	if be == nil {
		be = e.backend
	}
	maxNode := -1
	for _, edge := range edges {
		if edge.From > maxNode {
			maxNode = edge.From
		}
		if edge.To > maxNode {
			maxNode = edge.To
		}
	}
	if maxNode >= ix.n {
		ix.Grow(maxNode + 1)
	}
	n := ix.n
	nn := len(ix.mats)
	acc := newDelta(ix)
	// The update's event chain starts from the pre-update index, so its
	// per-pass deltas telescope to exactly the bits this update added.
	pt := e.newPassTracer(ctx, "update", ix)
	pt.snapshot()
	delta := make([]matrix.Bool, nn)
	for a := range delta {
		delta[a] = be.NewMatrix(n)
	}
	pt.beginPass()
	seeded := false
	for _, edge := range edges {
		for _, a := range ix.cnf.TermRules[edge.Label] {
			if !ix.mats[a].Get(edge.From, edge.To) {
				delta[a].Set(edge.From, edge.To)
				ix.mats[a].Set(edge.From, edge.To)
				seeded = true
			}
		}
	}
	if !seeded {
		return stats, acc, nil
	}
	pt.endPass(0, 0)
	for a := range delta {
		// The seed matrices are consumed by the first pass's products and
		// never reassigned, so the accumulator can adopt them in place.
		acc.or(a, delta[a])
	}
	for {
		if err := ctx.Err(); err != nil {
			return stats, acc, err
		}
		stats.observePeak(ix.Bytes() + matsBytes(delta) + int64(nn)*be.EmptyBytes(n))
		stats.Iterations++
		pt.beginPass()
		next := make([]matrix.Bool, nn)
		for a := range next {
			next[a] = be.NewMatrix(n)
		}
		for _, r := range ix.cnf.Binary {
			stats.Products += 2
			next[r.A].AddMul(delta[r.B], ix.mats[r.C])
			next[r.A].AddMul(ix.mats[r.B], delta[r.C])
		}
		changed := false
		for a := range next {
			next[a].AndNot(ix.mats[a])
			if next[a].Nnz() > 0 {
				ix.mats[a].Or(next[a])
				changed = true
			}
		}
		delta = next
		pt.endPass(2*len(ix.cnf.Binary), 0)
		if !changed {
			return stats, acc, nil
		}
		for a := range next {
			// Fold this pass's genuinely-new bits into the returned delta.
			// Or copies out of next, so the frontier matrices feeding the
			// next pass's products are not aliased by the accumulator —
			// except for adopted all-new slots, which the next pass only
			// reads.
			acc.or(a, next[a])
		}
	}
}
