package core

import (
	"context"

	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// Update incorporates newly added graph edges into an already-closed index
// without recomputing the closure from scratch (dynamic CFPQ). It is the
// semi-naive delta step seeded with just the new edges: the initial
// frontier contains the bits the new edges contribute through terminal
// rules, and each pass propagates only frontier bits through the binary
// rules until nothing new appears.
//
// Frontier matrices are allocated from the index's own backend (recorded at
// Init/ReadIndex time), so an index built with a parallel kernel keeps that
// kernel through updates regardless of how this engine was configured; the
// engine's backend is the fallback for indexes without one.
//
// Edges that reference nodes beyond the index's node range transparently
// grow the matrices first (Index.Grow): the old closure is unaffected by
// isolated new nodes, so grow-then-propagate is exactly the closure of the
// enlarged graph. The caller must have added the edges to the graph as well
// if it intends to keep using graph-dependent APIs (AllPaths, PathIndex);
// Update itself needs only the edge list.
//
// Update returns closure statistics for the incremental run; zero
// iterations of change means the edges added nothing new.
func (e *Engine) Update(ix *Index, edges ...graph.Edge) Stats {
	stats, _ := e.UpdateContext(context.Background(), ix, edges...)
	return stats
}

// UpdateContext is Update with cooperative cancellation between delta
// passes. On cancellation the index is sound (every bit justified) but the
// consequences of the new edges may be only partially propagated; callers
// that must not serve such a state should rebuild.
func (e *Engine) UpdateContext(ctx context.Context, ix *Index, edges ...graph.Edge) (Stats, error) {
	be := ix.backend
	if be == nil {
		be = e.backend
	}
	maxNode := -1
	for _, edge := range edges {
		if edge.From > maxNode {
			maxNode = edge.From
		}
		if edge.To > maxNode {
			maxNode = edge.To
		}
	}
	if maxNode >= ix.n {
		ix.Grow(maxNode + 1)
	}
	n := ix.n
	nn := len(ix.mats)
	delta := make([]matrix.Bool, nn)
	for a := range delta {
		delta[a] = be.NewMatrix(n)
	}
	seeded := false
	for _, edge := range edges {
		for _, a := range ix.cnf.TermRules[edge.Label] {
			if !ix.mats[a].Get(edge.From, edge.To) {
				delta[a].Set(edge.From, edge.To)
				ix.mats[a].Set(edge.From, edge.To)
				seeded = true
			}
		}
	}
	stats := Stats{}
	if !seeded {
		return stats, nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		stats.Iterations++
		next := make([]matrix.Bool, nn)
		for a := range next {
			next[a] = be.NewMatrix(n)
		}
		for _, r := range ix.cnf.Binary {
			stats.Products += 2
			next[r.A].AddMul(delta[r.B], ix.mats[r.C])
			next[r.A].AddMul(ix.mats[r.B], delta[r.C])
		}
		changed := false
		for a := range next {
			next[a].AndNot(ix.mats[a])
			if next[a].Nnz() > 0 {
				ix.mats[a].Or(next[a])
				changed = true
			}
		}
		delta = next
		if !changed {
			return stats, nil
		}
	}
}
