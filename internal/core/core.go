// Package core implements the paper's contribution: context-free path query
// (CFPQ) evaluation by Boolean matrix multiplication (Azimov & Grigorev,
// "Context-Free Path Querying by Matrix Multiplication").
//
// The matrix T of non-terminal sets from the paper is decomposed into one
// Boolean |V|×|V| matrix per non-terminal (Valiant's decomposition), so the
// closure loop
//
//	while T is changing:  T ← T ∪ (T × T)
//
// becomes, per iteration, one Boolean AddMul per binary production A → B C:
//
//	T_A |= T_B × T_C
//
// Engine is parameterised by a matrix.Backend, giving the paper's four
// implementations (dense/sparse × serial/parallel); see DESIGN.md.
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// Index is the result of the closure: one Boolean reachability matrix per
// non-terminal. After Close, M_A[i][j] is set iff (i, j) ∈ R_A — node j is
// reachable from node i along a path deriving from A (paper Theorem 2).
type Index struct {
	cnf     *grammar.CNF
	n       int
	mats    []matrix.Bool  // indexed by non-terminal index
	backend matrix.Backend // the backend the matrices were allocated from
}

// CNF returns the grammar the index was built for.
func (ix *Index) CNF() *grammar.CNF { return ix.cnf }

// Nodes returns the number of graph nodes.
func (ix *Index) Nodes() int { return ix.n }

// Backend returns the matrix backend the index's matrices were allocated
// from, so incremental updates allocate frontier matrices of the exact same
// representation and kernel (serial/parallel included). It is nil only for
// indexes predating backend recording.
func (ix *Index) Backend() matrix.Backend { return ix.backend }

// Grow resizes every relation matrix in place to n×n (no-op if n ≤ Nodes).
// The closure property is preserved: new nodes are isolated until edges
// touching them are propagated with Update, so an in-place Grow followed by
// Update is exactly the closure of the enlarged graph.
func (ix *Index) Grow(n int) {
	if n <= ix.n {
		return
	}
	for _, m := range ix.mats {
		m.Grow(n)
	}
	ix.n = n
}

// Matrix returns the Boolean matrix of the named non-terminal, or nil if
// the non-terminal does not exist in the CNF grammar.
func (ix *Index) Matrix(nt string) matrix.Bool {
	a, ok := ix.cnf.Index(nt)
	if !ok {
		return nil
	}
	return ix.mats[a]
}

// Has reports whether (i, j) ∈ R_nt.
func (ix *Index) Has(nt string, i, j int) bool {
	m := ix.Matrix(nt)
	return m != nil && m.Get(i, j)
}

// Relation returns R_nt as a sorted pair list. Unknown non-terminals yield
// an empty relation.
func (ix *Index) Relation(nt string) []matrix.Pair {
	m := ix.Matrix(nt)
	if m == nil {
		return nil
	}
	return matrix.Pairs(m)
}

// Count returns |R_nt|.
func (ix *Index) Count(nt string) int {
	m := ix.Matrix(nt)
	if m == nil {
		return 0
	}
	return m.Nnz()
}

// Counts returns |R_A| for every non-terminal A, keyed by name.
func (ix *Index) Counts() map[string]int {
	out := make(map[string]int, len(ix.mats))
	for a, m := range ix.mats {
		out[ix.cnf.Names[a]] = m.Nnz()
	}
	return out
}

// Clone returns a deep copy of the index.
func (ix *Index) Clone() *Index {
	cp := &Index{cnf: ix.cnf, n: ix.n, backend: ix.backend, mats: make([]matrix.Bool, len(ix.mats))}
	for i, m := range ix.mats {
		cp.mats[i] = m.Clone()
	}
	return cp
}

// Equal reports whether two indexes (over the same grammar) hold identical
// relations.
func (ix *Index) Equal(other *Index) bool {
	if ix.n != other.n || len(ix.mats) != len(other.mats) {
		return false
	}
	for i, m := range ix.mats {
		if !m.Equal(other.mats[i]) {
			return false
		}
	}
	return true
}

// Stats reports what the closure did.
type Stats struct {
	// Iterations is the number of outer fixpoint passes, including the
	// final pass that made no change.
	Iterations int `json:"iterations"`
	// Products is the number of Boolean matrix multiplications performed.
	Products int `json:"products"`
	// Duration is the wall time of the evaluation. The context-taking
	// evaluation paths populate it on success and on error; serving
	// layers also stamp it on cached reads, so a warm read reports its
	// real latency rather than a zero-work closure.
	Duration time.Duration `json:"duration_ns,omitempty"`
	// PeakBytes is the largest estimated matrix working set the
	// evaluation held between passes (index matrices plus any
	// schedule-dependent clones or frontiers) — the same estimate the
	// memory budget is enforced against.
	PeakBytes int64 `json:"peak_bytes,omitempty"`
}

// Add accumulates another run's statistics, for callers (such as a serving
// layer) that track total closure work across an initial build and any
// number of incremental updates. Counters and durations sum; PeakBytes
// takes the maximum, the peak of the combined history.
func (s *Stats) Add(o Stats) {
	s.Iterations += o.Iterations
	s.Products += o.Products
	s.Duration += o.Duration
	if o.PeakBytes > s.PeakBytes {
		s.PeakBytes = o.PeakBytes
	}
}

// observePeak raises PeakBytes to the given working-set estimate.
func (s *Stats) observePeak(bytes int64) {
	if bytes > s.PeakBytes {
		s.PeakBytes = bytes
	}
}

// Engine evaluates CFPQs by matrix multiplication.
type Engine struct {
	backend matrix.Backend
	// naive selects the paper-literal iteration T ← T ∪ (T_prev × T_prev):
	// every product in a pass reads the state from the end of the previous
	// pass. The default (false) updates matrices in place within a pass,
	// which reaches the same fixpoint in fewer passes (every in-place pass
	// adds a superset of the snapshot pass's additions, and every addition
	// is justified by a derivation, so soundness and the fixpoint are
	// unchanged). The quickstart example uses naive mode to reproduce the
	// paper's T₀…T₆ states exactly.
	naive bool
	// delta selects the semi-naive schedule (see WithDeltaIteration).
	delta bool
	// budget bounds the estimated matrix bytes one evaluation may hold
	// (see WithMemoryBudget); ≤ 0 means unlimited.
	budget int64
	trace  func(iteration int, ix *Index)
	// tracer is the engine-wide per-pass event trace (WithTracer); a
	// context-attached Trace (WithTraceContext) fires alongside it.
	tracer *Trace
}

// Option configures an Engine.
type Option func(*Engine)

// WithBackend selects the matrix backend (default: sparse serial).
func WithBackend(b matrix.Backend) Option {
	return func(e *Engine) { e.backend = b }
}

// WithNaiveIteration makes the closure follow the paper's Algorithm 1
// literally: each pass multiplies snapshots of the previous pass's state.
func WithNaiveIteration() Option {
	return func(e *Engine) { e.naive = true }
}

// WithTrace installs a callback invoked with the index state after matrix
// initialisation (iteration 0) and after every fixpoint pass. The callback
// must not retain or mutate the index.
func WithTrace(fn func(iteration int, ix *Index)) Option {
	return func(e *Engine) { e.trace = fn }
}

// NewEngine returns an engine with the given options.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{backend: matrix.Sparse()}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Backend returns the engine's matrix backend.
func (e *Engine) Backend() matrix.Backend { return e.backend }

// Init builds the initial index: the matrix-initialisation step of
// Algorithm 1 (lines 6–7). For every edge (i, x, j) and production A → x,
// bit (i, j) of T_A is set. Multiple edges between the same nodes
// contribute the union of their head non-terminals.
func (e *Engine) Init(g *graph.Graph, cnf *grammar.CNF) *Index {
	n := g.Nodes()
	ix := &Index{cnf: cnf, n: n, backend: e.backend, mats: make([]matrix.Bool, cnf.NonterminalCount())}
	for a := range ix.mats {
		ix.mats[a] = e.backend.NewMatrix(n)
	}
	for t, as := range cnf.TermRules {
		for _, edge := range g.EdgesWithLabel(t) {
			for _, a := range as {
				ix.mats[a].Set(edge.From, edge.To)
			}
		}
	}
	return ix
}

// Close runs the fixpoint loop of Algorithm 1 (lines 8–9) until no matrix
// changes, mutating ix. Termination is guaranteed because every pass only
// adds bits and the total bit count is bounded by |V|²·|N| (paper
// Theorem 3).
func (e *Engine) Close(ix *Index) Stats {
	//lint:allow cfpqlint/ctxflow ctx-less convenience API kept for the paper-faithful surface; CloseContext is the ctx-aware path
	stats, _ := e.CloseContext(context.Background(), ix)
	return stats
}

// CloseContext is Close with cooperative cancellation: the context is
// checked between fixpoint passes and ctx.Err() is returned if it fires.
// The index is left in a sound intermediate state (every bit justified by a
// derivation) but is not a fixpoint.
func (e *Engine) CloseContext(ctx context.Context, ix *Index) (Stats, error) {
	if e.naive && e.delta {
		panic("core: WithNaiveIteration and WithDeltaIteration are mutually exclusive")
	}
	pt := e.newPassTracer(ctx, e.closePhase(), ix)
	return e.closeTraced(ctx, ix, pt)
}

// closePhase names the schedule CloseContext will run under.
func (e *Engine) closePhase() string {
	switch {
	case e.naive:
		return "naive"
	case e.delta:
		return "delta"
	default:
		return "full"
	}
}

// closeTraced is CloseContext under an already-resolved pass tracer, so a
// schedule taking over mid-evaluation (frontier saturation fallback) keeps
// one event chain. pt may be nil (tracing disabled).
func (e *Engine) closeTraced(ctx context.Context, ix *Index, pt *passTracer) (stats Stats, err error) {
	pt.setPhase(e.closePhase())
	if !pt.started() {
		// The entry state is this evaluation's seeding step: CloseContext
		// runs on a freshly initialised index.
		pt.beginPass()
		pt.endPass(0, 0)
	}
	if e.delta {
		return e.closeDelta(ctx, ix, pt)
	}
	start := time.Now()
	defer func() {
		stats.Duration = time.Since(start)
		stats.observePeak(ix.Bytes())
	}()
	if e.trace != nil {
		e.trace(0, ix)
	}
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		est := ix.Bytes()
		if e.naive {
			est *= 2 // snapshot semantics clone every matrix
		}
		stats.observePeak(est)
		if err := e.checkBudget(est); err != nil {
			return stats, err
		}
		stats.Iterations++
		pt.beginPass()
		changed := false
		if e.naive {
			// Snapshot semantics: all products read the previous state.
			prev := make([]matrix.Bool, len(ix.mats))
			for i, m := range ix.mats {
				prev[i] = m.Clone()
			}
			for _, r := range ix.cnf.Binary {
				stats.Products++
				if ix.mats[r.A].AddMul(prev[r.B], prev[r.C]) {
					changed = true
				}
			}
		} else {
			for _, r := range ix.cnf.Binary {
				stats.Products++
				if ix.mats[r.A].AddMul(ix.mats[r.B], ix.mats[r.C]) {
					changed = true
				}
			}
		}
		pt.endPass(len(ix.cnf.Binary), 0)
		if e.trace != nil {
			e.trace(stats.Iterations, ix)
		}
		if !changed {
			return stats, nil
		}
	}
}

// Run evaluates the query end to end: Init then Close.
func (e *Engine) Run(g *graph.Graph, cnf *grammar.CNF) (*Index, Stats) {
	ix := e.Init(g, cnf)
	stats := e.Close(ix)
	return ix, stats
}

// RunContext is Run with cooperative cancellation between closure passes
// and, when the engine carries a memory budget, a pre-allocation check:
// an instance whose empty index alone breaches the budget is rejected
// before any matrix is allocated.
func (e *Engine) RunContext(ctx context.Context, g *graph.Graph, cnf *grammar.CNF) (*Index, Stats, error) {
	if err := e.checkBudget(int64(cnf.NonterminalCount()) * e.backend.EmptyBytes(g.Nodes())); err != nil {
		return nil, Stats{}, err
	}
	start := time.Now()
	ix := e.Init(g, cnf)
	stats, err := e.CloseContext(ctx, ix)
	stats.Duration = time.Since(start) // fold the Init time in
	if err != nil {
		return nil, stats, err
	}
	return ix, stats, nil
}

// QueryOptions refine Query.
type QueryOptions struct {
	// IncludeEmptyPaths adds the reflexive pairs (v, v) for every node when
	// the queried non-terminal was nullable in the original grammar. The
	// paper's CNF omits ε-rules because only empty paths v π v have the
	// label ε; this switch restores them.
	IncludeEmptyPaths bool
}

// Query evaluates R_start on the graph under the relational semantics and
// returns the sorted pair list. It is the one-call convenience API; use
// Run/Index for repeated queries over the same closure.
func (e *Engine) Query(g *graph.Graph, gram *grammar.Grammar, start string, opts QueryOptions) ([]matrix.Pair, error) {
	//lint:allow cfpqlint/ctxflow ctx-less convenience API kept for the paper-faithful surface; QueryContext is the ctx-aware path
	return e.QueryContext(context.Background(), g, gram, start, opts)
}

// QueryContext is Query with cooperative cancellation between closure
// passes.
func (e *Engine) QueryContext(ctx context.Context, g *graph.Graph, gram *grammar.Grammar, start string, opts QueryOptions) ([]matrix.Pair, error) {
	pairs, _, err := e.QueryStatsContext(ctx, g, gram, start, opts)
	return pairs, err
}

// QueryStatsContext is QueryContext additionally reporting the closure
// work — the numbers the public planner surfaces in Result.Stats.
func (e *Engine) QueryStatsContext(ctx context.Context, g *graph.Graph, gram *grammar.Grammar, start string, opts QueryOptions) ([]matrix.Pair, Stats, error) {
	if !gram.HasNonterminal(start) {
		return nil, Stats{}, fmt.Errorf("core: unknown non-terminal %q", start)
	}
	cnf, err := grammar.ToCNF(gram)
	if err != nil {
		return nil, Stats{}, err
	}
	ix, stats, err := e.RunContext(ctx, g, cnf)
	if err != nil {
		return nil, stats, err
	}
	pairs := ix.Relation(start)
	if opts.IncludeEmptyPaths && cnf.Nullable[start] {
		seen := make(map[matrix.Pair]bool, len(pairs))
		for _, p := range pairs {
			seen[p] = true
		}
		for v := 0; v < g.Nodes(); v++ {
			p := matrix.Pair{I: v, J: v}
			if !seen[p] {
				pairs = append(pairs, p)
			}
		}
		sort.Slice(pairs, func(a, b int) bool {
			if pairs[a].I != pairs[b].I {
				return pairs[a].I < pairs[b].I
			}
			return pairs[a].J < pairs[b].J
		})
	}
	return pairs, stats, nil
}
