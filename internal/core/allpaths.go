package core

import (
	"context"
	"fmt"
	"strings"

	"cfpq/internal/graph"
)

// AllPathsOptions bounds path enumeration. On cyclic graphs the all-path
// semantics can denote infinitely many paths (the paper cites this as the
// reason annotated grammars were proposed), so enumeration must be bounded.
type AllPathsOptions struct {
	// MaxLength bounds the length (edge count) of returned paths. Zero
	// selects a generous default derived from the graph and grammar size.
	MaxLength int
	// MaxPaths stops enumeration after this many distinct paths.
	// Zero means 1024.
	MaxPaths int
}

// enumState carries enumeration bookkeeping: distinct results, a seen set
// (ambiguous grammars derive the same path several ways), and a work budget
// that bounds the exponential worst case of derivation enumeration.
type enumState struct {
	g        *graph.Graph
	out      [][]graph.Edge
	seen     map[string]bool
	maxPaths int
	budget   int
}

func (st *enumState) full() bool { return len(st.out) >= st.maxPaths || st.budget <= 0 }

func pathKey(p []graph.Edge) string {
	var b strings.Builder
	for _, e := range p {
		fmt.Fprintf(&b, "%d,%s,%d;", e.From, e.Label, e.To)
	}
	return b.String()
}

// AllPaths enumerates distinct paths i π j with nt ⇒* l(π), in
// nondecreasing length order, up to the given bounds. This is the all-path
// query semantics extension the paper lists as future work (Section 7); it
// reuses the Boolean closure index as the derivation oracle: a path exists
// for (A, i, j) iff A has a terminal rule matching an edge i→j, or some
// rule A → B C splits it at a node r with (i, r) ∈ R_B and (r, j) ∈ R_C.
//
// Enumeration cost can be exponential in path length for ambiguous
// grammars; an internal work budget proportional to MaxPaths keeps calls
// bounded, at the price of possible incompleteness on adversarial inputs.
func (ix *Index) AllPaths(g *graph.Graph, nt string, i, j int, opts AllPathsOptions) [][]graph.Edge {
	//lint:allow cfpqlint/ctxflow ctx-less convenience API kept for the paper-faithful surface; AllPathsContext is the ctx-aware path
	paths, _ := ix.AllPathsContext(context.Background(), g, nt, i, j, opts)
	return paths
}

// AllPathsContext is AllPaths with cooperative cancellation: the context is
// checked between length levels of the iterative deepening, so a cancelled
// enumeration returns the (complete) prefix found so far plus ctx.Err().
func (ix *Index) AllPathsContext(ctx context.Context, g *graph.Graph, nt string, i, j int, opts AllPathsOptions) ([][]graph.Edge, error) {
	a, ok := ix.cnf.Index(nt)
	if !ok {
		return nil, nil
	}
	if opts.MaxPaths <= 0 {
		opts.MaxPaths = 1024
	}
	if i < 0 || i >= ix.n || j < 0 || j >= ix.n || !ix.mats[a].Get(i, j) {
		return nil, nil
	}
	maxLen := opts.MaxLength
	if maxLen <= 0 {
		maxLen = ix.n * ix.cnf.NonterminalCount()
		if maxLen < 8 {
			maxLen = 8
		}
	}
	st := &enumState{
		g:        g,
		seen:     map[string]bool{},
		maxPaths: opts.MaxPaths,
		budget:   opts.MaxPaths*256 + 4096,
	}
	// Iterative deepening on exact path length keeps output ordered by
	// length and terminates on cyclic graphs.
	for l := 1; l <= maxLen && !st.full(); l++ {
		if err := ctx.Err(); err != nil {
			return st.out, err
		}
		ix.enumLength(st, a, i, j, l, func(path []graph.Edge) {
			key := pathKey(path)
			if !st.seen[key] {
				st.seen[key] = true
				st.out = append(st.out, path)
			}
		})
	}
	return st.out, nil
}

// enumLength invokes yield for every derivation of a path of exactly
// length l for (a, i, j). The same path may be yielded more than once for
// ambiguous grammars; the caller deduplicates.
func (ix *Index) enumLength(st *enumState, a, i, j, l int, yield func([]graph.Edge)) {
	if st.full() {
		return
	}
	st.budget--
	if l == 1 {
		for t, as := range ix.cnf.TermRules {
			if !containsInt(as, a) {
				continue
			}
			for _, e := range st.g.EdgesWithLabel(t) {
				if e.From == i && e.To == j {
					yield([]graph.Edge{e})
				}
			}
		}
		return
	}
	for _, rule := range ix.cnf.Binary {
		if rule.A != a {
			continue
		}
		mb, mc := ix.mats[rule.B], ix.mats[rule.C]
		for r := 0; r < ix.n; r++ {
			if !mb.Get(i, r) || !mc.Get(r, j) {
				continue
			}
			for split := 1; split < l; split++ {
				if st.full() {
					return
				}
				ix.enumLength(st, rule.B, i, r, split, func(left []graph.Edge) {
					ix.enumLength(st, rule.C, r, j, l-split, func(right []graph.Edge) {
						path := make([]graph.Edge, 0, len(left)+len(right))
						path = append(path, left...)
						path = append(path, right...)
						yield(path)
					})
				})
			}
		}
	}
}
