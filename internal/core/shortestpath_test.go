package core

import (
	"math/rand"
	"testing"

	"cfpq/internal/grammar"
	"cfpq/internal/graph"
)

func TestShortestPathNeverLongerThanFirstFound(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	cnf := grammar.MustParseCNF("S -> a S b | a b")
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(8)
		g := graph.Random(rng, n, 3*n, []string{"a", "b"})
		first := NewPathIndex(g, cnf)
		short := NewShortestPathIndex(g, cnf)
		for _, lp := range first.Relation("S") {
			sl, ok := short.Length("S", lp.I, lp.J)
			if !ok {
				t.Fatalf("trial %d: pair %v missing from shortest index", trial, lp)
			}
			if sl > lp.Length {
				t.Fatalf("trial %d: shortest %d > first-found %d for (%d,%d)",
					trial, sl, lp.Length, lp.I, lp.J)
			}
		}
		// Same relation both ways.
		if len(first.Relation("S")) != len(short.Relation("S")) {
			t.Fatalf("trial %d: relation sizes differ", trial)
		}
	}
}

func TestShortestPathIsMinimal(t *testing.T) {
	// AllPaths enumerates in nondecreasing length order, so its first
	// result is a minimal witness; the shortest index must match it.
	rng := rand.New(rand.NewSource(92))
	cnf := grammar.MustParseCNF("S -> a S b | a b")
	for trial := 0; trial < 6; trial++ {
		n := 3 + rng.Intn(5)
		g := graph.Random(rng, n, 3*n, []string{"a", "b"})
		ix, _ := NewEngine().Run(g, cnf)
		short := NewShortestPathIndex(g, cnf)
		for _, lp := range short.Relation("S") {
			paths := ix.AllPaths(g, "S", lp.I, lp.J, AllPathsOptions{MaxPaths: 1, MaxLength: 64})
			if len(paths) == 0 {
				t.Fatalf("trial %d: no enumerated path for %v", trial, lp)
			}
			if len(paths[0]) != lp.Length {
				t.Fatalf("trial %d: shortest index says %d, enumeration found %d for (%d,%d)",
					trial, lp.Length, len(paths[0]), lp.I, lp.J)
			}
		}
	}
}

func TestShortestPathExtraction(t *testing.T) {
	// On two-cycles, witnesses wind; shortest extraction must still return
	// valid minimal-length paths.
	g := graph.TwoCycles(2, 3, "a", "b")
	cnf := grammar.MustParseCNF("S -> a S b | a b")
	px := NewShortestPathIndex(g, cnf)
	for _, lp := range px.Relation("S") {
		path, ok := px.Path("S", lp.I, lp.J)
		if !ok {
			t.Fatalf("no path for %v", lp)
		}
		if len(path) != lp.Length {
			t.Fatalf("extracted length %d ≠ recorded %d", len(path), lp.Length)
		}
		if err := ValidatePath(path, lp.I, lp.J); err != nil {
			t.Fatal(err)
		}
		if !cnf.Derives("S", Labels(path)) {
			t.Fatalf("invalid witness %v", Labels(path))
		}
	}
}

func TestShortestOnWordGraphEqualsFirstFound(t *testing.T) {
	// On an unambiguous acyclic instance both indexes coincide.
	cnf := grammar.MustParseCNF("S -> a S b | a b")
	g := graph.Word([]string{"a", "a", "a", "b", "b", "b"})
	first := NewPathIndex(g, cnf)
	short := NewShortestPathIndex(g, cnf)
	for _, lp := range first.Relation("S") {
		sl, _ := short.Length("S", lp.I, lp.J)
		if sl != lp.Length {
			t.Errorf("(%d,%d): first %d, shortest %d", lp.I, lp.J, lp.Length, sl)
		}
	}
}
