package core

import (
	"math/rand"
	"reflect"
	"testing"

	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// balancedCNF is the Dyck-style grammar S → a S b | a b in CNF.
func balancedCNF(t *testing.T) *grammar.CNF {
	t.Helper()
	return grammar.MustParseCNF("S -> a S b | a b")
}

func TestQueryOnWordGraph(t *testing.T) {
	// CFPQ on a word graph is string recognition: relation (0, len(w))
	// exists iff the word is in the language.
	cnf := balancedCNF(t)
	e := NewEngine()
	cases := []struct {
		word []string
		want bool
	}{
		{[]string{"a", "b"}, true},
		{[]string{"a", "a", "b", "b"}, true},
		{[]string{"a", "a", "a", "b", "b", "b"}, true},
		{[]string{"a", "b", "a", "b"}, false},
		{[]string{"a"}, false},
		{[]string{"b", "a"}, false},
	}
	for _, c := range cases {
		g := graph.Word(c.word)
		ix, _ := e.Run(g, cnf)
		if got := ix.Has("S", 0, len(c.word)); got != c.want {
			t.Errorf("word %v: recognised=%v, want %v", c.word, got, c.want)
		}
	}
}

func TestQueryOnTwoCycles(t *testing.T) {
	// The classic CFPQ stress instance: cycles of length 2 (a) and 3 (b)
	// meeting at node 0, queried with S → a S b | a b. Yannakakis
	// conjectured Valiant's technique would not generalise to such cyclic
	// inputs; the paper's closure handles them.
	g := graph.TwoCycles(2, 3, "a", "b")
	cnf := balancedCNF(t)
	for _, be := range matrix.Backends() {
		e := NewEngine(WithBackend(be))
		ix, stats := e.Run(g, cnf)
		// Known result for this instance: every a-cycle node relates to
		// every b-cycle node (including shared node 0) — aⁿbⁿ paths exist
		// for suitable n since gcd(2,3)=1.
		got := ix.Count("S")
		if got == 0 {
			t.Fatalf("%s: empty R_S on two-cycles", be.Name())
		}
		// Specific well-known pair: (0,0) via a²b²·... needs n ≡ 0 mod 2
		// and n ≡ 0 mod 3 → n = 6: a⁶ loops the a-cycle 3×, b⁶ loops the
		// b-cycle 2×.
		if !ix.Has("S", 0, 0) {
			t.Errorf("%s: (0,0) missing from R_S", be.Name())
		}
		if stats.Iterations < 2 {
			t.Errorf("%s: suspiciously few iterations: %+v", be.Name(), stats)
		}
	}
}

func TestBackendsAndIterationModesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	grams := []*grammar.CNF{
		balancedCNF(t),
		grammar.MustParseCNF(paperCNF),
		grammar.MustParseCNF("S -> S S | a"),
		grammar.MustParseCNF("A -> a B\nB -> b | b A"),
	}
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(15)
		g := graph.Random(rng, n, 3*n, []string{"a", "b", "subClassOf", "subClassOf_r", "type", "type_r"})
		for gi, cnf := range grams {
			ref, _ := NewEngine(WithBackend(matrix.Dense()), WithNaiveIteration()).Run(g, cnf)
			for _, be := range matrix.Backends() {
				for _, naive := range []bool{false, true} {
					opts := []Option{WithBackend(be)}
					if naive {
						opts = append(opts, WithNaiveIteration())
					}
					ix, _ := NewEngine(opts...).Run(g, cnf)
					for a := 0; a < cnf.NonterminalCount(); a++ {
						nt := cnf.Names[a]
						if !reflect.DeepEqual(ix.Relation(nt), ref.Relation(nt)) {
							t.Fatalf("trial %d grammar %d: %s naive=%v disagrees on R_%s",
								trial, gi, be.Name(), naive, nt)
						}
					}
				}
			}
		}
	}
}

func TestInPlaceNeverSlowerInPasses(t *testing.T) {
	// The in-place schedule must converge in no more passes than the
	// snapshot schedule (it adds a superset per pass).
	rng := rand.New(rand.NewSource(12))
	cnf := balancedCNF(t)
	for trial := 0; trial < 10; trial++ {
		g := graph.Random(rng, 12, 36, []string{"a", "b"})
		_, naive := NewEngine(WithNaiveIteration()).Run(g, cnf)
		_, inplace := NewEngine().Run(g, cnf)
		if inplace.Iterations > naive.Iterations {
			t.Errorf("trial %d: in-place used %d passes, naive %d",
				trial, inplace.Iterations, naive.Iterations)
		}
	}
}

func TestQueryUnknownNonterminal(t *testing.T) {
	g := graph.Chain(3, "a")
	gram := grammar.MustParse("S -> a")
	if _, err := NewEngine().Query(g, gram, "Nope", QueryOptions{}); err == nil {
		t.Error("Query with unknown non-terminal should fail")
	}
}

func TestQueryIncludeEmptyPaths(t *testing.T) {
	g := graph.Chain(3, "a") // nodes 0,1,2
	gram := grammar.MustParse("S -> a S | eps")
	e := NewEngine()
	without, err := e.Query(g, gram, "S", QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range without {
		if p.I == p.J {
			t.Errorf("unexpected reflexive pair %v without IncludeEmptyPaths", p)
		}
	}
	with, err := e.Query(g, gram, "S", QueryOptions{IncludeEmptyPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	want := map[matrix.Pair]bool{}
	for _, p := range without {
		want[p] = true
	}
	for v := 0; v < 3; v++ {
		want[matrix.Pair{I: v, J: v}] = true
	}
	if len(with) != len(want) {
		t.Fatalf("IncludeEmptyPaths: got %v", with)
	}
	for _, p := range with {
		if !want[p] {
			t.Errorf("unexpected pair %v", p)
		}
	}
	// Sorted output.
	for i := 1; i < len(with); i++ {
		a, b := with[i-1], with[i]
		if a.I > b.I || (a.I == b.I && a.J >= b.J) {
			t.Errorf("output not sorted at %d: %v, %v", i, a, b)
		}
	}
}

func TestIndexAccessors(t *testing.T) {
	cnf := balancedCNF(t)
	g := graph.Word([]string{"a", "b"})
	ix, stats := NewEngine().Run(g, cnf)
	if ix.Nodes() != 3 {
		t.Errorf("Nodes = %d", ix.Nodes())
	}
	if ix.CNF() != cnf {
		t.Error("CNF accessor broken")
	}
	if ix.Matrix("Nope") != nil {
		t.Error("Matrix of unknown non-terminal should be nil")
	}
	if ix.Count("Nope") != 0 || ix.Relation("Nope") != nil {
		t.Error("unknown non-terminal should have empty relation")
	}
	counts := ix.Counts()
	if counts["S"] != 1 {
		t.Errorf("Counts[S] = %d, want 1", counts["S"])
	}
	if stats.Products == 0 {
		t.Error("stats should count products")
	}
	cp := ix.Clone()
	if !cp.Equal(ix) {
		t.Error("Clone not Equal")
	}
	cp.Matrix("S").Set(2, 2)
	if cp.Equal(ix) {
		t.Error("Clone shares matrices")
	}
}

func TestIndexEqualShapeMismatch(t *testing.T) {
	cnf := balancedCNF(t)
	a, _ := NewEngine().Run(graph.Word([]string{"a", "b"}), cnf)
	b, _ := NewEngine().Run(graph.Word([]string{"a", "b", "b"}), cnf)
	if a.Equal(b) {
		t.Error("indexes over different node counts must differ")
	}
}

func TestFormatMatrixPaperStyle(t *testing.T) {
	cnf := grammar.MustParseCNF(paperCNF)
	e := NewEngine(WithBackend(matrix.Dense()))
	ix := e.Init(paperGraph(), cnf)
	got := ix.FormatMatrix()
	want := "" +
		"[ {S1} {S3} .    ]\n" +
		"[ .    .    {S3} ]\n" +
		"[ {S2} .    {S4} ]\n"
	if got != want {
		t.Errorf("FormatMatrix:\n%s\nwant:\n%s", got, want)
	}
}

func TestEmptyGraph(t *testing.T) {
	cnf := balancedCNF(t)
	for _, be := range matrix.Backends() {
		ix, stats := NewEngine(WithBackend(be)).Run(graph.New(0), cnf)
		if ix.Count("S") != 0 {
			t.Errorf("%s: non-empty relation on empty graph", be.Name())
		}
		if stats.Iterations != 1 {
			t.Errorf("%s: %d iterations on empty graph, want 1", be.Name(), stats.Iterations)
		}
	}
}

func TestGraphWithIrrelevantLabels(t *testing.T) {
	cnf := balancedCNF(t)
	g := graph.New(3)
	g.AddEdge(0, "x", 1) // label not in grammar
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "b", 2)
	ix, _ := NewEngine().Run(g, cnf)
	if !ix.Has("S", 0, 2) {
		t.Error("(0,2) should be in R_S")
	}
	if ix.Count("S") != 1 {
		t.Errorf("R_S = %v", ix.Relation("S"))
	}
}

func TestMultiEdgeInitialization(t *testing.T) {
	// Paper: both labels of parallel edges contribute to T[i][j].
	cnf := grammar.MustParseCNF("A -> x\nB -> y")
	g := graph.New(2)
	g.AddEdge(0, "x", 1)
	g.AddEdge(0, "y", 1)
	ix := NewEngine().Init(g, cnf)
	if !ix.Has("A", 0, 1) || !ix.Has("B", 0, 1) {
		t.Error("both parallel-edge labels must initialise the cell")
	}
}
