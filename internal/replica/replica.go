// Package replica is the read-replica subsystem: it turns one cfpqd
// process into a follower of another by shipping the leader's write-ahead
// log over HTTP and applying it locally through the same write-ahead +
// incremental delta-patch path a warm start uses — never a cold closure.
//
// # Protocol
//
// The leader (any cfpqd with a durable store) serves three things:
//
//   - GET /v1/replica/snapshot — a JSON manifest: the registry's grammars,
//     every graph with its edge-stream seq, and a config version that
//     changes whenever the registry does.
//   - GET /v1/replica/snapshot?graph=X — a binary, CRC-trailed snapshot of
//     one graph's current state (the store's snapshot format) at the seq
//     named by the X-Cfpq-Seq response header.
//   - GET /v1/replica/wal?graph=X&from=N&epoch=E — a long-poll over the
//     graph's WAL tail: the CRC-framed batches journaled after seq N,
//     re-encoded as JSON with their original resolution kind, the leader's
//     head seq, and the bytes still pending beyond the returned page. The
//     epoch pins the edge stream the seq refers to (a graph replacement
//     mints a new epoch). When N was compacted away, overshoots the head,
//     or the epoch no longer matches, the leader answers 410 Gone — the
//     "snapshot required" signal — and the follower re-bootstraps that
//     graph instead of silently diverging.
//
// A follower bootstraps each graph from the snapshot, then tails the WAL
// with retry/backoff, applying every batch write-ahead into its own store
// and patching its cached indexes with the incremental delta closure. The
// follower's own WAL therefore replays the exact frames the leader
// journaled, which also makes followers chainable: a follower with a
// durable store can serve the same replication endpoints to followers of
// its own.
//
// # Staleness
//
// Replication is asynchronous: a follower serves reads at a bounded,
// *measured* staleness, reported per graph as applied seq vs leader seq
// (lag in records), WAL bytes not yet applied (lag in bytes), and the time
// since the follower was last caught up (lag age). Status feeds
// GET /v1/replication/status and /debug/vars; /readyz turns 503 when the
// follower is bootstrapping, has lost its leader, or exceeds a configured
// lag bound, so load balancers stop routing to stale replicas.
package replica

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"cfpq/internal/graph"
	"cfpq/internal/store"
)

// Manifest is the leader's registry description — the JSON body of
// GET /v1/replica/snapshot without a graph parameter.
type Manifest struct {
	// ConfigVersion changes whenever the leader's registry does (graph
	// created or replaced, grammar registered). Followers remember the
	// version they synced and re-sync when a WAL poll reports a new one.
	ConfigVersion uint64 `json:"config_version"`
	// Grammars maps grammar name → source text.
	Grammars map[string]string `json:"grammars"`
	// Graphs lists every graph with its current edge-stream seq.
	Graphs []GraphMeta `json:"graphs"`
}

// GraphMeta names one graph of the manifest. Epoch identifies the graph's
// edge stream: minted when the graph is created (or replaced) and copied
// to followers at bootstrap, it guarantees a seq is never interpreted
// against a different stream — a replaced graph changes epoch even when
// its seq range happens to overlap the old one.
type GraphMeta struct {
	Name  string `json:"name"`
	Seq   uint64 `json:"seq"`
	Epoch uint64 `json:"epoch"`
}

// WireEdge is one journaled edge on the wire, endpoints as the tokens the
// leader journaled them by.
type WireEdge struct {
	From  string `json:"from"`
	Label string `json:"label"`
	To    string `json:"to"`
}

// WireBatch is one WAL batch on the wire: the records of the seq range
// (Seq-len(Edges), Seq], the resolution kind replay must use ("tokens" or
// "ids"), and the frame's size in WAL bytes.
type WireBatch struct {
	Seq   uint64     `json:"seq"`
	Kind  string     `json:"kind"`
	Bytes int64      `json:"bytes"`
	Edges []WireEdge `json:"edges"`
}

// TailResponse is the body of GET /v1/replica/wal: the batches after
// `from`, plus enough leader state for the follower's staleness math.
type TailResponse struct {
	Graph         string `json:"graph"`
	From          uint64 `json:"from"`
	LeaderSeq     uint64 `json:"leader_seq"`
	ConfigVersion uint64 `json:"config_version"`
	// RemainingBytes is the WAL bytes still pending on the leader beyond
	// the batches in this response (the page was cut by the size cap).
	RemainingBytes int64       `json:"remaining_bytes"`
	Batches        []WireBatch `json:"batches"`
}

// Batch converts one wire batch back to store records.
func (b WireBatch) Batch() (store.TailBatch, error) {
	kind, err := store.ParseRecordKind(b.Kind)
	if err != nil {
		return store.TailBatch{}, err
	}
	recs := make([]store.EdgeRecord, len(b.Edges))
	for i, e := range b.Edges {
		recs[i] = store.EdgeRecord{From: e.From, Label: e.Label, To: e.To}
	}
	return store.TailBatch{Seq: b.Seq, Kind: kind, Recs: recs, Bytes: b.Bytes}, nil
}

// WireBatches converts store tail batches to their wire form.
func WireBatches(batches []store.TailBatch) []WireBatch {
	out := make([]WireBatch, len(batches))
	for i, b := range batches {
		edges := make([]WireEdge, len(b.Recs))
		for k, r := range b.Recs {
			edges[k] = WireEdge{From: r.From, Label: r.Label, To: r.To}
		}
		out[i] = WireBatch{Seq: b.Seq, Kind: b.Kind.String(), Bytes: b.Bytes, Edges: edges}
	}
	return out
}

// Applier is the local half of replication: the serving layer a follower
// applies the leader's state into. internal/server.Service implements it.
type Applier interface {
	// ApplyGrammar registers a replicated grammar, bypassing the
	// follower's read-only gate. Re-applying an unchanged text must be a
	// no-op (it must NOT drop cached indexes).
	ApplyGrammar(name, text string) error
	// BootstrapGraph installs a replicated graph snapshot (replacing any
	// local copy) at the given edge-stream position and epoch. names maps
	// node id → name ("" = unnamed).
	BootstrapGraph(name string, g *graph.Graph, names []string, seq, epoch uint64) error
	// ApplyReplicatedEdges applies one WAL batch write-ahead: journaled
	// into the follower's own store (when durable) with the original
	// resolution kind, then folded into the in-memory graph and patched
	// into every cached index via the incremental delta closure. endSeq is
	// the leader's seq after the batch; a mismatch with the local position
	// must return an error wrapping store.ErrSeqMismatch.
	ApplyReplicatedEdges(ctx context.Context, graphName string, kind store.RecordKind, recs []store.EdgeRecord, endSeq uint64) error
	// GraphPos reports the local edge-stream position and epoch of a
	// graph, false when the graph is not present locally.
	GraphPos(name string) (seq, epoch uint64, ok bool)
}

// Options tunes a Replicator.
type Options struct {
	// PollWait is the long-poll wait the follower asks the leader for
	// (default 20s). Lower values only add idle round trips.
	PollWait time.Duration
	// Backoff is the initial retry delay after a failed poll or bootstrap
	// (default 250ms); it doubles per consecutive failure up to MaxBackoff
	// (default 5s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// StaleAfter is how long the follower may go without a successful
	// leader response before Status reports the stream degraded (default
	// 10s). Readiness probes turn unready on a degraded stream.
	StaleAfter time.Duration
}

func (o Options) withDefaults() Options {
	if o.PollWait <= 0 {
		o.PollWait = 20 * time.Second
	}
	if o.Backoff <= 0 {
		o.Backoff = 250 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.StaleAfter <= 0 {
		o.StaleAfter = 10 * time.Second
	}
	return o
}

// Replication states, coarsest first.
const (
	StateBootstrapping = "bootstrapping" // initial manifest/snapshot sync in progress
	StateStreaming     = "streaming"     // tailing the leader's WAL
	StateDegraded      = "degraded"      // no successful leader contact within StaleAfter
	StatePromoted      = "promoted"      // detached by Promote; no longer following
	StateStopped       = "stopped"       // Run returned (context cancelled)
)

// GraphStatus is one graph's replication position.
type GraphStatus struct {
	Graph      string `json:"graph"`
	AppliedSeq uint64 `json:"applied_seq"`
	LeaderSeq  uint64 `json:"leader_seq"`
	// LagRecords = LeaderSeq - AppliedSeq as of the last poll.
	LagRecords uint64 `json:"lag_records"`
	// LagBytes is the leader's estimate of WAL bytes not yet applied here.
	LagBytes int64 `json:"lag_bytes"`
	// LagAgeSeconds is how long the graph has continuously been behind the
	// leader's head; 0 when caught up.
	LagAgeSeconds float64 `json:"lag_age_seconds"`
	// Bootstraps counts snapshot re-bootstraps of this graph (1 = the
	// initial one; more mean compaction outran the tail or the graph was
	// replaced).
	Bootstraps int    `json:"bootstraps"`
	Error      string `json:"error,omitempty"`
}

// Status is a point-in-time view of a follower's replication stream — the
// body of GET /v1/replication/status on a follower.
type Status struct {
	Role          string        `json:"role"` // always "follower" here
	Leader        string        `json:"leader"`
	State         string        `json:"state"`
	ConfigVersion uint64        `json:"config_version"`
	Graphs        []GraphStatus `json:"graphs"`
	// LagRecords/LagBytes/LagAgeSeconds aggregate the worst graph.
	LagRecords    uint64  `json:"lag_records"`
	LagBytes      int64   `json:"lag_bytes"`
	LagAgeSeconds float64 `json:"lag_age_seconds"`
	// LastContactSeconds is the time since any leader request succeeded.
	LastContactSeconds float64 `json:"last_contact_seconds"`
	Error              string  `json:"error,omitempty"`
}

// Ready is the /readyz predicate: the follower is routable when it is
// actively streaming and within maxLag records of the leader (maxLag 0
// means any finite lag is acceptable as long as the stream is live).
func (st Status) Ready(maxLag uint64) bool {
	if st.State != StateStreaming {
		return false
	}
	return maxLag == 0 || st.LagRecords <= maxLag
}

// graphState is the replicator's mutable per-graph tracking.
type graphState struct {
	appliedSeq uint64
	leaderSeq  uint64
	lagBytes   int64
	behindAt   time.Time // zero when caught up; else when the lag streak began
	bootstraps int
	err        string
}

// Replicator follows one leader: it syncs the manifest, bootstraps graphs
// from snapshots and runs one WAL tailer per graph, applying batches
// through an Applier. Safe for concurrent Status calls while running.
type Replicator struct {
	client *Client
	app    Applier
	opts   Options

	stopOnce sync.Once
	stopCh   chan struct{} // closed by Promote/Stop
	doneCh   chan struct{} // closed when Run returns

	mu            sync.Mutex
	state         string
	configVersion uint64
	graphs        map[string]*graphState
	lastContact   time.Time
	lastErr       string
}

// New returns a Replicator following the leader behind client, applying
// into app. Call Run to start.
func New(client *Client, app Applier, opts Options) *Replicator {
	return &Replicator{
		client: client,
		app:    app,
		opts:   opts.withDefaults(),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
		state:  StateBootstrapping,
		graphs: map[string]*graphState{},
	}
}

// Run follows the leader until ctx is cancelled or Promote is called. It
// blocks; callers run it in a goroutine. The returned error is ctx.Err()
// for cancellation, nil for promotion — transient leader failures are
// retried forever with backoff, never returned.
func (r *Replicator) Run(ctx context.Context) error {
	defer close(r.doneCh)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-r.stopCh:
			cancel()
		case <-runCtx.Done():
		}
	}()

	backoff := r.opts.Backoff
	for {
		if err := runCtx.Err(); err != nil {
			r.setFinalState()
			return r.finalErr(ctx)
		}
		m, err := r.client.Manifest(runCtx)
		if err != nil {
			r.noteError(fmt.Errorf("manifest: %w", err))
			backoff = r.sleep(runCtx, backoff)
			continue
		}
		r.noteContact()
		if err := r.syncManifest(runCtx, m); err != nil {
			r.noteError(fmt.Errorf("sync: %w", err))
			backoff = r.sleep(runCtx, backoff)
			continue
		}
		backoff = r.opts.Backoff

		// One tailer per graph, so a long poll on an idle graph never
		// starves a busy one. They run until the context dies or any
		// tailer sees a new config version and asks for a re-sync.
		tailCtx, stopTails := context.WithCancel(runCtx)
		resync := make(chan struct{}, 1)
		var wg sync.WaitGroup
		for _, gm := range m.Graphs {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				r.tailGraph(tailCtx, name, resync)
			}(gm.Name)
		}
		r.setState(StateStreaming)
		select {
		case <-tailCtx.Done():
		case <-resync:
		}
		stopTails()
		wg.Wait()
	}
}

// Stop detaches the replicator: tailers stop, Run returns. Idempotent.
func (r *Replicator) Stop() {
	r.stopOnce.Do(func() { close(r.stopCh) })
}

// Promote detaches the replicator and waits (bounded by ctx) for the
// stream to fully stop, leaving the local state a consistent prefix of the
// leader's — the first step of turning a follower into a writable leader.
func (r *Replicator) Promote(ctx context.Context) error {
	r.Stop()
	select {
	case <-r.doneCh:
	case <-ctx.Done():
		return fmt.Errorf("replica: promote: stream still draining: %w", ctx.Err())
	}
	r.mu.Lock()
	r.state = StatePromoted
	r.mu.Unlock()
	return nil
}

// setFinalState distinguishes a promoted stop from a plain shutdown.
func (r *Replicator) setFinalState() {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case <-r.stopCh:
		r.state = StatePromoted
	default:
		r.state = StateStopped
	}
}

// finalErr reports nil for promotion, the context error for cancellation.
func (r *Replicator) finalErr(ctx context.Context) error {
	select {
	case <-r.stopCh:
		return nil
	default:
		return ctx.Err()
	}
}

// syncManifest brings the local registry up to the manifest: grammars are
// (re-)applied — the Applier no-ops unchanged texts — and any graph whose
// local position is missing is bootstrapped. Graphs whose local seq ran
// PAST the leader's head (the leader lost state or the graph was replaced)
// are re-bootstrapped too; the common catch-up case (local seq ≤ leader
// seq) is left to the tailer.
func (r *Replicator) syncManifest(ctx context.Context, m *Manifest) error {
	names := make([]string, 0, len(m.Grammars))
	for name := range m.Grammars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := r.app.ApplyGrammar(name, m.Grammars[name]); err != nil {
			return fmt.Errorf("grammar %q: %w", name, err)
		}
	}
	r.mu.Lock()
	r.configVersion = m.ConfigVersion
	live := map[string]bool{}
	for _, gm := range m.Graphs {
		live[gm.Name] = true
		if r.graphs[gm.Name] == nil {
			r.graphs[gm.Name] = &graphState{}
		}
		r.graphs[gm.Name].leaderSeq = gm.Seq
	}
	for name := range r.graphs {
		if !live[name] {
			delete(r.graphs, name) // gone on the leader; stop reporting it
		}
	}
	r.mu.Unlock()
	for _, gm := range m.Graphs {
		local, epoch, ok := r.app.GraphPos(gm.Name)
		if ok && epoch == gm.Epoch && local <= gm.Seq {
			continue
		}
		if err := r.bootstrapGraph(ctx, gm.Name); err != nil {
			return err
		}
	}
	return nil
}

// bootstrapGraph replaces the local copy of one graph with the leader's
// snapshot.
func (r *Replicator) bootstrapGraph(ctx context.Context, name string) error {
	raw, _, epoch, err := r.client.GraphSnapshot(ctx, name)
	if err != nil {
		return fmt.Errorf("graph %q snapshot: %w", name, err)
	}
	g, names, seq, err := store.DecodeSnapshot(raw)
	if err != nil {
		return fmt.Errorf("graph %q snapshot: %w", name, err)
	}
	if err := r.app.BootstrapGraph(name, g, names, seq, epoch); err != nil {
		return fmt.Errorf("graph %q bootstrap: %w", name, err)
	}
	r.noteContact()
	r.mu.Lock()
	gs := r.graphs[name]
	if gs == nil {
		gs = &graphState{}
		r.graphs[name] = gs
	}
	gs.appliedSeq = seq
	if gs.leaderSeq < seq {
		gs.leaderSeq = seq
	}
	gs.bootstraps++
	gs.err = ""
	r.mu.Unlock()
	return nil
}

// tailGraph is one graph's streaming loop: long-poll the leader's WAL from
// the local position, apply every returned batch, re-bootstrap on the
// snapshot-required signal, back off on errors, and request a manifest
// re-sync when the leader's config version moves.
func (r *Replicator) tailGraph(ctx context.Context, name string, resync chan<- struct{}) {
	backoff := r.opts.Backoff
	for ctx.Err() == nil {
		from, epoch, ok := r.app.GraphPos(name)
		if !ok {
			if err := r.bootstrapGraph(ctx, name); err != nil {
				r.noteGraphError(name, err)
				backoff = r.sleep(ctx, backoff)
			}
			continue
		}
		resp, err := r.client.Tail(ctx, name, from, epoch, r.opts.PollWait)
		switch {
		case errors.Is(err, ErrSnapshotRequired):
			// The tail from our position is gone (compaction) or invalid
			// (graph replaced): re-bootstrap rather than diverge.
			if err := r.bootstrapGraph(ctx, name); err != nil {
				r.noteGraphError(name, err)
				backoff = r.sleep(ctx, backoff)
			}
			continue
		case errors.Is(err, ErrUnknownGraph):
			// The graph vanished from the leader: the registry drifted,
			// re-sync the manifest.
			r.requestResync(resync)
			return
		case err != nil:
			if ctx.Err() != nil {
				return
			}
			r.noteGraphError(name, err)
			backoff = r.sleep(ctx, backoff)
			continue
		}
		backoff = r.opts.Backoff
		r.noteContact()
		applied := from
		var applyErr error
		for _, wb := range resp.Batches {
			b, err := wb.Batch()
			if err == nil {
				err = r.app.ApplyReplicatedEdges(ctx, name, b.Kind, b.Recs, b.Seq)
			}
			if err != nil {
				applyErr = err
				break
			}
			applied = b.Seq
		}
		r.noteProgress(name, applied, resp.LeaderSeq, resp.RemainingBytes, applyErr)
		if applyErr != nil {
			if errors.Is(applyErr, store.ErrSeqMismatch) {
				if err := r.bootstrapGraph(ctx, name); err != nil {
					r.noteGraphError(name, err)
					backoff = r.sleep(ctx, backoff)
				}
				continue
			}
			backoff = r.sleep(ctx, backoff)
			continue
		}
		if resp.ConfigVersion != r.currentConfigVersion() {
			r.requestResync(resync)
			return
		}
	}
}

func (r *Replicator) requestResync(resync chan<- struct{}) {
	select {
	case resync <- struct{}{}:
	default:
	}
}

// sleep waits out a backoff (or the context) and returns the next delay.
func (r *Replicator) sleep(ctx context.Context, d time.Duration) time.Duration {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
	next := d * 2
	if next > r.opts.MaxBackoff {
		next = r.opts.MaxBackoff
	}
	return next
}

func (r *Replicator) currentConfigVersion() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.configVersion
}

func (r *Replicator) setState(state string) {
	r.mu.Lock()
	r.state = state
	r.mu.Unlock()
}

func (r *Replicator) noteContact() {
	r.mu.Lock()
	r.lastContact = time.Now()
	r.lastErr = ""
	r.mu.Unlock()
}

func (r *Replicator) noteError(err error) {
	r.mu.Lock()
	r.lastErr = err.Error()
	r.mu.Unlock()
}

func (r *Replicator) noteGraphError(name string, err error) {
	r.mu.Lock()
	if gs := r.graphs[name]; gs != nil {
		gs.err = err.Error()
	}
	r.mu.Unlock()
}

// noteProgress records one poll's outcome for a graph's staleness math.
func (r *Replicator) noteProgress(name string, applied, leaderSeq uint64, remainingBytes int64, applyErr error) {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	gs := r.graphs[name]
	if gs == nil {
		gs = &graphState{}
		r.graphs[name] = gs
	}
	gs.appliedSeq = applied
	gs.leaderSeq = leaderSeq
	gs.lagBytes = remainingBytes
	if applied >= leaderSeq {
		gs.behindAt = time.Time{}
	} else if gs.behindAt.IsZero() {
		gs.behindAt = now
	}
	if applyErr != nil {
		gs.err = applyErr.Error()
	} else {
		gs.err = ""
	}
}

// Status snapshots the stream.
func (r *Replicator) Status() Status {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Status{
		Role:          "follower",
		Leader:        r.client.Base,
		State:         r.state,
		ConfigVersion: r.configVersion,
		Error:         r.lastErr,
	}
	if !r.lastContact.IsZero() {
		st.LastContactSeconds = now.Sub(r.lastContact).Seconds()
	}
	// A stream that lost its leader is degraded no matter what the last
	// poll said; readiness keys off this.
	if r.state == StateStreaming &&
		(r.lastContact.IsZero() || now.Sub(r.lastContact) > r.opts.StaleAfter) {
		st.State = StateDegraded
	}
	names := make([]string, 0, len(r.graphs))
	for name := range r.graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		gs := r.graphs[name]
		g := GraphStatus{
			Graph:      name,
			AppliedSeq: gs.appliedSeq,
			LeaderSeq:  gs.leaderSeq,
			LagBytes:   gs.lagBytes,
			Bootstraps: gs.bootstraps,
			Error:      gs.err,
		}
		if gs.leaderSeq > gs.appliedSeq {
			g.LagRecords = gs.leaderSeq - gs.appliedSeq
		}
		if !gs.behindAt.IsZero() {
			g.LagAgeSeconds = now.Sub(gs.behindAt).Seconds()
		}
		st.Graphs = append(st.Graphs, g)
		if g.LagRecords > st.LagRecords {
			st.LagRecords = g.LagRecords
		}
		if g.LagBytes > st.LagBytes {
			st.LagBytes = g.LagBytes
		}
		if g.LagAgeSeconds > st.LagAgeSeconds {
			st.LagAgeSeconds = g.LagAgeSeconds
		}
	}
	return st
}
