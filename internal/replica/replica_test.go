package replica

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"cfpq/internal/store"
)

var ctx = context.Background()

func TestStatusReady(t *testing.T) {
	cases := []struct {
		name   string
		st     Status
		maxLag uint64
		want   bool
	}{
		{"bootstrapping", Status{State: StateBootstrapping}, 0, false},
		{"degraded", Status{State: StateDegraded}, 0, false},
		{"stopped", Status{State: StateStopped}, 0, false},
		{"streaming caught up", Status{State: StateStreaming}, 0, true},
		{"streaming any finite lag", Status{State: StateStreaming, LagRecords: 1 << 20}, 0, true},
		{"streaming within bound", Status{State: StateStreaming, LagRecords: 10}, 10, true},
		{"streaming beyond bound", Status{State: StateStreaming, LagRecords: 11}, 10, false},
	}
	for _, c := range cases {
		if got := c.st.Ready(c.maxLag); got != c.want {
			t.Errorf("%s: Ready(%d) = %v, want %v", c.name, c.maxLag, got, c.want)
		}
	}
}

func TestWireBatchRoundTrip(t *testing.T) {
	in := []store.TailBatch{
		{Seq: 2, Kind: store.RecordTokens, Bytes: 40, Recs: []store.EdgeRecord{
			{From: "a", Label: "x", To: "b"},
			{From: "b", Label: "y", To: "c"},
		}},
		{Seq: 3, Kind: store.RecordIDs, Bytes: 21, Recs: []store.EdgeRecord{
			{From: "0", Label: "z", To: "2"},
		}},
	}
	wire := WireBatches(in)
	if wire[0].Kind != "tokens" || wire[1].Kind != "ids" {
		t.Fatalf("wire kinds = %q, %q", wire[0].Kind, wire[1].Kind)
	}
	// Through JSON, like the HTTP layer ships it.
	raw, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	var back []WireBatch
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	for i, wb := range back {
		b, err := wb.Batch()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(b, in[i]) {
			t.Errorf("batch %d round-tripped to %+v, want %+v", i, b, in[i])
		}
	}
	if _, err := (WireBatch{Kind: "morse"}).Batch(); err == nil {
		t.Error("unknown kind decoded without error")
	}
}

// TestClientSentinels checks the HTTP status → sentinel error mapping the
// tailer branches on: 410 means re-bootstrap, 404 means re-sync.
func TestClientSentinels(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("graph") {
		case "compacted":
			http.Error(w, "tail gone", http.StatusGone)
		case "vanished":
			http.Error(w, "no such graph", http.StatusNotFound)
		default:
			http.Error(w, "boom", http.StatusInternalServerError)
		}
	}))
	defer srv.Close()
	c := &Client{Base: srv.URL, FollowerID: "t"}

	if _, err := c.Tail(ctx, "compacted", 5, 1, 0); !errors.Is(err, ErrSnapshotRequired) {
		t.Errorf("410: err = %v, want ErrSnapshotRequired", err)
	}
	if _, err := c.Tail(ctx, "vanished", 5, 1, 0); !errors.Is(err, ErrUnknownGraph) {
		t.Errorf("404: err = %v, want ErrUnknownGraph", err)
	}
	_, err := c.Tail(ctx, "other", 5, 1, 0)
	if err == nil || errors.Is(err, ErrSnapshotRequired) || errors.Is(err, ErrUnknownGraph) {
		t.Errorf("500: err = %v, want a plain error", err)
	}
}

// TestClientRequests checks the wire format the client emits and decodes:
// manifest JSON, snapshot headers, and the tail query string.
func TestClientRequests(t *testing.T) {
	manifest := Manifest{
		ConfigVersion: 7,
		Grammars:      map[string]string{"q": "S -> a"},
		Graphs:        []GraphMeta{{Name: "g", Seq: 9, Epoch: 3}},
	}
	var tailQuery map[string]string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/replica/snapshot":
			if r.URL.Query().Get("graph") == "" {
				json.NewEncoder(w).Encode(manifest)
				return
			}
			w.Header().Set("X-Cfpq-Seq", "9")
			w.Header().Set("X-Cfpq-Epoch", "3")
			w.Write([]byte("binary-snapshot"))
		case "/v1/replica/wal":
			tailQuery = map[string]string{}
			for k := range r.URL.Query() {
				tailQuery[k] = r.URL.Query().Get(k)
			}
			json.NewEncoder(w).Encode(TailResponse{Graph: "g", From: 9, LeaderSeq: 9})
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	c := &Client{Base: srv.URL + "/", FollowerID: "f1"} // trailing slash must not double up

	m, err := c.Manifest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*m, manifest) {
		t.Errorf("manifest = %+v, want %+v", *m, manifest)
	}

	raw, seq, epoch, err := c.GraphSnapshot(ctx, "g")
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "binary-snapshot" || seq != 9 || epoch != 3 {
		t.Errorf("snapshot = %q seq=%d epoch=%d", raw, seq, epoch)
	}

	if _, err := c.Tail(ctx, "g", 9, 3, 250*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"graph": "g", "from": "9", "epoch": "3", "wait": "250ms", "follower": "f1",
	}
	if !reflect.DeepEqual(tailQuery, want) {
		t.Errorf("tail query = %v, want %v", tailQuery, want)
	}
}
