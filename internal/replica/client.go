package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Sentinel errors a leader signals through HTTP status codes; the tailer
// branches on these with errors.Is.
var (
	// ErrSnapshotRequired (410 Gone) means the requested tail position is
	// unservable — compacted away, past the head, or from a different
	// epoch — and the follower must re-bootstrap the graph from a snapshot.
	ErrSnapshotRequired = errors.New("replica: tail unavailable, snapshot re-bootstrap required")
	// ErrUnknownGraph (404) means the leader has no such graph; the
	// follower's registry view is stale and needs a manifest re-sync.
	ErrUnknownGraph = errors.New("replica: graph unknown to leader")
)

// maxSnapshotBytes bounds a snapshot download; it mirrors the serving
// layer's 64 MiB document bound with headroom for the binary framing.
const maxSnapshotBytes = 256 << 20

// Client speaks the leader's replication protocol. The zero value is not
// usable; set Base.
type Client struct {
	// Base is the leader's root URL, e.g. "http://10.0.0.1:8080".
	Base string
	// FollowerID identifies this follower to the leader's compaction
	// retention (the leader holds WAL tails for followers it has heard
	// from recently). Optional but strongly recommended.
	FollowerID string
	// HTTP is the underlying client; http.DefaultClient when nil. Do not
	// set a global Timeout shorter than the long-poll wait.
	HTTP *http.Client
}

func (c *Client) httpc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) get(ctx context.Context, path string, q url.Values) (*http.Response, error) {
	u := strings.TrimRight(c.Base, "/") + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	return c.httpc().Do(req)
}

// statusErr drains resp and converts its status to an error; resp.Body is
// closed. 404 and 410 map to the tailer's sentinel errors.
func statusErr(resp *http.Response) error {
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	msg := strings.TrimSpace(string(body))
	switch resp.StatusCode {
	case http.StatusGone:
		return fmt.Errorf("%w (%s)", ErrSnapshotRequired, msg)
	case http.StatusNotFound:
		return fmt.Errorf("%w (%s)", ErrUnknownGraph, msg)
	default:
		return fmt.Errorf("replica: leader answered %s: %s", resp.Status, msg)
	}
}

// Manifest fetches the leader's registry description.
func (c *Client) Manifest(ctx context.Context) (*Manifest, error) {
	resp, err := c.get(ctx, "/v1/replica/snapshot", nil)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusErr(resp)
	}
	defer resp.Body.Close()
	var m Manifest
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("replica: decoding manifest: %w", err)
	}
	return &m, nil
}

// GraphSnapshot downloads one graph's binary snapshot; the returned seq and
// epoch come from the X-Cfpq-Seq / X-Cfpq-Epoch response headers and name
// the edge-stream position the snapshot captures.
func (c *Client) GraphSnapshot(ctx context.Context, name string) (raw []byte, seq, epoch uint64, err error) {
	resp, err := c.get(ctx, "/v1/replica/snapshot", url.Values{"graph": {name}})
	if err != nil {
		return nil, 0, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, 0, 0, statusErr(resp)
	}
	defer resp.Body.Close()
	if seq, err = strconv.ParseUint(resp.Header.Get("X-Cfpq-Seq"), 10, 64); err != nil {
		return nil, 0, 0, fmt.Errorf("replica: snapshot response missing X-Cfpq-Seq: %w", err)
	}
	if epoch, err = strconv.ParseUint(resp.Header.Get("X-Cfpq-Epoch"), 10, 64); err != nil {
		return nil, 0, 0, fmt.Errorf("replica: snapshot response missing X-Cfpq-Epoch: %w", err)
	}
	raw, err = io.ReadAll(io.LimitReader(resp.Body, maxSnapshotBytes+1))
	if err != nil {
		return nil, 0, 0, fmt.Errorf("replica: reading snapshot: %w", err)
	}
	if int64(len(raw)) > maxSnapshotBytes {
		return nil, 0, 0, fmt.Errorf("replica: snapshot for %q exceeds %d bytes", name, int64(maxSnapshotBytes))
	}
	return raw, seq, epoch, nil
}

// Tail long-polls the leader's WAL for one graph: batches after seq `from`
// of stream `epoch`, waiting up to `wait` for new writes before returning an
// empty page. ErrSnapshotRequired and ErrUnknownGraph are returned as such.
func (c *Client) Tail(ctx context.Context, graph string, from, epoch uint64, wait time.Duration) (*TailResponse, error) {
	q := url.Values{
		"graph": {graph},
		"from":  {strconv.FormatUint(from, 10)},
		"epoch": {strconv.FormatUint(epoch, 10)},
		"wait":  {wait.String()},
	}
	if c.FollowerID != "" {
		q.Set("follower", c.FollowerID)
	}
	resp, err := c.get(ctx, "/v1/replica/wal", q)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusErr(resp)
	}
	defer resp.Body.Close()
	var tr TailResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return nil, fmt.Errorf("replica: decoding tail response: %w", err)
	}
	return &tr, nil
}
