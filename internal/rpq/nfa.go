package rpq

// NFA is a nondeterministic finite automaton over edge labels with
// ε-transitions already eliminated: Trans holds only labelled transitions,
// and any state reaching an accepting state through ε alone is itself
// marked accepting.
type NFA struct {
	States    int
	Start     int
	Accepting []bool
	// Trans[s] lists (label, target) transitions out of s.
	Trans [][]Transition
	// AcceptsEmpty reports whether the empty word is in the language.
	AcceptsEmpty bool
}

// Transition is one labelled NFA edge.
type Transition struct {
	Label string
	To    int
}

// rawNFA is the Thompson-construction automaton with ε-transitions.
type rawNFA struct {
	trans []map[string][]int // label → targets; "" is ε
}

func (n *rawNFA) newState() int {
	n.trans = append(n.trans, map[string][]int{})
	return len(n.trans) - 1
}

func (n *rawNFA) add(from, to int, label string) {
	n.trans[from][label] = append(n.trans[from][label], to)
}

// CompileNFA builds an ε-free NFA from a regular expression using the
// Thompson construction followed by ε-closure elimination.
func CompileNFA(r Regex) *NFA {
	raw := &rawNFA{}
	start := raw.newState()
	accept := raw.newState()
	buildThompson(raw, r, start, accept)

	// ε-closures.
	closure := make([][]int, len(raw.trans))
	for s := range raw.trans {
		seen := map[int]bool{s: true}
		stack := []int{s}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range raw.trans[u][""] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		for v := range seen {
			closure[s] = append(closure[s], v)
		}
	}

	nfa := &NFA{
		States:    len(raw.trans),
		Start:     start,
		Accepting: make([]bool, len(raw.trans)),
		Trans:     make([][]Transition, len(raw.trans)),
	}
	for s := range raw.trans {
		for _, u := range closure[s] {
			if u == accept {
				nfa.Accepting[s] = true
			}
		}
	}
	nfa.AcceptsEmpty = nfa.Accepting[start]
	// Labelled transition s —x→ t exists when some u ∈ ε-closure(s) has a
	// raw x-transition to t; the target keeps its own closure via the
	// accepting marks and its own outgoing closure-expanded transitions.
	for s := range raw.trans {
		seen := map[Transition]bool{}
		for _, u := range closure[s] {
			for label, targets := range raw.trans[u] {
				if label == "" {
					continue
				}
				for _, t := range targets {
					tr := Transition{Label: label, To: t}
					if !seen[tr] {
						seen[tr] = true
						nfa.Trans[s] = append(nfa.Trans[s], tr)
					}
				}
			}
		}
	}
	return nfa
}

func buildThompson(n *rawNFA, r Regex, from, to int) {
	switch x := r.(type) {
	case Label:
		n.add(from, to, x.Name)
	case Concat:
		mid := n.newState()
		buildThompson(n, x.Left, from, mid)
		buildThompson(n, x.Right, mid, to)
	case Alt:
		buildThompson(n, x.Left, from, to)
		buildThompson(n, x.Right, from, to)
	case Star:
		mid := n.newState()
		n.add(from, mid, "")
		n.add(mid, to, "")
		buildThompson(n, x.Inner, mid, mid)
	case Plus:
		mid := n.newState()
		buildThompson(n, x.Inner, from, mid)
		n.add(mid, to, "")
		buildThompson(n, x.Inner, mid, mid)
	case Opt:
		n.add(from, to, "")
		buildThompson(n, x.Inner, from, to)
	default:
		panic("rpq: unknown regex node")
	}
}

// Accepts reports whether the NFA accepts the word (used in tests and as a
// reference semantics).
func (n *NFA) Accepts(word []string) bool {
	cur := map[int]bool{n.Start: true}
	for _, x := range word {
		next := map[int]bool{}
		for s := range cur {
			for _, tr := range n.Trans[s] {
				if tr.Label == x {
					next[tr.To] = true
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = next
	}
	for s := range cur {
		if n.Accepting[s] {
			return true
		}
	}
	return false
}
