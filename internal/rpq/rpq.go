package rpq

import (
	"fmt"
	"sort"

	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// Options refine RPQ evaluation.
type Options struct {
	// IncludeEmptyPaths adds (v, v) for every node when the expression
	// accepts the empty word (e.g. `a*`).
	IncludeEmptyPaths bool
}

// Grammar converts the expression's NFA into an equivalent right-linear
// context-free grammar: one non-terminal Qᵢ per state, productions
// Qᵢ → x Qⱼ per transition and Qᵢ → x when Qⱼ accepts. The start
// non-terminal is Q<Start>. This is the reduction that lets the matrix
// CFPQ engine answer RPQs; the evaluation itself lives in the public cfpq
// package (Engine.RPQ), so this package holds no query engine of its own.
func Grammar(r Regex) (*grammar.Grammar, string, *NFA) {
	nfa := CompileNFA(r)
	g := grammar.New()
	nt := func(s int) string { return fmt.Sprintf("Q%d", s) }
	for s := 0; s < nfa.States; s++ {
		for _, tr := range nfa.Trans[s] {
			g.Add(nt(s), grammar.T(tr.Label), grammar.NT(nt(tr.To)))
			if nfa.Accepting[tr.To] {
				g.Add(nt(s), grammar.T(tr.Label))
			}
		}
	}
	if nfa.AcceptsEmpty {
		g.AddEpsilon(nt(nfa.Start))
	}
	// A state with no productions at all would make the grammar invalid
	// for parsing corner cases; the CNF pipeline drops non-generating
	// symbols, which is exactly right.
	return g, nt(nfa.Start), nfa
}

// EvaluateBFS answers the RPQ by direct breadth-first search over the
// product of the graph and the NFA — the classical RPQ algorithm. It
// serves as an independent oracle for the CFPQ reduction and as a baseline
// for benchmarks.
func EvaluateBFS(g *graph.Graph, r Regex, opts Options) []matrix.Pair {
	nfa := CompileNFA(r)
	adj := graph.NewAdjacency(g)
	n := g.Nodes()
	set := map[matrix.Pair]bool{}

	type state struct {
		node, q int
	}
	for src := 0; src < n; src++ {
		seen := map[state]bool{}
		queue := []state{{src, nfa.Start}}
		seen[queue[0]] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			// Pairs are recorded at edge-traversal time (below), so that
			// non-empty arrivals into accepting product states count even
			// when the state was already visited; the seed (empty path) is
			// handled by the IncludeEmptyPaths branch after the loop.
			for _, e := range adj.Out(cur.node) {
				for _, tr := range nfa.Trans[cur.q] {
					if tr.Label != e.Label {
						continue
					}
					next := state{e.To, tr.To}
					if !seen[next] {
						seen[next] = true
						queue = append(queue, next)
					}
					if nfa.Accepting[tr.To] {
						set[matrix.Pair{I: src, J: e.To}] = true
					}
				}
			}
		}
		if opts.IncludeEmptyPaths && nfa.AcceptsEmpty {
			set[matrix.Pair{I: src, J: src}] = true
		}
	}
	if len(set) == 0 {
		return nil
	}
	pairs := make([]matrix.Pair, 0, len(set))
	for p := range set {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(x, y int) bool {
		if pairs[x].I != pairs[y].I {
			return pairs[x].I < pairs[y].I
		}
		return pairs[x].J < pairs[y].J
	})
	return pairs
}

// ReflexivePairs is the relation {(v, v) | v ∈ V}: the answer to an
// ε-accepting expression whose language is otherwise empty.
func ReflexivePairs(n int) []matrix.Pair {
	out := make([]matrix.Pair, n)
	for v := 0; v < n; v++ {
		out[v] = matrix.Pair{I: v, J: v}
	}
	return out
}
