// Package rpq implements regular path queries (RPQs) — the
// regular-language-constrained path querying the paper cites as the
// established, less expressive sibling of CFPQ (Abiteboul & Vianu; Fan et
// al.; Nolé & Sartiani; Reutter et al.).
//
// The package reduces an RPQ to a CFPQ: the query's regular expression is
// compiled to an NFA, the NFA to a right-linear context-free grammar, and
// the grammar is evaluated by the matrix closure engine. A direct
// product-graph BFS evaluator is provided both as an alternative evaluation
// strategy and as an independent correctness oracle.
package rpq

import (
	"fmt"
	"strings"
)

// Regex is the AST of a regular expression over edge labels.
type Regex interface {
	fmt.Stringer
	isRegex()
}

// Label matches a single edge with the given label.
type Label struct{ Name string }

// Concat matches Left then Right.
type Concat struct{ Left, Right Regex }

// Alt matches Left or Right.
type Alt struct{ Left, Right Regex }

// Star matches zero or more repetitions.
type Star struct{ Inner Regex }

// Plus matches one or more repetitions.
type Plus struct{ Inner Regex }

// Opt matches zero or one occurrence.
type Opt struct{ Inner Regex }

func (Label) isRegex()  {}
func (Concat) isRegex() {}
func (Alt) isRegex()    {}
func (Star) isRegex()   {}
func (Plus) isRegex()   {}
func (Opt) isRegex()    {}

func (l Label) String() string  { return l.Name }
func (c Concat) String() string { return fmt.Sprintf("(%s %s)", c.Left, c.Right) }
func (a Alt) String() string    { return fmt.Sprintf("(%s | %s)", a.Left, a.Right) }
func (s Star) String() string   { return fmt.Sprintf("%s*", s.Inner) }
func (p Plus) String() string   { return fmt.Sprintf("%s+", p.Inner) }
func (o Opt) String() string    { return fmt.Sprintf("%s?", o.Inner) }

// ParseRegex parses the RPQ expression syntax:
//
//	subClassOf_r* type (a | b)+ c?
//
// Labels are identifiers (anything but whitespace and the metacharacters
// `| ( ) * + ?`); juxtaposition is concatenation; postfix `*`, `+`, `?`
// bind tighter than concatenation, which binds tighter than `|`.
func ParseRegex(src string) (Regex, error) {
	p := &regexParser{src: src}
	r, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("rpq: unexpected %q at offset %d", p.src[p.pos:], p.pos)
	}
	return r, nil
}

// MustParseRegex is ParseRegex that panics on error.
func MustParseRegex(src string) Regex {
	r, err := ParseRegex(src)
	if err != nil {
		panic(err)
	}
	return r
}

type regexParser struct {
	src string
	pos int
}

func (p *regexParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *regexParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *regexParser) parseAlt() (Regex, error) {
	left, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	for p.peek() == '|' {
		p.pos++
		right, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		left = Alt{Left: left, Right: right}
	}
	return left, nil
}

func (p *regexParser) parseConcat() (Regex, error) {
	var out Regex
	for {
		c := p.peek()
		if c == 0 || c == '|' || c == ')' {
			break
		}
		atom, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = atom
		} else {
			out = Concat{Left: out, Right: atom}
		}
	}
	if out == nil {
		return nil, fmt.Errorf("rpq: empty expression at offset %d", p.pos)
	}
	return out, nil
}

func (p *regexParser) parsePostfix() (Regex, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '*':
			p.pos++
			atom = Star{Inner: atom}
		case '+':
			p.pos++
			atom = Plus{Inner: atom}
		case '?':
			p.pos++
			atom = Opt{Inner: atom}
		default:
			return atom, nil
		}
	}
}

func (p *regexParser) parseAtom() (Regex, error) {
	switch c := p.peek(); c {
	case '(':
		p.pos++
		inner, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("rpq: missing ')' at offset %d", p.pos)
		}
		p.pos++
		return inner, nil
	case 0, ')', '|', '*', '+', '?':
		return nil, fmt.Errorf("rpq: expected label or '(' at offset %d", p.pos)
	default:
		start := p.pos
		for p.pos < len(p.src) && !strings.ContainsRune(" \t|()*+?", rune(p.src[p.pos])) {
			p.pos++
		}
		return Label{Name: p.src[start:p.pos]}, nil
	}
}
