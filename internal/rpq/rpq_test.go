package rpq

import (
	"strings"
	"testing"
)

// The evaluation tests — chain/star/cycle behaviour and the headline
// CFPQ-reduction-vs-BFS cross-check — live in the root cfpq package
// (rpq_eval_test.go), because evaluation itself now goes through the public
// Engine API; this package only compiles expressions and reduces them.

func TestParseRegex(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"a", "a"},
		{"a b", "(a b)"},
		{"a | b", "(a | b)"},
		{"a b | c", "((a b) | c)"},
		{"a*", "a*"},
		{"a+ b?", "(a+ b?)"},
		{"(a | b)* c", "((a | b)* c)"},
		{"subClassOf_r* type", "(subClassOf_r* type)"},
	}
	for _, c := range cases {
		r, err := ParseRegex(c.src)
		if err != nil {
			t.Fatalf("ParseRegex(%q): %v", c.src, err)
		}
		if got := r.String(); got != c.want {
			t.Errorf("ParseRegex(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseRegexErrors(t *testing.T) {
	for _, src := range []string{"", "(", "(a", "a |", "*", "a )", "| a"} {
		if _, err := ParseRegex(src); err == nil {
			t.Errorf("ParseRegex(%q) succeeded, want error", src)
		}
	}
}

func TestNFAAccepts(t *testing.T) {
	cases := []struct {
		expr string
		yes  []string
		no   []string
	}{
		{"a", []string{"a"}, []string{"", "b", "a a"}},
		{"a*", []string{"", "a", "a a a"}, []string{"b", "a b"}},
		{"a+", []string{"a", "a a"}, []string{"", "b"}},
		{"a?", []string{"", "a"}, []string{"a a"}},
		{"a b | c", []string{"a b", "c"}, []string{"a", "b", "a c"}},
		{"(a | b)* c", []string{"c", "a c", "b a c"}, []string{"", "a", "c c a"}},
	}
	split := func(s string) []string {
		if s == "" {
			return nil
		}
		return strings.Fields(s)
	}
	for _, c := range cases {
		nfa := CompileNFA(MustParseRegex(c.expr))
		for _, w := range c.yes {
			if !nfa.Accepts(split(w)) {
				t.Errorf("%q should accept %q", c.expr, w)
			}
		}
		for _, w := range c.no {
			if nfa.Accepts(split(w)) {
				t.Errorf("%q should reject %q", c.expr, w)
			}
		}
		if nfa.AcceptsEmpty != nfa.Accepts(nil) {
			t.Errorf("%q: AcceptsEmpty inconsistent", c.expr)
		}
	}
}

func TestGrammarReductionShape(t *testing.T) {
	gram, start, nfa := Grammar(MustParseRegex("a* b"))
	if !strings.HasPrefix(start, "Q") {
		t.Errorf("start = %q", start)
	}
	if nfa.AcceptsEmpty {
		t.Error("a* b does not accept ε")
	}
	// Right-linear shape: every production is x, or x Q.
	for _, p := range gram.Productions {
		switch len(p.Rhs) {
		case 1:
			if !p.Rhs[0].Terminal {
				t.Errorf("unit non-terminal production %s", p)
			}
		case 2:
			if !p.Rhs[0].Terminal || p.Rhs[1].Terminal {
				t.Errorf("non-right-linear production %s", p)
			}
		default:
			t.Errorf("production of length %d: %s", len(p.Rhs), p)
		}
	}
}
