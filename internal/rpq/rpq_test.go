package rpq

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

func TestParseRegex(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"a", "a"},
		{"a b", "(a b)"},
		{"a | b", "(a | b)"},
		{"a b | c", "((a b) | c)"},
		{"a*", "a*"},
		{"a+ b?", "(a+ b?)"},
		{"(a | b)* c", "((a | b)* c)"},
		{"subClassOf_r* type", "(subClassOf_r* type)"},
	}
	for _, c := range cases {
		r, err := ParseRegex(c.src)
		if err != nil {
			t.Fatalf("ParseRegex(%q): %v", c.src, err)
		}
		if got := r.String(); got != c.want {
			t.Errorf("ParseRegex(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseRegexErrors(t *testing.T) {
	for _, src := range []string{"", "(", "(a", "a |", "*", "a )", "| a"} {
		if _, err := ParseRegex(src); err == nil {
			t.Errorf("ParseRegex(%q) succeeded, want error", src)
		}
	}
}

func TestNFAAccepts(t *testing.T) {
	cases := []struct {
		expr string
		yes  []string
		no   []string
	}{
		{"a", []string{"a"}, []string{"", "b", "a a"}},
		{"a*", []string{"", "a", "a a a"}, []string{"b", "a b"}},
		{"a+", []string{"a", "a a"}, []string{"", "b"}},
		{"a?", []string{"", "a"}, []string{"a a"}},
		{"a b | c", []string{"a b", "c"}, []string{"a", "b", "a c"}},
		{"(a | b)* c", []string{"c", "a c", "b a c"}, []string{"", "a", "c c a"}},
	}
	split := func(s string) []string {
		if s == "" {
			return nil
		}
		return strings.Fields(s)
	}
	for _, c := range cases {
		nfa := CompileNFA(MustParseRegex(c.expr))
		for _, w := range c.yes {
			if !nfa.Accepts(split(w)) {
				t.Errorf("%q should accept %q", c.expr, w)
			}
		}
		for _, w := range c.no {
			if nfa.Accepts(split(w)) {
				t.Errorf("%q should reject %q", c.expr, w)
			}
		}
		if nfa.AcceptsEmpty != nfa.Accepts(nil) {
			t.Errorf("%q: AcceptsEmpty inconsistent", c.expr)
		}
	}
}

func TestEvaluateChain(t *testing.T) {
	g := graph.Chain(5, "a") // 0→1→2→3→4
	pairs, err := EvaluateString(g, "a a", Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []matrix.Pair{{I: 0, J: 2}, {I: 1, J: 3}, {I: 2, J: 4}}
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("pairs = %v, want %v", pairs, want)
	}
}

func TestEvaluateStar(t *testing.T) {
	g := graph.Chain(4, "a")
	pairs, err := EvaluateString(g, "a*", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Without empty paths: all i<j pairs.
	want := []matrix.Pair{
		{I: 0, J: 1}, {I: 0, J: 2}, {I: 0, J: 3},
		{I: 1, J: 2}, {I: 1, J: 3},
		{I: 2, J: 3},
	}
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("pairs = %v, want %v", pairs, want)
	}
	withEmpty, err := EvaluateString(g, "a*", Options{IncludeEmptyPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(withEmpty) != len(want)+4 {
		t.Errorf("with empty paths: %v", withEmpty)
	}
}

func TestEvaluateEmptyLanguageAndEpsilonOnly(t *testing.T) {
	g := graph.Chain(3, "a")
	// `b` never matches on an a-chain.
	pairs, err := EvaluateString(g, "b", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pairs != nil {
		t.Errorf("pairs = %v, want nil", pairs)
	}
	// `b?` matches only ε here.
	pairs, err = EvaluateString(g, "b?", Options{IncludeEmptyPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []matrix.Pair{{I: 0, J: 0}, {I: 1, J: 1}, {I: 2, J: 2}}
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("pairs = %v, want %v", pairs, want)
	}
}

func TestEvaluateOnCycle(t *testing.T) {
	g := graph.Cycle(3, "a")
	pairs, err := EvaluateString(g, "a a a", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Three a-steps on a 3-cycle return to the start: exactly (v, v).
	want := []matrix.Pair{{I: 0, J: 0}, {I: 1, J: 1}, {I: 2, J: 2}}
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("pairs = %v, want %v", pairs, want)
	}
}

// TestCFPQReductionAgainstBFS is the headline property: the CFPQ reduction
// and the product-graph BFS must agree on random graphs and a spread of
// expressions, with and without empty paths, on every backend.
func TestCFPQReductionAgainstBFS(t *testing.T) {
	exprs := []string{
		"a", "a b", "a | b", "a*", "a+", "a? b",
		"(a | b)* c", "a (b a)* b", "(a a)+",
		"subClassOf_r* subClassOf", "(a | b | c)+",
	}
	rng := rand.New(rand.NewSource(81))
	labels := []string{"a", "b", "c", "subClassOf", "subClassOf_r"}
	for trial := 0; trial < 6; trial++ {
		n := 2 + rng.Intn(10)
		g := graph.Random(rng, n, 3*n, labels)
		for _, expr := range exprs {
			r := MustParseRegex(expr)
			for _, includeEmpty := range []bool{false, true} {
				opts := Options{IncludeEmptyPaths: includeEmpty}
				want := EvaluateBFS(g, r, opts)
				for _, be := range matrix.Backends() {
					opts.Backend = be
					got, err := Evaluate(g, r, opts)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("trial %d expr %q empty=%v backend %s:\ncfpq %v\nbfs  %v",
							trial, expr, includeEmpty, be.Name(), got, want)
					}
				}
			}
		}
	}
}

func TestGrammarReductionShape(t *testing.T) {
	gram, start, nfa := Grammar(MustParseRegex("a* b"))
	if !strings.HasPrefix(start, "Q") {
		t.Errorf("start = %q", start)
	}
	if nfa.AcceptsEmpty {
		t.Error("a* b does not accept ε")
	}
	// Right-linear shape: every production is x, or x Q.
	for _, p := range gram.Productions {
		switch len(p.Rhs) {
		case 1:
			if !p.Rhs[0].Terminal {
				t.Errorf("unit non-terminal production %s", p)
			}
		case 2:
			if !p.Rhs[0].Terminal || p.Rhs[1].Terminal {
				t.Errorf("non-right-linear production %s", p)
			}
		default:
			t.Errorf("production of length %d: %s", len(p.Rhs), p)
		}
	}
}
