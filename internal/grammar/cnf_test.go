package grammar

import (
	"math/rand"
	"strings"
	"testing"
)

// enumerate derives all words of length ≤ maxLen from start by brute-force
// expansion of sentential forms. Exponential; only for tiny grammars.
func enumerate(g *Grammar, start string, maxLen int) map[string]bool {
	byLhs := map[string][]Production{}
	for _, p := range g.Productions {
		byLhs[p.Lhs] = append(byLhs[p.Lhs], p)
	}
	type form []Symbol
	out := map[string]bool{}
	seen := map[string]bool{}
	var queue []form
	queue = append(queue, form{NT(start)})
	key := func(f form) string {
		var b strings.Builder
		for _, s := range f {
			if s.Terminal {
				b.WriteString("t:")
			} else {
				b.WriteString("n:")
			}
			b.WriteString(s.Name)
			b.WriteByte('|')
		}
		return b.String()
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		// Count terminals; prune forms that are already too long.
		termCount, firstNT := 0, -1
		for i, s := range f {
			if s.Terminal {
				termCount++
			} else if firstNT < 0 {
				firstNT = i
			}
		}
		if termCount > maxLen {
			continue
		}
		if firstNT < 0 {
			var b strings.Builder
			for i, s := range f {
				if i > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(s.Name)
			}
			out[b.String()] = true
			continue
		}
		if len(f) > maxLen+6 { // bound sentential form growth
			continue
		}
		for _, p := range byLhs[f[firstNT].Name] {
			nf := make(form, 0, len(f)+len(p.Rhs)-1)
			nf = append(nf, f[:firstNT]...)
			nf = append(nf, p.Rhs...)
			nf = append(nf, f[firstNT+1:]...)
			k := key(nf)
			if !seen[k] {
				seen[k] = true
				queue = append(queue, nf)
			}
		}
	}
	return out
}

func TestToCNFPaperGrammar(t *testing.T) {
	// Paper Figure 3 grammar; its CNF (Figure 4) has 7 non-terminals.
	g := MustParse(`
		S -> subClassOf_r S subClassOf
		S -> type_r S type
		S -> subClassOf_r subClassOf
		S -> type_r type
	`)
	c, err := ToCNF(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper's manual CNF has |N| = 7 (S, S1..S6). Our mechanical
	// conversion may differ slightly in auxiliary count but must keep S and
	// have binary+terminal rules only (enforced by the CNF type).
	if _, ok := c.Index("S"); !ok {
		t.Fatal("S missing from CNF")
	}
	if len(c.Binary) == 0 {
		t.Fatal("no binary rules")
	}
	// Language check on short words.
	for _, tc := range []struct {
		word []string
		want bool
	}{
		{[]string{"subClassOf_r", "subClassOf"}, true},
		{[]string{"type_r", "type"}, true},
		{[]string{"subClassOf_r", "type_r", "type", "subClassOf"}, true},
		{[]string{"type_r", "subClassOf_r", "subClassOf", "type"}, true},
		{[]string{"subClassOf_r", "type"}, false},
		{[]string{"subClassOf"}, false},
		{[]string{}, false},
	} {
		if got := c.Derives("S", tc.word); got != tc.want {
			t.Errorf("Derives(S, %v) = %v, want %v", tc.word, got, tc.want)
		}
	}
}

func TestToCNFEpsilonElimination(t *testing.T) {
	g := MustParse(`
		S -> A B
		A -> a | eps
		B -> b
	`)
	c := MustCNF(g)
	if !c.Nullable["A"] {
		t.Error("A should be recorded nullable")
	}
	if c.Nullable["S"] || c.Nullable["B"] {
		t.Error("S, B should not be nullable")
	}
	// S derives "ab" and also "b" (A → ε).
	if !c.Derives("S", []string{"a", "b"}) {
		t.Error(`S should derive "a b"`)
	}
	if !c.Derives("S", []string{"b"}) {
		t.Error(`S should derive "b" via nullable A`)
	}
	if c.Derives("S", []string{"a"}) {
		t.Error(`S should not derive "a"`)
	}
}

func TestToCNFUnitElimination(t *testing.T) {
	g := MustParse(`
		S -> A
		A -> B
		B -> b | c C c
		C -> x
	`)
	c := MustCNF(g)
	for _, w := range [][]string{{"b"}, {"c", "x", "c"}} {
		if !c.Derives("S", w) {
			t.Errorf("S should derive %v through unit chain", w)
		}
	}
}

func TestToCNFLongRuleBinarization(t *testing.T) {
	g := MustParse(`S -> a b c d e`)
	c := MustCNF(g)
	if !c.Derives("S", []string{"a", "b", "c", "d", "e"}) {
		t.Error("S should derive the 5-terminal word")
	}
	if c.Derives("S", []string{"a", "b", "c", "d"}) {
		t.Error("S should not derive a prefix")
	}
	for _, r := range c.Binary {
		_ = r // form is enforced by the type; Validate double-checks ranges
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestToCNFNonGeneratingDropped(t *testing.T) {
	g := MustParse(`
		S -> a | X b
		X -> X x
	`)
	c := MustCNF(g)
	if _, ok := c.Index("X"); ok {
		t.Error("non-generating X should be dropped")
	}
	if !c.Derives("S", []string{"a"}) {
		t.Error("S -> a must survive")
	}
}

func TestToCNFPreservesAllQueryableNonterminals(t *testing.T) {
	// Unreachable-from-anything non-terminals must be kept: every
	// non-terminal is queryable in CFPQ.
	g := MustParse(`
		S -> a
		Z -> z z
	`)
	c := MustCNF(g)
	if _, ok := c.Index("Z"); !ok {
		t.Fatal("Z must be kept (no start symbol, all non-terminals queryable)")
	}
	if !c.Derives("Z", []string{"z", "z"}) {
		t.Error("Z should derive zz")
	}
}

func TestCNFStringRoundTrip(t *testing.T) {
	c := MustParseCNF(`
		S -> a S b | a b
	`)
	c2, err := ParseCNF(c.String())
	if err != nil {
		t.Fatalf("re-parsing CNF output: %v", err)
	}
	for n := 0; n <= 4; n++ {
		words := allWords([]string{"a", "b"}, n)
		for _, w := range words {
			if c.Derives("S", w) != c2.Derives("S", w) {
				t.Errorf("round-trip disagreement on %v", w)
			}
		}
	}
}

func allWords(alphabet []string, n int) [][]string {
	if n == 0 {
		return [][]string{{}}
	}
	var out [][]string
	for _, w := range allWords(alphabet, n-1) {
		for _, a := range alphabet {
			nw := append(append([]string{}, w...), a)
			out = append(out, nw)
		}
	}
	return out
}

// TestCNFLanguagePreservationEnumerated compares the enumerated language of
// hand-written grammars against the CNF language on all short words.
func TestCNFLanguagePreservationEnumerated(t *testing.T) {
	cases := []string{
		"S -> a S b | eps",
		"S -> a S | S b | c",
		"S -> A A\nA -> a | b A",
		"S -> A B\nA -> a | eps\nB -> b | eps",
		"S -> S S | a",
		"S -> A\nA -> B\nB -> a B | eps",
	}
	for _, src := range cases {
		g := MustParse(src)
		c := MustCNF(g)
		lang := enumerate(g, "S", 5)
		alphabet := g.Terminals()
		for n := 0; n <= 5; n++ {
			for _, w := range allWords(alphabet, n) {
				key := strings.Join(w, " ")
				want := lang[key]
				var got bool
				if n == 0 {
					got = c.Nullable["S"]
				} else if _, ok := c.Index("S"); ok {
					got = c.Derives("S", w)
				}
				if got != want {
					t.Errorf("grammar %q: word %q: CNF says %v, enumeration says %v",
						src, key, got, want)
				}
			}
		}
	}
}

// TestCNFAgainstEarleyRandom cross-validates the CNF pipeline + CYK against
// the independent Earley recogniser on random grammars and random words.
func TestCNFAgainstEarleyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := DefaultRandomConfig()
	for trial := 0; trial < 60; trial++ {
		g := RandomGrammar(rng, cfg)
		c, err := ToCNF(g)
		if err != nil {
			t.Fatalf("trial %d: ToCNF: %v", trial, err)
		}
		earley := NewEarley(g)
		start := "N0"
		for wlen := 0; wlen <= 4; wlen++ {
			for rep := 0; rep < 6; rep++ {
				w := RandomWord(rng, g, wlen)
				if w == nil {
					continue
				}
				want := earley.Recognize(start, w)
				var got bool
				if wlen == 0 {
					got = c.Nullable[start]
				} else if _, ok := c.Index(start); ok {
					got = c.Derives(start, w)
				}
				if got != want {
					t.Fatalf("trial %d: grammar\n%sword %v: CNF=%v Earley=%v",
						trial, g, w, got, want)
				}
			}
		}
	}
}

func TestEarleyBasic(t *testing.T) {
	g := MustParse(`
		S -> a S b | eps
	`)
	e := NewEarley(g)
	cases := []struct {
		w    []string
		want bool
	}{
		{[]string{}, true},
		{[]string{"a", "b"}, true},
		{[]string{"a", "a", "b", "b"}, true},
		{[]string{"a", "b", "b"}, false},
		{[]string{"b", "a"}, false},
	}
	for _, c := range cases {
		if got := e.Recognize("S", c.w); got != c.want {
			t.Errorf("Earley(%v) = %v, want %v", c.w, got, c.want)
		}
	}
	if e.Recognize("Missing", []string{"a"}) {
		t.Error("unknown non-terminal should not recognise anything")
	}
}

func TestDerivesGrammarNullableOnlyStart(t *testing.T) {
	g := MustParse("S -> eps")
	got, err := DerivesGrammar(g, "S", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("S derives ε")
	}
	got, err = DerivesGrammar(g, "S", []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("S derives only ε")
	}
}

func TestMustIndexPanics(t *testing.T) {
	c := MustParseCNF("S -> a")
	defer func() {
		if recover() == nil {
			t.Error("MustIndex on unknown non-terminal should panic")
		}
	}()
	c.MustIndex("Nope")
}

func TestCNFGrammarConversion(t *testing.T) {
	c := MustParseCNF("S -> a S b | a b")
	g := c.Grammar()
	c2 := MustCNF(g)
	for n := 1; n <= 4; n++ {
		for _, w := range allWords([]string{"a", "b"}, n) {
			if c.Derives("S", w) != c2.Derives("S", w) {
				t.Errorf("Grammar() round trip disagreement on %v", w)
			}
		}
	}
}
