package grammar

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseBasic(t *testing.T) {
	g, err := ParseString(`
		# same-generation query, paper Figure 3
		S -> subClassOf_r S subClassOf
		S -> type_r S type
		S -> subClassOf_r subClassOf
		S -> type_r type
	`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Productions); got != 4 {
		t.Fatalf("got %d productions, want 4", got)
	}
	p := g.Productions[0]
	if p.Lhs != "S" {
		t.Errorf("lhs = %q, want S", p.Lhs)
	}
	want := []Symbol{T("subClassOf_r"), NT("S"), T("subClassOf")}
	if !reflect.DeepEqual(p.Rhs, want) {
		t.Errorf("rhs = %v, want %v", p.Rhs, want)
	}
}

func TestParseAlternatives(t *testing.T) {
	g := MustParse(`S -> a S b | a b | eps`)
	if got := len(g.Productions); got != 3 {
		t.Fatalf("got %d productions, want 3", got)
	}
	if len(g.Productions[2].Rhs) != 0 {
		t.Errorf("third alternative should be ε, got %v", g.Productions[2].Rhs)
	}
}

func TestParseQuotedTerminal(t *testing.T) {
	g := MustParse(`S -> "Type" S | b`)
	p := g.Productions[0]
	if !p.Rhs[0].Terminal || p.Rhs[0].Name != "Type" {
		t.Errorf("quoted symbol should be terminal %q, got %v", "Type", p.Rhs[0])
	}
}

func TestParseArrowVariants(t *testing.T) {
	g := MustParse("S ::= a b")
	if len(g.Productions) != 1 || len(g.Productions[0].Rhs) != 2 {
		t.Fatalf("unexpected parse: %v", g.Productions)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"no arrow here",
		"-> a b",
		"s -> a", // lower-case lhs
		`S -> "unterminated`,
		"",
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", src)
		}
	}
}

func TestSymbolString(t *testing.T) {
	cases := []struct {
		sym  Symbol
		want string
	}{
		{T("a"), "a"},
		{T("subClassOf_r"), "subClassOf_r"},
		{T("Type"), `"Type"`}, // upper-case terminal must be quoted
		{T("a b"), `"a b"`},
		{NT("S"), "S"},
	}
	for _, c := range cases {
		if got := c.sym.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.sym, got, c.want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	src := `S -> a S b
S -> a b
B -> "Quoted!" S
B -> eps
`
	g := MustParse(src)
	g2 := MustParse(g.String())
	if !reflect.DeepEqual(g.Productions, g2.Productions) {
		t.Errorf("round trip mismatch:\n%v\nvs\n%v", g.Productions, g2.Productions)
	}
}

func TestNonterminalsTerminals(t *testing.T) {
	g := MustParse(`
		S -> A b
		A -> c
	`)
	if got, want := g.Nonterminals(), []string{"A", "S"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Nonterminals = %v, want %v", got, want)
	}
	if got, want := g.Terminals(), []string{"b", "c"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Terminals = %v, want %v", got, want)
	}
}

func TestNullable(t *testing.T) {
	g := MustParse(`
		S -> A B
		A -> eps
		B -> b | eps
		C -> c
	`)
	nullable := g.Nullable()
	for _, nt := range []string{"S", "A", "B"} {
		if !nullable[nt] {
			t.Errorf("%s should be nullable", nt)
		}
	}
	if nullable["C"] {
		t.Errorf("C should not be nullable")
	}
}

func TestGenerating(t *testing.T) {
	g := MustParse(`
		S -> A b
		A -> a
		D -> D d
	`)
	gen := g.Generating()
	if !gen["S"] || !gen["A"] {
		t.Errorf("S and A should be generating: %v", gen)
	}
	if gen["D"] {
		t.Errorf("D should not be generating (only derives itself)")
	}
}

func TestReachableFrom(t *testing.T) {
	g := MustParse(`
		S -> A b
		A -> a
		X -> x
	`)
	reach := g.ReachableFrom("S")
	if !reach["S"] || !reach["A"] {
		t.Errorf("S, A should be reachable: %v", reach)
	}
	if reach["X"] {
		t.Errorf("X should be unreachable from S")
	}
}

func TestValidate(t *testing.T) {
	if err := New().Validate(); err == nil {
		t.Error("empty grammar should not validate")
	}
	g := New().Add("S", T("a"))
	if err := g.Validate(); err != nil {
		t.Errorf("valid grammar rejected: %v", err)
	}
	bad := &Grammar{Productions: []Production{{Lhs: "S", Rhs: []Symbol{{Name: ""}}}}}
	if err := bad.Validate(); err == nil {
		t.Error("empty symbol name should not validate")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := MustParse("S -> a S | b")
	c := g.Clone()
	c.Productions[0].Rhs[0] = T("MUTATED")
	if g.Productions[0].Rhs[0].Name == "MUTATED" {
		t.Error("Clone shares Rhs slices with the original")
	}
}

func TestProductionString(t *testing.T) {
	p := Production{Lhs: "S", Rhs: []Symbol{T("a"), NT("S")}}
	if got := p.String(); got != "S -> a S" {
		t.Errorf("String() = %q", got)
	}
	eps := Production{Lhs: "S"}
	if got := eps.String(); got != "S -> eps" {
		t.Errorf("eps String() = %q", got)
	}
}

func TestParseCommentsAndBlank(t *testing.T) {
	g := MustParse(`
# hash comment
// slash comment

S -> a
`)
	if len(g.Productions) != 1 {
		t.Fatalf("got %d productions, want 1", len(g.Productions))
	}
}

func TestProductionsFor(t *testing.T) {
	g := MustParse(`
		S -> a | b
		B -> c
	`)
	if got := len(g.ProductionsFor("S")); got != 2 {
		t.Errorf("ProductionsFor(S) = %d rules, want 2", got)
	}
	if got := len(g.ProductionsFor("Z")); got != 0 {
		t.Errorf("ProductionsFor(Z) = %d rules, want 0", got)
	}
}

func TestHasNonterminal(t *testing.T) {
	g := MustParse("S -> A b\nA -> a")
	for _, nt := range []string{"S", "A"} {
		if !g.HasNonterminal(nt) {
			t.Errorf("HasNonterminal(%s) = false", nt)
		}
	}
	if g.HasNonterminal("b") || g.HasNonterminal("Z") {
		t.Error("unexpected non-terminal reported")
	}
}

func TestParseLargeLine(t *testing.T) {
	var b strings.Builder
	b.WriteString("S ->")
	for i := 0; i < 5000; i++ {
		b.WriteString(" a")
	}
	g, err := ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Productions[0].Rhs); got != 5000 {
		t.Errorf("body length = %d, want 5000", got)
	}
}
