package grammar

import (
	"fmt"
	"math/rand"
)

// RandomConfig controls RandomGrammar.
type RandomConfig struct {
	Nonterminals int     // number of non-terminals (≥ 1)
	Terminals    int     // alphabet size (≥ 1)
	Productions  int     // number of productions to generate (≥ 1)
	MaxBody      int     // maximum body length (≥ 1); bodies of length 0 appear iff EpsilonProb > 0
	EpsilonProb  float64 // probability that a production is an ε-production
}

// DefaultRandomConfig returns a configuration producing small but
// non-trivial grammars, suitable for property-based testing.
func DefaultRandomConfig() RandomConfig {
	return RandomConfig{
		Nonterminals: 4,
		Terminals:    3,
		Productions:  10,
		MaxBody:      3,
		EpsilonProb:  0.1,
	}
}

// RandomGrammar generates a random context-free grammar. Non-terminals are
// named N0..N{k-1} and terminals a0..a{m-1}. The same rng state yields the
// same grammar, so tests are reproducible from a seed.
func RandomGrammar(rng *rand.Rand, cfg RandomConfig) *Grammar {
	if cfg.Nonterminals < 1 || cfg.Terminals < 1 || cfg.Productions < 1 || cfg.MaxBody < 1 {
		panic("grammar: invalid RandomConfig")
	}
	g := New()
	nt := func(i int) string { return fmt.Sprintf("N%d", i) }
	term := func(i int) string { return fmt.Sprintf("a%d", i) }
	for p := 0; p < cfg.Productions; p++ {
		lhs := nt(rng.Intn(cfg.Nonterminals))
		if rng.Float64() < cfg.EpsilonProb {
			g.AddEpsilon(lhs)
			continue
		}
		bodyLen := 1 + rng.Intn(cfg.MaxBody)
		rhs := make([]Symbol, bodyLen)
		for i := range rhs {
			if rng.Intn(2) == 0 {
				rhs[i] = T(term(rng.Intn(cfg.Terminals)))
			} else {
				rhs[i] = NT(nt(rng.Intn(cfg.Nonterminals)))
			}
		}
		g.Productions = append(g.Productions, Production{Lhs: lhs, Rhs: rhs})
	}
	return g
}

// RandomWord draws a word of the given length over the grammar's terminal
// alphabet (uniformly per position). Returns nil if the grammar has no
// terminals.
func RandomWord(rng *rand.Rand, g *Grammar, length int) []string {
	terms := g.Terminals()
	if len(terms) == 0 {
		return nil
	}
	w := make([]string, length)
	for i := range w {
		w[i] = terms[rng.Intn(len(terms))]
	}
	return w
}
