package grammar

import (
	"fmt"
	"sort"
	"strings"
)

// CNF is a grammar compiled to Chomsky Normal Form with integer-indexed
// non-terminals, the representation consumed by the matrix CFPQ engine.
//
// Productions have exactly two forms:
//
//	A → B C  — stored in Binary
//	A → x    — stored in TermRules
//
// ε-productions are removed during normalisation; Nullable records which
// original non-terminals could derive ε so that engines can account for
// empty paths (node v to itself) when asked to.
type CNF struct {
	// Names maps non-terminal index → name. Original non-terminals keep
	// their names; auxiliary non-terminals introduced by normalisation get
	// fresh names containing '#' or a "T_" prefix.
	Names []string

	index map[string]int

	// TermRules maps a terminal to the (sorted) non-terminal indices A with
	// A → x.
	TermRules map[string][]int

	// Binary lists all A → B C productions.
	Binary []BinaryRule

	// Nullable holds the original non-terminals that derive ε. They have no
	// ε-production in the CNF (CNF forbids them) but a query engine may add
	// the reflexive pairs (v, v) for them.
	Nullable map[string]bool
}

// BinaryRule is a production A → B C over non-terminal indices.
type BinaryRule struct {
	A, B, C int
}

// NonterminalCount returns |N| of the CNF grammar.
func (c *CNF) NonterminalCount() int { return len(c.Names) }

// Index returns the index of the named non-terminal and whether it exists.
func (c *CNF) Index(name string) (int, bool) {
	i, ok := c.index[name]
	return i, ok
}

// MustIndex is Index that panics when the non-terminal is unknown.
func (c *CNF) MustIndex(name string) int {
	i, ok := c.index[name]
	if !ok {
		panic(fmt.Sprintf("grammar: unknown non-terminal %q", name))
	}
	return i
}

// Terminals returns the sorted terminal alphabet of the CNF grammar.
func (c *CNF) Terminals() []string {
	out := make([]string, 0, len(c.TermRules))
	for t := range c.TermRules {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// String renders the CNF grammar in the grammar text format.
func (c *CNF) String() string {
	var b strings.Builder
	for _, r := range c.Binary {
		fmt.Fprintf(&b, "%s -> %s %s\n", c.Names[r.A], c.Names[r.B], c.Names[r.C])
	}
	terms := c.Terminals()
	for _, t := range terms {
		for _, a := range c.TermRules[t] {
			fmt.Fprintf(&b, "%s -> %s\n", c.Names[a], T(t))
		}
	}
	return b.String()
}

// Grammar converts the CNF back to a plain Grammar (without ε-productions).
func (c *CNF) Grammar() *Grammar {
	g := New()
	for _, r := range c.Binary {
		g.Add(c.Names[r.A], NT(c.Names[r.B]), NT(c.Names[r.C]))
	}
	for _, t := range c.Terminals() {
		for _, a := range c.TermRules[t] {
			g.Add(c.Names[a], T(t))
		}
	}
	return g
}

// Validate checks the CNF invariants.
func (c *CNF) Validate() error {
	n := len(c.Names)
	seen := map[string]int{}
	for i, name := range c.Names {
		if name == "" {
			return fmt.Errorf("cnf: empty name at index %d", i)
		}
		if j, dup := seen[name]; dup {
			return fmt.Errorf("cnf: duplicate non-terminal name %q at indices %d and %d", name, j, i)
		}
		seen[name] = i
		if c.index[name] != i {
			return fmt.Errorf("cnf: index map inconsistent for %q", name)
		}
	}
	for _, r := range c.Binary {
		if r.A < 0 || r.A >= n || r.B < 0 || r.B >= n || r.C < 0 || r.C >= n {
			return fmt.Errorf("cnf: binary rule %v out of range (|N|=%d)", r, n)
		}
	}
	for t, as := range c.TermRules {
		if t == "" {
			return fmt.Errorf("cnf: empty terminal")
		}
		for _, a := range as {
			if a < 0 || a >= n {
				return fmt.Errorf("cnf: terminal rule for %q out of range: %d", t, a)
			}
		}
	}
	return nil
}

// ToCNF transforms an arbitrary context-free grammar into Chomsky Normal
// Form. The transformation pipeline is the textbook one, adapted to
// start-symbol-free grammars:
//
//  1. binarise long rules (A → X₁ X₂ … Xₖ, k > 2),
//  2. lift terminals occurring in rules of length ≥ 2 into fresh
//     non-terminals (T_x → x),
//  3. eliminate ε-productions (recording nullability of the originals),
//  4. eliminate unit rules (A → B),
//  5. drop non-generating non-terminals and rules mentioning them.
//
// Unreachable symbols are NOT removed: without a start symbol every
// non-terminal is queryable. Language preservation: for every original
// non-terminal A, L(CNF_A) = L(G_A) \ {ε}, and Nullable[A] records whether
// ε ∈ L(G_A).
func ToCNF(g *Grammar) (*CNF, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	work := g.Clone()
	used := map[string]bool{}
	for _, nt := range work.Nonterminals() {
		used[nt] = true
	}
	fresh := freshNamer(used)

	binarize(work, fresh)
	liftTerminals(work, fresh)
	nullable := work.Nullable()
	eliminateEpsilon(work, nullable)
	eliminateUnits(work)
	dropNonGenerating(work)
	dedupe(work)

	return compileCNF(work, nullable)
}

// MustCNF is ToCNF that panics on error.
func MustCNF(g *Grammar) *CNF {
	c, err := ToCNF(g)
	if err != nil {
		panic(err)
	}
	return c
}

// ParseCNF parses grammar text and converts it to CNF in one step.
func ParseCNF(text string) (*CNF, error) {
	g, err := ParseString(text)
	if err != nil {
		return nil, err
	}
	return ToCNF(g)
}

// MustParseCNF is ParseCNF that panics on error.
func MustParseCNF(text string) *CNF {
	c, err := ParseCNF(text)
	if err != nil {
		panic(err)
	}
	return c
}

func freshNamer(used map[string]bool) func(base string) string {
	return func(base string) string {
		for i := 1; ; i++ {
			name := fmt.Sprintf("%s#%d", base, i)
			if !used[name] {
				used[name] = true
				return name
			}
		}
	}
}

// binarize replaces A → X₁ X₂ … Xₖ (k > 2) with a right-nested chain of
// binary rules through fresh non-terminals.
func binarize(g *Grammar, fresh func(string) string) {
	var out []Production
	for _, p := range g.Productions {
		for len(p.Rhs) > 2 {
			rest := fresh(p.Lhs)
			out = append(out, Production{Lhs: p.Lhs, Rhs: []Symbol{p.Rhs[0], NT(rest)}})
			p = Production{Lhs: rest, Rhs: p.Rhs[1:]}
		}
		out = append(out, p)
	}
	g.Productions = out
}

// liftTerminals replaces terminals in bodies of length ≥ 2 with fresh
// non-terminals T_x having the single production T_x → x. A single lift
// non-terminal is shared per terminal.
func liftTerminals(g *Grammar, fresh func(string) string) {
	lift := map[string]string{}
	var extra []Production
	for i, p := range g.Productions {
		if len(p.Rhs) < 2 {
			continue
		}
		for j, s := range p.Rhs {
			if !s.Terminal {
				continue
			}
			nt, ok := lift[s.Name]
			if !ok {
				nt = fresh("T_" + sanitizeName(s.Name))
				lift[s.Name] = nt
				extra = append(extra, Production{Lhs: nt, Rhs: []Symbol{T(s.Name)}})
			}
			g.Productions[i].Rhs[j] = NT(nt)
		}
	}
	g.Productions = append(g.Productions, extra...)
}

func sanitizeName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "t"
	}
	return b.String()
}

// eliminateEpsilon removes ε-productions. Bodies here have length ≤ 2, so
// for A → B C with nullable B we add A → C, and symmetrically. Unit bodies
// whose symbol is nullable produce no new rule (the ε-instance is dropped).
func eliminateEpsilon(g *Grammar, nullable map[string]bool) {
	var out []Production
	seen := map[string]bool{}
	add := func(p Production) {
		key := p.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, p)
		}
	}
	for _, p := range g.Productions {
		switch len(p.Rhs) {
		case 0:
			// dropped
		case 1:
			add(p)
		case 2:
			add(p)
			b, c := p.Rhs[0], p.Rhs[1]
			if !b.Terminal && nullable[b.Name] {
				add(Production{Lhs: p.Lhs, Rhs: []Symbol{c}})
			}
			if !c.Terminal && nullable[c.Name] {
				add(Production{Lhs: p.Lhs, Rhs: []Symbol{b}})
			}
		default:
			panic("grammar: eliminateEpsilon called before binarize")
		}
	}
	g.Productions = out
}

// eliminateUnits removes unit rules A → B by computing the unit-closure and
// copying every non-unit body of B to A.
func eliminateUnits(g *Grammar) {
	// unitPairs[a] = set of b such that a ⇒* b via unit rules (including a).
	nts := g.Nonterminals()
	unit := map[string]map[string]bool{}
	for _, a := range nts {
		unit[a] = map[string]bool{a: true}
	}
	for changed := true; changed; {
		changed = false
		for _, p := range g.Productions {
			if len(p.Rhs) != 1 || p.Rhs[0].Terminal {
				continue
			}
			b := p.Rhs[0].Name
			for c := range unit[b] {
				if !unit[p.Lhs][c] {
					unit[p.Lhs][c] = true
					changed = true
				}
			}
		}
	}
	byLhs := map[string][]Production{}
	for _, p := range g.Productions {
		if len(p.Rhs) == 1 && !p.Rhs[0].Terminal {
			continue // unit rule, dropped
		}
		byLhs[p.Lhs] = append(byLhs[p.Lhs], p)
	}
	var out []Production
	seen := map[string]bool{}
	for _, a := range nts {
		reach := make([]string, 0, len(unit[a]))
		for b := range unit[a] {
			reach = append(reach, b)
		}
		sort.Strings(reach)
		for _, b := range reach {
			for _, p := range byLhs[b] {
				np := Production{Lhs: a, Rhs: p.Rhs}
				key := np.String()
				if !seen[key] {
					seen[key] = true
					out = append(out, np)
				}
			}
		}
	}
	g.Productions = out
}

// dropNonGenerating removes rules that mention non-terminals which cannot
// derive any terminal string.
func dropNonGenerating(g *Grammar) {
	gen := g.Generating()
	var out []Production
	for _, p := range g.Productions {
		ok := gen[p.Lhs]
		for _, s := range p.Rhs {
			if !s.Terminal && !gen[s.Name] {
				ok = false
			}
		}
		if ok {
			out = append(out, p)
		}
	}
	g.Productions = out
}

func dedupe(g *Grammar) {
	seen := map[string]bool{}
	var out []Production
	for _, p := range g.Productions {
		key := p.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, p)
		}
	}
	g.Productions = out
}

func compileCNF(g *Grammar, nullable map[string]bool) (*CNF, error) {
	c := &CNF{
		index:     map[string]int{},
		TermRules: map[string][]int{},
		Nullable:  map[string]bool{},
	}
	for nt := range nullable {
		if nullable[nt] {
			c.Nullable[nt] = true
		}
	}
	intern := func(name string) int {
		if i, ok := c.index[name]; ok {
			return i
		}
		i := len(c.Names)
		c.Names = append(c.Names, name)
		c.index[name] = i
		return i
	}
	// Intern left-hand sides in first-appearance order for stable output.
	for _, p := range g.Productions {
		intern(p.Lhs)
	}
	for _, p := range g.Productions {
		switch len(p.Rhs) {
		case 1:
			s := p.Rhs[0]
			if !s.Terminal {
				return nil, fmt.Errorf("cnf: internal error: unit rule %s survived", p)
			}
			c.TermRules[s.Name] = append(c.TermRules[s.Name], intern(p.Lhs))
		case 2:
			b, cs := p.Rhs[0], p.Rhs[1]
			if b.Terminal || cs.Terminal {
				return nil, fmt.Errorf("cnf: internal error: terminal in binary rule %s", p)
			}
			c.Binary = append(c.Binary, BinaryRule{
				A: intern(p.Lhs), B: intern(b.Name), C: intern(cs.Name),
			})
		default:
			return nil, fmt.Errorf("cnf: internal error: rule of length %d survived: %s", len(p.Rhs), p)
		}
	}
	for t := range c.TermRules {
		as := c.TermRules[t]
		sort.Ints(as)
		as = uniqInts(as)
		c.TermRules[t] = as
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func uniqInts(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
