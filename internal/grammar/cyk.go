package grammar

// Derives reports whether the word (a sequence of terminal labels) can be
// derived from the named non-terminal of the CNF grammar. It is the classic
// CYK recogniser and serves as the correctness oracle for path witnesses:
// a path returned by a CFPQ engine is valid iff its label word derives from
// the queried non-terminal.
//
// The empty word derives from A iff A was nullable in the original grammar.
func (c *CNF) Derives(start string, word []string) bool {
	a, ok := c.Index(start)
	if !ok {
		return false
	}
	n := len(word)
	if n == 0 {
		return c.Nullable[start]
	}
	nn := c.NonterminalCount()
	// table cell (i, span) covers word[i : i+span+1]; one flag per non-terminal.
	cell := func(i, span, nt int) int { return (i*n+span)*nn + nt }
	tbl := make([]bool, n*n*nn)
	for i, t := range word {
		for _, nt := range c.TermRules[t] {
			tbl[cell(i, 0, nt)] = true
		}
	}
	for span := 1; span < n; span++ { // span = length-1
		for i := 0; i+span < n; i++ {
			for _, r := range c.Binary {
				if tbl[cell(i, span, r.A)] {
					continue
				}
				for k := 0; k < span; k++ {
					if tbl[cell(i, k, r.B)] && tbl[cell(i+k+1, span-k-1, r.C)] {
						tbl[cell(i, span, r.A)] = true
						break
					}
				}
			}
		}
	}
	return tbl[cell(0, n-1, a)]
}

// DerivesGrammar is a recogniser for plain (non-CNF) grammars: it converts
// to CNF internally. Convenient in tests; for repeated queries convert once
// with ToCNF and call Derives.
func DerivesGrammar(g *Grammar, start string, word []string) (bool, error) {
	c, err := ToCNF(g)
	if err != nil {
		return false, err
	}
	if _, ok := c.Index(start); !ok {
		// The start symbol generated nothing but ε (or nothing at all) and
		// was dropped; ε-membership is still answered via Nullable.
		return len(word) == 0 && c.Nullable[start], nil
	}
	return c.Derives(start, word), nil
}
