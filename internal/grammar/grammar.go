// Package grammar implements context-free grammars, a text format for
// writing them, and the transformation to Chomsky Normal Form (CNF) that the
// matrix-based CFPQ algorithm of Azimov & Grigorev requires.
//
// Following Hellings (and the paper), grammars carry no designated start
// symbol: a path query names the non-terminal it wants, so every
// non-terminal is a potential start symbol. CNF here therefore means that
// every production has one of the two forms
//
//	A → B C   (two non-terminals)
//	A → x     (a single terminal)
//
// ε-productions are eliminated during normalisation; the set of nullable
// non-terminals is preserved so that query engines can account for empty
// paths (which are the only paths labelled by ε).
package grammar

import (
	"fmt"
	"sort"
	"strings"
)

// Symbol is a terminal or non-terminal occurring in a production body.
type Symbol struct {
	Name     string
	Terminal bool
}

// T returns a terminal symbol.
func T(name string) Symbol { return Symbol{Name: name, Terminal: true} }

// NT returns a non-terminal symbol.
func NT(name string) Symbol { return Symbol{Name: name, Terminal: false} }

// String renders the symbol; terminals that could be mistaken for
// non-terminals are quoted. Quoting escapes exactly what the parser's
// quoted-terminal reader unescapes — backslash and double quote — so a
// parsed grammar's rendering re-parses to the same symbols.
func (s Symbol) String() string {
	if s.Terminal && needsQuoting(s.Name) {
		var b strings.Builder
		b.WriteByte('"')
		for i := 0; i < len(s.Name); i++ {
			if c := s.Name[i]; c == '"' || c == '\\' {
				b.WriteByte('\\')
			}
			b.WriteByte(s.Name[i])
		}
		b.WriteByte('"')
		return b.String()
	}
	return s.Name
}

func needsQuoting(name string) bool {
	if name == "" {
		return true
	}
	c := name[0]
	if c >= 'A' && c <= 'Z' {
		return true // would parse as a non-terminal
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '\'':
		default:
			return true
		}
	}
	return false
}

// Production is a single rewrite rule Lhs → Rhs. An empty Rhs denotes an
// ε-production.
type Production struct {
	Lhs string
	Rhs []Symbol
}

// String renders the production in the grammar text format.
func (p Production) String() string {
	var b strings.Builder
	b.WriteString(p.Lhs)
	b.WriteString(" ->")
	if len(p.Rhs) == 0 {
		b.WriteString(" eps")
		return b.String()
	}
	for _, s := range p.Rhs {
		b.WriteByte(' ')
		b.WriteString(s.String())
	}
	return b.String()
}

// Grammar is a context-free grammar without a designated start symbol.
type Grammar struct {
	Productions []Production
}

// New returns an empty grammar.
func New() *Grammar { return &Grammar{} }

// Add appends a production A → rhs.
func (g *Grammar) Add(lhs string, rhs ...Symbol) *Grammar {
	g.Productions = append(g.Productions, Production{Lhs: lhs, Rhs: rhs})
	return g
}

// AddEpsilon appends an ε-production for lhs.
func (g *Grammar) AddEpsilon(lhs string) *Grammar {
	g.Productions = append(g.Productions, Production{Lhs: lhs})
	return g
}

// Nonterminals returns the sorted set of non-terminals: every production
// left-hand side plus every non-terminal occurring in a body.
func (g *Grammar) Nonterminals() []string {
	set := map[string]bool{}
	for _, p := range g.Productions {
		set[p.Lhs] = true
		for _, s := range p.Rhs {
			if !s.Terminal {
				set[s.Name] = true
			}
		}
	}
	return sortedKeys(set)
}

// Terminals returns the sorted set of terminals occurring in the grammar.
func (g *Grammar) Terminals() []string {
	set := map[string]bool{}
	for _, p := range g.Productions {
		for _, s := range p.Rhs {
			if s.Terminal {
				set[s.Name] = true
			}
		}
	}
	return sortedKeys(set)
}

// ProductionsFor returns the productions whose left-hand side is lhs.
func (g *Grammar) ProductionsFor(lhs string) []Production {
	var out []Production
	for _, p := range g.Productions {
		if p.Lhs == lhs {
			out = append(out, p)
		}
	}
	return out
}

// HasNonterminal reports whether name occurs as a non-terminal.
func (g *Grammar) HasNonterminal(name string) bool {
	for _, p := range g.Productions {
		if p.Lhs == name {
			return true
		}
		for _, s := range p.Rhs {
			if !s.Terminal && s.Name == name {
				return true
			}
		}
	}
	return false
}

// Clone returns a deep copy of the grammar.
func (g *Grammar) Clone() *Grammar {
	out := &Grammar{Productions: make([]Production, len(g.Productions))}
	for i, p := range g.Productions {
		rhs := make([]Symbol, len(p.Rhs))
		copy(rhs, p.Rhs)
		out.Productions[i] = Production{Lhs: p.Lhs, Rhs: rhs}
	}
	return out
}

// String renders the whole grammar, one production per line, grouped by
// left-hand side in first-appearance order.
func (g *Grammar) String() string {
	var b strings.Builder
	for _, p := range g.Productions {
		b.WriteString(p.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Validate checks structural well-formedness: non-empty symbol names and
// left-hand sides.
func (g *Grammar) Validate() error {
	if len(g.Productions) == 0 {
		return fmt.Errorf("grammar: no productions")
	}
	for i, p := range g.Productions {
		if p.Lhs == "" {
			return fmt.Errorf("grammar: production %d has empty left-hand side", i)
		}
		for j, s := range p.Rhs {
			if s.Name == "" {
				return fmt.Errorf("grammar: production %d (%s) has empty symbol at position %d", i, p.Lhs, j)
			}
		}
	}
	return nil
}

// Nullable computes the set of non-terminals that derive the empty string.
func (g *Grammar) Nullable() map[string]bool {
	nullable := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for _, p := range g.Productions {
			if nullable[p.Lhs] {
				continue
			}
			all := true
			for _, s := range p.Rhs {
				if s.Terminal || !nullable[s.Name] {
					all = false
					break
				}
			}
			if all {
				nullable[p.Lhs] = true
				changed = true
			}
		}
	}
	return nullable
}

// Generating computes the set of non-terminals that derive at least one
// terminal string (including ε).
func (g *Grammar) Generating() map[string]bool {
	gen := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for _, p := range g.Productions {
			if gen[p.Lhs] {
				continue
			}
			all := true
			for _, s := range p.Rhs {
				if !s.Terminal && !gen[s.Name] {
					all = false
					break
				}
			}
			if all {
				gen[p.Lhs] = true
				changed = true
			}
		}
	}
	return gen
}

// ReachableFrom computes the set of non-terminals reachable from any of the
// given start non-terminals.
func (g *Grammar) ReachableFrom(starts ...string) map[string]bool {
	reach := map[string]bool{}
	var stack []string
	for _, s := range starts {
		if !reach[s] {
			reach[s] = true
			stack = append(stack, s)
		}
	}
	byLhs := map[string][]Production{}
	for _, p := range g.Productions {
		byLhs[p.Lhs] = append(byLhs[p.Lhs], p)
	}
	for len(stack) > 0 {
		nt := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range byLhs[nt] {
			for _, s := range p.Rhs {
				if !s.Terminal && !reach[s.Name] {
					reach[s.Name] = true
					stack = append(stack, s.Name)
				}
			}
		}
	}
	return reach
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
