package grammar

// Reverse returns the grammar deriving exactly the reversed words: every
// production body is reversed, so w ∈ L(G_A) iff reverse(w) ∈ L(Reverse(G)_A).
// Combined with graph reversal this gives the CFPQ duality
//
//	(i, j) ∈ R_A(G, D)  ⟺  (j, i) ∈ R_A(Reverse(G), Reverse(D)),
//
// which the test suite uses as a structural correctness check of the whole
// pipeline.
func Reverse(g *Grammar) *Grammar {
	out := &Grammar{Productions: make([]Production, len(g.Productions))}
	for i, p := range g.Productions {
		rhs := make([]Symbol, len(p.Rhs))
		for k, s := range p.Rhs {
			rhs[len(p.Rhs)-1-k] = s
		}
		out.Productions[i] = Production{Lhs: p.Lhs, Rhs: rhs}
	}
	return out
}
