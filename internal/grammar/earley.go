package grammar

// Earley is a recogniser over the original (non-CNF) grammar. It exists as
// an independent correctness oracle for the CNF pipeline: CNF.Derives and
// Earley must agree on every word, yet they share no code — Earley runs on
// the raw productions, including ε- and unit-rules.
//
// The implementation includes the standard fix for nullable non-terminals
// (advance the dot immediately when predicting a nullable symbol), so
// grammars with ε-productions are handled correctly.
type Earley struct {
	g        *Grammar
	byLhs    map[string][]Production
	nullable map[string]bool
}

// NewEarley builds a recogniser for g.
func NewEarley(g *Grammar) *Earley {
	byLhs := map[string][]Production{}
	for _, p := range g.Productions {
		byLhs[p.Lhs] = append(byLhs[p.Lhs], p)
	}
	return &Earley{g: g, byLhs: byLhs, nullable: g.Nullable()}
}

type earleyItem struct {
	prod   int // index into flat production list
	dot    int
	origin int
}

// Recognize reports whether the word derives from the non-terminal start.
func (e *Earley) Recognize(start string, word []string) bool {
	if _, ok := e.byLhs[start]; !ok {
		return false
	}
	// Flatten productions so items can index them.
	type fp struct {
		lhs string
		rhs []Symbol
	}
	var prods []fp
	prodIdx := map[string][]int{}
	for lhs, ps := range e.byLhs {
		for _, p := range ps {
			prodIdx[lhs] = append(prodIdx[lhs], len(prods))
			prods = append(prods, fp{lhs: p.Lhs, rhs: p.Rhs})
		}
	}

	n := len(word)
	sets := make([]map[earleyItem]bool, n+1)
	order := make([][]earleyItem, n+1)
	for i := range sets {
		sets[i] = map[earleyItem]bool{}
	}
	add := func(k int, it earleyItem) {
		if !sets[k][it] {
			sets[k][it] = true
			order[k] = append(order[k], it)
		}
	}
	for _, pi := range prodIdx[start] {
		add(0, earleyItem{prod: pi, dot: 0, origin: 0})
	}
	for k := 0; k <= n; k++ {
		for i := 0; i < len(order[k]); i++ {
			it := order[k][i]
			p := prods[it.prod]
			if it.dot < len(p.rhs) {
				sym := p.rhs[it.dot]
				if sym.Terminal {
					// Scan.
					if k < n && word[k] == sym.Name {
						add(k+1, earleyItem{prod: it.prod, dot: it.dot + 1, origin: it.origin})
					}
				} else {
					// Predict.
					for _, pi := range prodIdx[sym.Name] {
						add(k, earleyItem{prod: pi, dot: 0, origin: k})
					}
					// Nullable fix: the predicted symbol may derive ε.
					if e.nullable[sym.Name] {
						add(k, earleyItem{prod: it.prod, dot: it.dot + 1, origin: it.origin})
					}
				}
			} else {
				// Complete.
				for _, par := range order[it.origin] {
					pp := prods[par.prod]
					if par.dot < len(pp.rhs) && !pp.rhs[par.dot].Terminal && pp.rhs[par.dot].Name == p.lhs {
						add(k, earleyItem{prod: par.prod, dot: par.dot + 1, origin: par.origin})
					}
				}
			}
		}
	}
	for it := range sets[n] {
		p := prods[it.prod]
		if p.lhs == start && it.dot == len(p.rhs) && it.origin == 0 {
			return true
		}
	}
	return false
}
