package grammar

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode"
)

// Parse reads a grammar from its text format. The format, one rule per line:
//
//	# comment
//	S -> subClassOf_r S subClassOf | type_r S type
//	S -> "weird terminal!" B
//	B -> eps
//
// Identifiers beginning with an upper-case letter are non-terminals; all
// other identifiers are terminals. Double-quoted strings are always
// terminals (use them for terminals that start with an upper-case letter).
// `eps` (alone in an alternative) denotes the empty string. Alternatives are
// separated by `|`. Both `->` and `::=` are accepted as the arrow.
func Parse(r io.Reader) (*Grammar, error) {
	g := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
			continue
		}
		if err := parseLine(g, line); err != nil {
			return nil, fmt.Errorf("grammar: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("grammar: read: %w", err)
	}
	if len(g.Productions) == 0 {
		return nil, fmt.Errorf("grammar: no productions found")
	}
	return g, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Grammar, error) {
	return Parse(strings.NewReader(s))
}

// MustParse is ParseString that panics on error; intended for tests and
// package-level grammar literals.
func MustParse(s string) *Grammar {
	g, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return g
}

func parseLine(g *Grammar, line string) error {
	arrow := strings.Index(line, "->")
	arrowLen := 2
	if i := strings.Index(line, "::="); i >= 0 && (arrow < 0 || i < arrow) {
		arrow, arrowLen = i, 3
	}
	if arrow < 0 {
		return fmt.Errorf("missing '->' in %q", line)
	}
	lhs := strings.TrimSpace(line[:arrow])
	if lhs == "" {
		return fmt.Errorf("empty left-hand side in %q", line)
	}
	if !isNonterminalName(lhs) {
		return fmt.Errorf("left-hand side %q must be a non-terminal (start with an upper-case letter)", lhs)
	}
	body := line[arrow+arrowLen:]
	for _, alt := range splitAlternatives(body) {
		syms, err := tokenizeSymbols(alt)
		if err != nil {
			return err
		}
		g.Productions = append(g.Productions, Production{Lhs: lhs, Rhs: syms})
	}
	return nil
}

// splitAlternatives splits on '|' outside of quotes. Inside quotes a
// backslash escapes the next character (the same discipline
// tokenizeSymbols unescapes with), so quoted terminals containing
// backslashes or '|' split correctly.
func splitAlternatives(body string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case inQuote && c == '\\' && i+1 < len(body):
			cur.WriteByte(c)
			i++
			cur.WriteByte(body[i])
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == '|' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	out = append(out, cur.String())
	return out
}

func tokenizeSymbols(alt string) ([]Symbol, error) {
	var syms []Symbol
	i := 0
	for i < len(alt) {
		c := alt[i]
		if c == ' ' || c == '\t' {
			i++
			continue
		}
		if c == '"' {
			j := i + 1
			var name strings.Builder
			for j < len(alt) && alt[j] != '"' {
				if alt[j] == '\\' && j+1 < len(alt) {
					j++
				}
				name.WriteByte(alt[j])
				j++
			}
			if j >= len(alt) {
				return nil, fmt.Errorf("unterminated quoted terminal in %q", alt)
			}
			syms = append(syms, T(name.String()))
			i = j + 1
			continue
		}
		j := i
		for j < len(alt) && alt[j] != ' ' && alt[j] != '\t' && alt[j] != '"' {
			j++
		}
		word := alt[i:j]
		i = j
		if word == "eps" || word == "ε" || word == "epsilon" {
			continue // contributes nothing to the body
		}
		if isNonterminalName(word) {
			syms = append(syms, NT(word))
		} else {
			syms = append(syms, T(word))
		}
	}
	return syms, nil
}

func isNonterminalName(s string) bool {
	if s == "" {
		return false
	}
	r := []rune(s)[0]
	return unicode.IsUpper(r)
}
