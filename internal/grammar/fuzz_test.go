package grammar

import (
	"testing"
)

// FuzzParseGrammar feeds arbitrary text to the grammar parser: it must
// never panic, and accepted input must survive a parse-print-parse round
// trip exactly — the printed form re-parses to the same productions and
// re-prints byte-identically. That is the invariant serialising grammars
// (registry dumps, golden files) relies on; it holds because Symbol.String
// escapes exactly what the parser's quoted-terminal reader unescapes.
func FuzzParseGrammar(f *testing.F) {
	f.Add("S -> a S b | a b")
	f.Add("S -> subClassOf_r S subClassOf | subClassOf_r subClassOf\nS -> type_r S type | type_r type")
	f.Add("B -> \"Quoted Terminal\" B x | eps")
	f.Add("A ::= a | ε\n# comment\n// also a comment")
	f.Add("S -> \"a\\\"b\" S | \"\\\\\"")
	f.Add("X -> | |")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseString(input) // must not panic
		if err != nil {
			return
		}
		printed := g.String()
		g2, err := ParseString(printed)
		if err != nil {
			t.Fatalf("reparse of printed grammar failed: %v\nprinted:\n%s", err, printed)
		}
		if len(g2.Productions) != len(g.Productions) {
			t.Fatalf("reparse changed production count: %d -> %d\ninput: %q\nprinted:\n%s",
				len(g.Productions), len(g2.Productions), input, printed)
		}
		for i := range g.Productions {
			a, b := g.Productions[i], g2.Productions[i]
			if a.Lhs != b.Lhs || len(a.Rhs) != len(b.Rhs) {
				t.Fatalf("production %d changed: %v -> %v\nprinted:\n%s", i, a, b, printed)
			}
			for j := range a.Rhs {
				if a.Rhs[j] != b.Rhs[j] {
					t.Fatalf("production %d symbol %d changed: %+v -> %+v\nprinted:\n%s",
						i, j, a.Rhs[j], b.Rhs[j], printed)
				}
			}
		}
		if got := g2.String(); got != printed {
			t.Fatalf("print not a fixpoint:\nfirst:\n%s\nsecond:\n%s", printed, got)
		}
	})
}
