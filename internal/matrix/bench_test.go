package matrix

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchMatrices builds a random pair of n×n matrices at the given density
// on one backend.
func benchMatrices(be Backend, n int, density float64, seed int64) (a, b Bool) {
	rng := rand.New(rand.NewSource(seed))
	a = be.NewMatrix(n)
	b = be.NewMatrix(n)
	target := int(float64(n) * float64(n) * density)
	for i := 0; i < target; i++ {
		a.Set(rng.Intn(n), rng.Intn(n))
		b.Set(rng.Intn(n), rng.Intn(n))
	}
	return a, b
}

// BenchmarkAddMul measures the core kernel dst |= a×b per backend across
// sizes and densities — the operation the whole closure loop is made of.
func BenchmarkAddMul(b *testing.B) {
	for _, be := range Backends() {
		for _, n := range []int{64, 256, 1024} {
			for _, density := range []float64{0.001, 0.01, 0.1} {
				name := fmt.Sprintf("%s/n=%d/density=%g", be.Name(), n, density)
				b.Run(name, func(b *testing.B) {
					ma, mb := benchMatrices(be, n, density, 1)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						dst := be.NewMatrix(n)
						dst.AddMul(ma, mb)
					}
				})
			}
		}
	}
}

// BenchmarkOr measures the union kernel.
func BenchmarkOr(b *testing.B) {
	for _, be := range Backends() {
		b.Run(be.Name(), func(b *testing.B) {
			ma, mb := benchMatrices(be, 1024, 0.01, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst := ma.Clone()
				dst.Or(mb)
			}
		})
	}
}

// BenchmarkTransitiveClosureSquare measures the raw squaring loop
// m ← m ∪ m² to fixpoint on a chain — the closure pattern without grammar
// bookkeeping, isolating backend behaviour.
func BenchmarkTransitiveClosureSquare(b *testing.B) {
	for _, be := range Backends() {
		for _, n := range []int{128, 512} {
			b.Run(fmt.Sprintf("%s/n=%d", be.Name(), n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m := be.NewMatrix(n)
					for v := 0; v+1 < n; v++ {
						m.Set(v, v+1)
					}
					for m.AddMul(m, m) {
					}
				}
			})
		}
	}
}
