package matrix

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// refMul is the O(n³) reference Boolean multiply used as the oracle.
func refMul(a, b [][]bool) [][]bool {
	n := len(a)
	out := make([][]bool, n)
	for i := range out {
		out[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if a[i][k] && b[k][j] {
					out[i][j] = true
					break
				}
			}
		}
	}
	return out
}

func toBool(m Bool) [][]bool {
	n := m.Dim()
	out := make([][]bool, n)
	for i := range out {
		out[i] = make([]bool, n)
	}
	m.Range(func(i, j int) bool {
		out[i][j] = true
		return true
	})
	return out
}

func fill(m Bool, grid [][]bool) {
	for i := range grid {
		for j := range grid[i] {
			if grid[i][j] {
				m.Set(i, j)
			}
		}
	}
}

func randGrid(rng *rand.Rand, n int, density float64) [][]bool {
	g := make([][]bool, n)
	for i := range g {
		g[i] = make([]bool, n)
		for j := range g[i] {
			g[i][j] = rng.Float64() < density
		}
	}
	return g
}

func orGrid(a, b [][]bool) [][]bool {
	n := len(a)
	out := make([][]bool, n)
	for i := range out {
		out[i] = make([]bool, n)
		for j := range out[i] {
			out[i][j] = a[i][j] || b[i][j]
		}
	}
	return out
}

func allBackends() []Backend {
	return []Backend{Dense(), DenseParallel(4), Sparse(), SparseParallel(4)}
}

func TestSetGetBasics(t *testing.T) {
	for _, be := range allBackends() {
		t.Run(be.Name(), func(t *testing.T) {
			m := be.NewMatrix(70) // spans more than one 64-bit word
			if m.Dim() != 70 {
				t.Fatalf("Dim = %d", m.Dim())
			}
			coords := [][2]int{{0, 0}, {0, 63}, {0, 64}, {69, 69}, {5, 5}}
			for _, c := range coords {
				if m.Get(c[0], c[1]) {
					t.Errorf("(%d,%d) set before Set", c[0], c[1])
				}
				m.Set(c[0], c[1])
				if !m.Get(c[0], c[1]) {
					t.Errorf("(%d,%d) not set after Set", c[0], c[1])
				}
			}
			if m.Nnz() != len(coords) {
				t.Errorf("Nnz = %d, want %d", m.Nnz(), len(coords))
			}
			// Idempotent Set.
			m.Set(5, 5)
			if m.Nnz() != len(coords) {
				t.Errorf("Nnz after duplicate Set = %d", m.Nnz())
			}
		})
	}
}

func TestOutOfRangePanics(t *testing.T) {
	for _, be := range allBackends() {
		m := be.NewMatrix(4)
		for _, op := range []func(){
			func() { m.Set(4, 0) },
			func() { m.Set(0, -1) },
			func() { m.Get(0, 4) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s: out-of-range access did not panic", be.Name())
					}
				}()
				op()
			}()
		}
	}
}

func TestMixedBackendsPanic(t *testing.T) {
	d := Dense().NewMatrix(3)
	s := Sparse().NewMatrix(3)
	defer func() {
		if recover() == nil {
			t.Error("mixing backends should panic")
		}
	}()
	d.AddMul(s, s)
}

func TestDimensionMismatchPanics(t *testing.T) {
	a := Dense().NewMatrix(3)
	b := Dense().NewMatrix(4)
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch should panic")
		}
	}()
	a.Or(b)
}

func TestRangeOrder(t *testing.T) {
	for _, be := range allBackends() {
		m := be.NewMatrix(5)
		m.Set(3, 1)
		m.Set(0, 4)
		m.Set(3, 0)
		m.Set(1, 2)
		var got []Pair
		m.Range(func(i, j int) bool {
			got = append(got, Pair{i, j})
			return true
		})
		want := []Pair{{0, 4}, {1, 2}, {3, 0}, {3, 1}}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Range order = %v, want %v", be.Name(), got, want)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	for _, be := range allBackends() {
		m := be.NewMatrix(4)
		m.Set(0, 0)
		m.Set(1, 1)
		m.Set(2, 2)
		count := 0
		m.Range(func(i, j int) bool {
			count++
			return count < 2
		})
		if count != 2 {
			t.Errorf("%s: early stop visited %d entries, want 2", be.Name(), count)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	for _, be := range allBackends() {
		m := be.NewMatrix(4)
		m.Set(1, 1)
		c := m.Clone()
		c.Set(2, 2)
		if m.Get(2, 2) {
			t.Errorf("%s: Clone shares storage", be.Name())
		}
		if !c.Get(1, 1) {
			t.Errorf("%s: Clone lost entry", be.Name())
		}
	}
}

func TestOrSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, be := range allBackends() {
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(40)
			ga := randGrid(rng, n, 0.15)
			gb := randGrid(rng, n, 0.15)
			a := be.NewMatrix(n)
			b := be.NewMatrix(n)
			fill(a, ga)
			fill(b, gb)
			changed := a.Or(b)
			want := orGrid(ga, gb)
			if !reflect.DeepEqual(toBool(a), want) {
				t.Fatalf("%s: Or result wrong (n=%d)", be.Name(), n)
			}
			// changed must be accurate: true iff a gained entries.
			gained := false
			for i := range want {
				for j := range want[i] {
					if want[i][j] && !ga[i][j] {
						gained = true
					}
				}
			}
			if changed != gained {
				t.Fatalf("%s: Or changed=%v, want %v", be.Name(), changed, gained)
			}
			// Second Or is a no-op.
			if a.Or(b) {
				t.Fatalf("%s: repeated Or reported change", be.Name())
			}
		}
	}
}

func TestAddMulAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, be := range allBackends() {
		for trial := 0; trial < 25; trial++ {
			n := 1 + rng.Intn(50)
			ga := randGrid(rng, n, 0.12)
			gb := randGrid(rng, n, 0.12)
			gm := randGrid(rng, n, 0.05)
			a := be.NewMatrix(n)
			b := be.NewMatrix(n)
			m := be.NewMatrix(n)
			fill(a, ga)
			fill(b, gb)
			fill(m, gm)
			before := toBool(m)
			changed := m.AddMul(a, b)
			want := orGrid(before, refMul(ga, gb))
			if !reflect.DeepEqual(toBool(m), want) {
				t.Fatalf("%s: AddMul wrong (n=%d, trial=%d)", be.Name(), n, trial)
			}
			if changed != !reflect.DeepEqual(before, want) {
				t.Fatalf("%s: AddMul changed flag wrong", be.Name())
			}
			// Fixpoint: repeating the same AddMul adds nothing new beyond
			// what another application of the product adds; specifically
			// m already contains a×b now, so AddMul(a,b) must return false.
			if m.AddMul(a, b) {
				t.Fatalf("%s: AddMul not idempotent", be.Name())
			}
		}
	}
}

func TestAddMulAliasingSquare(t *testing.T) {
	// m.AddMul(m, m) is the closure step a ← a ∪ a²; aliasing must be safe.
	for _, be := range allBackends() {
		m := be.NewMatrix(4)
		m.Set(0, 1)
		m.Set(1, 2)
		m.Set(2, 3)
		if !m.AddMul(m, m) {
			t.Fatalf("%s: square should change a chain", be.Name())
		}
		// After one squaring: paths of length ≤ 2.
		for _, want := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 2}, {1, 3}} {
			if !m.Get(want[0], want[1]) {
				t.Errorf("%s: missing (%d,%d) after square", be.Name(), want[0], want[1])
			}
		}
		if m.Get(0, 3) {
			t.Errorf("%s: (0,3) requires two squarings", be.Name())
		}
		m.AddMul(m, m)
		if !m.Get(0, 3) {
			t.Errorf("%s: (0,3) missing after second square", be.Name())
		}
	}
}

func TestEqual(t *testing.T) {
	for _, be := range allBackends() {
		a := be.NewMatrix(5)
		b := be.NewMatrix(5)
		if !a.Equal(b) {
			t.Errorf("%s: empty matrices not equal", be.Name())
		}
		a.Set(2, 3)
		if a.Equal(b) {
			t.Errorf("%s: unequal matrices reported equal", be.Name())
		}
		b.Set(2, 3)
		if !a.Equal(b) {
			t.Errorf("%s: equal matrices reported unequal", be.Name())
		}
	}
}

// TestBackendsAgree is the cross-backend property test: every backend must
// produce identical results for the same random (AddMul ∘ Or)* programs.
func TestBackendsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	backends := allBackends()
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(40)
		ga := randGrid(rng, n, 0.1)
		gb := randGrid(rng, n, 0.1)
		results := make([][][]bool, len(backends))
		for bi, be := range backends {
			a := be.NewMatrix(n)
			b := be.NewMatrix(n)
			fill(a, ga)
			fill(b, gb)
			// Program: a |= a×b; b |= a; a |= a×a; repeat twice.
			for step := 0; step < 2; step++ {
				a.AddMul(a, b)
				b.Or(a)
				a.AddMul(a, a)
			}
			results[bi] = toBool(a)
		}
		for bi := 1; bi < len(backends); bi++ {
			if !reflect.DeepEqual(results[0], results[bi]) {
				t.Fatalf("trial %d: %s disagrees with %s",
					trial, backends[bi].Name(), backends[0].Name())
			}
		}
	}
}

// TestQuickDenseSparseMulEquivalence uses testing/quick to compare the
// dense and sparse multiply kernels on arbitrary bit patterns.
func TestQuickDenseSparseMulEquivalence(t *testing.T) {
	f := func(seedA, seedB int64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		rngA := rand.New(rand.NewSource(seedA))
		rngB := rand.New(rand.NewSource(seedB))
		ga := randGrid(rngA, n, 0.15)
		gb := randGrid(rngB, n, 0.15)
		d := Dense().NewMatrix(n)
		da, db := Dense().NewMatrix(n), Dense().NewMatrix(n)
		fill(da, ga)
		fill(db, gb)
		d.AddMul(da, db)
		s := Sparse().NewMatrix(n)
		sa, sb := Sparse().NewMatrix(n), Sparse().NewMatrix(n)
		fill(sa, ga)
		fill(sb, gb)
		s.AddMul(sa, sb)
		return reflect.DeepEqual(toBool(d), toBool(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickUnionSorted checks the sparse row-merge helper on arbitrary
// sorted inputs.
func TestQuickUnionSorted(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a := uniqSorted(xs)
		b := uniqSorted(ys)
		merged, grew := unionSorted(a, b)
		// Reference: set union.
		set := map[int32]bool{}
		for _, x := range a {
			set[x] = true
		}
		added := false
		for _, y := range b {
			if !set[y] {
				set[y] = true
				added = true
			}
		}
		if grew != added {
			return false
		}
		if len(merged) != len(set) {
			return false
		}
		for i := 1; i < len(merged); i++ {
			if merged[i-1] >= merged[i] {
				return false
			}
		}
		for _, x := range merged {
			if !set[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func uniqSorted(xs []uint16) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, x := range xs {
		seen[int32(x)] = true
	}
	for x := range seen {
		out = append(out, x)
	}
	sortInt32(out)
	return out
}

func sortInt32(xs []int32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

func TestDenseTranspose(t *testing.T) {
	m := NewDense(67)
	m.Set(0, 66)
	m.Set(66, 0)
	m.Set(5, 13)
	tr := m.Transpose()
	if !tr.Get(66, 0) || !tr.Get(0, 66) || !tr.Get(13, 5) {
		t.Error("transpose entries wrong")
	}
	if tr.Nnz() != m.Nnz() {
		t.Errorf("transpose Nnz = %d, want %d", tr.Nnz(), m.Nnz())
	}
}

func TestSparseTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(50)
		g := randGrid(rng, n, 0.15)
		s := NewSparse(n)
		fill(s, g)
		tr := s.Transpose()
		if tr.Nnz() != s.Nnz() {
			t.Fatalf("transpose Nnz = %d, want %d", tr.Nnz(), s.Nnz())
		}
		s.Range(func(i, j int) bool {
			if !tr.Get(j, i) {
				t.Fatalf("(%d,%d) set but transpose (%d,%d) missing", i, j, j, i)
			}
			return true
		})
		// Double transpose is identity.
		if !tr.Transpose().Equal(s) {
			t.Fatal("double transpose != original")
		}
	}
}

func TestDenseSparseConversion(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randGrid(rng, 33, 0.2)
	d := NewDense(33)
	fill(d, g)
	s := FromDense(d)
	if !reflect.DeepEqual(toBool(s), g) {
		t.Error("FromDense wrong")
	}
	d2 := s.ToDense()
	if !d.Equal(d2) {
		t.Error("ToDense(FromDense) != original")
	}
}

func TestPairs(t *testing.T) {
	m := NewSparse(4)
	m.Set(1, 2)
	m.Set(0, 3)
	got := Pairs(m)
	want := []Pair{{0, 3}, {1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Pairs = %v, want %v", got, want)
	}
}

func TestBackendNames(t *testing.T) {
	want := map[string]bool{
		"dense": true, "dense-parallel": true,
		"sparse": true, "sparse-parallel": true,
	}
	for _, be := range Backends() {
		if !want[be.Name()] {
			t.Errorf("unexpected backend name %q", be.Name())
		}
		delete(want, be.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing backends: %v", want)
	}
}

func TestEmptyMatrixOps(t *testing.T) {
	for _, be := range allBackends() {
		m := be.NewMatrix(0)
		if m.Nnz() != 0 || m.Dim() != 0 {
			t.Errorf("%s: bad empty matrix", be.Name())
		}
		if m.AddMul(m.Clone(), m.Clone()) {
			t.Errorf("%s: empty AddMul changed", be.Name())
		}
		n1 := be.NewMatrix(1)
		n1.Set(0, 0)
		if !n1.Get(0, 0) || n1.Nnz() != 1 {
			t.Errorf("%s: 1×1 matrix broken", be.Name())
		}
		// (0,0)·(0,0) = (0,0) is already present, so squaring changes nothing.
		if n1.AddMul(n1, n1) {
			t.Errorf("%s: 1×1 self-loop square should not change", be.Name())
		}
	}
}
