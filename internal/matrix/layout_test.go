package matrix

import (
	"reflect"
	"sort"
	"testing"
	"unsafe"
)

// optimalStructSize computes the smallest size a struct's fields can be
// laid out in: fields sorted by decreasing alignment, each placed at the
// next aligned offset, the total rounded up to the struct's alignment.
// For field sets without exotic alignment interleaving (every struct in
// this repo) this greedy layout is optimal.
func optimalStructSize(t reflect.Type) uintptr {
	fields := make([]reflect.Type, t.NumField())
	for i := range fields {
		fields[i] = t.Field(i).Type
	}
	sort.SliceStable(fields, func(i, j int) bool {
		return fields[i].Align() > fields[j].Align()
	})
	var size, maxAlign uintptr = 0, 1
	for _, f := range fields {
		a := uintptr(f.Align())
		if a > maxAlign {
			maxAlign = a
		}
		size = (size + a - 1) &^ (a - 1)
		size += f.Size()
	}
	return (size + maxAlign - 1) &^ (maxAlign - 1)
}

// TestHotStructLayouts pins the size of the matrix structs the closure
// loop allocates per row/cell, and proves the declared field order wastes
// no padding over the optimal ordering — the fieldalignment gate, kept as
// a test so a future field landing in the wrong slot fails here instead
// of silently bloating every row header.
func TestHotStructLayouts(t *testing.T) {
	// The pins below assume a 64-bit platform; skip loudly elsewhere.
	if ptr := unsafe.Sizeof(uintptr(0)); ptr != 8 {
		t.Skipf("size pins assume 64-bit (uintptr = %d bytes)", ptr)
	}
	cases := []struct {
		name string
		typ  reflect.Type
		size uintptr
	}{
		{"SparseMatrix", reflect.TypeOf(SparseMatrix{}), 56},
		{"DenseMatrix", reflect.TypeOf(DenseMatrix{}), 56},
		{"Pair", reflect.TypeOf(Pair{}), 16},
	}
	for _, c := range cases {
		if got := c.typ.Size(); got != c.size {
			t.Errorf("%s size = %d bytes, want %d (layout changed; update the pin only with a layout audit)", c.name, got, c.size)
		}
		if opt := optimalStructSize(c.typ); c.typ.Size() > opt {
			t.Errorf("%s wastes padding: size %d > optimal %d; reorder fields by decreasing alignment", c.name, c.typ.Size(), opt)
		}
	}
}
