package matrix

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func andGrid(a, b [][]bool) [][]bool {
	n := len(a)
	out := make([][]bool, n)
	for i := range out {
		out[i] = make([]bool, n)
		for j := range out[i] {
			out[i][j] = a[i][j] && b[i][j]
		}
	}
	return out
}

func andNotGrid(a, b [][]bool) [][]bool {
	n := len(a)
	out := make([][]bool, n)
	for i := range out {
		out[i] = make([]bool, n)
		for j := range out[i] {
			out[i][j] = a[i][j] && !b[i][j]
		}
	}
	return out
}

func TestAndSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, be := range allBackends() {
		for trial := 0; trial < 15; trial++ {
			n := 1 + rng.Intn(40)
			ga := randGrid(rng, n, 0.2)
			gb := randGrid(rng, n, 0.2)
			a := be.NewMatrix(n)
			b := be.NewMatrix(n)
			fill(a, ga)
			fill(b, gb)
			changed := a.And(b)
			want := andGrid(ga, gb)
			if !reflect.DeepEqual(toBool(a), want) {
				t.Fatalf("%s: And wrong (n=%d)", be.Name(), n)
			}
			if changed != !reflect.DeepEqual(ga, want) {
				t.Fatalf("%s: And changed flag wrong", be.Name())
			}
			// Nnz must stay consistent.
			count := 0
			for i := range want {
				for j := range want[i] {
					if want[i][j] {
						count++
					}
				}
			}
			if a.Nnz() != count {
				t.Fatalf("%s: Nnz = %d, want %d", be.Name(), a.Nnz(), count)
			}
			// Idempotent.
			if a.And(b) {
				t.Fatalf("%s: repeated And reported change", be.Name())
			}
		}
	}
}

func TestAndNotSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for _, be := range allBackends() {
		for trial := 0; trial < 15; trial++ {
			n := 1 + rng.Intn(40)
			ga := randGrid(rng, n, 0.2)
			gb := randGrid(rng, n, 0.2)
			a := be.NewMatrix(n)
			b := be.NewMatrix(n)
			fill(a, ga)
			fill(b, gb)
			changed := a.AndNot(b)
			want := andNotGrid(ga, gb)
			if !reflect.DeepEqual(toBool(a), want) {
				t.Fatalf("%s: AndNot wrong (n=%d)", be.Name(), n)
			}
			if changed != !reflect.DeepEqual(ga, want) {
				t.Fatalf("%s: AndNot changed flag wrong", be.Name())
			}
			count := 0
			for i := range want {
				for j := range want[i] {
					if want[i][j] {
						count++
					}
				}
			}
			if a.Nnz() != count {
				t.Fatalf("%s: Nnz = %d, want %d", be.Name(), a.Nnz(), count)
			}
			if a.AndNot(b) {
				t.Fatalf("%s: repeated AndNot reported change", be.Name())
			}
		}
	}
}

// TestQuickSetAlgebra checks the identity (a ∪ b) = (a \ b) ∪ (a ∩ b) ∪ (b \ a)
// across backends with testing/quick.
func TestQuickSetAlgebra(t *testing.T) {
	f := func(seedA, seedB int64, nRaw uint8, backendPick uint8) bool {
		n := int(nRaw%30) + 1
		be := allBackends()[int(backendPick)%4]
		ga := randGrid(rand.New(rand.NewSource(seedA)), n, 0.2)
		gb := randGrid(rand.New(rand.NewSource(seedB)), n, 0.2)
		mk := func(g [][]bool) Bool {
			m := be.NewMatrix(n)
			fill(m, g)
			return m
		}
		union := mk(ga)
		union.Or(mk(gb))

		aMinusB := mk(ga)
		aMinusB.AndNot(mk(gb))
		aAndB := mk(ga)
		aAndB.And(mk(gb))
		bMinusA := mk(gb)
		bMinusA.AndNot(mk(ga))

		rebuilt := be.NewMatrix(n)
		rebuilt.Or(aMinusB)
		rebuilt.Or(aAndB)
		rebuilt.Or(bMinusA)
		return rebuilt.Equal(union)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSortedSliceHelpers(t *testing.T) {
	cases := []struct {
		a, b  []int32
		inter []int32
		diff  []int32
	}{
		{nil, nil, nil, nil},
		{[]int32{1, 2, 3}, nil, nil, []int32{1, 2, 3}},
		{[]int32{1, 2, 3}, []int32{2}, []int32{2}, []int32{1, 3}},
		{[]int32{1, 2, 3}, []int32{1, 2, 3}, []int32{1, 2, 3}, nil},
		{[]int32{5}, []int32{1, 9}, nil, []int32{5}},
	}
	for _, c := range cases {
		gotI := intersectSorted(c.a, c.b)
		if len(gotI) != len(c.inter) {
			t.Errorf("intersect(%v,%v) = %v, want %v", c.a, c.b, gotI, c.inter)
		} else {
			for i := range gotI {
				if gotI[i] != c.inter[i] {
					t.Errorf("intersect(%v,%v) = %v, want %v", c.a, c.b, gotI, c.inter)
				}
			}
		}
		gotD := differenceSorted(c.a, c.b)
		if len(gotD) != len(c.diff) {
			t.Errorf("difference(%v,%v) = %v, want %v", c.a, c.b, gotD, c.diff)
		} else {
			for i := range gotD {
				if gotD[i] != c.diff[i] {
					t.Errorf("difference(%v,%v) = %v, want %v", c.a, c.b, gotD, c.diff)
				}
			}
		}
	}
	// No-drop fast paths must return the original slice (no copy).
	a := []int32{1, 2, 3}
	if got := differenceSorted(a, []int32{9}); &got[0] != &a[0] {
		t.Error("differenceSorted should return a unchanged when nothing dropped")
	}
	if got := intersectSorted(a, []int32{1, 2, 3, 4}); &got[0] != &a[0] {
		t.Error("intersectSorted should return a unchanged when nothing dropped")
	}
}
