package matrix

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
)

// DenseMatrix is a bit-packed n×n Boolean matrix: row i occupies words
// [i*stride, (i+1)*stride) with 64 columns per word. Multiplication is the
// classic bitset kernel — for every set a[i][k], OR row k of b into row i of
// the result — which runs at 64 columns per machine instruction. This is
// the same data-parallel inner loop a dense GPU kernel executes, which is
// why DenseParallel serves as the paper's dGPU stand-in.
type DenseMatrix struct {
	n        int
	stride   int // words per row
	words    []uint64
	parallel bool
	workers  int
}

type denseBackend struct {
	parallel bool
	workers  int
}

// Dense returns the serial dense backend.
func Dense() Backend { return denseBackend{} }

// DenseParallel returns the row-parallel dense backend; workers ≤ 0 means
// GOMAXPROCS.
func DenseParallel(workers int) Backend {
	return denseBackend{parallel: true, workers: workers}
}

func (d denseBackend) Name() string {
	if d.parallel {
		return "dense-parallel"
	}
	return "dense"
}

func (d denseBackend) NewMatrix(n int) Bool {
	return &DenseMatrix{
		n:        n,
		stride:   (n + 63) / 64,
		words:    make([]uint64, n*((n+63)/64)),
		parallel: d.parallel,
		workers:  d.workers,
	}
}

// EmptyBytes estimates the word storage of an empty n×n bit-packed matrix:
// dense matrices pay their full footprint up front.
func (d denseBackend) EmptyBytes(n int) int64 {
	return 8 * int64(n) * int64((n+63)/64)
}

// NewDense returns an empty serial n×n dense matrix (convenience for tests
// and direct use).
func NewDense(n int) *DenseMatrix {
	return Dense().NewMatrix(n).(*DenseMatrix)
}

// Dim returns the matrix dimension.
func (m *DenseMatrix) Dim() int { return m.n }

func (m *DenseMatrix) check(i, j int) {
	if i < 0 || i >= m.n || j < 0 || j >= m.n {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range for %d×%d", i, j, m.n, m.n))
	}
}

// Get reports entry (i, j).
func (m *DenseMatrix) Get(i, j int) bool {
	m.check(i, j)
	return m.words[i*m.stride+j/64]&(1<<(uint(j)%64)) != 0
}

// Set sets entry (i, j).
func (m *DenseMatrix) Set(i, j int) {
	m.check(i, j)
	m.words[i*m.stride+j/64] |= 1 << (uint(j) % 64)
}

// Bytes estimates the heap bytes of the word storage. Density does not
// matter: a dense matrix pays its full footprint at allocation time.
func (m *DenseMatrix) Bytes() int64 {
	return 8 * int64(len(m.words))
}

// Nnz counts set entries.
func (m *DenseMatrix) Nnz() int {
	total := 0
	for _, w := range m.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Grow resizes the matrix to n×n in place, keeping every entry. The words
// are re-packed row by row because the stride (words per row) changes with
// the dimension.
func (m *DenseMatrix) Grow(n int) {
	if n <= m.n {
		return
	}
	stride := (n + 63) / 64
	words := make([]uint64, n*stride)
	for i := 0; i < m.n; i++ {
		copy(words[i*stride:i*stride+m.stride], m.words[i*m.stride:(i+1)*m.stride])
	}
	m.n, m.stride, m.words = n, stride, words
}

// Clone returns an independent copy.
func (m *DenseMatrix) Clone() Bool {
	cp := *m
	cp.words = make([]uint64, len(m.words))
	copy(cp.words, m.words)
	return &cp
}

// Or computes m |= other.
func (m *DenseMatrix) Or(other Bool) bool {
	o := mustDense(other, m.n)
	changed := false
	for i, w := range o.words {
		if nw := m.words[i] | w; nw != m.words[i] {
			m.words[i] = nw
			changed = true
		}
	}
	return changed
}

// And computes m &= other.
func (m *DenseMatrix) And(other Bool) bool {
	o := mustDense(other, m.n)
	changed := false
	for i, w := range o.words {
		if nw := m.words[i] & w; nw != m.words[i] {
			m.words[i] = nw
			changed = true
		}
	}
	return changed
}

// AndNot computes m &= ¬other.
func (m *DenseMatrix) AndNot(other Bool) bool {
	o := mustDense(other, m.n)
	changed := false
	for i, w := range o.words {
		if nw := m.words[i] &^ w; nw != m.words[i] {
			m.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Equal reports entry-wise equality.
func (m *DenseMatrix) Equal(other Bool) bool {
	o := mustDense(other, m.n)
	for i, w := range o.words {
		if m.words[i] != w {
			return false
		}
	}
	return true
}

// Range iterates set entries in row-major order.
func (m *DenseMatrix) Range(fn func(i, j int) bool) {
	for i := 0; i < m.n; i++ {
		row := m.words[i*m.stride : (i+1)*m.stride]
		for wi, w := range row {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				j := wi*64 + b
				if !fn(i, j) {
					return
				}
				w &= w - 1
			}
		}
	}
}

// AddMul computes m |= a × b. The product is accumulated into a scratch
// buffer first, so m may alias a or b.
func (m *DenseMatrix) AddMul(a, b Bool) bool {
	return m.addMul(a, b)
}

// AddMulRows is AddMul restricted to the masked rows: only rows i with
// rows[i] set are multiplied and merged. Scratch space and the merge scan
// are sized to the masked rows, not the whole matrix, so a small frontier
// pays for its own rows only.
func (m *DenseMatrix) AddMulRows(a, b Bool, rows []bool) bool {
	if len(rows) != m.n {
		panic(fmt.Sprintf("matrix: row mask length %d for %d×%d", len(rows), m.n, m.n))
	}
	da := mustDense(a, m.n)
	db := mustDense(b, m.n)
	idx := make([]int, 0, len(rows))
	for i, on := range rows {
		if on {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return false
	}
	stride := m.stride
	prod := make([]uint64, len(idx)*stride)
	compute := func(lo, hi int) {
		for ri := lo; ri < hi; ri++ {
			mulRowInto(da, db, idx[ri], prod[ri*stride:(ri+1)*stride])
		}
	}
	if m.parallel {
		m.parallelRows(len(idx), compute)
	} else {
		compute(0, len(idx))
	}
	changed := false
	for ri, i := range idx {
		orow := prod[ri*stride : (ri+1)*stride]
		mrow := m.words[i*stride : (i+1)*stride]
		for x, w := range orow {
			if nw := mrow[x] | w; nw != mrow[x] {
				mrow[x] = nw
				changed = true
			}
		}
	}
	return changed
}

// addMul is the full (unmasked) AddMul kernel.
func (m *DenseMatrix) addMul(a, b Bool) bool {
	da := mustDense(a, m.n)
	db := mustDense(b, m.n)
	prod := make([]uint64, len(m.words))
	compute := func(lo, hi int) { mulRows(da, db, prod, lo, hi) }
	if m.parallel {
		m.parallelRows(m.n, compute)
	} else {
		compute(0, m.n)
	}
	changed := false
	for i, w := range prod {
		if nw := m.words[i] | w; nw != m.words[i] {
			m.words[i] = nw
			changed = true
		}
	}
	return changed
}

// mulRowInto computes row i of a×b into the given stride-sized word slice.
func mulRowInto(a, b *DenseMatrix, i int, orow []uint64) {
	stride := a.stride
	arow := a.words[i*stride : (i+1)*stride]
	for wi, w := range arow {
		for w != 0 {
			k := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			brow := b.words[k*stride : (k+1)*stride]
			for x, bw := range brow {
				orow[x] |= bw
			}
		}
	}
}

// mulRows computes rows [lo, hi) of a×b into prod.
func mulRows(a, b *DenseMatrix, prod []uint64, lo, hi int) {
	stride := a.stride
	for i := lo; i < hi; i++ {
		mulRowInto(a, b, i, prod[i*stride:(i+1)*stride])
	}
}

// parallelRows splits [0, n) across the backend's workers and runs compute
// on each chunk.
func (m *DenseMatrix) parallelRows(n int, compute func(lo, hi int)) {
	workers := m.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		compute(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			compute(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Transpose returns the transposed matrix (same backend flavour).
func (m *DenseMatrix) Transpose() *DenseMatrix {
	t := &DenseMatrix{
		n:        m.n,
		stride:   m.stride,
		words:    make([]uint64, len(m.words)),
		parallel: m.parallel,
		workers:  m.workers,
	}
	m.Range(func(i, j int) bool {
		t.words[j*t.stride+i/64] |= 1 << (uint(i) % 64)
		return true
	})
	return t
}

func mustDense(b Bool, n int) *DenseMatrix {
	d, ok := b.(*DenseMatrix)
	if !ok {
		panic(fmt.Sprintf("matrix: mixed backends: expected *DenseMatrix, got %T", b))
	}
	if d.n != n {
		panic(fmt.Sprintf("matrix: dimension mismatch: %d vs %d", d.n, n))
	}
	return d
}
