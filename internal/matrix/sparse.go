package matrix

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// SparseMatrix is a row-compressed sparse Boolean matrix: each row stores
// its set column indices as a sorted []int32 (the per-row view of the CSR
// format the paper's sCPU/sGPU implementations use). Multiplication is
// row-wise SpGEMM where each product row is the union of the b-rows
// selected by the a-row, computed by a balanced tree of sorted-list merges
// (see rowMerger) — O(nnz·log fan-in) per row with no n-sized scratch and
// no sort, so the cost tracks the output size rather than the dimension.
// The parallel flavour distributes rows across goroutines exactly the way
// CUSPARSE distributes them across thread blocks, which is why
// SparseParallel serves as the paper's sGPU stand-in.
type SparseMatrix struct {
	n        int
	rows     [][]int32
	nnz      int
	parallel bool
	workers  int
}

type sparseBackend struct {
	parallel bool
	workers  int
}

// Sparse returns the serial sparse backend (paper: sCPU).
func Sparse() Backend { return sparseBackend{} }

// SparseParallel returns the row-parallel sparse backend (paper: sGPU);
// workers ≤ 0 means GOMAXPROCS.
func SparseParallel(workers int) Backend {
	return sparseBackend{parallel: true, workers: workers}
}

func (s sparseBackend) Name() string {
	if s.parallel {
		return "sparse-parallel"
	}
	return "sparse"
}

func (s sparseBackend) NewMatrix(n int) Bool {
	return &SparseMatrix{
		n:        n,
		rows:     make([][]int32, n),
		parallel: s.parallel,
		workers:  s.workers,
	}
}

// EmptyBytes estimates the row-header storage of an empty n×n sparse
// matrix (24 bytes per row slice header).
func (s sparseBackend) EmptyBytes(n int) int64 {
	return 24 * int64(n)
}

// NewSparse returns an empty serial n×n sparse matrix (convenience for
// tests and direct use).
func NewSparse(n int) *SparseMatrix {
	return Sparse().NewMatrix(n).(*SparseMatrix)
}

// Dim returns the matrix dimension.
func (m *SparseMatrix) Dim() int { return m.n }

func (m *SparseMatrix) check(i, j int) {
	if i < 0 || i >= m.n || j < 0 || j >= m.n {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range for %d×%d", i, j, m.n, m.n))
	}
}

// Get reports entry (i, j) by binary search within the row.
func (m *SparseMatrix) Get(i, j int) bool {
	m.check(i, j)
	row := m.rows[i]
	k := sort.Search(len(row), func(x int) bool { return row[x] >= int32(j) })
	return k < len(row) && row[k] == int32(j)
}

// Set inserts entry (i, j), keeping the row sorted.
func (m *SparseMatrix) Set(i, j int) {
	m.check(i, j)
	row := m.rows[i]
	k := sort.Search(len(row), func(x int) bool { return row[x] >= int32(j) })
	if k < len(row) && row[k] == int32(j) {
		return
	}
	row = append(row, 0)
	copy(row[k+1:], row[k:])
	row[k] = int32(j)
	m.rows[i] = row
	m.nnz++
}

// Nnz returns the number of set entries.
func (m *SparseMatrix) Nnz() int { return m.nnz }

// Bytes estimates the heap bytes of the row storage: 24 bytes per row
// slice header plus 4 bytes per stored column index.
func (m *SparseMatrix) Bytes() int64 {
	return 24*int64(m.n) + 4*int64(m.nnz)
}

// Grow resizes the matrix to n×n in place, keeping every entry. The CSR
// row list simply gains empty rows; column indices need no translation.
func (m *SparseMatrix) Grow(n int) {
	if n <= m.n {
		return
	}
	rows := make([][]int32, n)
	copy(rows, m.rows)
	m.rows = rows
	m.n = n
}

// Clone returns an independent copy.
func (m *SparseMatrix) Clone() Bool {
	cp := &SparseMatrix{
		n:        m.n,
		rows:     make([][]int32, m.n),
		nnz:      m.nnz,
		parallel: m.parallel,
		workers:  m.workers,
	}
	for i, row := range m.rows {
		if len(row) > 0 {
			nr := make([]int32, len(row))
			copy(nr, row)
			cp.rows[i] = nr
		}
	}
	return cp
}

// Equal reports entry-wise equality.
func (m *SparseMatrix) Equal(other Bool) bool {
	o := mustSparse(other, m.n)
	if m.nnz != o.nnz {
		return false
	}
	for i := range m.rows {
		a, b := m.rows[i], o.rows[i]
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if a[k] != b[k] {
				return false
			}
		}
	}
	return true
}

// Range iterates set entries in row-major order.
func (m *SparseMatrix) Range(fn func(i, j int) bool) {
	for i, row := range m.rows {
		for _, j := range row {
			if !fn(i, int(j)) {
				return
			}
		}
	}
}

// Or computes m |= other.
func (m *SparseMatrix) Or(other Bool) bool {
	o := mustSparse(other, m.n)
	changed := false
	for i := range m.rows {
		merged, grew := unionSorted(m.rows[i], o.rows[i])
		if grew {
			m.nnz += len(merged) - len(m.rows[i])
			m.rows[i] = merged
			changed = true
		}
	}
	return changed
}

// And computes m &= other.
func (m *SparseMatrix) And(other Bool) bool {
	o := mustSparse(other, m.n)
	changed := false
	for i := range m.rows {
		kept := intersectSorted(m.rows[i], o.rows[i])
		if len(kept) != len(m.rows[i]) {
			m.nnz += len(kept) - len(m.rows[i])
			m.rows[i] = kept
			changed = true
		}
	}
	return changed
}

// AndNot computes m &= ¬other.
func (m *SparseMatrix) AndNot(other Bool) bool {
	o := mustSparse(other, m.n)
	changed := false
	for i := range m.rows {
		kept := differenceSorted(m.rows[i], o.rows[i])
		if len(kept) != len(m.rows[i]) {
			m.nnz += len(kept) - len(m.rows[i])
			m.rows[i] = kept
			changed = true
		}
	}
	return changed
}

// intersectSorted returns a ∩ b for sorted unique slices. When nothing is
// dropped, a is returned as-is.
func intersectSorted(a, b []int32) []int32 {
	var out []int32
	i, j, kept := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			kept++
			i++
			j++
		}
	}
	if kept == len(a) {
		return a
	}
	out = make([]int32, 0, kept)
	i, j = 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// differenceSorted returns a \ b for sorted unique slices. When nothing is
// dropped, a is returned as-is.
func differenceSorted(a, b []int32) []int32 {
	dropped := 0
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			dropped++
		}
	}
	if dropped == 0 {
		return a
	}
	out := make([]int32, 0, len(a)-dropped)
	j = 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// AddMul computes m |= a × b with merge-based row products. All product
// rows are materialised before merging, so m may alias a or b.
func (m *SparseMatrix) AddMul(a, b Bool) bool {
	sa := mustSparse(a, m.n)
	sb := mustSparse(b, m.n)
	prod := make([][]int32, m.n)
	if m.parallel {
		m.spgemmParallel(sa, sb, prod)
	} else {
		var rm rowMerger
		for i := 0; i < m.n; i++ {
			prod[i] = rm.productRow(sa, sb, i)
		}
	}
	changed := false
	for i := range m.rows {
		if len(prod[i]) == 0 {
			continue
		}
		merged, grew := unionSorted(m.rows[i], prod[i])
		if grew {
			m.nnz += len(merged) - len(m.rows[i])
			m.rows[i] = merged
			changed = true
		}
	}
	return changed
}

// AddMulRows is AddMul restricted to the masked rows: only rows i with
// rows[i] set are multiplied and merged. The row list, scratch space and
// merge scan are sized to the masked rows, so a small frontier pays for
// its own rows only (plus one O(n) sweep to collect them).
func (m *SparseMatrix) AddMulRows(a, b Bool, rows []bool) bool {
	if len(rows) != m.n {
		panic(fmt.Sprintf("matrix: row mask length %d for %d×%d", len(rows), m.n, m.n))
	}
	sa := mustSparse(a, m.n)
	sb := mustSparse(b, m.n)
	idx := make([]int, 0, len(rows))
	for i, on := range rows {
		if on {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return false
	}
	prod := make([][]int32, len(idx))
	if m.parallel && len(idx) > 1 {
		m.spgemmParallelRows(sa, sb, prod, idx)
	} else {
		var rm rowMerger
		for ri, i := range idx {
			prod[ri] = rm.productRow(sa, sb, i)
		}
	}
	changed := false
	for ri, i := range idx {
		if len(prod[ri]) == 0 {
			continue
		}
		merged, grew := unionSorted(m.rows[i], prod[ri])
		if grew {
			m.nnz += len(merged) - len(m.rows[i])
			m.rows[i] = merged
			changed = true
		}
	}
	return changed
}

// spgemmParallelRows distributes the listed rows across workers; prod is
// indexed like idx.
func (m *SparseMatrix) spgemmParallelRows(a, b *SparseMatrix, prod [][]int32, idx []int) {
	workers := m.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(idx) {
		workers = len(idx)
	}
	if workers <= 1 {
		var rm rowMerger
		for ri, i := range idx {
			prod[ri] = rm.productRow(a, b, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	const grain = 16 // masked row lists are short; keep chunks small
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var rm rowMerger
			for {
				lo := int(next.Add(grain)) - grain
				if lo >= len(idx) {
					return
				}
				hi := lo + grain
				if hi > len(idx) {
					hi = len(idx)
				}
				for ri := lo; ri < hi; ri++ {
					prod[ri] = rm.productRow(a, b, idx[ri])
				}
			}
		}()
	}
	wg.Wait()
}

// rowMerger is the per-worker scratch of the merge-based SpGEMM kernel:
// two reusable [][]int32 list buffers plus two ping-pong arenas backing
// the intermediate merge rounds. The zero value is ready to use; capacity
// grows to the working set of the largest row and is then reused, so the
// steady-state kernel allocates only the final product rows.
type rowMerger struct {
	cand, next     [][]int32
	arenaA, arenaB []int32
}

// productRow computes row i of a×b as a freshly allocated sorted column
// list (nil when empty). The candidate rows b.rows[k] for k ∈ a.rows[i]
// are merged pairwise in balanced rounds — a merge tree of depth
// log₂(fan-in) — so the cost is O(output·log fan-in) with no n-sized
// scratch and no sort. Each round writes into the arena its inputs do NOT
// occupy; an odd leftover list is copied into the round's arena rather
// than carried by reference, so every list read in round r+1 lives in
// memory written in round r and arena writes never alias arena reads.
func (rm *rowMerger) productRow(a, b *SparseMatrix, i int) []int32 {
	rm.cand = rm.cand[:0]
	for _, k := range a.rows[i] {
		if row := b.rows[k]; len(row) > 0 {
			rm.cand = append(rm.cand, row)
		}
	}
	if len(rm.cand) == 0 {
		return nil
	}
	cur, free := rm.cand, rm.next
	useA := true
	for len(cur) > 1 {
		arena := rm.arenaB[:0]
		if useA {
			arena = rm.arenaA[:0]
		}
		nxt := free[:0]
		for p := 0; p+1 < len(cur); p += 2 {
			start := len(arena)
			arena = mergeRowsInto(arena, cur[p], cur[p+1])
			nxt = append(nxt, arena[start:len(arena):len(arena)])
		}
		if len(cur)%2 == 1 {
			start := len(arena)
			arena = append(arena, cur[len(cur)-1]...)
			nxt = append(nxt, arena[start:len(arena):len(arena)])
		}
		if useA {
			rm.arenaA = arena
		} else {
			rm.arenaB = arena
		}
		cur, free = nxt, cur
		useA = !useA
	}
	rm.cand, rm.next = cur, free
	out := make([]int32, len(cur[0]))
	copy(out, cur[0])
	return out
}

// mergeRowsInto appends the sorted union of x and y (sorted unique
// slices) to dst and returns the extended slice.
func mergeRowsInto(dst, x, y []int32) []int32 {
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] < y[j]:
			dst = append(dst, x[i])
			i++
		case x[i] > y[j]:
			dst = append(dst, y[j])
			j++
		default:
			dst = append(dst, x[i])
			i++
			j++
		}
	}
	dst = append(dst, x[i:]...)
	return append(dst, y[j:]...)
}

func (m *SparseMatrix) spgemmParallel(a, b *SparseMatrix, prod [][]int32) {
	workers := m.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m.n {
		workers = m.n
	}
	if workers <= 1 {
		var rm rowMerger
		for i := 0; i < m.n; i++ {
			prod[i] = rm.productRow(a, b, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	const grain = 64 // rows claimed per fetch, keeps contention low
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var rm rowMerger
			for {
				lo := int(next.Add(grain)) - grain
				if lo >= m.n {
					return
				}
				hi := lo + grain
				if hi > m.n {
					hi = m.n
				}
				for i := lo; i < hi; i++ {
					prod[i] = rm.productRow(a, b, i)
				}
			}
		}()
	}
	wg.Wait()
}

// unionSorted merges two sorted unique slices; grew reports whether the
// result has entries beyond a. When nothing is added, a is returned as-is.
func unionSorted(a, b []int32) (merged []int32, grew bool) {
	if len(b) == 0 {
		return a, false
	}
	if len(a) == 0 {
		out := make([]int32, len(b))
		copy(out, b)
		return out, true
	}
	// Fast subset check: count b-elements missing from a.
	extra := 0
	ai := 0
	for _, x := range b {
		for ai < len(a) && a[ai] < x {
			ai++
		}
		if ai >= len(a) || a[ai] != x {
			extra++
		}
	}
	if extra == 0 {
		return a, false
	}
	out := make([]int32, 0, len(a)+extra)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out, true
}

// Transpose returns the transposed matrix (same backend flavour).
func (m *SparseMatrix) Transpose() *SparseMatrix {
	t := &SparseMatrix{
		n:        m.n,
		rows:     make([][]int32, m.n),
		nnz:      m.nnz,
		parallel: m.parallel,
		workers:  m.workers,
	}
	// Count per-column first so each transposed row is allocated once.
	counts := make([]int, m.n)
	for _, row := range m.rows {
		for _, j := range row {
			counts[j]++
		}
	}
	for j, c := range counts {
		if c > 0 {
			t.rows[j] = make([]int32, 0, c)
		}
	}
	// Row-major iteration appends column indices in increasing i, so the
	// transposed rows come out sorted.
	for i, row := range m.rows {
		for _, j := range row {
			t.rows[j] = append(t.rows[j], int32(i))
		}
	}
	return t
}

// ToDense converts to a dense matrix (serial backend).
func (m *SparseMatrix) ToDense() *DenseMatrix {
	d := NewDense(m.n)
	m.Range(func(i, j int) bool {
		d.Set(i, j)
		return true
	})
	return d
}

// FromDense converts a dense matrix to a sparse one (serial backend).
func FromDense(d *DenseMatrix) *SparseMatrix {
	s := NewSparse(d.Dim())
	d.Range(func(i, j int) bool {
		s.rows[i] = append(s.rows[i], int32(j))
		s.nnz++
		return true
	})
	return s
}

func mustSparse(b Bool, n int) *SparseMatrix {
	s, ok := b.(*SparseMatrix)
	if !ok {
		panic(fmt.Sprintf("matrix: mixed backends: expected *SparseMatrix, got %T", b))
	}
	if s.n != n {
		panic(fmt.Sprintf("matrix: dimension mismatch: %d vs %d", s.n, n))
	}
	return s
}
