// Package matrix provides hand-rolled Boolean matrix kernels for the
// matrix-based CFPQ algorithm: bit-packed dense matrices and CSR sparse
// matrices, each with serial and row-parallel multiplication. Go has no
// mature sparse linear algebra ecosystem, so everything here is implemented
// from scratch against the small surface the closure loop needs:
//
//	dst |= a × b   (Boolean semiring: AND for ×, OR for +)
//	dst |= src
//	nnz, equality, iteration
//
// The Backend/Bool pair lets the query engine stay agnostic of the
// representation; the four backends stand in for the paper's four
// implementations (dense GPU, sparse CPU, sparse GPU — see DESIGN.md for the
// substitution argument).
package matrix

// Bool is a square Boolean matrix. Implementations are NOT safe for
// concurrent mutation; the closure loop mutates one matrix at a time.
//
// Mixing matrices from different backends in AddMul/Or/Equal is a
// programming error and panics: the CFPQ engine allocates every matrix from
// a single backend.
type Bool interface {
	// Dim returns the matrix dimension n (the matrix is n×n).
	Dim() int
	// Get reports whether entry (i, j) is set.
	Get(i, j int) bool
	// Set sets entry (i, j).
	Set(i, j int)
	// Nnz returns the number of set entries.
	Nnz() int
	// AddMul computes m |= a × b over the Boolean semiring and reports
	// whether m changed. a and b must come from the same backend as m;
	// m may alias a and/or b (the product is computed before merging).
	AddMul(a, b Bool) bool
	// AddMulRows is AddMul restricted to the rows i with rows[i] set: only
	// those rows of the product are computed and merged, the rest of m is
	// untouched. len(rows) must equal Dim. This is the kernel of the
	// source-restricted closure, where only the rows of an active frontier
	// need to be maintained.
	AddMulRows(a, b Bool, rows []bool) bool
	// Or computes m |= other and reports whether m changed.
	Or(other Bool) bool
	// And computes m &= other (intersection) and reports whether m
	// changed. Used by the conjunctive-grammar extension.
	And(other Bool) bool
	// AndNot computes m &= ¬other (set difference) and reports whether m
	// changed. Used by the semi-naive (delta) closure schedule.
	AndNot(other Bool) bool
	// Equal reports whether m and other have identical entries.
	Equal(other Bool) bool
	// Grow resizes the matrix in place to n×n (n ≥ Dim), preserving every
	// set entry; the new rows and columns are empty. Growing is what lets
	// an evaluated index absorb edges that enlarge the node set without a
	// from-scratch rebuild. n < Dim is a no-op.
	Grow(n int)
	// Clone returns an independent copy.
	Clone() Bool
	// Range calls fn for every set entry in row-major order; fn returning
	// false stops the iteration.
	Range(fn func(i, j int) bool)
	// Bytes estimates the heap bytes this matrix currently occupies
	// (backing storage, not Go object headers beyond the per-row ones).
	// The closure memory budget sums these estimates to fail fast before
	// an evaluation outgrows its allowance.
	Bytes() int64
}

// Backend allocates matrices of one representation.
type Backend interface {
	// Name identifies the backend in benchmark output ("dense",
	// "dense-parallel", "sparse", "sparse-parallel").
	Name() string
	// NewMatrix returns an empty n×n matrix.
	NewMatrix(n int) Bool
	// EmptyBytes estimates the heap bytes an empty n×n matrix of this
	// backend occupies — what NewMatrix(n).Bytes() would report, without
	// allocating. Budget checks use it to reject an evaluation whose
	// empty index alone exceeds the allowance.
	EmptyBytes(n int) int64
}

// Pair is a set entry (I, J) extracted from a matrix.
type Pair struct {
	I, J int
}

// Pairs collects all set entries of m in row-major order; an empty matrix
// yields nil (so empty relations compare equal across evaluators).
func Pairs(m Bool) []Pair {
	if m.Nnz() == 0 {
		return nil
	}
	out := make([]Pair, 0, m.Nnz())
	m.Range(func(i, j int) bool {
		out = append(out, Pair{i, j})
		return true
	})
	return out
}

// Backends returns one backend of each kind, in the order the paper's
// tables report them (dense parallel = dGPU stand-in, sparse serial = sCPU,
// sparse parallel = sGPU) plus the serial dense reference.
func Backends() []Backend {
	return []Backend{
		Dense(),
		DenseParallel(0),
		Sparse(),
		SparseParallel(0),
	}
}

// BackendByName resolves a backend by its Name() — the form backend
// identity is recorded in on serialised indexes (CFPQIDX2) and store
// files. Parallel backends resolve with GOMAXPROCS workers.
func BackendByName(name string) (Backend, bool) {
	for _, be := range Backends() {
		if be.Name() == name {
			return be, true
		}
	}
	return nil, false
}
