package matrix

import (
	"math/rand"
	"sync"
	"testing"
)

// The parallel backends fan AddMul out across worker goroutines writing
// disjoint row ranges of a shared product buffer. These tests exist to run
// under `go test -race`: they exercise the internal parallelism (many
// workers, odd dimensions, aliased operands) and the one cross-matrix
// concurrency pattern the engine relies on — many AddMuls into distinct
// destinations sharing read-only operands.

func randomMatrix(rng *rand.Rand, be Backend, n, nnz int) Bool {
	m := be.NewMatrix(n)
	for i := 0; i < nnz; i++ {
		m.Set(rng.Intn(n), rng.Intn(n))
	}
	return m
}

func copyInto(be Backend, src Bool) Bool {
	dst := be.NewMatrix(src.Dim())
	src.Range(func(i, j int) bool {
		dst.Set(i, j)
		return true
	})
	return dst
}

func parallelBackends() []Backend {
	return []Backend{
		DenseParallel(0), DenseParallel(3), // GOMAXPROCS and a non-divisor worker count
		SparseParallel(0), SparseParallel(3),
	}
}

// TestParallelAddMulMatchesSerial checks the parallel kernels against the
// serial sparse reference on random inputs, including the m |= m × m
// aliasing the closure loop performs.
func TestParallelAddMulMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := Sparse()
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(130) // straddles the 64-bit word boundary
		nnz := rng.Intn(4 * n)
		a := randomMatrix(rng, ref, n, nnz)
		b := randomMatrix(rng, ref, n, nnz)
		pre := randomMatrix(rng, ref, n, n/2)
		want := copyInto(ref, pre)
		wantChanged := want.AddMul(a, b)
		for _, be := range parallelBackends() {
			got := copyInto(be, pre)
			changed := got.AddMul(copyInto(be, a), copyInto(be, b))
			if changed != wantChanged || !pairsEqual(got, want) {
				t.Fatalf("trial %d backend %s: AddMul diverges from serial (changed %v vs %v)",
					trial, be.Name(), changed, wantChanged)
			}
			// Aliased self-multiplication, as in T_A |= T_A × T_A.
			selfWant := copyInto(ref, pre)
			selfWant.AddMul(selfWant, selfWant)
			selfGot := copyInto(be, pre)
			selfGot.AddMul(selfGot, selfGot)
			if !pairsEqual(selfGot, selfWant) {
				t.Fatalf("trial %d backend %s: aliased AddMul diverges from serial", trial, be.Name())
			}
		}
	}
}

func pairsEqual(a, b Bool) bool {
	pa, pb := Pairs(a), Pairs(b)
	if len(pa) != len(pb) {
		return false
	}
	for i := range pa {
		if pa[i] != pb[i] {
			return false
		}
	}
	return true
}

// TestParallelAddMulConcurrentDestinations runs many AddMuls with shared
// read-only operands into distinct destinations at once — the engine's
// access pattern when several productions read the same non-terminal
// matrix. Under -race this flushes out any hidden write to an operand.
func TestParallelAddMulConcurrentDestinations(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, goroutines = 97, 8
	for _, be := range parallelBackends() {
		a := randomMatrix(rng, be, n, 3*n)
		b := randomMatrix(rng, be, n, 3*n)
		want := be.NewMatrix(n)
		want.AddMul(a, b)
		var wg sync.WaitGroup
		results := make([]Bool, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				dst := be.NewMatrix(n)
				dst.AddMul(a, b)
				results[g] = dst
			}(g)
		}
		wg.Wait()
		for g, got := range results {
			if !got.Equal(want) {
				t.Fatalf("backend %s: concurrent AddMul %d diverged", be.Name(), g)
			}
		}
	}
}
