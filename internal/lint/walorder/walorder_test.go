package walorder

import (
	"testing"

	"cfpq/internal/lint/linttest"
)

func TestWalorder(t *testing.T) {
	if testing.Short() {
		t.Skip("linttest builds export data for the whole module")
	}
	linttest.Run(t, Analyzer, "testdata/src/walorder")
}
