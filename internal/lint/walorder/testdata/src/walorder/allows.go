// Suppression-scope case: the directive covers its own line and the
// next; the third install is outside its reach and still fires.
package fixture

func (s *Service) registerGrammar(batch []int) error {
	//lint:allow cfpqlint/walorder fixture: deliberate install before journal
	s.entries["g"] = &graphEntry{}
	s.entries["h"] = &graphEntry{} // want `assignment to s\.entries\[\.\.\.\] mutates in-memory state before the journal write`
	return s.wal.AppendEdges(batch)
}
