// Fixture for the walorder analyzer: write-ahead ordering inside the
// known mutation entry points. WAL, Prepared, Service and graphEntry are
// stand-ins matched by bare type name.
package fixture

type WAL struct{ records int }

func (w *WAL) AppendEdges(batch []int) error {
	w.records += len(batch)
	return nil
}

type graphEntry struct {
	edges   []int
	version int
}

func (g *graphEntry) AddEdge(a, b int) { g.edges = append(g.edges, a, b) }

// Prepared.AddEdges journals before mutating: the good path, clean.
type Prepared struct {
	wal   *WAL
	g     *graphEntry
	count int
}

func (p *Prepared) AddEdges(batch []int) error {
	if err := p.wal.AppendEdges(batch); err != nil {
		return err
	}
	p.g.edges = append(p.g.edges, batch...)
	p.count += len(batch)
	return nil
}

// Service.AddEdges mutates shared state before the journal write: each
// early mutation is flagged.
type Service struct {
	wal     *WAL
	entries map[string]*graphEntry
}

func (s *Service) AddEdges(name string, batch []int) error {
	ge := s.entries[name]
	ge.edges = append(ge.edges, batch...) // want `assignment to ge\.edges mutates in-memory state before the journal write`
	ge.version++                          // want `update of ge\.version mutates in-memory state before the journal write`
	return s.wal.AppendEdges(batch)
}

// ApplyReplicatedEdges calls a mutating method on a shared entry before
// journaling: flagged.
func (s *Service) ApplyReplicatedEdges(batch []int) error {
	g := s.entries["default"]
	g.AddEdge(1, 2) // want `g\.AddEdge mutates in-memory state before the journal write`
	return s.wal.AppendEdges(batch)
}

// RegisterGraph populates a freshly allocated entry before the journal
// write — private until installed, so clean; the install itself happens
// after the journal call.
func (s *Service) RegisterGraph(name string) error {
	ge := &graphEntry{}
	ge.edges = append(ge.edges, 0)
	if err := s.wal.AppendEdges(nil); err != nil {
		return err
	}
	s.entries[name] = ge
	return nil
}

// BootstrapGraph never journals at all: flagged at the name.
func (s *Service) BootstrapGraph(name string) { // want `mutation entry point BootstrapGraph never journals`
	s.entries[name] = &graphEntry{}
}
