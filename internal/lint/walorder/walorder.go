// Package walorder verifies the write-ahead ordering invariant inside
// the known mutation entry points: the durable journal (WAL append /
// store create) must be written before any shared in-memory state is
// touched, so an acknowledged batch is always recoverable and a failed
// one leaves no trace.
//
// The check is positional within one entry-point body: every mutation of
// shared state (a method call that adds edges/bits to a graph or index
// reachable from the receiver, or an assignment into the receiver's
// fields or maps) must appear after the first journaling call. Freshly
// allocated entries (ge := &graphEntry{...}) are not shared until they
// are installed, so populating them before the journal write is fine;
// entries obtained from the receiver's state are shared and are not.
package walorder

import (
	"go/ast"
	"go/token"

	"cfpq/internal/lint"
)

// Analyzer is the walorder check.
var Analyzer = &lint.Analyzer{
	Name: "walorder",
	Doc:  "verify mutation entry points journal to the WAL/store before touching shared in-memory state",
	Run:  run,
}

// entryPoints are the mutation entry points, matched by method name on
// the given receiver type names. They are the paths PR 4 (durable store)
// and PR 7 (replication) established the write-ahead protocol on.
var entryPoints = map[string]map[string]bool{
	"AddEdges":             {"Prepared": true, "Service": true},
	"ApplyReplicatedEdges": {"Service": true},
	"RegisterGraph":        {"Service": true},
	"registerGrammar":      {"Service": true},
	"BootstrapGraph":       {"Service": true},
}

// journalMethods are the calls that constitute the durable write.
var journalMethods = map[string]bool{
	"AppendEdges":      true,
	"Append":           true,
	"AppendReplicated": true,
	"CreateGraph":      true,
	"CreateGraphAt":    true,
	"SaveGrammar":      true,
}

// journalReceivers are the named types the journal methods live on (the
// root package's WAL interface, the store, and the store's per-graph
// log).
var journalReceivers = map[string]bool{"WAL": true, "Store": true, "Log": true}

// mutMethods are method names that mutate a graph, index or matrix.
var mutMethods = map[string]bool{
	"AddEdge":          true,
	"EnsureNode":       true,
	"Set":              true,
	"Or":               true,
	"AddMul":           true,
	"Grow":             true,
	"internReplicated": true,
}

// sharedEntryTypes are per-name state entries: a value of one of these
// types read out of the receiver is shared serving state, while a
// freshly allocated one is still private.
var sharedEntryTypes = map[string]bool{"graphEntry": true, "grammarEntry": true, "indexEntry": true}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil {
				continue
			}
			recvs, isEntry := entryPoints[fn.Name.Name]
			if !isEntry {
				continue
			}
			recvName := receiverTypeName(pass, fn)
			if !recvs[recvName] {
				continue
			}
			checkEntryPoint(pass, fn)
		}
	}
	return nil
}

// receiverTypeName names the method's receiver type.
func receiverTypeName(pass *lint.Pass, fn *ast.FuncDecl) string {
	if len(fn.Recv.List) == 0 {
		return ""
	}
	if tv, ok := pass.TypesInfo.Types[fn.Recv.List[0].Type]; ok {
		return lint.TypeName(tv.Type)
	}
	return ""
}

// checkEntryPoint verifies journal-before-mutate ordering in one body.
func checkEntryPoint(pass *lint.Pass, fn *ast.FuncDecl) {
	recvObj := receiverObj(pass, fn)
	fresh := make(map[string]bool) // locals allocated in this body (not shared yet)
	journalPos := token.NoPos

	// First sweep: find the first journal call and the freshly allocated
	// entry locals.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if isFreshAlloc(rhs) {
					fresh[id.Name] = true
				}
			}
		case *ast.CallExpr:
			if journalPos == token.NoPos && isJournalCall(pass, n) {
				journalPos = n.Pos()
			}
		}
		return true
	})
	if journalPos == token.NoPos {
		pass.Reportf(fn.Name.Pos(), "mutation entry point %s never journals to the WAL/store; write-ahead ordering (journal, then mutate) is required", fn.Name.Name)
		return
	}

	// Second sweep: any shared-state mutation positioned before the first
	// journal call violates write-ahead ordering. Function literals are
	// skipped: they execute at call time, not where they are defined.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == nil || n.Pos() >= journalPos {
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if target, ok := mutationCall(pass, n, recvObj, fresh); ok {
				pass.Reportf(n.Pos(), "%s mutates in-memory state before the journal write; write-ahead ordering requires journaling first", target)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if target, ok := sharedStateLHS(pass, lhs, recvObj, fresh); ok {
					pass.Reportf(lhs.Pos(), "assignment to %s mutates in-memory state before the journal write; write-ahead ordering requires journaling first", target)
				}
			}
		case *ast.IncDecStmt:
			if target, ok := sharedStateLHS(pass, n.X, recvObj, fresh); ok {
				pass.Reportf(n.Pos(), "update of %s mutates in-memory state before the journal write; write-ahead ordering requires journaling first", target)
			}
		}
		return true
	})
}

// receiverObj returns the receiver identifier's object.
func receiverObj(pass *lint.Pass, fn *ast.FuncDecl) map[string]bool {
	names := make(map[string]bool)
	for _, field := range fn.Recv.List {
		for _, name := range field.Names {
			names[name.Name] = true
		}
	}
	return names
}

// isFreshAlloc reports whether rhs allocates a new value (&T{...},
// new(T), T{...}) rather than reading shared state.
func isFreshAlloc(rhs ast.Expr) bool {
	switch rhs := rhs.(type) {
	case *ast.UnaryExpr:
		if rhs.Op == token.AND {
			_, isLit := rhs.X.(*ast.CompositeLit)
			return isLit
		}
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := rhs.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// isJournalCall matches a durable-write call: a journal method on a WAL /
// Store / Log typed value.
func isJournalCall(pass *lint.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !journalMethods[sel.Sel.Name] {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	return journalReceivers[lint.TypeName(tv.Type)]
}

// mutationCall matches a state-mutating method call on shared state: the
// receiver chain must start at the method receiver or at a shared entry
// local (not a fresh allocation).
func mutationCall(pass *lint.Pass, call *ast.CallExpr, recvNames, fresh map[string]bool) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !mutMethods[sel.Sel.Name] {
		return "", false
	}
	base := lint.ReceiverBase(sel.X)
	if base == nil {
		return "", false
	}
	if recvNames[base.Name] {
		return renderSel(sel), true
	}
	if fresh[base.Name] {
		return "", false
	}
	if tv, ok := pass.TypesInfo.Types[base]; ok && sharedEntryTypes[lint.TypeName(tv.Type)] {
		return renderSel(sel), true
	}
	return "", false
}

// sharedStateLHS matches an assignment target inside the receiver's (or a
// shared entry's) state: a field selector or map/slice index rooted at it.
func sharedStateLHS(pass *lint.Pass, lhs ast.Expr, recvNames, fresh map[string]bool) (string, bool) {
	switch lhs.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr:
	default:
		return "", false
	}
	base := lint.ReceiverBase(lhs)
	if base == nil || fresh[base.Name] {
		return "", false
	}
	if recvNames[base.Name] {
		return exprString(lhs), true
	}
	if tv, ok := pass.TypesInfo.Types[base]; ok && sharedEntryTypes[lint.TypeName(tv.Type)] {
		return exprString(lhs), true
	}
	return "", false
}

// renderSel renders receiver.Method for the diagnostic.
func renderSel(sel *ast.SelectorExpr) string {
	return exprString(sel.X) + "." + sel.Sel.Name
}

// exprString renders simple selector/index chains for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return exprString(e.X)
	}
	return "state"
}
