// Package suite registers the repo's analyzers in one place, shared by
// the cmd/cfpqlint multichecker and the self-check test that keeps the
// tree clean under plain `go test ./...`.
package suite

import (
	"cfpq/internal/lint"
	"cfpq/internal/lint/ctxflow"
	"cfpq/internal/lint/lockscope"
	"cfpq/internal/lint/metricname"
	"cfpq/internal/lint/tracealloc"
	"cfpq/internal/lint/walorder"
)

// All returns every analyzer, in diagnostic-stable order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		ctxflow.Analyzer,
		lockscope.Analyzer,
		metricname.Analyzer,
		tracealloc.Analyzer,
		walorder.Analyzer,
	}
}

// ByName resolves a comma-separated analyzer list; an empty spec means
// all of them.
func ByName(spec string) ([]*lint.Analyzer, error) {
	if spec == "" {
		return All(), nil
	}
	byName := make(map[string]*lint.Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range splitComma(spec) {
		a, ok := byName[name]
		if !ok {
			return nil, &UnknownAnalyzerError{Name: name}
		}
		out = append(out, a)
	}
	return out, nil
}

// UnknownAnalyzerError names an analyzer that does not exist.
type UnknownAnalyzerError struct{ Name string }

func (e *UnknownAnalyzerError) Error() string {
	return "unknown analyzer " + e.Name + " (have: ctxflow, lockscope, metricname, tracealloc, walorder)"
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
