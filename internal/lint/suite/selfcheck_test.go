package suite

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"cfpq/internal/lint"
)

// TestTreeClean runs every analyzer over the whole module and asserts
// nothing survives //lint:allow suppression filtering — the same gate
// CI's cfpqlint step enforces, kept under plain `go test ./...` so a
// regression fails locally before it reaches CI.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" {
		t.Fatal("not inside a module")
	}
	root := filepath.Dir(gomod)
	pkgs, fset, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	diags, err := lint.RunAnalyzers(pkgs, fset, All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
