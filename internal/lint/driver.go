package lint

import (
	"go/token"
	"sort"
	"strings"
)

// Suppression comments. A finding is silenced by
//
//	//lint:allow cfpqlint/<name> <justification>
//
// on the finding's own line or the line immediately above it, or by
//
//	//lint:file-allow cfpqlint/<name> <justification>
//
// anywhere in the file (for files whose whole job is the deliberate
// exception, such as the durability layer's fsync-under-lock protocol).
// Several analyzers may be named, comma-separated. The justification text
// is free-form but expected: a suppression without a reason is a review
// comment waiting to happen.
const (
	allowDirective     = "lint:allow"
	fileAllowDirective = "lint:file-allow"
)

// suppressions records which (file, line) pairs are silenced per analyzer.
type suppressions struct {
	// lines maps analyzer name -> filename -> set of suppressed lines.
	lines map[string]map[string]map[int]bool
	// files maps analyzer name -> set of wholly suppressed filenames.
	files map[string]map[string]bool
}

func (s *suppressions) allows(d Diagnostic) bool {
	if s.files[d.Analyzer][d.Pos.Filename] {
		return true
	}
	return s.lines[d.Analyzer][d.Pos.Filename][d.Pos.Line]
}

func (s *suppressions) addLine(analyzer, file string, line int) {
	if s.lines[analyzer] == nil {
		s.lines[analyzer] = make(map[string]map[int]bool)
	}
	if s.lines[analyzer][file] == nil {
		s.lines[analyzer][file] = make(map[int]bool)
	}
	s.lines[analyzer][file][line] = true
}

func (s *suppressions) addFile(analyzer, file string) {
	if s.files[analyzer] == nil {
		s.files[analyzer] = make(map[string]bool)
	}
	s.files[analyzer][file] = true
}

// scanSuppressions builds the suppression index over the packages'
// comments.
func scanSuppressions(pkgs []*Package, fset *token.FileSet) *suppressions {
	sup := &suppressions{
		lines: make(map[string]map[string]map[int]bool),
		files: make(map[string]map[string]bool),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					pos := fset.Position(c.Pos())
					switch {
					case strings.HasPrefix(text, fileAllowDirective):
						for _, name := range directiveAnalyzers(text[len(fileAllowDirective):]) {
							sup.addFile(name, pos.Filename)
						}
					case strings.HasPrefix(text, allowDirective):
						for _, name := range directiveAnalyzers(text[len(allowDirective):]) {
							// The directive covers its own line and the
							// next, so it works both inline and as the
							// comment line above the finding.
							sup.addLine(name, pos.Filename, pos.Line)
							sup.addLine(name, pos.Filename, pos.Line+1)
						}
					}
				}
			}
		}
	}
	return sup
}

// directiveAnalyzers parses the analyzer list of an allow directive:
// the first whitespace-delimited field, split on commas, each entry
// expected as cfpqlint/<name>. Entries without the prefix are ignored
// (they belong to other tools' namespaces).
func directiveAnalyzers(rest string) []string {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil
	}
	var names []string
	for _, entry := range strings.Split(fields[0], ",") {
		if name, ok := strings.CutPrefix(entry, "cfpqlint/"); ok && name != "" {
			names = append(names, name)
		}
	}
	return names
}

// RunAnalyzers executes the analyzers over the packages and returns the
// findings that survive suppression filtering, sorted by position. The
// FileSet must be the one the packages were loaded with.
func RunAnalyzers(pkgs []*Package, fset *token.FileSet, analyzers []*Analyzer) ([]Diagnostic, error) {
	sup := scanSuppressions(pkgs, fset)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				if !sup.allows(d) {
					diags = append(diags, d)
				}
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return less(diags[i], diags[j]) })
	return diags, nil
}

func less(a, b Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Message < b.Message
}
