// Suppression-scope cases: the directive silences its own line and the
// next, nothing further, and only for the analyzer it names.
package fixture

// Allowed sends under the lock deliberately; the trailing directive
// silences exactly that line, and the send two lines later still fires.
func (p *Prepared) Allowed(ch chan int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ch <- p.n //lint:allow cfpqlint/lockscope fixture: deliberate send under lock
	p.n++
	ch <- p.n // want `channel send while holding Prepared lock`
}

// WrongAnalyzer's directive names ctxflow, so lockscope still fires on
// the covered line.
func (p *Prepared) WrongAnalyzer(ch chan int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	//lint:allow cfpqlint/ctxflow fixture: names the wrong analyzer
	ch <- p.n // want `channel send while holding Prepared lock`
}
