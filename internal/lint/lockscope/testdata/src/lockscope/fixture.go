// Fixture for the lockscope analyzer: blocking operations under a
// guarded struct's mutex. Prepared is a stand-in for the engine's
// guarded handle (guarded structs are matched by bare type name).
package fixture

import (
	"os"
	"sync"
	"time"
)

type Prepared struct {
	mu  sync.RWMutex
	n   int
	log *os.File
}

// Yield hands a caller-supplied callback control under the read lock —
// the iterate-under-RLock re-entrancy deadlock.
func (p *Prepared) Yield(yield func(int) bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	yield(p.n) // want `call to caller-supplied function yield while holding Prepared lock`
}

// Send performs a channel send under the lock.
func (p *Prepared) Send(ch chan int) {
	p.mu.Lock()
	ch <- p.n // want `channel send while holding Prepared lock`
	p.mu.Unlock()
}

// AfterUnlock releases first: clean.
func (p *Prepared) AfterUnlock(ch chan int) {
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
	ch <- p.n
}

// EarlyReturn unlocks on the error path only; the fall-through still
// holds the lock.
func (p *Prepared) EarlyReturn(bad bool, ch chan int) {
	p.mu.Lock()
	if bad {
		p.mu.Unlock()
		return
	}
	ch <- p.n // want `channel send while holding Prepared lock`
	p.mu.Unlock()
}

// TrySend is non-blocking by construction (select with default): clean.
func (p *Prepared) TrySend(ch chan int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case ch <- p.n:
	default:
	}
}

// Spawn's goroutine does not hold this goroutine's lock: clean.
func (p *Prepared) Spawn(ch chan int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		ch <- 1
	}()
}

// Sleep parks the goroutine under the lock.
func (p *Prepared) Sleep() {
	p.mu.Lock()
	defer p.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding Prepared lock`
}

// Flush fsyncs under the lock.
func (p *Prepared) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.log.Sync() // want `file I/O \(os\.File\.Sync\) while holding Prepared lock`
}

// Receive blocks on a channel receive under the lock.
func (p *Prepared) Receive(ch chan int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.n = <-ch // want `channel receive while holding Prepared lock`
}

// plain is not a guarded type; lockscope leaves it alone.
type plain struct {
	mu sync.Mutex
	n  int
}

func (pl *plain) send(ch chan int) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	ch <- pl.n
}
