// Package lockscope flags blocking operations reachable while a mutex on
// one of the engine's guarded structs is held.
//
// The serving stack's locks (Prepared.mu, Service.mu, the per-graph
// entry locks, the store's per-graph log locks, the subscription hub)
// protect hot paths that every query traverses; anything that can park
// the goroutine while one of them is held — a channel operation, file
// I/O and fsyncs, HTTP round trips, sleeping, or handing control to a
// caller-supplied callback (including iter.Seq yields, the
// iterate-under-RLock deadlock this repo once shipped and removed) —
// stalls every other request behind the lock, or deadlocks outright when
// the callback re-enters the same handle.
//
// Write-ahead journaling is the deliberate exception: the WAL append and
// fsync MUST happen under the write lock (that ordering is the
// durability protocol), so those sites carry //lint:allow suppressions
// with their justification instead of being special-cased here.
package lockscope

import (
	"go/ast"
	"go/token"
	"go/types"

	"cfpq/internal/lint"
)

// Analyzer is the lockscope check.
var Analyzer = &lint.Analyzer{
	Name: "lockscope",
	Doc:  "flag blocking operations (channel ops, file I/O, HTTP, sleeps, caller callbacks) performed while a guarded struct's mutex is held",
	Run:  run,
}

// guardedTypes are the structs whose mutexes fence the serving hot paths.
// Matching is by bare type name so testdata fixtures can declare their
// own stand-ins; the set mirrors the lock owners in the tree: the
// Prepared handle, the query Service and its per-graph/per-index entries,
// the durable Store and its per-graph logs, the read replica, and the
// subscription hubs.
var guardedTypes = map[string]bool{
	"Prepared":   true,
	"Service":    true,
	"Store":      true,
	"Replicator": true,
	"hub":        true,
	"subHub":     true,
	"graphEntry": true,
	"indexEntry": true,
	"graphLog":   true,
}

// journalReceivers are named types whose methods perform durable I/O
// (fsynced appends, snapshot writes); calling one is blocking by
// definition.
var journalReceivers = map[string]bool{
	"Store": true,
	"Log":   true,
	"WAL":   true,
}

// journalMethods are the durable-I/O method names matched on
// journalReceivers.
var journalMethods = map[string]bool{
	"AppendEdges":      true,
	"Append":           true,
	"AppendReplicated": true,
	"CreateGraph":      true,
	"CreateGraphAt":    true,
	"SaveGrammar":      true,
	"Snapshot":         true,
	"Compact":          true,
	"Sync":             true,
}

// osFileMethods are the *os.File methods that touch the disk.
var osFileMethods = map[string]bool{
	"Sync":        true,
	"Write":       true,
	"WriteAt":     true,
	"WriteString": true,
	"ReadAt":      true,
	"Truncate":    true,
}

// httpClientMethods block on a network round trip.
var httpClientMethods = map[string]bool{
	"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			s := &scanner{pass: pass, params: make(map[types.Object]bool)}
			s.addParams(fn.Type)
			s.stmtList(fn.Body.List)
		}
	}
	return nil
}

// heldLock is one acquired guarded mutex.
type heldLock struct {
	owner    string // guarded type name
	deferred bool   // released by defer: held until function end
}

// scanner walks one function body tracking which guarded locks are held.
type scanner struct {
	pass *lint.Pass
	held []heldLock
	// params collects the parameter objects of the function and of every
	// function literal scanned inside it: calls to these are
	// caller-supplied callbacks (iter.Seq yields included), as opposed to
	// calls to locally defined closures.
	params map[types.Object]bool
}

// addParams records ft's parameters as caller-supplied function values.
func (s *scanner) addParams(ft *ast.FuncType) {
	if ft == nil || ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if obj, ok := s.pass.TypesInfo.Defs[name]; ok {
				s.params[obj] = true
			}
		}
	}
}

// stmtList scans statements in order. Locks acquired in the list are
// scoped to its remainder unless released by a deferred unlock, which
// pins them for the rest of the function.
func (s *scanner) stmtList(list []ast.Stmt) {
	acquired := 0
	for _, st := range list {
		switch st := st.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if owner, locks := s.lockCall(call); locks {
					s.held = append(s.held, heldLock{owner: owner})
					acquired++
					continue
				}
				if owner, unlocks := s.unlockCall(call); unlocks {
					if s.release(owner) && acquired > 0 {
						acquired--
					}
					continue
				}
			}
			s.stmt(st)
		case *ast.DeferStmt:
			if owner, unlocks := s.unlockCall(st.Call); unlocks {
				s.pin(owner)
				continue
			}
			s.stmt(st)
		default:
			s.stmt(st)
		}
	}
	// Locks acquired in this list and not pinned by a deferred unlock go
	// out of scope with it.
	for i := 0; i < acquired; i++ {
		for j := len(s.held) - 1; j >= 0; j-- {
			if !s.held[j].deferred {
				s.held = append(s.held[:j], s.held[j+1:]...)
				break
			}
		}
	}
}

// nested scans a nested statement list (an if/for/select body, or a
// function literal) with its own copy of the lock state: an unlock on an
// early-return path inside the block must not clear the lock for the
// code that follows the block, and a lock acquired inside the block does
// not survive it.
func (s *scanner) nested(list []ast.Stmt) {
	saved := append([]heldLock(nil), s.held...)
	s.stmtList(list)
	s.held = saved
}

// lockCall reports whether call is guardedRecv.mu.Lock() / .RLock().
func (s *scanner) lockCall(call *ast.CallExpr) (owner string, ok bool) {
	return s.mutexCall(call, "Lock", "RLock")
}

// unlockCall reports whether call is guardedRecv.mu.Unlock() / .RUnlock().
func (s *scanner) unlockCall(call *ast.CallExpr) (owner string, ok bool) {
	return s.mutexCall(call, "Unlock", "RUnlock")
}

// mutexCall matches a call of one of the named methods on a sync.Mutex /
// sync.RWMutex field of a guarded struct and returns the struct's name.
func (s *scanner) mutexCall(call *ast.CallExpr, names ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
		}
	}
	if !match {
		return "", false
	}
	field, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if tv, ok := s.pass.TypesInfo.Types[field.X]; ok {
		if owner := lint.TypeName(tv.Type); guardedTypes[owner] {
			if isSyncMutex(s.pass.TypesInfo.Types[field].Type) {
				return owner, true
			}
		}
	}
	return "", false
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (or a
// pointer to one).
func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// release pops the most recent non-deferred lock of the owner.
func (s *scanner) release(owner string) bool {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].owner == owner && !s.held[i].deferred {
			s.held = append(s.held[:i], s.held[i+1:]...)
			return true
		}
	}
	return false
}

// pin marks the most recent lock of the owner as deferred-released.
func (s *scanner) pin(owner string) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].owner == owner && !s.held[i].deferred {
			s.held[i].deferred = true
			return
		}
	}
}

// stmt scans one statement (and its nested statements/expressions) under
// the current lock state.
func (s *scanner) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.BlockStmt:
		s.nested(st.List)
	case *ast.IfStmt:
		s.maybeStmt(st.Init)
		s.expr(st.Cond)
		s.nested(st.Body.List)
		s.maybeStmt(st.Else)
	case *ast.ForStmt:
		s.maybeStmt(st.Init)
		if st.Cond != nil {
			s.expr(st.Cond)
		}
		s.maybeStmt(st.Post)
		s.nested(st.Body.List)
	case *ast.RangeStmt:
		s.expr(st.X)
		s.nested(st.Body.List)
	case *ast.SwitchStmt:
		s.maybeStmt(st.Init)
		if st.Tag != nil {
			s.expr(st.Tag)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					s.expr(e)
				}
				s.nested(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		s.maybeStmt(st.Init)
		s.maybeStmt(st.Assign)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.nested(cc.Body)
			}
		}
	case *ast.SelectStmt:
		s.selectStmt(st)
	case *ast.GoStmt:
		// The spawned goroutine does not hold this goroutine's locks;
		// only the call's argument expressions are evaluated here.
		for _, arg := range st.Call.Args {
			if _, ok := arg.(*ast.FuncLit); ok {
				continue
			}
			s.expr(arg)
		}
	case *ast.DeferStmt:
		// Argument expressions are evaluated at defer time (under the
		// lock); the body of a deferred closure runs at return, which —
		// with a deferred unlock in LIFO order — may still be under the
		// lock, so it is scanned too.
		s.expr(st.Call)
	case *ast.SendStmt:
		s.blockingOp(st.Pos(), "channel send")
		s.expr(st.Chan)
		s.expr(st.Value)
	case *ast.ExprStmt:
		s.expr(st.X)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.expr(e)
		}
		for _, e := range st.Lhs {
			s.expr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.expr(e)
		}
	case *ast.LabeledStmt:
		s.stmt(st.Stmt)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.expr(v)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		s.expr(st.X)
	}
}

func (s *scanner) maybeStmt(st ast.Stmt) {
	if st != nil {
		s.stmt(st)
	}
}

// selectStmt scans a select. With a default clause every communication is
// non-blocking by construction, so the comm operations themselves are
// exempt; the clause bodies are scanned either way.
func (s *scanner) selectStmt(st *ast.SelectStmt) {
	hasDefault := false
	for _, c := range st.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	for _, c := range st.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm != nil && !hasDefault {
			s.blockingOp(cc.Comm.Pos(), "blocking select communication")
		}
		s.nested(cc.Body)
	}
}

// expr scans one expression for blocking operations.
func (s *scanner) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal reached here is either called in place or stored
			// for a call later in the same function — both execute under
			// the current lock state, so scan the body with it. (go
			// statements and AfterFunc callbacks are filtered before
			// reaching expr.)
			s.addParams(n.Type)
			s.nested(n.Body.List)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.blockingOp(n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			return s.call(n)
		}
		return true
	})
}

// call classifies one call expression; it returns false when the walk
// should not descend further (the call's arguments were handled here).
func (s *scanner) call(call *ast.CallExpr) bool {
	// Deferred-execution callback registrars: the closure runs later on
	// another goroutine, without this lock.
	if name, pkg := pkgFuncCallee(s.pass.TypesInfo, call); name == "AfterFunc" && (pkg == "time" || pkg == "context") {
		for _, arg := range call.Args {
			if _, ok := arg.(*ast.FuncLit); ok {
				continue
			}
			s.expr(arg)
		}
		return false
	}
	if len(s.held) > 0 {
		if what, ok := s.blockingCall(call); ok {
			s.blockingOp(call.Pos(), what)
		}
	}
	return true
}

// blockingOp reports a blocking operation if any guarded lock is held.
func (s *scanner) blockingOp(pos token.Pos, what string) {
	if len(s.held) == 0 {
		return
	}
	owner := s.held[len(s.held)-1].owner
	s.pass.Reportf(pos, "%s while holding %s lock; blocking operations under a guarded mutex stall every request behind it", what, owner)
}

// blockingCall classifies the callee of one call as blocking or not.
func (s *scanner) blockingCall(call *ast.CallExpr) (string, bool) {
	info := s.pass.TypesInfo
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		// Calling a function-typed parameter: a caller-supplied callback
		// (iter.Seq yields included) — handing it control under the lock
		// invites re-entrant deadlock. Locally defined closures are the
		// function's own code and are scanned directly instead.
		if obj, ok := info.Uses[fun]; ok && s.params[obj] {
			return "call to caller-supplied function " + fun.Name, true
		}
	case *ast.SelectorExpr:
		name, pkg := pkgFuncCallee(info, call)
		if pkg == "time" && name == "Sleep" {
			return "time.Sleep", true
		}
		if pkg == "net/http" && httpClientMethods[name] {
			return "net/http request", true
		}
		recv := recvTypeName(info, fun)
		switch {
		case recv == "File" && osFileMethods[name] && recvPkgPath(info, fun) == "os":
			return "file I/O (os.File." + name + ")", true
		case recv == "Client" && httpClientMethods[name]:
			return "net/http request", true
		case recv == "WaitGroup" && name == "Wait" && recvPkgPath(info, fun) == "sync":
			return "sync.WaitGroup.Wait", true
		case journalReceivers[recv] && journalMethods[name]:
			return "durable journal I/O (" + recv + "." + name + ")", true
		}
		// A call through a function-typed struct field is a stored
		// callback (trace hooks and the like).
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.FieldVal {
			if _, isFunc := sel.Type().Underlying().(*types.Signature); isFunc {
				return "call to callback field " + fun.Sel.Name, true
			}
		}
	}
	return "", false
}

// pkgFuncCallee matches a call to a package-level function pkg.Name and
// returns its name and package path; method calls return "" for the path.
func pkgFuncCallee(info *types.Info, call *ast.CallExpr) (name, pkgPath string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return sel.Sel.Name, ""
	}
	if pn, ok := info.Uses[ident].(*types.PkgName); ok {
		return sel.Sel.Name, pn.Imported().Path()
	}
	return sel.Sel.Name, ""
}

// recvTypeName names the receiver type of a method call selector.
func recvTypeName(info *types.Info, sel *ast.SelectorExpr) string {
	if tv, ok := info.Types[sel.X]; ok {
		return lint.TypeName(tv.Type)
	}
	return ""
}

// recvPkgPath returns the package path of the receiver's named type.
func recvPkgPath(info *types.Info, sel *ast.SelectorExpr) string {
	tv, ok := info.Types[sel.X]
	if !ok {
		return ""
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
		return n.Obj().Pkg().Path()
	}
	return ""
}
