package lockscope

import (
	"testing"

	"cfpq/internal/lint/linttest"
)

func TestLockscope(t *testing.T) {
	if testing.Short() {
		t.Skip("linttest builds export data for the whole module")
	}
	linttest.Run(t, Analyzer, "testdata/src/lockscope")
}
