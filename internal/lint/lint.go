// Package lint is a small, self-contained static-analysis framework in
// the style of golang.org/x/tools/go/analysis, built only on the standard
// library so the repo's custom vet checks need no module dependencies.
// It loads packages through `go list -export` (source-parses the module's
// own packages, resolves their imports from the build cache's export
// data), runs Analyzers over the typed syntax, and filters diagnostics
// through //lint:allow suppression comments.
//
// The analyzers themselves live in the subpackages lockscope, ctxflow,
// walorder, metricname and tracealloc; cmd/cfpqlint is the multichecker
// that runs them all. See the "Static analysis" section of the repository
// README for what each one enforces and how to suppress a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant check. Run inspects a single package
// through the Pass and reports findings via Pass.Reportf; returning an
// error aborts the whole lint run (reserved for analyzer bugs, not
// findings).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in suppression
	// comments (`//lint:allow cfpqlint/<name>`).
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run analyzes one package.
	Run func(*Pass) error
}

// Pass carries one package's typed syntax to an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test source files, parsed with
	// comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo maps expressions and identifiers to their types and
	// objects.
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned for file:line:col rendering.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional compiler format, so CI
// annotations and editors can link straight to the finding.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (cfpqlint/%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// TypeName returns the named type's name behind t, dereferencing one
// pointer level; "" when t is not (a pointer to) a named type. Analyzers
// match guarded structs by bare name so testdata fixtures can declare
// their own stand-ins.
func TypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// ReceiverBase peels a selector chain down to its base expression:
// p.wal.AppendEdges -> p.wal -> p. It returns the innermost *ast.Ident,
// or nil for non-identifier bases (function results, index expressions).
func ReceiverBase(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
