// Package tracealloc keeps the disabled-trace fast path allocation-free.
//
// internal/core's passTracer is nil when tracing is off, and the closure
// loops call its methods unconditionally — the discipline (PR 9) is that
// every method starts with a nil-receiver guard, so a disabled trace
// costs one pointer test per pass. Two things break that:
//
//   - a passTracer method without the leading nil guard (it would panic,
//     or worse, do real work when disabled), and
//   - an allocating argument at a call site (fmt.Sprintf, composite
//     literals, append/make, string concatenation, closures): arguments
//     are evaluated before the callee's guard can bail, so the allocation
//     lands on the fast path even with tracing off.
package tracealloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"cfpq/internal/lint"
)

// Analyzer is the tracealloc check.
var Analyzer = &lint.Analyzer{
	Name: "tracealloc",
	Doc:  "flag allocations on the nil-tracer fast path: unguarded passTracer methods and allocating arguments at their call sites",
	Run:  run,
}

// tracerType is the nil-when-disabled tracer's type name.
const tracerType = "passTracer"

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if recv := methodRecv(pass, fn); recv == tracerType {
				checkGuard(pass, fn)
			}
			checkCallSites(pass, fn)
		}
	}
	return nil
}

// methodRecv names fn's receiver type ("" for plain functions).
func methodRecv(pass *lint.Pass, fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	if tv, ok := pass.TypesInfo.Types[fn.Recv.List[0].Type]; ok {
		return lint.TypeName(tv.Type)
	}
	return ""
}

// checkGuard verifies the method starts with a nil-receiver guard:
// either `if recv == nil { return ... }` as the first statement, or a
// single-expression body of the form `return recv != nil && ...`.
func checkGuard(pass *lint.Pass, fn *ast.FuncDecl) {
	recvName := ""
	for _, field := range fn.Recv.List {
		for _, name := range field.Names {
			recvName = name.Name
		}
	}
	if recvName == "" || recvName == "_" {
		// No usable receiver name — the method cannot test itself.
		pass.Reportf(fn.Name.Pos(), "passTracer method %s has no named receiver to nil-guard; the disabled trace is a nil *passTracer", fn.Name.Name)
		return
	}
	if len(fn.Body.List) == 0 {
		return // empty body allocates nothing
	}
	switch first := fn.Body.List[0].(type) {
	case *ast.IfStmt:
		if isNilCheck(first.Cond, recvName, token.EQL) && endsInReturn(first.Body) {
			return
		}
	case *ast.ReturnStmt:
		// Expression form: return pt != nil && <cheap>.
		if len(first.Results) == 1 {
			if be, ok := first.Results[0].(*ast.BinaryExpr); ok && be.Op == token.LAND && isNilCheck(be.X, recvName, token.NEQ) {
				return
			}
		}
	}
	pass.Reportf(fn.Name.Pos(), "passTracer method %s must begin with a nil-receiver guard (if %s == nil { return }); a nil tracer is the disabled state", fn.Name.Name, recvName)
}

// isNilCheck matches `name <op> nil` (either operand order).
func isNilCheck(e ast.Expr, name string, op token.Token) bool {
	be, ok := e.(*ast.BinaryExpr)
	if !ok || be.Op != op {
		return false
	}
	isIdent := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == name
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isIdent(be.X) && isNil(be.Y)) || (isNil(be.X) && isIdent(be.Y))
}

// endsInReturn reports whether the guard body bails out.
func endsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}

// checkCallSites flags allocating arguments in calls to passTracer
// methods: the allocation happens before the callee's nil guard runs, so
// it is paid even with tracing disabled.
func checkCallSites(pass *lint.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok || lint.TypeName(tv.Type) != tracerType {
			return true
		}
		for _, arg := range call.Args {
			if what, ok := allocates(pass, arg); ok {
				pass.Reportf(arg.Pos(), "%s argument to %s.%s allocates before the nil-tracer guard can bail; compute it behind an enabled check instead", what, tracerType, sel.Sel.Name)
			}
		}
		return true
	})
}

// allocates conservatively classifies expressions that allocate when
// evaluated.
func allocates(pass *lint.Pass, e ast.Expr) (string, bool) {
	// Constants fold away entirely, whatever their syntax.
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return "", false
	}
	switch e := e.(type) {
	case *ast.CompositeLit:
		return "composite literal", true
	case *ast.FuncLit:
		return "closure", true
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			if tv, ok := pass.TypesInfo.Types[e]; ok {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					return "string concatenation", true
				}
			}
		}
	case *ast.CallExpr:
		switch fun := e.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" || fun.Name == "make" || fun.Name == "new" {
				if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
					return fun.Name, true
				}
			}
		case *ast.SelectorExpr:
			if id, ok := fun.X.(*ast.Ident); ok {
				if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
					return "fmt." + fun.Sel.Name, true
				}
			}
		}
	}
	return "", false
}
