// Fixture for the tracealloc analyzer: passTracer is a stand-in for
// internal/core's nil-when-disabled tracer (matched by bare type name).
package fixture

import "fmt"

type passTracer struct {
	events []string
	passes int
}

// onPass is properly guarded: clean.
func (pt *passTracer) onPass(ev string) {
	if pt == nil {
		return
	}
	pt.events = append(pt.events, ev)
}

// enabled uses the expression-form guard: clean.
func (pt *passTracer) enabled() bool { return pt != nil && pt.passes > 0 }

// onIndex is guarded: clean.
func (pt *passTracer) onIndex(fn func() int, vals []int) {
	if pt == nil {
		return
	}
	if fn != nil {
		pt.passes += fn()
	}
	pt.passes += len(vals)
}

// onProduct lacks the nil-receiver guard: flagged at the name.
func (pt *passTracer) onProduct(ev string) { // want `must begin with a nil-receiver guard`
	pt.events = append(pt.events, ev)
}

func drive(pt *passTracer, n int, label string) {
	pt.onPass("constant pass")
	pt.onPass("pass " + "constant")
	pt.onPass(fmt.Sprintf("pass %d", n)) // want `fmt\.Sprintf argument to passTracer\.onPass allocates`
	pt.onPass("pass " + label)           // want `string concatenation argument to passTracer\.onPass allocates`
	pt.onIndex(nil, nil)
	pt.onIndex(func() int { return n }, nil) // want `closure argument to passTracer\.onIndex allocates`
	pt.onIndex(nil, []int{n})                // want `composite literal argument to passTracer\.onIndex allocates`
}
