// Suppression-scope case: the trailing directive silences its own line;
// the identical call two lines later still fires.
package fixture

import "fmt"

func allowedDrive(pt *passTracer, n int) {
	pt.onPass(fmt.Sprintf("pass %d", n)) //lint:allow cfpqlint/tracealloc fixture: cold path, readability wins
	n++
	pt.onPass(fmt.Sprintf("pass %d", n)) // want `fmt\.Sprintf argument to passTracer\.onPass allocates`
}
