// Package linttest is the analysistest-style harness for the repo's
// custom analyzers: it type-checks a testdata fixture package, runs one
// analyzer over it (through the same suppression-filtering driver
// cmd/cfpqlint uses, so //lint:allow fixtures exercise the real code
// path), and compares the surviving diagnostics against the fixture's
// `// want "regexp"` comments line by line.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"cfpq/internal/lint"
)

// moduleRoot locates the module directory so fixtures resolve imports
// against the same export data as the real tree.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatal("linttest: not inside a module")
	}
	return filepath.Dir(gomod)
}

var (
	exportOnce sync.Once
	exportErr  error
	exports    map[string]string
)

// exportData builds (once per test process) the import-path -> export
// file map covering the whole standard library plus the module's own
// packages, so fixtures may import either.
func exportData(t *testing.T) map[string]string {
	t.Helper()
	exportOnce.Do(func() {
		exports, exportErr = lint.ExportData(moduleRoot(t), "./...", "std")
	})
	if exportErr != nil {
		t.Fatalf("linttest: building export data: %v", exportErr)
	}
	return exports
}

// want is one expected diagnostic.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads the fixture package at dir (conventionally
// testdata/src/<name>, relative to the test), runs the analyzer over it
// with suppression filtering, and checks the diagnostics against the
// fixture's want comments.
func Run(t *testing.T, analyzer *lint.Analyzer, dir string) {
	t.Helper()
	fset := token.NewFileSet()
	files, wants := parseFixture(t, fset, dir)
	imp := lint.NewImporter(fset, exportData(t))
	tpkg, info, err := lint.CheckFiles(fset, imp, "fixture/"+filepath.Base(dir), files)
	if err != nil {
		t.Fatalf("linttest: fixture %s does not type-check: %v", dir, err)
	}
	pkg := &lint.Package{PkgPath: tpkg.Path(), Dir: dir, Files: files, Types: tpkg, Info: info}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, fset, []*lint.Analyzer{analyzer})
	if err != nil {
		t.Fatalf("linttest: running %s on %s: %v", analyzer.Name, dir, err)
	}
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched want on the diagnostic's line whose
// pattern matches the message.
func claim(wants []*want, d lint.Diagnostic) bool {
	for _, w := range wants {
		if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// parseFixture parses every .go file of the fixture directory and
// extracts its want comments.
func parseFixture(t *testing.T, fset *token.FileSet, dir string) ([]*ast.File, []*want) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("linttest: no fixture files in %s", dir)
	}
	var files []*ast.File
	var wants []*want
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		files = append(files, f)
		ws, err := fileWants(fset, f)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		wants = append(wants, ws...)
	}
	return files, wants
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// fileWants extracts `// want "re" ["re" ...]` expectations from one file.
func fileWants(fset *token.FileSet, f *ast.File) ([]*want, error) {
	var wants []*want
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			patterns, err := splitQuoted(m[1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
			}
			for _, p := range patterns {
				re, err := regexp.Compile(p)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
				}
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: p})
			}
		}
	}
	return wants, nil
}

// splitQuoted parses a sequence of Go-quoted strings ("..." or `...`).
func splitQuoted(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("expected quoted pattern at %q", s)
		}
		// Find the end of this quoted token by scanning for the closing
		// quote (double-quoted strings may contain escaped quotes).
		end := -1
		if s[0] == '`' {
			if i := strings.IndexByte(s[1:], '`'); i >= 0 {
				end = i + 1
			}
		} else {
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern in %q", s)
		}
		tok := s[:end+1]
		unq, err := strconv.Unquote(tok)
		if err != nil {
			return nil, fmt.Errorf("unquoting %q: %v", tok, err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end+1:])
	}
	return out, nil
}

// CheckFixture type-checks the fixture without running any analyzer —
// used to assert fixtures stay compilable as the tree's APIs move.
func CheckFixture(t *testing.T, dir string) {
	t.Helper()
	fset := token.NewFileSet()
	files, _ := parseFixture(t, fset, dir)
	imp := lint.NewImporter(fset, exportData(t))
	if _, _, err := lint.CheckFiles(fset, imp, "fixture/"+filepath.Base(dir), files); err != nil {
		t.Fatalf("linttest: fixture %s does not type-check: %v", dir, err)
	}
}
