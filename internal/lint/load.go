package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
}

// Load type-checks the module packages matching patterns (run from dir)
// and returns them with the FileSet positions resolve against.
//
// The loader leans on the go tool rather than reimplementing it:
// `go list -export -deps` compiles every dependency into the build cache
// and reports the export-data file per import path, so the module's own
// packages can be parsed from source and type-checked with the gc
// importer resolving imports straight from those files — no network, no
// third-party loader, and exactly the file set `go build` would use.
func Load(dir string, patterns ...string) ([]*Package, *token.FileSet, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	imp := NewImporter(fset, exportMap(listed))
	var pkgs []*Package
	for _, lp := range listed {
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPkg(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, fset, nil
}

// goList runs `go list -export -deps -json` and decodes the stream.
func goList(dir string, patterns ...string) ([]listedPkg, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,Export,Standard,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// A fixed cgo setting keeps the export data self-consistent across
	// environments with and without a C toolchain.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var listed []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// exportMap indexes export-data files by import path.
func exportMap(listed []listedPkg) map[string]string {
	m := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			m[lp.ImportPath] = lp.Export
		}
	}
	return m
}

// NewImporter returns a types.Importer resolving import paths through the
// given export-data files (as produced by exportMap over `go list -export
// -deps` output). The linttest harness shares it so fixtures can import
// both standard-library and module packages.
func NewImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// ExportData builds the export map for the packages matching patterns —
// the loader's `go list` step exposed for the linttest harness.
func ExportData(dir string, patterns ...string) (map[string]string, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return exportMap(listed), nil
}

// checkPkg parses and type-checks one package from source.
func checkPkg(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, info, err := CheckFiles(fset, imp, path, files)
	if err != nil {
		return nil, err
	}
	return &Package{PkgPath: path, Dir: dir, Files: files, Types: pkg, Info: info}, nil
}

// CheckFiles type-checks an already-parsed file set as one package.
func CheckFiles(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(path, fset, files, info)
	if firstErr != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %v", path, firstErr)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return pkg, info, nil
}
