// Suppression-scope case: the directive covers its own line and the
// next; the registration two lines down still fires.
package fixture

func allowed(reg *Registry) {
	//lint:allow cfpqlint/metricname fixture: legacy name kept for dashboard compatibility
	reg.Counter("legacy-name", "grandfathered")
	reg.Counter("legacy-name-two", "not covered") // want `not snake_case`
}
