// Wrapper-following cases: names that reach a registration method
// through a named wrapper or the function-literal bridge pattern are
// vetted at the wrapper's call sites.
package fixture

// registerCounter forwards its name parameter into a registration call,
// making it a wrapper.
func registerCounter(reg *Registry, name string) {
	reg.Counter(name, "wrapped")
}

func useNamedWrapper(reg *Registry) {
	registerCounter(reg, "wrapped_total")
	registerCounter(reg, "wrapped") // want `must end in _total`
}

// useLitWrapper is the function-literal bridge internal/server's
// metrics.go uses for its CounterFunc registrations.
func useLitWrapper(reg *Registry) {
	counter := func(name, help string) { reg.Counter(name, help) }
	counter("bridged_total", "good")
	counter("Bridged_total", "bad") // want `not snake_case`
}
