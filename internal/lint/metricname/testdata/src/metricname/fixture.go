// Fixture for the metricname analyzer: constant names and labels are
// vetted with the real obs.CheckName/CheckLabel rules. Registry is a
// stand-in matched by bare type name.
package fixture

type Registry struct{}

func (r *Registry) Counter(name, help string)                                           {}
func (r *Registry) CounterVec(name, help string, labels ...string)                      {}
func (r *Registry) CounterFunc(name, help string, fn func() float64)                    {}
func (r *Registry) Gauge(name, help string)                                             {}
func (r *Registry) GaugeVec(name, help string, labels ...string)                        {}
func (r *Registry) Histogram(name, help string, buckets []float64)                      {}
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) {}

func register(reg *Registry) {
	reg.Counter("requests_total", "good")
	reg.Counter("Requests_total", "bad case") // want `not snake_case`
	reg.Counter("requests", "bad suffix")     // want `must end in _total`
	reg.Gauge("queue_depth_entries", "good")
	reg.Gauge("queue_depth", "bad suffix") // want `must end in a unit suffix`
	reg.Histogram("latency_seconds", "good", nil)
	reg.CounterVec("hits_total", "good", "route", "Method") // want `invalid label name "Method"`
	name := dynamicName()
	reg.Counter(name, "dynamic") // want `not a compile-time constant`
}

func dynamicName() string { return "x_total" }
