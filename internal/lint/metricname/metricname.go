// Package metricname lifts internal/obs's metric-name registration panic
// to compile time: every constant name passed to a Registry registration
// method (Counter, GaugeVec, HistogramVec, ...) is validated with the
// exact same obs.CheckName / obs.CheckLabel rules the runtime enforces —
// snake_case, counters ending in _total, gauges and histograms ending in
// a unit suffix.
//
// Names that reach a registration method through a local wrapper
// function (the pattern internal/server's metrics.go uses for its
// CounterFunc bridges) are followed one level: the wrapper's call sites
// are vetted at the parameter position the name flows through. A name
// the analyzer cannot resolve to a compile-time constant is flagged too:
// a dynamic metric name defeats compile-time vetting and indicates label
// data leaking into the name.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/types"

	"cfpq/internal/lint"
	"cfpq/internal/obs"
)

// Analyzer is the metricname check.
var Analyzer = &lint.Analyzer{
	Name: "metricname",
	Doc:  "validate constant metric names and labels passed to internal/obs registration at compile time",
	Run:  run,
}

// regMethods maps Registry registration methods to the metric kind their
// name argument is checked as, plus the index where label names start
// (-1: the method takes no label names).
type regMethod struct {
	kind      obs.Kind
	labelsAt  int
	hasLabels bool
}

var regMethods = map[string]regMethod{
	"Counter":      {kind: obs.KindCounter},
	"CounterVec":   {kind: obs.KindCounter, labelsAt: 2, hasLabels: true},
	"CounterFunc":  {kind: obs.KindCounter},
	"Gauge":        {kind: obs.KindGauge},
	"GaugeVec":     {kind: obs.KindGauge, labelsAt: 2, hasLabels: true},
	"GaugeFunc":    {kind: obs.KindGauge},
	"Histogram":    {kind: obs.KindHistogram},
	"HistogramVec": {kind: obs.KindHistogram, labelsAt: 3, hasLabels: true},
}

func run(pass *lint.Pass) error {
	// wrapper records functions that forward a parameter into a
	// registration method's name argument: function object -> (parameter
	// index, kind).
	type wrapped struct {
		paramIndex int
		kind       obs.Kind
	}
	wrappers := make(map[types.Object]wrapped)

	// First sweep: vet direct registration calls; discover wrappers.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			rm, ok := regMethods[sel.Sel.Name]
			if !ok || !isRegistry(pass, sel.X) || len(call.Args) == 0 {
				return true
			}
			checkLabels(pass, call, rm)
			name, isConst := constString(pass, call.Args[0])
			if isConst {
				if err := obs.CheckName(rm.kind, name); err != nil {
					pass.Reportf(call.Args[0].Pos(), "%v", err)
				}
				return true
			}
			// Not constant: a parameter of the enclosing function makes
			// that function a registration wrapper whose call sites are
			// vetted instead; anything else is a dynamic name.
			if obj, idx, ok := enclosingParam(pass, f, call.Args[0]); ok {
				wrappers[obj] = wrapped{paramIndex: idx, kind: rm.kind}
			} else {
				pass.Reportf(call.Args[0].Pos(), "metric name is not a compile-time constant; dynamic names defeat vetting and usually mean label data in the name")
			}
			return true
		})
	}
	if len(wrappers) == 0 {
		return nil
	}
	// Second sweep: vet the wrappers' call sites.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var obj types.Object
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				obj = pass.TypesInfo.Uses[fun]
			case *ast.SelectorExpr:
				obj = pass.TypesInfo.Uses[fun.Sel]
			}
			w, ok := wrappers[obj]
			if !ok || w.paramIndex >= len(call.Args) {
				return true
			}
			arg := call.Args[w.paramIndex]
			name, isConst := constString(pass, arg)
			if !isConst {
				pass.Reportf(arg.Pos(), "metric name is not a compile-time constant; dynamic names defeat vetting and usually mean label data in the name")
				return true
			}
			if err := obs.CheckName(w.kind, name); err != nil {
				pass.Reportf(arg.Pos(), "%v", err)
			}
			return true
		})
	}
	return nil
}

// checkLabels vets the constant label-name arguments of a Vec
// registration.
func checkLabels(pass *lint.Pass, call *ast.CallExpr, rm regMethod) {
	if !rm.hasLabels {
		return
	}
	for i := rm.labelsAt; i < len(call.Args); i++ {
		if label, ok := constString(pass, call.Args[i]); ok {
			if err := obs.CheckLabel(label); err != nil {
				pass.Reportf(call.Args[i].Pos(), "%v", err)
			}
		}
	}
}

// isRegistry reports whether e is (a pointer to) a type named Registry —
// matched by bare name so fixtures may declare a stand-in.
func isRegistry(pass *lint.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	return lint.TypeName(tv.Type) == "Registry"
}

// constString resolves e to a compile-time constant string.
func constString(pass *lint.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// enclosingParam finds the function whose parameter e is and returns the
// object call sites resolve that function through, plus the parameter's
// index. Two shapes are recognized: a named function declaration (call
// sites use the function object), and a function literal bound to a
// variable — `counter := func(name, help string, ...) {...}` — where call
// sites use the variable object.
func enclosingParam(pass *lint.Pass, f *ast.File, e ast.Expr) (types.Object, int, bool) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil, 0, false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil, 0, false
	}
	var found types.Object
	idx := 0
	match := func(params *ast.FieldList, callee types.Object) {
		if found != nil || callee == nil || params == nil {
			return
		}
		i := 0
		for _, field := range params.List {
			for _, name := range field.Names {
				if pass.TypesInfo.Defs[name] == obj {
					found = callee
					idx = i
				}
				i++
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			match(n.Type.Params, pass.TypesInfo.Defs[n.Name])
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				lit, ok := rhs.(*ast.FuncLit)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				if lhs, ok := n.Lhs[i].(*ast.Ident); ok {
					callee := pass.TypesInfo.Defs[lhs]
					if callee == nil {
						callee = pass.TypesInfo.Uses[lhs]
					}
					match(lit.Type.Params, callee)
				}
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				if lit, ok := v.(*ast.FuncLit); ok && i < len(n.Names) {
					match(lit.Type.Params, pass.TypesInfo.Defs[n.Names[i]])
				}
			}
		}
		return found == nil
	})
	if found == nil {
		return nil, 0, false
	}
	return found, idx, true
}
