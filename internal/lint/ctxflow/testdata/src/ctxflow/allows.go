// Suppression-scope cases: a //lint:allow directive silences its own
// line and the next line, nothing further.
package fixture

import "context"

// Allowed carries a trailing suppression: silenced.
func Allowed() error {
	return helper(context.Background()) //lint:allow cfpqlint/ctxflow fixture: deliberate detached context
}

// AllowedAbove is silenced by a directive on the preceding line.
func AllowedAbove() error {
	//lint:allow cfpqlint/ctxflow fixture: deliberate detached context
	return helper(context.Background())
}

// NotAllowed is outside both directives' reach: still flagged.
func NotAllowed() error {
	return helper(context.Background()) // want `context\.Background\(\)`
}

// WrongAnalyzer's directive names a different analyzer, so ctxflow still
// fires on the line it covers.
func WrongAnalyzer() error {
	//lint:allow cfpqlint/lockscope fixture: names the wrong analyzer
	return helper(context.Background()) // want `context\.Background\(\)`
}
