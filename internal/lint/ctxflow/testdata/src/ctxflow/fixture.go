// Fixture for the ctxflow analyzer: root contexts manufactured in
// library code and exported functions that drop their ctx parameter.
package fixture

import "context"

func helper(ctx context.Context) error { return ctx.Err() }

// Query manufactures a root context in library code: flagged.
func Query() error {
	return helper(context.Background()) // want `context\.Background\(\) in library code`
}

// Todo is the TODO variant: flagged.
func Todo() error {
	return helper(context.TODO()) // want `context\.TODO\(\) in library code`
}

// Drops accepts a context it never threads: flagged at the name.
func Drops(ctx context.Context, n int) int { // want `Drops accepts a context\.Context but never uses it`
	return n + 1
}

// Threads uses its context: clean.
func Threads(ctx context.Context) error { return helper(ctx) }

// Discard names the parameter _, a deliberate drop: clean.
func Discard(_ context.Context) int { return 0 }

// unexported functions may drop ctx — only exported API promises
// cancellation: clean.
func drops(ctx context.Context) int { return 1 }

var _ = drops
