// Package ctxflow enforces context discipline in library code.
//
// Two rules:
//
//  1. context.Background() / context.TODO() must not appear in non-main,
//     non-test packages. A library call that manufactures its own root
//     context swallows the caller's cancellation and deadline — the bug
//     this repo's Prepared sugar methods shipped with until cfpqlint
//     caught them. Deliberate ctx-less convenience wrappers (the
//     deprecated one-shot API) carry //lint:allow suppressions stating
//     why no caller context exists.
//
//  2. An exported function or method that accepts a context.Context must
//     use it. Accepting ctx and dropping it on the floor is worse than
//     not accepting one: the signature promises cancellation the
//     implementation ignores.
package ctxflow

import (
	"go/ast"
	"go/types"

	"cfpq/internal/lint"
)

// Analyzer is the ctxflow check.
var Analyzer = &lint.Analyzer{
	Name: "ctxflow",
	Doc:  "flag context.Background()/TODO() in library code and exported functions that accept a ctx but never use it",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkRootContexts(pass, fn)
			checkUnusedCtx(pass, fn)
		}
	}
	return nil
}

// checkRootContexts flags context.Background() and context.TODO() calls.
func checkRootContexts(pass *lint.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
		if !ok || pn.Imported().Path() != "context" {
			return true
		}
		pass.Reportf(call.Pos(), "context.%s() in library code swallows the caller's cancellation; accept and thread a ctx parameter instead", sel.Sel.Name)
		return true
	})
}

// checkUnusedCtx flags exported functions with an unused context
// parameter.
func checkUnusedCtx(pass *lint.Pass, fn *ast.FuncDecl) {
	if !fn.Name.IsExported() {
		return
	}
	ctxObj := contextParam(pass, fn)
	if ctxObj == nil {
		return
	}
	used := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == ctxObj {
			used = true
		}
		return !used
	})
	if !used {
		pass.Reportf(fn.Name.Pos(), "exported %s accepts a context.Context but never uses it; thread it into the calls it gates or drop the parameter", fn.Name.Name)
	}
}

// contextParam returns the object of fn's context.Context parameter, or
// nil. Parameters named _ are deliberate discards and are skipped.
func contextParam(pass *lint.Pass, fn *ast.FuncDecl) types.Object {
	if fn.Type.Params == nil {
		return nil
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[name]
			if !ok || obj == nil {
				continue
			}
			if named, ok := obj.Type().(*types.Named); ok {
				o := named.Obj()
				if o.Name() == "Context" && o.Pkg() != nil && o.Pkg().Path() == "context" {
					return obj
				}
			}
		}
	}
	return nil
}
