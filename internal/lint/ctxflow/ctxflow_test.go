package ctxflow

import (
	"testing"

	"cfpq/internal/lint/linttest"
)

func TestCtxflow(t *testing.T) {
	if testing.Short() {
		t.Skip("linttest builds export data for the whole module")
	}
	linttest.Run(t, Analyzer, "testdata/src/ctxflow")
}
