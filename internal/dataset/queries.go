package dataset

import "cfpq/internal/grammar"

// Query1 returns the paper's Query 1 grammar (Figure 10): the classic
// same-generation query retrieving concepts on the same layer of the class
// hierarchy, over both subClassOf and type edges.
//
//	S → subClassOf⁻¹ S subClassOf
//	S → type⁻¹ S type
//	S → subClassOf⁻¹ subClassOf
//	S → type⁻¹ type
func Query1() *grammar.Grammar {
	return grammar.MustParse(`
		S -> subClassOf_r S subClassOf
		S -> type_r S type
		S -> subClassOf_r subClassOf
		S -> type_r type
	`)
}

// Query2 returns the paper's Query 2 grammar (Figure 11): concepts on
// adjacent layers of the class hierarchy.
//
//	S → B subClassOf
//	S → subClassOf
//	B → subClassOf⁻¹ B subClassOf
//	B → subClassOf⁻¹ subClassOf
func Query2() *grammar.Grammar {
	return grammar.MustParse(`
		S -> B subClassOf
		S -> subClassOf
		B -> subClassOf_r B subClassOf
		B -> subClassOf_r subClassOf
	`)
}

// Query returns query q (1 or 2) or panics.
func Query(q int) *grammar.Grammar {
	switch q {
	case 1:
		return Query1()
	case 2:
		return Query2()
	default:
		panic("dataset: query must be 1 or 2")
	}
}

// QueryCNF returns the CNF form of query q.
func QueryCNF(q int) *grammar.CNF {
	return grammar.MustCNF(Query(q))
}
