// Package dataset provides the evaluation workload of the paper: the two
// same-generation query grammars (Figures 10 and 11) and synthetic stand-ins
// for the 14 RDF ontology graphs of Tables 1 and 2.
//
// The original ontology files (skos, foaf, wine, pizza, … from Zhang et
// al.) are not redistributable here, so each graph is generated
// deterministically with the same name and the same #triples count as the
// paper reports. Graphs follow the ontology shape the queries inspect — a
// subClassOf class hierarchy (uniform random recursive tree) plus type
// edges from individuals to classes — and every triple (o, p, s) is
// expanded to the edge pair (o, p, s), (s, p⁻¹, o) exactly as in the paper.
// The synthetic graphs g1, g2 and g3 repeat funding, wine and pizza eight
// times, matching the paper's triple counts (1086×8 = 8688, 1839×8 = 14712,
// 1980×8 = 15840).
package dataset

import (
	"fmt"
	"math/rand"

	"cfpq/internal/graph"
)

// Dataset is one evaluation graph.
type Dataset struct {
	// Name as it appears in the paper's tables.
	Name string
	// Triples is the paper's #triples count; the generated triple set has
	// exactly this size (before the ×2 edge expansion, and per copy for
	// the repeated graphs).
	Triples int
	// Synthetic marks the repeated graphs g1–g3, for which the paper omits
	// the dense implementation.
	Synthetic bool

	base   string // base dataset name for repeated graphs
	copies int    // 1 for plain ontologies
	seed   int64
}

// registry lists the 14 datasets in the paper's table order.
var registry = []Dataset{
	{Name: "skos", Triples: 252, seed: 1, copies: 1},
	{Name: "generations", Triples: 273, seed: 2, copies: 1},
	{Name: "travel", Triples: 277, seed: 3, copies: 1},
	{Name: "univ-bench", Triples: 293, seed: 4, copies: 1},
	{Name: "atom-primitive", Triples: 425, seed: 5, copies: 1},
	{Name: "biomedical-measure-primitive", Triples: 459, seed: 6, copies: 1},
	{Name: "foaf", Triples: 631, seed: 7, copies: 1},
	{Name: "people-pets", Triples: 640, seed: 8, copies: 1},
	{Name: "funding", Triples: 1086, seed: 9, copies: 1},
	{Name: "wine", Triples: 1839, seed: 10, copies: 1},
	{Name: "pizza", Triples: 1980, seed: 11, copies: 1},
	{Name: "g1", Triples: 8688, Synthetic: true, base: "funding", copies: 8},
	{Name: "g2", Triples: 14712, Synthetic: true, base: "wine", copies: 8},
	{Name: "g3", Triples: 15840, Synthetic: true, base: "pizza", copies: 8},
}

// Graphs returns the 14 datasets in the paper's table order.
func Graphs() []Dataset {
	out := make([]Dataset, len(registry))
	copy(out, registry)
	return out
}

// ByName returns the named dataset.
func ByName(name string) (Dataset, bool) {
	for _, d := range registry {
		if d.Name == name {
			return d, true
		}
	}
	return Dataset{}, false
}

// Build materialises the graph (with inverse edges).
func (d Dataset) Build() *graph.Graph {
	if d.copies > 1 && d.base != "" {
		base, ok := ByName(d.base)
		if !ok {
			panic(fmt.Sprintf("dataset: unknown base %q", d.base))
		}
		g, _ := graph.FromTriples(base.triples())
		return graph.Repeat(g, d.copies)
	}
	g, _ := graph.FromTriples(d.triples())
	return g
}

// TripleSet returns the dataset's synthetic RDF triples (base triples for
// the repeated graphs g1–g3 are those of their base ontology, returned once
// per copy concatenated with per-copy renamed IRIs).
func (d Dataset) TripleSet() []graph.Triple {
	if d.copies > 1 && d.base != "" {
		base, ok := ByName(d.base)
		if !ok {
			panic(fmt.Sprintf("dataset: unknown base %q", d.base))
		}
		bt := base.triples()
		out := make([]graph.Triple, 0, len(bt)*d.copies)
		for c := 0; c < d.copies; c++ {
			for _, t := range bt {
				out = append(out, graph.Triple{
					Subject:   fmt.Sprintf("copy%d/%s", c, t.Subject),
					Predicate: t.Predicate,
					Object:    fmt.Sprintf("copy%d/%s", c, t.Object),
				})
			}
		}
		return out
	}
	return d.triples()
}

// triples generates the base ontology: exactly d.Triples triples — a class
// tree over roughly a third of them (uniform random attachment, expected
// depth O(log n)) plus deduplicated type edges from individuals to classes.
func (d Dataset) triples() []graph.Triple {
	n := d.Triples
	classes := n/3 + 2
	if classes > n+1 {
		classes = n + 1
	}
	rng := rand.New(rand.NewSource(d.seed))
	triples := make([]graph.Triple, 0, n)
	class := func(i int) string { return fmt.Sprintf("%s/class%d", d.Name, i) }
	inst := func(i int) string { return fmt.Sprintf("%s/inst%d", d.Name, i) }
	for i := 1; i < classes; i++ {
		triples = append(triples, graph.Triple{
			Subject:   class(i),
			Predicate: "subClassOf",
			Object:    class(rng.Intn(i)),
		})
	}
	typeTriples := n - (classes - 1)
	instances := typeTriples/2 + 1
	seen := map[[2]int]bool{}
	for len(triples) < n {
		key := [2]int{rng.Intn(instances), rng.Intn(classes)}
		if seen[key] {
			continue
		}
		seen[key] = true
		triples = append(triples, graph.Triple{
			Subject:   inst(key[0]),
			Predicate: "type",
			Object:    class(key[1]),
		})
	}
	return triples
}
