package dataset

import (
	"reflect"
	"testing"

	"cfpq/internal/core"
	"cfpq/internal/grammar"
	"cfpq/internal/graph"
)

func TestRegistryMatchesPaperTable(t *testing.T) {
	want := map[string]int{
		"skos": 252, "generations": 273, "travel": 277, "univ-bench": 293,
		"atom-primitive": 425, "biomedical-measure-primitive": 459,
		"foaf": 631, "people-pets": 640, "funding": 1086,
		"wine": 1839, "pizza": 1980,
		"g1": 8688, "g2": 14712, "g3": 15840,
	}
	ds := Graphs()
	if len(ds) != 14 {
		t.Fatalf("got %d datasets, want 14", len(ds))
	}
	for _, d := range ds {
		if want[d.Name] != d.Triples {
			t.Errorf("%s: #triples = %d, want %d", d.Name, d.Triples, want[d.Name])
		}
	}
}

func TestTripleCountsExact(t *testing.T) {
	for _, d := range Graphs() {
		if d.Synthetic {
			continue
		}
		ts := d.TripleSet()
		if len(ts) != d.Triples {
			t.Errorf("%s: generated %d triples, want %d", d.Name, len(ts), d.Triples)
		}
		g := d.Build()
		if g.EdgeCount() != 2*d.Triples {
			t.Errorf("%s: %d edges, want %d (2 per triple)", d.Name, g.EdgeCount(), 2*d.Triples)
		}
	}
}

func TestRepeatedGraphs(t *testing.T) {
	for _, name := range []string{"g1", "g2", "g3"} {
		d, ok := ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if !d.Synthetic {
			t.Errorf("%s should be marked synthetic", name)
		}
		g := d.Build()
		if g.EdgeCount() != 2*d.Triples {
			t.Errorf("%s: %d edges, want %d", name, g.EdgeCount(), 2*d.Triples)
		}
		if len(d.TripleSet()) != d.Triples {
			t.Errorf("%s: TripleSet size %d, want %d", name, len(d.TripleSet()), d.Triples)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	d, _ := ByName("skos")
	a, b := d.Build(), d.Build()
	if !reflect.DeepEqual(a.Edges(), b.Edges()) {
		t.Error("Build must be deterministic")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) should fail")
	}
}

func TestGraphLabels(t *testing.T) {
	d, _ := ByName("generations")
	g := d.Build()
	labels := map[string]bool{}
	for _, l := range g.Labels() {
		labels[l] = true
	}
	for _, l := range []string{"subClassOf", "subClassOf_r", "type", "type_r"} {
		if !labels[l] {
			t.Errorf("label %s missing", l)
		}
	}
}

func TestQueriesParseAndNormalize(t *testing.T) {
	for q := 1; q <= 2; q++ {
		cnf := QueryCNF(q)
		if err := cnf.Validate(); err != nil {
			t.Errorf("query %d: %v", q, err)
		}
		if _, ok := cnf.Index("S"); !ok {
			t.Errorf("query %d: S missing", q)
		}
	}
}

func TestQueryPanicsOnBadIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Query(3) should panic")
		}
	}()
	Query(3)
}

func TestQuery1Semantics(t *testing.T) {
	// With the paper's grammar S → subClassOf⁻¹ S subClassOf | …, two
	// classes are on the same layer when they share a descendant reached
	// by equal-depth chains (the first edge descends via subClassOf⁻¹,
	// the last ascends via subClassOf). Classes sharing a direct subclass
	// are the simplest instance; likewise classes typing a common
	// individual relate through type⁻¹ · type.
	g, ids := graph.FromTriples([]graph.Triple{
		{Subject: "sub", Predicate: "subClassOf", Object: "c1"},
		{Subject: "sub", Predicate: "subClassOf", Object: "c2"},
		{Subject: "i", Predicate: "type", Object: "t1"},
		{Subject: "i", Predicate: "type", Object: "t2"},
	})
	pairs, err := core.NewEngine().Query(g, Query1(), "S", core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	has := func(i, j int) bool {
		for _, p := range pairs {
			if p.I == i && p.J == j {
				return true
			}
		}
		return false
	}
	if !has(ids["c1"], ids["c2"]) || !has(ids["c2"], ids["c1"]) {
		t.Errorf("classes sharing a subclass not on same layer: %v (ids %v)", pairs, ids)
	}
	if !has(ids["t1"], ids["t2"]) {
		t.Errorf("classes typing a common individual not on same layer: %v (ids %v)", pairs, ids)
	}
	if has(ids["sub"], ids["c1"]) {
		t.Errorf("(sub, c1) is a subclass pair, not a same-layer pair")
	}
}

func TestQuery2Semantics(t *testing.T) {
	// child subClassOf parent: (child, parent) is an adjacent-layer pair
	// via S → subClassOf; grandchild relates to parent's child layer too.
	g, ids := graph.FromTriples([]graph.Triple{
		{Subject: "child", Predicate: "subClassOf", Object: "root"},
		{Subject: "grand", Predicate: "subClassOf", Object: "child"},
		{Subject: "grand2", Predicate: "subClassOf", Object: "child"},
	})
	pairs, err := core.NewEngine().Query(g, Query2(), "S", core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	has := func(i, j int) bool {
		for _, p := range pairs {
			if p.I == i && p.J == j {
				return true
			}
		}
		return false
	}
	if !has(ids["child"], ids["root"]) {
		t.Error("(child, root) missing (S → subClassOf)")
	}
	// grand →subClassOf_r⁻¹? No: B matches subClassOf_r ... subClassOf
	// around a same-layer core; grand2 and grand are same layer, so
	// (grand, child) via B subClassOf with B = scor(grand→child)? B needs
	// subClassOf_r then subClassOf: grand →scor→ ... wait: B's terminals
	// are edges; from grand: subClassOf_r edges go child→grand. From
	// grand: the edge grand→child is subClassOf. Check a known pair:
	// (grand, root): B(grand, child) requires scor edge grand→X then sco
	// X→child: X=grand2? edge grand→grand2? No scor edge from grand
	// except... scor edges: root→child, child→grand, child→grand2. So
	// B(x,y) pairs start with scor edges: from root or child only.
	// B(child, child)? scor child→grand, sco grand→child: yes!
	// So S(child, root) also via B(child,child)+sco(child→root).
	if !has(ids["grand"], ids["child"]) {
		t.Error("(grand, child) missing (S → subClassOf)")
	}
	for _, p := range pairs {
		if p.I == p.J {
			t.Errorf("reflexive pair %v unexpected for Query 2", p)
		}
	}
}

func TestDatasetResultsNonTrivial(t *testing.T) {
	// The evaluation only makes sense if queries return non-empty results
	// on every dataset (the paper's #results are all > 0 for Query 1).
	cnf := QueryCNF(1)
	for _, d := range Graphs() {
		if d.Synthetic {
			continue // covered via their base graphs
		}
		g := d.Build()
		ix, _ := core.NewEngine().Run(g, cnf)
		if ix.Count("S") == 0 {
			t.Errorf("%s: Query 1 returned no results", d.Name)
		}
	}
}

func TestRepeatedGraphResultsScale(t *testing.T) {
	// A graph repeated 8 times must have exactly 8× the base results.
	cnf := QueryCNF(1)
	base, _ := ByName("funding")
	rep, _ := ByName("g1")
	ixBase, _ := core.NewEngine().Run(base.Build(), cnf)
	ixRep, _ := core.NewEngine().Run(rep.Build(), cnf)
	if got, want := ixRep.Count("S"), 8*ixBase.Count("S"); got != want {
		t.Errorf("g1 results = %d, want 8×funding = %d", got, want)
	}
}

var _ = grammar.MustParse // keep import if helpers change
