package obs

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCheckName(t *testing.T) {
	cases := []struct {
		kind Kind
		name string
		ok   bool
	}{
		{KindCounter, "cfpqd_queries_total", true},
		{KindCounter, "cfpqd_queries", false},        // no _total
		{KindCounter, "cfpqd_Queries_total", false},  // not snake_case
		{KindCounter, "cfpqd__queries_total", false}, // empty segment
		{KindGauge, "cfpqd_replication_lag_records", true},
		{KindGauge, "cfpqd_build_info", true},
		{KindGauge, "cfpqd_lag", false}, // no unit suffix
		{KindHistogram, "cfpqd_http_request_duration_seconds", true},
		{KindHistogram, "cfpqd_http_request_duration", false},
		{KindHistogram, "9starts_with_digit_seconds", false},
	}
	for _, c := range cases {
		err := CheckName(c.kind, c.name)
		if (err == nil) != c.ok {
			t.Errorf("CheckName(%v, %q) = %v, want ok=%v", c.kind, c.name, err, c.ok)
		}
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("dup_total", "")
	mustPanic("duplicate", func() { r.Counter("dup_total", "") })
	mustPanic("bad name", func() { r.Gauge("camelCase_bytes", "") })
	mustPanic("bad label", func() { r.CounterVec("x_total", "", "BadLabel") })
	mustPanic("bad buckets", func() { r.Histogram("h_seconds", "", []float64{1, 1}) })
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth_entries", "depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-106) > 1e-9 {
		t.Fatalf("sum = %v, want 106", got)
	}
	// Per-bucket (non-cumulative): ≤1: {0.5, 1}, ≤2: {1.5}, ≤4: {3}, +Inf: {100}.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

// TestEncoder checks the exposition format end to end, including
// histogram bucket cumulativeness and label escaping.
func TestEncoder(t *testing.T) {
	r := NewRegistry()
	r.Counter("plain_total", "a plain counter").Add(7)
	r.CounterVec("labeled_total", "labeled", "route", "status").With(`/v1/"q"`, "200").Inc()
	r.GaugeFunc("scraped_bytes", "computed at scrape", func() float64 { return 42 })
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE plain_total counter\nplain_total 7\n",
		"# TYPE labeled_total counter\n" + `labeled_total{route="/v1/\"q\"",status="200"} 1` + "\n",
		"# TYPE scraped_bytes gauge\nscraped_bytes 42\n",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.55\n",
		"lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n---\n%s", want, out)
		}
	}
}

// TestConcurrentObserve hammers one histogram and one counter from many
// goroutines while scraping — the -race exercise for the lock-free paths;
// it also asserts rendered buckets stay monotone mid-flight.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("work_seconds", "", DefLatencyBuckets, "kind")
	c := r.Counter("work_total", "")
	const workers, each = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.With("a").Observe(float64(i%100) / 100)
				c.Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			r.WritePrometheus(&sb)
			assertMonotoneBuckets(t, sb.String())
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
	if got := h.With("a").Count(); got != workers*each {
		t.Fatalf("histogram count = %d, want %d", got, workers*each)
	}
}

// assertMonotoneBuckets parses _bucket lines out of an exposition dump and
// checks each series' cumulative counts never decrease with rising le.
func assertMonotoneBuckets(t *testing.T, out string) {
	t.Helper()
	last := map[string]uint64{} // series (name+labels sans le) -> previous cumulative
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "_bucket{") {
			continue
		}
		name, value, ok := strings.Cut(line, "} ")
		if !ok {
			t.Fatalf("malformed bucket line %q", line)
		}
		series, le := splitLe(name)
		n, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if n < last[series] {
			t.Fatalf("bucket %s le=%s went backwards: %d < %d", series, le, n, last[series])
		}
		last[series] = n
	}
}

// splitLe removes the le label from a bucket series name, returning the
// series identity and the bound.
func splitLe(name string) (series, le string) {
	i := strings.Index(name, `le="`)
	if i < 0 {
		return name, ""
	}
	rest := name[i+len(`le="`):]
	j := strings.IndexByte(rest, '"')
	return name[:i] + rest[j+1:], rest[:j]
}
