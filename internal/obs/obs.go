// Package obs is the process-local metrics substrate of the serving stack:
// labeled counters and gauges, fixed-bucket histograms, and a Prometheus
// text-format encoder.
//
// The hot paths are lock-free: a Counter or Gauge is one atomic word, a
// Histogram Observe is two atomic adds (bucket + sum) after a bounds scan,
// and a Vec's With resolves label sets through a sync.Map. Mutexes appear
// only on the cold paths — registering a family, first use of a label set,
// and scraping.
//
// Every Registry is self-contained (nothing package-global, unlike expvar),
// so tests and multi-Service processes can each hold their own without
// re-registration panics.
//
// Metric names are enforced at registration, vet-style: snake_case, and a
// kind-appropriate unit suffix (counters end in _total; histograms and
// gauges end in a unit such as _seconds or _bytes — see CheckName). A bad
// name panics at registration so it cannot reach a scrape.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type, as rendered in the # TYPE line.
type Kind int

// The metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

var (
	nameRe  = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)
	labelRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

	// unitSuffixes are the accepted trailing units for gauge and histogram
	// names; counters end in _total instead.
	unitSuffixes = []string{"_seconds", "_bytes", "_records", "_entries", "_ratio", "_info"}
)

// CheckName validates a metric family name: snake_case throughout, and a
// kind-appropriate unit suffix — _total for counters, one of _seconds,
// _bytes, _records, _entries, _ratio or _info for gauges and histograms.
func CheckName(kind Kind, name string) error {
	if !nameRe.MatchString(name) {
		return fmt.Errorf("obs: metric name %q is not snake_case", name)
	}
	switch kind {
	case KindCounter:
		if !strings.HasSuffix(name, "_total") {
			return fmt.Errorf("obs: counter %q must end in _total", name)
		}
	default:
		for _, s := range unitSuffixes {
			if strings.HasSuffix(name, s) {
				return nil
			}
		}
		return fmt.Errorf("obs: %s %q must end in a unit suffix (%s)", kind, name, strings.Join(unitSuffixes, ", "))
	}
	return nil
}

// CheckLabel validates a label name: lowercase snake_case, the same rule
// registration enforces with a panic. Exported so the metricname
// analyzer applies the registry's exact rule at compile time.
func CheckLabel(name string) error {
	if !labelRe.MatchString(name) {
		return fmt.Errorf("obs: invalid label name %q", name)
	}
	return nil
}

// DefLatencyBuckets are the default histogram bounds for second-valued
// latencies, exponential from 5ms to 10s.
var DefLatencyBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Counter is a monotonically increasing metric. The zero value outside a
// Registry is usable but unscraped.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (which must be non-negative; counters only go up).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as float64 bits in one
// atomic word.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by v (CAS loop).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Bounds are the
// inclusive upper bounds of the finite buckets, strictly increasing; an
// implicit +Inf bucket catches the rest. Observe is lock-free: one atomic
// add on the bucket, one CAS loop on the sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; the last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %v", bounds[i]))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// addFloat atomically adds v to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// child is one label combination of a family.
type child struct {
	labelValues []string
	metric      any // *Counter, *Gauge or *Histogram
}

// family is one named metric with its label schema and children.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histograms only

	children sync.Map // joined label values -> *child
	fn       func() float64
	fnKind   bool // value read from fn at scrape time
}

// labelKey joins label values with a separator no valid value contains
// unescaped ambiguity for (values may contain anything; \xff keeps joins
// injective enough for practical label sets and the render sorts on it).
func labelKey(values []string) string { return strings.Join(values, "\xff") }

func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label value(s), got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	if c, ok := f.children.Load(key); ok {
		return c.(*child)
	}
	c := &child{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		c.metric = new(Counter)
	case KindGauge:
		c.metric = new(Gauge)
	case KindHistogram:
		c.metric = newHistogram(f.buckets)
	}
	actual, _ := f.children.LoadOrStore(key, c)
	return actual.(*child)
}

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register adds a family, panicking on duplicate or invalid names — both
// are programming errors better caught at startup than at scrape.
func (r *Registry) register(f *family) *family {
	if err := CheckName(f.kind, f.name); err != nil {
		panic(err)
	}
	for _, l := range f.labels {
		if err := CheckLabel(l); err != nil {
			panic(fmt.Sprintf("obs: metric %s: %v", f.name, err))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("obs: metric %s registered twice", f.name))
	}
	r.families = append(r.families, f)
	r.byName[f.name] = f
	return f
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(&family{name: name, help: help, kind: KindCounter})
	return f.child(nil).metric.(*Counter)
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(&family{name: name, help: help, kind: KindCounter, labels: labels})}
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for pre-existing atomic counters owned elsewhere.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: KindCounter, fn: fn, fnKind: true})
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(&family{name: name, help: help, kind: KindGauge})
	return f.child(nil).metric.(*Gauge)
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(&family{name: name, help: help, kind: KindGauge, labels: labels})}
}

// GaugeFunc registers a gauge computed by fn at scrape time (collect-on-
// scrape: replication lag, store sizes and the like need no background
// updater).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: KindGauge, fn: fn, fnKind: true})
}

// Histogram registers an unlabeled fixed-bucket histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(&family{name: name, help: help, kind: KindHistogram, buckets: buckets})
	return f.child(nil).metric.(*Histogram)
}

// HistogramVec registers a labeled fixed-bucket histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(&family{name: name, help: help, kind: KindHistogram, buckets: buckets, labels: labels})}
}

// Names returns every registered family name, in registration order — the
// hook the metric-name convention test walks.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.families))
	for i, f := range r.families {
		out[i] = f.name
	}
	return out
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter of one label-value combination, creating it on
// first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.child(labelValues).metric.(*Counter)
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge of one label-value combination.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.child(labelValues).metric.(*Gauge)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram of one label-value combination.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.child(labelValues).metric.(*Histogram)
}

// ServeHTTP renders the registry in Prometheus text format, making a
// *Registry mountable directly at GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WritePrometheus(w)
}

// WritePrometheus writes every family in the Prometheus text exposition
// format: # HELP and # TYPE lines, then one sample line per child (or per
// bucket, for histograms), children sorted by label values.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	b := &strings.Builder{}
	for _, f := range families {
		b.Reset()
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
		if f.fnKind {
			fmt.Fprintf(b, "%s %s\n", f.name, formatFloat(f.fn()))
			io.WriteString(w, b.String())
			continue
		}
		var children []*child
		f.children.Range(func(_, v any) bool {
			children = append(children, v.(*child))
			return true
		})
		sort.Slice(children, func(i, j int) bool {
			return labelKey(children[i].labelValues) < labelKey(children[j].labelValues)
		})
		for _, c := range children {
			writeChild(b, f, c)
		}
		io.WriteString(w, b.String())
	}
}

func writeChild(b *strings.Builder, f *family, c *child) {
	switch m := c.metric.(type) {
	case *Counter:
		fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(f.labels, c.labelValues, "", ""), m.Value())
	case *Gauge:
		fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, c.labelValues, "", ""), formatFloat(m.Value()))
	case *Histogram:
		// Cumulative buckets: each le bound counts every observation ≤ it,
		// ending in the +Inf bucket, which equals _count.
		var cum uint64
		for i, bound := range m.bounds {
			cum += m.counts[i].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, c.labelValues, "le", formatFloat(bound)), cum)
		}
		cum += m.counts[len(m.bounds)].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, c.labelValues, "le", "+Inf"), cum)
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, c.labelValues, "", ""), formatFloat(m.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, c.labelValues, "", ""), cum)
	}
}

// labelString renders {k="v",...}, optionally with one extra pair (the
// histogram le label); empty label sets render as nothing.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	b := &strings.Builder{}
	b.WriteByte('{')
	// The %q verb adds the quotes and escapes \, " and newlines — exactly
	// the exposition format's label escaping.
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, `%s=%q`, n, values[i])
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, `%s=%q`, extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeHelp escapes backslashes and newlines in help text.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus expects: integers without
// an exponent, everything else in Go's shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
