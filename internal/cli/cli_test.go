package cli

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cfpq"
	"cfpq/internal/grammar"
	"cfpq/internal/graph"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

var ctx = context.Background()

const sampleNT = "<a> <p> <b> .\n<b> <p> <c> .\n"
const sampleGrammar = "S -> p S | p\n"

func TestParseArgs(t *testing.T) {
	var errBuf bytes.Buffer
	cfg, err := ParseArgs([]string{
		"-graph", "g.nt", "-query", "q.g", "-start", "X",
		"-backend", "dense", "-semantics", "single-path",
		"-count", "-empty-paths", "-names",
	}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.GraphPath != "g.nt" || cfg.QueryPath != "q.g" || cfg.Start != "X" ||
		cfg.Backend != "dense" || cfg.Semantics != "single-path" ||
		!cfg.CountOnly || !cfg.EmptyPaths || !cfg.Names {
		t.Errorf("cfg = %+v", cfg)
	}
}

func TestParseArgsDefaults(t *testing.T) {
	var errBuf bytes.Buffer
	cfg, err := ParseArgs([]string{"-graph", "g.nt", "-query", "q.g"}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Start != "S" || cfg.Backend != "sparse-parallel" || cfg.Semantics != "relational" {
		t.Errorf("defaults wrong: %+v", cfg)
	}
}

func TestParseArgsMissingRequired(t *testing.T) {
	var errBuf bytes.Buffer
	if _, err := ParseArgs([]string{"-graph", "g.nt"}, &errBuf); err == nil {
		t.Error("missing -query should fail")
	}
	if _, err := ParseArgs(nil, &errBuf); err == nil {
		t.Error("missing both should fail")
	}
}

func TestBackendByName(t *testing.T) {
	for _, name := range []string{"dense", "dense-parallel", "sparse", "sparse-parallel"} {
		if _, err := BackendByName(name); err != nil {
			t.Errorf("BackendByName(%s): %v", name, err)
		}
	}
	if _, err := BackendByName("gpu"); err == nil {
		t.Error("unknown backend should fail")
	}
}

func TestRunRelational(t *testing.T) {
	dir := t.TempDir()
	cfg := &Config{
		GraphPath: writeFile(t, dir, "g.nt", sampleNT),
		QueryPath: writeFile(t, dir, "q.g", sampleGrammar),
		Start:     "S",
		Backend:   "sparse",
		Semantics: "relational",
	}
	var out bytes.Buffer
	if err := Run(ctx, cfg, &out); err != nil {
		t.Fatal(err)
	}
	// Nodes a=0, b=1, c=2; p-edges 0→1→2 ⇒ pairs (0,1),(0,2),(1,2).
	want := "0\t1\n0\t2\n1\t2\n"
	if out.String() != want {
		t.Errorf("output = %q, want %q", out.String(), want)
	}
}

func TestRunNames(t *testing.T) {
	dir := t.TempDir()
	cfg := &Config{
		GraphPath: writeFile(t, dir, "g.nt", sampleNT),
		QueryPath: writeFile(t, dir, "q.g", sampleGrammar),
		Start:     "S",
		Backend:   "sparse",
		Semantics: "relational",
		Names:     true,
	}
	var out bytes.Buffer
	if err := Run(ctx, cfg, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "a\tb\n") {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunCount(t *testing.T) {
	dir := t.TempDir()
	cfg := &Config{
		GraphPath: writeFile(t, dir, "g.nt", sampleNT),
		QueryPath: writeFile(t, dir, "q.g", sampleGrammar),
		Start:     "S",
		Backend:   "sparse",
		Semantics: "relational",
		CountOnly: true,
	}
	var out bytes.Buffer
	if err := Run(ctx, cfg, &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "3" {
		t.Errorf("count = %q, want 3", out.String())
	}
}

func TestRunSinglePath(t *testing.T) {
	dir := t.TempDir()
	cfg := &Config{
		GraphPath: writeFile(t, dir, "g.nt", sampleNT),
		QueryPath: writeFile(t, dir, "q.g", sampleGrammar),
		Start:     "S",
		Backend:   "sparse",
		Semantics: "single-path",
	}
	var out bytes.Buffer
	if err := Run(ctx, cfg, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %q", len(lines), out.String())
	}
	if !strings.Contains(lines[0], "len=") || !strings.Contains(lines[0], "p") {
		t.Errorf("line = %q", lines[0])
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	good := &Config{
		GraphPath: writeFile(t, dir, "g.nt", sampleNT),
		QueryPath: writeFile(t, dir, "q.g", sampleGrammar),
		Start:     "S",
		Backend:   "sparse",
		Semantics: "relational",
	}
	var out bytes.Buffer
	cases := []func(Config) Config{
		func(c Config) Config { c.Backend = "bogus"; return c },
		func(c Config) Config { c.GraphPath = filepath.Join(dir, "missing.nt"); return c },
		func(c Config) Config { c.QueryPath = filepath.Join(dir, "missing.g"); return c },
		func(c Config) Config { c.Semantics = "bogus"; return c },
		func(c Config) Config { c.Start = "Nope"; return c },
	}
	for i, mutate := range cases {
		cfg := mutate(*good)
		if err := Run(ctx, &cfg, &out); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRunBadInputFiles(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	badGraph := &Config{
		GraphPath: writeFile(t, dir, "bad.nt", "<a> <b> .\n"),
		QueryPath: writeFile(t, dir, "q.g", sampleGrammar),
		Start:     "S", Backend: "sparse", Semantics: "relational",
	}
	if err := Run(ctx, badGraph, &out); err == nil {
		t.Error("malformed graph should fail")
	}
	badQuery := &Config{
		GraphPath: writeFile(t, dir, "g.nt", sampleNT),
		QueryPath: writeFile(t, dir, "bad.g", "not a grammar\n"),
		Start:     "S", Backend: "sparse", Semantics: "relational",
	}
	if err := Run(ctx, badQuery, &out); err == nil {
		t.Error("malformed grammar should fail")
	}
}

func TestExecuteDirect(t *testing.T) {
	// Execute without the filesystem.
	g := graph.New(2)
	g.AddEdge(0, "x", 1)
	gram := grammar.MustParse("S -> x")
	be, _ := BackendByName("dense")
	var out bytes.Buffer
	cfg := &Config{Start: "S", Semantics: "relational"}
	if err := Execute(ctx, cfg, g, nil, gram, be, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != "0\t1\n" {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunSources(t *testing.T) {
	dir := t.TempDir()
	base := Config{
		GraphPath: writeFile(t, dir, "g.nt", sampleNT),
		QueryPath: writeFile(t, dir, "q.g", sampleGrammar),
		Start:     "S",
		Backend:   "sparse",
		Semantics: "relational",
	}

	// Restricted to source b (node 1): only (1,2) of the full relation.
	cfg := base
	cfg.Sources = "b"
	var out bytes.Buffer
	if err := Run(ctx, &cfg, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != "1\t2\n" {
		t.Errorf("sources=b output = %q, want %q", out.String(), "1\t2\n")
	}

	// Decimal ids and multiple sources work too.
	cfg = base
	cfg.Sources = "0, 1"
	cfg.CountOnly = true
	out.Reset()
	if err := Run(ctx, &cfg, &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "3" {
		t.Errorf("sources=0,1 count = %q, want 3", out.String())
	}

	// Unknown source nodes and non-relational semantics are rejected.
	cfg = base
	cfg.Sources = "nope"
	if err := Run(ctx, &cfg, &out); err == nil {
		t.Error("unknown source should fail")
	}
	cfg = base
	cfg.Sources = "b"
	cfg.Semantics = "single-path"
	if err := Run(ctx, &cfg, &out); err == nil {
		t.Error("-sources with single-path should fail")
	}
}

func TestSaveLoadIndexRoundTrip(t *testing.T) {
	dir := t.TempDir()
	gpath := writeFile(t, dir, "g.nt", sampleNT)
	qpath := writeFile(t, dir, "q.g", sampleGrammar)
	ixPath := filepath.Join(dir, "q.idx")

	// Evaluate, answer, save.
	var save bytes.Buffer
	cfg := &Config{GraphPath: gpath, QueryPath: qpath, Start: "S", Backend: "sparse", Semantics: "relational", SaveIndex: ixPath}
	if err := Run(ctx, cfg, &save); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ixPath); err != nil {
		t.Fatalf("index file not written: %v", err)
	}

	// Load: same answer, no closure run; sources filter through the index.
	var load bytes.Buffer
	cfg2 := &Config{GraphPath: gpath, QueryPath: qpath, Start: "S", Backend: "sparse", Semantics: "relational", LoadIndex: ixPath}
	if err := Run(ctx, cfg2, &load); err != nil {
		t.Fatal(err)
	}
	if save.String() != load.String() || load.Len() == 0 {
		t.Errorf("saved run:\n%s\nloaded run:\n%s", save.String(), load.String())
	}
	var fromA bytes.Buffer
	cfg3 := &Config{GraphPath: gpath, QueryPath: qpath, Start: "S", Backend: "sparse", Semantics: "relational", LoadIndex: ixPath, Sources: "a", Names: true, CountOnly: true}
	if err := Run(ctx, cfg3, &fromA); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(fromA.String()) != "2" {
		t.Errorf("count from <a> = %q, want 2", fromA.String())
	}
}

func TestIndexFlagsRejectBadCombos(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, "p", 1)
	gram := grammar.MustParse(sampleGrammar)
	var out bytes.Buffer
	for _, cfg := range []*Config{
		{Start: "S", Semantics: "single-path", LoadIndex: "x"},
		{Start: "S", Semantics: "relational", EmptyPaths: true, SaveIndex: "x"},
	} {
		if err := Execute(ctx, cfg, g, nil, gram, BackendMust(t, "sparse"), &out); err == nil {
			t.Errorf("accepted %+v", cfg)
		}
	}
}

// BackendMust resolves a backend or fails the test.
func BackendMust(t *testing.T, name string) cfpq.Backend {
	t.Helper()
	be, err := BackendByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return be
}

func TestRunTargetsAndExplain(t *testing.T) {
	dir := t.TempDir()
	base := Config{
		GraphPath: writeFile(t, dir, "g.nt", sampleNT),
		QueryPath: writeFile(t, dir, "q.g", sampleGrammar),
		Start:     "S",
		Backend:   "sparse",
		Semantics: "relational",
	}

	// Restricted to target c (node 2): the pairs entering c.
	cfg := base
	cfg.Targets = "c"
	var out bytes.Buffer
	if err := Run(ctx, &cfg, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != "0\t2\n1\t2\n" {
		t.Errorf("targets=c output = %q, want %q", out.String(), "0\t2\n1\t2\n")
	}

	// -explain prefixes the plan; a target restriction names the
	// target-frontier strategy.
	cfg = base
	cfg.Targets = "c"
	cfg.Explain = true
	out.Reset()
	if err := Run(ctx, &cfg, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(out.String(), "\n", 2)
	if !strings.HasPrefix(lines[0], "# plan: target-frontier") {
		t.Errorf("explain line = %q", lines[0])
	}
	if lines[1] != "0\t2\n1\t2\n" {
		t.Errorf("explained output = %q", lines[1])
	}

	// Sources and targets combine into a pair restriction.
	cfg = base
	cfg.Sources = "a"
	cfg.Targets = "c"
	cfg.CountOnly = true
	out.Reset()
	if err := Run(ctx, &cfg, &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "1" {
		t.Errorf("pair-restricted count = %q, want 1", out.String())
	}

	// Unknown target nodes and non-relational semantics are rejected.
	cfg = base
	cfg.Targets = "nope"
	if err := Run(ctx, &cfg, &out); err == nil {
		t.Error("unknown target should fail")
	}
	cfg = base
	cfg.Targets = "c"
	cfg.Semantics = "single-path"
	if err := Run(ctx, &cfg, &out); err == nil {
		t.Error("-targets with single-path should fail")
	}
	cfg = base
	cfg.Explain = true
	cfg.Semantics = "single-path"
	if err := Run(ctx, &cfg, &out); err == nil {
		t.Error("-explain with single-path should fail")
	}
}

func TestLoadIndexExplainIsCachedRead(t *testing.T) {
	dir := t.TempDir()
	idx := filepath.Join(dir, "s.idx")
	base := Config{
		GraphPath: writeFile(t, dir, "g.nt", sampleNT),
		QueryPath: writeFile(t, dir, "q.g", sampleGrammar),
		Start:     "S",
		Backend:   "sparse",
		Semantics: "relational",
	}
	cfg := base
	cfg.SaveIndex = idx
	var out bytes.Buffer
	if err := Run(ctx, &cfg, &out); err != nil {
		t.Fatal(err)
	}

	cfg = base
	cfg.LoadIndex = idx
	cfg.Targets = "c"
	cfg.Explain = true
	out.Reset()
	if err := Run(ctx, &cfg, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "# plan: cached-read") {
		t.Errorf("load-index explain = %q", out.String())
	}
	if !strings.HasSuffix(out.String(), "0\t2\n1\t2\n") {
		t.Errorf("load-index output = %q", out.String())
	}
}

// TestRunLimitTruncation pins the -limit flag: the pair list is clipped,
// and -explain flags the clip instead of passing the prefix off as the
// whole relation.
func TestRunLimitTruncation(t *testing.T) {
	dir := t.TempDir()
	cfg := &Config{
		GraphPath: writeFile(t, dir, "g.nt", sampleNT),
		QueryPath: writeFile(t, dir, "q.g", sampleGrammar),
		Start:     "S",
		Backend:   "sparse",
		Semantics: "relational",
		Explain:   true,
		Limit:     2,
	}
	var out bytes.Buffer
	if err := Run(ctx, cfg, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "# truncated: more pairs exist beyond -limit 2") {
		t.Errorf("missing truncation note:\n%s", got)
	}
	if lines := strings.Count(got, "\t"); lines != 2 {
		t.Errorf("printed %d pairs, want 2:\n%s", lines, got)
	}

	// A limit the 3-pair relation fits under prints no note.
	cfg.Limit = 3
	out.Reset()
	if err := Run(ctx, cfg, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "# truncated") {
		t.Errorf("unclipped run flagged truncation:\n%s", out.String())
	}

	// -limit is relational-only, like the other planner flags.
	cfg.Semantics = "single-path"
	cfg.Explain = false
	cfg.Limit = 1
	if err := Run(ctx, cfg, &out); err == nil {
		t.Error("-limit accepted under single-path semantics")
	}
}

func TestRunTrace(t *testing.T) {
	dir := t.TempDir()
	cfg := &Config{
		GraphPath: writeFile(t, dir, "g.nt", sampleNT),
		QueryPath: writeFile(t, dir, "q.g", sampleGrammar),
		Start:     "S",
		Backend:   "sparse",
		Semantics: "relational",
		Trace:     true,
	}
	var out bytes.Buffer
	if err := Run(ctx, cfg, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "# trace: phase") {
		t.Errorf("missing trace header:\n%s", got)
	}
	// The table reports at least the seeding step and one fixpoint pass,
	// then the pairs follow uncommented.
	if n := strings.Count(got, "# trace:"); n < 3 {
		t.Errorf("trace has %d lines, want header + >=2 passes:\n%s", n, got)
	}
	if !strings.Contains(got, "0\t1\n") {
		t.Errorf("pairs missing after trace:\n%s", got)
	}

	// A cached read through -load-index runs no passes and says so.
	idx := filepath.Join(dir, "g.idx")
	cfg.Trace = false
	cfg.SaveIndex = idx
	out.Reset()
	if err := Run(ctx, cfg, &out); err != nil {
		t.Fatal(err)
	}
	cfg.SaveIndex = ""
	cfg.LoadIndex = idx
	cfg.Trace = true
	out.Reset()
	if err := Run(ctx, cfg, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# trace: no passes (cached read)") {
		t.Errorf("cached read trace note missing:\n%s", out.String())
	}

	// -trace is relational-only, like the other planner flags.
	cfg.LoadIndex = ""
	cfg.Semantics = "single-path"
	if err := Run(ctx, cfg, &out); err == nil {
		t.Error("-trace accepted under single-path semantics")
	}
}
