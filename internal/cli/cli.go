// Package cli implements the cfpq command-line tool: flag parsing, input
// loading and result printing, factored out of cmd/cfpq so the whole
// pipeline is unit-testable. Relational evaluation builds one declarative
// cfpq.Request and hands it to the planner (Engine.Do, or Prepared.Do on
// a loaded index) — the same surface the server and benchmarks use;
// -explain surfaces the planner's strategy choice.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"cfpq"
	"cfpq/internal/graph"
)

// Config is the parsed command line.
type Config struct {
	GraphPath  string
	QueryPath  string
	Start      string
	Backend    string
	Semantics  string
	Sources    string
	Targets    string
	Explain    bool
	Trace      bool
	Limit      int
	CountOnly  bool
	EmptyPaths bool
	Names      bool
	// SaveIndex persists the evaluated closure index (CFPQIDX2) to this
	// path after answering; LoadIndex answers from a previously saved
	// index instead of running the closure (the warm-start path). Both
	// are relational-semantics only.
	SaveIndex string
	LoadIndex string
}

// ParseArgs parses command-line arguments into a Config.
func ParseArgs(args []string, stderr io.Writer) (*Config, error) {
	fs := flag.NewFlagSet("cfpq", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &Config{}
	fs.StringVar(&cfg.GraphPath, "graph", "", "N-Triples graph file (required)")
	fs.StringVar(&cfg.QueryPath, "query", "", "grammar file (required)")
	fs.StringVar(&cfg.Start, "start", "S", "start non-terminal")
	fs.StringVar(&cfg.Backend, "backend", "sparse-parallel",
		"matrix backend: dense, dense-parallel, sparse, sparse-parallel")
	fs.StringVar(&cfg.Semantics, "semantics", "relational",
		"query semantics: relational or single-path")
	fs.StringVar(&cfg.Sources, "sources", "",
		"comma-separated source nodes (IRIs or ids): restrict the query to pairs\n"+
			"leaving these nodes, evaluated with the source-restricted closure\n"+
			"(relational semantics only)")
	fs.StringVar(&cfg.Targets, "targets", "",
		"comma-separated target nodes (IRIs or ids): restrict the query to pairs\n"+
			"entering these nodes, evaluated with the target-restricted closure\n"+
			"over the reversed graph (relational semantics only)")
	fs.BoolVar(&cfg.Explain, "explain", false,
		"print the planner's chosen strategy as a leading '# plan:' line\n"+
			"(relational semantics only)")
	fs.BoolVar(&cfg.Trace, "trace", false,
		"print the evaluation's per-pass trace as a leading '# trace' table:\n"+
			"pass index, products, nnz delta, frontier saturation, bytes, wall\n"+
			"time per closure pass (relational semantics only)")
	fs.IntVar(&cfg.Limit, "limit", 0,
		"print at most this many pairs; a clipped list is flagged on the\n"+
			"-explain line (relational semantics only)")
	fs.BoolVar(&cfg.CountOnly, "count", false, "print only the result count")
	fs.BoolVar(&cfg.EmptyPaths, "empty-paths", false,
		"include (v,v) pairs when the start non-terminal derives ε")
	fs.BoolVar(&cfg.Names, "names", false, "print IRIs instead of node ids")
	fs.StringVar(&cfg.SaveIndex, "save-index", "",
		"after answering, save the evaluated closure index to this file\n"+
			"(CFPQIDX2; reload with -load-index to skip the closure)")
	fs.StringVar(&cfg.LoadIndex, "load-index", "",
		"answer from an index previously saved with -save-index instead of\n"+
			"running the closure (grammar and graph must match the saved run)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if cfg.GraphPath == "" || cfg.QueryPath == "" {
		fs.Usage()
		return nil, fmt.Errorf("cfpq: -graph and -query are required")
	}
	return cfg, nil
}

// resolveNodes parses a comma-separated -sources/-targets value: each
// token is an IRI from the graph's name table or a decimal node id.
func resolveNodes(flagName, spec string, ids map[string]int, nodes int) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if id, ok := ids[tok]; ok {
			out = append(out, id)
			continue
		}
		id, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("cfpq: unknown %s node %q", flagName, tok)
		}
		if id < 0 || id >= nodes {
			return nil, fmt.Errorf("cfpq: %s node id %d out of range [0,%d)", flagName, id, nodes)
		}
		out = append(out, id)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cfpq: -%s %q names no nodes", flagName, spec)
	}
	return out, nil
}

// BackendByName resolves a backend name; the library error already names
// the valid choices.
func BackendByName(name string) (cfpq.Backend, error) {
	return cfpq.BackendByName(name)
}

// Run executes the query described by cfg, writing results to out. The
// context cancels the closure between passes (e.g. on SIGINT).
func Run(ctx context.Context, cfg *Config, out io.Writer) error {
	backend, err := BackendByName(cfg.Backend)
	if err != nil {
		return err
	}
	gf, err := os.Open(cfg.GraphPath)
	if err != nil {
		return err
	}
	g, ids, err := cfpq.LoadNTriples(gf)
	gf.Close()
	if err != nil {
		return err
	}
	qf, err := os.Open(cfg.QueryPath)
	if err != nil {
		return err
	}
	qtext, err := io.ReadAll(qf)
	qf.Close()
	if err != nil {
		return err
	}
	gram, err := cfpq.ParseGrammar(string(qtext))
	if err != nil {
		return err
	}
	return Execute(ctx, cfg, g, ids, gram, backend, out)
}

// Execute runs the already-loaded query. Split from Run so tests can drive
// it without touching the filesystem.
func Execute(ctx context.Context, cfg *Config, g *cfpq.Graph, ids map[string]int, gram *cfpq.Grammar, backend cfpq.Backend, out io.Writer) error {
	nodeName := func(v int) string { return fmt.Sprintf("%d", v) }
	if cfg.Names {
		table := graph.NodeNames(g.Nodes(), ids)
		nodeName = func(v int) string { return table[v] }
	}
	eng := cfpq.NewEngine(backend)
	if (cfg.Sources != "" || cfg.Targets != "" || cfg.Explain || cfg.Trace || cfg.Limit != 0) && cfg.Semantics != "relational" {
		return fmt.Errorf("cfpq: -sources/-targets/-explain/-trace/-limit support only -semantics=relational")
	}
	if cfg.SaveIndex != "" || cfg.LoadIndex != "" {
		if cfg.Semantics != "relational" {
			return fmt.Errorf("cfpq: -save-index/-load-index support only -semantics=relational")
		}
		if cfg.EmptyPaths {
			// The index holds the closure relation only; ε-pairs are a
			// query-time decoration the saved form does not carry.
			return fmt.Errorf("cfpq: -empty-paths cannot be combined with -save-index/-load-index")
		}
		return executeWithIndex(ctx, cfg, g, ids, gram, eng, out, nodeName)
	}
	switch cfg.Semantics {
	case "relational":
		req := cfpq.Request{
			Graph:       g,
			Grammar:     gram,
			Nonterminal: cfg.Start,
			EmptyPaths:  cfg.EmptyPaths,
			Limit:       cfg.Limit,
			Trace:       cfg.Trace,
		}
		if cfg.CountOnly {
			// Counts are exact; -limit bounds streamed pairs only and a
			// Request rejects the meaningless combination.
			req.Output, req.Limit = cfpq.OutputCount, 0
		}
		if err := restrictRequest(&req, cfg, ids, g.Nodes()); err != nil {
			return err
		}
		res, err := eng.Do(ctx, req)
		if err != nil {
			return err
		}
		printExplain(cfg, out, res)
		printTrace(cfg, out, res)
		return printRelational(cfg, out, res, nodeName)
	case "single-path":
		cnf, err := cfpq.ToCNF(gram)
		if err != nil {
			return err
		}
		px, err := eng.SinglePath(ctx, g, cnf)
		if err != nil {
			return err
		}
		rel := px.Relation(cfg.Start)
		if cfg.CountOnly {
			fmt.Fprintln(out, len(rel))
			return nil
		}
		for _, lp := range rel {
			path, ok := px.Path(cfg.Start, lp.I, lp.J)
			if !ok {
				return fmt.Errorf("cfpq: internal: no witness for (%d,%d)", lp.I, lp.J)
			}
			fmt.Fprintf(out, "%s\t%s\tlen=%d\t", nodeName(lp.I), nodeName(lp.J), lp.Length)
			for i, e := range path {
				if i > 0 {
					fmt.Fprint(out, " ")
				}
				fmt.Fprint(out, e.Label)
			}
			fmt.Fprintln(out)
		}
		return nil
	default:
		return fmt.Errorf("cfpq: unknown semantics %q", cfg.Semantics)
	}
}

// restrictRequest applies the -sources/-targets flags to a request.
func restrictRequest(req *cfpq.Request, cfg *Config, ids map[string]int, nodes int) error {
	if cfg.Sources != "" {
		sources, err := resolveNodes("sources", cfg.Sources, ids, nodes)
		if err != nil {
			return err
		}
		req.Sources = sources
	}
	if cfg.Targets != "" {
		targets, err := resolveNodes("targets", cfg.Targets, ids, nodes)
		if err != nil {
			return err
		}
		req.Targets = targets
	}
	return nil
}

// printExplain renders the planner's Explain record as a leading comment
// line when -explain is set.
func printExplain(cfg *Config, out io.Writer, res *cfpq.Result) {
	if !cfg.Explain {
		return
	}
	fmt.Fprintf(out, "# plan: %s", res.Explain.Strategy)
	if res.Explain.Frontier > 0 || res.Explain.Strategy == cfpq.StrategySourceFrontier || res.Explain.Strategy == cfpq.StrategyTargetFrontier {
		fmt.Fprintf(out, " (frontier %d", res.Explain.Frontier)
		if res.Explain.Saturated {
			fmt.Fprint(out, ", saturated")
		}
		fmt.Fprint(out, ")")
	}
	fmt.Fprintf(out, " — %s\n", res.Explain.Reason)
	if res.Truncated {
		fmt.Fprintf(out, "# truncated: more pairs exist beyond -limit %d\n", cfg.Limit)
	}
}

// printTrace renders the evaluation's per-pass trace as leading comment
// lines when -trace is set. Pass 0 is the seeding step; the frontier
// column shows saturation only for source/target-restricted passes.
func printTrace(cfg *Config, out io.Writer, res *cfpq.Result) {
	if !cfg.Trace {
		return
	}
	if len(res.Explain.Passes) == 0 {
		fmt.Fprintln(out, "# trace: no passes (cached read)")
		return
	}
	fmt.Fprintf(out, "# trace: %-8s %4s %8s %8s %10s %12s %10s\n",
		"phase", "pass", "products", "delta", "frontier", "bytes", "time")
	for _, ev := range res.Explain.Passes {
		frontier := "-"
		if ev.Phase == "frontier" {
			frontier = fmt.Sprintf("%.3f", ev.Saturation())
		}
		fmt.Fprintf(out, "# trace: %-8s %4d %8d %8d %10s %12d %10s\n",
			ev.Phase, ev.Pass, ev.Products, ev.TotalDelta(), frontier, ev.Bytes,
			ev.Duration.Round(time.Microsecond))
	}
}

// printRelational writes a relational Result: the count under -count,
// otherwise one name-resolved pair per line.
func printRelational(cfg *Config, out io.Writer, res *cfpq.Result, nodeName func(int) string) error {
	if cfg.CountOnly {
		fmt.Fprintln(out, res.Count)
		return nil
	}
	for p := range res.Pairs() {
		fmt.Fprintf(out, "%s\t%s\n", nodeName(p.I), nodeName(p.J))
	}
	return nil
}

// executeWithIndex answers through an evaluated index: loaded from
// -load-index (skipping the closure — the warm-start path) or computed
// fresh and optionally persisted to -save-index.
func executeWithIndex(ctx context.Context, cfg *Config, g *cfpq.Graph, ids map[string]int, gram *cfpq.Grammar, eng *cfpq.Engine, out io.Writer, nodeName func(int) string) error {
	cnf, err := cfpq.ToCNF(gram)
	if err != nil {
		return err
	}
	var ix *cfpq.Index
	if cfg.LoadIndex != "" {
		f, err := os.Open(cfg.LoadIndex)
		if err != nil {
			return err
		}
		ix, err = eng.LoadIndex(f, cnf)
		f.Close()
		if err != nil {
			return err
		}
		if ix.Nodes() < g.Nodes() {
			return fmt.Errorf("cfpq: index covers %d nodes, graph has %d — rebuild with -save-index", ix.Nodes(), g.Nodes())
		}
	} else {
		if ix, _, err = eng.Evaluate(ctx, g, cnf); err != nil {
			return err
		}
	}
	if cfg.SaveIndex != "" {
		f, err := os.Create(cfg.SaveIndex)
		if err != nil {
			return err
		}
		if err := cfpq.SaveIndex(f, ix); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	p, err := eng.PrepareFromIndex(g, cnf, ix)
	if err != nil {
		return err
	}
	req := cfpq.Request{Nonterminal: cfg.Start, Limit: cfg.Limit, Trace: cfg.Trace}
	if cfg.CountOnly {
		req.Output, req.Limit = cfpq.OutputCount, 0
	}
	if err := restrictRequest(&req, cfg, ids, g.Nodes()); err != nil {
		return err
	}
	res, err := p.Do(ctx, req)
	if err != nil {
		return err
	}
	printExplain(cfg, out, res)
	printTrace(cfg, out, res)
	return printRelational(cfg, out, res, nodeName)
}
