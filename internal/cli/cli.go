// Package cli implements the cfpq command-line tool: flag parsing, input
// loading and result printing, factored out of cmd/cfpq so the whole
// pipeline is unit-testable.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cfpq/internal/core"
	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// Config is the parsed command line.
type Config struct {
	GraphPath  string
	QueryPath  string
	Start      string
	Backend    string
	Semantics  string
	CountOnly  bool
	EmptyPaths bool
	Names      bool
}

// ParseArgs parses command-line arguments into a Config.
func ParseArgs(args []string, stderr io.Writer) (*Config, error) {
	fs := flag.NewFlagSet("cfpq", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &Config{}
	fs.StringVar(&cfg.GraphPath, "graph", "", "N-Triples graph file (required)")
	fs.StringVar(&cfg.QueryPath, "query", "", "grammar file (required)")
	fs.StringVar(&cfg.Start, "start", "S", "start non-terminal")
	fs.StringVar(&cfg.Backend, "backend", "sparse-parallel",
		"matrix backend: dense, dense-parallel, sparse, sparse-parallel")
	fs.StringVar(&cfg.Semantics, "semantics", "relational",
		"query semantics: relational or single-path")
	fs.BoolVar(&cfg.CountOnly, "count", false, "print only the result count")
	fs.BoolVar(&cfg.EmptyPaths, "empty-paths", false,
		"include (v,v) pairs when the start non-terminal derives ε")
	fs.BoolVar(&cfg.Names, "names", false, "print IRIs instead of node ids")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if cfg.GraphPath == "" || cfg.QueryPath == "" {
		fs.Usage()
		return nil, fmt.Errorf("cfpq: -graph and -query are required")
	}
	return cfg, nil
}

// BackendByName resolves a backend name.
func BackendByName(name string) (matrix.Backend, error) {
	for _, be := range matrix.Backends() {
		if be.Name() == name {
			return be, nil
		}
	}
	return nil, fmt.Errorf("cfpq: unknown backend %q", name)
}

// Run executes the query described by cfg, writing results to out.
func Run(cfg *Config, out io.Writer) error {
	backend, err := BackendByName(cfg.Backend)
	if err != nil {
		return err
	}
	gf, err := os.Open(cfg.GraphPath)
	if err != nil {
		return err
	}
	g, ids, err := graph.LoadNTriples(gf)
	gf.Close()
	if err != nil {
		return err
	}
	qf, err := os.Open(cfg.QueryPath)
	if err != nil {
		return err
	}
	gram, err := grammar.Parse(qf)
	qf.Close()
	if err != nil {
		return err
	}
	return Execute(cfg, g, ids, gram, backend, out)
}

// Execute runs the already-loaded query. Split from Run so tests can drive
// it without touching the filesystem.
func Execute(cfg *Config, g *graph.Graph, ids map[string]int, gram *grammar.Grammar, backend matrix.Backend, out io.Writer) error {
	nodeName := func(v int) string { return fmt.Sprintf("%d", v) }
	if cfg.Names {
		table := graph.NodeNames(g.Nodes(), ids)
		nodeName = func(v int) string { return table[v] }
	}
	switch cfg.Semantics {
	case "relational":
		e := core.NewEngine(core.WithBackend(backend))
		pairs, err := e.Query(g, gram, cfg.Start, core.QueryOptions{IncludeEmptyPaths: cfg.EmptyPaths})
		if err != nil {
			return err
		}
		if cfg.CountOnly {
			fmt.Fprintln(out, len(pairs))
			return nil
		}
		for _, p := range pairs {
			fmt.Fprintf(out, "%s\t%s\n", nodeName(p.I), nodeName(p.J))
		}
		return nil
	case "single-path":
		cnf, err := grammar.ToCNF(gram)
		if err != nil {
			return err
		}
		px := core.NewPathIndex(g, cnf)
		rel := px.Relation(cfg.Start)
		if cfg.CountOnly {
			fmt.Fprintln(out, len(rel))
			return nil
		}
		for _, lp := range rel {
			path, ok := px.Path(cfg.Start, lp.I, lp.J)
			if !ok {
				return fmt.Errorf("cfpq: internal: no witness for (%d,%d)", lp.I, lp.J)
			}
			fmt.Fprintf(out, "%s\t%s\tlen=%d\t", nodeName(lp.I), nodeName(lp.J), lp.Length)
			for i, e := range path {
				if i > 0 {
					fmt.Fprint(out, " ")
				}
				fmt.Fprint(out, e.Label)
			}
			fmt.Fprintln(out)
		}
		return nil
	default:
		return fmt.Errorf("cfpq: unknown semantics %q", cfg.Semantics)
	}
}
