// Package graphgen builds the synthetic scale-tier benchmark graphs: a
// family of deterministic topologies over the two-label alphabet {a, b}
// that stress the closure in different ways at 10⁴–10⁶ nodes, all
// recognisable by the Dyck-style grammar S → a S b | a b.
//
// The topology lives at the scale of Depth (or √Nodes) while the matrix
// lives at the scale of Nodes: every generator pads with isolated nodes up
// to the requested size, so the benchmarks separate "cost of the work"
// from "cost of the representation" — exactly the axis on which CSR sparse
// and dense bitset matrices differ.
package graphgen

import (
	"fmt"
	"math"
	"math/rand"

	"cfpq/internal/graph"
)

// Kind names one synthetic topology family.
type Kind string

const (
	// KindChain is the word a^(n-1-d) b^d on a directed chain: context-free
	// recognition of a linear word (Valiant's setting), whose closure runs
	// exactly Depth derivation levels deep.
	KindChain Kind = "chain"
	// KindCycle is the classic CFPQ worst case: two coprime cycles (lengths
	// Depth and Depth+1) sharing node 0, the first labelled a, the second
	// b. The closure needs ~Depth² iterations to reach its fixpoint, which
	// is why Depth is capped harder for this kind.
	KindCycle Kind = "cycle"
	// KindGrid is a k×k lattice (k = ⌊√Nodes⌋) with right-edges labelled a
	// and down-edges labelled b: a planar, bounded-degree topology with
	// O(k³) result pairs.
	KindGrid Kind = "grid"
	// KindScaleFree is a seeded Barabási–Albert preferential-attachment
	// graph with labels drawn uniformly from {a, b}: a few hub rows carry
	// most of the SpGEMM work, the stress case for row-parallel kernels.
	KindScaleFree Kind = "scale-free"
)

// Kinds lists every topology family, in the order the benchmarks report.
func Kinds() []Kind {
	return []Kind{KindChain, KindCycle, KindGrid, KindScaleFree}
}

// maxChainDepth bounds the closure's derivation depth (its iteration
// count) so the dense backend stays feasible at 10⁴ nodes and above.
const maxChainDepth = 512

// maxCycleDepth bounds the two-cycle worst case, whose fixpoint takes
// ~Depth² closure iterations rather than Depth.
const maxCycleDepth = 32

// Spec describes one synthetic graph. The zero values of everything but
// Kind and Nodes choose sensible defaults (see normalize).
type Spec struct {
	Kind  Kind
	Nodes int
	// Depth is the derivation depth the chain and cycle kinds force
	// (default min(Nodes/2, 512); the cycle kind caps it at 32 — see
	// KindCycle). Ignored by grid and scale-free.
	Depth int
	// Degree is the out-degree of scale-free nodes (default 3). Ignored
	// by the deterministic kinds.
	Degree int
	// Seed drives the scale-free attachment and labelling (default 1).
	Seed int64
}

// normalize fills defaults and clamps Depth to what the topology can hold.
func (s Spec) normalize() Spec {
	if s.Depth <= 0 {
		s.Depth = s.Nodes / 2
	}
	if s.Depth > maxChainDepth {
		s.Depth = maxChainDepth
	}
	if d := (s.Nodes - 1) / 2; s.Depth > d {
		s.Depth = d
	}
	if s.Kind == KindCycle && s.Depth > maxCycleDepth {
		s.Depth = maxCycleDepth
	}
	if s.Degree <= 0 {
		s.Degree = 3
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Generate builds the graph a Spec describes. Generation is deterministic:
// equal Specs produce equal graphs.
func Generate(s Spec) (*graph.Graph, error) {
	if s.Nodes < 4 {
		return nil, fmt.Errorf("graphgen: %d nodes is below the minimum of 4", s.Nodes)
	}
	s = s.normalize()
	switch s.Kind {
	case KindChain:
		return chain(s), nil
	case KindCycle:
		return twoCycles(s), nil
	case KindGrid:
		return grid(s), nil
	case KindScaleFree:
		return graph.PreferentialAttachment(rand.New(rand.NewSource(s.Seed)), s.Nodes, s.Degree, []string{"a", "b"}), nil
	default:
		return nil, fmt.Errorf("graphgen: unknown kind %q", s.Kind)
	}
}

// chain spells a^(m) b^d along nodes 0..m+d where m = Nodes-1-Depth, so
// the single deepest match is the Depth-level derivation a^d b^d.
func chain(s Spec) *graph.Graph {
	g := graph.New(s.Nodes)
	m := s.Nodes - 1 - s.Depth
	for i := 0; i < m; i++ {
		g.AddEdge(i, "a", i+1)
	}
	for i := m; i < s.Nodes-1; i++ {
		g.AddEdge(i, "b", i+1)
	}
	return g
}

// twoCycles embeds graph.TwoCycles(Depth, Depth+1) — consecutive lengths,
// hence coprime — in the low 2·Depth node ids and leaves the rest of the
// matrix as isolated padding.
func twoCycles(s Spec) *graph.Graph {
	g := graph.New(s.Nodes)
	m := s.Depth
	for i := 0; i < m; i++ {
		g.AddEdge(i, "a", (i+1)%m)
	}
	// b-cycle of length m+1 through node 0: 0 → m → m+1 → … → 2m-1 → 0.
	prev := 0
	for i := 0; i < m; i++ {
		g.AddEdge(prev, "b", m+i)
		prev = m + i
	}
	g.AddEdge(prev, "b", 0)
	return g
}

// grid lays out a k×k lattice row-major in the low k² node ids, a to the
// right and b downward.
func grid(s Spec) *graph.Graph {
	k := int(math.Sqrt(float64(s.Nodes)))
	g := graph.New(s.Nodes)
	id := func(r, c int) int { return r*k + c }
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			if c+1 < k {
				g.AddEdge(id(r, c), "a", id(r, c+1))
			}
			if r+1 < k {
				g.AddEdge(id(r, c), "b", id(r+1, c))
			}
		}
	}
	return g
}
