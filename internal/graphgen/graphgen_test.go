package graphgen

import (
	"testing"

	"cfpq/internal/core"
	"cfpq/internal/grammar"
)

// dyckCount evaluates the scale-tier grammar S → a S b | a b on the spec's
// graph and returns |R_S|.
func dyckCount(t *testing.T, s Spec) int {
	t.Helper()
	g, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	cnf := grammar.MustCNF(grammar.MustParse("S -> a S b | a b"))
	ix, _ := core.NewEngine().Run(g, cnf)
	return ix.Count("S")
}

// TestChainRelation pins the chain construction: the word a^(n-1-d) b^d
// has exactly d balanced substrings a^t b^t, one per derivation level.
func TestChainRelation(t *testing.T) {
	if got := dyckCount(t, Spec{Kind: KindChain, Nodes: 21, Depth: 5}); got != 5 {
		t.Fatalf("chain(21,5) |R_S| = %d, want 5", got)
	}
}

// TestCycleRelation pins the two-cycle worst case: every node of the
// a-cycle (Depth of them) pairs with every node of the b-cycle (Depth+1 of
// them, node 0 included) once k has wrapped both cycles.
func TestCycleRelation(t *testing.T) {
	if got := dyckCount(t, Spec{Kind: KindCycle, Nodes: 8, Depth: 3}); got != 3*4 {
		t.Fatalf("cycle(8,3) |R_S| = %d, want 12", got)
	}
}

// TestGridRelation pins the lattice: a^m b^m from (r,c) needs m columns of
// headroom right and m rows down, so level m contributes (k-m)² pairs.
func TestGridRelation(t *testing.T) {
	// k = 4: 3² + 2² + 1² = 14.
	if got := dyckCount(t, Spec{Kind: KindGrid, Nodes: 16}); got != 14 {
		t.Fatalf("grid(16) |R_S| = %d, want 14", got)
	}
}

// TestGenerateDeterministic asserts equal specs yield identical graphs —
// the property the committed benchmark artifact rests on — and that the
// scale-free seed actually matters.
func TestGenerateDeterministic(t *testing.T) {
	for _, kind := range Kinds() {
		spec := Spec{Kind: kind, Nodes: 300, Seed: 7}
		a, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		if a.Nodes() != spec.Nodes || a.Nodes() != b.Nodes() || a.EdgeCount() != b.EdgeCount() {
			t.Fatalf("%s: %d/%d nodes, %d/%d edges — want identical at %d nodes",
				kind, a.Nodes(), b.Nodes(), a.EdgeCount(), b.EdgeCount(), spec.Nodes)
		}
		ea, eb := a.Edges(), b.Edges()
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("%s: edge %d differs between equal specs: %v vs %v", kind, i, ea[i], eb[i])
			}
		}
	}
	x, _ := Generate(Spec{Kind: KindScaleFree, Nodes: 300, Seed: 7})
	y, _ := Generate(Spec{Kind: KindScaleFree, Nodes: 300, Seed: 8})
	same := x.EdgeCount() == y.EdgeCount()
	if same {
		xe, ye := x.Edges(), y.Edges()
		for i := range xe {
			if xe[i] != ye[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("scale-free graphs with different seeds are identical")
	}
}

// TestGenerateValidation covers the error paths and depth clamping.
func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Spec{Kind: KindChain, Nodes: 3}); err == nil {
		t.Error("3 nodes accepted")
	}
	if _, err := Generate(Spec{Kind: "mobius", Nodes: 100}); err == nil {
		t.Error("unknown kind accepted")
	}
	// A depth beyond what the chain can hold is clamped, not rejected.
	g, err := Generate(Spec{Kind: KindChain, Nodes: 9, Depth: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 8 {
		t.Errorf("clamped chain has %d edges, want 8", g.EdgeCount())
	}
}
