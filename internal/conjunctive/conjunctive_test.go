package conjunctive

import (
	"strings"
	"testing"

	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// anbncn is the canonical non-context-free conjunctive language
// {aⁿbⁿcⁿ | n ≥ 1}: equal a/b prefix with trailing c's, intersected with
// leading a's and equal b/c suffix.
const anbncn = `
S -> A B & D C
A -> a A | a
B -> b B c | b c
C -> c C | c
D -> a D b | a b
`

// refDerives is an independent reference recogniser for conjunctive
// grammars on strings: a bottom-up Kleene iteration over spans. A span
// (A, i, j) becomes derivable when some production of A has every conjunct
// derivable over (i, j), using the truths established so far; iteration
// repeats until no span is added (least fixpoint — the standard bottom-up
// semantics of conjunctive grammars).
func refDerives(g *Grammar, start string, word []string) bool {
	type key struct {
		nt   string
		i, j int
	}
	n := len(word)
	derived := map[key]bool{}
	nts := map[string]bool{}
	for _, p := range g.Productions {
		nts[p.Lhs] = true
	}

	// seqDerives: does the symbol string derive word[i:j], given `derived`?
	var seqDerives func(seq []int, conj []struct {
		name string
		term bool
	}, i, j int) bool
	seqDerives = func(rest []int, conj []struct {
		name string
		term bool
	}, i, j int) bool {
		if len(rest) == 0 {
			return i == j
		}
		s := conj[rest[0]]
		if s.term {
			return i < j && word[i] == s.name && seqDerives(rest[1:], conj, i+1, j)
		}
		if len(rest) == 1 {
			return derived[key{s.name, i, j}]
		}
		for k := i + 1; k <= j; k++ {
			if derived[key{s.name, i, k}] && seqDerives(rest[1:], conj, k, j) {
				return true
			}
		}
		return false
	}

	for changed := true; changed; {
		changed = false
		for _, p := range g.Productions {
			for i := 0; i < n; i++ {
				for j := i + 1; j <= n; j++ {
					k := key{p.Lhs, i, j}
					if derived[k] {
						continue
					}
					all := true
					for _, conj := range p.Conjuncts {
						flat := make([]struct {
							name string
							term bool
						}, len(conj))
						idx := make([]int, len(conj))
						for x, s := range conj {
							flat[x] = struct {
								name string
								term bool
							}{s.Name, s.Terminal}
							idx[x] = x
						}
						if !seqDerives(idx, flat, i, j) {
							all = false
							break
						}
					}
					if all {
						derived[k] = true
						changed = true
					}
				}
			}
		}
	}
	return derived[key{start, 0, n}]
}

func TestAnBnCn(t *testing.T) {
	g := MustParse(anbncn)
	cases := []struct {
		word string
		want bool
	}{
		{"a b c", true},
		{"a a b b c c", true},
		{"a a a b b b c c c", true},
		{"a b", false},
		{"a a b b c", false},
		{"a b b c c", false},
		{"a b c c", false},
		{"b a c", false},
		{"a a b c c", false},
	}
	for _, c := range cases {
		word := strings.Fields(c.word)
		got, err := Recognize(g, "S", word)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Recognize(%q) = %v, want %v", c.word, got, c.want)
		}
		if ref := refDerives(g, "S", word); ref != c.want {
			t.Errorf("reference recogniser disagrees on %q: %v", c.word, ref)
		}
	}
}

func TestContextFreeSubsetBehavesAsCFG(t *testing.T) {
	// A conjunctive grammar without & must behave exactly like the CFG.
	g := MustParse(`
		S -> a S b | a b
	`)
	for _, c := range []struct {
		word string
		want bool
	}{
		{"a b", true},
		{"a a b b", true},
		{"a b b", false},
	} {
		got, err := Recognize(g, "S", strings.Fields(c.word))
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("%q: got %v", c.word, got)
		}
	}
}

func TestUpperApproximationOnGraphs(t *testing.T) {
	// The paper's hypothesis: on graphs, the conjunctive closure yields an
	// UPPER approximation. With S → A & B, A → a, B → b and parallel
	// edges 0—a→1, 0—b→1, no single path satisfies both conjuncts
	// (L(S) = {a} ∩ {b} = ∅), yet the node-pair intersection reports
	// (0, 1).
	g := graph.New(2)
	g.AddEdge(0, "a", 1)
	g.AddEdge(0, "b", 1)
	cg := MustParse(`
		S -> A & B
		A -> a
		B -> b
	`)
	res, err := Evaluate(g, cg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Has("S", 0, 1) {
		t.Error("expected the upper approximation to contain (0,1)")
	}
	// On the chain graph (a single path), the same grammar is exact: no
	// word is in L(S), so the relation is empty.
	for _, w := range [][]string{{"a"}, {"b"}, {"a", "b"}} {
		got, err := Recognize(cg, "S", w)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			t.Errorf("L(S) is empty but %v recognised", w)
		}
	}
}

func TestEvaluateBackendsAgree(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "b", 2)
	g.AddEdge(2, "c", 3)
	g.AddEdge(3, "a", 0)
	cg := MustParse(anbncn)
	var ref []matrix.Pair
	for i, be := range matrix.Backends() {
		res, err := Evaluate(g, cg, be)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Relation("S")
		if i == 0 {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("%s disagrees: %v vs %v", be.Name(), got, ref)
		}
		for k := range got {
			if got[k] != ref[k] {
				t.Fatalf("%s disagrees: %v vs %v", be.Name(), got, ref)
			}
		}
	}
}

// TestRandomWordsAgainstReference compares the matrix evaluation on chain
// graphs with the bottom-up reference recogniser over all short words.
func TestRandomWordsAgainstReference(t *testing.T) {
	grammars := []*Grammar{
		MustParse(anbncn),
		MustParse("S -> A B & B A\nA -> a | a A\nB -> b | b B"),
		MustParse("S -> a S | A & B\nA -> a b\nB -> a b"),
	}
	alphabet := []string{"a", "b", "c"}
	var words [][]string
	var gen func(prefix []string, n int)
	gen = func(prefix []string, n int) {
		if n == 0 {
			w := make([]string, len(prefix))
			copy(w, prefix)
			words = append(words, w)
			return
		}
		for _, a := range alphabet {
			gen(append(prefix, a), n-1)
		}
	}
	for n := 1; n <= 4; n++ {
		gen(nil, n)
	}
	for gi, g := range grammars {
		for _, w := range words {
			got, err := Recognize(g, "S", w)
			if err != nil {
				t.Fatal(err)
			}
			want := refDerives(g, "S", w)
			if got != want {
				t.Fatalf("grammar %d word %v: matrix=%v reference=%v", gi, w, got, want)
			}
		}
	}
}

// TestCFOnlyAgainstCoreEngine: a conjunctive grammar with no & must compute
// the same relations as the context-free engine on arbitrary graphs.
func TestCFOnlyAgainstCoreEngine(t *testing.T) {
	cg := MustParse("S -> a S b | a b")
	g := graph.TwoCycles(2, 3, "a", "b")
	res, err := Evaluate(g, cg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Known facts from the core tests: (0,0) ∈ R_S on two-cycles(2,3).
	if !res.Has("S", 0, 0) {
		t.Error("(0,0) missing on two-cycles")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"S - a",
		"s -> a",
		"S -> a & eps",
		"S -> a &",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestProductionString(t *testing.T) {
	g := MustParse("S -> A B & D C")
	if got := g.Productions[0].String(); got != "S -> A B & D C" {
		t.Errorf("String() = %q", got)
	}
}

func TestUnknownNonterminalRelation(t *testing.T) {
	res, err := Evaluate(graph.Chain(2, "a"), MustParse("S -> a"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation("Zed") != nil {
		t.Error("unknown non-terminal should have nil relation")
	}
	if res.Has("Zed", 0, 1) {
		t.Error("unknown non-terminal Has should be false")
	}
}

func TestUnitConjunct(t *testing.T) {
	// S → A & b : fragment must derive from A and be exactly a b-edge.
	g := graph.New(2)
	g.AddEdge(0, "a", 1)
	g.AddEdge(0, "b", 1)
	cg := MustParse(`
		S -> A & b
		A -> a | b
	`)
	res, err := Evaluate(g, cg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Has("S", 0, 1) {
		t.Error("(0,1) should satisfy both conjuncts (A via the b-edge)")
	}
	g2 := graph.New(2)
	g2.AddEdge(0, "a", 1)
	cg2 := MustParse(`
		S -> A & b
		A -> a
	`)
	res2, err := Evaluate(g2, cg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Has("S", 0, 1) {
		t.Error("no b-edge: the unit conjunct must fail")
	}
}
