// Package conjunctive extends the matrix CFPQ algorithm to conjunctive
// grammars (Okhotin), the paper's Section 7 research direction: "our
// algorithm can be trivially generalized to work on this grammars because
// parsing with conjunctive and Boolean grammars can be expressed by matrix
// multiplication. … Our hypothesis is that it would produce the upper
// approximation of a solution."
//
// A conjunctive grammar production has the form
//
//	A → α₁ & α₂ & … & αₖ
//
// meaning a string derives from A only if it derives from *every* conjunct
// αᵢ. In the matrix closure this becomes an intersection of products:
//
//	T_A |= (T_B₁ × T_C₁) ∩ (T_B₂ × T_C₂) ∩ …
//
// On linear inputs (string/chain graphs) this computes exactly the
// conjunctive language (Okhotin's matrix parsing). On graphs with cycles
// the conjuncts may be witnessed by *different* paths between the same
// node pair, so — exactly as the paper hypothesises — the result is an
// upper approximation of the path relation and an exact computation of the
// "relation intersection" semantics R_A = ∩ᵢ R_αᵢ.
package conjunctive

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// Production is one conjunctive rule: every conjunct is an alternative-free
// symbol string that must independently derive the same fragment.
type Production struct {
	Lhs       string
	Conjuncts [][]grammar.Symbol
}

// String renders the production in the text format.
func (p Production) String() string {
	var b strings.Builder
	b.WriteString(p.Lhs)
	b.WriteString(" ->")
	for i, c := range p.Conjuncts {
		if i > 0 {
			b.WriteString(" &")
		}
		for _, s := range c {
			b.WriteByte(' ')
			b.WriteString(s.String())
		}
	}
	return b.String()
}

// Grammar is a conjunctive grammar: context-free productions plus
// conjunctive productions.
type Grammar struct {
	Productions []Production
}

// Parse reads a conjunctive grammar: the context-free text format with `&`
// separating conjuncts inside an alternative:
//
//	S -> A B & D C
//	A -> a A | a
//
// ε-conjuncts are not allowed (the CFPQ construction has no ε-paths other
// than empty paths).
func Parse(text string) (*Grammar, error) {
	g := &Grammar{}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
			continue
		}
		arrow := strings.Index(line, "->")
		if arrow < 0 {
			return nil, fmt.Errorf("conjunctive: line %d: missing '->'", lineNo+1)
		}
		lhs := strings.TrimSpace(line[:arrow])
		if lhs == "" || !isUpper(lhs[0]) {
			return nil, fmt.Errorf("conjunctive: line %d: bad left-hand side %q", lineNo+1, lhs)
		}
		for _, alt := range strings.Split(line[arrow+2:], "|") {
			var conjuncts [][]grammar.Symbol
			for _, conj := range strings.Split(alt, "&") {
				syms, err := parseSymbols(conj)
				if err != nil {
					return nil, fmt.Errorf("conjunctive: line %d: %w", lineNo+1, err)
				}
				if len(syms) == 0 {
					return nil, fmt.Errorf("conjunctive: line %d: empty conjunct", lineNo+1)
				}
				conjuncts = append(conjuncts, syms)
			}
			g.Productions = append(g.Productions, Production{Lhs: lhs, Conjuncts: conjuncts})
		}
	}
	if len(g.Productions) == 0 {
		return nil, fmt.Errorf("conjunctive: no productions")
	}
	return g, nil
}

// MustParse is Parse that panics on error.
func MustParse(text string) *Grammar {
	g, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return g
}

func isUpper(c byte) bool { return c >= 'A' && c <= 'Z' }

func parseSymbols(s string) ([]grammar.Symbol, error) {
	var out []grammar.Symbol
	for _, w := range strings.Fields(s) {
		if w == "eps" || w == "ε" {
			return nil, fmt.Errorf("ε-conjuncts are not supported")
		}
		if isUpper(w[0]) {
			out = append(out, grammar.NT(w))
		} else {
			out = append(out, grammar.T(w))
		}
	}
	return out, nil
}

// normal is the compiled binary normal form: terminal rules plus
// conjunctive binary rules (each conjunct exactly two non-terminals).
type normal struct {
	names     []string
	index     map[string]int
	termRules map[string][]int
	// rules[i] = conjunctive rule: lhs plus one (B, C) pair per conjunct.
	rules []conjRule
}

type conjRule struct {
	a         int
	conjuncts [][2]int
}

// compile lowers the grammar to binary normal form. Each conjunct is
// binarised independently with fresh helper non-terminals (helpers are
// plain context-free single-conjunct rules).
func (g *Grammar) compile() (*normal, error) {
	n := &normal{index: map[string]int{}, termRules: map[string][]int{}}
	intern := func(name string) int {
		if i, ok := n.index[name]; ok {
			return i
		}
		i := len(n.names)
		n.names = append(n.names, name)
		n.index[name] = i
		return i
	}
	used := map[string]bool{}
	for _, p := range g.Productions {
		used[p.Lhs] = true
		for _, c := range p.Conjuncts {
			for _, s := range c {
				if !s.Terminal {
					used[s.Name] = true
				}
			}
		}
	}
	freshID := 0
	fresh := func(base string) string {
		for {
			freshID++
			name := fmt.Sprintf("%s&%d", base, freshID)
			if !used[name] {
				used[name] = true
				return name
			}
		}
	}
	// lower reduces a symbol string to a single non-terminal index,
	// emitting helper rules as needed.
	var lower func(lhsBase string, syms []grammar.Symbol) (int, error)
	liftTerm := map[string]int{}
	termNT := func(t string) int {
		if i, ok := liftTerm[t]; ok {
			return i
		}
		name := fresh("T")
		i := intern(name)
		liftTerm[t] = i
		n.termRules[t] = append(n.termRules[t], i)
		return i
	}
	emitBinary := func(a, b, c int) {
		n.rules = append(n.rules, conjRule{a: a, conjuncts: [][2]int{{b, c}}})
	}
	lower = func(lhsBase string, syms []grammar.Symbol) (int, error) {
		switch len(syms) {
		case 0:
			return 0, fmt.Errorf("conjunctive: empty conjunct")
		case 1:
			s := syms[0]
			if s.Terminal {
				return termNT(s.Name), nil
			}
			return intern(s.Name), nil
		default:
			first, err := lower(lhsBase, syms[:1])
			if err != nil {
				return 0, err
			}
			rest, err := lower(lhsBase, syms[1:])
			if err != nil {
				return 0, err
			}
			helper := intern(fresh(lhsBase))
			emitBinary(helper, first, rest)
			return helper, nil
		}
	}
	for _, p := range g.Productions {
		a := intern(p.Lhs)
		if len(p.Conjuncts) == 1 && len(p.Conjuncts[0]) == 1 && p.Conjuncts[0][0].Terminal {
			t := p.Conjuncts[0][0].Name
			n.termRules[t] = append(n.termRules[t], a)
			continue
		}
		rule := conjRule{a: a}
		for _, c := range p.Conjuncts {
			if len(c) == 1 {
				if c[0].Terminal {
					// Single-terminal conjunct inside a multi-conjunct rule.
					lifted := termNT(c[0].Name)
					// Pair it with nothing? A length-1 conjunct constrains
					// the fragment to a single edge; model it as the
					// non-terminal itself by a unit trick: X & … where X
					// must span the same fragment. Represent as the pair
					// (lifted, ·) is impossible in binary form, so wrap:
					// treat the conjunct as the non-terminal `lifted`
					// directly via a marker pair {-1, lifted}.
					rule.conjuncts = append(rule.conjuncts, [2]int{-1, lifted})
					continue
				}
				rule.conjuncts = append(rule.conjuncts, [2]int{-1, intern(c[0].Name)})
				continue
			}
			// Binarise to exactly one (B, C) pair.
			b, err := lower(p.Lhs, c[:1])
			if err != nil {
				return nil, err
			}
			cc, err := lower(p.Lhs, c[1:])
			if err != nil {
				return nil, err
			}
			rule.conjuncts = append(rule.conjuncts, [2]int{b, cc})
		}
		n.rules = append(n.rules, rule)
	}
	for t := range n.termRules {
		sort.Ints(n.termRules[t])
	}
	return n, nil
}

// Result holds the evaluated (upper-approximation) relations.
type Result struct {
	nm   *normal
	n    int
	mats []matrix.Bool
}

// Relation returns the computed relation of the named non-terminal, sorted.
func (r *Result) Relation(nt string) []matrix.Pair {
	a, ok := r.nm.index[nt]
	if !ok {
		return nil
	}
	return matrix.Pairs(r.mats[a])
}

// Has reports membership.
func (r *Result) Has(nt string, i, j int) bool {
	a, ok := r.nm.index[nt]
	return ok && r.mats[a].Get(i, j)
}

// Evaluate runs the conjunctive matrix closure on the graph with the given
// backend (nil selects the serial sparse backend). Per fixpoint pass, each
// conjunctive rule contributes the intersection of its conjunct products.
func Evaluate(g *graph.Graph, cg *Grammar, be matrix.Backend) (*Result, error) {
	//lint:allow cfpqlint/ctxflow ctx-less convenience API kept for the paper-faithful surface; EvaluateContext is the ctx-aware path
	return EvaluateContext(context.Background(), g, cg, be)
}

// EvaluateContext is Evaluate with cooperative cancellation between
// fixpoint passes.
func EvaluateContext(ctx context.Context, g *graph.Graph, cg *Grammar, be matrix.Backend) (*Result, error) {
	nm, err := cg.compile()
	if err != nil {
		return nil, err
	}
	if be == nil {
		be = matrix.Sparse()
	}
	n := g.Nodes()
	res := &Result{nm: nm, n: n, mats: make([]matrix.Bool, len(nm.names))}
	for a := range res.mats {
		res.mats[a] = be.NewMatrix(n)
	}
	for t, as := range nm.termRules {
		for _, e := range g.EdgesWithLabel(t) {
			for _, a := range as {
				res.mats[a].Set(e.From, e.To)
			}
		}
	}
	for changed := true; changed; {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		changed = false
		for _, rule := range nm.rules {
			acc := be.NewMatrix(n)
			for ci, c := range rule.conjuncts {
				var prod matrix.Bool
				if c[0] < 0 {
					// Unit conjunct: the fragment must itself derive from
					// the single non-terminal c[1].
					prod = res.mats[c[1]].Clone()
				} else {
					prod = be.NewMatrix(n)
					prod.AddMul(res.mats[c[0]], res.mats[c[1]])
				}
				if ci == 0 {
					acc.Or(prod)
				} else {
					acc.And(prod)
				}
			}
			if res.mats[rule.a].Or(acc) {
				changed = true
			}
		}
	}
	return res, nil
}

// Recognize reports whether the word derives from start under the
// conjunctive grammar, by evaluating on the word's chain graph (exact on
// linear inputs per Okhotin's matrix parsing).
func Recognize(cg *Grammar, start string, word []string) (bool, error) {
	res, err := Evaluate(graph.Word(word), cg, nil)
	if err != nil {
		return false, err
	}
	return res.Has(start, 0, len(word)), nil
}
