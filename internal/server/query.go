// This file is the service's declarative query path: QueryRequest is the
// JSON wire form of a cfpq.Request (node names in place of ids, registry
// names in place of bound values), Service.Do resolves it and hands it to
// the library planner — Prepared.Do for grammar queries (the cached-read
// strategy), Engine.Do for RPQ expressions (planned from scratch on a
// snapshot). Every legacy query method and route is a shim over Do, so
// the planner is the one evaluation path of the server.

package server

import (
	"context"
	"encoding/json"
	"errors"
	"time"

	"cfpq"
)

// QueryRequest is the wire form of one declarative query — the body of
// POST /v1/query. Graph (and, for grammar queries, Grammar) name registry
// entries; Sources/Targets are node names or decimal ids; the remaining
// fields mirror cfpq.Request.
type QueryRequest struct {
	Graph   string `json:"graph"`
	Grammar string `json:"grammar,omitempty"`
	Backend string `json:"backend,omitempty"`

	// Nonterminal queries R_Nonterminal of the named grammar; Expr is an
	// RPQ expression (no grammar; evaluated uncached on a graph snapshot).
	Nonterminal string `json:"nonterminal,omitempty"`
	Expr        string `json:"expr,omitempty"`

	// Sources/Targets restrict the answer; nil means unrestricted, a
	// present-but-empty list is an empty restriction (it selects nothing).
	// Not omitempty: an empty restriction must survive re-encoding.
	Sources []string `json:"sources"`
	Targets []string `json:"targets"`

	Output        string `json:"output,omitempty"`
	Limit         int    `json:"limit,omitempty"`
	MaxPathLength int    `json:"max_path_length,omitempty"`

	// Trace asks the evaluation to collect its per-pass trace; the answer
	// carries it as explain.passes (empty for cached reads, which run no
	// closure passes).
	Trace bool `json:"trace,omitempty"`
}

// PathStep is one edge of a returned witness path, node names resolved.
type PathStep struct {
	From  string `json:"from"`
	Label string `json:"label"`
	To    string `json:"to"`
}

// QueryAnswer is the response to one QueryRequest. Exactly the fields of
// the request's output are set; Explain names the strategy the planner
// chose and Stats the closure work it performed.
type QueryAnswer struct {
	Output string       `json:"output"`
	Exists *bool        `json:"exists,omitempty"`
	Count  *int         `json:"count,omitempty"`
	Pairs  []NamedPair  `json:"pairs,omitempty"`
	Paths  [][]PathStep `json:"paths,omitempty"`
	// Truncated reports that limit clipped the answer: the full relation
	// has more than count pairs, or the path enumeration found more than
	// count witnesses.
	Truncated bool         `json:"truncated,omitempty"`
	Explain   cfpq.Explain `json:"explain"`
	Stats     cfpq.Stats   `json:"stats"`
}

// countStrategy ticks the per-strategy metrics counter n times.
func (s *Service) countStrategy(strategy cfpq.Strategy, n int64) {
	switch strategy {
	case cfpq.StrategyFull:
		s.metrics.stratFull.Add(n)
	case cfpq.StrategySourceFrontier:
		s.metrics.stratSourceFrontier.Add(n)
	case cfpq.StrategyTargetFrontier:
		s.metrics.stratTargetFrontier.Add(n)
	case cfpq.StrategyCachedRead:
		s.metrics.stratCachedRead.Add(n)
	}
}

// Do answers one declarative query — the single evaluation path every
// endpoint and legacy service method funnels through. Around the dispatch
// it hangs the cross-cutting observability: the planner's strategy and the
// resolved backend are reported to the HTTP middleware's latency labels
// (QueryLabelsFromContext), and evaluations slower than the configured
// slow-query threshold are dumped — request, strategy, pass trace — to the
// slow-query log.
func (s *Service) Do(ctx context.Context, req QueryRequest) (QueryAnswer, error) {
	slow := time.Duration(s.slowQueryNs.Load())
	forcedTrace := false
	if slow > 0 && !req.Trace {
		// Collect the trace unconditionally while the slow-query log is on:
		// whether a query was slow is only known after it ran.
		req.Trace, forcedTrace = true, true
	}
	start := time.Now()
	ans, err := s.dispatch(ctx, req)
	if err != nil {
		return ans, err
	}
	if ql := QueryLabelsFromContext(ctx); ql != nil {
		be := req.Backend
		if be == "" {
			be = DefaultBackend
		}
		ql.Set(string(ans.Explain.Strategy), be)
	}
	if elapsed := time.Since(start); slow > 0 && elapsed >= slow {
		reqJSON, _ := json.Marshal(req)
		passJSON, _ := json.Marshal(ans.Explain.Passes)
		s.slowQueryLogger().Warn("slow query",
			"duration", elapsed,
			"threshold", slow,
			"strategy", string(ans.Explain.Strategy),
			"request", string(reqJSON),
			"passes", string(passJSON),
		)
	}
	if forcedTrace {
		// The trace was collected for the log only; the caller did not ask.
		ans.Explain.Passes = nil
	}
	return ans, nil
}

// dispatch validates and routes one query to its evaluation path.
func (s *Service) dispatch(ctx context.Context, req QueryRequest) (QueryAnswer, error) {
	if req.Graph == "" {
		return QueryAnswer{}, errors.New("server: graph is required")
	}
	if req.Expr != "" {
		if req.Grammar != "" || req.Nonterminal != "" {
			return QueryAnswer{}, errors.New("server: expr excludes grammar and nonterminal")
		}
		return s.doExpr(ctx, req)
	}
	if req.Grammar == "" {
		return QueryAnswer{}, errors.New("server: grammar is required for nonterminal queries")
	}
	if req.Nonterminal == "" {
		return QueryAnswer{}, errors.New("server: one of nonterminal or expr is required")
	}
	t := Target{Graph: req.Graph, Grammar: req.Grammar, Backend: req.Backend}
	e, p, err := s.index(ctx, t)
	if err != nil {
		return QueryAnswer{}, err
	}
	// Prepared answers unknown non-terminals with a plain error; the
	// service contract is 404.
	if err := checkNonterminal(p, req.Nonterminal); err != nil {
		return QueryAnswer{}, err
	}
	e.ge.mu.RLock()
	sources, errS := resolveRestrictionLocked(e.ge, req.Sources)
	targets, errT := resolveRestrictionLocked(e.ge, req.Targets)
	e.ge.mu.RUnlock()
	if errS != nil {
		return QueryAnswer{}, errS
	}
	if errT != nil {
		return QueryAnswer{}, errT
	}
	res, err := p.Do(ctx, cfpq.Request{
		Nonterminal:   req.Nonterminal,
		Sources:       sources,
		Targets:       targets,
		Output:        cfpq.Output(req.Output),
		Limit:         req.Limit,
		MaxPathLength: req.MaxPathLength,
		Trace:         req.Trace,
	})
	if err != nil {
		return QueryAnswer{}, s.noteErr(err)
	}
	s.countStrategy(res.Explain.Strategy, 1)
	return renderAnswer(e.ge, req, res), nil
}

// doExpr answers an RPQ request: expressions have no registry grammar to
// cache an index under, so the engine plans them from scratch against a
// point-in-time snapshot of the graph (restrictions still pick the
// frontier strategies).
func (s *Service) doExpr(ctx context.Context, req QueryRequest) (QueryAnswer, error) {
	be := req.Backend
	if be == "" {
		be = DefaultBackend
	}
	backend, err := BackendByName(be)
	if err != nil {
		return QueryAnswer{}, err
	}
	ge, err := s.graphEntry(req.Graph)
	if err != nil {
		return QueryAnswer{}, err
	}
	ge.mu.RLock()
	snapshot := ge.g.Clone()
	sources, errS := resolveRestrictionLocked(ge, req.Sources)
	targets, errT := resolveRestrictionLocked(ge, req.Targets)
	ge.mu.RUnlock()
	if errS != nil {
		return QueryAnswer{}, errS
	}
	if errT != nil {
		return QueryAnswer{}, errT
	}
	s.metrics.queries.Add(1)
	res, err := cfpq.NewEngine(backend, cfpq.WithMemoryBudget(s.budget.Load())).Do(ctx, cfpq.Request{
		Graph:         snapshot,
		Expr:          req.Expr,
		Sources:       sources,
		Targets:       targets,
		Output:        cfpq.Output(req.Output),
		Limit:         req.Limit,
		MaxPathLength: req.MaxPathLength,
		Trace:         req.Trace,
	})
	if err != nil {
		return QueryAnswer{}, s.noteErr(err)
	}
	s.countStrategy(res.Explain.Strategy, 1)
	return renderAnswer(ge, req, res), nil
}

// resolveRestrictionLocked maps restriction node names to ids; nil stays
// nil (unrestricted). Callers hold the graph entry's lock.
func resolveRestrictionLocked(ge *graphEntry, tokens []string) ([]int, error) {
	if tokens == nil {
		return nil, nil
	}
	out := make([]int, 0, len(tokens))
	for _, tok := range tokens {
		id, err := ge.resolveNode(tok)
		if err != nil {
			return nil, err
		}
		out = append(out, id)
	}
	return out, nil
}

// renderAnswer shapes a planner Result into the wire answer, resolving
// node names under the graph entry's read lock.
func renderAnswer(ge *graphEntry, req QueryRequest, res *cfpq.Result) QueryAnswer {
	out := req.Output
	if out == "" {
		out = string(cfpq.OutputPairs)
	}
	ans := QueryAnswer{Output: out, Explain: res.Explain, Stats: res.Stats}
	switch cfpq.Output(out) {
	case cfpq.OutputExists:
		exists := res.Exists
		ans.Exists = &exists
	case cfpq.OutputCount:
		count := res.Count
		ans.Count = &count
	case cfpq.OutputPaths:
		count := res.Count
		ans.Count = &count
		ans.Truncated = res.Truncated
		paths := res.AllPaths()
		ge.mu.RLock()
		ans.Paths = make([][]PathStep, len(paths))
		for k, path := range paths {
			steps := make([]PathStep, len(path))
			for x, e := range path {
				steps[x] = PathStep{From: ge.nodeName(e.From), Label: e.Label, To: ge.nodeName(e.To)}
			}
			ans.Paths[k] = steps
		}
		ge.mu.RUnlock()
	default: // pairs
		count := res.Count
		ans.Count = &count
		ans.Truncated = res.Truncated
		pairs := res.AllPairs()
		ge.mu.RLock()
		ans.Pairs = make([]NamedPair, len(pairs))
		for k, pr := range pairs {
			ans.Pairs[k] = NamedPair{From: ge.nodeName(pr.I), To: ge.nodeName(pr.J)}
		}
		ge.mu.RUnlock()
	}
	return ans
}
