package server

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"cfpq/internal/graph"
	"cfpq/internal/replica"
	"cfpq/internal/store"
)

// Replication wiring. A Service plays either side:
//
//   - Leader: any Service with an attached store. ReplicaManifest,
//     ReplicaGraphSnapshot and ReplicaTail expose the store's WAL tail to
//     followers (the HTTP layer serves them under /v1/replica/...).
//   - Follower: a Service with the write gate on (SetReadOnly) whose
//     replica.Replicator applies the leader's stream through the Applier
//     methods below — the same write-ahead + incremental delta-patch path
//     AddEdges uses, so a follower never runs a cold closure to absorb
//     replicated writes.
//
// A durable follower re-journals every replicated frame into its own WAL
// with the leader's record kind, which keeps its store byte-compatible
// with the stream and makes followers chainable.

// ErrSnapshotNeeded marks a tail request the leader cannot serve from its
// WAL — the position was compacted away, overshoots the head, splits a
// batch, or names a dead epoch. The HTTP layer maps it to 410 Gone and the
// follower re-bootstraps from a fresh snapshot.
var ErrSnapshotNeeded = errors.New("server: WAL tail unavailable; bootstrap from a fresh snapshot")

// tailPageBytes caps one ReplicaTail response page. A lagging follower
// pages through the backlog in chunks instead of receiving one giant
// response; RemainingBytes tells it (and the staleness math) how much is
// still pending.
const tailPageBytes int64 = 4 << 20

// ReplicationController is the follower-side handle the HTTP layer talks
// to: *replica.Replicator implements it.
type ReplicationController interface {
	Status() replica.Status
	Promote(ctx context.Context) error
}

// SetReplication attaches the follower's replicator handle so the HTTP
// layer can serve /v1/replication/status, /readyz and /v1/promote.
func (s *Service) SetReplication(rc ReplicationController) {
	s.replMu.Lock()
	s.replication = rc
	s.replMu.Unlock()
}

func (s *Service) replicationController() ReplicationController {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return s.replication
}

// SetReadinessMaxLag bounds the staleness (in records behind the leader)
// up to which /readyz still reports this follower routable; 0 accepts any
// finite lag as long as the stream is live.
func (s *Service) SetReadinessMaxLag(records uint64) { s.readinessMaxLag.Store(records) }

// Promote detaches this follower from its leader: the replication stream
// drains and stops, the write gate opens, and the node serves writes as a
// leader from its consistent prefix of the old leader's stream.
func (s *Service) Promote(ctx context.Context) (replica.Status, error) {
	rc := s.replicationController()
	if rc == nil {
		return replica.Status{}, errors.New("server: this node is not a follower")
	}
	if err := rc.Promote(ctx); err != nil {
		return rc.Status(), err
	}
	s.SetReadOnly(false)
	return rc.Status(), nil
}

// ReplicationStatus assembles the /v1/replication/status payload for
// whichever role this node plays: a follower reports its stream status
// (replica.Status), a leader its graphs' stream positions and attached
// followers, a store-less standalone node just its role. A promoted
// follower reports as a leader.
func (s *Service) ReplicationStatus() any {
	promoted := false
	if rc := s.replicationController(); rc != nil {
		st := rc.Status()
		if st.State != replica.StatePromoted {
			return st
		}
		promoted = true
	}
	out := map[string]any{"role": "standalone"}
	if promoted {
		out["promoted"] = true
	}
	st := s.store
	if st == nil {
		return out
	}
	out["role"] = "leader"
	out["config_version"] = st.ConfigVersion()
	graphs := []replica.GraphMeta{}
	for _, name := range st.GraphNames() {
		if seq, epoch, err := st.GraphPos(name); err == nil {
			graphs = append(graphs, replica.GraphMeta{Name: name, Seq: seq, Epoch: epoch})
		}
	}
	out["graphs"] = graphs
	out["followers"] = st.TailReservations()
	return out
}

// Ready is the /readyz predicate: leaders and standalone nodes are always
// ready; a follower is ready while it is actively streaming within the
// configured lag bound (SetReadinessMaxLag). Bootstrapping and degraded
// (leader unreachable beyond StaleAfter) followers report unready so load
// balancers stop routing to them.
func (s *Service) Ready() (bool, map[string]any) {
	rc := s.replicationController()
	if rc == nil {
		return true, map[string]any{"status": "ready"}
	}
	st := rc.Status()
	if st.State == replica.StatePromoted {
		return true, map[string]any{"status": "ready", "state": st.State}
	}
	maxLag := s.readinessMaxLag.Load()
	if st.Ready(maxLag) {
		return true, map[string]any{"status": "ready", "state": st.State, "lag_records": st.LagRecords}
	}
	detail := map[string]any{
		"status": "unready", "state": st.State,
		"lag_records": st.LagRecords, "max_lag": maxLag,
	}
	if st.Error != "" {
		detail["error"] = st.Error
	}
	return false, detail
}

// --- leader side ------------------------------------------------------

// leaderStore returns the attached store or an error explaining why this
// node cannot serve replication.
func (s *Service) leaderStore() (*store.Store, error) {
	if s.store == nil {
		return nil, errors.New("server: no store attached; start cfpqd with -data-dir to lead")
	}
	return s.store, nil
}

// ReplicaManifest describes this leader's registry for a follower's sync:
// every grammar's text, every graph's stream position and epoch, and the
// config version followers watch for registry drift.
func (s *Service) ReplicaManifest() (*replica.Manifest, error) {
	st, err := s.leaderStore()
	if err != nil {
		return nil, err
	}
	m := &replica.Manifest{ConfigVersion: st.ConfigVersion(), Grammars: map[string]string{}}
	s.mu.Lock()
	for name, e := range s.grammars {
		m.Grammars[name] = e.src
	}
	s.mu.Unlock()
	for _, name := range st.GraphNames() {
		seq, epoch, err := st.GraphPos(name)
		if err != nil {
			continue // deleted between listing and lookup
		}
		m.Graphs = append(m.Graphs, replica.GraphMeta{Name: name, Seq: seq, Epoch: epoch})
	}
	return m, nil
}

// ReplicaGraphSnapshot serialises one graph's bootstrap payload at its
// current stream position.
func (s *Service) ReplicaGraphSnapshot(name string) (data []byte, seq, epoch uint64, err error) {
	st, err := s.leaderStore()
	if err != nil {
		return nil, 0, 0, err
	}
	data, seq, epoch, err = st.ReplicaSnapshot(name)
	if errors.Is(err, store.ErrNotFound) {
		return nil, 0, 0, notFoundf("server: unknown graph %q", name)
	}
	return data, seq, epoch, err
}

// ReplicaTail serves one long-poll of a graph's WAL tail: batches after
// seq `from` of stream `epoch`, waiting up to `wait` for new writes before
// answering an empty page. Each poll refreshes the follower's tail
// reservation, which holds background compaction away from the records it
// still needs (Compact/Snapshot called explicitly ignore reservations and
// lagging followers get ErrSnapshotNeeded instead). An unservable
// position — compacted away, past the head, a dead epoch — returns
// ErrSnapshotNeeded; an unknown graph returns ErrNotFound.
func (s *Service) ReplicaTail(ctx context.Context, graphName, follower string, from, epoch uint64, wait time.Duration) (*replica.TailResponse, error) {
	st, err := s.leaderStore()
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(wait)
	for {
		// Grab the change channel BEFORE inspecting the tail: a write
		// landing between the check and the park then wakes us instead of
		// being missed for a full poll interval.
		changed := st.Changed()
		head, gotEpoch, err := st.GraphPos(graphName)
		if err != nil {
			return nil, notFoundf("server: unknown graph %q", graphName)
		}
		if gotEpoch != epoch {
			return nil, fmt.Errorf("server: graph %q stream epoch is %d, not %d: %w",
				graphName, gotEpoch, epoch, ErrSnapshotNeeded)
		}
		batches, head, remaining, ok := st.TailSince(graphName, from, tailPageBytes)
		if !ok {
			return nil, fmt.Errorf("server: graph %q has no tail at seq %d (head %d): %w",
				graphName, from, head, ErrSnapshotNeeded)
		}
		st.ReserveTail(graphName, follower, from)
		if len(batches) > 0 || wait <= 0 || !time.Now().Before(deadline) {
			return &replica.TailResponse{
				Graph:          graphName,
				From:           from,
				LeaderSeq:      head,
				ConfigVersion:  st.ConfigVersion(),
				RemainingBytes: remaining,
				Batches:        replica.WireBatches(batches),
			}, nil
		}
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-changed:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// --- follower side: the replica.Applier implementation ----------------

// ApplyGrammar installs a replicated grammar, bypassing the follower's
// write gate. Re-applying the text already registered is a no-op, so a
// manifest re-sync does not drop cached indexes built on it.
func (s *Service) ApplyGrammar(name, text string) error {
	s.mu.Lock()
	e := s.grammars[name]
	s.mu.Unlock()
	if e != nil && e.src == text {
		return nil
	}
	return s.registerGrammar(name, text)
}

// BootstrapGraph installs a replicated graph snapshot at the given stream
// position and epoch, replacing any local copy and dropping every cached
// index on it (their node-id namespace died with the old copy). On a
// durable follower the snapshot is persisted via the same write-ahead
// ordering RegisterGraph uses.
func (s *Service) BootstrapGraph(name string, g *graph.Graph, names []string, seq, epoch uint64) error {
	if name == "" {
		return fmt.Errorf("server: empty graph name")
	}
	if g == nil {
		return fmt.Errorf("server: nil graph")
	}
	byID := make([]string, g.Nodes())
	copy(byID, names)
	nameMap := make(map[string]int)
	for id, n := range byID {
		if n != "" {
			nameMap[n] = id
		}
	}
	ge := &graphEntry{g: g, names: nameMap, byID: byID, seq: seq, epoch: epoch}
	// Same replacement protocol as RegisterGraph: hold the old entry's
	// write lock across the store replacement and the registry swap so no
	// replicated batch can journal into the new WAL while mutating the
	// orphaned entry.
	s.mu.Lock()
	old := s.graphs[name]
	s.mu.Unlock()
	if old != nil {
		old.mu.Lock()
	}
	if s.store != nil {
		if err := s.store.CreateGraphAt(name, g, byID, seq, epoch); err != nil {
			if old != nil {
				old.mu.Unlock()
			}
			return err
		}
	}
	s.mu.Lock()
	s.graphs[name] = ge
	dropped := s.removeIndexesLocked(func(k IndexKey) bool { return k.Graph == name })
	s.mu.Unlock()
	if old != nil {
		old.mu.Unlock()
	}
	markStale(dropped)
	return nil
}

// GraphPos reports a graph's local stream position and epoch — the pair
// the replicator resumes tailing from.
func (s *Service) GraphPos(name string) (seq, epoch uint64, ok bool) {
	s.mu.Lock()
	ge := s.graphs[name]
	s.mu.Unlock()
	if ge == nil {
		return 0, 0, false
	}
	ge.mu.RLock()
	defer ge.mu.RUnlock()
	return ge.seq, ge.epoch, true
}

// ApplyReplicatedEdges applies one WAL batch from the replication stream:
// journaled write-ahead into the follower's own store (durable followers)
// with the leader's record kind, folded into the in-memory graph with the
// store-mirror interning rules, and patched into every cached index via
// the incremental delta closure. endSeq is the leader's seq after the
// batch; a position mismatch returns an error wrapping store.ErrSeqMismatch
// and the replicator re-bootstraps instead of diverging.
func (s *Service) ApplyReplicatedEdges(ctx context.Context, graphName string, kind store.RecordKind, recs []store.EdgeRecord, endSeq uint64) error {
	if !kind.Valid() {
		return fmt.Errorf("server: unknown WAL record kind %d", byte(kind))
	}
	if uint64(len(recs)) > endSeq {
		return fmt.Errorf("server: batch of %d records cannot end at seq %d: %w",
			len(recs), endSeq, store.ErrSeqMismatch)
	}
	start := endSeq - uint64(len(recs))
	ge, err := s.graphEntry(graphName)
	if err != nil {
		return err
	}

	ge.mu.Lock()
	s.mu.Lock()
	current := s.graphs[graphName] == ge
	s.mu.Unlock()
	if !current {
		ge.mu.Unlock()
		return fmt.Errorf("server: graph %q was replaced during the apply; retry", graphName)
	}
	if ge.seq != start {
		ge.mu.Unlock()
		return fmt.Errorf("server: graph %q: replicated batch starts at seq %d but the local stream is at %d: %w",
			graphName, start, ge.seq, store.ErrSeqMismatch)
	}
	for _, r := range recs {
		if r.Label == "" || r.From == "" || r.To == "" {
			ge.mu.Unlock()
			return fmt.Errorf("server: replicated record %+v has an empty token", r)
		}
	}
	if s.store != nil {
		// Write-ahead, like AddEdges: the frame lands fsynced in the local
		// WAL (with the leader's kind, so local replay reproduces the exact
		// id assignment) before the first in-memory mutation.
		//lint:allow cfpqlint/lockscope write-ahead protocol: the replicated frame MUST be journaled under the entry lock before the in-memory apply
		if err := s.store.AppendReplicated(graphName, kind, recs, endSeq); err != nil {
			ge.mu.Unlock()
			return fmt.Errorf("server: journaling replicated batch: %w", err)
		}
	}
	edges := make([]graph.Edge, 0, len(recs))
	maxNode := -1
	for _, r := range recs {
		from := ge.internReplicated(r.From, kind)
		to := ge.internReplicated(r.To, kind)
		ge.g.AddEdge(from, r.Label, to)
		edges = append(edges, graph.Edge{From: from, Label: r.Label, To: to})
		if from > maxNode {
			maxNode = from
		}
		if to > maxNode {
			maxNode = to
		}
	}
	ge.seq = endSeq
	ge.version++
	ge.mu.Unlock()
	s.metrics.replBatches.Add(1)
	s.metrics.replEdges.Add(int64(len(edges)))

	var res UpdateResult
	s.patchIndexes(ctx, graphName, ge, edges, maxNode, &res)
	return nil
}

// internReplicated resolves one replicated endpoint token with the store
// mirror's rules — names first, then numeric ids growing the node range,
// then intern-as-new — so a follower's in-memory graph evolves exactly as
// the leader's mirror (and its own WAL replay) does. RecordIDs tokens
// resolve as canonical ids and never consult the name table. Callers hold
// ge.mu for writing.
func (ge *graphEntry) internReplicated(tok string, kind store.RecordKind) int {
	if kind == store.RecordIDs {
		id, _ := strconv.Atoi(tok)
		ge.growNodes(id + 1)
		return id
	}
	if id, ok := ge.names[tok]; ok {
		return id
	}
	if id, err := strconv.Atoi(tok); err == nil && id >= 0 {
		ge.growNodes(id + 1)
		return id
	}
	id := ge.g.Nodes()
	ge.growNodes(id + 1)
	ge.byID[id] = tok
	ge.names[tok] = id
	return id
}

// growNodes extends the node range to at least n and pads the id→name
// table to match. Callers hold ge.mu for writing.
func (ge *graphEntry) growNodes(n int) {
	if n > ge.g.Nodes() {
		ge.g.EnsureNode(n - 1)
	}
	for len(ge.byID) < ge.g.Nodes() {
		ge.byID = append(ge.byID, "")
	}
}
