package server

import (
	"fmt"
	"sync"
	"testing"

	"cfpq/internal/core"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// TestConcurrentQueriesDuringUpdates races many readers (Has, Count,
// Relation, Counts — all answering under the per-index read lock) against
// writers streaming edge updates into the same cached indexes. Run under
// `go test -race`; afterwards every index must equal a from-scratch
// closure of the final graph, and the accumulated incremental work must be
// cheaper than one cold closure per update would have been.
func TestConcurrentQueriesDuringUpdates(t *testing.T) {
	const (
		k       = 16 // word a^k b^(k-1) plus spare trailing nodes
		writers = 2
		readers = 6
		batches = 8 // edge batches per writer
	)
	word := make([]string, 0, 2*k-1)
	for i := 0; i < k; i++ {
		word = append(word, "a")
	}
	for i := 0; i < k-1; i++ {
		word = append(word, "b")
	}
	g := graph.Word(word)
	// Room for every b-edge the writers will append: b^(k-1) grows toward
	// b^(k-1+writers*batches), pairing with the leading a's.
	g.EnsureNode(2*k - 1 + writers*batches)
	s := New()
	if err := s.RegisterGraph("word", g, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterGrammar("anbn", anbnGrammar); err != nil {
		t.Fatal(err)
	}
	backends := []string{"sparse", "dense-parallel"}
	targets := make([]Target, len(backends))
	for i, be := range backends {
		targets[i] = Target{Graph: "word", Grammar: "anbn", Backend: be}
		if _, err := s.Count(ctx, targets[i], "S"); err != nil { // warm the caches
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	start := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for b := 0; b < batches; b++ {
				// Writers interleave appending b-edges past the end of
				// the initial word (whose last node is 2k-1), each writer
				// taking every writers-th slot.
				at := 2*k - 1 + writers*b + w
				spec := EdgeSpec{From: fmt.Sprint(at), Label: "b", To: fmt.Sprint(at + 1)}
				if _, err := s.AddEdges(ctx, "word", []EdgeSpec{spec}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			tgt := targets[r%len(targets)]
			for i := 0; i < 40; i++ {
				switch i % 4 {
				case 0:
					if _, err := s.Has(ctx, tgt, "S", "0", fmt.Sprint(2*k)); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, err := s.Count(ctx, tgt, "S"); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, err := s.Relation(ctx, tgt, "S"); err != nil {
						errs <- err
						return
					}
				case 3:
					if _, err := s.Counts(ctx, tgt); err != nil {
						errs <- err
						return
					}
				}
			}
		}(r)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every cached index must now agree with a cold closure of the final
	// graph — the interleaved updates lost nothing.
	finalWord := make([]string, 0, 2*k)
	for i := 0; i < k; i++ {
		finalWord = append(finalWord, "a")
	}
	for i := 0; i < k-1+writers*batches; i++ {
		finalWord = append(finalWord, "b")
	}
	gFinal := graph.Word(finalWord)
	cnf := mustCNF(t, anbnGrammar)
	coldIx, coldStats := core.NewEngine(core.WithBackend(matrix.Sparse())).Run(gFinal, cnf)
	wantCount := coldIx.Count("S")
	if wantCount <= k-1 {
		t.Fatalf("test is vacuous: updates added no pairs (count %d)", wantCount)
	}
	totalUpdates := 0
	for _, tgt := range targets {
		if n, err := s.Count(ctx, tgt, "S"); err != nil || n != wantCount {
			t.Fatalf("backend %s: post-race Count = %d, %v; want %d", tgt.Backend, n, err, wantCount)
		}
		st, ok := s.IndexStatsFor(tgt)
		if !ok {
			t.Fatalf("backend %s: index stats missing", tgt.Backend)
		}
		if st.Updates == 0 {
			t.Fatalf("backend %s: no incremental updates recorded", tgt.Backend)
		}
		totalUpdates += st.Update.Products
		// The incremental stream must beat the alternative it replaces:
		// recomputing the closure from scratch on every edge update.
		if st.Update.Products >= coldStats.Products*st.Updates {
			t.Fatalf("backend %s: %d update products across %d updates; recomputing cold each time is %d — the incremental path must be cheaper",
				tgt.Backend, st.Update.Products, st.Updates, coldStats.Products*st.Updates)
		}
	}
	t.Logf("update products across backends %d; one cold closure = %d products", totalUpdates, coldStats.Products)
}
