package server

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"time"

	"cfpq"
	"cfpq/internal/matrix"
	"cfpq/internal/store"
)

// Persistent mode: a Service with an attached store.Store survives
// restarts. Every mutation is teed into the store write-ahead — graph
// registrations become snapshots, grammar registrations become grammar
// files, AddEdges batches become fsynced WAL records — and every closure
// the service builds is saved as an index file with the edge-stream
// position (seq) it covers. AttachStore runs the other direction: it
// warm-starts an empty service from the recovered store, restoring the
// registry and rebuilding every saved index as a live Prepared handle
// without running a single closure — indexes whose watermark is behind
// the recovered edge stream are patched forward with the incremental
// delta closure instead.

// AttachStore wires a recovered store into an empty service and
// warm-starts from it: grammars and graphs are restored into the
// registry, and every loadable saved index becomes a built cache entry
// whose Prepared handle was constructed from the file (Build stats zero —
// no closure ran). After AttachStore returns, all subsequent mutations
// persist through the store.
//
// Index files that fail to load or to patch (corrupt payload, grammar
// gone or re-registered with other non-terminals, unknown backend) are
// skipped, not fatal: a lost index only costs a rebuild on first query.
// Damaged graph state, by contrast, is an error — serving silently
// without a registered graph would turn restarts into data loss.
func (s *Service) AttachStore(ctx context.Context, st *store.Store) error {
	s.mu.Lock()
	if s.store != nil {
		s.mu.Unlock()
		return fmt.Errorf("server: store already attached")
	}
	if len(s.graphs) != 0 || len(s.grammars) != 0 {
		s.mu.Unlock()
		return fmt.Errorf("server: AttachStore requires an empty service")
	}
	s.mu.Unlock()

	grammars, err := st.Grammars()
	if err != nil {
		return fmt.Errorf("server: reading stored grammars: %w", err)
	}
	names := make([]string, 0, len(grammars))
	for name := range grammars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		gram, err := cfpq.ParseGrammar(grammars[name])
		if err != nil {
			return fmt.Errorf("server: stored grammar %q: %w", name, err)
		}
		cnf, err := cfpq.ToCNF(gram)
		if err != nil {
			return fmt.Errorf("server: stored grammar %q: %w", name, err)
		}
		s.mu.Lock()
		s.grammars[name] = &grammarEntry{gram: gram, cnf: cnf, src: grammars[name]}
		s.mu.Unlock()
	}

	for _, name := range st.GraphNames() {
		g, byID, seq, err := st.GraphState(name)
		if err != nil {
			return fmt.Errorf("server: restoring graph %q: %w", name, err)
		}
		nameMap := make(map[string]int)
		for id, n := range byID {
			if n != "" {
				nameMap[n] = id
			}
		}
		ge := &graphEntry{g: g, names: nameMap, byID: byID, seq: seq}
		if _, epoch, err := st.GraphPos(name); err == nil {
			// The persisted stream epoch survives restarts, so a restarted
			// follower resumes tailing the same leader stream it left.
			ge.epoch = epoch
		}
		s.mu.Lock()
		s.graphs[name] = ge
		s.mu.Unlock()

		for _, info := range st.Indexes(name) {
			if err := ctx.Err(); err != nil {
				return err
			}
			s.warmStartIndex(ctx, st, ge, info)
		}
	}

	s.mu.Lock()
	s.store = st
	s.mu.Unlock()
	// From here every AddEdges fsync feeds the latency histogram behind
	// GET /metrics.
	st.SetFsyncObserver(func(d time.Duration) {
		s.obs.walFsync.Observe(d.Seconds())
	})
	return nil
}

// warmStartIndex restores one saved index as a built cache entry,
// patching it forward to the graph's recovered seq when the file's
// watermark is behind. Failures are silent skips (see AttachStore).
func (s *Service) warmStartIndex(ctx context.Context, st *store.Store, ge *graphEntry, info store.IndexInfo) {
	warmStart := time.Now()
	s.mu.Lock()
	re := s.grammars[info.Grammar]
	s.mu.Unlock()
	if re == nil {
		return
	}
	be, err := cfpq.BackendByName(info.Backend)
	if err != nil {
		return
	}
	mbe, ok := matrix.BackendByName(info.Backend)
	if !ok {
		return
	}
	ix, seq, err := st.LoadIndex(info, re.cnf, mbe)
	if err != nil {
		return
	}
	eng := cfpq.NewEngine(be)
	if seq < ge.seq {
		// The index is behind the recovered edge stream. If the WAL still
		// holds the tail, patch exactly the missing edges; if compaction
		// folded them into the snapshot, repair by re-seeding the delta
		// closure with the full edge set — idempotent for everything the
		// index already covers, and still no from-scratch closure.
		tail, ok := st.EdgesSince(info.Graph, seq)
		if !ok {
			tail = ge.g.Edges()
		}
		if _, err := eng.Update(ctx, ix, tail...); err != nil {
			return
		}
	} else if seq > ge.seq {
		// The index claims edges the recovered stream does not have — a
		// snapshot/WAL mismatch (e.g. hand-edited files). Unsound to
		// serve; let the first query rebuild.
		return
	}
	if ge.g.Nodes() > ix.Nodes() {
		ix.Grow(ge.g.Nodes())
	}
	p, err := eng.PrepareFromIndex(ge.g.Clone(), re.cnf, ix)
	if err != nil {
		return
	}
	key := IndexKey{Graph: info.Graph, Grammar: info.Grammar, Backend: info.Backend}
	e := &indexEntry{key: key, ge: ge, eng: eng, built: true, p: p}
	s.mu.Lock()
	s.indexes[key] = e
	s.mu.Unlock()
	s.metrics.warmStarts.Add(1)
	s.obs.warmStart.Observe(time.Since(warmStart).Seconds())
}

// persistIndex saves a freshly built index to the attached store, best
// effort: persistence is an optimization (the next snapshot retries), so
// failures only tick a counter. seq is the graph's edge-stream position
// captured when the build snapshotted the graph; the saved file may
// contain consequences of later patches, which is sound — recovery
// re-applies the tail and re-applying present bits is a no-op.
func (s *Service) persistIndex(key IndexKey, seq uint64, p *cfpq.Prepared) {
	if s.store == nil {
		return
	}
	var buf bytes.Buffer
	if err := p.WriteIndex(&buf); err != nil {
		s.metrics.persistErrors.Add(1)
		return
	}
	if err := s.store.SaveIndex(key.Graph, key.Grammar, key.Backend, seq, buf.Bytes()); err != nil {
		s.metrics.persistErrors.Add(1)
	}
}

// Snapshot folds the named graph's WAL into a fresh snapshot together
// with every built index on it, so the next restart warm-starts with no
// replay and no patching. An empty name snapshots every graph.
func (s *Service) Snapshot(graphName string) error {
	if s.store == nil {
		return fmt.Errorf("server: no store attached")
	}
	s.mu.Lock()
	var names []string
	if graphName == "" {
		for n := range s.graphs {
			names = append(names, n)
		}
	} else if s.graphs[graphName] != nil {
		names = []string{graphName}
	}
	s.mu.Unlock()
	if graphName != "" && len(names) == 0 {
		return notFoundf("server: unknown graph %q", graphName)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := s.snapshotGraph(name); err != nil {
			return err
		}
	}
	return nil
}

func (s *Service) snapshotGraph(name string) error {
	s.mu.Lock()
	ge := s.graphs[name]
	var entries []*indexEntry
	for k, e := range s.indexes {
		if k.Graph == name && e.ge == ge {
			entries = append(entries, e)
		}
	}
	s.mu.Unlock()
	if ge == nil {
		return notFoundf("server: unknown graph %q", name)
	}

	var indexes []store.IndexData
	for _, e := range entries {
		e.mu.Lock()
		built, stale, p, key := e.built, e.stale, e.p, e.key
		e.mu.Unlock()
		if !built || stale {
			continue
		}
		// Capture seq before serialising: a patch landing in between
		// leaves the file with extra consequences under an understated
		// watermark, which recovery re-applies idempotently. The reverse
		// order could claim coverage of edges the bytes never saw.
		ge.mu.RLock()
		seq := ge.seq
		ge.mu.RUnlock()
		var buf bytes.Buffer
		if err := p.WriteIndex(&buf); err != nil {
			s.metrics.persistErrors.Add(1)
			continue
		}
		indexes = append(indexes, store.IndexData{
			Grammar: key.Grammar,
			Backend: key.Backend,
			Seq:     seq,
			Data:    buf.Bytes(),
		})
	}
	// A graph replaced since we captured ge would receive index files
	// from the old graph's node namespace; skip — the replacement was
	// snapshotted by its own registration.
	s.mu.Lock()
	current := s.graphs[name] == ge
	s.mu.Unlock()
	if !current {
		return nil
	}
	return s.store.Snapshot(name, indexes)
}

// StoreStats reports the attached store's statistics; ok is false when
// the service runs purely in memory.
func (s *Service) StoreStats() (store.Stats, bool) {
	if s.store == nil {
		return store.Stats{}, false
	}
	return s.store.Stats(), true
}

// Persistent reports whether a store is attached.
func (s *Service) Persistent() bool { return s.store != nil }

// MetricsSnapshot is a point-in-time copy of the service counters, the
// payload behind /debug/vars.
type MetricsSnapshot struct {
	Queries       int64 `json:"queries"`
	IndexBuilds   int64 `json:"index_builds"`
	WarmStarts    int64 `json:"warm_starts"`
	Updates       int64 `json:"updates"`
	EdgesAdded    int64 `json:"edges_added"`
	PersistErrors int64 `json:"persist_errors"`
	// BudgetRejections counts evaluations rejected by the configured
	// memory budget (SetMemoryBudget); the HTTP layer answers them 413.
	BudgetRejections int64 `json:"budget_rejections"`
	// WALAppends/WALBytes/WALFsyncs mirror the attached store's WAL write
	// counters (zero without a store): journaled batches, bytes written and
	// fsyncs issued this session. Replication lag-in-bytes is measured
	// against these on the leader.
	WALAppends int64 `json:"wal_appends"`
	WALBytes   int64 `json:"wal_bytes"`
	WALFsyncs  int64 `json:"wal_fsyncs"`
	// ReplicatedBatches/ReplicatedEdges count the leader's WAL stream
	// applied locally (non-zero only on followers).
	ReplicatedBatches int64 `json:"replicated_batches"`
	ReplicatedEdges   int64 `json:"replicated_edges"`
	// Strategies counts answered queries per planner strategy (full,
	// source-frontier, target-frontier, cached-read), so plan selection is
	// observable in production.
	Strategies map[string]int64 `json:"strategies"`
	// Subscription counters (POST /v1/subscribe): registered ever, live
	// now, pair batches and pairs delivered, deliveries carrying a resync
	// marker, and batches dropped on slow consumers. Per-subscription
	// detail lives under "cfpqd_subscriptions" in /debug/vars.
	Subscriptions       int64 `json:"subscriptions"`
	SubscriptionsActive int64 `json:"subscriptions_active"`
	SubscriptionEvents  int64 `json:"subscription_events"`
	SubscriptionPairs   int64 `json:"subscription_pairs"`
	SubscriptionResyncs int64 `json:"subscription_resyncs"`
	SubscriptionDrops   int64 `json:"subscription_drops"`
}

// Metrics snapshots the service counters.
func (s *Service) Metrics() MetricsSnapshot {
	m := MetricsSnapshot{
		Queries:           s.metrics.queries.Load(),
		IndexBuilds:       s.metrics.indexBuilds.Load(),
		WarmStarts:        s.metrics.warmStarts.Load(),
		Updates:           s.metrics.updates.Load(),
		EdgesAdded:        s.metrics.edgesAdded.Load(),
		PersistErrors:     s.metrics.persistErrors.Load(),
		BudgetRejections:  s.metrics.budgetRejections.Load(),
		ReplicatedBatches: s.metrics.replBatches.Load(),
		ReplicatedEdges:   s.metrics.replEdges.Load(),
		Strategies: map[string]int64{
			string(cfpq.StrategyFull):           s.metrics.stratFull.Load(),
			string(cfpq.StrategySourceFrontier): s.metrics.stratSourceFrontier.Load(),
			string(cfpq.StrategyTargetFrontier): s.metrics.stratTargetFrontier.Load(),
			string(cfpq.StrategyCachedRead):     s.metrics.stratCachedRead.Load(),
		},
	}
	m.Subscriptions = s.metrics.subsTotal.Load()
	m.SubscriptionEvents = s.metrics.subEvents.Load()
	m.SubscriptionPairs = s.metrics.subPairs.Load()
	m.SubscriptionResyncs = s.metrics.subResyncs.Load()
	m.SubscriptionDrops = s.metrics.subDrops.Load()
	s.subMu.Lock()
	m.SubscriptionsActive = int64(len(s.subsLive))
	s.subMu.Unlock()
	if s.store != nil {
		m.WALAppends, m.WALBytes, m.WALFsyncs = s.store.WALCounters()
	}
	return m
}
