package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"cfpq/internal/obs"
)

// parseBucketLine splits one histogram bucket sample into its series key
// (family + labels minus le), the le bound, and the cumulative count.
func parseBucketLine(line string) (key, le string, count uint64, ok bool) {
	open := strings.Index(line, "_bucket{")
	end := strings.LastIndex(line, "} ")
	if open < 0 || end < open {
		return "", "", 0, false
	}
	labels := line[open+len("_bucket{") : end]
	leAt := strings.LastIndex(labels, `le="`)
	if leAt < 0 {
		return "", "", 0, false
	}
	le = strings.TrimSuffix(labels[leAt+len(`le="`):], `"`)
	rest := strings.TrimSuffix(labels[:leAt], ",")
	n, err := strconv.ParseUint(strings.TrimSpace(line[end+2:]), 10, 64)
	if err != nil {
		return "", "", 0, false
	}
	return line[:open] + "{" + rest + "}", le, n, true
}

// assertScrapeWellFormed checks every histogram in one /metrics body:
// within each series, cumulative bucket counts never decrease as le grows
// (the exposition writes buckets in ascending-le order), and the +Inf
// bucket equals the series _count.
func assertScrapeWellFormed(t *testing.T, body string) {
	t.Helper()
	lastCount := map[string]uint64{}
	infCount := map[string]uint64{}
	for _, line := range strings.Split(body, "\n") {
		key, le, n, ok := parseBucketLine(line)
		if !ok {
			continue
		}
		if prev, seen := lastCount[key]; seen && n < prev {
			t.Fatalf("bucket counts not monotone for %s: %d after %d (le=%s)", key, n, prev, le)
		}
		lastCount[key] = n
		if le == "+Inf" {
			infCount[key] = n
		}
	}
	for _, line := range strings.Split(body, "\n") {
		name, rest, found := strings.Cut(line, "_count{")
		if !found || strings.HasPrefix(line, "#") {
			continue
		}
		labels, val, found := strings.Cut(rest, "} ")
		if !found {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSpace(val), 10, 64)
		if err != nil {
			continue
		}
		key := name + "{" + labels + "}"
		if inf, seen := infCount[key]; seen && inf != n {
			t.Fatalf("+Inf bucket %d != count %d for %s", inf, n, key)
		}
	}
}

func scrape(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	return readAll(t, resp)
}

func TestMetricsEndpointUnderConcurrentQueries(t *testing.T) {
	svc := New()
	srv := httptest.NewServer(Handler(svc))
	defer srv.Close()

	if code, body := httpDo(t, srv, http.MethodPut, "/v1/graphs/g?format=edgelist",
		"a knows b\nb knows c\nc knows d\n"); code != http.StatusOK {
		t.Fatalf("PUT graph: %d %v", code, body)
	}
	if code, body := httpDo(t, srv, http.MethodPut, "/v1/grammars/r",
		"S -> knows | knows S"); code != http.StatusOK {
		t.Fatalf("PUT grammar: %d %v", code, body)
	}

	// Queries race metric scrapes: every scrape observed mid-flight must
	// still be well-formed (monotone cumulative buckets, +Inf == count).
	// Goroutines only collect; the test goroutine asserts.
	var wg sync.WaitGroup
	const queriers, scrapers, rounds = 4, 2, 25
	errs := make(chan error, queriers*rounds)
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, err := srv.Client().Post(srv.URL+"/v1/query", "application/json",
					strings.NewReader(`{"graph":"g","grammar":"r","nonterminal":"S","sources":["a"]}`))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	bodies := make([][]string, scrapers)
	for sc := 0; sc < scrapers; sc++ {
		wg.Add(1)
		go func(sc int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, err := srv.Client().Get(srv.URL + "/metrics")
				if err != nil {
					errs <- err
					return
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				bodies[sc] = append(bodies[sc], string(raw))
			}
		}(sc)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, got := range bodies {
		for _, body := range got {
			assertScrapeWellFormed(t, body)
		}
	}

	final := scrape(t, srv)
	assertScrapeWellFormed(t, final)
	// The query route's latency series carries the planner's strategy and
	// the resolved backend as labels (grammar queries against a cached
	// index answer as cached reads).
	wantSeries := `cfpqd_http_request_duration_seconds_bucket{route="POST /v1/query",strategy="cached-read",backend="` + DefaultBackend + `",status="200"`
	if !strings.Contains(final, wantSeries) {
		t.Errorf("scrape missing query latency series %q", wantSeries)
	}
	for _, want := range []string{
		"cfpqd_build_info{",
		"cfpqd_process_uptime_seconds",
		"cfpqd_queries_total",
		"cfpqd_index_build_duration_seconds_bucket{",
		"cfpqd_subscription_dropped_total",
		"cfpqd_replication_lag_records",
	} {
		if !strings.Contains(final, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

func TestMetricNamesAreVetted(t *testing.T) {
	// Registration already panics on a malformed name; this walk keeps the
	// whole catalogue honest against the naming rules (snake_case, _total
	// counters, unit suffixes elsewhere) as metrics are added.
	svc := New()
	for _, name := range svc.MetricsRegistry().Names() {
		kind := obs.KindGauge
		if strings.HasSuffix(name, "_total") {
			kind = obs.KindCounter
		}
		if err := obs.CheckName(kind, name); err != nil {
			t.Errorf("metric %s: %v", name, err)
		}
	}
}

func TestHealthzCarriesBuildInfoAndRequestID(t *testing.T) {
	srv := httptest.NewServer(Handler(New()))
	defer srv.Close()

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "test-id-42")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "test-id-42" {
		t.Errorf("X-Request-ID = %q, want echoed test-id-42", got)
	}
	for _, want := range []string{`"status":"ok"`, `"version":`, `"revision":`, `"uptime_seconds":`} {
		if !strings.Contains(body, want) {
			t.Errorf("healthz missing %s in %s", want, body)
		}
	}

	// A request without the header gets a freshly minted id.
	resp2, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp2)
	if resp2.Header.Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID minted")
	}
}

func TestQueryStatsDurationOverTheWire(t *testing.T) {
	srv := httptest.NewServer(Handler(New()))
	defer srv.Close()
	if code, body := httpDo(t, srv, http.MethodPut, "/v1/graphs/g?format=edgelist",
		"a knows b\n"); code != http.StatusOK {
		t.Fatalf("PUT graph: %d %v", code, body)
	}
	if code, body := httpDo(t, srv, http.MethodPut, "/v1/grammars/r",
		"S -> knows"); code != http.StatusOK {
		t.Fatalf("PUT grammar: %d %v", code, body)
	}
	for i := 0; i < 2; i++ {
		// The second round is a pure cached read; it must still report a
		// positive duration.
		code, body := httpDo(t, srv, http.MethodPost, "/v1/query",
			`{"graph":"g","grammar":"r","nonterminal":"S"}`)
		if code != http.StatusOK {
			t.Fatalf("query %d: %d %v", i, code, body)
		}
		stats, ok := body["stats"].(map[string]any)
		if !ok {
			t.Fatalf("query %d: no stats in %v", i, body)
		}
		if d, _ := stats["duration_ns"].(float64); d <= 0 {
			t.Errorf("query %d: stats.duration_ns = %v, want > 0", i, stats["duration_ns"])
		}
	}

	// trace:true returns the per-pass table for a real evaluation — an RPQ
	// expression always evaluates fresh (grammar queries against a cached
	// index are pass-less cached reads).
	code, body := httpDo(t, srv, http.MethodPost, "/v1/query",
		`{"graph":"g","expr":"knows+","trace":true}`)
	if code != http.StatusOK {
		t.Fatalf("traced query: %d %v", code, body)
	}
	explain, _ := body["explain"].(map[string]any)
	if passes, _ := explain["passes"].([]any); len(passes) == 0 {
		t.Errorf("traced query returned no passes: %v", body)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}
