// This file is the service's Prometheus-style instrument set, served at
// GET /metrics. Every Service owns its own obs.Registry (the same
// rationale as /debug/vars' per-handler injection: nothing package-global,
// so two Services — or two tests — in one process cannot collide).
// Counters that already exist as serviceMetrics atomics are bridged with
// collect-on-scrape CounterFuncs rather than double-counted; replication
// lag, store size and subscription depth are GaugeFuncs computed at scrape
// time from the structures that own them.

package server

import (
	"sync/atomic"
	"time"

	"cfpq/internal/obs"
)

// obsMetrics bundles one Service's scrapeable instruments. The obs package
// validates every name at registration (snake_case, unit suffix), so a
// misnamed metric panics in New rather than surfacing at the first scrape.
type obsMetrics struct {
	reg *obs.Registry

	// httpRequests is the per-route latency histogram behind every HTTP
	// request: route is the mux pattern, strategy/backend are filled by the
	// query paths (empty for non-query routes), status the response code.
	httpRequests *obs.HistogramVec

	// walFsync observes append-path WAL fsync latency (fed through
	// store.SetFsyncObserver when a store is attached).
	walFsync *obs.Histogram

	// indexBuild/warmStart observe full closure builds and store-restored
	// index loads, the two ways a cache slot comes to life.
	indexBuild *obs.Histogram
	warmStart  *obs.Histogram
}

// fsyncBuckets spans the realistic WAL fsync range: fast NVMe commits sit
// near 100µs, a contended spinning disk near 100ms.
var fsyncBuckets = []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, 1}

// newObsMetrics builds the Service's registry. The GaugeFunc/CounterFunc
// closures read s at scrape time, so they must only touch fields that are
// safe without s.mu (atomics, subMu-guarded maps, the store pointer).
func newObsMetrics(s *Service) *obsMetrics {
	reg := obs.NewRegistry()
	m := &obsMetrics{
		reg: reg,
		httpRequests: reg.HistogramVec("cfpqd_http_request_duration_seconds",
			"HTTP request latency by route, planner strategy, matrix backend and status code",
			obs.DefLatencyBuckets, "route", "strategy", "backend", "status"),
		walFsync: reg.Histogram("cfpqd_wal_fsync_duration_seconds",
			"append-path WAL fsync latency", fsyncBuckets),
		indexBuild: reg.Histogram("cfpqd_index_build_duration_seconds",
			"full closure index build latency", obs.DefLatencyBuckets),
		warmStart: reg.Histogram("cfpqd_warm_start_duration_seconds",
			"latency of restoring one saved index as a live handle at startup", obs.DefLatencyBuckets),
	}

	version, revision := buildInfo()
	reg.GaugeVec("cfpqd_build_info",
		"always 1, labeled with the binary's module version and VCS revision",
		"version", "revision").With(version, revision).Set(1)
	reg.GaugeFunc("cfpqd_process_uptime_seconds",
		"seconds since the service was constructed",
		func() float64 { return time.Since(s.started).Seconds() })

	// Replication lag, from the follower's replicator status (all zero on
	// leaders and standalone nodes).
	replStatus := func(pick func(records uint64, bytes int64, age float64) float64) func() float64 {
		return func() float64 {
			rc := s.replicationController()
			if rc == nil {
				return 0
			}
			st := rc.Status()
			return pick(st.LagRecords, st.LagBytes, st.LagAgeSeconds)
		}
	}
	reg.GaugeFunc("cfpqd_replication_lag_records",
		"records behind the leader, worst graph (0 on leaders)",
		replStatus(func(r uint64, _ int64, _ float64) float64 { return float64(r) }))
	reg.GaugeFunc("cfpqd_replication_lag_bytes",
		"WAL bytes behind the leader, worst graph",
		replStatus(func(_ uint64, b int64, _ float64) float64 { return float64(b) }))
	reg.GaugeFunc("cfpqd_replication_lag_age_seconds",
		"how long the worst graph has been behind the leader",
		replStatus(func(_ uint64, _ int64, a float64) float64 { return a }))

	// Subscriptions: live count, buffered-but-unconsumed deliveries, and
	// drops (closed subscriptions' drops are folded into the service
	// counter at Close, so the live+folded sum stays monotone).
	reg.GaugeFunc("cfpqd_subscriptions_active_entries",
		"live standing queries", func() float64 {
			s.subMu.Lock()
			defer s.subMu.Unlock()
			return float64(len(s.subsLive))
		})
	reg.GaugeFunc("cfpqd_subscription_buffer_entries",
		"delivered-but-unconsumed pair batches across live subscriptions",
		func() float64 {
			s.subMu.Lock()
			defer s.subMu.Unlock()
			depth := 0
			for _, ss := range s.subsLive {
				depth += len(ss.Updates())
			}
			return float64(depth)
		})
	reg.CounterFunc("cfpqd_subscription_dropped_total",
		"pair batches discarded on slow subscribers", func() float64 {
			total := s.metrics.subDrops.Load()
			s.subMu.Lock()
			for _, ss := range s.subsLive {
				total += ss.sub.Dropped()
			}
			s.subMu.Unlock()
			return float64(total)
		})

	// Bridges over the pre-existing serviceMetrics atomics.
	counter := func(name, help string, v *atomic.Int64) {
		reg.CounterFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	counter("cfpqd_queries_total", "query operations answered (batch = one per spec)", &s.metrics.queries)
	counter("cfpqd_index_builds_total", "full closure index builds", &s.metrics.indexBuilds)
	counter("cfpqd_warm_starts_total", "indexes restored from the store without a closure", &s.metrics.warmStarts)
	counter("cfpqd_updates_total", "AddEdges calls", &s.metrics.updates)
	counter("cfpqd_edges_added_total", "edges inserted across updates", &s.metrics.edgesAdded)
	counter("cfpqd_budget_rejections_total", "evaluations rejected by the memory budget (HTTP 413)", &s.metrics.budgetRejections)
	counter("cfpqd_persist_errors_total", "best-effort index persistence failures", &s.metrics.persistErrors)
	counter("cfpqd_replicated_batches_total", "replicated WAL batches applied (follower)", &s.metrics.replBatches)
	counter("cfpqd_replicated_edges_total", "edges applied from the replication stream", &s.metrics.replEdges)
	counter("cfpqd_subscriptions_total", "standing queries ever registered", &s.metrics.subsTotal)
	counter("cfpqd_subscription_events_total", "pair batches consumed by subscribers", &s.metrics.subEvents)

	// Store size and WAL write counters (zero without an attached store;
	// the store pointer is written once before serving).
	reg.GaugeFunc("cfpqd_store_wal_bytes",
		"bytes across all live WALs", func() float64 {
			if s.store == nil {
				return 0
			}
			return float64(s.store.Stats().WALBytes)
		})
	reg.CounterFunc("cfpqd_wal_fsyncs_total",
		"WAL fsyncs issued this session", func() float64 {
			if s.store == nil {
				return 0
			}
			_, _, fsyncs := s.store.WALCounters()
			return float64(fsyncs)
		})
	reg.CounterFunc("cfpqd_wal_written_bytes_total",
		"WAL bytes written this session", func() float64 {
			if s.store == nil {
				return 0
			}
			_, written, _ := s.store.WALCounters()
			return float64(written)
		})
	return m
}

// MetricsRegistry exposes the service's obs registry — the Handler mounts
// it at GET /metrics; embedding processes can add their own instruments.
func (s *Service) MetricsRegistry() *obs.Registry { return s.obs.reg }
