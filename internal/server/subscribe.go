// This file is the service's live-query path: a standing query request is
// resolved to a cached cfpq.Prepared handle exactly like POST /v1/query
// resolves a one-shot one, subscribed (cfpq.Prepared.Subscribe), and
// served as a Server-Sent Events stream by POST /v1/subscribe. Every pair
// pushed comes from the incremental closure's per-update delta — the
// server never diffs full results. Followers push too, for free: the
// replicated-apply path (replication.go) lands in the same patchIndexes →
// Prepared.AddEdges call that feeds the handle's subscription hub.

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"cfpq"
)

// SubscribeRequest is the wire form of one standing query — the body of
// POST /v1/subscribe. It is a QueryRequest shorn of the one-shot knobs:
// subscriptions always stream pairs (no output/limit choice), and
// Sources/Targets filter the pushed deltas with Request restriction
// semantics (nil = unrestricted, empty = nothing).
type SubscribeRequest struct {
	Graph       string   `json:"graph"`
	Grammar     string   `json:"grammar,omitempty"`
	Backend     string   `json:"backend,omitempty"`
	Nonterminal string   `json:"nonterminal,omitempty"`
	Sources     []string `json:"sources"`
	Targets     []string `json:"targets"`
}

// SubscriptionInfo is one live subscription's observable state, rendered
// under "cfpqd_subscriptions" in /debug/vars.
type SubscriptionInfo struct {
	ID          int64  `json:"id"`
	Graph       string `json:"graph"`
	Grammar     string `json:"grammar"`
	Backend     string `json:"backend"`
	Nonterminal string `json:"nonterminal"`
	// Events/Pairs count deliveries consumed by the subscriber so far;
	// Resyncs counts deliveries that carried a lost-continuity marker.
	Events  int64 `json:"events"`
	Pairs   int64 `json:"pairs"`
	Resyncs int64 `json:"resyncs"`
	// Dropped counts update batches discarded because the subscriber's
	// bounded buffer was full (each surfaces as a later Resync).
	Dropped int64 `json:"dropped"`
	// LastSeq is the sequence number of the newest delivered update.
	LastSeq uint64 `json:"last_seq"`
	// AgeSeconds is how long the subscription has been connected.
	AgeSeconds float64 `json:"age_seconds"`
}

// ServerSubscription is one registered standing query: the library
// subscription plus the naming and accounting the serving layer adds.
type ServerSubscription struct {
	svc *Service
	sub *cfpq.Subscription
	ge  *graphEntry

	id          int64
	key         IndexKey
	nonterminal string
	started     time.Time

	events  atomic.Int64
	pairs   atomic.Int64
	resyncs atomic.Int64
	lastSeq atomic.Uint64
	closed  atomic.Bool
}

// Updates is the delivery channel (see cfpq.Subscription.Updates): one
// PairBatch per index update that derived new matching pairs, closed when
// the subscription ends — including when the served handle is invalidated
// (graph replaced or outgrown), which a consumer should treat as "re-query
// and resubscribe".
func (ss *ServerSubscription) Updates() <-chan cfpq.PairBatch { return ss.sub.Updates() }

// note records one consumed delivery in the per-subscription and service
// counters.
func (ss *ServerSubscription) note(b cfpq.PairBatch) {
	ss.events.Add(1)
	ss.pairs.Add(int64(len(b.Pairs)))
	ss.lastSeq.Store(b.Seq)
	ss.svc.metrics.subEvents.Add(1)
	ss.svc.metrics.subPairs.Add(int64(len(b.Pairs)))
	if b.Resync {
		ss.resyncs.Add(1)
		ss.svc.metrics.subResyncs.Add(1)
	}
}

// render shapes one delivery into the wire event payload, resolving node
// names under the graph entry's read lock.
func (ss *ServerSubscription) render(b cfpq.PairBatch) wirePairBatch {
	out := wirePairBatch{Seq: b.Seq, Resync: b.Resync, Pairs: make([]NamedPair, len(b.Pairs))}
	ss.ge.mu.RLock()
	for i, p := range b.Pairs {
		out.Pairs[i] = NamedPair{From: ss.ge.nodeName(p.I), To: ss.ge.nodeName(p.J)}
	}
	ss.ge.mu.RUnlock()
	return out
}

// wirePairBatch is the data payload of one SSE "pairs" event.
type wirePairBatch struct {
	Seq    uint64      `json:"seq"`
	Resync bool        `json:"resync,omitempty"`
	Pairs  []NamedPair `json:"pairs"`
}

// Close ends the subscription and deregisters it. Idempotent.
func (ss *ServerSubscription) Close() {
	if ss.closed.Swap(true) {
		return
	}
	ss.sub.Close()
	ss.svc.metrics.subDrops.Add(ss.sub.Dropped())
	ss.svc.subMu.Lock()
	delete(ss.svc.subsLive, ss.id)
	ss.svc.subMu.Unlock()
}

// Subscribe registers a standing query against the target's cached index
// (building it on first use, exactly like a query would) and returns the
// live subscription. Deliveries start strictly after the pairs a query
// issued now would see. With resume set, updates retained since afterSeq
// are replayed first; a gap wider than the retained window delivers a
// single Resync marker instead (the Last-Event-ID contract of the SSE
// route). Subscribing is a read: followers serve subscriptions — fed by
// the replicated apply path — exactly like leaders.
func (s *Service) Subscribe(ctx context.Context, req SubscribeRequest, resume bool, afterSeq uint64) (*ServerSubscription, error) {
	if req.Graph == "" {
		return nil, fmt.Errorf("server: graph is required")
	}
	if req.Grammar == "" {
		return nil, fmt.Errorf("server: grammar is required")
	}
	if req.Nonterminal == "" {
		return nil, fmt.Errorf("server: nonterminal is required")
	}
	t := Target{Graph: req.Graph, Grammar: req.Grammar, Backend: req.Backend}
	e, p, err := s.index(ctx, t)
	if err != nil {
		return nil, err
	}
	if err := checkNonterminal(p, req.Nonterminal); err != nil {
		return nil, err
	}
	e.ge.mu.RLock()
	sources, errS := resolveRestrictionLocked(e.ge, req.Sources)
	targets, errT := resolveRestrictionLocked(e.ge, req.Targets)
	e.ge.mu.RUnlock()
	if errS != nil {
		return nil, errS
	}
	if errT != nil {
		return nil, errT
	}
	creq := cfpq.Request{Nonterminal: req.Nonterminal, Sources: sources, Targets: targets}
	var sub *cfpq.Subscription
	if resume {
		sub, err = p.SubscribeFrom(ctx, creq, afterSeq)
	} else {
		sub, err = p.Subscribe(ctx, creq)
	}
	if err != nil {
		return nil, err
	}
	ss := &ServerSubscription{
		svc: s, sub: sub, ge: e.ge,
		key: t.key(), nonterminal: req.Nonterminal, started: time.Now(),
	}
	s.subMu.Lock()
	s.subNextID++
	ss.id = s.subNextID
	if s.subsLive == nil {
		s.subsLive = map[int64]*ServerSubscription{}
	}
	s.subsLive[ss.id] = ss
	s.subMu.Unlock()
	s.metrics.subsTotal.Add(1)
	return ss, nil
}

// SubscriptionInfos snapshots every live subscription, sorted by id.
func (s *Service) SubscriptionInfos() []SubscriptionInfo {
	s.subMu.Lock()
	subs := make([]*ServerSubscription, 0, len(s.subsLive))
	for _, ss := range s.subsLive {
		subs = append(subs, ss)
	}
	s.subMu.Unlock()
	sort.Slice(subs, func(i, j int) bool { return subs[i].id < subs[j].id })
	out := make([]SubscriptionInfo, len(subs))
	for i, ss := range subs {
		out[i] = SubscriptionInfo{
			ID:          ss.id,
			Graph:       ss.key.Graph,
			Grammar:     ss.key.Grammar,
			Backend:     ss.key.Backend,
			Nonterminal: ss.nonterminal,
			Events:      ss.events.Load(),
			Pairs:       ss.pairs.Load(),
			Resyncs:     ss.resyncs.Load(),
			Dropped:     ss.sub.Dropped(),
			LastSeq:     ss.lastSeq.Load(),
			AgeSeconds:  time.Since(ss.started).Seconds(),
		}
	}
	return out
}

// defaultHeartbeat is the SSE keep-alive comment interval: frequent enough
// that idle streams survive typical proxy idle timeouts, rare enough to be
// free.
const defaultHeartbeat = 15 * time.Second

// SetSubscribeHeartbeat overrides the SSE heartbeat interval (tests use
// short ones); d <= 0 restores the default.
func (s *Service) SetSubscribeHeartbeat(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.subHeartbeatNs.Store(int64(d))
}

func (s *Service) subscribeHeartbeat() time.Duration {
	if ns := s.subHeartbeatNs.Load(); ns > 0 {
		return time.Duration(ns)
	}
	return defaultHeartbeat
}

// serveSubscribe is POST /v1/subscribe: a Server-Sent Events stream of the
// standing query's newly derived pairs.
//
//	id: <seq>                       the update's sequence number — becomes
//	                                the client's Last-Event-ID on reconnect
//	event: pairs                    one index update's new matching pairs:
//	data: {"seq":..,"pairs":[{"from":..,"to":..}],"resync":true?}
//	event: resync                   the served index handle went away
//	                                (graph replaced/outgrown); re-query and
//	                                reconnect without Last-Event-ID
//	: hb                            heartbeat comment on an idle stream
//
// A reconnect carrying Last-Event-ID resumes within the handle's retained
// window; a wider gap (or a handle rebuilt since) delivers one batch with
// "resync":true, meaning re-issue the full query before trusting deltas.
func (s *Service) serveSubscribe(w http.ResponseWriter, r *http.Request) {
	var req SubscribeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxDocumentBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("server: response writer cannot stream"))
		return
	}
	resume := false
	var afterSeq uint64
	if lid := r.Header.Get("Last-Event-ID"); lid != "" {
		v, err := strconv.ParseUint(lid, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad Last-Event-ID %q: %w", lid, err))
			return
		}
		resume, afterSeq = true, v
	}
	ss, err := s.Subscribe(r.Context(), req, resume, afterSeq)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	defer ss.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // reverse proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)
	// The subscription is registered before the first byte: once a client
	// reads this prelude, every later update will reach it.
	fmt.Fprint(w, ": subscribed\n\n")
	fl.Flush()

	hb := time.NewTicker(s.subscribeHeartbeat())
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-hb.C:
			fmt.Fprint(w, ": hb\n\n")
			fl.Flush()
		case b, ok := <-ss.Updates():
			if !ok {
				// The handle was closed under the subscription — the cache
				// entry was invalidated (graph replaced or outgrown by new
				// nodes). Resume state died with it: tell the client to
				// start over rather than trust a Last-Event-ID replay
				// against a different handle generation.
				fmt.Fprint(w, "event: resync\ndata: {\"reason\":\"index handle closed; re-query and reconnect\"}\n\n")
				fl.Flush()
				return
			}
			ss.note(b)
			payload, err := json.Marshal(ss.render(b))
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: pairs\ndata: %s\n\n", b.Seq, payload)
			fl.Flush()
		}
	}
}
