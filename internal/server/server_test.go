package server

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"cfpq/internal/core"
	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// ctx is the background context the service methods take; none of these
// tests exercise cancellation (the root package's engine tests do).
var ctx = context.Background()

func mustCNF(t *testing.T, src string) *grammar.CNF {
	t.Helper()
	return grammar.MustCNF(grammar.MustParse(src))
}

const anbnGrammar = "S -> a S b | a b"

// anbnWordService returns a service holding the word graph a^k b^(k-1)
// with one spare trailing node, so adding the edge (2k-1, b, 2k) later
// completes the word a^k b^k without growing the node set. Nodes are
// addressed by decimal id (no name table).
func anbnWordService(t *testing.T, k int) *Service {
	t.Helper()
	word := make([]string, 0, 2*k-1)
	for i := 0; i < k; i++ {
		word = append(word, "a")
	}
	for i := 0; i < k-1; i++ {
		word = append(word, "b")
	}
	g := graph.Word(word)
	g.EnsureNode(2 * k)
	s := New()
	if err := s.RegisterGraph("word", g, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterGrammar("anbn", anbnGrammar); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestQueryOperations(t *testing.T) {
	s := New()
	edges := `
alice	knows	bob
bob	knows	carol
carol	likes	dora
`
	if _, err := s.LoadGraph("social", "edgelist", strings.NewReader(edges)); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterGrammar("reach", "S -> knows | knows S"); err != nil {
		t.Fatal(err)
	}
	tgt := Target{Graph: "social", Grammar: "reach"}

	ok, err := s.Has(ctx, tgt, "S", "alice", "carol")
	if err != nil || !ok {
		t.Fatalf("Has(alice,carol) = %v, %v; want true", ok, err)
	}
	ok, err = s.Has(ctx, tgt, "S", "carol", "alice")
	if err != nil || ok {
		t.Fatalf("Has(carol,alice) = %v, %v; want false", ok, err)
	}
	n, err := s.Count(ctx, tgt, "S")
	if err != nil || n != 3 {
		t.Fatalf("Count = %d, %v; want 3 (alice→bob, alice→carol, bob→carol)", n, err)
	}
	pairs, err := s.Relation(ctx, tgt, "S")
	if err != nil {
		t.Fatal(err)
	}
	want := []NamedPair{{"alice", "bob"}, {"alice", "carol"}, {"bob", "carol"}}
	if !reflect.DeepEqual(pairs, want) {
		t.Fatalf("Relation = %v, want %v", pairs, want)
	}
	counts, err := s.Counts(ctx, tgt)
	if err != nil || counts["S"] != 3 {
		t.Fatalf("Counts = %v, %v; want S:3", counts, err)
	}
}

func TestQueryAllBackendsAgree(t *testing.T) {
	s := anbnWordService(t, 6)
	var counts []int
	for _, be := range matrix.Backends() {
		n, err := s.Count(ctx, Target{Graph: "word", Grammar: "anbn", Backend: be.Name()}, "S")
		if err != nil {
			t.Fatalf("backend %s: %v", be.Name(), err)
		}
		counts = append(counts, n)
	}
	for i, n := range counts {
		if n != counts[0] {
			t.Fatalf("backend %s count %d != %s count %d",
				matrix.Backends()[i].Name(), n, matrix.Backends()[0].Name(), counts[0])
		}
	}
	if len(s.Stats()) != len(matrix.Backends()) {
		t.Fatalf("expected %d cached indexes, got %d", len(matrix.Backends()), len(s.Stats()))
	}
}

func TestQueryErrors(t *testing.T) {
	s := anbnWordService(t, 3)
	tgt := Target{Graph: "word", Grammar: "anbn"}
	if _, err := s.Count(ctx, Target{Graph: "nope", Grammar: "anbn"}, "S"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown graph: want ErrNotFound, got %v", err)
	}
	if _, err := s.Count(ctx, Target{Graph: "word", Grammar: "nope"}, "S"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown grammar: want ErrNotFound, got %v", err)
	}
	if _, err := s.Has(ctx, tgt, "S", "zzz", "0"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown node: want ErrNotFound, got %v", err)
	}
	if _, err := s.Count(ctx, tgt, "Nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown non-terminal: want ErrNotFound, got %v", err)
	}
	if err := s.RegisterGraph("bad", graph.New(3), map[string]int{"x": 5}); err == nil {
		t.Error("out-of-range name table: expected error")
	}
	if _, err := s.Count(ctx, Target{Graph: "word", Grammar: "anbn", Backend: "gpu"}, "S"); err == nil {
		t.Error("unknown backend: expected error")
	}
	if _, err := s.AddEdges(ctx, "word", []EdgeSpec{{From: "0", Label: "", To: "1"}}); err == nil {
		t.Error("empty label: expected error")
	}
	if _, err := s.AddEdges(ctx, "word", []EdgeSpec{{From: "999", Label: "a", To: "0"}}); err == nil {
		t.Error("out-of-range numeric node: expected error")
	}
	// A rejected batch must be atomic: the valid leading edge is NOT
	// applied, so the graph and its cached indexes stay consistent.
	before, _ := s.Count(ctx, tgt, "S")
	if _, err := s.AddEdges(ctx, "word", []EdgeSpec{
		{From: "0", Label: "a", To: "1"},
		{From: "999", Label: "a", To: "0"},
	}); err == nil {
		t.Error("bad batch: expected error")
	}
	for _, gi := range s.Graphs() {
		if gi.Version != 0 {
			t.Errorf("rejected batch mutated graph %q (version %d)", gi.Name, gi.Version)
		}
	}
	if after, _ := s.Count(ctx, tgt, "S"); after != before {
		t.Errorf("rejected batch changed query results: %d -> %d", before, after)
	}
	if err := s.RegisterGrammar("bad", "not a grammar"); err == nil {
		t.Error("malformed grammar: expected error")
	}
	if _, err := s.LoadGraph("bad", "xml", strings.NewReader("")); err == nil {
		t.Error("unknown format: expected error")
	}
}

// TestIncrementalUpdateCheaperThanColdClosure is the headline serving-path
// property: adding an edge to a graph with a cached index patches the
// index via the incremental delta closure, reaches exactly the state a
// from-scratch closure would, and does so with strictly fewer matrix
// products (asserted via core.Stats.Products).
func TestIncrementalUpdateCheaperThanColdClosure(t *testing.T) {
	const k = 32
	s := anbnWordService(t, k)
	tgt := Target{Graph: "word", Grammar: "anbn", Backend: "sparse"}

	last, spare := fmt.Sprint(2*k-1), fmt.Sprint(2*k)
	n, err := s.Count(ctx, tgt, "S") // builds and caches the index
	if err != nil || n != k-1 {
		t.Fatalf("pre-update Count = %d, %v; want %d", n, err, k-1)
	}
	if ok, _ := s.Has(ctx, tgt, "S", "0", spare); ok {
		t.Fatalf("pair (0,%s) must not exist before the update", spare)
	}

	res, err := s.AddEdges(ctx, "word", []EdgeSpec{{From: last, Label: "b", To: spare}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Added != 1 || res.Patched != 1 || res.Invalidated != 0 || res.NewNodes != 0 {
		t.Fatalf("unexpected update result %+v", res)
	}
	if res.UpdateStats.Products == 0 {
		t.Fatal("the update must perform real closure work (new pairs appear)")
	}

	// The patched index answers the new query without any rebuild.
	if ok, err := s.Has(ctx, tgt, "S", "0", spare); err != nil || !ok {
		t.Fatalf("post-update Has(0,%s) = %v, %v; want true", spare, ok, err)
	}
	if n, _ := s.Count(ctx, tgt, "S"); n != k {
		t.Fatalf("post-update Count = %d, want %d", n, k)
	}

	// Cold reference: a from-scratch closure over the same final graph.
	word := make([]string, 0, 2*k)
	for i := 0; i < k; i++ {
		word = append(word, "a")
	}
	for i := 0; i < k; i++ {
		word = append(word, "b")
	}
	g := graph.Word(word)
	g.EnsureNode(2 * k)
	cnf := mustCNF(t, anbnGrammar)
	coldIx, coldStats := core.NewEngine(core.WithBackend(matrix.Sparse())).Run(g, cnf)

	st, ok := s.IndexStatsFor(tgt)
	if !ok {
		t.Fatal("index stats missing")
	}
	if st.Updates != 1 || st.Update.Products != res.UpdateStats.Products {
		t.Fatalf("index stats %+v disagree with update result %+v", st, res)
	}
	if st.Update.Products >= coldStats.Products {
		t.Fatalf("incremental update took %d products, cold closure %d — update must be cheaper",
			st.Update.Products, coldStats.Products)
	}
	if got := coldIx.Count("S"); got != k {
		t.Fatalf("cold closure Count = %d, want %d", got, k)
	}
}

// TestUpdateWithNewNodesInvalidates: an edge that interns a fresh node
// cannot be patched into fixed-size matrices; the cached index is dropped
// and the next query rebuilds at the larger dimension.
func TestUpdateWithNewNodesInvalidates(t *testing.T) {
	s := New()
	if _, err := s.LoadGraph("g", "edgelist", strings.NewReader("x a y\ny b z\n")); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterGrammar("anbn", anbnGrammar); err != nil {
		t.Fatal(err)
	}
	tgt := Target{Graph: "g", Grammar: "anbn"}
	if n, err := s.Count(ctx, tgt, "S"); err != nil || n != 1 {
		t.Fatalf("Count = %d, %v; want 1 (x→z)", n, err)
	}
	res, err := s.AddEdges(ctx, "g", []EdgeSpec{
		{From: "w", Label: "a", To: "x"}, // w is new: grows the graph
		{From: "z", Label: "b", To: "v"}, // v is new too
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NewNodes != 2 || res.Invalidated != 1 || res.Patched != 0 {
		t.Fatalf("unexpected update result %+v", res)
	}
	if len(s.Stats()) != 0 {
		t.Fatalf("invalidated index still cached: %v", s.Stats())
	}
	// Rebuild covers the new nodes: w a x a y b z b v adds (w,v) and (x,z).
	if n, err := s.Count(ctx, tgt, "S"); err != nil || n != 2 {
		t.Fatalf("post-growth Count = %d, %v; want 2", n, err)
	}
	if ok, err := s.Has(ctx, tgt, "S", "w", "v"); err != nil || !ok {
		t.Fatalf("Has(w,v) = %v, %v; want true", ok, err)
	}
	if st, ok := s.IndexStatsFor(tgt); !ok || st.Nodes != 5 {
		t.Fatalf("rebuilt index stats = %+v, %v; want 5 nodes", st, ok)
	}
}

func TestReplacingGrammarOrGraphDropsIndexes(t *testing.T) {
	s := anbnWordService(t, 4)
	tgt := Target{Graph: "word", Grammar: "anbn"}
	if _, err := s.Count(ctx, tgt, "S"); err != nil {
		t.Fatal(err)
	}
	if len(s.Stats()) != 1 {
		t.Fatalf("expected 1 cached index, got %d", len(s.Stats()))
	}
	if err := s.RegisterGrammar("anbn", "S -> a S | a"); err != nil {
		t.Fatal(err)
	}
	if len(s.Stats()) != 0 {
		t.Fatal("replacing a grammar must drop its indexes")
	}
	if n, err := s.Count(ctx, tgt, "S"); err != nil || n != 4+3+2+1 {
		t.Fatalf("Count under replaced grammar = %d, %v; want 10 (a-chain pairs)", n, err)
	}
	if err := s.RegisterGraph("word", graph.Word([]string{"a"}), nil); err != nil {
		t.Fatal(err)
	}
	if len(s.Stats()) != 0 {
		t.Fatal("replacing a graph must drop its indexes")
	}
	if n, err := s.Count(ctx, tgt, "S"); err != nil || n != 1 {
		t.Fatalf("Count on replaced graph = %d, %v; want 1", n, err)
	}
}

func TestNTriplesLoadAndNames(t *testing.T) {
	s := New()
	nt := `<c1> <subClassOf> <c0> .
<c2> <subClassOf> <c1> .
`
	st, err := s.LoadGraph("onto", "ntriples", strings.NewReader(nt))
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 3 || st.Edges != 4 { // inverse `_r` edges are synthesised
		t.Fatalf("loaded %+v, want 3 nodes / 4 edges", st)
	}
	if err := s.RegisterGrammar("up", "S -> subClassOf | subClassOf S"); err != nil {
		t.Fatal(err)
	}
	pairs, err := s.Relation(ctx, Target{Graph: "onto", Grammar: "up"}, "S")
	if err != nil {
		t.Fatal(err)
	}
	// Node ids follow first appearance: c1=0, c0=1, c2=2; pairs come back
	// in row-major id order.
	want := []NamedPair{{"c1", "c0"}, {"c2", "c1"}, {"c2", "c0"}}
	if !reflect.DeepEqual(pairs, want) {
		t.Fatalf("Relation = %v, want %v", pairs, want)
	}
}
