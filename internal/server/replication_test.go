package server

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"cfpq/internal/replica"
)

// Integration tests for the replication subsystem: a leader Service served
// over httptest, followed by a second Service driven by a real
// replica.Replicator. These run under -race in CI.

// fastReplOpts keeps the replication loops snappy for tests. StaleAfter is
// generous so a slow CI machine never trips the degraded state mid-test.
var fastReplOpts = replica.Options{
	PollWait:   250 * time.Millisecond,
	Backoff:    10 * time.Millisecond,
	MaxBackoff: 100 * time.Millisecond,
	StaleAfter: 30 * time.Second,
}

const reachGrammar = "S -> knows | knows S"

var socialEdges = strings.TrimSpace(`
alice	knows	bob
bob	knows	carol
carol	knows	dora
`)

// leaderService builds a persistent Service preloaded with the social
// graph and reachability grammar, served over httptest.
func leaderService(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s := persistentService(t, t.TempDir())
	if _, err := s.LoadGraph("social", "edgelist", strings.NewReader(socialEdges)); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterGrammar("reach", reachGrammar); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(s))
	t.Cleanup(srv.Close)
	return s, srv
}

// runningFollower is one follower node: its Service, its replicator, and a
// kill switch that simulates the process dying mid-stream.
type runningFollower struct {
	svc  *Service
	rep  *replica.Replicator
	kill func() // cancels the stream and waits for Run to return
}

// startFollower wires svc as a follower of leaderURL and starts the
// stream. The follower is registered for cleanup but can be killed earlier
// by the test.
func startFollower(t *testing.T, svc *Service, leaderURL, id string) *runningFollower {
	t.Helper()
	svc.SetReadOnly(true)
	rep := replica.New(&replica.Client{Base: leaderURL, FollowerID: id}, svc, fastReplOpts)
	svc.SetReplication(rep)
	rctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := rep.Run(rctx); err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("follower %s: Run: %v", id, err)
		}
	}()
	var once bool
	kill := func() {
		if once {
			return
		}
		once = true
		cancel()
		<-done
	}
	t.Cleanup(kill)
	return &runningFollower{svc: svc, rep: rep, kill: kill}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// caughtUp reports whether the follower has applied everything the leader
// has journaled for the graph, on a live stream.
func caughtUp(f *runningFollower, leader *Service, graph string) bool {
	lseq, lepoch, ok := leader.GraphPos(graph)
	if !ok {
		return false
	}
	fseq, fepoch, ok := f.svc.GraphPos(graph)
	st := f.rep.Status()
	return ok && fepoch == lepoch && fseq == lseq && st.State == replica.StateStreaming
}

func TestFollowerWriteGate(t *testing.T) {
	s := New()
	s.SetReadOnly(true)
	if err := s.RegisterGrammar("g", reachGrammar); !errors.Is(err, ErrReadOnly) {
		t.Errorf("RegisterGrammar on a follower: err = %v, want ErrReadOnly", err)
	}
	if _, err := s.LoadGraph("g", "edgelist", strings.NewReader(socialEdges)); !errors.Is(err, ErrReadOnly) {
		t.Errorf("LoadGraph on a follower: err = %v, want ErrReadOnly", err)
	}
	if _, err := s.AddEdges(ctx, "g", []EdgeSpec{{From: "a", Label: "x", To: "b"}}); !errors.Is(err, ErrReadOnly) {
		t.Errorf("AddEdges on a follower: err = %v, want ErrReadOnly", err)
	}

	// The HTTP layer maps the gate to 403 on every mutation route.
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	for _, req := range []struct{ method, path, body string }{
		{"PUT", "/v1/grammars/g", reachGrammar},
		{"PUT", "/v1/graphs/g", socialEdges},
		{"POST", "/v1/graphs/g/edges", `{"edges":[{"from":"a","label":"x","to":"b"}]}`},
	} {
		if code, _ := httpDo(t, srv, req.method, req.path, req.body); code != 403 {
			t.Errorf("%s %s on a follower = %d, want 403", req.method, req.path, code)
		}
	}

	s.SetReadOnly(false)
	if err := s.RegisterGrammar("g", reachGrammar); err != nil {
		t.Errorf("RegisterGrammar after opening the gate: %v", err)
	}
}

// TestLeaderFollowerReplication is the happy path end to end: bootstrap,
// live tailing of new writes, identical query answers on both nodes, and
// observability on both sides.
func TestLeaderFollowerReplication(t *testing.T) {
	leader, srv := leaderService(t)
	fdir := t.TempDir()
	f := startFollower(t, persistentService(t, fdir), srv.URL, "f1")
	waitFor(t, 10*time.Second, func() bool { return caughtUp(f, leader, "social") }, "initial sync")

	tgt := Target{Graph: "social", Grammar: "reach"}
	want, err := leader.Relation(ctx, tgt, "S")
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.svc.Relation(ctx, tgt, "S")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("follower relation = %v, leader = %v", got, want)
	}

	// A write on the leader streams over and lands via the incremental
	// patch — the edge closes a cycle between existing nodes, so the
	// follower's cached index gains the new pairs without a rebuild (a
	// node-growing edge would invalidate it, as it does on the leader).
	builds := f.svc.Metrics().IndexBuilds
	if _, err := leader.AddEdges(ctx, "social", []EdgeSpec{
		{From: "dora", Label: "knows", To: "alice"},
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool { return caughtUp(f, leader, "social") }, "live tail")
	want, err = leader.Relation(ctx, tgt, "S")
	if err != nil {
		t.Fatal(err)
	}
	got, err = f.svc.Relation(ctx, tgt, "S")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after live tail: follower relation = %v, leader = %v", got, want)
	}
	if n := f.svc.Metrics().IndexBuilds; n != builds {
		t.Errorf("follower rebuilt an index absorbing replicated edges (%d -> %d builds)", builds, n)
	}
	if m := f.svc.Metrics(); m.ReplicatedBatches == 0 || m.ReplicatedEdges == 0 {
		t.Errorf("replication counters not ticking: %+v", m)
	}

	// Follower-side status: applied seq == leader seq, zero lag.
	st := f.rep.Status()
	lseq, _, _ := leader.GraphPos("social")
	if len(st.Graphs) != 1 || st.Graphs[0].AppliedSeq != lseq || st.Graphs[0].LagRecords != 0 {
		t.Errorf("follower status = %+v, want applied seq %d with no lag", st, lseq)
	}
	if !st.Ready(0) {
		t.Errorf("caught-up follower not ready: %+v", st)
	}

	// Leader-side status: the follower shows up as a tail reservation.
	ls, ok := leader.ReplicationStatus().(map[string]any)
	if !ok || ls["role"] != "leader" {
		t.Fatalf("leader status = %#v, want role leader", leader.ReplicationStatus())
	}

	// HTTP observability on the follower.
	fsrv := httptest.NewServer(Handler(f.svc))
	defer fsrv.Close()
	if code, body := httpDo(t, fsrv, "GET", "/v1/replication/status", ""); code != 200 || body["role"] != "follower" {
		t.Errorf("GET /v1/replication/status = %d %v", code, body)
	}
	if code, _ := httpDo(t, fsrv, "GET", "/readyz", ""); code != 200 {
		t.Errorf("GET /readyz on a caught-up follower = %d, want 200", code)
	}
	if code, _ := httpDo(t, fsrv, "GET", "/healthz", ""); code != 200 {
		t.Errorf("GET /healthz = %d, want 200", code)
	}
}

// TestPartitionTolerance is the subsystem's acceptance invariant: the
// leader keeps taking writes while a follower is dead; on restart the
// follower catches up — through its WAL position when the tail survives,
// through a snapshot re-bootstrap when compaction folded it away — and a
// fixed query answers identically on both nodes.
func TestPartitionTolerance(t *testing.T) {
	for _, compact := range []bool{false, true} {
		name := "wal-catchup"
		if compact {
			name = "snapshot-rebootstrap"
		}
		t.Run(name, func(t *testing.T) {
			leader, srv := leaderService(t)
			fdir := t.TempDir()
			f := startFollower(t, persistentService(t, fdir), srv.URL, "f1")
			waitFor(t, 10*time.Second, func() bool { return caughtUp(f, leader, "social") }, "initial sync")

			// Build the follower's index now so the restart warm-starts it.
			tgt := Target{Graph: "social", Grammar: "reach"}
			if _, err := f.svc.Relation(ctx, tgt, "S"); err != nil {
				t.Fatal(err)
			}

			// Kill the follower mid-stream: stream cancelled, store closed,
			// nothing flushed.
			f.kill()

			// The leader keeps taking writes during the partition.
			for i := 0; i < 3; i++ {
				if _, err := leader.AddEdges(ctx, "social", []EdgeSpec{
					{From: "eve", Label: "knows", To: fmt.Sprintf("n%d", i)},
				}); err != nil {
					t.Fatal(err)
				}
			}
			if compact {
				// Fold the WAL into the snapshot: the dead follower's tail
				// position is gone and catch-up must go through a fresh
				// snapshot (410 on the first poll after restart).
				if err := leader.Snapshot("social"); err != nil {
					t.Fatal(err)
				}
			}

			// Restart: warm-start from the follower's own files, then
			// resume the stream from the recovered position.
			f2 := startFollower(t, reopen(t, f.svc, fdir), srv.URL, "f1")
			waitFor(t, 10*time.Second, func() bool { return caughtUp(f2, leader, "social") }, "catch-up after restart")

			want, err := leader.Relation(ctx, tgt, "S")
			if err != nil {
				t.Fatal(err)
			}
			got, err := f2.svc.Relation(ctx, tgt, "S")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("after catch-up: follower relation = %v, leader = %v", got, want)
			}

			st := f2.rep.Status()
			lseq, _, _ := leader.GraphPos("social")
			if len(st.Graphs) != 1 || st.Graphs[0].AppliedSeq != lseq {
				t.Fatalf("follower status = %+v, want applied seq %d", st, lseq)
			}
			if compact && st.Graphs[0].Bootstraps == 0 {
				t.Errorf("compacted tail caught up without a snapshot re-bootstrap: %+v", st.Graphs[0])
			}
			if !compact && st.Graphs[0].Bootstraps != 0 {
				t.Errorf("intact tail forced a re-bootstrap: %+v", st.Graphs[0])
			}
		})
	}
}

// TestCompactionRacingFollower interleaves leader writes with explicit
// compactions while a follower streams live: some polls lose the race and
// answer 410, and the follower must converge through re-bootstraps instead
// of diverging or wedging.
func TestCompactionRacingFollower(t *testing.T) {
	leader, srv := leaderService(t)
	// An in-memory follower (no store) exercises the nil-store paths of
	// the Applier too.
	f := startFollower(t, New(), srv.URL, "f1")
	waitFor(t, 10*time.Second, func() bool { return caughtUp(f, leader, "social") }, "initial sync")

	for i := 0; i < 5; i++ {
		if _, err := leader.AddEdges(ctx, "social", []EdgeSpec{
			{From: fmt.Sprintf("a%d", i), Label: "knows", To: fmt.Sprintf("b%d", i)},
		}); err != nil {
			t.Fatal(err)
		}
		// Compact immediately: whenever the follower has not polled the
		// batch yet, its next poll gets 410 and must re-bootstrap.
		if err := leader.Snapshot("social"); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, func() bool { return caughtUp(f, leader, "social") }, "convergence under compaction")

	tgt := Target{Graph: "social", Grammar: "reach"}
	want, err := leader.Relation(ctx, tgt, "S")
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.svc.Relation(ctx, tgt, "S")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after compaction race: follower relation = %v, leader = %v", got, want)
	}
}

// TestPromote turns a streaming follower into a writable leader via the
// HTTP surface.
func TestPromote(t *testing.T) {
	leader, srv := leaderService(t)
	f := startFollower(t, persistentService(t, t.TempDir()), srv.URL, "f1")
	waitFor(t, 10*time.Second, func() bool { return caughtUp(f, leader, "social") }, "initial sync")

	fsrv := httptest.NewServer(Handler(f.svc))
	defer fsrv.Close()
	code, body := httpDo(t, fsrv, "POST", "/v1/promote", "")
	rs, _ := body["replication"].(map[string]any)
	if code != 200 || body["promoted"] != true || rs["state"] != replica.StatePromoted {
		t.Fatalf("POST /v1/promote = %d %v, want 200 promoted", code, body)
	}

	// The write gate is open: the promoted node takes writes...
	if _, err := f.svc.AddEdges(ctx, "social", []EdgeSpec{
		{From: "zed", Label: "knows", To: "alice"},
	}); err != nil {
		t.Fatalf("write after promote: %v", err)
	}
	// ...and, having its own store, reports as a leader and stays ready.
	ls, ok := f.svc.ReplicationStatus().(map[string]any)
	if !ok || ls["role"] != "leader" || ls["promoted"] != true {
		t.Fatalf("promoted status = %#v, want a promoted leader", f.svc.ReplicationStatus())
	}
	if code, _ := httpDo(t, fsrv, "GET", "/readyz", ""); code != 200 {
		t.Errorf("GET /readyz after promote = %d, want 200", code)
	}
	// Promote is idempotent: the stream is already drained, so repeating
	// it succeeds without side effects.
	if code, body := httpDo(t, fsrv, "POST", "/v1/promote", ""); code != 200 || body["promoted"] != true {
		t.Errorf("second promote = %d %v, want 200 promoted", code, body)
	}
}

// TestReadyzStates pins the /readyz contract: leaders are always ready, a
// follower is unready while bootstrapping and once its lag exceeds the
// configured bound.
func TestReadyzStates(t *testing.T) {
	leader, lsrv := leaderService(t)
	if code, _ := httpDo(t, lsrv, "GET", "/readyz", ""); code != 200 {
		t.Errorf("leader /readyz = %d, want 200", code)
	}
	_ = leader

	// A follower whose stream never started is bootstrapping: unready.
	f := New()
	f.SetReadOnly(true)
	rep := replica.New(&replica.Client{Base: "http://127.0.0.1:0"}, f, fastReplOpts)
	f.SetReplication(rep)
	fsrv := httptest.NewServer(Handler(f))
	defer fsrv.Close()
	code, body := httpDo(t, fsrv, "GET", "/readyz", "")
	if code != 503 {
		t.Errorf("bootstrapping follower /readyz = %d %v, want 503", code, body)
	}
	if code, _ := httpDo(t, fsrv, "GET", "/healthz", ""); code != 200 {
		t.Errorf("bootstrapping follower /healthz = %d, want 200 (liveness is not readiness)", code)
	}
}
