package server

import (
	"runtime/debug"
	"sync"
	"time"
)

var (
	buildInfoOnce               sync.Once
	buildVersion, buildRevision string
)

// buildInfo reports the binary's module version and VCS revision, read once
// from the embedded build info. Both fall back to "unknown" (test binaries
// and `go run` builds carry no VCS stamp).
func buildInfo() (version, revision string) {
	buildInfoOnce.Do(func() {
		buildVersion, buildRevision = "unknown", "unknown"
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			buildVersion = bi.Main.Version
		}
		for _, st := range bi.Settings {
			if st.Key == "vcs.revision" && st.Value != "" {
				buildRevision = st.Value
			}
		}
	})
	return buildVersion, buildRevision
}

// Uptime is how long this Service has existed — the /healthz and /metrics
// uptime source.
func (s *Service) Uptime() time.Duration { return time.Since(s.started) }
