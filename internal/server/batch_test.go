package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// socialService registers the small named social graph the query-operation
// tests use, with a Knows -> knows Knows | knows grammar.
func socialService(t *testing.T) *Service {
	t.Helper()
	s := New()
	edges := `
alice	knows	bob
bob	knows	carol
carol	knows	dora
`
	if _, err := s.LoadGraph("social", "edgelist", strings.NewReader(edges)); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterGrammar("reach", "Knows -> knows Knows | knows"); err != nil {
		t.Fatal(err)
	}
	return s
}

func target() Target { return Target{Graph: "social", Grammar: "reach"} }

func TestServiceQueryBatch(t *testing.T) {
	s := socialService(t)
	answers, err := s.QueryBatch(ctx, target(), []BatchQuerySpec{
		{Op: "has", Nonterminal: "Knows", From: "alice", To: "dora"},
		{Op: "count", Nonterminal: "Knows"},
		{Nonterminal: "Knows"}, // default op: relation
		{Op: "count-from", Nonterminal: "Knows", Sources: []string{"alice"}},
		{Op: "relation-from", Nonterminal: "Knows", Sources: []string{"bob"}},
		{Op: "has", Nonterminal: "Knows", From: "nobody", To: "dora"}, // per-query error
		{Op: "count", Nonterminal: "Nope"},                            // per-query error
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 7 {
		t.Fatalf("got %d answers, want 7", len(answers))
	}
	if answers[0].Has == nil || !*answers[0].Has {
		t.Errorf("has(alice,dora) = %+v, want true", answers[0])
	}
	// Transitive closure of the 4-node chain: 3+2+1 = 6 pairs.
	if answers[1].Count == nil || *answers[1].Count != 6 {
		t.Errorf("count = %+v, want 6", answers[1])
	}
	if answers[2].Count == nil || *answers[2].Count != 6 || len(answers[2].Pairs) != 6 {
		t.Errorf("relation = %+v, want 6 pairs", answers[2])
	}
	if answers[3].Count == nil || *answers[3].Count != 3 {
		t.Errorf("count-from alice = %+v, want 3", answers[3])
	}
	wantBob := []NamedPair{{From: "bob", To: "carol"}, {From: "bob", To: "dora"}}
	if !reflect.DeepEqual(answers[4].Pairs, wantBob) {
		t.Errorf("relation-from bob = %v, want %v", answers[4].Pairs, wantBob)
	}
	if answers[5].Error == "" {
		t.Errorf("unknown node: expected per-query error, got %+v", answers[5])
	}
	if answers[6].Error == "" {
		t.Errorf("unknown non-terminal: expected per-query error, got %+v", answers[6])
	}
}

func TestServiceQueryBatchRegistryErrors(t *testing.T) {
	s := socialService(t)
	if _, err := s.QueryBatch(ctx, Target{Graph: "nope", Grammar: "reach"}, []BatchQuerySpec{{Nonterminal: "Knows"}}); err == nil {
		t.Error("unknown graph: expected error")
	}
	if _, err := s.QueryBatch(ctx, Target{Graph: "social", Grammar: "nope"}, []BatchQuerySpec{{Nonterminal: "Knows"}}); err == nil {
		t.Error("unknown grammar: expected error")
	}
	if _, err := s.QueryBatch(ctx, Target{Graph: "social", Grammar: "reach", Backend: "quantum"}, []BatchQuerySpec{{Nonterminal: "Knows"}}); err == nil {
		t.Error("unknown backend: expected error")
	}
}

func TestServiceRelationFromAndCountFrom(t *testing.T) {
	s := socialService(t)
	pairs, err := s.RelationFrom(ctx, target(), "Knows", []string{"carol"})
	if err != nil {
		t.Fatal(err)
	}
	want := []NamedPair{{From: "carol", To: "dora"}}
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("RelationFrom carol = %v, want %v", pairs, want)
	}
	n, err := s.CountFrom(ctx, target(), "Knows", []string{"alice", "bob"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("CountFrom alice,bob = %d, want 5", n)
	}
	if _, err := s.RelationFrom(ctx, target(), "Knows", []string{"nobody"}); err == nil {
		t.Error("unknown source: expected error")
	}
}

func TestHTTPQueryBatchAndSources(t *testing.T) {
	s := socialService(t)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	// Batched POST.
	body, _ := json.Marshal(map[string]any{
		"graph":   "social",
		"grammar": "reach",
		"queries": []BatchQuerySpec{
			{Op: "count", Nonterminal: "Knows"},
			{Op: "relation-from", Nonterminal: "Knows", Sources: []string{"carol"}},
			{Op: "count", Nonterminal: "Nope"},
		},
	})
	resp, err := http.Post(srv.URL+"/v1/query/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out struct {
		Results []BatchAnswer `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	if out.Results[0].Count == nil || *out.Results[0].Count != 6 {
		t.Errorf("batch count = %+v, want 6", out.Results[0])
	}
	if len(out.Results[1].Pairs) != 1 || out.Results[1].Pairs[0].To != "dora" {
		t.Errorf("batch relation-from = %+v", out.Results[1])
	}
	if out.Results[2].Error == "" {
		t.Errorf("batch bad query: expected per-query error, got %+v", out.Results[2])
	}

	// GET with sources restriction.
	resp2, err := http.Get(srv.URL + "/v1/query?graph=social&grammar=reach&nonterminal=Knows&op=count&sources=alice,bob")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var cnt struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&cnt); err != nil {
		t.Fatal(err)
	}
	if cnt.Count != 5 {
		t.Errorf("GET sources count = %d, want 5", cnt.Count)
	}

	// A trailing comma is tolerated; a present-but-empty restriction is an
	// empty frontier (zero pairs), not a silent fall-through to the
	// unrestricted answer.
	resp3, err := http.Get(srv.URL + "/v1/query?graph=social&grammar=reach&nonterminal=Knows&op=count&sources=alice,")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Errorf("trailing-comma sources: status %d, want 200", resp3.StatusCode)
	}
	for _, empty := range []string{"sources=", "sources=,", "sources=%20"} {
		resp, err := http.Get(srv.URL + "/v1/query?graph=social&grammar=reach&nonterminal=Knows&op=count&" + empty)
		if err != nil {
			t.Fatal(err)
		}
		var cnt struct {
			Count int `json:"count"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&cnt); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || cnt.Count != 0 {
			t.Errorf("empty restriction %q: status %d count %d, want 200 with 0 pairs", empty, resp.StatusCode, cnt.Count)
		}
	}

	// Malformed batches.
	for _, bad := range []string{
		`{"graph":"social","grammar":"reach","queries":[]}`,
		`{"grammar":"reach","queries":[{"nonterminal":"Knows"}]}`,
		`not json`,
	} {
		resp, err := http.Post(srv.URL+"/v1/query/batch", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad batch %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}
