// This file is the HTTP observability layer Handler wraps around the route
// mux: per-request latency recorded into the service's histogram labeled
// (route, strategy, backend, status), structured slog request logging, and
// X-Request-ID propagation. The strategy/backend labels travel backwards —
// the middleware plants a QueryLabels carrier in the request context and
// Service.Do fills it in — so one wrapper instruments every route without
// each handler knowing about metrics.

package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// QueryLabels carries the planner's strategy and the resolved backend from
// Service.Do back to the HTTP middleware's latency labels. Non-query
// routes leave it empty.
type QueryLabels struct {
	strategy string
	backend  string
}

// Set records the labels; the last query of a batch-style handler wins.
func (ql *QueryLabels) Set(strategy, backend string) {
	if ql == nil {
		return
	}
	ql.strategy, ql.backend = strategy, backend
}

type queryLabelsKey struct{}

// QueryLabelsFromContext returns the middleware's label carrier, or nil
// when the call did not arrive through the instrumented handler.
func QueryLabelsFromContext(ctx context.Context) *QueryLabels {
	ql, _ := ctx.Value(queryLabelsKey{}).(*QueryLabels)
	return ql
}

// statusWriter records the response status for the latency labels and the
// request log. Flush is forwarded so the SSE subscribe route still streams
// through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// newRequestID mints a 16-hex-char request id when the client sent none.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// instrument wraps the route mux with the observability layer. logger may
// be nil (no request log); the latency histogram always records.
func instrument(s *Service, mux *http.ServeMux, logger *slog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		// Resolve the route pattern without serving, so the histogram's
		// route label has bounded cardinality (never the raw path).
		_, route := mux.Handler(r)
		if route == "" {
			route = "unmatched"
		}
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = newRequestID()
		}
		w.Header().Set("X-Request-ID", reqID)
		ql := &QueryLabels{}
		r = r.WithContext(context.WithValue(r.Context(), queryLabelsKey{}, ql))
		sw := &statusWriter{ResponseWriter: w}
		mux.ServeHTTP(sw, r)
		if sw.status == 0 {
			// Nothing was written (e.g. a hijacked or abandoned stream);
			// report what the client saw.
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		s.obs.httpRequests.
			With(route, ql.strategy, ql.backend, strconv.Itoa(sw.status)).
			Observe(elapsed.Seconds())
		if logger != nil {
			logger.Info("request",
				"id", reqID,
				"method", r.Method,
				"route", route,
				"path", r.URL.Path,
				"status", sw.status,
				"duration", elapsed,
				"remote", r.RemoteAddr,
			)
		}
	})
}
