package server

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"net/url"
	"strconv"
	"strings"
	"time"

	"cfpq"
)

// HandlerOption configures the HTTP handler returned by Handler.
type HandlerOption func(*handlerConfig)

type handlerConfig struct {
	pprof  bool
	logger *slog.Logger
}

// WithPprof mounts the net/http/pprof profiling handlers under
// /debug/pprof/. Off by default: profiling endpoints expose goroutine
// stacks and heap contents, so exposure is an explicit operator decision.
func WithPprof() HandlerOption {
	return func(hc *handlerConfig) { hc.pprof = true }
}

// WithRequestLog emits one structured log line per request (id, method,
// route, status, duration) to the given logger.
func WithRequestLog(logger *slog.Logger) HandlerOption {
	return func(hc *handlerConfig) { hc.logger = logger }
}

// Handler exposes a Service over HTTP/JSON. Routes (all responses JSON):
//
//	GET  /v1/graphs                      list graphs
//	PUT  /v1/graphs/{name}               load a graph; body is the document,
//	                                     ?format=ntriples (default) or edgelist
//	GET  /v1/graphs/{name}               one graph's info
//	POST /v1/graphs/{name}/edges         add edges: {"edges":[{"from":..,"label":..,"to":..}]}
//	GET  /v1/grammars                    list grammars
//	PUT  /v1/grammars/{name}             register a grammar; body is grammar text
//	POST /v1/query                       evaluate one declarative request through the planner:
//	                                     {"graph":..,"grammar":..,"backend":..,"nonterminal":..|"expr":..,
//	                                     "sources":[..],"targets":[..],"output":"pairs|count|exists|paths",
//	                                     "limit":..,"max_path_length":..}; the answer carries an
//	                                     "explain" record naming the strategy the planner chose
//	GET  /v1/query                       legacy form, a thin shim over the same planner path:
//	                                     ?graph=&grammar=&nonterminal=&op=&backend=&from=&to=&sources=&targets=
//	                                     op is has | relation | count | counts (default relation);
//	                                     sources=a,b,c / targets=a,b,c restrict relation/count to pairs
//	                                     leaving / entering those nodes
//	POST /v1/subscribe                   standing query, served as Server-Sent Events:
//	                                     {"graph":..,"grammar":..,"backend":..,"nonterminal":..,
//	                                     "sources":[..],"targets":[..]}; each index update that
//	                                     derives new matching pairs pushes one "pairs" event
//	                                     (id = update seq, data = {"seq","pairs","resync"?}),
//	                                     computed from the incremental closure's delta. Heartbeat
//	                                     comments keep idle streams alive; reconnecting with
//	                                     Last-Event-ID resumes within a bounded window (a wider
//	                                     gap answers one event with "resync":true); a terminal
//	                                     "resync" event means the served index was invalidated —
//	                                     re-query and reconnect. Followers push replicated writes
//	POST /v1/query/batch                 evaluate many queries against one target from one cached
//	                                     index build: {"graph":..,"grammar":..,"backend":..,
//	                                     "queries":[{"op":..,"nonterminal":..,"from":..,"to":..,
//	                                     "sources":[..],"targets":[..]}]}
//	GET  /v1/stats                       per-index closure statistics
//	POST /v1/snapshot                    persistent mode: fold WAL + built indexes into
//	                                     fresh snapshots; ?graph= restricts to one graph
//	GET  /v1/store/stats                 persistent mode: durable-store statistics
//	GET  /v1/replica/snapshot            leader: JSON manifest (grammars, graphs with
//	                                     seq+epoch, config version); ?graph= instead
//	                                     returns that graph's binary snapshot with
//	                                     X-Cfpq-Seq / X-Cfpq-Epoch headers
//	GET  /v1/replica/wal                 leader: long-poll one graph's WAL tail,
//	                                     ?graph=&from=&epoch=&follower=&wait=; 410 means
//	                                     the follower must re-bootstrap from a snapshot
//	GET  /v1/replication/status          role + stream positions: follower staleness
//	                                     (applied vs leader seq, lag bytes/age) or the
//	                                     leader's graphs and attached followers
//	POST /v1/promote                     follower: detach from the leader and open the
//	                                     write gate
//	GET  /healthz                        liveness probe: {"status":"ok"} plus build
//	                                     version/revision and process uptime
//	GET  /readyz                         readiness: 503 while a follower bootstraps, has
//	                                     lost its leader, or exceeds the -max-lag bound;
//	                                     detail carries build info and uptime
//	GET  /metrics                        Prometheus text format: request-latency
//	                                     histograms by (route, strategy, backend, status),
//	                                     replication lag gauges, subscription and WAL
//	                                     counters, build info
//	GET  /debug/vars                     expvar dump + cfpqd service/store/replication metrics
//	                                     + per-subscription counters ("cfpqd_subscriptions")
//	GET  /debug/pprof/                   runtime profiles (only with WithPprof / -pprof)
//
// Every response carries an X-Request-ID header — echoed from the request
// when the client sent one, freshly minted otherwise — and every request is
// recorded in the /metrics latency histogram. Errors are {"error": "..."}
// with a 4xx/5xx status. On a follower every local mutation route answers
// 403; writes go to the leader.
func Handler(s *Service, opts ...HandlerOption) http.Handler {
	var hc handlerConfig
	for _, opt := range opts {
		opt(&hc)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/graphs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"graphs": s.Graphs()})
	})
	mux.HandleFunc("GET /v1/graphs/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		for _, gi := range s.Graphs() {
			if gi.Name == name {
				writeJSON(w, http.StatusOK, gi)
				return
			}
		}
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown graph %q", name))
	})
	mux.HandleFunc("PUT /v1/graphs/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		format := r.URL.Query().Get("format")
		st, err := s.LoadGraph(name, format, http.MaxBytesReader(w, r.Body, maxDocumentBytes))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"name": name, "nodes": st.Nodes, "edges": st.Edges, "labels": st.Labels,
		})
	})
	mux.HandleFunc("POST /v1/graphs/{name}/edges", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Edges []EdgeSpec `json:"edges"`
		}
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxDocumentBytes)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding edges: %w", err))
			return
		}
		if len(req.Edges) == 0 {
			writeError(w, http.StatusBadRequest, errors.New("no edges in request"))
			return
		}
		res, err := s.AddEdges(r.Context(), r.PathValue("name"), req.Edges)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("GET /v1/grammars", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"grammars": s.Grammars()})
	})
	mux.HandleFunc("PUT /v1/grammars/{name}", func(w http.ResponseWriter, r *http.Request) {
		text, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxDocumentBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		name := r.PathValue("name")
		if err := s.RegisterGrammar(name, string(text)); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		gi, err := s.GrammarInfoFor(name)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, gi)
	})
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxDocumentBytes)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		ans, err := s.Do(r.Context(), req)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, ans)
	})
	mux.HandleFunc("GET /v1/query", func(w http.ResponseWriter, r *http.Request) {
		// Legacy route: translate the stringly-typed params into a
		// declarative QueryRequest and shim the answer back into the
		// historic response shapes. Evaluation is Service.Do either way.
		q := r.URL.Query()
		t := Target{Graph: q.Get("graph"), Grammar: q.Get("grammar"), Backend: q.Get("backend")}
		nt := q.Get("nonterminal")
		op := q.Get("op")
		if op == "" {
			op = "relation"
		}
		if t.Graph == "" || t.Grammar == "" {
			writeError(w, http.StatusBadRequest, errors.New("graph and grammar are required"))
			return
		}
		if op != "counts" && nt == "" {
			writeError(w, http.StatusBadRequest, errors.New("nonterminal is required"))
			return
		}
		sources, err := restrictionParam(q, "sources")
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		targets, err := restrictionParam(q, "targets")
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		req := QueryRequest{
			Graph: t.Graph, Grammar: t.Grammar, Backend: t.Backend,
			Nonterminal: nt, Sources: sources, Targets: targets,
		}
		switch op {
		case "has":
			from, to := q.Get("from"), q.Get("to")
			if from == "" || to == "" {
				writeError(w, http.StatusBadRequest, errors.New("op=has requires from and to"))
				return
			}
			req.Output = string(cfpq.OutputExists)
			req.Sources, req.Targets = []string{from}, []string{to}
			ans, err := s.Do(r.Context(), req)
			if err != nil {
				writeError(w, statusFor(err), err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"has": *ans.Exists, "from": from, "to": to, "nonterminal": nt})
		case "relation":
			ans, err := s.Do(r.Context(), req)
			if err != nil {
				writeError(w, statusFor(err), err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"nonterminal": nt, "count": *ans.Count, "pairs": ans.Pairs})
		case "count":
			req.Output = string(cfpq.OutputCount)
			ans, err := s.Do(r.Context(), req)
			if err != nil {
				writeError(w, statusFor(err), err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"nonterminal": nt, "count": *ans.Count})
		case "counts":
			counts, err := s.Counts(r.Context(), t)
			if err != nil {
				writeError(w, statusFor(err), err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"counts": counts})
		default:
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("unknown op %q (want has, relation, count or counts)", op))
		}
	})
	mux.HandleFunc("POST /v1/subscribe", func(w http.ResponseWriter, r *http.Request) {
		s.serveSubscribe(w, r)
	})
	mux.HandleFunc("POST /v1/query/batch", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Graph   string           `json:"graph"`
			Grammar string           `json:"grammar"`
			Backend string           `json:"backend,omitempty"`
			Queries []BatchQuerySpec `json:"queries"`
		}
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxDocumentBytes)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding batch: %w", err))
			return
		}
		if req.Graph == "" || req.Grammar == "" {
			writeError(w, http.StatusBadRequest, errors.New("graph and grammar are required"))
			return
		}
		if len(req.Queries) == 0 {
			writeError(w, http.StatusBadRequest, errors.New("no queries in batch"))
			return
		}
		t := Target{Graph: req.Graph, Grammar: req.Grammar, Backend: req.Backend}
		answers, err := s.QueryBatch(r.Context(), t, req.Queries)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": answers})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"indexes": s.Stats()})
	})
	mux.HandleFunc("POST /v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if !s.Persistent() {
			writeError(w, http.StatusConflict, errors.New("no store attached (start cfpqd with -data-dir)"))
			return
		}
		graph := r.URL.Query().Get("graph")
		if err := s.Snapshot(graph); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		st, _ := s.StoreStats()
		writeJSON(w, http.StatusOK, map[string]any{"snapshotted": true, "store": st})
	})
	mux.HandleFunc("GET /v1/store/stats", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.StoreStats()
		if !ok {
			writeError(w, http.StatusConflict, errors.New("no store attached (start cfpqd with -data-dir)"))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/replica/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if name := r.URL.Query().Get("graph"); name != "" {
			data, seq, epoch, err := s.ReplicaGraphSnapshot(name)
			if err != nil {
				writeError(w, replicationStatusFor(err), err)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("X-Cfpq-Seq", strconv.FormatUint(seq, 10))
			w.Header().Set("X-Cfpq-Epoch", strconv.FormatUint(epoch, 10))
			_, _ = w.Write(data)
			return
		}
		m, err := s.ReplicaManifest()
		if err != nil {
			writeError(w, replicationStatusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, m)
	})
	mux.HandleFunc("GET /v1/replica/wal", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		name := q.Get("graph")
		if name == "" {
			writeError(w, http.StatusBadRequest, errors.New("graph is required"))
			return
		}
		from, err := strconv.ParseUint(q.Get("from"), 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad from param: %w", err))
			return
		}
		epoch, err := strconv.ParseUint(q.Get("epoch"), 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad epoch param: %w", err))
			return
		}
		var wait time.Duration
		if wv := q.Get("wait"); wv != "" {
			if wait, err = time.ParseDuration(wv); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait param: %w", err))
				return
			}
			if wait > maxTailWait {
				wait = maxTailWait
			}
		}
		resp, err := s.ReplicaTail(r.Context(), name, q.Get("follower"), from, epoch, wait)
		if err != nil {
			writeError(w, replicationStatusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/replication/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.ReplicationStatus())
	})
	mux.HandleFunc("POST /v1/promote", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Promote(r.Context())
		if err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"promoted": true, "replication": st})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		version, revision := buildInfo()
		writeJSON(w, http.StatusOK, map[string]any{
			"status":         "ok",
			"version":        version,
			"revision":       revision,
			"uptime_seconds": s.Uptime().Seconds(),
		})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		ready, detail := s.Ready()
		code := http.StatusOK
		if !ready {
			code = http.StatusServiceUnavailable
		}
		version, revision := buildInfo()
		detail["version"] = version
		detail["revision"] = revision
		detail["uptime_seconds"] = s.Uptime().Seconds()
		writeJSON(w, code, detail)
	})
	mux.Handle("GET /metrics", s.MetricsRegistry())
	mux.HandleFunc("GET /debug/vars", func(w http.ResponseWriter, r *http.Request) {
		serveDebugVars(w, s)
	})
	if hc.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return instrument(s, mux, hc.logger)
}

// serveDebugVars renders the expvar universe — every published global
// (cmdline, memstats, anything the embedding process added) — plus the
// service counters under "cfpqd" and, in persistent mode, the store
// statistics under "cfpqd_store". The service vars are injected per
// handler rather than expvar.Publish'd because publishing is global and
// panics on re-registration, which would forbid two Services (or two
// tests) in one process.
func serveDebugVars(w http.ResponseWriter, s *Service) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{")
	first := true
	emit := func(name, value string) {
		if !first {
			fmt.Fprintf(w, ",")
		}
		first = false
		fmt.Fprintf(w, "\n%q: %s", name, value)
	}
	expvar.Do(func(kv expvar.KeyValue) {
		emit(kv.Key, kv.Value.String())
	})
	if raw, err := json.Marshal(s.Metrics()); err == nil {
		emit("cfpqd", string(raw))
	}
	if st, ok := s.StoreStats(); ok {
		if raw, err := json.Marshal(st); err == nil {
			emit("cfpqd_store", string(raw))
		}
	}
	if rc := s.replicationController(); rc != nil {
		if raw, err := json.Marshal(rc.Status()); err == nil {
			emit("cfpqd_replication", string(raw))
		}
	}
	if subs := s.SubscriptionInfos(); len(subs) > 0 {
		if raw, err := json.Marshal(subs); err == nil {
			emit("cfpqd_subscriptions", string(raw))
		}
	}
	fmt.Fprintf(w, "\n}\n")
}

// restrictionParam parses a comma-separated node-restriction parameter.
// An absent parameter means unrestricted (nil); a present-but-empty one
// is a non-nil empty restriction selecting nothing — the same semantics
// as a JSON "sources": [], and never silently "everything" (the full n²
// answer the parameter exists to avoid).
func restrictionParam(q url.Values, name string) ([]string, error) {
	if !q.Has(name) {
		return nil, nil
	}
	out := []string{}
	for _, tok := range strings.Split(q.Get(name), ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out, nil
}

// maxDocumentBytes bounds uploaded graph/grammar documents and edge
// batches (64 MiB).
const maxDocumentBytes = 64 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	body := map[string]string{"error": err.Error()}
	// A structured request-validation error names its offending field;
	// surface it so wire clients can programmatically blame the input.
	var re *cfpq.RequestError
	if errors.As(err, &re) {
		body["field"] = re.Field
	}
	writeJSON(w, status, body)
}

// statusFor maps service errors to HTTP statuses: lookups of unregistered
// names are 404, writes rejected by a read-only follower 403,
// memory-budget rejections 413 (the request names an instance too large
// for the configured allowance), everything else a client error.
func statusFor(err error) int {
	if errors.Is(err, ErrNotFound) {
		return http.StatusNotFound
	}
	if errors.Is(err, ErrReadOnly) {
		return http.StatusForbidden
	}
	var be *cfpq.MemoryBudgetError
	if errors.As(err, &be) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// maxTailWait caps a replication long-poll so a dead follower connection
// cannot park a handler goroutine indefinitely.
const maxTailWait = 60 * time.Second

// replicationStatusFor maps replication-endpoint errors: the
// snapshot-required signal is 410 Gone, unknown graphs 404, and a node
// that cannot serve the request in its current role (no store attached,
// not a follower) 409 Conflict.
func replicationStatusFor(err error) int {
	switch {
	case errors.Is(err, ErrSnapshotNeeded):
		return http.StatusGone
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	default:
		return http.StatusConflict
	}
}
