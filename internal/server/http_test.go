package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func httpDo(t *testing.T, srv *httptest.Server, method, path, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, srv.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("%s %s: non-JSON response %q: %v", method, path, raw, err)
	}
	return resp.StatusCode, out
}

func TestHTTPEndToEnd(t *testing.T) {
	srv := httptest.NewServer(Handler(New()))
	defer srv.Close()

	// Load a graph in the edge-list format and a grammar.
	code, body := httpDo(t, srv, http.MethodPut, "/v1/graphs/social?format=edgelist",
		"alice knows bob\nbob knows carol\n")
	if code != http.StatusOK || body["nodes"].(float64) != 3 {
		t.Fatalf("PUT graph: %d %v", code, body)
	}
	code, body = httpDo(t, srv, http.MethodPut, "/v1/grammars/reach", "S -> knows | knows S")
	if code != http.StatusOK {
		t.Fatalf("PUT grammar: %d %v", code, body)
	}
	if nts := body["nonterminals"].([]any); len(nts) != 1 || nts[0] != "S" {
		t.Fatalf("PUT grammar nonterminals: %v", body)
	}

	// Listings.
	code, body = httpDo(t, srv, http.MethodGet, "/v1/graphs", "")
	if code != http.StatusOK || len(body["graphs"].([]any)) != 1 {
		t.Fatalf("GET graphs: %d %v", code, body)
	}
	code, body = httpDo(t, srv, http.MethodGet, "/v1/grammars", "")
	if code != http.StatusOK || len(body["grammars"].([]any)) != 1 {
		t.Fatalf("GET grammars: %d %v", code, body)
	}

	// Query ops.
	base := "/v1/query?graph=social&grammar=reach&nonterminal=S"
	code, body = httpDo(t, srv, http.MethodGet, base+"&op=count", "")
	if code != http.StatusOK || body["count"].(float64) != 3 {
		t.Fatalf("count: %d %v", code, body)
	}
	code, body = httpDo(t, srv, http.MethodGet, base+"&op=has&from=alice&to=carol", "")
	if code != http.StatusOK || body["has"] != true {
		t.Fatalf("has: %d %v", code, body)
	}
	code, body = httpDo(t, srv, http.MethodGet, base+"&op=relation", "")
	if code != http.StatusOK || len(body["pairs"].([]any)) != 3 {
		t.Fatalf("relation: %d %v", code, body)
	}
	first := body["pairs"].([]any)[0].(map[string]any)
	if first["from"] != "alice" || first["to"] != "bob" {
		t.Fatalf("relation pair names: %v", first)
	}
	code, body = httpDo(t, srv, http.MethodGet,
		"/v1/query?graph=social&grammar=reach&op=counts", "")
	if code != http.StatusOK || body["counts"].(map[string]any)["S"].(float64) != 3 {
		t.Fatalf("counts: %d %v", code, body)
	}

	// Mutation: dora enters the graph (index invalidated, rebuilt on query).
	code, body = httpDo(t, srv, http.MethodPost, "/v1/graphs/social/edges",
		`{"edges":[{"from":"carol","label":"knows","to":"dora"}]}`)
	if code != http.StatusOK || body["added"].(float64) != 1 || body["new_nodes"].(float64) != 1 {
		t.Fatalf("POST edges: %d %v", code, body)
	}
	code, body = httpDo(t, srv, http.MethodGet, base+"&op=has&from=alice&to=dora", "")
	if code != http.StatusOK || body["has"] != true {
		t.Fatalf("has after update: %d %v", code, body)
	}

	// Mutation between existing nodes: the index is patched in place.
	code, body = httpDo(t, srv, http.MethodPost, "/v1/graphs/social/edges",
		`{"edges":[{"from":"dora","label":"knows","to":"alice"}]}`)
	if code != http.StatusOK || body["patched"].(float64) != 1 {
		t.Fatalf("POST edges (patch): %d %v", code, body)
	}

	// Stats reflect the build and the incremental patch.
	code, body = httpDo(t, srv, http.MethodGet, "/v1/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %v", code, body)
	}
	indexes := body["indexes"].([]any)
	if len(indexes) != 1 {
		t.Fatalf("stats: want 1 index, got %v", body)
	}
	ix := indexes[0].(map[string]any)
	if ix["graph"] != "social" || ix["grammar"] != "reach" || ix["backend"] != DefaultBackend {
		t.Fatalf("stats index key: %v", ix)
	}
	if ix["build"].(map[string]any)["products"].(float64) <= 0 {
		t.Fatalf("stats build products: %v", ix)
	}
	if ix["updates"].(float64) != 1 {
		t.Fatalf("stats updates: %v", ix)
	}
	if ix["queries"].(float64) <= 0 {
		t.Fatalf("stats queries: %v", ix)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv := httptest.NewServer(Handler(New()))
	defer srv.Close()
	for _, tc := range []struct {
		method, path, body string
		want               int
	}{
		{http.MethodGet, "/v1/query?graph=g&grammar=r&nonterminal=S&op=count", "", http.StatusNotFound},
		{http.MethodGet, "/v1/query?grammar=r&nonterminal=S", "", http.StatusBadRequest},
		{http.MethodGet, "/v1/query?graph=g&grammar=r", "", http.StatusBadRequest},
		{http.MethodGet, "/v1/graphs/missing", "", http.StatusNotFound},
		{http.MethodPut, "/v1/graphs/g?format=weird", "x a y", http.StatusBadRequest},
		{http.MethodPut, "/v1/grammars/g", "no arrow here", http.StatusBadRequest},
		{http.MethodPost, "/v1/graphs/g/edges", "{}", http.StatusBadRequest},
		{http.MethodPost, "/v1/graphs/g/edges", "not json", http.StatusBadRequest},
	} {
		code, body := httpDo(t, srv, tc.method, tc.path, tc.body)
		if code != tc.want {
			t.Errorf("%s %s: got %d (%v), want %d", tc.method, tc.path, code, body, tc.want)
		}
		if _, ok := body["error"]; !ok {
			t.Errorf("%s %s: error body missing: %v", tc.method, tc.path, body)
		}
	}

	// Unknown op and unknown non-terminal on a real graph/grammar.
	s := New()
	if _, err := s.LoadGraph("g", "edgelist", strings.NewReader("x a y\n")); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterGrammar("r", "S -> a"); err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(Handler(s))
	defer srv2.Close()
	code, _ := httpDo(t, srv2, http.MethodGet, "/v1/query?graph=g&grammar=r&nonterminal=S&op=zap", "")
	if code != http.StatusBadRequest {
		t.Fatalf("unknown op: got %d", code)
	}
	code, _ = httpDo(t, srv2, http.MethodGet, "/v1/query?graph=g&grammar=r&nonterminal=Zap&op=count", "")
	if code != http.StatusNotFound {
		t.Fatalf("unknown non-terminal: got %d", code)
	}
	code, body := httpDo(t, srv2, http.MethodGet, "/v1/query?graph=g&grammar=r&nonterminal=S&op=has&from=x&to=nope", "")
	if code != http.StatusNotFound {
		t.Fatalf("unknown node: got %d %v", code, body)
	}
}
