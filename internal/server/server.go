// Package server turns the CFPQ library into an in-process query service:
// a registry of named graphs and grammars, with closure indexes built
// lazily and cached per (graph, grammar, backend). The caching, locking
// and incremental-update machinery itself lives in the public API — each
// cache slot holds a cfpq.Prepared handle, which answers concurrent
// queries under its own read lock and absorbs edge updates with the
// incremental delta closure — so this package keeps only registry and
// naming concerns.
//
// Concurrency design. Three locks with a fixed nesting order:
//
//   - Service.mu (plain Mutex) guards only registry map membership. It is
//     never held while acquiring an entry lock.
//   - indexEntry.mu (Mutex) guards one cache slot's build-once and
//     staleness state; the cfpq.Prepared inside carries its own RWMutex
//     for queries versus patches.
//   - graphEntry.mu (RWMutex) guards one graph's edge set and name table.
//     It MAY be acquired while holding an indexEntry.mu (the build path
//     does, to snapshot the graph), NEVER the other way around.
//
// Every Prepared owns a private snapshot of its graph, taken at build
// time; AddEdges patches each cached handle with the same edges it applied
// to the registry graph. A query registers its index entry in the cache
// *before* snapshotting the graph, and AddEdges walks the cache *after*
// mutating the graph; the two orderings together guarantee every cached
// index either saw the new edges when it was built or is patched by the
// update — no lost updates (re-applying edges a build already saw is a
// no-op: graphs deduplicate and the delta seeds only missing bits).
// Updates whose edges grow the node set invalidate the affected slots;
// they rebuild at the larger dimension on next use.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cfpq"
	"cfpq/internal/graph"
	"cfpq/internal/store"
)

// ErrNotFound marks lookups of unregistered names — graphs, grammars,
// non-terminals, nodes. The HTTP layer maps it to 404; every other
// service error is a client error.
var ErrNotFound = errors.New("not found")

// notFoundf builds an error wrapping ErrNotFound.
func notFoundf(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrNotFound)
}

// Service is a concurrent CFPQ query service over named graphs and
// grammars. The zero value is not usable; call New.
type Service struct {
	mu       sync.Mutex
	graphs   map[string]*graphEntry
	grammars map[string]*grammarEntry
	indexes  map[IndexKey]*indexEntry

	// store, when non-nil, is the durable store every mutation tees into
	// (see AttachStore in persist.go). Written once at attach time, before
	// serving; read without s.mu on the hot paths.
	store *store.Store

	// budget is the per-closure memory budget in bytes applied to every
	// engine this service constructs (index builds, incremental patches,
	// uncached RPQ evaluations); 0 means unlimited. Atomic so it can be
	// set after serving started.
	budget atomic.Int64

	// readOnly, when set, rejects every locally-originated mutation with
	// ErrReadOnly — the follower gate. Replicated applies (ApplyGrammar,
	// BootstrapGraph, ApplyReplicatedEdges) bypass it: they carry the
	// leader's writes, which are the only writes a follower accepts.
	readOnly atomic.Bool

	// replication, when non-nil, is the follower's replicator handle
	// (SetReplication); readinessMaxLag bounds /readyz staleness in
	// records, 0 = any finite lag.
	replMu          sync.Mutex
	replication     ReplicationController
	readinessMaxLag atomic.Uint64

	// Live-query state (subscribe.go): the registry of active
	// subscriptions behind /debug/vars' "cfpqd_subscriptions", and the SSE
	// heartbeat override.
	subMu          sync.Mutex
	subNextID      int64
	subsLive       map[int64]*ServerSubscription
	subHeartbeatNs atomic.Int64

	metrics serviceMetrics

	// obs is the Prometheus-style instrument set behind GET /metrics
	// (metrics.go); started anchors the uptime gauge and /healthz.
	obs     *obsMetrics
	started time.Time

	// Slow-query log (SetSlowQueryLog): queries slower than slowQueryNs
	// are dumped — request, strategy and collected pass trace — to
	// slowLogger. 0 disables; collection is forced only while enabled.
	slowQueryNs atomic.Int64
	slowMu      sync.Mutex
	slowLogger  *slog.Logger
}

// ErrReadOnly marks mutations rejected because this node is a read-only
// follower; the HTTP layer maps it to 403. Writes go to the leader.
var ErrReadOnly = errors.New("server: node is a read-only follower; write to the leader")

// SetReadOnly flips the follower write gate: when on, RegisterGraph,
// RegisterGrammar and AddEdges reject with ErrReadOnly while the
// replication apply path keeps working. Promote flips it back off.
func (s *Service) SetReadOnly(on bool) { s.readOnly.Store(on) }

// ReadOnly reports whether the follower write gate is on.
func (s *Service) ReadOnly() bool { return s.readOnly.Load() }

// writable is the gate every locally-originated mutation passes.
func (s *Service) writable() error {
	if s.readOnly.Load() {
		return ErrReadOnly
	}
	return nil
}

// SetMemoryBudget bounds the estimated matrix bytes any single closure
// evaluation run by this service may hold (cfpq.WithMemoryBudget): index
// builds, incremental update patches and uncached RPQ evaluations alike.
// A breach answers the offending request with a typed error the HTTP
// layer maps to 413 and ticks the budget_rejections counter. bytes ≤ 0
// means unlimited. Engines already cached keep the budget they were
// built with; set the budget before serving for uniform behaviour.
func (s *Service) SetMemoryBudget(bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	s.budget.Store(bytes)
}

// noteErr classifies an evaluation error into the error counters —
// currently just memory-budget rejections — and returns it unchanged.
func (s *Service) noteErr(err error) error {
	var be *cfpq.MemoryBudgetError
	if errors.As(err, &be) {
		s.metrics.budgetRejections.Add(1)
	}
	return err
}

// serviceMetrics are the monotonic counters /debug/vars exposes.
type serviceMetrics struct {
	queries          atomic.Int64 // query operations answered (batch = one per spec)
	indexBuilds      atomic.Int64 // full closure builds
	warmStarts       atomic.Int64 // Prepared handles restored from the store without a closure
	updates          atomic.Int64 // AddEdges calls
	edgesAdded       atomic.Int64 // edges inserted across updates
	replBatches      atomic.Int64 // replicated WAL batches applied (follower)
	replEdges        atomic.Int64 // edges applied from the replication stream
	persistErrors    atomic.Int64 // best-effort index persistence failures
	budgetRejections atomic.Int64 // evaluations rejected by the memory budget (HTTP 413)

	// Live-query counters (subscribe.go): subscriptions ever registered,
	// pair batches and pairs delivered, deliveries carrying a resync
	// marker, and batches dropped on slow consumers.
	subsTotal  atomic.Int64
	subEvents  atomic.Int64
	subPairs   atomic.Int64
	subResyncs atomic.Int64
	subDrops   atomic.Int64

	// Per-strategy counters: which plan the library planner chose per
	// answered query, so plan selection is observable in production.
	stratFull           atomic.Int64
	stratSourceFrontier atomic.Int64
	stratTargetFrontier atomic.Int64
	stratCachedRead     atomic.Int64
}

// New returns an empty service.
func New() *Service {
	s := &Service{
		graphs:   map[string]*graphEntry{},
		grammars: map[string]*grammarEntry{},
		indexes:  map[IndexKey]*indexEntry{},
		started:  time.Now(),
	}
	s.obs = newObsMetrics(s)
	return s
}

// SetSlowQueryLog enables the slow-query log: every Do slower than
// threshold is dumped to logger — the request, the chosen strategy, the
// wall time, and the evaluation's per-pass trace (collection is forced
// while the log is enabled, so the trace is there even when the caller did
// not ask for one). threshold <= 0 disables; a nil logger uses
// slog.Default.
func (s *Service) SetSlowQueryLog(threshold time.Duration, logger *slog.Logger) {
	if threshold < 0 {
		threshold = 0
	}
	s.slowMu.Lock()
	s.slowLogger = logger
	s.slowMu.Unlock()
	s.slowQueryNs.Store(int64(threshold))
}

func (s *Service) slowQueryLogger() *slog.Logger {
	s.slowMu.Lock()
	defer s.slowMu.Unlock()
	if s.slowLogger != nil {
		return s.slowLogger
	}
	return slog.Default()
}

type graphEntry struct {
	mu      sync.RWMutex
	g       *graph.Graph
	names   map[string]int // node name → id; may be empty for id-only graphs
	byID    []string       // node id → name, grown lazily with names
	version int            // bumped on every successful mutation
	seq     uint64         // durable edge-stream position (store attached)
	epoch   uint64         // edge-stream identity (replication); 0 when untracked
}

type grammarEntry struct {
	gram *cfpq.Grammar
	cnf  *cfpq.CNF
	src  string
}

// IndexKey identifies one cached closure index.
type IndexKey struct {
	Graph   string
	Grammar string
	Backend string
}

// indexEntry is one cache slot: build-once state around a public
// cfpq.Prepared handle, which does the actual caching, locking and
// incremental maintenance.
type indexEntry struct {
	mu    sync.Mutex
	key   IndexKey
	ge    *graphEntry // the registry graph the handle is (being) built from
	eng   *cfpq.Engine
	built bool
	stale bool // invalidated (node growth or replacement); off the cache map
	p     *cfpq.Prepared
}

// BackendByName resolves one of the four paper backends by its Name(); the
// library error already names the valid choices.
func BackendByName(name string) (cfpq.Backend, error) {
	return cfpq.BackendByName(name)
}

// DefaultBackend is used when a query names no backend.
const DefaultBackend = "sparse"

// --- registration -----------------------------------------------------

// RegisterGraph installs (or replaces) a named graph. names maps node
// names to ids and may be nil for graphs addressed by numeric id only.
// Replacing a graph drops every cached index built on it.
func (s *Service) RegisterGraph(name string, g *graph.Graph, names map[string]int) error {
	if err := s.writable(); err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("server: empty graph name")
	}
	if g == nil {
		return fmt.Errorf("server: nil graph")
	}
	if names == nil {
		names = map[string]int{}
	}
	for n, id := range names {
		if id < 0 || id >= g.Nodes() {
			// An out-of-range mapping would silently grow the graph on
			// the first AddEdges through it and desynchronise the
			// id→name table; reject it up front.
			return fmt.Errorf("server: name %q maps to node %d, outside [0,%d)", n, id, g.Nodes())
		}
	}
	ge := &graphEntry{g: g, names: names, byID: invertNames(g.Nodes(), names)}
	// Hold the replaced entry's write lock across the store replacement
	// AND the registry swap: an AddEdges on the old entry either finishes
	// entirely before this (its WAL record lands in the old log, removed
	// with it) or re-checks registry identity after we are done and
	// rejects — no batch can be journaled into the replacement's WAL
	// while its in-memory mutation lands on the orphaned entry.
	s.mu.Lock()
	old := s.graphs[name]
	s.mu.Unlock()
	if old != nil {
		old.mu.Lock()
	}
	if s.store != nil {
		// Persist before installing (write-ahead): a failed snapshot write
		// leaves neither side registered. Replacing a stored graph drops
		// its WAL and saved indexes along with the old snapshot.
		if err := s.store.CreateGraph(name, g, ge.byID); err != nil {
			if old != nil {
				old.mu.Unlock()
			}
			return err
		}
		// Mirror the freshly minted stream epoch so followers attached to
		// this node can pin their positions to it.
		if _, epoch, err := s.store.GraphPos(name); err == nil {
			ge.epoch = epoch
		}
	}
	s.mu.Lock()
	s.graphs[name] = ge
	dropped := s.removeIndexesLocked(func(k IndexKey) bool { return k.Graph == name })
	s.mu.Unlock()
	if old != nil {
		// Released before markStale: flagging entries takes each
		// indexEntry.mu, and the documented order is indexEntry.mu →
		// graphEntry.mu, never the reverse.
		old.mu.Unlock()
	}
	markStale(dropped)
	return nil
}

// GraphFormats lists the formats LoadGraph accepts.
var GraphFormats = []string{"ntriples", "edgelist"}

// LoadGraph reads a graph document in the given format ("ntriples", with
// the paper's inverse-edge expansion, or "edgelist") and registers it.
func (s *Service) LoadGraph(name, format string, r io.Reader) (graph.Stats, error) {
	var (
		g   *graph.Graph
		ids map[string]int
		err error
	)
	switch format {
	case "ntriples", "nt", "":
		g, ids, err = graph.LoadNTriples(r)
	case "edgelist", "edges":
		g, ids, err = graph.LoadEdgeList(r)
	default:
		return graph.Stats{}, fmt.Errorf("server: unknown graph format %q (want ntriples or edgelist)", format)
	}
	if err != nil {
		return graph.Stats{}, err
	}
	if err := s.RegisterGraph(name, g, ids); err != nil {
		return graph.Stats{}, err
	}
	return g.Stats(), nil
}

// RegisterGrammar parses and installs (or replaces) a named grammar. The
// CNF conversion happens eagerly so malformed grammars are rejected at
// registration time, not at first query. Replacing a grammar drops every
// cached index built on it.
func (s *Service) RegisterGrammar(name, text string) error {
	if err := s.writable(); err != nil {
		return err
	}
	return s.registerGrammar(name, text)
}

// registerGrammar is RegisterGrammar behind the write gate; the
// replication apply path calls it directly.
func (s *Service) registerGrammar(name, text string) error {
	if name == "" {
		return fmt.Errorf("server: empty grammar name")
	}
	gram, err := cfpq.ParseGrammar(text)
	if err != nil {
		return err
	}
	cnf, err := cfpq.ToCNF(gram)
	if err != nil {
		return err
	}
	if s.store != nil {
		// Drop the replaced grammar's saved indexes BEFORE saving the new
		// text: their relations belong to the old text and must not
		// warm-start under the new one. In this order a crash between the
		// two steps costs a rebuild; the reverse order would leave old
		// indexes that type-check against the new grammar (non-terminal
		// names often coincide) and silently serve stale relations.
		if err := s.store.DropGrammarIndexes(name); err != nil {
			return err
		}
		if err := s.store.SaveGrammar(name, text); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.grammars[name] = &grammarEntry{gram: gram, cnf: cnf, src: text}
	dropped := s.removeIndexesLocked(func(k IndexKey) bool { return k.Grammar == name })
	s.mu.Unlock()
	markStale(dropped)
	return nil
}

// removeIndexesLocked deletes matching cache entries from the map and
// returns them; callers hold s.mu. Taking each entry's own lock happens
// in markStale AFTER s.mu is released: an entry mid-build holds its lock
// for the whole closure, and stalling every registry operation behind one
// build would freeze the service. In-flight queries on a dropped entry
// finish against the old data.
func (s *Service) removeIndexesLocked(match func(IndexKey) bool) []*indexEntry {
	var dropped []*indexEntry
	for k, e := range s.indexes {
		if match(k) {
			delete(s.indexes, k)
			dropped = append(dropped, e)
		}
	}
	return dropped
}

// markStale flags removed entries so a racing AddEdges that captured them
// before the removal skips patching them.
func markStale(dropped []*indexEntry) {
	for _, e := range dropped {
		e.mu.Lock()
		e.stale = true
		p := e.p
		e.mu.Unlock()
		if p != nil {
			// End the handle's subscriptions: nothing will ever publish to
			// a dropped entry again, and a closed channel tells streaming
			// clients to re-resolve instead of waiting forever.
			p.Close()
		}
	}
}

// --- listings ---------------------------------------------------------

// GraphInfo describes one registered graph.
type GraphInfo struct {
	Name    string `json:"name"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`
	Labels  int    `json:"labels"`
	Version int    `json:"version"`
}

// Graphs lists registered graphs, sorted by name.
func (s *Service) Graphs() []GraphInfo {
	s.mu.Lock()
	entries := make(map[string]*graphEntry, len(s.graphs))
	for n, e := range s.graphs {
		entries[n] = e
	}
	s.mu.Unlock()
	out := make([]GraphInfo, 0, len(entries))
	for n, e := range entries {
		e.mu.RLock()
		st := e.g.Stats()
		out = append(out, GraphInfo{Name: n, Nodes: st.Nodes, Edges: st.Edges, Labels: st.Labels, Version: e.version})
		e.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// GrammarInfo describes one registered grammar.
type GrammarInfo struct {
	Name         string   `json:"name"`
	Nonterminals []string `json:"nonterminals"`
	Source       string   `json:"source,omitempty"`
}

// Grammars lists registered grammars, sorted by name.
func (s *Service) Grammars() []GrammarInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]GrammarInfo, 0, len(s.grammars))
	for n, e := range s.grammars {
		out = append(out, GrammarInfo{Name: n, Nonterminals: e.gram.Nonterminals(), Source: e.src})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// GrammarInfoFor returns one registered grammar's info.
func (s *Service) GrammarInfoFor(name string) (GrammarInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.grammars[name]
	if e == nil {
		return GrammarInfo{}, notFoundf("server: unknown grammar %q", name)
	}
	return GrammarInfo{Name: name, Nonterminals: e.gram.Nonterminals(), Source: e.src}, nil
}

// --- queries ----------------------------------------------------------

// Target names the (graph, grammar, backend) triple a query runs against.
// An empty Backend means DefaultBackend.
type Target struct {
	Graph   string `json:"graph"`
	Grammar string `json:"grammar"`
	Backend string `json:"backend,omitempty"`
}

func (t Target) key() IndexKey {
	be := t.Backend
	if be == "" {
		be = DefaultBackend
	}
	return IndexKey{Graph: t.Graph, Grammar: t.Grammar, Backend: be}
}

// index returns the cache entry and its built Prepared handle for the
// target, building on first use. The handle answers queries under its own
// read lock, so many queries share an index while updates wait.
func (s *Service) index(ctx context.Context, t Target) (*indexEntry, *cfpq.Prepared, error) {
	key := t.key()
	be, err := BackendByName(key.Backend)
	if err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	ge := s.graphs[key.Graph]
	re := s.grammars[key.Grammar]
	if ge == nil || re == nil {
		s.mu.Unlock()
		if ge == nil {
			return nil, nil, notFoundf("server: unknown graph %q", key.Graph)
		}
		return nil, nil, notFoundf("server: unknown grammar %q", key.Grammar)
	}
	// Register the entry before snapshotting the graph (see package
	// comment: this ordering, with AddEdges walking the cache after
	// mutation, excludes lost updates).
	e := s.indexes[key]
	if e == nil {
		e = &indexEntry{key: key, ge: ge}
		s.indexes[key] = e
	}
	s.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.built {
		// The engine is constructed at build time (not entry-creation
		// time) so it carries the memory budget in force when the closure
		// actually runs: a build rejected under one budget retries under
		// the current one, while a built index keeps its engine — and its
		// budget — for every incremental patch.
		e.eng = cfpq.NewEngine(be, cfpq.WithMemoryBudget(s.budget.Load()))
		// The Prepared owns a private snapshot of the graph, so the graph
		// lock is held only for the clone, not the (potentially long)
		// closure. An AddEdges racing this build either sees built=false
		// and skips — in which case its mutation finished before our clone
		// and the edges are in the snapshot — or serialises behind us on
		// e.mu and patches the finished handle (a no-op for edges the
		// build saw).
		e.ge.mu.RLock()
		snapshot := e.ge.g.Clone()
		seq := e.ge.seq
		e.ge.mu.RUnlock()
		buildStart := time.Now()
		p, err := e.eng.PrepareCNF(ctx, snapshot, re.cnf)
		if err != nil {
			return nil, nil, s.noteErr(err)
		}
		s.obs.indexBuild.Observe(time.Since(buildStart).Seconds())
		e.p = p
		e.built = true
		s.metrics.indexBuilds.Add(1)
		s.persistIndex(key, seq, p)
	}
	// Every query operation resolves its index exactly once, so this is
	// the one place the query counter ticks (batches add their fan-out in
	// QueryBatch).
	s.metrics.queries.Add(1)
	return e, e.p, nil
}

// resolveNode maps a node name (or decimal id, for graphs without a name
// table entry) to its id. Callers hold the graph entry's lock.
func (ge *graphEntry) resolveNode(tok string) (int, error) {
	if id, ok := ge.names[tok]; ok {
		return id, nil
	}
	if id, err := strconv.Atoi(tok); err == nil {
		if id < 0 || id >= ge.g.Nodes() {
			return 0, fmt.Errorf("server: node id %d out of range [0,%d)", id, ge.g.Nodes())
		}
		return id, nil
	}
	return 0, notFoundf("server: unknown node %q", tok)
}

// nodeName renders a node id through the graph's name table, falling back
// to the decimal id. Callers hold the graph entry's lock.
func (ge *graphEntry) nodeName(id int) string {
	if id < len(ge.byID) && ge.byID[id] != "" {
		return ge.byID[id]
	}
	return strconv.Itoa(id)
}

func invertNames(n int, names map[string]int) []string {
	byID := make([]string, n)
	for name, id := range names {
		if id >= 0 && id < n {
			byID[id] = name
		}
	}
	return byID
}

func (s *Service) graphEntry(name string) (*graphEntry, error) {
	s.mu.Lock()
	ge := s.graphs[name]
	s.mu.Unlock()
	if ge == nil {
		return nil, notFoundf("server: unknown graph %q", name)
	}
	return ge, nil
}

// checkNonterminal guards query errors: Prepared answers unknown
// non-terminals with empty relations, but the service contract is 404.
func checkNonterminal(p *cfpq.Prepared, nt string) error {
	if _, ok := p.CNF().Index(nt); !ok {
		return notFoundf("server: unknown non-terminal %q", nt)
	}
	return nil
}

// Has reports whether (from, to) is in R_nt on the target. from and to are
// node names (or decimal ids). A shim over Do.
func (s *Service) Has(ctx context.Context, t Target, nt, from, to string) (bool, error) {
	ans, err := s.Do(ctx, QueryRequest{
		Graph: t.Graph, Grammar: t.Grammar, Backend: t.Backend,
		Nonterminal: nt, Output: string(cfpq.OutputExists),
		Sources: []string{from}, Targets: []string{to},
	})
	if err != nil {
		return false, err
	}
	return *ans.Exists, nil
}

// NamedPair is one relation element with node names resolved.
type NamedPair struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// Relation returns R_nt on the target as (from, to) node-name pairs in
// row-major node order. Names come from the registry graph the index was
// built from. A shim over Do.
func (s *Service) Relation(ctx context.Context, t Target, nt string) ([]NamedPair, error) {
	ans, err := s.Do(ctx, QueryRequest{
		Graph: t.Graph, Grammar: t.Grammar, Backend: t.Backend, Nonterminal: nt,
	})
	if err != nil {
		return nil, err
	}
	return ans.Pairs, nil
}

// Count returns |R_nt| on the target. A shim over Do.
func (s *Service) Count(ctx context.Context, t Target, nt string) (int, error) {
	ans, err := s.Do(ctx, QueryRequest{
		Graph: t.Graph, Grammar: t.Grammar, Backend: t.Backend,
		Nonterminal: nt, Output: string(cfpq.OutputCount),
	})
	if err != nil {
		return 0, err
	}
	return *ans.Count, nil
}

// Counts returns |R_A| for every non-terminal A of the target's grammar —
// a diagnostic listing over the whole cached index rather than one planned
// query, but still a cached read.
func (s *Service) Counts(ctx context.Context, t Target) (map[string]int, error) {
	_, p, err := s.index(ctx, t)
	if err != nil {
		return nil, err
	}
	s.countStrategy(cfpq.StrategyCachedRead, 1)
	return p.Counts(), nil
}

// RelationFrom returns the pairs of R_nt whose source node is in sources
// (node names or decimal ids), answered from the cached index. A shim
// over Do.
func (s *Service) RelationFrom(ctx context.Context, t Target, nt string, sources []string) ([]NamedPair, error) {
	ans, err := s.Do(ctx, QueryRequest{
		Graph: t.Graph, Grammar: t.Grammar, Backend: t.Backend,
		Nonterminal: nt, Sources: nonNilTokens(sources),
	})
	if err != nil {
		return nil, err
	}
	return ans.Pairs, nil
}

// CountFrom returns the number of R_nt pairs whose source node is in
// sources (node names or decimal ids). A shim over Do.
func (s *Service) CountFrom(ctx context.Context, t Target, nt string, sources []string) (int, error) {
	ans, err := s.Do(ctx, QueryRequest{
		Graph: t.Graph, Grammar: t.Grammar, Backend: t.Backend,
		Nonterminal: nt, Output: string(cfpq.OutputCount), Sources: nonNilTokens(sources),
	})
	if err != nil {
		return 0, err
	}
	return *ans.Count, nil
}

// nonNilTokens keeps the legacy *From semantics: a nil source list meant
// "no sources" (an empty answer), while a QueryRequest reads nil as
// unrestricted.
func nonNilTokens(tokens []string) []string {
	if tokens == nil {
		return []string{}
	}
	return tokens
}

// --- batched queries --------------------------------------------------

// BatchQuerySpec is one query of a batch, addressed by node names (or
// decimal ids). Op is one of has, count, relation, count-from,
// relation-from; empty means relation. Targets optionally restricts the
// relation/count operations to pairs entering those nodes — the batch
// analogue of the targets= restriction of the declarative query path.
type BatchQuerySpec struct {
	Op          string   `json:"op,omitempty"`
	Nonterminal string   `json:"nonterminal"`
	From        string   `json:"from,omitempty"`
	To          string   `json:"to,omitempty"`
	Sources     []string `json:"sources,omitempty"`
	Targets     []string `json:"targets,omitempty"`
}

// BatchAnswer is the answer to one BatchQuerySpec. Errors are per-query:
// one malformed query does not fail its batch (registry-level errors —
// unknown graph, grammar or backend — fail the whole call instead).
type BatchAnswer struct {
	Op          string      `json:"op"`
	Nonterminal string      `json:"nonterminal"`
	Has         *bool       `json:"has,omitempty"`
	Count       *int        `json:"count,omitempty"`
	Pairs       []NamedPair `json:"pairs,omitempty"`
	Error       string      `json:"error,omitempty"`
}

// QueryBatch answers a batch of queries against one target from a single
// cached index build: the Prepared handle is resolved (built on first use)
// once, every query is answered from the same index state under one read
// lock, and the answers fan back out through the library's shared worker
// pool (Prepared.QueryBatch). This is the endpoint for callers that would
// otherwise issue many GET /v1/query calls against the same (graph,
// grammar) pair.
func (s *Service) QueryBatch(ctx context.Context, t Target, specs []BatchQuerySpec) ([]BatchAnswer, error) {
	e, p, err := s.index(ctx, t)
	if err != nil {
		return nil, err
	}
	s.metrics.queries.Add(int64(len(specs) - 1))
	answers := make([]BatchAnswer, len(specs))
	reqs := make([]cfpq.Request, 0, len(specs))
	slot := make([]int, 0, len(specs)) // batch index → specs index
	e.ge.mu.RLock()
	for i, spec := range specs {
		op := spec.Op
		if op == "" {
			op = "relation"
		}
		answers[i] = BatchAnswer{Op: op, Nonterminal: spec.Nonterminal}
		req, err := specRequest(e.ge, op, spec)
		if err != nil {
			answers[i].Error = err.Error()
			continue
		}
		reqs = append(reqs, req)
		slot = append(slot, i)
	}
	e.ge.mu.RUnlock()

	results := p.QueryBatch(ctx, reqs)
	e.ge.mu.RLock()
	defer e.ge.mu.RUnlock()
	for k, r := range results {
		i := slot[k]
		if r.Err != nil {
			answers[i].Error = r.Err.Error()
			continue
		}
		s.countStrategy(r.Result.Explain.Strategy, 1)
		switch answers[i].Op {
		case "has":
			has := r.Result.Exists
			answers[i].Has = &has
		case "count", "count-from":
			count := r.Result.Count
			answers[i].Count = &count
		default: // relation, relation-from
			count := r.Result.Count
			answers[i].Count = &count
			pairs := make([]NamedPair, 0, count)
			for pr := range r.Result.Pairs() {
				pairs = append(pairs, NamedPair{From: e.ge.nodeName(pr.I), To: e.ge.nodeName(pr.J)})
			}
			answers[i].Pairs = pairs
		}
	}
	return answers, nil
}

// specRequest translates one legacy batch spec into a declarative
// Request; callers hold the graph entry's lock for name resolution.
func specRequest(ge *graphEntry, op string, spec BatchQuerySpec) (cfpq.Request, error) {
	req := cfpq.Request{Nonterminal: spec.Nonterminal}
	switch op {
	case "has":
		from, err := ge.resolveNode(spec.From)
		if err != nil {
			return req, err
		}
		to, err := ge.resolveNode(spec.To)
		if err != nil {
			return req, err
		}
		req.Output = cfpq.OutputExists
		req.Sources, req.Targets = []int{from}, []int{to}
		return req, nil
	case "count", "relation", "count-from", "relation-from":
		sources := spec.Sources
		if op == "count-from" || op == "relation-from" {
			// The -from ops historically read a missing source list as "no
			// sources" (an empty answer), not as unrestricted.
			sources = nonNilTokens(sources)
		}
		var err error
		if req.Sources, err = resolveRestrictionLocked(ge, sources); err != nil {
			return req, err
		}
		if req.Targets, err = resolveRestrictionLocked(ge, spec.Targets); err != nil {
			return req, err
		}
		if op == "count" || op == "count-from" {
			req.Output = cfpq.OutputCount
		}
		return req, nil
	default:
		return req, fmt.Errorf("server: unknown batch op %q", op)
	}
}

// --- mutation ---------------------------------------------------------

// EdgeSpec is one edge addressed by node names (or decimal ids). Unknown
// names are interned as new nodes, growing the graph.
type EdgeSpec struct {
	From  string `json:"from"`
	Label string `json:"label"`
	To    string `json:"to"`
}

// UpdateResult reports what an AddEdges call did.
type UpdateResult struct {
	// Added is the number of edges inserted into the graph.
	Added int `json:"added"`
	// NewNodes is the number of nodes interned by this update.
	NewNodes int `json:"new_nodes"`
	// Patched counts cached indexes brought up to date incrementally.
	Patched int `json:"patched"`
	// Invalidated counts cached indexes dropped because the update grew
	// the node set past their matrix dimension; they rebuild on next use.
	Invalidated int `json:"invalidated"`
	// UpdateStats accumulates the incremental closure work across all
	// patched indexes.
	UpdateStats cfpq.Stats `json:"update_stats"`
}

// AddEdges inserts edges into the named graph and brings every cached
// index on that graph up to date: handles whose node range still covers
// the graph are patched with the incremental delta closure
// (Prepared.AddEdges); handles outgrown by new nodes are invalidated.
func (s *Service) AddEdges(ctx context.Context, graphName string, specs []EdgeSpec) (UpdateResult, error) {
	var res UpdateResult
	if err := s.writable(); err != nil {
		return res, err
	}
	ge, err := s.graphEntry(graphName)
	if err != nil {
		return res, err
	}

	// Phase 1: mutate the graph. The whole batch is validated before the
	// first mutation so a bad spec cannot leave the graph half-updated
	// (and cached indexes permanently out of sync with it).
	ge.mu.Lock()
	// Re-check registry identity under the entry lock: RegisterGraph
	// replaces entries while holding the old entry's write lock, so once
	// we own ge.mu either ge is still current or it never will be again —
	// journaling into the replacement's WAL while mutating the orphaned
	// entry would permanently diverge durable from live state. (Taking
	// s.mu under a graphEntry lock is safe: no path acquires graph entry
	// locks while holding s.mu.)
	s.mu.Lock()
	current := s.graphs[graphName] == ge
	s.mu.Unlock()
	if !current {
		ge.mu.Unlock()
		return UpdateResult{}, fmt.Errorf("server: graph %q was replaced during the update; retry", graphName)
	}
	for _, spec := range specs {
		if spec.Label == "" {
			ge.mu.Unlock()
			return UpdateResult{}, fmt.Errorf("server: edge %v has empty label", spec)
		}
		if spec.From == "" || spec.To == "" {
			// An empty token would intern as a node whose "name" cannot
			// round-trip through the durable store's name table.
			ge.mu.Unlock()
			return UpdateResult{}, fmt.Errorf("server: edge %v has an empty endpoint", spec)
		}
		for _, tok := range []string{spec.From, spec.To} {
			if _, err := ge.resolveNode(tok); err == nil {
				continue
			}
			if _, err := strconv.Atoi(tok); err == nil {
				// A numeric token resolveNode rejected is an
				// out-of-range id, not a new node name.
				ge.mu.Unlock()
				return UpdateResult{}, fmt.Errorf("server: node id %s out of range [0,%d)", tok, ge.g.Nodes())
			}
			// A non-numeric unknown token interns as a new node below.
		}
	}
	if s.store != nil {
		// Write-ahead: journal the batch (fsynced) before the first
		// in-memory mutation, still under the graph lock so the WAL's
		// record order matches the order mutations were applied in — the
		// store's replay re-runs the same interning this call performs
		// below and must see the same starting state.
		recs := make([]store.EdgeRecord, len(specs))
		for i, spec := range specs {
			recs[i] = store.EdgeRecord{From: spec.From, Label: spec.Label, To: spec.To}
		}
		//lint:allow cfpqlint/lockscope write-ahead protocol: the fsynced append MUST happen under the entry lock so no reader sees un-journaled state
		seq, err := s.store.Append(graphName, recs)
		if err != nil {
			ge.mu.Unlock()
			return UpdateResult{}, fmt.Errorf("server: journaling edges: %w", err)
		}
		ge.seq = seq
	}
	before := ge.g.Nodes()
	edges := make([]graph.Edge, 0, len(specs))
	intern := func(tok string) int {
		if id, err := ge.resolveNode(tok); err == nil {
			return id
		}
		id := ge.g.Nodes()
		ge.g.EnsureNode(id)
		ge.names[tok] = id
		ge.byID = append(ge.byID, tok)
		return id
	}
	maxNode := -1
	for _, spec := range specs {
		from, to := intern(spec.From), intern(spec.To)
		ge.g.AddEdge(from, spec.Label, to)
		edges = append(edges, graph.Edge{From: from, Label: spec.Label, To: to})
		if from > maxNode {
			maxNode = from
		}
		if to > maxNode {
			maxNode = to
		}
	}
	ge.version++
	nodes := ge.g.Nodes()
	ge.mu.Unlock()
	res.Added = len(edges)
	res.NewNodes = nodes - before
	s.metrics.updates.Add(1)
	s.metrics.edgesAdded.Add(int64(res.Added))

	// Phase 2 (shared with the replication apply path): bring every cached
	// index on this graph up to date.
	s.patchIndexes(ctx, graphName, ge, edges, maxNode, &res)
	return res, nil
}

// patchIndexes walks the cache after a mutation (the ordering that, paired
// with index() registering entries before snapshotting the graph, excludes
// lost updates) and patches or invalidates each slot. Updates racing on
// the same handle serialise inside Prepared; the delta closure only ever
// adds bits and re-applying present edges is a no-op, so the closure is
// confluent. Both AddEdges and the follower's replicated-apply path end
// here — a follower never runs a cold closure to absorb the stream.
func (s *Service) patchIndexes(ctx context.Context, graphName string, ge *graphEntry, edges []graph.Edge, maxNode int, res *UpdateResult) {
	s.mu.Lock()
	var entries []*indexEntry
	for k, e := range s.indexes {
		if k.Graph == graphName && e.ge == ge {
			// The identity check skips entries built on a replacement
			// graph registered under the same name while this call was
			// mutating the old one: their node ids are a different
			// namespace and our edges must not be patched into them.
			entries = append(entries, e)
		}
	}
	s.mu.Unlock()

	for _, e := range entries {
		e.mu.Lock()
		switch {
		case e.stale || !e.built:
			// Unbuilt entries will snapshot the post-mutation graph when
			// they build; stale ones are already off the cache.
		case maxNode >= e.p.Nodes():
			e.stale = true
			res.Invalidated++
		default:
			info, err := e.p.AddEdges(ctx, edges...)
			res.UpdateStats.Add(info.Stats)
			if err != nil {
				s.noteErr(err)
				// A cancelled patch leaves the handle sound but
				// incomplete; drop it so the next query rebuilds, and
				// report it as invalidated, not patched.
				e.stale = true
				res.Invalidated++
			} else {
				res.Patched++
			}
		}
		stale := e.stale
		key := e.key
		p := e.p
		e.mu.Unlock()
		if stale {
			s.mu.Lock()
			if s.indexes[key] == e {
				delete(s.indexes, key)
			}
			s.mu.Unlock()
			if p != nil {
				// Subscribers on an invalidated handle must not wait on a
				// stream nothing will publish to: close it so they
				// re-resolve (the SSE layer turns this into a terminal
				// resync event).
				p.Close()
			}
		}
	}
}

// --- statistics -------------------------------------------------------

// IndexStats describes one cached closure index.
type IndexStats struct {
	Graph   string `json:"graph"`
	Grammar string `json:"grammar"`
	Backend string `json:"backend"`
	Nodes   int    `json:"nodes"`
	// Entries is the total number of set bits across the index's
	// relation matrices.
	Entries int `json:"entries"`
	// Build is the closure work of the initial full fixpoint.
	Build cfpq.Stats `json:"build"`
	// Update accumulates the incremental closure work of every edge
	// update patched into this index since it was built.
	Update  cfpq.Stats `json:"update"`
	Updates int        `json:"updates"`
	Queries int64      `json:"queries"`
}

// Stats reports every cached index, sorted by (graph, grammar, backend).
func (s *Service) Stats() []IndexStats {
	s.mu.Lock()
	entries := make([]*indexEntry, 0, len(s.indexes))
	for _, e := range s.indexes {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	out := make([]IndexStats, 0, len(entries))
	for _, e := range entries {
		e.mu.Lock()
		built, p, key := e.built, e.p, e.key
		e.mu.Unlock()
		if !built {
			continue
		}
		ps := p.Stats()
		out = append(out, IndexStats{
			Graph:   key.Graph,
			Grammar: key.Grammar,
			Backend: key.Backend,
			Nodes:   ps.Nodes,
			Entries: ps.Entries,
			Build:   ps.Build,
			Update:  ps.Update,
			Updates: ps.Updates,
			Queries: ps.Queries,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Graph != b.Graph {
			return a.Graph < b.Graph
		}
		if a.Grammar != b.Grammar {
			return a.Grammar < b.Grammar
		}
		return a.Backend < b.Backend
	})
	return out
}

// IndexStatsFor returns the stats of one cached index, if it is built.
func (s *Service) IndexStatsFor(t Target) (IndexStats, bool) {
	key := t.key()
	for _, st := range s.Stats() {
		if st.Graph == key.Graph && st.Grammar == key.Grammar && st.Backend == key.Backend {
			return st, true
		}
	}
	return IndexStats{}, false
}
