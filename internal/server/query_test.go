package server

// Tests of the declarative query path: POST /v1/query across outputs and
// languages, the uniform {"error": ...} envelope with correct status
// codes, and the per-strategy /debug/vars counters.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// queryTestServer builds a service with the social graph and reach
// grammar the HTTP tests use.
func queryTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(Handler(New()))
	t.Cleanup(srv.Close)
	code, body := httpDo(t, srv, http.MethodPut, "/v1/graphs/social?format=edgelist",
		"alice knows bob\nbob knows carol\ncarol knows dave\n")
	if code != http.StatusOK {
		t.Fatalf("PUT graph: %d %v", code, body)
	}
	code, body = httpDo(t, srv, http.MethodPut, "/v1/grammars/reach", "S -> knows | knows S")
	if code != http.StatusOK {
		t.Fatalf("PUT grammar: %d %v", code, body)
	}
	return srv
}

func TestHTTPDeclarativeQuery(t *testing.T) {
	srv := queryTestServer(t)

	// pairs (default output), unrestricted.
	code, body := httpDo(t, srv, http.MethodPost, "/v1/query",
		`{"graph":"social","grammar":"reach","nonterminal":"S"}`)
	if code != http.StatusOK || body["count"].(float64) != 6 {
		t.Fatalf("pairs: %d %v", code, body)
	}
	explain := body["explain"].(map[string]any)
	if explain["strategy"] != "cached-read" {
		t.Fatalf("pairs explain: %v", explain)
	}

	// exists with a name-addressed pair.
	code, body = httpDo(t, srv, http.MethodPost, "/v1/query",
		`{"graph":"social","grammar":"reach","nonterminal":"S","output":"exists","sources":["alice"],"targets":["dave"]}`)
	if code != http.StatusOK || body["exists"] != true {
		t.Fatalf("exists: %d %v", code, body)
	}

	// count restricted to targets.
	code, body = httpDo(t, srv, http.MethodPost, "/v1/query",
		`{"graph":"social","grammar":"reach","nonterminal":"S","output":"count","targets":["dave"]}`)
	if code != http.StatusOK || body["count"].(float64) != 3 {
		t.Fatalf("target-restricted count: %d %v", code, body)
	}

	// paths between one pair, with names in the steps.
	code, body = httpDo(t, srv, http.MethodPost, "/v1/query",
		`{"graph":"social","grammar":"reach","nonterminal":"S","output":"paths","sources":["alice"],"targets":["carol"],"limit":4}`)
	if code != http.StatusOK {
		t.Fatalf("paths: %d %v", code, body)
	}
	paths := body["paths"].([]any)
	if len(paths) != 1 {
		t.Fatalf("paths: %v", body)
	}
	step := paths[0].([]any)[0].(map[string]any)
	if step["from"] != "alice" || step["label"] != "knows" {
		t.Fatalf("path step: %v", step)
	}

	// An RPQ expression, target-restricted: planned from scratch, so the
	// explain record names the target-frontier strategy.
	code, body = httpDo(t, srv, http.MethodPost, "/v1/query",
		`{"graph":"social","expr":"knows+","output":"count","targets":["dave"]}`)
	if code != http.StatusOK || body["count"].(float64) != 3 {
		t.Fatalf("expr: %d %v", code, body)
	}
	if explain := body["explain"].(map[string]any); explain["strategy"] != "target-frontier" {
		t.Fatalf("expr explain: %v", explain)
	}

	// The legacy GET route answers the same numbers through the shim,
	// including the new targets= restriction.
	code, body = httpDo(t, srv, http.MethodGet,
		"/v1/query?graph=social&grammar=reach&nonterminal=S&op=count&targets=dave", "")
	if code != http.StatusOK || body["count"].(float64) != 3 {
		t.Fatalf("GET targets shim: %d %v", code, body)
	}
}

// TestHTTPErrorEnvelope checks that every failure mode of the query
// endpoints answers the same {"error": ...} JSON envelope with the right
// status code; request-validation failures additionally carry a "field"
// naming the offending request field (the structured cfpq.RequestError on
// the wire).
func TestHTTPErrorEnvelope(t *testing.T) {
	srv := queryTestServer(t)

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
		field  string
	}{
		{"malformed body", http.MethodPost, "/v1/query", `{"graph":`, http.StatusBadRequest, ""},
		{"non-JSON body", http.MethodPost, "/v1/query", `garbage`, http.StatusBadRequest, ""},
		{"no graph", http.MethodPost, "/v1/query", `{"grammar":"reach","nonterminal":"S"}`, http.StatusBadRequest, ""},
		{"no language", http.MethodPost, "/v1/query", `{"graph":"social","grammar":"reach"}`, http.StatusBadRequest, ""},
		{"two languages", http.MethodPost, "/v1/query", `{"graph":"social","grammar":"reach","nonterminal":"S","expr":"a"}`, http.StatusBadRequest, ""},
		{"bad output", http.MethodPost, "/v1/query", `{"graph":"social","grammar":"reach","nonterminal":"S","output":"nope"}`, http.StatusBadRequest, "output"},
		{"negative limit", http.MethodPost, "/v1/query", `{"graph":"social","grammar":"reach","nonterminal":"S","limit":-1}`, http.StatusBadRequest, "limit"},
		{"limited count", http.MethodPost, "/v1/query", `{"graph":"social","grammar":"reach","nonterminal":"S","output":"count","limit":3}`, http.StatusBadRequest, "limit"},
		{"unknown graph", http.MethodPost, "/v1/query", `{"graph":"nope","grammar":"reach","nonterminal":"S"}`, http.StatusNotFound, ""},
		{"unknown grammar", http.MethodPost, "/v1/query", `{"graph":"social","grammar":"nope","nonterminal":"S"}`, http.StatusNotFound, ""},
		{"unknown nonterminal", http.MethodPost, "/v1/query", `{"graph":"social","grammar":"reach","nonterminal":"Nope"}`, http.StatusNotFound, ""},
		{"unknown node", http.MethodPost, "/v1/query", `{"graph":"social","grammar":"reach","nonterminal":"S","sources":["nobody"]}`, http.StatusNotFound, ""},
		{"node id out of range", http.MethodPost, "/v1/query", `{"graph":"social","grammar":"reach","nonterminal":"S","sources":["99"]}`, http.StatusBadRequest, ""},
		{"bad backend", http.MethodPost, "/v1/query", `{"graph":"social","grammar":"reach","nonterminal":"S","backend":"gpu"}`, http.StatusBadRequest, ""},
		{"unknown expr graph", http.MethodPost, "/v1/query", `{"graph":"nope","expr":"knows+"}`, http.StatusNotFound, ""},
		{"bad expr", http.MethodPost, "/v1/query", `{"graph":"social","expr":"(("}`, http.StatusBadRequest, ""},
		{"GET unknown graph", http.MethodGet, "/v1/query?graph=nope&grammar=reach&nonterminal=S", "", http.StatusNotFound, ""},
		{"batch malformed body", http.MethodPost, "/v1/query/batch", `{"queries":`, http.StatusBadRequest, ""},
		{"snapshot without store", http.MethodPost, "/v1/snapshot", "", http.StatusConflict, ""},
	}
	for _, tc := range cases {
		code, body := httpDo(t, srv, tc.method, tc.path, tc.body)
		if code != tc.status {
			t.Errorf("%s: status %d, want %d (%v)", tc.name, code, tc.status, body)
		}
		msg, ok := body["error"].(string)
		if !ok || msg == "" {
			t.Errorf("%s: missing error envelope: %v", tc.name, body)
		}
		want := 1
		if tc.field != "" {
			want = 2
			if body["field"] != tc.field {
				t.Errorf("%s: field %v, want %q", tc.name, body["field"], tc.field)
			}
		}
		if len(body) != want {
			t.Errorf("%s: envelope carries extra fields: %v", tc.name, body)
		}
	}
}

// TestDebugVarsStrategyCounters asserts the per-strategy counters are
// exposed and move with the plans the service executes.
func TestDebugVarsStrategyCounters(t *testing.T) {
	srv := queryTestServer(t)

	strategies := func() map[string]float64 {
		code, body := httpDo(t, srv, http.MethodGet, "/debug/vars", "")
		if code != http.StatusOK {
			t.Fatalf("debug/vars: %d", code)
		}
		raw := body["cfpqd"].(map[string]any)["strategies"].(map[string]any)
		out := map[string]float64{}
		for k, v := range raw {
			out[k] = v.(float64)
		}
		return out
	}
	before := strategies()
	for _, key := range []string{"full", "source-frontier", "target-frontier", "cached-read"} {
		if _, ok := before[key]; !ok {
			t.Fatalf("strategies misses %q: %v", key, before)
		}
	}

	// One cached read (grammar query), one source-frontier and one
	// target-frontier (restricted RPQs), one full (unrestricted RPQ).
	posts := []string{
		`{"graph":"social","grammar":"reach","nonterminal":"S","output":"count"}`,
		`{"graph":"social","expr":"knows+","output":"count","sources":["alice"]}`,
		`{"graph":"social","expr":"knows+","output":"count","targets":["dave"]}`,
		`{"graph":"social","expr":"knows+","output":"count"}`,
	}
	for _, body := range posts {
		if code, resp := httpDo(t, srv, http.MethodPost, "/v1/query", body); code != http.StatusOK {
			t.Fatalf("query %s: %d %v", body, code, resp)
		}
	}
	after := strategies()
	wantDelta := map[string]float64{
		"cached-read":     1,
		"source-frontier": 1,
		"target-frontier": 1,
		"full":            1,
	}
	for key, want := range wantDelta {
		if got := after[key] - before[key]; got != want {
			t.Errorf("strategy %q moved by %v, want %v (before %v, after %v)", key, got, want, before, after)
		}
	}

	// Batch queries count as cached reads, one per answered request.
	batch := `{"graph":"social","grammar":"reach","queries":[` +
		`{"op":"count","nonterminal":"S"},` +
		`{"op":"has","nonterminal":"S","from":"alice","to":"bob"},` +
		`{"op":"relation-from","nonterminal":"S","sources":["bob"]}]}`
	if code, resp := httpDo(t, srv, http.MethodPost, "/v1/query/batch", batch); code != http.StatusOK {
		t.Fatalf("batch: %d %v", code, resp)
	}
	final := strategies()
	if got := final["cached-read"] - after["cached-read"]; got != 3 {
		t.Errorf("batch cached-read delta %v, want 3", got)
	}
}

// TestServiceDoTargets pins the service-level targets restriction and the
// batch targets extension against the unrestricted relation.
func TestServiceDoTargets(t *testing.T) {
	s := New()
	if _, err := s.LoadGraph("g", "edgelist", strings.NewReader("a x b\nb x c\n")); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterGrammar("r", "S -> x | x S"); err != nil {
		t.Fatal(err)
	}
	ans, err := s.Do(t.Context(), QueryRequest{Graph: "g", Grammar: "r", Nonterminal: "S", Targets: []string{"c"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Pairs) != 2 {
		t.Fatalf("target-restricted pairs: %v", ans.Pairs)
	}
	for _, p := range ans.Pairs {
		if p.To != "c" {
			t.Fatalf("pair %v escaped the target restriction", p)
		}
	}

	answers, err := s.QueryBatch(t.Context(), Target{Graph: "g", Grammar: "r"}, []BatchQuerySpec{
		{Op: "count", Nonterminal: "S", Targets: []string{"c"}},
		{Op: "relation", Nonterminal: "S", Targets: []string{"c"}, Sources: []string{"a"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if answers[0].Error != "" || *answers[0].Count != 2 {
		t.Fatalf("batch target count: %+v", answers[0])
	}
	if answers[1].Error != "" || len(answers[1].Pairs) != 1 ||
		answers[1].Pairs[0] != (NamedPair{From: "a", To: "c"}) {
		t.Fatalf("batch pair restriction: %+v", answers[1])
	}

	if _, err := s.Do(t.Context(), QueryRequest{Graph: "g", Grammar: "r", Nonterminal: "S", Output: "paths"}); err == nil {
		t.Fatal("paths without a single pair: expected a validation error")
	} else if !strings.Contains(err.Error(), "invalid request") {
		t.Fatalf("paths validation error: %v", err)
	}
}

// TestHTTPDeclarativeQueryEmptyRestriction pins the declared semantics of
// a present-but-empty restriction: it selects nothing (and does not
// silently mean "everything"), uniformly across the POST wire form
// ("sources": []), the GET shim (sources= / targets=,), and the uncached
// expression path.
func TestHTTPDeclarativeQueryEmptyRestriction(t *testing.T) {
	srv := queryTestServer(t)
	cases := []struct {
		name   string
		method string
		path   string
		body   string
	}{
		{"POST empty sources", http.MethodPost, "/v1/query",
			`{"graph":"social","grammar":"reach","nonterminal":"S","output":"count","sources":[]}`},
		{"POST empty targets", http.MethodPost, "/v1/query",
			`{"graph":"social","grammar":"reach","nonterminal":"S","output":"count","targets":[]}`},
		{"POST expr empty sources", http.MethodPost, "/v1/query",
			`{"graph":"social","expr":"knows+","output":"count","sources":[]}`},
		{"GET empty sources", http.MethodGet,
			"/v1/query?graph=social&grammar=reach&nonterminal=S&op=count&sources=", ""},
		{"GET empty targets", http.MethodGet,
			"/v1/query?graph=social&grammar=reach&nonterminal=S&op=count&targets=,", ""},
	}
	for _, tc := range cases {
		code, body := httpDo(t, srv, tc.method, tc.path, tc.body)
		if code != http.StatusOK {
			t.Fatalf("%s: %d %v", tc.name, code, body)
		}
		if got := body["count"].(float64); got != 0 {
			t.Fatalf("%s counted %v pairs, want 0", tc.name, got)
		}
	}

	// The absent parameter still means unrestricted — the full relation.
	code, body := httpDo(t, srv, http.MethodGet,
		"/v1/query?graph=social&grammar=reach&nonterminal=S&op=count", "")
	if code != http.StatusOK || body["count"].(float64) != 6 {
		t.Fatalf("unrestricted count: %d %v", code, body)
	}
}

// TestHTTPTruncatedFlag asserts the wire answer reports limit truncation
// instead of passing a clipped relation off as complete.
func TestHTTPTruncatedFlag(t *testing.T) {
	srv := queryTestServer(t)
	code, body := httpDo(t, srv, http.MethodPost, "/v1/query",
		`{"graph":"social","grammar":"reach","nonterminal":"S","limit":2}`)
	if code != http.StatusOK {
		t.Fatalf("limited pairs: %d %v", code, body)
	}
	if body["count"].(float64) != 2 || body["truncated"] != true {
		t.Fatalf("limit 2 of 6 pairs: want count 2 truncated true, got %v", body)
	}

	// A limit the relation fits under is not truncation; the flag is
	// omitted from the wire form entirely.
	code, body = httpDo(t, srv, http.MethodPost, "/v1/query",
		`{"graph":"social","grammar":"reach","nonterminal":"S","limit":10}`)
	if code != http.StatusOK || body["count"].(float64) != 6 {
		t.Fatalf("unclipped pairs: %d %v", code, body)
	}
	if _, present := body["truncated"]; present {
		t.Fatalf("unclipped answer carries truncated: %v", body)
	}

	// The uncached expression path (Engine.Do → shapePairs) reports it too.
	code, body = httpDo(t, srv, http.MethodPost, "/v1/query",
		`{"graph":"social","expr":"knows+","limit":1}`)
	if code != http.StatusOK || body["truncated"] != true {
		t.Fatalf("expr truncation: %d %v", code, body)
	}

	// Paths output reports truncation on the wire too: a diamond graph has
	// exactly two witness paths a→d, so limit 1 clips and limit 2 does not.
	if code, body := httpDo(t, srv, http.MethodPut, "/v1/graphs/diamond?format=edgelist",
		"a knows b\nb knows d\na knows c\nc knows d\n"); code != http.StatusOK {
		t.Fatalf("PUT diamond: %d %v", code, body)
	}
	code, body = httpDo(t, srv, http.MethodPost, "/v1/query",
		`{"graph":"diamond","grammar":"reach","nonterminal":"S","output":"paths","sources":["a"],"targets":["d"],"limit":1}`)
	if code != http.StatusOK || body["count"].(float64) != 1 || body["truncated"] != true {
		t.Fatalf("limited paths: %d %v", code, body)
	}
	code, body = httpDo(t, srv, http.MethodPost, "/v1/query",
		`{"graph":"diamond","grammar":"reach","nonterminal":"S","output":"paths","sources":["a"],"targets":["d"],"limit":2}`)
	if code != http.StatusOK || body["count"].(float64) != 2 {
		t.Fatalf("unclipped paths: %d %v", code, body)
	}
	if _, present := body["truncated"]; present {
		t.Fatalf("unclipped paths answer carries truncated: %v", body)
	}
}

// TestHTTPMemoryBudget asserts a closure rejected by the service memory
// budget answers 413 with the error envelope and ticks the
// budget_rejections counter in /debug/vars.
func TestHTTPMemoryBudget(t *testing.T) {
	svc := New()
	svc.SetMemoryBudget(64) // far below even a 4-node index
	srv := httptest.NewServer(Handler(svc))
	t.Cleanup(srv.Close)
	if code, body := httpDo(t, srv, http.MethodPut, "/v1/graphs/social?format=edgelist",
		"alice knows bob\nbob knows carol\ncarol knows dave\n"); code != http.StatusOK {
		t.Fatalf("PUT graph: %d %v", code, body)
	}
	if code, body := httpDo(t, srv, http.MethodPut, "/v1/grammars/reach", "S -> knows | knows S"); code != http.StatusOK {
		t.Fatalf("PUT grammar: %d %v", code, body)
	}

	code, body := httpDo(t, srv, http.MethodPost, "/v1/query",
		`{"graph":"social","grammar":"reach","nonterminal":"S"}`)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("budgeted query: status %d, want 413 (%v)", code, body)
	}
	if msg, ok := body["error"].(string); !ok || !strings.Contains(msg, "memory budget") {
		t.Fatalf("budgeted query error envelope: %v", body)
	}

	// The expression path is budgeted too.
	if code, body := httpDo(t, srv, http.MethodPost, "/v1/query",
		`{"graph":"social","expr":"knows+"}`); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("budgeted expr: status %d, want 413 (%v)", code, body)
	}

	code, body = httpDo(t, srv, http.MethodGet, "/debug/vars", "")
	if code != http.StatusOK {
		t.Fatalf("debug/vars: %d", code)
	}
	if got := body["cfpqd"].(map[string]any)["budget_rejections"].(float64); got != 2 {
		t.Fatalf("budget_rejections = %v, want 2", got)
	}

	// Lifting the budget lets the same query through (rebuild on next use:
	// the failed build cached nothing).
	svc.SetMemoryBudget(0)
	if code, body := httpDo(t, srv, http.MethodPost, "/v1/query",
		`{"graph":"social","grammar":"reach","nonterminal":"S"}`); code != http.StatusOK {
		t.Fatalf("unbudgeted query after lift: %d %v", code, body)
	}
}
