package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"cfpq"
	"cfpq/internal/dataset"
	"cfpq/internal/graph"
	"cfpq/internal/store"
)

// openTestStore opens a store in dir with fsync off (tests simulate
// crashes by dropping the Service and editing files, not by killing the
// process).
func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{NoSync: true, CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// persistentService builds a Service over a fresh store in dir.
func persistentService(t *testing.T, dir string) *Service {
	t.Helper()
	s := New()
	if err := s.AttachStore(ctx, openTestStore(t, dir)); err != nil {
		t.Fatal(err)
	}
	return s
}

// reopen simulates a restart of old: its store's file handles are closed
// (a real kill would drop them too — Close flushes nothing and writes no
// snapshot) and a brand-new Service warm-starts from the files in dir.
func reopen(t *testing.T, old *Service, dir string) *Service {
	t.Helper()
	if old != nil && old.store != nil {
		old.store.Close()
	}
	return persistentService(t, dir)
}

// TestPersistRoundTripAllBackends is the subsystem's acceptance
// invariant: for every backend, build → save → "kill" → reopen → replay
// yields an index whose relation equals a freshly computed one, and the
// reopened service answers without re-running any closure.
func TestPersistRoundTripAllBackends(t *testing.T) {
	// The ontology datasets the conformance suite pins, at a size that
	// keeps four backends × restart affordable, plus the paper's query.
	ds, ok := dataset.ByName("skos")
	if !ok {
		t.Fatal("skos dataset missing")
	}
	g := ds.Build()
	queryGrammar := dataset.Query(1).String()
	// Pick a node v with no _r out-edges: its S row is empty (every
	// query-1 derivation starts with an _r step), so giving it a
	// subClassOf child u below guarantees the WAL-only edges add the new
	// pair S(v,v) — the patch path cannot pass vacuously.
	hasOutR := make([]bool, g.Nodes())
	for _, l := range []string{"subClassOf_r", "type_r"} {
		for _, e := range g.EdgesWithLabel(l) {
			hasOutR[e.From] = true
		}
	}
	v := -1
	for i := g.Nodes() - 1; i >= 0; i-- {
		if !hasOutR[i] {
			v = i
			break
		}
	}
	if v < 0 {
		t.Fatal("no childless node in skos")
	}
	u := (v + 1) % g.Nodes()
	for _, be := range cfpq.Backends() {
		t.Run(be.Name(), func(t *testing.T) {
			dir := t.TempDir()
			s := persistentService(t, dir)
			if err := s.RegisterGraph("onto", g.Clone(), nil); err != nil {
				t.Fatal(err)
			}
			if err := s.RegisterGrammar("q1", queryGrammar); err != nil {
				t.Fatal(err)
			}
			target := Target{Graph: "onto", Grammar: "q1", Backend: be.Name()}
			before, err := s.Relation(ctx, target, "S")
			if err != nil {
				t.Fatal(err)
			}
			// Mutate after the index was built and persisted: these edges
			// live only in the WAL, not in the saved index file.
			added := []EdgeSpec{
				{From: fmt.Sprint(u), Label: "subClassOf", To: fmt.Sprint(v)},
				{From: fmt.Sprint(v), Label: "subClassOf_r", To: fmt.Sprint(u)},
			}
			if _, err := s.AddEdges(ctx, "onto", added); err != nil {
				t.Fatal(err)
			}
			want, err := s.Relation(ctx, target, "S")
			if err != nil {
				t.Fatal(err)
			}

			// "Kill": no snapshot, no graceful anything — just reopen
			// from the files.
			s2 := reopen(t, s, dir)
			if n := s2.Metrics().WarmStarts; n != 1 {
				t.Fatalf("WarmStarts = %d, want 1", n)
			}
			got, err := s2.Relation(ctx, target, "S")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("recovered relation differs: %d pairs vs %d", len(got), len(want))
			}
			// No closure ran: the warm handle's build stats are zero and
			// the build counter never ticked.
			if n := s2.Metrics().IndexBuilds; n != 0 {
				t.Fatalf("reopened service ran %d closures", n)
			}
			ixStats, ok := s2.IndexStatsFor(target)
			if !ok {
				t.Fatal("warm index missing from stats")
			}
			if ixStats.Build.Products != 0 || ixStats.Build.Iterations != 0 {
				t.Fatalf("warm index reports build work: %+v", ixStats.Build)
			}
			// And the fresh-compute oracle agrees.
			fresh := New()
			g2 := g.Clone()
			g2.AddEdge(u, "subClassOf", v)
			g2.AddEdge(v, "subClassOf_r", u)
			if err := fresh.RegisterGraph("onto", g2, nil); err != nil {
				t.Fatal(err)
			}
			if err := fresh.RegisterGrammar("q1", queryGrammar); err != nil {
				t.Fatal(err)
			}
			oracle, err := fresh.Relation(ctx, target, "S")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, oracle) {
				t.Fatal("recovered relation differs from cold recompute")
			}
			vName := fmt.Sprint(v)
			hasVV := func(pairs []NamedPair) bool {
				for _, p := range pairs {
					if p.From == vName && p.To == vName {
						return true
					}
				}
				return false
			}
			if hasVV(before) || !hasVV(got) {
				t.Fatalf("patch-path probe: S(%d,%d) before=%v after=%v, want false/true",
					v, v, hasVV(before), hasVV(got))
			}
		})
	}
}

// TestPersistSnapshotRestart exercises the snapshot path: after POSTing a
// snapshot, a restart replays nothing and still answers identically,
// including edges added after the snapshot.
func TestPersistSnapshotRestart(t *testing.T) {
	dir := t.TempDir()
	s := persistentService(t, dir)
	edges := "a\tx\tb\nb\ty\tc\n"
	if _, err := s.LoadGraph("g", "edgelist", strings.NewReader(edges)); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterGrammar("q", "S -> x S y | x y"); err != nil {
		t.Fatal(err)
	}
	target := Target{Graph: "g", Grammar: "q"}
	if _, err := s.Relation(ctx, target, "S"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddEdges(ctx, "g", []EdgeSpec{{From: "a", Label: "x", To: "d"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(""); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot mutation: lives only in the WAL.
	if _, err := s.AddEdges(ctx, "g", []EdgeSpec{{From: "d", Label: "y", To: "c"}}); err != nil {
		t.Fatal(err)
	}
	want, err := s.Relation(ctx, target, "S")
	if err != nil {
		t.Fatal(err)
	}

	s2 := reopen(t, s, dir)
	got, err := s2.Relation(ctx, target, "S")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-snapshot restart: %v, want %v", got, want)
	}
	if n := s2.Metrics().IndexBuilds; n != 0 {
		t.Fatalf("restart after snapshot ran %d closures", n)
	}
	// a-x->d-y->c must be in there (the WAL-only edge mattered).
	found := false
	for _, p := range got {
		if p.From == "a" && p.To == "c" {
			found = true
		}
	}
	if !found {
		t.Fatal("pair (a,c) via post-snapshot edge missing")
	}
}

// TestPersistTornWALRecovers cuts the WAL mid-record: the service must
// come back at the last good record and answer exactly from that state.
func TestPersistTornWALRecovers(t *testing.T) {
	dir := t.TempDir()
	s := persistentService(t, dir)
	if err := s.RegisterGraph("g", graph.Word([]string{"x", "y"}), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterGrammar("q", "S -> x S y | x y"); err != nil {
		t.Fatal(err)
	}
	// Three single-edge batches → three WAL frames.
	for i, e := range []EdgeSpec{
		{From: "0", Label: "x", To: "0"},
		{From: "2", Label: "y", To: "2"},
		{From: "1", Label: "x", To: "1"},
	} {
		if _, err := s.AddEdges(ctx, "g", []EdgeSpec{e}); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	walPath := filepath.Join(dir, "graphs", "g", "wal")
	whole, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear inside the third frame.
	if err := os.WriteFile(walPath, whole[:len(whole)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := reopen(t, s, dir)
	g2, err := s2.graphEntry("g")
	if err != nil {
		t.Fatal(err)
	}
	if g2.g.EdgeCount() != 2+2 {
		t.Fatalf("recovered %d edges, want 4 (2 base + 2 surviving records)", g2.g.EdgeCount())
	}
	if g2.g.HasEdge(1, "x", 1) {
		t.Fatal("torn record resurrected")
	}
	// The recovered service matches a fresh compute over the surviving
	// graph.
	want := New()
	wg := graph.Word([]string{"x", "y"})
	wg.AddEdge(0, "x", 0)
	wg.AddEdge(2, "y", 2)
	if err := want.RegisterGraph("g", wg, nil); err != nil {
		t.Fatal(err)
	}
	if err := want.RegisterGrammar("q", "S -> x S y | x y"); err != nil {
		t.Fatal(err)
	}
	target := Target{Graph: "g", Grammar: "q"}
	got, err := s2.Relation(ctx, target, "S")
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := want.Relation(ctx, target, "S")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, oracle) {
		t.Fatalf("recovered relation %v, want %v", got, oracle)
	}
}

// TestPersistCompactionThenRestart forces compaction between the index
// save and the restart, exercising the repair path (index watermark below
// the snapshot base).
func TestPersistCompactionThenRestart(t *testing.T) {
	dir := t.TempDir()
	s := persistentService(t, dir)
	if err := s.RegisterGraph("g", graph.Word([]string{"x", "y"}), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterGrammar("q", "S -> x S y | x y"); err != nil {
		t.Fatal(err)
	}
	target := Target{Graph: "g", Grammar: "q"}
	if _, err := s.Relation(ctx, target, "S"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddEdges(ctx, "g", []EdgeSpec{{From: "2", Label: "x", To: "0"}}); err != nil {
		t.Fatal(err)
	}
	// Compact at the STORE level only: the graph snapshot advances to
	// seq 1 but the index file keeps watermark 0, and the WAL tail it
	// would need is gone.
	if err := s.store.Compact("g"); err != nil {
		t.Fatal(err)
	}
	want, err := s.Relation(ctx, target, "S")
	if err != nil {
		t.Fatal(err)
	}

	s2 := reopen(t, s, dir)
	if n := s2.Metrics().WarmStarts; n != 1 {
		t.Fatalf("WarmStarts = %d, want 1 (repair path)", n)
	}
	got, err := s2.Relation(ctx, target, "S")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("repair-path relation %v, want %v", got, want)
	}
	if n := s2.Metrics().IndexBuilds; n != 0 {
		t.Fatalf("repair path ran %d full closures", n)
	}
}

// TestPersistGrammarReplacementDropsIndexes: a re-registered grammar must
// not warm-start the old grammar's relations.
func TestPersistGrammarReplacementDropsIndexes(t *testing.T) {
	dir := t.TempDir()
	s := persistentService(t, dir)
	if err := s.RegisterGraph("g", graph.Word([]string{"x", "y"}), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterGrammar("q", "S -> x S y | x y"); err != nil {
		t.Fatal(err)
	}
	target := Target{Graph: "g", Grammar: "q"}
	if _, err := s.Relation(ctx, target, "S"); err != nil {
		t.Fatal(err)
	}
	// Same non-terminal set, different language: the saved index would
	// type-check against the new CNF and silently serve wrong pairs if it
	// survived.
	if err := s.RegisterGrammar("q", "S -> y S x | y x"); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, s, dir)
	if n := s2.Metrics().WarmStarts; n != 0 {
		t.Fatalf("stale index warm-started after grammar replacement (%d)", n)
	}
	got, err := s2.Relation(ctx, target, "S")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("new grammar yields %v on x-then-y word, want empty", got)
	}
}

// TestAttachStoreRequiresEmptyService guards the warm-start contract.
func TestAttachStoreRequiresEmptyService(t *testing.T) {
	dir := t.TempDir()
	s := New()
	if err := s.RegisterGrammar("q", "S -> a"); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachStore(ctx, openTestStore(t, dir)); err == nil {
		t.Fatal("AttachStore accepted a non-empty service")
	}
	s2 := persistentService(t, t.TempDir())
	if err := s2.AttachStore(ctx, openTestStore(t, t.TempDir())); err == nil {
		t.Fatal("second AttachStore accepted")
	}
}

// TestPersistManyGrammarsAndBackends: several (grammar, backend) indexes
// on one graph all warm-start.
func TestPersistManyGrammarsAndBackends(t *testing.T) {
	dir := t.TempDir()
	s := persistentService(t, dir)
	g := graph.Word([]string{"x", "x", "y", "y"})
	if err := s.RegisterGraph("g", g, nil); err != nil {
		t.Fatal(err)
	}
	grams := map[string]string{
		"balanced": "S -> x S y | x y",
		"stars":    "S -> x S | y S | x | y",
	}
	for name, text := range grams {
		if err := s.RegisterGrammar(name, text); err != nil {
			t.Fatal(err)
		}
	}
	var targets []Target
	for name := range grams {
		for _, be := range []string{"sparse", "dense"} {
			targets = append(targets, Target{Graph: "g", Grammar: name, Backend: be})
		}
	}
	want := map[string]int{}
	for _, tg := range targets {
		n, err := s.Count(ctx, tg, "S")
		if err != nil {
			t.Fatal(err)
		}
		want[fmt.Sprintf("%v", tg)] = n
	}

	s2 := reopen(t, s, dir)
	if n := s2.Metrics().WarmStarts; int(n) != len(targets) {
		t.Fatalf("WarmStarts = %d, want %d", n, len(targets))
	}
	for _, tg := range targets {
		n, err := s2.Count(ctx, tg, "S")
		if err != nil {
			t.Fatal(err)
		}
		if n != want[fmt.Sprintf("%v", tg)] {
			t.Errorf("%v: count %d, want %d", tg, n, want[fmt.Sprintf("%v", tg)])
		}
	}
	if n := s2.Metrics().IndexBuilds; n != 0 {
		t.Fatalf("warm start ran %d closures", n)
	}
}

// TestHTTPPersistenceEndpoints drives /healthz, /debug/vars, /v1/snapshot
// and /v1/store/stats over HTTP against a persistent service.
func TestHTTPPersistenceEndpoints(t *testing.T) {
	dir := t.TempDir()
	s := persistentService(t, dir)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	code, body := httpDo(t, srv, http.MethodGet, "/healthz", "")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, body)
	}

	// Build some state so the metrics have something to show.
	if code, body = httpDo(t, srv, http.MethodPut, "/v1/graphs/g?format=edgelist", "a x b\nb y c\n"); code != http.StatusOK {
		t.Fatalf("PUT graph: %d %v", code, body)
	}
	if code, body = httpDo(t, srv, http.MethodPut, "/v1/grammars/q", "S -> x S y | x y"); code != http.StatusOK {
		t.Fatalf("PUT grammar: %d %v", code, body)
	}
	if code, body = httpDo(t, srv, http.MethodGet, "/v1/query?graph=g&grammar=q&nonterminal=S&op=count", ""); code != http.StatusOK {
		t.Fatalf("query: %d %v", code, body)
	}
	if code, body = httpDo(t, srv, http.MethodPost, "/v1/graphs/g/edges",
		`{"edges":[{"from":"a","label":"x","to":"d"}]}`); code != http.StatusOK {
		t.Fatalf("POST edges: %d %v", code, body)
	}

	code, body = httpDo(t, srv, http.MethodGet, "/debug/vars", "")
	if code != http.StatusOK {
		t.Fatalf("debug/vars: %d", code)
	}
	if _, ok := body["memstats"]; !ok {
		t.Error("debug/vars misses the expvar globals (memstats)")
	}
	svcVars, ok := body["cfpqd"].(map[string]any)
	if !ok {
		t.Fatalf("debug/vars misses cfpqd: %v", body)
	}
	if svcVars["queries"].(float64) < 1 || svcVars["index_builds"].(float64) != 1 ||
		svcVars["updates"].(float64) != 1 || svcVars["edges_added"].(float64) != 1 {
		t.Errorf("cfpqd vars: %v", svcVars)
	}
	storeVars, ok := body["cfpqd_store"].(map[string]any)
	if !ok {
		t.Fatalf("debug/vars misses cfpqd_store: %v", body)
	}
	if storeVars["wal_bytes"].(float64) == 0 || storeVars["appends"].(float64) != 1 {
		t.Errorf("cfpqd_store vars: %v", storeVars)
	}

	code, body = httpDo(t, srv, http.MethodGet, "/v1/store/stats", "")
	if code != http.StatusOK || len(body["graphs"].([]any)) != 1 {
		t.Fatalf("store/stats: %d %v", code, body)
	}

	// Snapshot over HTTP folds the WAL.
	code, body = httpDo(t, srv, http.MethodPost, "/v1/snapshot", "")
	if code != http.StatusOK || body["snapshotted"] != true {
		t.Fatalf("snapshot: %d %v", code, body)
	}
	if code, body = httpDo(t, srv, http.MethodGet, "/v1/store/stats", ""); code != http.StatusOK {
		t.Fatalf("store/stats: %d %v", code, body)
	}
	gs := body["graphs"].([]any)[0].(map[string]any)
	if gs["wal_bytes"].(float64) != 0 || gs["base_seq"].(float64) != 1 {
		t.Errorf("post-snapshot graph stats: %v", gs)
	}
	// Unknown graph → 404.
	if code, _ = httpDo(t, srv, http.MethodPost, "/v1/snapshot?graph=nope", ""); code != http.StatusNotFound {
		t.Errorf("snapshot of unknown graph: %d", code)
	}
}

// TestHTTPStoreEndpointsWithoutStore: the admin endpoints refuse politely
// in memory-only mode while /healthz and /debug/vars still serve.
func TestHTTPStoreEndpointsWithoutStore(t *testing.T) {
	srv := httptest.NewServer(Handler(New()))
	defer srv.Close()
	if code, _ := httpDo(t, srv, http.MethodPost, "/v1/snapshot", ""); code != http.StatusConflict {
		t.Errorf("snapshot without store: %d", code)
	}
	if code, _ := httpDo(t, srv, http.MethodGet, "/v1/store/stats", ""); code != http.StatusConflict {
		t.Errorf("store/stats without store: %d", code)
	}
	if code, body := httpDo(t, srv, http.MethodGet, "/healthz", ""); code != http.StatusOK {
		t.Errorf("healthz: %d %v", code, body)
	}
	if code, body := httpDo(t, srv, http.MethodGet, "/debug/vars", ""); code != http.StatusOK {
		t.Errorf("debug/vars: %d %v", code, body)
	} else if _, ok := body["cfpqd_store"]; ok {
		t.Error("memory-only debug/vars reports store vars")
	}
}

// TestPersistConcurrentUpdatesAndSnapshots races queries, journaled edge
// updates and snapshots against one persistent service, then restarts and
// checks the recovered state equals a cold recompute. Run under -race.
func TestPersistConcurrentUpdatesAndSnapshots(t *testing.T) {
	const writers, batches = 2, 6
	dir := t.TempDir()
	s := persistentService(t, dir)
	if err := s.RegisterGraph("g", graph.Word([]string{"x", "y"}), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterGrammar("q", "S -> x S y | x y"); err != nil {
		t.Fatal(err)
	}
	target := Target{Graph: "g", Grammar: "q"}
	if _, err := s.Relation(ctx, target, "S"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				spec := EdgeSpec{
					From:  fmt.Sprintf("w%d-%d", w, b),
					Label: "x",
					To:    fmt.Sprintf("w%d-%d", w, b+1),
				}
				if _, err := s.AddEdges(ctx, "g", []EdgeSpec{spec}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if err := s.Snapshot("g"); err != nil {
				t.Error(err)
				return
			}
			if _, err := s.Count(ctx, target, "S"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	want, err := s.Relation(ctx, target, "S")
	if err != nil {
		t.Fatal(err)
	}
	wantEdges := 0
	if ge, err := s.graphEntry("g"); err == nil {
		ge.mu.RLock()
		wantEdges = ge.g.EdgeCount()
		ge.mu.RUnlock()
	}

	s2 := reopen(t, s, dir)
	ge, err := s2.graphEntry("g")
	if err != nil {
		t.Fatal(err)
	}
	if ge.g.EdgeCount() != wantEdges {
		t.Fatalf("recovered %d edges, want %d", ge.g.EdgeCount(), wantEdges)
	}
	got, err := s2.Relation(ctx, target, "S")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered relation differs (%d vs %d pairs)", len(got), len(want))
	}
}
