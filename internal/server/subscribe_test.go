package server

// Tests of the live-query serving layer: the service-level Subscribe
// lifecycle and counters, the SSE wire protocol of POST /v1/subscribe
// (prelude, pairs events, heartbeats, Last-Event-ID resume, the terminal
// resync on handle invalidation), /debug/vars observability, and the
// tentpole acceptance property on a follower — pairs pushed from the
// replicated-apply path equal the relation growth, exactly once.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// subTestService is queryTestServer's service exposed directly: the SSE
// tests need both the handler and the Service (to write edges and tune the
// heartbeat).
func subTestService(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s := New()
	if _, err := s.LoadGraph("social", "edgelist",
		strings.NewReader("alice knows bob\nbob knows carol\ncarol knows dave\n")); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterGrammar("reach", reachGrammar); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(s))
	t.Cleanup(srv.Close)
	return s, srv
}

func namedPairSet(pairs []NamedPair) map[NamedPair]bool {
	out := make(map[NamedPair]bool, len(pairs))
	for _, p := range pairs {
		out[p] = true
	}
	return out
}

// TestServiceSubscribeLifecycle drives a subscription at the Go level: it
// registers, receives exactly the newly derived pairs of a leader write,
// shows up in SubscriptionInfos, and deregisters on Close.
func TestServiceSubscribeLifecycle(t *testing.T) {
	s, _ := subTestService(t)
	ss, err := s.Subscribe(ctx, SubscribeRequest{
		Graph: "social", Grammar: "reach", Nonterminal: "S",
	}, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	tgt := Target{Graph: "social", Grammar: "reach"}
	before, err := s.Relation(ctx, tgt, "S")
	if err != nil {
		t.Fatal(err)
	}

	// dave→alice closes the cycle between existing nodes: every missing
	// reachability pair appears at once.
	if _, err := s.AddEdges(ctx, "social", []EdgeSpec{{From: "dave", Label: "knows", To: "alice"}}); err != nil {
		t.Fatal(err)
	}
	after, err := s.Relation(ctx, tgt, "S")
	if err != nil {
		t.Fatal(err)
	}
	want := map[NamedPair]bool{}
	old := namedPairSet(before)
	for _, p := range after {
		if !old[p] {
			want[p] = true
		}
	}

	select {
	case batch, ok := <-ss.Updates():
		if !ok {
			t.Fatal("subscription closed unexpectedly")
		}
		ss.note(batch)
		got := namedPairSet(ss.render(batch).Pairs)
		if len(got) != len(want) {
			t.Fatalf("pushed %d pairs, relation grew by %d", len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("pushed batch missing %v (got %v)", p, got)
			}
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no batch pushed for the leader write")
	}

	infos := s.SubscriptionInfos()
	if len(infos) != 1 {
		t.Fatalf("SubscriptionInfos = %+v, want one entry", infos)
	}
	in := infos[0]
	if in.Graph != "social" || in.Grammar != "reach" || in.Nonterminal != "S" ||
		in.Events != 1 || in.Pairs != int64(len(want)) || in.LastSeq == 0 {
		t.Fatalf("SubscriptionInfos[0] = %+v", in)
	}
	m := s.Metrics()
	if m.Subscriptions != 1 || m.SubscriptionsActive != 1 || m.SubscriptionEvents != 1 ||
		m.SubscriptionPairs != int64(len(want)) {
		t.Fatalf("metrics = %+v", m)
	}

	ss.Close()
	ss.Close() // idempotent
	if infos := s.SubscriptionInfos(); len(infos) != 0 {
		t.Fatalf("after Close: SubscriptionInfos = %+v, want none", infos)
	}
	if m := s.Metrics(); m.SubscriptionsActive != 0 || m.Subscriptions != 1 {
		t.Fatalf("after Close: metrics = %+v", m)
	}
}

// TestServiceSubscribeErrors pins the request validation of the service
// layer: missing names, unknown registry entries, unknown non-terminals.
func TestServiceSubscribeErrors(t *testing.T) {
	s, _ := subTestService(t)
	for name, req := range map[string]SubscribeRequest{
		"no graph":        {Grammar: "reach", Nonterminal: "S"},
		"no grammar":      {Graph: "social", Nonterminal: "S"},
		"no nonterminal":  {Graph: "social", Grammar: "reach"},
		"unknown graph":   {Graph: "nope", Grammar: "reach", Nonterminal: "S"},
		"unknown grammar": {Graph: "social", Grammar: "nope", Nonterminal: "S"},
		"unknown nt":      {Graph: "social", Grammar: "reach", Nonterminal: "Nope"},
		"unknown node":    {Graph: "social", Grammar: "reach", Nonterminal: "S", Sources: []string{"nobody"}},
	} {
		if _, err := s.Subscribe(ctx, req, false, 0); err == nil {
			t.Errorf("%s: Subscribe succeeded", name)
		}
	}
	if n := len(s.SubscriptionInfos()); n != 0 {
		t.Errorf("failed subscribes left %d registered", n)
	}
}

// TestServiceSubscribeInvalidationCloses: a write that grows the node set
// invalidates the cached index entry, and the registry closes the handle —
// every subscription's channel closes, telling consumers to re-query.
func TestServiceSubscribeInvalidationCloses(t *testing.T) {
	s, _ := subTestService(t)
	ss, err := s.Subscribe(ctx, SubscribeRequest{
		Graph: "social", Grammar: "reach", Nonterminal: "S",
	}, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if _, err := s.AddEdges(ctx, "social", []EdgeSpec{{From: "dave", Label: "knows", To: "eve"}}); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-ss.Updates():
		if ok {
			t.Fatal("node-growing write pushed a batch instead of invalidating")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("subscription not closed by the invalidated handle")
	}
}

// sseFrame is one parsed Server-Sent Events frame.
type sseFrame struct {
	id, event, data, comment string
}

// sseConn is a live POST /v1/subscribe stream under test.
type sseConn struct {
	t      *testing.T
	resp   *http.Response
	sc     *bufio.Scanner
	cancel context.CancelFunc
}

func dialSSE(t *testing.T, srv *httptest.Server, body, lastEventID string) *sseConn {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/subscribe", strings.NewReader(body))
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		defer cancel()
		t.Fatalf("POST /v1/subscribe: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	c := &sseConn{t: t, resp: resp, sc: bufio.NewScanner(resp.Body), cancel: cancel}
	t.Cleanup(c.close)
	return c
}

func (c *sseConn) close() {
	c.cancel()
	c.resp.Body.Close()
}

// frame reads one SSE frame (a block of lines up to a blank separator).
func (c *sseConn) frame() (sseFrame, bool) {
	var f sseFrame
	seen := false
	for c.sc.Scan() {
		line := c.sc.Text()
		if line == "" {
			if seen {
				return f, true
			}
			continue
		}
		seen = true
		switch {
		case strings.HasPrefix(line, "id: "):
			f.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			f.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			f.data = strings.TrimPrefix(line, "data: ")
		case strings.HasPrefix(line, ": "):
			f.comment = strings.TrimPrefix(line, ": ")
		default:
			c.t.Errorf("unparsed SSE line %q", line)
		}
	}
	return f, false
}

// event reads frames until one carries an event (skipping comment-only
// frames — the prelude and heartbeats).
func (c *sseConn) event() (sseFrame, bool) {
	for {
		f, ok := c.frame()
		if !ok || f.event != "" {
			return f, ok
		}
	}
}

// TestHTTPSubscribeSSE is the wire protocol end to end: prelude, a pairs
// event for a leader write (with id for resume and resolved node names),
// heartbeat comments, per-subscription /debug/vars counters, and the
// terminal resync event when the served handle is invalidated.
func TestHTTPSubscribeSSE(t *testing.T) {
	s, srv := subTestService(t)
	s.SetSubscribeHeartbeat(25 * time.Millisecond)

	c := dialSSE(t, srv, `{"graph":"social","grammar":"reach","nonterminal":"S","targets":["alice"]}`, "")
	// The prelude comment commits the registration: everything written
	// after it reaches this stream.
	f, ok := c.frame()
	if !ok || f.comment != "subscribed" {
		t.Fatalf("prelude = %+v %v, want the subscribed comment", f, ok)
	}

	if _, err := s.AddEdges(ctx, "social", []EdgeSpec{{From: "dave", Label: "knows", To: "alice"}}); err != nil {
		t.Fatal(err)
	}
	f, ok = c.event()
	if !ok || f.event != "pairs" || f.id == "" {
		t.Fatalf("first event = %+v %v, want an id-stamped pairs event", f, ok)
	}
	var batch wirePairBatch
	if err := json.Unmarshal([]byte(f.data), &batch); err != nil {
		t.Fatalf("bad data payload %q: %v", f.data, err)
	}
	// Targets=["alice"]: of the six new pairs only the four *→alice ones
	// stream, names resolved.
	if batch.Resync || len(batch.Pairs) != 4 {
		t.Fatalf("batch = %+v, want 4 un-resynced pairs into alice", batch)
	}
	for _, p := range batch.Pairs {
		if p.To != "alice" {
			t.Fatalf("restriction leaked pair %+v", p)
		}
	}
	if fmt.Sprint(batch.Seq) != f.id {
		t.Fatalf("id %q != payload seq %d", f.id, batch.Seq)
	}

	// Heartbeats keep the idle stream warm.
	f, ok = c.frame()
	if !ok || f.comment != "hb" {
		t.Fatalf("idle frame = %+v %v, want a heartbeat comment", f, ok)
	}

	// The live subscription is observable.
	_, dvars := httpDo(t, srv, http.MethodGet, "/debug/vars", "")
	subs, ok := dvars["cfpqd_subscriptions"].([]any)
	if !ok || len(subs) != 1 {
		t.Fatalf("/debug/vars cfpqd_subscriptions = %v", dvars["cfpqd_subscriptions"])
	}
	info := subs[0].(map[string]any)
	if info["graph"] != "social" || info["events"].(float64) != 1 || info["pairs"].(float64) != 4 {
		t.Fatalf("subscription var = %v", info)
	}

	// A node-growing write invalidates the served handle: the stream ends
	// with the terminal resync event.
	if _, err := s.AddEdges(ctx, "social", []EdgeSpec{{From: "dave", Label: "knows", To: "eve"}}); err != nil {
		t.Fatal(err)
	}
	f, ok = c.event()
	if !ok || f.event != "resync" {
		t.Fatalf("after invalidation: %+v %v, want the resync event", f, ok)
	}
	if _, ok := c.frame(); ok {
		t.Fatal("stream continued past the terminal resync")
	}
	// The handler's deferred Close deregisters the subscription.
	waitFor(t, 5*time.Second, func() bool { return len(s.SubscriptionInfos()) == 0 },
		"subscription deregistration")
}

// TestHTTPSubscribeResume: a reconnect with Last-Event-ID replays the
// updates the client missed (within the retained window) before going
// live; a malformed Last-Event-ID is a 400.
func TestHTTPSubscribeResume(t *testing.T) {
	s, srv := subTestService(t)
	body := `{"graph":"social","grammar":"reach","nonterminal":"S"}`

	c1 := dialSSE(t, srv, body, "")
	if f, ok := c1.frame(); !ok || f.comment != "subscribed" {
		t.Fatalf("prelude = %+v %v", f, ok)
	}
	if _, err := s.AddEdges(ctx, "social", []EdgeSpec{{From: "bob", Label: "knows", To: "alice"}}); err != nil {
		t.Fatal(err)
	}
	f, ok := c1.event()
	if !ok || f.event != "pairs" {
		t.Fatalf("first event = %+v %v", f, ok)
	}
	lastID := f.id
	c1.close() // client drops

	// Two more writes while disconnected — between existing nodes (so the
	// cached handle and its resume window survive), each deriving new
	// reachability pairs (so each consumes a sequence number).
	for _, e := range []EdgeSpec{
		{From: "carol", Label: "knows", To: "bob"},
		{From: "dave", Label: "knows", To: "carol"},
	} {
		if _, err := s.AddEdges(ctx, "social", []EdgeSpec{e}); err != nil {
			t.Fatal(err)
		}
	}

	// Reconnect where we left off: the two missed updates replay in order,
	// un-resynced, with increasing sequence numbers.
	c2 := dialSSE(t, srv, body, lastID)
	prev := uint64(0)
	fmt.Sscan(lastID, &prev)
	for i := 0; i < 2; i++ {
		f, ok := c2.event()
		if !ok || f.event != "pairs" {
			t.Fatalf("replay %d = %+v %v", i, f, ok)
		}
		var batch wirePairBatch
		if err := json.Unmarshal([]byte(f.data), &batch); err != nil {
			t.Fatal(err)
		}
		if batch.Resync || batch.Seq != prev+1 || len(batch.Pairs) == 0 {
			t.Fatalf("replay %d = %+v, want seq %d with pairs", i, batch, prev+1)
		}
		prev = batch.Seq
	}

	// A resume from outside the window (a made-up future id) is answered
	// with a single resync marker, not a replay.
	c3 := dialSSE(t, srv, body, "9999")
	f, ok = c3.event()
	if !ok || f.event != "pairs" {
		t.Fatalf("gap resume = %+v %v", f, ok)
	}
	var batch wirePairBatch
	if err := json.Unmarshal([]byte(f.data), &batch); err != nil {
		t.Fatal(err)
	}
	if !batch.Resync || len(batch.Pairs) != 0 {
		t.Fatalf("gap resume batch = %+v, want an empty resync marker", batch)
	}

	// Malformed Last-Event-ID: 400 before any stream starts.
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/subscribe", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad Last-Event-ID: %d, want 400", resp.StatusCode)
	}
}

// TestFollowerSubscriptionPush is the tentpole acceptance property on a
// replica: a subscription served by a follower fires from the
// replicated-apply path. Leader writes (among existing nodes, in random
// order) ship over the WAL; the union of the follower's pushed batches
// must equal exactly the growth of its relation — every pair once, no
// full-result diffing anywhere in the path.
func TestFollowerSubscriptionPush(t *testing.T) {
	leader, srv := leaderService(t)
	f := startFollower(t, persistentService(t, t.TempDir()), srv.URL, "f1")
	waitFor(t, 10*time.Second, func() bool { return caughtUp(f, leader, "social") }, "initial sync")

	ss, err := f.svc.Subscribe(ctx, SubscribeRequest{
		Graph: "social", Grammar: "reach", Nonterminal: "S",
	}, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	tgt := Target{Graph: "social", Grammar: "reach"}
	initial, err := f.svc.Relation(ctx, tgt, "S")
	if err != nil {
		t.Fatal(err)
	}

	// Every knows-edge over the existing nodes, in random order, one write
	// per batch: the closure grows step by step on both nodes.
	nodes := []string{"alice", "bob", "carol", "dora"}
	var edges []EdgeSpec
	for _, a := range nodes {
		for _, b := range nodes {
			edges = append(edges, EdgeSpec{From: a, Label: "knows", To: b})
		}
	}
	rng := rand.New(rand.NewSource(29))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for _, e := range edges {
		if _, err := leader.AddEdges(ctx, "social", []EdgeSpec{e}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, func() bool { return caughtUp(f, leader, "social") }, "live tail")

	final, err := f.svc.Relation(ctx, tgt, "S")
	if err != nil {
		t.Fatal(err)
	}
	old := namedPairSet(initial)
	want := map[NamedPair]bool{}
	for _, p := range final {
		if !old[p] {
			want[p] = true
		}
	}

	received := map[NamedPair]bool{}
	for len(received) < len(want) {
		select {
		case b, ok := <-ss.Updates():
			if !ok {
				t.Fatal("follower subscription closed mid-stream")
			}
			if b.Resync {
				t.Fatalf("follower consumer fell behind: %+v", b)
			}
			for _, p := range ss.render(b).Pairs {
				if received[p] {
					t.Fatalf("pair %+v pushed twice", p)
				}
				if !want[p] {
					t.Fatalf("pushed pair %+v is not part of the relation growth", p)
				}
				received[p] = true
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("follower pushed %d of %d grown pairs", len(received), len(want))
		}
	}
	// No trailing over-delivery.
	select {
	case b, ok := <-ss.Updates():
		if ok && len(b.Pairs) > 0 {
			t.Fatalf("extra batch after full delivery: %+v", b)
		}
	case <-time.After(100 * time.Millisecond):
	}
	// And the follower agrees with the leader, as ever.
	want2, err := leader.Relation(ctx, tgt, "S")
	if err != nil {
		t.Fatal(err)
	}
	if len(want2) != len(final) {
		t.Fatalf("follower relation %d pairs, leader %d", len(final), len(want2))
	}
}
