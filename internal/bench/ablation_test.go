package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations touch the large datasets; skipped with -short")
	}
	var buf bytes.Buffer
	RunAblations(&buf)
	out := buf.String()
	for _, want := range []string{
		"Ablation 1: iteration schedule",
		"Ablation 2: dense vs sparse",
		"Ablation 3: sparse SpGEMM scaling",
		"funding", "copies", "workers",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}
