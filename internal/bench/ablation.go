//lint:file-allow cfpqlint/ctxflow bench harness: standalone CLI tooling with no caller context; runs on its own root context by design
package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"cfpq"
	"cfpq/internal/dataset"
	"cfpq/internal/graph"
)

// RunAblations executes the three ablation studies DESIGN.md calls out and
// writes their tables to w:
//
//  1. iteration schedule — the paper-literal snapshot iteration
//     T ← T ∪ (T_prev × T_prev) versus the in-place schedule (passes and
//     time);
//  2. dense/sparse crossover — how the dense kernel degrades with graph
//     size, justifying the paper's omission of dGPU on g1–g3;
//  3. parallel scaling — sparse SpGEMM speed-up with worker count, the
//     effect the paper attributes to the GPU ("acceleration from the GPU
//     increases with the graph size growth").
func RunAblations(w io.Writer) {
	ablationIterationSchedule(w)
	ablationDenseSparseCrossover(w)
	ablationParallelScaling(w)
}

// timeClosure reports the best of three runs to damp scheduler noise. Like
// the table harness, it evaluates through the public cfpq.Engine.
func timeClosure(g *graph.Graph, q int, be cfpq.Backend, opts ...cfpq.Option) (time.Duration, cfpq.Stats) {
	cnf := dataset.QueryCNF(q)
	eng := cfpq.NewEngine(be)
	var best time.Duration
	var stats cfpq.Stats
	for r := 0; r < 3; r++ {
		start := time.Now()
		_, s, err := eng.Evaluate(context.Background(), g, cnf, opts...)
		if err != nil {
			panic(err) // background context: unreachable
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
			stats = s
		}
	}
	return best, stats
}

func ablationIterationSchedule(w io.Writer) {
	fmt.Fprintf(w, "Ablation 1: iteration schedule (Query 1, sparse backend)\n\n")
	fmt.Fprintf(w, "%-14s %8s %8s %8s %12s %12s %12s\n",
		"Ontology", "naive", "inplace", "delta", "naive(ms)", "inplace(ms)", "delta(ms)")
	for _, name := range []string{"skos", "foaf", "funding", "wine", "pizza"} {
		d, _ := dataset.ByName(name)
		g := d.Build()
		tNaive, sNaive := timeClosure(g, 1, cfpq.Sparse, cfpq.WithNaiveIteration())
		tIn, sIn := timeClosure(g, 1, cfpq.Sparse)
		tDelta, sDelta := timeClosure(g, 1, cfpq.Sparse, cfpq.WithDeltaIteration())
		fmt.Fprintf(w, "%-14s %8d %8d %8d %12.2f %12.2f %12.2f\n",
			name, sNaive.Iterations, sIn.Iterations, sDelta.Iterations,
			float64(tNaive.Microseconds())/1000,
			float64(tIn.Microseconds())/1000,
			float64(tDelta.Microseconds())/1000)
	}
	fmt.Fprintln(w)
}

func ablationDenseSparseCrossover(w io.Writer) {
	fmt.Fprintf(w, "Ablation 2: dense vs sparse with graph size (Query 1, funding × k)\n\n")
	fmt.Fprintf(w, "%-8s %8s %12s %12s %12s\n", "copies", "nodes", "dense(ms)", "sparse(ms)", "ratio")
	d, _ := dataset.ByName("funding")
	base := d.Build()
	for _, k := range []int{1, 2, 4, 8} {
		g := graph.Repeat(base, k)
		tDense, _ := timeClosure(g, 1, cfpq.DenseParallel(0))
		tSparse, _ := timeClosure(g, 1, cfpq.SparseParallel(0))
		ratio := float64(tDense) / float64(tSparse)
		fmt.Fprintf(w, "%-8d %8d %12.2f %12.2f %12.1fx\n",
			k, g.Nodes(),
			float64(tDense.Microseconds())/1000, float64(tSparse.Microseconds())/1000, ratio)
	}
	fmt.Fprintln(w)
}

func ablationParallelScaling(w io.Writer) {
	fmt.Fprintf(w, "Ablation 3: sparse SpGEMM scaling with workers (Query 1, g3)\n\n")
	fmt.Fprintf(w, "%-8s %12s %10s\n", "workers", "time(ms)", "speedup")
	d, _ := dataset.ByName("g3")
	g := d.Build()
	var base time.Duration
	maxW := runtime.GOMAXPROCS(0)
	for workers := 1; workers <= maxW; workers *= 2 {
		t, _ := timeClosure(g, 1, cfpq.SparseParallel(workers))
		if workers == 1 {
			base = t
		}
		fmt.Fprintf(w, "%-8d %12.2f %9.2fx\n",
			workers, float64(t.Microseconds())/1000, float64(base)/float64(t))
	}
	fmt.Fprintln(w)
}
