//lint:file-allow cfpqlint/ctxflow bench harness: standalone CLI tooling with no caller context; runs on its own root context by design
package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"cfpq"
	"cfpq/internal/dataset"
	"cfpq/internal/matrix"
	"cfpq/internal/store"
)

// WarmStartConfig drives RunWarmStart — the restart scenario behind
// `cfpqd -data-dir`: a cold start pays the full closure before the first
// query can be answered, a warm start loads the persisted index from a
// store and answers immediately. The measured cell is time-to-first-answer
// for one (dataset, grammar, backend).
type WarmStartConfig struct {
	// Datasets names the graphs to measure; nil means the five real
	// ontologies the other scenarios use (skos, foaf, funding, wine,
	// pizza).
	Datasets []string
	// Grammar names the query grammar: "query1", "query2" or "ancestors"
	// (see SingleSourceConfig). Empty means "query1", the paper's
	// same-generation query, whose closure dominates start-up.
	Grammar string
	// Backend names the matrix backend. Empty means sparse.
	Backend string
	// Repeats is the number of timed runs per phase; the minimum is
	// reported. Zero means 3.
	Repeats int
}

// WarmStartRow is one measured cell of the cold-vs-warm comparison, the
// unit of the BENCH_warmstart.json artifact.
type WarmStartRow struct {
	Scenario string `json:"scenario"`
	Dataset  string `json:"dataset"`
	Grammar  string `json:"grammar"`
	Backend  string `json:"backend"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`
	// Entries is the total relation size of the persisted index;
	// IndexBytes its on-disk footprint.
	Entries    int   `json:"entries"`
	IndexBytes int64 `json:"index_bytes"`
	// ColdMS is time-to-first-answer when the closure must run;
	// WarmMS when the index is loaded from the store (store open + index
	// load + patch + first query); Speedup their ratio.
	ColdMS  float64 `json:"cold_ms"`
	WarmMS  float64 `json:"warm_ms"`
	Speedup float64 `json:"speedup"`
}

// RunWarmStart measures, per dataset, answering the first query (a) cold —
// full closure, then query — and (b) warm — open a populated store, load
// the saved index, bind it to the graph, query — verifying both give the
// same answer.
func RunWarmStart(cfg WarmStartConfig) ([]WarmStartRow, error) {
	names := cfg.Datasets
	if len(names) == 0 {
		names = defaultSingleSourceDatasets
	}
	gramName := cfg.Grammar
	if gramName == "" {
		gramName = "query1"
	}
	gram, err := singleSourceGrammar(gramName)
	if err != nil {
		return nil, err
	}
	cnf, err := cfpq.ToCNF(gram)
	if err != nil {
		return nil, err
	}
	backendName := cfg.Backend
	if backendName == "" {
		backendName = "sparse"
	}
	be, err := cfpq.BackendByName(backendName)
	if err != nil {
		return nil, err
	}
	mbe, ok := matrix.BackendByName(backendName)
	if !ok {
		return nil, fmt.Errorf("bench: unknown backend %q", backendName)
	}
	repeats := cfg.Repeats
	if repeats <= 0 {
		repeats = 3
	}
	eng := cfpq.NewEngine(be)
	ctx := context.Background()
	var rows []WarmStartRow
	for _, name := range names {
		d, ok := dataset.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown dataset %q", name)
		}
		g := d.Build()

		// Cold: the closure runs before the first answer.
		var coldCount int
		bestCold := time.Duration(0)
		for r := 0; r < repeats; r++ {
			start := time.Now()
			p, err := eng.PrepareCNF(ctx, g.Clone(), cnf)
			if err != nil {
				return rows, err
			}
			coldCount = p.Count(ctx, "S")
			if dt := time.Since(start); bestCold == 0 || dt < bestCold {
				bestCold = dt
			}
		}

		// Populate a store the way cfpqd's persistent mode would: graph
		// snapshot + saved index (untimed — this is the previous session's
		// work).
		dir, err := os.MkdirTemp("", "cfpq-warmstart-*")
		if err != nil {
			return rows, err
		}
		defer os.RemoveAll(dir)
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			return rows, err
		}
		if err := st.CreateGraph(name, g, nil); err != nil {
			st.Close()
			return rows, err
		}
		ix, _, err := eng.Evaluate(ctx, g.Clone(), cnf)
		if err != nil {
			st.Close()
			return rows, err
		}
		entries := 0
		for _, c := range ix.Counts() {
			entries += c
		}
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			st.Close()
			return rows, err
		}
		if err := st.SaveIndex(name, gramName, backendName, 0, buf.Bytes()); err != nil {
			st.Close()
			return rows, err
		}
		if err := st.Close(); err != nil {
			return rows, err
		}

		// Warm: open the store, load the index, bind, answer.
		var warmCount int
		bestWarm := time.Duration(0)
		for r := 0; r < repeats; r++ {
			start := time.Now()
			st, err := store.Open(dir, store.Options{})
			if err != nil {
				return rows, err
			}
			wg, _, _, err := st.GraphState(name)
			if err != nil {
				st.Close()
				return rows, err
			}
			infos := st.Indexes(name)
			if len(infos) != 1 {
				st.Close()
				return rows, fmt.Errorf("bench: %s: %d saved indexes, want 1", name, len(infos))
			}
			wix, _, err := st.LoadIndex(infos[0], cnf, mbe)
			if err != nil {
				st.Close()
				return rows, err
			}
			p, err := eng.PrepareFromIndex(wg, cnf, wix)
			if err != nil {
				st.Close()
				return rows, err
			}
			warmCount = p.Count(ctx, "S")
			if err := st.Close(); err != nil {
				return rows, err
			}
			if dt := time.Since(start); bestWarm == 0 || dt < bestWarm {
				bestWarm = dt
			}
		}
		if warmCount != coldCount {
			return rows, fmt.Errorf("bench: %s: warm answer %d != cold answer %d", name, warmCount, coldCount)
		}
		rows = append(rows, WarmStartRow{
			Scenario:   "warmstart",
			Dataset:    name,
			Grammar:    gramName,
			Backend:    backendName,
			Nodes:      g.Nodes(),
			Edges:      g.EdgeCount(),
			Entries:    entries,
			IndexBytes: int64(buf.Len()),
			ColdMS:     msFloat(bestCold),
			WarmMS:     msFloat(bestWarm),
			Speedup:    float64(bestCold) / float64(bestWarm),
		})
	}
	return rows, nil
}

// FormatWarmStart renders rows as a readable table.
func FormatWarmStart(w io.Writer, rows []WarmStartRow) {
	backend := "sparse"
	if len(rows) > 0 {
		backend = rows[0].Backend
	}
	fmt.Fprintf(w, "Warm start (load persisted index) vs cold start (run closure), %s backend\n\n", backend)
	fmt.Fprintf(w, "%-14s %-10s %8s %8s %9s %10s %10s %9s\n",
		"Ontology", "grammar", "nodes", "entries", "idx(KiB)", "cold(ms)", "warm(ms)", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-10s %8d %8d %9.1f %10.2f %10.2f %8.1fx\n",
			r.Dataset, r.Grammar, r.Nodes, r.Entries, float64(r.IndexBytes)/1024,
			r.ColdMS, r.WarmMS, r.Speedup)
	}
}
