//lint:file-allow cfpqlint/ctxflow bench harness: standalone CLI tooling with no caller context; runs on its own root context by design
package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"cfpq"
	"cfpq/internal/dataset"
)

// PlannerConfig drives RunPlanner — the planner scenario: the same
// restricted question asked twice, once as a full all-pairs closure
// filtered after the fact and once as a declarative Request evaluated by
// the planner (Engine.Do), which picks the source- or target-frontier
// strategy. The rows record the strategy chosen, the frontier it
// maintained and the speedup over paying for the full closure — in
// particular that the new target-restricted strategy lands in the same
// speedup class as the source-restricted one on directed grammars.
type PlannerConfig struct {
	// Datasets names the graphs to measure; nil means the five real
	// ontologies the other scenarios use.
	Datasets []string
	// Grammars names the measured query grammars (see RunSingleSource for
	// the valid names). Nil means {"ancestors"} — the directed
	// class-hierarchy walk whose frontier stays small in both directions.
	Grammars []string
	// Nodes is the number of restriction nodes per measurement. Zero
	// means 1.
	Nodes int
	// Repeats is the number of timed runs per cell; the minimum is
	// reported. Zero means 3.
	Repeats int
	// Backend names the matrix backend. Empty means sparse.
	Backend string
	// Seed makes the restriction choice reproducible. Zero means seed 1.
	Seed int64
}

// PlannerRow is one measured (dataset, grammar, restriction) cell.
type PlannerRow struct {
	Scenario string `json:"scenario"`
	Dataset  string `json:"dataset"`
	Grammar  string `json:"grammar"`
	Backend  string `json:"backend"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`
	// Restriction is which side of the pair was restricted: "sources" or
	// "targets".
	Restriction string `json:"restriction"`
	// K is the number of restriction nodes.
	K int `json:"k"`
	// Pairs is the result size — identical for both evaluations (checked).
	Pairs int `json:"pairs"`
	// Strategy is what the planner chose (pinning that a source
	// restriction plans source-frontier and a target restriction plans
	// target-frontier); Frontier and Saturated are its Explain record.
	Strategy  string `json:"strategy"`
	Frontier  int    `json:"frontier"`
	Saturated bool   `json:"saturated"`
	// FullMS is the full-closure-and-filter time (best of Repeats);
	// PlannerMS the planned Request; Speedup their ratio.
	FullMS    float64 `json:"full_ms"`
	PlannerMS float64 `json:"planner_ms"`
	Speedup   float64 `json:"speedup"`
}

// RunPlanner measures, per (dataset, grammar) cell and per restriction
// side, a restricted query answered by (a) the full all-pairs closure
// filtered afterwards and (b) the planner's chosen frontier strategy,
// verifying both agree pair for pair.
func RunPlanner(cfg PlannerConfig) ([]PlannerRow, error) {
	names := cfg.Datasets
	if len(names) == 0 {
		names = defaultSingleSourceDatasets
	}
	gramNames := cfg.Grammars
	if len(gramNames) == 0 {
		gramNames = []string{"ancestors"}
	}
	k := cfg.Nodes
	if k <= 0 {
		k = 1
	}
	repeats := cfg.Repeats
	if repeats <= 0 {
		repeats = 3
	}
	backendName := cfg.Backend
	if backendName == "" {
		backendName = "sparse"
	}
	be, err := cfpq.BackendByName(backendName)
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	eng := cfpq.NewEngine(be)
	ctx := context.Background()
	var rows []PlannerRow
	for _, name := range names {
		d, ok := dataset.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown dataset %q", name)
		}
		g := d.Build()
		n := g.Nodes()
		rng := rand.New(rand.NewSource(seed))
		restriction := make([]int, 0, k)
		seen := map[int]bool{}
		for len(restriction) < k && len(restriction) < n {
			v := rng.Intn(n)
			if !seen[v] {
				seen[v] = true
				restriction = append(restriction, v)
			}
		}

		for _, gramName := range gramNames {
			gram, err := singleSourceGrammar(gramName)
			if err != nil {
				return rows, err
			}
			for _, side := range []string{"sources", "targets"} {
				req := cfpq.Request{Graph: g, Grammar: gram, Nonterminal: "S"}
				if side == "sources" {
					req.Sources = restriction
				} else {
					req.Targets = restriction
				}

				// (a) the full closure, filtered to the restriction.
				var full []cfpq.Pair
				bestFull := time.Duration(0)
				for r := 0; r < repeats; r++ {
					start := time.Now()
					pairs, err := eng.Query(ctx, g, gram, "S")
					if err != nil {
						return rows, err
					}
					filtered := pairs[:0:0]
					for _, p := range pairs {
						if (side == "sources" && seen[p.I]) || (side == "targets" && seen[p.J]) {
							filtered = append(filtered, p)
						}
					}
					if d := time.Since(start); bestFull == 0 || d < bestFull {
						bestFull = d
					}
					full = filtered
				}

				// (b) the planner's frontier strategy.
				var res *cfpq.Result
				bestPlan := time.Duration(0)
				for r := 0; r < repeats; r++ {
					start := time.Now()
					out, err := eng.Do(ctx, req)
					if err != nil {
						return rows, err
					}
					if d := time.Since(start); bestPlan == 0 || d < bestPlan {
						bestPlan = d
					}
					res = out
				}

				planned := res.AllPairs()
				if !pairsEqual(full, planned) {
					return rows, fmt.Errorf("bench: %s/%s/%s: planner disagrees with filtered Query (%d vs %d pairs)",
						name, gramName, side, len(planned), len(full))
				}
				rows = append(rows, PlannerRow{
					Scenario:    "planner",
					Dataset:     name,
					Grammar:     gramName,
					Backend:     backendName,
					Nodes:       n,
					Edges:       g.EdgeCount(),
					Restriction: side,
					K:           len(restriction),
					Pairs:       len(full),
					Strategy:    string(res.Explain.Strategy),
					Frontier:    res.Explain.Frontier,
					Saturated:   res.Explain.Saturated,
					FullMS:      msFloat(bestFull),
					PlannerMS:   msFloat(bestPlan),
					Speedup:     float64(bestFull) / float64(bestPlan),
				})
			}
		}
	}
	return rows, nil
}

// FormatPlanner renders rows as a readable table.
func FormatPlanner(w io.Writer, rows []PlannerRow) {
	backend := "sparse"
	if len(rows) > 0 {
		backend = rows[0].Backend
	}
	fmt.Fprintf(w, "Planner strategies vs all-pairs (%s backend)\n\n", backend)
	fmt.Fprintf(w, "%-14s %-10s %-9s %-16s %8s %8s %9s %10s %12s %9s\n",
		"Ontology", "grammar", "restrict", "strategy", "nodes", "pairs", "frontier", "full(ms)", "planner(ms)", "speedup")
	for _, r := range rows {
		frontier := fmt.Sprintf("%d", r.Frontier)
		if r.Saturated {
			frontier = "sat"
		}
		fmt.Fprintf(w, "%-14s %-10s %-9s %-16s %8d %8d %9s %10.2f %12.2f %8.1fx\n",
			r.Dataset, r.Grammar, r.Restriction, r.Strategy, r.Nodes, r.Pairs, frontier,
			r.FullMS, r.PlannerMS, r.Speedup)
	}
}
