//lint:file-allow cfpqlint/ctxflow bench harness: standalone CLI tooling with no caller context; runs on its own root context by design
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"cfpq"
	"cfpq/internal/dataset"
	"cfpq/internal/grammar"
	"cfpq/internal/matrix"
)

// SingleSourceConfig drives RunSingleSource — the serving-workload
// scenario: instead of the paper's all-pairs closure, answer "what can
// these k nodes reach via S?" with the source-restricted evaluation and
// report its speedup over paying for the full n×n closure.
type SingleSourceConfig struct {
	// Datasets names the graphs to measure; nil means the five real
	// ontologies the ablations use (skos, foaf, funding, wine, pizza).
	Datasets []string
	// Grammars names the measured query grammars; valid entries are
	// "query1" and "query2" (the paper's same-generation queries, whose
	// inverse edges make the component strongly connected, so the frontier
	// saturates and the restricted closure honestly falls back) and
	// "ancestors" (S → subClassOf S | subClassOf, the directed class-
	// hierarchy walk a serving workload actually issues per node, whose
	// frontier stays tiny). Nil means {"query1", "ancestors"} — one row
	// showing the fallback at parity, one showing the win.
	Grammars []string
	// Sources is the number of source nodes per measurement. Zero means 1
	// (the single-source case).
	Sources int
	// Repeats is the number of timed runs per cell; the minimum is
	// reported. Zero means 3.
	Repeats int
	// Backend names the matrix backend. Empty means sparse (the paper's
	// sCPU, the serving default).
	Backend string
	// Seed makes the source choice reproducible. Zero means seed 1.
	Seed int64
}

// singleSourceGrammar resolves a grammar name of SingleSourceConfig.
func singleSourceGrammar(name string) (*grammar.Grammar, error) {
	switch name {
	case "query1":
		return dataset.Query(1), nil
	case "query2":
		return dataset.Query(2), nil
	case "ancestors":
		return grammar.MustParse("S -> subClassOf S | subClassOf"), nil
	default:
		return nil, fmt.Errorf("bench: unknown grammar %q (want query1, query2 or ancestors)", name)
	}
}

// SingleSourceRow is one measured (dataset, sources) cell, the unit the
// BENCH_*.json artifact records.
type SingleSourceRow struct {
	Scenario string `json:"scenario"`
	Dataset  string `json:"dataset"`
	Grammar  string `json:"grammar"`
	Backend  string `json:"backend"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`
	// Sources is the number of source nodes queried from.
	Sources int `json:"sources"`
	// Pairs is the result size — identical for both evaluations (checked).
	Pairs int `json:"pairs"`
	// Frontier is the number of rows the restricted closure ended up
	// maintaining; Saturated reports a fallback to the full closure.
	Frontier  int  `json:"frontier"`
	Saturated bool `json:"saturated"`
	// AllPairsMS is the full-closure evaluation time (best of Repeats);
	// SingleSourceMS the source-restricted one; Speedup their ratio.
	AllPairsMS     float64 `json:"all_pairs_ms"`
	SingleSourceMS float64 `json:"single_source_ms"`
	Speedup        float64 `json:"speedup"`
}

// defaultSingleSourceDatasets are the five real ontologies the ablation
// studies also use, spanning the paper's size range.
var defaultSingleSourceDatasets = []string{"skos", "foaf", "funding", "wine", "pizza"}

// RunSingleSource measures, per (dataset, grammar) cell, answering a
// k-source question by (a) evaluating the full all-pairs closure and
// filtering and (b) the source-restricted closure (Engine.QueryFrom),
// verifying both agree pair for pair.
func RunSingleSource(cfg SingleSourceConfig) ([]SingleSourceRow, error) {
	names := cfg.Datasets
	if len(names) == 0 {
		names = defaultSingleSourceDatasets
	}
	gramNames := cfg.Grammars
	if len(gramNames) == 0 {
		gramNames = []string{"query1", "ancestors"}
	}
	k := cfg.Sources
	if k <= 0 {
		k = 1
	}
	repeats := cfg.Repeats
	if repeats <= 0 {
		repeats = 3
	}
	backendName := cfg.Backend
	if backendName == "" {
		backendName = "sparse"
	}
	be, err := cfpq.BackendByName(backendName)
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	eng := cfpq.NewEngine(be)
	ctx := context.Background()
	var rows []SingleSourceRow
	for _, name := range names {
		d, ok := dataset.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown dataset %q", name)
		}
		g := d.Build()
		n := g.Nodes()
		rng := rand.New(rand.NewSource(seed))
		sources := make([]int, 0, k)
		seen := map[int]bool{}
		for len(sources) < k && len(sources) < n {
			s := rng.Intn(n)
			if !seen[s] {
				seen[s] = true
				sources = append(sources, s)
			}
		}

		for _, gramName := range gramNames {
			gram, err := singleSourceGrammar(gramName)
			if err != nil {
				return rows, err
			}

			var full []cfpq.Pair
			bestFull := time.Duration(0)
			for r := 0; r < repeats; r++ {
				start := time.Now()
				pairs, err := eng.Query(ctx, g, gram, "S")
				if err != nil {
					return rows, err
				}
				filtered := pairs[:0:0]
				for _, p := range pairs {
					if seen[p.I] {
						filtered = append(filtered, p)
					}
				}
				if d := time.Since(start); bestFull == 0 || d < bestFull {
					bestFull = d
				}
				full = filtered
			}

			var restricted []cfpq.Pair
			var fs cfpq.FromStats
			bestFrom := time.Duration(0)
			for r := 0; r < repeats; r++ {
				start := time.Now()
				pairs, stats, err := eng.QueryFromStats(ctx, g, gram, "S", sources)
				if err != nil {
					return rows, err
				}
				if d := time.Since(start); bestFrom == 0 || d < bestFrom {
					bestFrom = d
				}
				restricted, fs = pairs, stats
			}

			if !pairsEqual(full, restricted) {
				return rows, fmt.Errorf("bench: %s/%s: QueryFrom disagrees with filtered Query (%d vs %d pairs)",
					name, gramName, len(restricted), len(full))
			}
			rows = append(rows, SingleSourceRow{
				Scenario:       "single-source",
				Dataset:        name,
				Grammar:        gramName,
				Backend:        backendName,
				Nodes:          n,
				Edges:          g.EdgeCount(),
				Sources:        len(sources),
				Pairs:          len(full),
				Frontier:       fs.Frontier,
				Saturated:      fs.Saturated,
				AllPairsMS:     msFloat(bestFull),
				SingleSourceMS: msFloat(bestFrom),
				Speedup:        float64(bestFull) / float64(bestFrom),
			})
		}
	}
	return rows, nil
}

func pairsEqual(a, b []matrix.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func msFloat(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000.0
}

// FormatSingleSource renders rows as a readable table.
func FormatSingleSource(w io.Writer, rows []SingleSourceRow) {
	fmt.Fprintf(w, "Single-source CFPQ vs all-pairs (%s backend)\n\n", rowsBackend(rows))
	fmt.Fprintf(w, "%-14s %-10s %8s %8s %8s %9s %12s %12s %9s\n",
		"Ontology", "grammar", "nodes", "sources", "pairs", "frontier", "allpairs(ms)", "source(ms)", "speedup")
	for _, r := range rows {
		frontier := fmt.Sprintf("%d", r.Frontier)
		if r.Saturated {
			frontier = "sat"
		}
		fmt.Fprintf(w, "%-14s %-10s %8d %8d %8d %9s %12.2f %12.2f %8.1fx\n",
			r.Dataset, r.Grammar, r.Nodes, r.Sources, r.Pairs, frontier,
			r.AllPairsMS, r.SingleSourceMS, r.Speedup)
	}
}

func rowsBackend(rows []SingleSourceRow) string {
	if len(rows) == 0 {
		return "sparse"
	}
	return rows[0].Backend
}

// WriteBenchJSON writes the rows of any scenario (SingleSourceRow,
// WarmStartRow, …) as the BENCH_*.json artifact format: an indented JSON
// object with a single "rows" key, stable for diffing.
func WriteBenchJSON(w io.Writer, rows any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"rows": rows})
}
