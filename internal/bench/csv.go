package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits rows in machine-readable CSV with one column per
// implementation (milliseconds; empty cell for skipped implementations).
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	header := []string{"ontology", "triples", "results", "GLL_ms", "dGPU_ms", "sCPU_ms", "sGPU_ms"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Ontology,
			strconv.Itoa(r.Triples),
			strconv.Itoa(r.Results),
		}
		for _, impl := range []string{"GLL", "dGPU", "sCPU", "sGPU"} {
			d, ok := r.Times[impl]
			if !ok {
				rec = append(rec, "")
				continue
			}
			rec = append(rec, fmt.Sprintf("%.3f", float64(d.Microseconds())/1000.0))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
