package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTableQuick(t *testing.T) {
	// Small graphs only; one repeat. All implementations must agree on
	// #results (RunTable errors otherwise).
	rows, err := RunTable(Config{Query: 1, Repeats: 1, MaxTriples: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // skos, generations, travel, univ-bench
		t.Fatalf("got %d rows: %+v", len(rows), rows)
	}
	for _, r := range rows {
		if r.Results <= 0 {
			t.Errorf("%s: no results", r.Ontology)
		}
		for _, name := range []string{"GLL", "dGPU", "sCPU", "sGPU"} {
			if _, ok := r.Times[name]; !ok {
				t.Errorf("%s: missing timing for %s", r.Ontology, name)
			}
		}
	}
}

func TestRunTableQuery2(t *testing.T) {
	rows, err := RunTable(Config{Query: 2, Repeats: 1, MaxTriples: 280})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestRunTableRejectsBadQuery(t *testing.T) {
	if _, err := RunTable(Config{Query: 3}); err == nil {
		t.Error("query 3 should be rejected")
	}
}

func TestFormatTable(t *testing.T) {
	rows, err := RunTable(Config{Query: 1, Repeats: 1, MaxTriples: 260})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	FormatTable(&buf, 1, rows)
	out := buf.String()
	for _, want := range []string{"Table 1", "Ontology", "#triples", "#results", "skos", "sGPU(ms)"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestImplementationsSkipDenseOnSynthetic(t *testing.T) {
	for _, impl := range Implementations(1) {
		if impl.Name == "dGPU" && !impl.SkipSynthetic {
			t.Error("dGPU must be skipped on g1–g3 (paper omits it there)")
		}
		if impl.Name != "dGPU" && impl.SkipSynthetic {
			t.Errorf("%s should run on synthetic graphs", impl.Name)
		}
	}
}

func TestMsFormat(t *testing.T) {
	if got := ms(nil, "GLL"); got != "—" {
		t.Errorf("missing time should render as dash, got %q", got)
	}
}
