package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunSingleSource(t *testing.T) {
	rows, err := RunSingleSource(SingleSourceConfig{
		Datasets: []string{"skos", "generations"},
		Sources:  2,
		Repeats:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two datasets × two default grammars (query1, ancestors).
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Scenario != "single-source" || r.Backend != "sparse" {
			t.Errorf("row metadata wrong: %+v", r)
		}
		if r.Grammar != "query1" && r.Grammar != "ancestors" {
			t.Errorf("%s: unexpected grammar %q", r.Dataset, r.Grammar)
		}
		if r.Sources != 2 {
			t.Errorf("%s: sources = %d, want 2", r.Dataset, r.Sources)
		}
		if r.SingleSourceMS <= 0 || r.AllPairsMS <= 0 || r.Speedup <= 0 {
			t.Errorf("%s: non-positive timings: %+v", r.Dataset, r)
		}
		if !r.Saturated && (r.Frontier < r.Sources || r.Frontier > r.Nodes) {
			t.Errorf("%s: frontier %d outside [%d,%d]", r.Dataset, r.Frontier, r.Sources, r.Nodes)
		}
		// The directed class-hierarchy walk must not saturate: its frontier
		// is the subClassOf path to the root, a sliver of the graph.
		if r.Grammar == "ancestors" && r.Saturated {
			t.Errorf("%s: ancestors grammar saturated the frontier", r.Dataset)
		}
	}
}

func TestRunSingleSourceErrors(t *testing.T) {
	if _, err := RunSingleSource(SingleSourceConfig{Datasets: []string{"nope"}}); err == nil {
		t.Error("unknown dataset should fail")
	}
	if _, err := RunSingleSource(SingleSourceConfig{Grammars: []string{"nope"}}); err == nil {
		t.Error("bad grammar should fail")
	}
	if _, err := RunSingleSource(SingleSourceConfig{Backend: "quantum"}); err == nil {
		t.Error("bad backend should fail")
	}
}

func TestWriteBenchJSONAndFormat(t *testing.T) {
	rows, err := RunSingleSource(SingleSourceConfig{
		Datasets: []string{"skos"},
		Repeats:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Rows []SingleSourceRow `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(decoded.Rows) != 2 || decoded.Rows[0].Dataset != "skos" {
		t.Errorf("decoded rows = %+v", decoded.Rows)
	}
	var table bytes.Buffer
	FormatSingleSource(&table, rows)
	if !strings.Contains(table.String(), "skos") || !strings.Contains(table.String(), "speedup") {
		t.Errorf("table output = %q", table.String())
	}
}
