package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunPlannerSmoke runs the planner scenario on the smallest ontology
// and checks the invariants the committed artifact relies on: agreement is
// verified inside RunPlanner, a source restriction plans source-frontier,
// a target restriction plans target-frontier, and neither saturates on the
// directed ancestors grammar.
func TestRunPlannerSmoke(t *testing.T) {
	rows, err := RunPlanner(PlannerConfig{
		Datasets: []string{"skos"},
		Grammars: []string{"ancestors"},
		Repeats:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (sources + targets)", len(rows))
	}
	byRestriction := map[string]PlannerRow{}
	for _, r := range rows {
		byRestriction[r.Restriction] = r
	}
	if got := byRestriction["sources"].Strategy; got != "source-frontier" {
		t.Errorf("sources restriction planned %q, want source-frontier", got)
	}
	if got := byRestriction["targets"].Strategy; got != "target-frontier" {
		t.Errorf("targets restriction planned %q, want target-frontier", got)
	}
	for _, r := range rows {
		if r.Saturated {
			t.Errorf("%s/%s: the directed ancestors grammar should not saturate", r.Dataset, r.Restriction)
		}
		if r.Frontier <= 0 || r.Frontier >= r.Nodes {
			t.Errorf("%s/%s: frontier %d out of (0,%d)", r.Dataset, r.Restriction, r.Frontier, r.Nodes)
		}
	}

	var buf bytes.Buffer
	FormatPlanner(&buf, rows)
	if !strings.Contains(buf.String(), "target-frontier") {
		t.Errorf("formatted table misses the strategy column:\n%s", buf.String())
	}
	buf.Reset()
	if err := WriteBenchJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"scenario": "planner"`) {
		t.Errorf("JSON artifact misses scenario tag:\n%s", buf.String())
	}
}
