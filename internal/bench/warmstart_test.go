package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunWarmStart(t *testing.T) {
	rows, err := RunWarmStart(WarmStartConfig{
		Datasets: []string{"skos"},
		Repeats:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.Scenario != "warmstart" || r.Dataset != "skos" || r.Grammar != "query1" || r.Backend != "sparse" {
		t.Errorf("row identity: %+v", r)
	}
	if r.Entries == 0 || r.IndexBytes == 0 || r.ColdMS <= 0 || r.WarmMS <= 0 {
		t.Errorf("empty measurements: %+v", r)
	}
	// The whole point: loading an index beats re-running the closure.
	if r.Speedup <= 1 {
		t.Errorf("warm start slower than cold (%.2fx): %+v", r.Speedup, r)
	}

	var buf bytes.Buffer
	FormatWarmStart(&buf, rows)
	if !strings.Contains(buf.String(), "skos") {
		t.Errorf("table output:\n%s", buf.String())
	}
	var js bytes.Buffer
	if err := WriteBenchJSON(&js, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"scenario": "warmstart"`) {
		t.Errorf("JSON output:\n%s", js.String())
	}
}

func TestRunWarmStartRejectsUnknowns(t *testing.T) {
	if _, err := RunWarmStart(WarmStartConfig{Datasets: []string{"nope"}}); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := RunWarmStart(WarmStartConfig{Grammar: "nope"}); err == nil {
		t.Error("unknown grammar accepted")
	}
	if _, err := RunWarmStart(WarmStartConfig{Backend: "nope"}); err == nil {
		t.Error("unknown backend accepted")
	}
}
