package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestWriteCSV(t *testing.T) {
	rows := []Row{
		{
			Ontology: "skos", Triples: 252, Results: 857,
			Times: map[string]time.Duration{
				"GLL":  1200 * time.Microsecond,
				"sCPU": 530 * time.Microsecond,
				"sGPU": 740 * time.Microsecond,
				// dGPU intentionally missing (skipped).
			},
		},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	if lines[0] != "ontology,triples,results,GLL_ms,dGPU_ms,sCPU_ms,sGPU_ms" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "skos,252,857,1.200,,0.530,0.740" {
		t.Errorf("row = %q", lines[1])
	}
}
