//lint:file-allow cfpqlint/ctxflow bench harness: standalone CLI tooling with no caller context; runs on its own root context by design
package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"cfpq"
	"cfpq/internal/grammar"
	"cfpq/internal/graphgen"
)

// ScaleConfig drives RunScale — the scale-tier scenario: the synthetic
// graphgen topologies at 10⁴+ nodes, each closed under the Dyck grammar
// S → a S b | a b head-to-head on the CSR sparse and dense bitset
// backends. The scenario's claim is the paper's: sparse representation is
// what makes big, sparse graphs feasible, and the committed artifact holds
// the numbers behind it.
type ScaleConfig struct {
	// Nodes is the matrix dimension of every generated graph. Zero means
	// 10_000 (the scale tier's floor); Short overrides it to 2_048 so CI
	// smoke runs finish in seconds.
	Nodes int
	// Depth forwards to graphgen.Spec.Depth (zero = generator default).
	Depth int
	// Degree forwards to graphgen.Spec.Degree (zero = generator default).
	Degree int
	// Seed drives the scale-free topology. Zero means 1.
	Seed int64
	// Backends names the measured matrix backends. Nil means
	// {"sparse", "dense"} — the paper's sCPU vs dGPU axis.
	Backends []string
	// Repeats is the number of timed closures per cell; the minimum is
	// reported. Zero means 3.
	Repeats int
	// Short shrinks Nodes for CI smoke runs.
	Short bool
}

// ScaleRow is one measured (topology, backend) cell of the scale scenario.
type ScaleRow struct {
	Scenario string `json:"scenario"`
	Topology string `json:"topology"`
	Backend  string `json:"backend"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`
	// Pairs is |R_S| — identical across backends for a topology (checked).
	Pairs int `json:"pairs"`
	// Iterations is the number of outer closure passes the evaluation ran.
	Iterations int `json:"iterations"`
	// CloseMS is the closure time, best of Repeats.
	CloseMS float64 `json:"close_ms"`
}

// RunScale generates each topology once, then times the full closure on
// every configured backend, verifying all backends agree on |R_S| before
// reporting.
func RunScale(cfg ScaleConfig) ([]ScaleRow, error) {
	nodes := cfg.Nodes
	if nodes <= 0 {
		nodes = 10_000
	}
	if cfg.Short {
		nodes = 2_048
	}
	backends := cfg.Backends
	if len(backends) == 0 {
		backends = []string{"sparse", "dense"}
	}
	repeats := cfg.Repeats
	if repeats <= 0 {
		repeats = 3
	}
	cnf := grammar.MustCNF(grammar.MustParse("S -> a S b | a b"))
	ctx := context.Background()

	var rows []ScaleRow
	for _, kind := range graphgen.Kinds() {
		g, err := graphgen.Generate(graphgen.Spec{
			Kind: kind, Nodes: nodes, Depth: cfg.Depth, Degree: cfg.Degree, Seed: cfg.Seed,
		})
		if err != nil {
			return rows, err
		}
		pairs := -1
		for _, name := range backends {
			be, err := cfpq.BackendByName(name)
			if err != nil {
				return rows, err
			}
			eng := cfpq.NewEngine(be)
			var best time.Duration
			var count int
			var stats cfpq.Stats
			for r := 0; r < repeats; r++ {
				start := time.Now()
				ix, st, err := eng.Evaluate(ctx, g, cnf)
				if err != nil {
					return rows, err
				}
				if d := time.Since(start); best == 0 || d < best {
					best = d
				}
				count, stats = ix.Count("S"), st
			}
			if pairs >= 0 && count != pairs {
				return rows, fmt.Errorf("bench: %s/%s: |R_S| = %d disagrees with %d on %s",
					kind, name, count, pairs, backends[0])
			}
			pairs = count
			rows = append(rows, ScaleRow{
				Scenario:   "scale",
				Topology:   string(kind),
				Backend:    name,
				Nodes:      g.Nodes(),
				Edges:      g.EdgeCount(),
				Pairs:      count,
				Iterations: stats.Iterations,
				CloseMS:    msFloat(best),
			})
		}
	}
	return rows, nil
}

// FormatScale renders the scale rows as a readable table, pairing each
// topology's backends so the sparse-vs-dense ratio is visible at a glance.
func FormatScale(w io.Writer, rows []ScaleRow) {
	fmt.Fprintf(w, "Scale tier: Dyck closure on synthetic topologies\n\n")
	fmt.Fprintf(w, "%-12s %-16s %9s %9s %9s %6s %11s\n",
		"topology", "backend", "nodes", "edges", "pairs", "iters", "close(ms)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-16s %9d %9d %9d %6d %11.2f\n",
			r.Topology, r.Backend, r.Nodes, r.Edges, r.Pairs, r.Iterations, r.CloseMS)
	}
}
