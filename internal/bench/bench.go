//lint:file-allow cfpqlint/ctxflow bench harness: standalone CLI tooling with no caller context; runs on its own root context by design

// Package bench is the harness that regenerates the paper's evaluation:
// Table 1 (Query 1) and Table 2 (Query 2) over the 14 dataset graphs, for
// the four implementations the paper compares —
//
//	GLL   — the GLL-based baseline of Grigorev & Ragozina
//	dGPU  — dense matrices, data-parallel kernel (here: multicore bitset)
//	sCPU  — sparse CSR matrices, serial
//	sGPU  — sparse CSR matrices, row-parallel kernel (here: multicore)
//
// — checking along the way that every implementation returns the same
// #results, exactly as the paper reports ("All implementations ... have the
// same #results").
package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"cfpq"
	"cfpq/internal/baseline"
	"cfpq/internal/dataset"
	"cfpq/internal/grammar"
	"cfpq/internal/graph"
)

// Impl is one measured implementation.
type Impl struct {
	// Name as it appears in the paper's table header.
	Name string
	// Run evaluates R_S and returns its size.
	Run func(g *graph.Graph) int
	// SkipSynthetic omits the implementation on the repeated graphs g1–g3
	// (the paper omits dGPU there: "a dense matrix representation leads to
	// a significant performance degradation with the graph size growth").
	SkipSynthetic bool
}

// Implementations returns the paper's four implementations for query q,
// in table-column order. The matrix implementations all evaluate through
// the public cfpq.Engine — the same surface the library, CLI and server
// expose — so the harness measures what users actually run.
func Implementations(q int) []Impl {
	gram := dataset.Query(q)
	cnf := grammar.MustCNF(gram)
	matrixImpl := func(be cfpq.Backend) func(g *graph.Graph) int {
		eng := cfpq.NewEngine(be)
		return func(g *graph.Graph) int {
			ix, _, err := eng.Evaluate(context.Background(), g, cnf)
			if err != nil {
				panic(err) // background context: unreachable
			}
			return ix.Count("S")
		}
	}
	return []Impl{
		{
			Name: "GLL",
			Run: func(g *graph.Graph) int {
				return len(baseline.NewGLL(gram).Relation(g, "S"))
			},
		},
		{Name: "dGPU", Run: matrixImpl(cfpq.DenseParallel(0)), SkipSynthetic: true},
		{Name: "sCPU", Run: matrixImpl(cfpq.Sparse)},
		{Name: "sGPU", Run: matrixImpl(cfpq.SparseParallel(0))},
	}
}

// Row is one table line.
type Row struct {
	Ontology string
	Triples  int
	Results  int
	// Times maps implementation name → best-of-Repeats wall time; absent
	// for skipped implementations.
	Times map[string]time.Duration
}

// Config drives RunTable.
type Config struct {
	// Query selects Table 1 (1) or Table 2 (2).
	Query int
	// Repeats is the number of timed runs per cell; the minimum is
	// reported. Zero means 3.
	Repeats int
	// MaxTriples, when positive, skips graphs with more paper-triples (for
	// quick runs).
	MaxTriples int
	// Verbose, with a non-nil Log, prints per-cell progress.
	Log io.Writer
}

// RunTable measures every implementation over every dataset graph and
// returns the rows of the requested table. It returns an error if two
// implementations disagree on #results for any graph.
func RunTable(cfg Config) ([]Row, error) {
	if cfg.Query != 1 && cfg.Query != 2 {
		return nil, fmt.Errorf("bench: query must be 1 or 2, got %d", cfg.Query)
	}
	repeats := cfg.Repeats
	if repeats <= 0 {
		repeats = 3
	}
	impls := Implementations(cfg.Query)
	var rows []Row
	for _, d := range dataset.Graphs() {
		if cfg.MaxTriples > 0 && d.Triples > cfg.MaxTriples {
			continue
		}
		g := d.Build()
		row := Row{Ontology: d.Name, Triples: d.Triples, Results: -1, Times: map[string]time.Duration{}}
		for _, impl := range impls {
			if impl.SkipSynthetic && d.Synthetic {
				continue
			}
			best := time.Duration(0)
			results := 0
			for r := 0; r < repeats; r++ {
				start := time.Now()
				results = impl.Run(g)
				elapsed := time.Since(start)
				if best == 0 || elapsed < best {
					best = elapsed
				}
			}
			if row.Results == -1 {
				row.Results = results
			} else if results != row.Results {
				return rows, fmt.Errorf("bench: %s on %s: #results %d disagrees with %d",
					impl.Name, d.Name, results, row.Results)
			}
			row.Times[impl.Name] = best
			if cfg.Log != nil {
				fmt.Fprintf(cfg.Log, "  %s/%s: %d results in %v\n", d.Name, impl.Name, results, best)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable renders rows in the paper's layout.
func FormatTable(w io.Writer, q int, rows []Row) {
	fmt.Fprintf(w, "Table %d: Evaluation results for Query %d\n\n", q, q)
	fmt.Fprintf(w, "%-30s %9s %9s %10s %10s %10s %10s\n",
		"Ontology", "#triples", "#results", "GLL(ms)", "dGPU(ms)", "sCPU(ms)", "sGPU(ms)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-30s %9d %9d %10s %10s %10s %10s\n",
			r.Ontology, r.Triples, r.Results,
			ms(r.Times, "GLL"), ms(r.Times, "dGPU"), ms(r.Times, "sCPU"), ms(r.Times, "sGPU"))
	}
}

func ms(times map[string]time.Duration, name string) string {
	d, ok := times[name]
	if !ok {
		return "—"
	}
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000.0)
}
