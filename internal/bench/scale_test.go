package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunScaleShort runs the CI smoke tier end to end: every topology at
// the short size, sparse and dense rows that agree on |R_S|, and a JSON
// artifact that round-trips.
func TestRunScaleShort(t *testing.T) {
	rows, err := RunScale(ScaleConfig{Short: true, Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 4 topologies × 2 backends.
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	byTopo := map[string][]ScaleRow{}
	for _, r := range rows {
		if r.Scenario != "scale" {
			t.Errorf("row scenario %q, want scale", r.Scenario)
		}
		if r.Nodes != 2048 {
			t.Errorf("%s/%s at %d nodes, want the short tier's 2048", r.Topology, r.Backend, r.Nodes)
		}
		if r.Pairs <= 0 || r.Edges <= 0 || r.Iterations <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
		byTopo[r.Topology] = append(byTopo[r.Topology], r)
	}
	for topo, rs := range byTopo {
		if len(rs) != 2 {
			t.Fatalf("%s: %d backends, want sparse and dense", topo, len(rs))
		}
		if rs[0].Pairs != rs[1].Pairs {
			t.Errorf("%s: backends disagree on |R_S|: %d vs %d", topo, rs[0].Pairs, rs[1].Pairs)
		}
	}

	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Rows []ScaleRow `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Rows) != len(rows) || decoded.Rows[0] != rows[0] {
		t.Fatalf("artifact did not round-trip: %+v", decoded.Rows)
	}

	var tbl strings.Builder
	FormatScale(&tbl, rows)
	for _, want := range []string{"chain", "cycle", "grid", "scale-free", "sparse", "dense"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("table missing %q:\n%s", want, tbl.String())
		}
	}
}
