package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunLiveQuery(t *testing.T) {
	rows, err := RunLiveQuery(LiveQueryConfig{
		Datasets: []string{"skos"},
		Repeats:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.Scenario != "livequery" || r.Dataset != "skos" || r.Grammar != "query1" || r.Backend != "sparse" {
		t.Errorf("row identity: %+v", r)
	}
	if r.Updates == 0 || r.PushMS <= 0 || r.PollMS <= 0 {
		t.Errorf("empty measurements: %+v", r)
	}

	var buf bytes.Buffer
	FormatLiveQuery(&buf, rows)
	if !strings.Contains(buf.String(), "skos") {
		t.Errorf("table output:\n%s", buf.String())
	}
	var js bytes.Buffer
	if err := WriteBenchJSON(&js, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"scenario": "livequery"`) {
		t.Errorf("JSON output:\n%s", js.String())
	}
}

func TestRunLiveQueryRejectsUnknowns(t *testing.T) {
	if _, err := RunLiveQuery(LiveQueryConfig{Datasets: []string{"nope"}}); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := RunLiveQuery(LiveQueryConfig{Grammar: "nope"}); err == nil {
		t.Error("unknown grammar accepted")
	}
	if _, err := RunLiveQuery(LiveQueryConfig{Backend: "nope"}); err == nil {
		t.Error("unknown backend accepted")
	}
}
