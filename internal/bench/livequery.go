//lint:file-allow cfpqlint/ctxflow bench harness: standalone CLI tooling with no caller context; runs on its own root context by design
package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"cfpq"
	"cfpq/internal/dataset"
	"cfpq/internal/graph"
)

// LiveQueryConfig drives RunLiveQuery — the standing-query serving
// scenario behind POST /v1/subscribe: a client wants every newly derived
// pair of an evolving graph. The push path gets them from the incremental
// closure's per-update delta (Prepared.Subscribe); the baseline it
// replaces polls after every update and diffs full before/after results.
// Both sides pay the same index patch; the measured difference is
// delta-extraction-and-delivery vs materialise-relation-and-diff.
type LiveQueryConfig struct {
	// Datasets names the graphs to measure; nil means the five real
	// ontologies the other scenarios use (skos, foaf, funding, wine,
	// pizza).
	Datasets []string
	// Grammar names the query grammar: "query1", "query2" or "ancestors"
	// (see SingleSourceConfig). Empty means "query1".
	Grammar string
	// Backend names the matrix backend. Empty means sparse.
	Backend string
	// Holdback is the per-ten-thousand share of edges withheld from the
	// initial closure and replayed as live updates. Zero means 1000 (10%).
	Holdback int
	// BatchSize is the number of edges per update. Zero means 8.
	BatchSize int
	// Repeats is the number of timed runs per dataset; the minimum total
	// is reported. Zero means 3.
	Repeats int
}

// LiveQueryRow is one measured cell, the unit of BENCH_livequery.json.
type LiveQueryRow struct {
	Scenario string `json:"scenario"`
	Dataset  string `json:"dataset"`
	Grammar  string `json:"grammar"`
	Backend  string `json:"backend"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`
	// Updates is the number of edge batches replayed; NewPairs the total
	// pairs they newly derive (identical on both sides, verified).
	Updates  int `json:"updates"`
	NewPairs int `json:"new_pairs"`
	// PushMS is the total wall time of the subscription side: AddEdges
	// (incremental patch + delta extraction + hub publish) plus receiving
	// every pushed batch. PollMS is the poll-and-diff baseline for the
	// same updates: AddEdges plus materialising the full relation and
	// diffing it against the previous snapshot after every batch. Speedup
	// is PollMS / PushMS.
	PushMS  float64 `json:"push_ms"`
	PollMS  float64 `json:"poll_ms"`
	Speedup float64 `json:"speedup"`
	// PushUpdateMS / PollUpdateMS are per-update means.
	PushUpdateMS float64 `json:"push_update_ms"`
	PollUpdateMS float64 `json:"poll_update_ms"`
}

// RunLiveQuery measures, per dataset: prepare on the graph minus a held-back
// edge suffix, then replay the suffix in batches — once into a subscribed
// handle consuming pushed deltas, once into a polled handle diffing full
// relations — verifying both observe exactly the same newly derived pairs.
func RunLiveQuery(cfg LiveQueryConfig) ([]LiveQueryRow, error) {
	names := cfg.Datasets
	if len(names) == 0 {
		names = defaultSingleSourceDatasets
	}
	gramName := cfg.Grammar
	if gramName == "" {
		gramName = "query1"
	}
	gram, err := singleSourceGrammar(gramName)
	if err != nil {
		return nil, err
	}
	backendName := cfg.Backend
	if backendName == "" {
		backendName = "sparse"
	}
	be, err := cfpq.BackendByName(backendName)
	if err != nil {
		return nil, err
	}
	holdback := cfg.Holdback
	if holdback <= 0 {
		holdback = 1000
	}
	batchSize := cfg.BatchSize
	if batchSize <= 0 {
		batchSize = 8
	}
	repeats := cfg.Repeats
	if repeats <= 0 {
		repeats = 3
	}
	eng := cfpq.NewEngine(be)
	ctx := context.Background()
	var rows []LiveQueryRow
	for _, name := range names {
		d, ok := dataset.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown dataset %q", name)
		}
		full := d.Build()
		edges := full.Edges()
		hold := len(edges) * holdback / 10000
		if hold < batchSize {
			hold = batchSize
		}
		split := len(edges) - hold
		base := graph.New(full.Nodes()) // fixed node set: no index growth
		for _, e := range edges[:split] {
			base.AddEdge(e.From, e.Label, e.To)
		}
		var batches [][]cfpq.Edge
		for at := split; at < len(edges); at += batchSize {
			end := at + batchSize
			if end > len(edges) {
				end = len(edges)
			}
			batches = append(batches, edges[at:end])
		}

		var row LiveQueryRow
		bestPush, bestPoll := time.Duration(0), time.Duration(0)
		for r := 0; r < repeats; r++ {
			// Push side: one subscribed handle, batches consumed as pushed.
			pushP, err := eng.Prepare(ctx, base.Clone(), gram)
			if err != nil {
				return rows, err
			}
			sub, err := pushP.Subscribe(ctx, cfpq.Request{Nonterminal: "S"})
			if err != nil {
				return rows, err
			}
			pushPairs := 0
			startPush := time.Now()
			for _, batch := range batches {
				info, err := pushP.AddEdges(ctx, batch...)
				if err != nil {
					return rows, err
				}
				if info.Delta != nil && len(info.Delta.Pairs("S")) > 0 {
					b := <-sub.Updates()
					pushPairs += len(b.Pairs)
				}
			}
			pushTime := time.Since(startPush)
			sub.Close()

			// Poll side: same updates, new pairs found by re-materialising
			// the relation and diffing against the previous snapshot.
			pollP, err := eng.Prepare(ctx, base.Clone(), gram)
			if err != nil {
				return rows, err
			}
			pollPairs := 0
			startPoll := time.Now()
			prev := pairSet(pollP.Relation(ctx, "S"))
			for _, batch := range batches {
				if _, err := pollP.AddEdges(ctx, batch...); err != nil {
					return rows, err
				}
				cur := pollP.Relation(ctx, "S")
				for _, p := range cur {
					if !prev[p] {
						pollPairs++
						prev[p] = true
					}
				}
			}
			pollTime := time.Since(startPoll)

			if pushPairs != pollPairs {
				return rows, fmt.Errorf("bench: %s: push delivered %d new pairs, poll-and-diff found %d",
					name, pushPairs, pollPairs)
			}
			row.NewPairs = pushPairs
			if bestPush == 0 || pushTime < bestPush {
				bestPush = pushTime
			}
			if bestPoll == 0 || pollTime < bestPoll {
				bestPoll = pollTime
			}
		}
		row.Scenario = "livequery"
		row.Dataset = name
		row.Grammar = gramName
		row.Backend = backendName
		row.Nodes = full.Nodes()
		row.Edges = full.EdgeCount()
		row.Updates = len(batches)
		row.PushMS = msFloat(bestPush)
		row.PollMS = msFloat(bestPoll)
		row.Speedup = float64(bestPoll) / float64(bestPush)
		row.PushUpdateMS = msFloat(bestPush) / float64(len(batches))
		row.PollUpdateMS = msFloat(bestPoll) / float64(len(batches))
		rows = append(rows, row)
	}
	return rows, nil
}

func pairSet(pairs []cfpq.Pair) map[cfpq.Pair]bool {
	out := make(map[cfpq.Pair]bool, len(pairs))
	for _, p := range pairs {
		out[p] = true
	}
	return out
}

// FormatLiveQuery renders rows as a readable table.
func FormatLiveQuery(w io.Writer, rows []LiveQueryRow) {
	backend := "sparse"
	if len(rows) > 0 {
		backend = rows[0].Backend
	}
	fmt.Fprintf(w, "Live queries: delta push (subscription) vs poll-and-diff, %s backend\n\n", backend)
	fmt.Fprintf(w, "%-14s %-10s %8s %8s %9s %10s %10s %9s\n",
		"Ontology", "grammar", "updates", "pairs", "push(ms)", "poll(ms)", "push/upd", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-10s %8d %8d %9.2f %10.2f %10.3f %8.1fx\n",
			r.Dataset, r.Grammar, r.Updates, r.NewPairs, r.PushMS, r.PollMS, r.PushUpdateMS, r.Speedup)
	}
}
