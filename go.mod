module cfpq

go 1.24
