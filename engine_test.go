package cfpq

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// chainGraph builds the word graph a^k b^k: nodes 0..2k, a-edges then
// b-edges. With S -> a S b | a b the closure needs ~k passes under naive
// iteration, giving cancellation something to interrupt.
func chainGraph(k int) *Graph {
	g := NewGraph(2*k + 1)
	for i := 0; i < k; i++ {
		g.AddEdge(i, "a", i+1)
	}
	for i := k; i < 2*k; i++ {
		g.AddEdge(i, "b", i+1)
	}
	return g
}

func TestEngineBackendsAgree(t *testing.T) {
	ctx := context.Background()
	g := chainGraph(4)
	gram := MustParseGrammar("S -> a S b | a b")
	var ref []Pair
	for i, be := range Backends() {
		pairs, err := NewEngine(be).Query(ctx, g, gram, "S")
		if err != nil {
			t.Fatalf("backend %s: %v", be.Name(), err)
		}
		if i == 0 {
			ref = pairs
			continue
		}
		if !reflect.DeepEqual(pairs, ref) {
			t.Errorf("backend %s disagrees: %v vs %v", be.Name(), pairs, ref)
		}
	}
}

func TestBackendByName(t *testing.T) {
	for _, want := range []string{"dense", "dense-parallel", "sparse", "sparse-parallel"} {
		be, err := BackendByName(want)
		if err != nil || be.Name() != want {
			t.Errorf("BackendByName(%q) = %v, %v", want, be.Name(), err)
		}
	}
	if _, err := BackendByName("gpu"); err == nil {
		t.Error("unknown backend should error")
	}
	var zero Backend
	if zero.Name() != "sparse" {
		t.Errorf("zero Backend = %q, want sparse", zero.Name())
	}
}

func TestEvaluateCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := chainGraph(4)
	cnf, _ := ToCNF(MustParseGrammar("S -> a S b | a b"))
	ix, _, err := NewEngine(Sparse).Evaluate(ctx, g, cnf)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ix != nil {
		t.Error("cancelled Evaluate must not return an index")
	}
}

// TestEvaluateCancelMidClosure cancels from the trace callback after a few
// passes: the closure must abort at the next pass boundary and return
// ctx.Err(), well before the fixpoint the chain needs.
func TestEvaluateCancelMidClosure(t *testing.T) {
	const k = 40 // naive iteration needs ~k passes on a^k b^k
	const stopAt = 3
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := chainGraph(k)
	cnf, _ := ToCNF(MustParseGrammar("S -> a S b | a b"))
	ix, stats, err := NewEngine(Sparse).Evaluate(ctx, g, cnf,
		WithNaiveIteration(),
		WithTrace(func(iteration int, _ *Index) {
			if iteration == stopAt {
				cancel()
			}
		}),
	)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ix != nil {
		t.Error("cancelled Evaluate must not return an index")
	}
	if stats.Iterations < stopAt || stats.Iterations > stopAt+1 {
		t.Errorf("closure ran %d passes after cancelling at %d — not prompt", stats.Iterations, stopAt)
	}
	// Sanity: uncancelled, the same closure needs far more passes.
	_, full, err := NewEngine(Sparse).Evaluate(context.Background(), g, cnf, WithNaiveIteration())
	if err != nil {
		t.Fatal(err)
	}
	if full.Iterations <= stopAt+1 {
		t.Fatalf("test is vacuous: full closure takes only %d passes", full.Iterations)
	}
}

func TestCancelledQuerySurfaces(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := chainGraph(3)
	gram := MustParseGrammar("S -> a S b | a b")
	eng := NewEngine(Sparse)
	if _, err := eng.Query(ctx, g, gram, "S"); !errors.Is(err, context.Canceled) {
		t.Errorf("Query err = %v", err)
	}
	cnf, _ := ToCNF(gram)
	if _, err := eng.SinglePath(ctx, g, cnf); !errors.Is(err, context.Canceled) {
		t.Errorf("SinglePath err = %v", err)
	}
	if _, err := eng.ShortestPath(ctx, g, cnf); !errors.Is(err, context.Canceled) {
		t.Errorf("ShortestPath err = %v", err)
	}
	if _, err := eng.RPQ(ctx, g, "a+ b"); !errors.Is(err, context.Canceled) {
		t.Errorf("RPQ err = %v", err)
	}
	cg, _ := ParseConjunctive("S -> A A & A A\nA -> a | a A")
	if _, err := eng.QueryConjunctive(ctx, g, cg, "S"); !errors.Is(err, context.Canceled) {
		t.Errorf("QueryConjunctive err = %v", err)
	}
	ix, _, _ := eng.Evaluate(context.Background(), g, cnf)
	if _, err := eng.Update(ctx, ix, Edge{From: 0, Label: "a", To: 2}); !errors.Is(err, context.Canceled) {
		t.Errorf("Update err = %v", err)
	}
}

// TestUpdatePreservesParallelBackend is the regression test for the old
// backendOf type switch, which silently downgraded parallel indexes to the
// serial kernel on Update: the index records its backend at build time and
// updates must keep it.
func TestUpdatePreservesParallelBackend(t *testing.T) {
	gram := MustParseGrammar("S -> a b")
	cnf, _ := ToCNF(gram)
	for _, be := range []Backend{SparseParallel(2), DenseParallel(2), Sparse, Dense} {
		g := NewGraph(3)
		g.AddEdge(0, "a", 1)
		ix, _, err := NewEngine(be).Evaluate(context.Background(), g, cnf)
		if err != nil {
			t.Fatal(err)
		}
		if got := ix.Backend().Name(); got != be.Name() {
			t.Fatalf("index backend = %q, want %q", got, be.Name())
		}
		// The deprecated free Update must also keep the kernel: it takes
		// the backend from the index, not from its own default engine.
		Update(context.Background(), ix, Edge{From: 1, Label: "b", To: 2})
		if got := ix.Backend().Name(); got != be.Name() {
			t.Errorf("after Update: index backend = %q, want %q", got, be.Name())
		}
		if !ix.Has("S", 0, 2) {
			t.Errorf("backend %s: (0,2) missing after Update", be.Name())
		}
	}
}

// TestUpdateGrowsNodeSet: edges beyond the index's node range used to be a
// documented caller error; they now transparently resize the matrices, and
// the patched index agrees with a cold rebuild of the enlarged graph.
func TestUpdateGrowsNodeSet(t *testing.T) {
	gram := MustParseGrammar("S -> a S b | a b")
	cnf, _ := ToCNF(gram)
	for _, be := range []Backend{Sparse, Dense} {
		g := NewGraph(0)
		g.AddEdge(0, "a", 1)
		g.AddEdge(1, "a", 2)
		g.AddEdge(2, "b", 3)
		eng := NewEngine(be)
		ix, _, err := eng.Evaluate(context.Background(), g, cnf)
		if err != nil {
			t.Fatal(err)
		}
		grow := Edge{From: 3, Label: "b", To: 7} // node 7 is new
		if _, err := eng.Update(context.Background(), ix, grow); err != nil {
			t.Fatal(err)
		}
		if ix.Nodes() != 8 {
			t.Fatalf("backend %s: index has %d nodes, want 8", be.Name(), ix.Nodes())
		}
		g.AddEdge(grow.From, grow.Label, grow.To)
		cold, _, err := eng.Evaluate(context.Background(), g, cnf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ix.Relation("S"), cold.Relation("S")) {
			t.Errorf("backend %s: grown update %v disagrees with cold rebuild %v",
				be.Name(), ix.Relation("S"), cold.Relation("S"))
		}
	}
}

func TestEngineAllPathsUnknownNonterminal(t *testing.T) {
	g := NewGraph(0)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "b", 2)
	cnf, _ := ToCNF(MustParseGrammar("S -> a b"))
	eng := NewEngine(Sparse)
	ix, _, _ := eng.Evaluate(context.Background(), g, cnf)
	if _, err := eng.AllPaths(context.Background(), g, ix, "Nope", 0, 2, AllPathsOptions{}); err == nil {
		t.Error("unknown non-terminal should error")
	}
	paths, err := eng.AllPaths(context.Background(), g, ix, "S", 0, 2, AllPathsOptions{})
	if err != nil || len(paths) != 1 {
		t.Errorf("paths = %v, err = %v", paths, err)
	}
}
