package cfpq_test

// Tests of the per-closure memory budget (WithMemoryBudget → typed
// *MemoryBudgetError on every context-taking evaluation path) and the
// query-surface edge cases pinned alongside it: structured bounds errors,
// empty-restriction semantics, and honest limit truncation.

import (
	"context"
	"errors"
	"strings"
	"testing"

	"cfpq"
)

// TestMemoryBudgetRejects asserts a budget far below the index footprint
// fails fast with the typed error on each evaluation path, per-call and
// engine-wide, and that a generous budget changes nothing.
func TestMemoryBudgetRejects(t *testing.T) {
	ctx := context.Background()
	g, gram := figure5()
	const tiny = 16 // bytes: below even one empty 3-node matrix

	for _, be := range cfpq.Backends() {
		t.Run(be.Name(), func(t *testing.T) {
			eng := cfpq.NewEngine(be)

			// Per-call option on the eager evaluation path.
			cnf, err := cfpq.ToCNF(gram)
			if err != nil {
				t.Fatal(err)
			}
			_, _, err = eng.Evaluate(ctx, g, cnf, cfpq.WithMemoryBudget(tiny))
			var mbe *cfpq.MemoryBudgetError
			if !errors.As(err, &mbe) {
				t.Fatalf("Evaluate under %d bytes: %v, want *MemoryBudgetError", tiny, err)
			}
			if mbe.BudgetBytes != tiny || mbe.EstimatedBytes <= tiny {
				t.Fatalf("error payload %+v, want budget %d and a larger estimate", mbe, tiny)
			}

			// The declarative path carries per-call options too, for both
			// the full-closure and source-frontier strategies.
			for _, req := range []cfpq.Request{
				{Graph: g, Grammar: gram, Nonterminal: "S"},
				{Graph: g, Grammar: gram, Nonterminal: "S", Sources: []int{0}},
			} {
				req.Options = []cfpq.Option{cfpq.WithMemoryBudget(tiny)}
				if _, err := eng.Do(ctx, req); !errors.As(err, &mbe) {
					t.Fatalf("Do (sources %v) under budget: %v, want *MemoryBudgetError", req.Sources, err)
				}
			}

			// An engine-wide budget governs Prepare (and would govern every
			// later patch through the same engine).
			tight := cfpq.NewEngine(be, cfpq.WithMemoryBudget(tiny))
			if _, err := tight.Prepare(ctx, g.Clone(), gram); !errors.As(err, &mbe) {
				t.Fatalf("Prepare under engine budget: %v, want *MemoryBudgetError", err)
			}

			// A budget the closure fits under is invisible.
			roomy := cfpq.NewEngine(be, cfpq.WithMemoryBudget(64<<20))
			p, err := roomy.Prepare(ctx, g.Clone(), gram)
			if err != nil {
				t.Fatalf("Prepare under 64MiB budget: %v", err)
			}
			if p.Count(context.Background(), "S") != 3 {
				t.Fatalf("budgeted Prepare count = %d, want 3", p.Count(context.Background(), "S"))
			}
		})
	}
}

// TestDoBoundsErrorsStructured pins satellite 3: out-of-range restriction
// nodes on Engine.Do come back as *RequestError naming the field and the
// valid range — the same shape Validate produces — on both Do surfaces.
func TestDoBoundsErrorsStructured(t *testing.T) {
	ctx := context.Background()
	g, gram := figure5()
	eng := cfpq.NewEngine(cfpq.Sparse)
	p, err := eng.Prepare(ctx, g.Clone(), gram)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		req      cfpq.Request
		field    string
		reason   string
		prepared bool // Prepared.Do rejects it too
	}{
		// Negatives are invalid in any graph: Validate rejects them on
		// both surfaces.
		{"sources negative", cfpq.Request{Nonterminal: "S", Sources: []int{-1}}, "sources", "negative node id", true},
		{"targets negative", cfpq.Request{Nonterminal: "S", Targets: []int{-7}}, "targets", "negative node id", true},
		// Too-large ids are checked against the bound graph's size on
		// Engine.Do; Prepared.Do deliberately tolerates them (its graph
		// can grow under AddEdges, and Has/Relation already answer false
		// for unknown nodes).
		{"sources high", cfpq.Request{Nonterminal: "S", Sources: []int{99}}, "sources", "out of range [0,", false},
		{"targets high", cfpq.Request{Nonterminal: "S", Targets: []int{0, 99}}, "targets", "out of range [0,", false},
	}
	for _, tc := range cases {
		engReq := tc.req
		engReq.Graph, engReq.Grammar = g, gram
		surfaces := map[string]error{
			"Engine.Do": func() error { _, err := eng.Do(ctx, engReq); return err }(),
		}
		if tc.prepared {
			surfaces["Prepared.Do"] = func() error { _, err := p.Do(ctx, tc.req); return err }()
		}
		for surface, doErr := range surfaces {
			var reqErr *cfpq.RequestError
			if !errors.As(doErr, &reqErr) {
				t.Errorf("%s %s: %v, want *RequestError", surface, tc.name, doErr)
				continue
			}
			if reqErr.Field != tc.field {
				t.Errorf("%s %s: Field = %q, want %q", surface, tc.name, reqErr.Field, tc.field)
			}
			if !strings.Contains(reqErr.Reason, tc.reason) {
				t.Errorf("%s %s: Reason = %q, want %q", surface, tc.name, reqErr.Reason, tc.reason)
			}
		}
		if !tc.prepared {
			// The tolerant surface masks the unknown id and answers for
			// the ids that do exist — same as dropping 99 by hand.
			res, err := p.Do(ctx, tc.req)
			if err != nil {
				t.Fatalf("Prepared.Do %s: %v", tc.name, err)
			}
			valid := tc.req
			if valid.Sources != nil {
				valid.Sources = dropOutOfRange(valid.Sources, g.Nodes())
			}
			if valid.Targets != nil {
				valid.Targets = dropOutOfRange(valid.Targets, g.Nodes())
			}
			want, err := p.Do(ctx, valid)
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != want.Count {
				t.Errorf("Prepared.Do %s: count %d, want %d (unknown ids masked)", tc.name, res.Count, want.Count)
			}
		}
	}
}

// dropOutOfRange filters a restriction to ids the graph actually has.
func dropOutOfRange(ids []int, n int) []int {
	out := []int{}
	for _, id := range ids {
		if id >= 0 && id < n {
			out = append(out, id)
		}
	}
	return out
}

// TestDoEmptyRestrictionStrategy pins satellite 1 on the library surface:
// a non-nil empty restriction is a frontier with zero seeds — it runs the
// frontier plan (observable in Explain) and selects nothing — while nil
// stays unrestricted. Prepared.Do answers the same way from its cache.
func TestDoEmptyRestrictionStrategy(t *testing.T) {
	ctx := context.Background()
	g, gram := figure5()
	eng := cfpq.NewEngine(cfpq.Dense)

	res, err := eng.Do(ctx, cfpq.Request{Graph: g, Grammar: gram, Nonterminal: "S", Sources: []int{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain.Strategy != cfpq.StrategySourceFrontier || res.Explain.Frontier != 0 {
		t.Fatalf("empty sources: strategy %s frontier %d, want %s with an empty frontier",
			res.Explain.Strategy, res.Explain.Frontier, cfpq.StrategySourceFrontier)
	}
	if res.Count != 0 || len(res.AllPairs()) != 0 {
		t.Fatalf("empty sources selected %d pairs, want 0", res.Count)
	}

	res, err = eng.Do(ctx, cfpq.Request{Graph: g, Grammar: gram, Nonterminal: "S", Targets: []int{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain.Strategy != cfpq.StrategyTargetFrontier || res.Count != 0 {
		t.Fatalf("empty targets: strategy %s count %d, want %s with 0 pairs",
			res.Explain.Strategy, res.Count, cfpq.StrategyTargetFrontier)
	}

	full, err := eng.Do(ctx, cfpq.Request{Graph: g, Grammar: gram, Nonterminal: "S"})
	if err != nil {
		t.Fatal(err)
	}
	if full.Count == 0 {
		t.Fatal("nil restriction must stay unrestricted (figure 5 has S-pairs)")
	}

	p, err := eng.Prepare(ctx, g.Clone(), gram)
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range []cfpq.Request{
		{Nonterminal: "S", Sources: []int{}},
		{Nonterminal: "S", Targets: []int{}},
		{Nonterminal: "S", Sources: []int{}, Targets: []int{0, 1, 2}},
	} {
		res, err := p.Do(ctx, req)
		if err != nil {
			t.Fatalf("Prepared.Do %+v: %v", req, err)
		}
		if res.Count != 0 || len(res.AllPairs()) != 0 {
			t.Fatalf("Prepared.Do %+v: %d pairs, want 0", req, res.Count)
		}
	}
}

// TestResultTruncated pins satellite 2: a limit that clips the pair list
// sets Result.Truncated on both Do surfaces; a limit the relation fits
// under does not.
func TestResultTruncated(t *testing.T) {
	ctx := context.Background()
	g, gram := figure5()
	eng := cfpq.NewEngine(cfpq.Sparse)

	full, err := eng.Do(ctx, cfpq.Request{Graph: g, Grammar: gram, Nonterminal: "S"})
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated || full.Count < 2 {
		t.Fatalf("unlimited result: count %d truncated %v", full.Count, full.Truncated)
	}

	p, err := eng.Prepare(ctx, g.Clone(), gram)
	if err != nil {
		t.Fatal(err)
	}
	do := map[string]func(cfpq.Request) (*cfpq.Result, error){
		"Engine.Do": func(req cfpq.Request) (*cfpq.Result, error) {
			req.Graph, req.Grammar = g, gram
			return eng.Do(ctx, req)
		},
		"Prepared.Do": func(req cfpq.Request) (*cfpq.Result, error) { return p.Do(ctx, req) },
	}
	for surface, run := range do {
		res, err := run(cfpq.Request{Nonterminal: "S", Limit: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != 1 || !res.Truncated {
			t.Errorf("%s limit 1 of %d: count %d truncated %v, want a truncated single pair",
				surface, full.Count, res.Count, res.Truncated)
		}
		res, err = run(cfpq.Request{Nonterminal: "S", Limit: full.Count})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != full.Count || res.Truncated {
			t.Errorf("%s limit == |R|: count %d truncated %v, want the exact relation unflagged",
				surface, res.Count, res.Truncated)
		}
	}
}

// TestResultTruncatedPaths is the paths-output mirror of
// TestResultTruncated: a Limit that clips the path enumeration sets
// Result.Truncated (the enumerator looks one path past the limit), on both
// the planner's paths strategy and the cached-index read; a limit the
// enumeration fits under does not.
func TestResultTruncatedPaths(t *testing.T) {
	ctx := context.Background()
	// A diamond: exactly two witness paths 0→3 (via 1 and via 2).
	g := cfpq.NewGraph(0)
	g.AddEdge(0, "x", 1)
	g.AddEdge(1, "x", 3)
	g.AddEdge(0, "x", 2)
	g.AddEdge(2, "x", 3)
	gram := cfpq.MustParseGrammar("S -> x | x S")
	eng := cfpq.NewEngine(cfpq.Sparse)
	p, err := eng.Prepare(ctx, g.Clone(), gram)
	if err != nil {
		t.Fatal(err)
	}
	do := map[string]func(cfpq.Request) (*cfpq.Result, error){
		"Engine.Do": func(req cfpq.Request) (*cfpq.Result, error) {
			req.Graph, req.Grammar = g, gram
			return eng.Do(ctx, req)
		},
		"Prepared.Do": func(req cfpq.Request) (*cfpq.Result, error) { return p.Do(ctx, req) },
	}
	base := cfpq.Request{
		Nonterminal: "S", Sources: []int{0}, Targets: []int{3}, Output: cfpq.OutputPaths,
	}
	for surface, run := range do {
		req := base
		req.Limit = 1
		res, err := run(req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != 1 || !res.Truncated || len(res.AllPaths()) != 1 {
			t.Errorf("%s limit 1 of 2 paths: count %d truncated %v, want a truncated single path",
				surface, res.Count, res.Truncated)
		}
		req.Limit = 2
		res, err = run(req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != 2 || res.Truncated {
			t.Errorf("%s limit == #paths: count %d truncated %v, want both paths unflagged",
				surface, res.Count, res.Truncated)
		}
	}
}
