package cfpq_test

// Tests of the declarative Request → planner → Result surface: the
// target-restricted property (Do with Targets equals the target-filtered
// full Query — the mirror of queryfrom_test.go), the pair-restriction
// property, Explain strategy pins for every plan, output shaping, and
// request validation.

import (
	"context"
	"errors"
	"math/rand"
	"slices"
	"testing"

	"cfpq"
	"cfpq/internal/grammar"
	"cfpq/internal/graph"
)

// TestQueryToEqualsFilteredQueryProperty is the target-side mirror of
// TestQueryFromEqualsFilteredQueryProperty: on random grammars and random
// graphs, for every backend, a target-restricted Do must equal the full
// Query filtered to pairs entering the targets — with and without
// empty-path inclusion.
func TestQueryToEqualsFilteredQueryProperty(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(43))
	cfg := grammar.DefaultRandomConfig()
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for _, be := range cfpq.Backends() {
		eng := cfpq.NewEngine(be)
		for trial := 0; trial < trials; trial++ {
			gram := grammar.RandomGrammar(rng, cfg)
			nts := gram.Nonterminals()
			start := nts[rng.Intn(len(nts))]
			labels := gram.Terminals()
			if len(labels) == 0 {
				continue // ε-only grammar: no edges to build
			}
			n := 4 + rng.Intn(16)
			g := graph.Random(rng, n, 2+rng.Intn(3*n), labels)

			k := 1 + rng.Intn(n)
			targets := rng.Perm(n)[:k]
			inTgt := make(map[int]bool, k)
			for _, v := range targets {
				inTgt[v] = true
			}

			for _, empty := range []bool{false, true} {
				var opts []cfpq.Option
				if empty {
					opts = append(opts, cfpq.WithEmptyPaths())
				}
				full, errFull := eng.Query(ctx, g, gram, start, opts...)
				got, errTo := eng.QueryTo(ctx, g, gram, start, targets, opts...)
				if (errFull == nil) != (errTo == nil) {
					t.Fatalf("%s trial %d empty=%v: error mismatch: Query=%v QueryTo=%v",
						be, trial, empty, errFull, errTo)
				}
				if errFull != nil {
					continue // e.g. a grammar the CNF conversion rejects
				}
				var want []cfpq.Pair
				for _, p := range full {
					if inTgt[p.J] {
						want = append(want, p)
					}
				}
				if !slices.Equal(got, want) {
					t.Fatalf("%s trial %d empty=%v start=%s targets=%v:\n got %v\nwant %v\ngrammar:\n%s",
						be, trial, empty, start, targets, got, want, gram)
				}
			}
		}
	}
}

// TestPairRestrictedDoEqualsFilteredQueryProperty checks the both-sides
// restriction (the planner picks the smaller frontier seed and filters the
// other side) against the doubly filtered full Query.
func TestPairRestrictedDoEqualsFilteredQueryProperty(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(44))
	cfg := grammar.DefaultRandomConfig()
	trials := 10
	if testing.Short() {
		trials = 3
	}
	eng := cfpq.NewEngine(cfpq.Sparse)
	for trial := 0; trial < trials; trial++ {
		gram := grammar.RandomGrammar(rng, cfg)
		nts := gram.Nonterminals()
		start := nts[rng.Intn(len(nts))]
		labels := gram.Terminals()
		if len(labels) == 0 {
			continue
		}
		n := 4 + rng.Intn(16)
		g := graph.Random(rng, n, 2+rng.Intn(3*n), labels)
		sources := rng.Perm(n)[:1+rng.Intn(n)]
		targets := rng.Perm(n)[:1+rng.Intn(n)]
		inSrc, inTgt := map[int]bool{}, map[int]bool{}
		for _, v := range sources {
			inSrc[v] = true
		}
		for _, v := range targets {
			inTgt[v] = true
		}

		full, errFull := eng.Query(ctx, g, gram, start)
		res, errDo := eng.Do(ctx, cfpq.Request{
			Graph: g, Grammar: gram, Nonterminal: start,
			Sources: sources, Targets: targets,
		})
		if (errFull == nil) != (errDo == nil) {
			t.Fatalf("trial %d: error mismatch: Query=%v Do=%v", trial, errFull, errDo)
		}
		if errFull != nil {
			continue
		}
		var want []cfpq.Pair
		for _, p := range full {
			if inSrc[p.I] && inTgt[p.J] {
				want = append(want, p)
			}
		}
		if got := res.AllPairs(); !slices.Equal(got, want) {
			t.Fatalf("trial %d start=%s sources=%v targets=%v:\n got %v\nwant %v\ngrammar:\n%s",
				trial, start, sources, targets, got, want, gram)
		}
		wantStrategy := cfpq.StrategySourceFrontier
		if len(targets) < len(sources) {
			wantStrategy = cfpq.StrategyTargetFrontier
		}
		if res.Explain.Strategy != wantStrategy {
			t.Fatalf("trial %d: planned %q for %d sources / %d targets, want %q",
				trial, res.Explain.Strategy, len(sources), len(targets), wantStrategy)
		}
	}
}

// TestDoExplainStrategies pins the strategy Explain names for every plan
// on the paper's worked example, across backends.
func TestDoExplainStrategies(t *testing.T) {
	ctx := context.Background()
	wantS := []cfpq.Pair{{I: 0, J: 0}, {I: 0, J: 2}, {I: 1, J: 2}}
	forEachBackend(t, func(t *testing.T, eng *cfpq.Engine) {
		g, gram := figure5()

		// Unrestricted: full closure.
		res, err := eng.Do(ctx, cfpq.Request{Graph: g, Grammar: gram, Nonterminal: "S"})
		if err != nil {
			t.Fatal(err)
		}
		if res.Explain.Strategy != cfpq.StrategyFull {
			t.Errorf("unrestricted: strategy %q, want full", res.Explain.Strategy)
		}
		if got := res.AllPairs(); !slices.Equal(got, wantS) {
			t.Errorf("unrestricted pairs = %v, want %v", got, wantS)
		}

		// Source restriction: source frontier.
		res, err = eng.Do(ctx, cfpq.Request{Graph: g, Grammar: gram, Nonterminal: "S", Sources: []int{1}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Explain.Strategy != cfpq.StrategySourceFrontier {
			t.Errorf("sources: strategy %q, want source-frontier", res.Explain.Strategy)
		}
		if want := []cfpq.Pair{{I: 1, J: 2}}; !slices.Equal(res.AllPairs(), want) {
			t.Errorf("sources pairs = %v, want %v", res.AllPairs(), want)
		}

		// Target restriction: target frontier over the reversed instance.
		res, err = eng.Do(ctx, cfpq.Request{Graph: g, Grammar: gram, Nonterminal: "S", Targets: []int{2}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Explain.Strategy != cfpq.StrategyTargetFrontier {
			t.Errorf("targets: strategy %q, want target-frontier", res.Explain.Strategy)
		}
		if want := []cfpq.Pair{{I: 0, J: 2}, {I: 1, J: 2}}; !slices.Equal(res.AllPairs(), want) {
			t.Errorf("targets pairs = %v, want %v", res.AllPairs(), want)
		}

		// Pair restriction with exists output.
		res, err = eng.Do(ctx, cfpq.Request{
			Graph: g, Grammar: gram, Nonterminal: "S",
			Sources: []int{0}, Targets: []int{2}, Output: cfpq.OutputExists,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exists {
			t.Error("exists(0,2) = false, want true")
		}

		// Cached read from a Prepared handle.
		prep, err := eng.Prepare(ctx, g.Clone(), gram)
		if err != nil {
			t.Fatal(err)
		}
		res, err = prep.Do(ctx, cfpq.Request{Nonterminal: "S", Targets: []int{2}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Explain.Strategy != cfpq.StrategyCachedRead {
			t.Errorf("prepared: strategy %q, want cached-read", res.Explain.Strategy)
		}
		if want := []cfpq.Pair{{I: 0, J: 2}, {I: 1, J: 2}}; !slices.Equal(res.AllPairs(), want) {
			t.Errorf("prepared target-restricted pairs = %v, want %v", res.AllPairs(), want)
		}
	})
}

// TestDoOutputShapes covers the non-pairs outputs end to end: count,
// exists, paths (with limits), and the pair limit.
func TestDoOutputShapes(t *testing.T) {
	ctx := context.Background()
	eng := cfpq.NewEngine(cfpq.Sparse)
	g, gram := figure5()

	count, err := eng.Do(ctx, cfpq.Request{Graph: g, Grammar: gram, Nonterminal: "S", Output: cfpq.OutputCount})
	if err != nil {
		t.Fatal(err)
	}
	if count.Count != 3 {
		t.Errorf("count = %d, want 3", count.Count)
	}

	limited, err := eng.Do(ctx, cfpq.Request{Graph: g, Grammar: gram, Nonterminal: "S", Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if limited.Count != 2 || len(limited.AllPairs()) != 2 {
		t.Errorf("limit 2: count %d, %d pairs", limited.Count, len(limited.AllPairs()))
	}

	absent, err := eng.Do(ctx, cfpq.Request{
		Graph: g, Grammar: gram, Nonterminal: "S",
		Sources: []int{2}, Targets: []int{1}, Output: cfpq.OutputExists,
	})
	if err != nil {
		t.Fatal(err)
	}
	if absent.Exists {
		t.Error("exists(2,1) = true, want false")
	}

	paths, err := eng.Do(ctx, cfpq.Request{
		Graph: g, Grammar: gram, Nonterminal: "S",
		Sources: []int{0}, Targets: []int{2}, Output: cfpq.OutputPaths, Limit: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if paths.Explain.Strategy != cfpq.StrategyFull {
		t.Errorf("paths: strategy %q, want full", paths.Explain.Strategy)
	}
	got := paths.AllPaths()
	if len(got) != 1 {
		t.Fatalf("paths limit 1: got %d paths", len(got))
	}
	if p := got[0]; len(p) == 0 || p[0].From != 0 || p[len(p)-1].To != 2 {
		t.Errorf("returned path %v does not join 0 and 2", p)
	}

	// The same outputs from the prepared (cached-read) side.
	prep, err := eng.Prepare(ctx, g.Clone(), gram)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := prep.Do(ctx, cfpq.Request{
		Nonterminal: "S", Sources: []int{0}, Targets: []int{2}, Output: cfpq.OutputPaths, Limit: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pp.AllPaths()) != 1 {
		t.Fatalf("prepared paths limit 1: got %d paths", len(pp.AllPaths()))
	}
	pl, err := prep.Do(ctx, cfpq.Request{Nonterminal: "S", Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Count != 2 || len(pl.AllPairs()) != 2 {
		t.Errorf("prepared limit 2: count %d, %d pairs", pl.Count, len(pl.AllPairs()))
	}
}

// TestDoRPQAndConjunctive checks the other two languages flow through the
// planner with restrictions applied.
func TestDoRPQAndConjunctive(t *testing.T) {
	ctx := context.Background()
	eng := cfpq.NewEngine(cfpq.Sparse)
	g := cfpq.NewGraph(4)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(2, "a", 3)

	full, err := eng.RPQ(ctx, g, "a+")
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Do(ctx, cfpq.Request{Graph: g, Expr: "a+", Targets: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain.Strategy != cfpq.StrategyTargetFrontier {
		t.Errorf("restricted RPQ: strategy %q, want target-frontier", res.Explain.Strategy)
	}
	var want []cfpq.Pair
	for _, p := range full {
		if p.J == 3 {
			want = append(want, p)
		}
	}
	if got := res.AllPairs(); !slices.Equal(got, want) {
		t.Errorf("restricted RPQ = %v, want %v", got, want)
	}

	cg, err := cfpq.ParseConjunctive("S -> a S | a")
	if err != nil {
		t.Fatal(err)
	}
	cres, err := eng.Do(ctx, cfpq.Request{Graph: g, Conjunctive: cg, Nonterminal: "S", Sources: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if cres.Explain.Strategy != cfpq.StrategyFull {
		t.Errorf("conjunctive: strategy %q, want full", cres.Explain.Strategy)
	}
	cwant := []cfpq.Pair{{I: 0, J: 1}, {I: 0, J: 2}, {I: 0, J: 3}}
	if got := cres.AllPairs(); !slices.Equal(got, cwant) {
		t.Errorf("restricted conjunctive = %v, want %v", got, cwant)
	}
}

// TestRequestValidation pins the structured errors of malformed requests
// on both surfaces.
func TestRequestValidation(t *testing.T) {
	ctx := context.Background()
	eng := cfpq.NewEngine(cfpq.Sparse)
	g, gram := figure5()

	bad := []cfpq.Request{
		{Graph: g, Grammar: gram},                                             // no language
		{Graph: g, Grammar: gram, Nonterminal: "S", Expr: "a"},                // two languages
		{Graph: g, Grammar: gram, Nonterminal: "S", Output: "nope"},           // unknown output
		{Graph: g, Grammar: gram, Nonterminal: "S", Limit: -1},                // negative limit
		{Graph: g, Grammar: gram, Nonterminal: "S", Sources: []int{-2}},       // negative node
		{Graph: g, Grammar: gram, Nonterminal: "S", Output: cfpq.OutputPaths}, // paths without pair
		{Graph: g, Grammar: gram, Nonterminal: "S", Sources: []int{99}},       // out of range (Engine)
		{Grammar: gram, Nonterminal: "S"},                                     // no graph
		{Graph: g, Nonterminal: "S"},                                          // no grammar
	}
	for i, req := range bad {
		res, err := eng.Do(ctx, req)
		if err == nil {
			t.Errorf("bad request %d: no error (result %+v)", i, res)
			continue
		}
		var reqErr *cfpq.RequestError
		if !errors.As(err, &reqErr) {
			t.Errorf("bad request %d: unstructured error %v", i, err)
		}
	}

	prep, err := eng.Prepare(ctx, g.Clone(), gram)
	if err != nil {
		t.Fatal(err)
	}
	badPrepared := []cfpq.Request{
		{Graph: cfpq.NewGraph(1), Nonterminal: "S"},                       // own graph
		{Grammar: gram, Nonterminal: "S"},                                 // own grammar
		{Expr: "a"},                                                       // RPQ on a handle
		{Nonterminal: "S", EmptyPaths: true},                              // ε-decoration on a cached index
		{Nonterminal: "S", Options: []cfpq.Option{cfpq.WithEmptyPaths()}}, // per-call options
	}
	for i, req := range badPrepared {
		if _, err := prep.Do(ctx, req); err == nil {
			t.Errorf("bad prepared request %d: no error", i)
		} else {
			var reqErr *cfpq.RequestError
			if !errors.As(err, &reqErr) {
				t.Errorf("bad prepared request %d: unstructured error %v", i, err)
			}
		}
	}

	// An empty (non-nil) restriction is a real restriction: nothing.
	res, err := eng.Do(ctx, cfpq.Request{Graph: g, Grammar: gram, Nonterminal: "S", Sources: []int{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 || len(res.AllPairs()) != 0 {
		t.Errorf("empty restriction: %d pairs, want 0", res.Count)
	}
}

// TestRequestConflictingBindings pins that a stray Grammar binding
// alongside another language is rejected rather than silently ignored.
func TestRequestConflictingBindings(t *testing.T) {
	g, gram := figure5()
	cg, err := cfpq.ParseConjunctive("S -> a S | a")
	if err != nil {
		t.Fatal(err)
	}
	eng := cfpq.NewEngine(cfpq.Sparse)
	for i, req := range []cfpq.Request{
		{Graph: g, Grammar: gram, Expr: "a+"},
		{Graph: g, Grammar: gram, Conjunctive: cg, Nonterminal: "S"},
	} {
		var reqErr *cfpq.RequestError
		if _, err := eng.Do(context.Background(), req); err == nil || !errors.As(err, &reqErr) {
			t.Errorf("conflicting bindings %d: got %v, want a *RequestError", i, err)
		}
	}
}
