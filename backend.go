package cfpq

import (
	"fmt"
	"strings"

	"cfpq/internal/matrix"
)

// Backend selects the matrix representation and multiplication kernel an
// Engine evaluates with — the paper's four implementations. It is a small
// value type: pass it around, compare it by Name, store it in configs. The
// zero value is the serial sparse backend (the paper's sCPU and this
// library's default).
//
//	cfpq.NewEngine(cfpq.Sparse)            // CSR sparse, serial  (sCPU)
//	cfpq.NewEngine(cfpq.Dense)             // bit-packed dense, serial
//	cfpq.NewEngine(cfpq.SparseParallel(0)) // CSR sparse, row-parallel (sGPU)
//	cfpq.NewEngine(cfpq.DenseParallel(0))  // dense, row-parallel     (dGPU)
type Backend struct {
	m matrix.Backend
}

// Sparse and Dense are the two serial backends. They are values, not
// options: hand them to NewEngine.
var (
	// Sparse is the serial CSR sparse backend (the paper's sCPU analogue
	// and the default).
	Sparse = Backend{m: matrix.Sparse()}
	// Dense is the serial bit-packed dense backend.
	Dense = Backend{m: matrix.Dense()}
)

// SparseParallel is the row-parallel CSR sparse backend (the paper's sGPU
// analogue); workers ≤ 0 means GOMAXPROCS.
func SparseParallel(workers int) Backend {
	return Backend{m: matrix.SparseParallel(workers)}
}

// DenseParallel is the row-parallel dense backend (the paper's dGPU
// analogue); workers ≤ 0 means GOMAXPROCS.
func DenseParallel(workers int) Backend {
	return Backend{m: matrix.DenseParallel(workers)}
}

// Name identifies the backend: "sparse", "sparse-parallel", "dense" or
// "dense-parallel".
func (b Backend) Name() string { return b.mat().Name() }

// String implements fmt.Stringer.
func (b Backend) String() string { return b.Name() }

// mat resolves the underlying matrix backend; the zero value means Sparse.
func (b Backend) mat() matrix.Backend {
	if b.m == nil {
		return matrix.Sparse()
	}
	return b.m
}

// Backends returns one backend of each kind, in the order the paper's
// tables report them.
func Backends() []Backend {
	return []Backend{Dense, DenseParallel(0), Sparse, SparseParallel(0)}
}

// BackendByName resolves one of the four backends by its Name — the form
// CLIs and HTTP APIs receive backend choices in.
func BackendByName(name string) (Backend, error) {
	for _, b := range Backends() {
		if b.Name() == name {
			return b, nil
		}
	}
	names := make([]string, 0, 4)
	for _, b := range Backends() {
		names = append(names, b.Name())
	}
	return Backend{}, fmt.Errorf("cfpq: unknown backend %q (want %s)", name, strings.Join(names, ", "))
}
