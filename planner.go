package cfpq

import (
	"context"
	"fmt"
	"sort"
	"time"

	"cfpq/internal/conjunctive"
	"cfpq/internal/core"
	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/rpq"
)

// Do evaluates a declarative Request against its Graph: the planner picks
// the cheapest strategy for the request's restriction — the full all-pairs
// closure when unrestricted, the source-frontier closure for a source
// restriction, the target-frontier closure (the source frontier of the
// reversed graph under the reversed grammar) for a target restriction, and
// for a pair restriction the frontier of whichever side names fewer nodes
// — then shapes the answer to the requested Output. Result.Explain records
// the choice; Result.Stats the closure work performed.
//
// Do is the one evaluation entry point of the engine: Query, QueryFrom,
// RPQ, QueryConjunctive and QueryBatch are sugar over it. For repeated
// requests against one (graph, grammar) pair, Prepare a handle and use
// Prepared.Do, which answers from the cached index instead.
//
// Restriction nodes outside [0, Graph.Nodes()) are an error — evaluating
// from scratch, a node the graph does not have is a caller mistake, not an
// empty answer. (Prepared.Do, reading a cached index, mirrors the historic
// read-method behaviour and ignores them.)
func (e *Engine) Do(ctx context.Context, req Request) (*Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if req.Graph == nil {
		return nil, reqErr("graph", "Engine.Do evaluates a Request against its Graph; Prepared.Do uses the bound one")
	}
	n := req.Graph.Nodes()
	for _, s := range req.Sources {
		if s >= n {
			return nil, reqErr("sources", "node %d out of range [0,%d)", s, n)
		}
	}
	for _, t := range req.Targets {
		if t >= n {
			return nil, reqErr("targets", "node %d out of range [0,%d)", t, n)
		}
	}
	cfg := buildConfig(req.Options)
	if req.EmptyPaths {
		cfg.emptyPaths = true
	}

	// Request.Trace: collect the evaluation's per-pass events through a
	// context-attached trace and hand them back on Result.Explain.Passes.
	var passes []PassEvent
	finish := func(res *Result, err error) (*Result, error) {
		if res != nil {
			res.Explain.Passes = passes
		}
		return res, err
	}
	if req.Trace {
		ctx = core.WithTraceContext(ctx, &core.Trace{Pass: func(ev core.PassEvent) {
			// Events' slices are only valid during the hook; copy.
			ev.NNZ = append([]core.NNZ(nil), ev.NNZ...)
			passes = append(passes, ev)
		}})
	}

	if req.Conjunctive != nil {
		return finish(e.doConjunctive(ctx, cfg, req))
	}

	gram, start := req.Grammar, req.Nonterminal
	rpqPrefix := ""
	if req.Expr != "" {
		r, err := rpq.ParseRegex(req.Expr)
		if err != nil {
			return nil, err
		}
		var nfa *rpq.NFA
		gram, start, nfa = rpq.Grammar(r)
		rpqPrefix = "RPQ compiled to a right-linear grammar; "
		if !gram.HasNonterminal(start) {
			// Degenerate expression: the language is empty or {ε}.
			return degenerateRPQ(req, cfg, nfa, n), nil
		}
	}
	if gram == nil {
		return nil, reqErr("grammar", "a nonterminal request needs a Grammar (or a Prepared handle)")
	}

	if req.normOutput() == OutputPaths {
		return finish(e.doPaths(ctx, cfg, req, gram, start))
	}

	pairs, ex, stats, err := e.planRelational(ctx, cfg, req.Graph, gram, start, req.Sources, req.Targets)
	if err != nil {
		return nil, err
	}
	ex.Reason = rpqPrefix + ex.Reason
	return finish(shapePairs(req, pairs, ex, stats), nil)
}

// planRelational runs the strategy selection for exists/count/pairs
// outputs and returns the restricted pair relation, sorted row-major.
func (e *Engine) planRelational(ctx context.Context, cfg *config, g *Graph, gram *Grammar, start string, sources, targets []int) ([]Pair, Explain, Stats, error) {
	qopts := core.QueryOptions{IncludeEmptyPaths: cfg.emptyPaths}
	switch {
	case sources == nil && targets == nil:
		pairs, stats, err := e.newCore(cfg).QueryStatsContext(ctx, g, gram, start, qopts)
		return pairs, Explain{
			Strategy: StrategyFull,
			Reason:   "no restriction: every pair is wanted, so the full all-pairs closure is the only plan",
		}, stats, err

	case targets == nil, sources != nil && len(sources) <= len(targets):
		pairs, fs, err := e.newCore(cfg).QueryFromStatsContext(ctx, g, gram, start, sources, qopts)
		if err != nil {
			return nil, Explain{}, fs.Stats, err
		}
		reason := fmt.Sprintf("%d source(s) restrict the rows, so the source-frontier closure pays only for reachable rows", len(sources))
		if targets != nil {
			pairs = filterPairs(pairs, nil, targets)
			reason = fmt.Sprintf("both sides restricted; the %d source(s) are the smaller frontier seed, targets filter the result", len(sources))
		}
		if fs.Saturated {
			reason += "; the frontier saturated and fell back to the full closure"
		}
		return pairs, Explain{
			Strategy:  StrategySourceFrontier,
			Reason:    reason,
			Frontier:  fs.Frontier,
			Saturated: fs.Saturated,
		}, fs.Stats, nil

	default: // targets restrict; sources are nil or the larger side
		pairs, fs, err := e.newCore(cfg).QueryFromStatsContext(ctx, graph.Reverse(g), grammar.Reverse(gram), start, targets, qopts)
		if err != nil {
			return nil, Explain{}, fs.Stats, err
		}
		for i := range pairs {
			pairs[i].I, pairs[i].J = pairs[i].J, pairs[i].I
		}
		sort.Slice(pairs, func(a, b int) bool {
			if pairs[a].I != pairs[b].I {
				return pairs[a].I < pairs[b].I
			}
			return pairs[a].J < pairs[b].J
		})
		reason := fmt.Sprintf("%d target(s) restrict the columns, so the source-frontier closure runs on the reversed graph and grammar (CFPQ duality)", len(targets))
		if sources != nil {
			pairs = filterPairs(pairs, sources, nil)
			reason = fmt.Sprintf("both sides restricted; the %d target(s) are the smaller frontier seed on the reversed instance, sources filter the result", len(targets))
		}
		if fs.Saturated {
			reason += "; the frontier saturated and fell back to the full closure"
		}
		return pairs, Explain{
			Strategy:  StrategyTargetFrontier,
			Reason:    reason,
			Frontier:  fs.Frontier,
			Saturated: fs.Saturated,
		}, fs.Stats, nil
	}
}

// doPaths answers an OutputPaths request: witness enumeration reads the
// full closure index, so the plan is always the full closure.
func (e *Engine) doPaths(ctx context.Context, cfg *config, req Request, gram *Grammar, start string) (*Result, error) {
	if !gram.HasNonterminal(start) {
		return nil, fmt.Errorf("core: unknown non-terminal %q", start)
	}
	cnf, err := ToCNF(gram)
	if err != nil {
		return nil, err
	}
	ix, stats, err := e.newCore(cfg).RunContext(ctx, req.Graph, cnf)
	if err != nil {
		return nil, err
	}
	// Look one path past the limit so a clipped enumeration reports
	// Truncated instead of passing for a complete answer (the pairs
	// output's lookahead, applied to paths).
	opts := AllPathsOptions{MaxLength: req.MaxPathLength, MaxPaths: req.Limit}
	if req.Limit > 0 {
		opts.MaxPaths++
	}
	paths, err := ix.AllPathsContext(ctx, req.Graph, start, req.Sources[0], req.Targets[0], opts)
	if err != nil {
		return nil, err
	}
	truncated := false
	if req.Limit > 0 && len(paths) > req.Limit {
		paths = paths[:req.Limit]
		truncated = true
	}
	return &Result{
		Count:     len(paths),
		Truncated: truncated,
		Stats:     stats,
		Explain: Explain{
			Strategy: StrategyFull,
			Reason:   "path enumeration reads the full closure index as its derivation oracle",
		},
		paths: paths,
	}, nil
}

// doConjunctive answers a conjunctive-grammar request: conjunctive
// evaluation has no restricted variant, so the plan is always the full
// closure with post-hoc filtering.
func (e *Engine) doConjunctive(ctx context.Context, cfg *config, req Request) (*Result, error) {
	start := time.Now()
	res, err := conjunctive.EvaluateContext(ctx, req.Graph, req.Conjunctive, e.resolveBackend(cfg).mat())
	if err != nil {
		return nil, err
	}
	pairs := filterPairs(res.Relation(req.Nonterminal), req.Sources, req.Targets)
	ex := Explain{
		Strategy: StrategyFull,
		Reason:   "conjunctive grammars evaluate only under the full closure; restrictions filter the result",
	}
	return shapePairs(req, pairs, ex, Stats{Duration: time.Since(start)}), nil
}

// degenerateRPQ answers an expression whose language is empty or {ε} —
// the compiled grammar has no start non-terminal to query.
func degenerateRPQ(req Request, cfg *config, nfa *rpq.NFA, n int) *Result {
	var pairs []Pair
	if nfa.AcceptsEmpty && cfg.emptyPaths {
		pairs = filterPairs(rpq.ReflexivePairs(n), req.Sources, req.Targets)
	}
	ex := Explain{
		Strategy: StrategyFull,
		Reason:   "degenerate RPQ: the expression's language is empty or {ε}, no closure needed",
	}
	if req.normOutput() == OutputPaths {
		// Only empty paths could witness ε; the enumeration yields none.
		return &Result{Explain: ex}
	}
	return shapePairs(req, pairs, ex, Stats{})
}

// filterPairs keeps the pairs whose endpoints satisfy the (optional)
// restrictions; a nil side is unrestricted. Order is preserved.
func filterPairs(pairs []Pair, sources, targets []int) []Pair {
	if sources == nil && targets == nil {
		return pairs
	}
	inSrc := memberSet(sources)
	inTgt := memberSet(targets)
	out := pairs[:0:0]
	for _, p := range pairs {
		if (inSrc == nil || inSrc[p.I]) && (inTgt == nil || inTgt[p.J]) {
			out = append(out, p)
		}
	}
	return out
}

// memberSet builds a membership set; nil input stays nil (unrestricted).
func memberSet(nodes []int) map[int]bool {
	if nodes == nil {
		return nil
	}
	set := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		set[v] = true
	}
	return set
}

// shapePairs turns a computed pair relation into the requested output.
func shapePairs(req Request, pairs []Pair, ex Explain, stats Stats) *Result {
	res := &Result{Stats: stats, Explain: ex}
	switch req.normOutput() {
	case OutputExists:
		res.Exists = len(pairs) > 0
	case OutputCount:
		res.Count = len(pairs)
	default: // OutputPairs
		if req.Limit > 0 && len(pairs) > req.Limit {
			pairs = pairs[:req.Limit]
			res.Truncated = true
		}
		res.Count = len(pairs)
		res.pairs = pairs
	}
	return res
}
