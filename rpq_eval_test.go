package cfpq

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"cfpq/internal/graph"
	"cfpq/internal/rpq"
)

// These tests moved here from internal/rpq when RPQ evaluation was folded
// into the public Engine (the reduction lives in internal/rpq; evaluating
// the reduced grammar is Engine.RPQ). The BFS product-graph oracle stays
// in internal/rpq.

func rpqEval(t *testing.T, g *Graph, expr string, opts ...Option) []Pair {
	t.Helper()
	pairs, err := NewEngine(Sparse).RPQ(context.Background(), g, expr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return pairs
}

func TestRPQChain(t *testing.T) {
	g := graph.Chain(5, "a") // 0→1→2→3→4
	want := []Pair{{I: 0, J: 2}, {I: 1, J: 3}, {I: 2, J: 4}}
	if pairs := rpqEval(t, g, "a a"); !reflect.DeepEqual(pairs, want) {
		t.Errorf("pairs = %v, want %v", pairs, want)
	}
}

func TestRPQStar(t *testing.T) {
	g := graph.Chain(4, "a")
	// Without empty paths: all i<j pairs.
	want := []Pair{
		{I: 0, J: 1}, {I: 0, J: 2}, {I: 0, J: 3},
		{I: 1, J: 2}, {I: 1, J: 3},
		{I: 2, J: 3},
	}
	if pairs := rpqEval(t, g, "a*"); !reflect.DeepEqual(pairs, want) {
		t.Errorf("pairs = %v, want %v", pairs, want)
	}
	if withEmpty := rpqEval(t, g, "a*", WithEmptyPaths()); len(withEmpty) != len(want)+4 {
		t.Errorf("with empty paths: %v", withEmpty)
	}
}

func TestRPQEmptyLanguageAndEpsilonOnly(t *testing.T) {
	g := graph.Chain(3, "a")
	// `b` never matches on an a-chain.
	if pairs := rpqEval(t, g, "b"); pairs != nil {
		t.Errorf("pairs = %v, want nil", pairs)
	}
	// `b?` matches only ε here.
	want := []Pair{{I: 0, J: 0}, {I: 1, J: 1}, {I: 2, J: 2}}
	if pairs := rpqEval(t, g, "b?", WithEmptyPaths()); !reflect.DeepEqual(pairs, want) {
		t.Errorf("pairs = %v, want %v", pairs, want)
	}
}

func TestRPQOnCycle(t *testing.T) {
	g := graph.Cycle(3, "a")
	// Three a-steps on a 3-cycle return to the start: exactly (v, v).
	want := []Pair{{I: 0, J: 0}, {I: 1, J: 1}, {I: 2, J: 2}}
	if pairs := rpqEval(t, g, "a a a"); !reflect.DeepEqual(pairs, want) {
		t.Errorf("pairs = %v, want %v", pairs, want)
	}
}

// TestRPQReductionAgainstBFS is the headline property: the CFPQ reduction
// (Engine.RPQ) and the product-graph BFS must agree on random graphs and a
// spread of expressions, with and without empty paths, on every backend.
func TestRPQReductionAgainstBFS(t *testing.T) {
	exprs := []string{
		"a", "a b", "a | b", "a*", "a+", "a? b",
		"(a | b)* c", "a (b a)* b", "(a a)+",
		"subClassOf_r* subClassOf", "(a | b | c)+",
	}
	rng := rand.New(rand.NewSource(81))
	labels := []string{"a", "b", "c", "subClassOf", "subClassOf_r"}
	ctx := context.Background()
	for trial := 0; trial < 6; trial++ {
		n := 2 + rng.Intn(10)
		g := graph.Random(rng, n, 3*n, labels)
		for _, expr := range exprs {
			r := rpq.MustParseRegex(expr)
			for _, includeEmpty := range []bool{false, true} {
				want := rpq.EvaluateBFS(g, r, rpq.Options{IncludeEmptyPaths: includeEmpty})
				for _, be := range Backends() {
					var opts []Option
					if includeEmpty {
						opts = append(opts, WithEmptyPaths())
					}
					got, err := NewEngine(be).RPQ(ctx, g, expr, opts...)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("trial %d expr %q empty=%v backend %s:\ncfpq %v\nbfs  %v",
							trial, expr, includeEmpty, be.Name(), got, want)
					}
				}
			}
		}
	}
}
