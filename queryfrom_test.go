package cfpq_test

// Property test for the source-restricted evaluation at the public API:
// on random grammars and random graphs, for every backend,
// Engine.QueryFrom(sources) must equal Engine.Query filtered to pairs
// leaving the sources — with and without empty-path inclusion.

import (
	"context"
	"math/rand"
	"slices"
	"testing"

	"cfpq"
	"cfpq/internal/grammar"
	"cfpq/internal/graph"
)

func TestQueryFromEqualsFilteredQueryProperty(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))
	cfg := grammar.DefaultRandomConfig()
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for _, be := range cfpq.Backends() {
		eng := cfpq.NewEngine(be)
		for trial := 0; trial < trials; trial++ {
			gram := grammar.RandomGrammar(rng, cfg)
			nts := gram.Nonterminals()
			start := nts[rng.Intn(len(nts))]
			labels := gram.Terminals()
			if len(labels) == 0 {
				continue // ε-only grammar: no edges to build
			}
			n := 4 + rng.Intn(16)
			g := graph.Random(rng, n, 2+rng.Intn(3*n), labels)

			k := 1 + rng.Intn(n)
			sources := rng.Perm(n)[:k]
			inSrc := make(map[int]bool, k)
			for _, s := range sources {
				inSrc[s] = true
			}

			for _, empty := range []bool{false, true} {
				var opts []cfpq.Option
				if empty {
					opts = append(opts, cfpq.WithEmptyPaths())
				}
				full, errFull := eng.Query(ctx, g, gram, start, opts...)
				got, errFrom := eng.QueryFrom(ctx, g, gram, start, sources, opts...)
				if (errFull == nil) != (errFrom == nil) {
					t.Fatalf("%s trial %d empty=%v: error mismatch: Query=%v QueryFrom=%v",
						be, trial, empty, errFull, errFrom)
				}
				if errFull != nil {
					continue // e.g. a grammar the CNF conversion rejects
				}
				var want []cfpq.Pair
				for _, p := range full {
					if inSrc[p.I] {
						want = append(want, p)
					}
				}
				if !slices.Equal(got, want) {
					t.Fatalf("%s trial %d empty=%v start=%s sources=%v:\n got %v\nwant %v\ngrammar:\n%s",
						be, trial, empty, start, sources, got, want, gram)
				}
			}
		}
	}
}
