package cfpq

import (
	"context"
	"io"

	"cfpq/internal/core"
	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// Re-exported data types. The concrete implementations live in internal
// packages; these aliases are the supported public surface.
type (
	// Graph is an edge-labelled directed multigraph with nodes 0..N-1.
	Graph = graph.Graph
	// Edge is one labelled directed edge.
	Edge = graph.Edge
	// Triple is an RDF triple used by the N-Triples loader.
	Triple = graph.Triple
	// Grammar is a context-free grammar (no designated start symbol).
	Grammar = grammar.Grammar
	// CNF is a grammar compiled to Chomsky Normal Form.
	CNF = grammar.CNF
	// Pair is one (source, target) element of a query relation.
	Pair = matrix.Pair
	// Index holds the evaluated relations of every non-terminal.
	Index = core.Index
	// PathIndex supports the single-path query semantics.
	PathIndex = core.PathIndex
	// Stats reports closure work (passes, matrix products, wall time,
	// peak estimated matrix bytes).
	Stats = core.Stats
	// AllPathsOptions bounds all-path enumeration.
	AllPathsOptions = core.AllPathsOptions
	// Trace is a set of per-evaluation hooks in the style of
	// httptrace.ClientTrace; install one with WithTracer or attach it to a
	// context with WithTraceContext.
	Trace = core.Trace
	// PassEvent describes one closure pass delivered to a Trace.
	PassEvent = core.PassEvent
	// NNZ is one non-terminal's relation size before/after a pass.
	NNZ = core.NNZ
)

// NewGraph returns an empty graph with n nodes; AddEdge grows it on demand.
func NewGraph(n int) *Graph { return graph.New(n) }

// LoadNTriples reads an N-Triples document and expands each triple
// (o, p, s) into the edges (o, p, s) and (s, p+"_r", o), following the
// paper's RDF-to-graph conversion. The returned map gives node id ← IRI.
func LoadNTriples(r io.Reader) (*Graph, map[string]int, error) {
	return graph.LoadNTriples(r)
}

// ParseGrammar parses the grammar text format:
//
//	S -> subClassOf_r S subClassOf | subClassOf_r subClassOf
//	B -> "Quoted Terminal" B x | eps
//
// Upper-case-initial identifiers are non-terminals, everything else (and
// anything quoted) is a terminal, `eps` is the empty string, `|` separates
// alternatives.
func ParseGrammar(text string) (*Grammar, error) { return grammar.ParseString(text) }

// MustParseGrammar is ParseGrammar that panics on error.
func MustParseGrammar(text string) *Grammar { return grammar.MustParse(text) }

// ToCNF converts a grammar to Chomsky Normal Form. Query does this
// internally; convert explicitly when evaluating many queries against the
// same grammar.
func ToCNF(g *Grammar) (*CNF, error) { return grammar.ToCNF(g) }

// Option configures one evaluation call on an Engine.
type Option func(*config)

type config struct {
	// backend, when set, overrides the engine's backend. Only the
	// deprecated WithX backend options set it.
	backend    *Backend
	emptyPaths bool
	engineOpts []core.Option
}

// WithDense selects bit-packed dense matrices (serial kernel).
//
// Deprecated: construct an engine with the Dense backend value instead:
// NewEngine(Dense).
func WithDense() Option {
	return func(c *config) { b := Dense; c.backend = &b }
}

// WithDenseParallel selects dense matrices with a row-parallel kernel
// (the paper's dGPU analogue); workers ≤ 0 means GOMAXPROCS.
//
// Deprecated: use NewEngine(DenseParallel(workers)).
func WithDenseParallel(workers int) Option {
	return func(c *config) { b := DenseParallel(workers); c.backend = &b }
}

// WithSparse selects CSR sparse matrices (the paper's sCPU analogue). This
// is the default.
//
// Deprecated: use NewEngine(Sparse).
func WithSparse() Option {
	return func(c *config) { b := Sparse; c.backend = &b }
}

// WithSparseParallel selects CSR sparse matrices with a row-parallel SpGEMM
// (the paper's sGPU analogue); workers ≤ 0 means GOMAXPROCS.
//
// Deprecated: use NewEngine(SparseParallel(workers)).
func WithSparseParallel(workers int) Option {
	return func(c *config) { b := SparseParallel(workers); c.backend = &b }
}

// WithEmptyPaths includes the reflexive pairs (v, v) in query results when
// the queried non-terminal derives the empty string (only empty paths are
// labelled ε).
func WithEmptyPaths() Option {
	return func(c *config) { c.emptyPaths = true }
}

// WithNaiveIteration makes the closure follow the paper's Algorithm 1
// literally — every pass multiplies snapshots of the previous pass's state,
// T ← T ∪ (T_prev × T_prev) — instead of the faster in-place schedule. Both
// reach the same fixpoint; naive iteration reproduces the paper's worked
// example states T₀, T₁, … exactly.
func WithNaiveIteration() Option {
	return func(c *config) { c.engineOpts = append(c.engineOpts, core.WithNaiveIteration()) }
}

// WithDeltaIteration selects the semi-naive closure schedule: each pass
// multiplies only the frontier (the bits added by the previous pass)
// against the full matrices. Same fixpoint, less work per pass as the
// closure converges. Mutually exclusive with WithNaiveIteration.
func WithDeltaIteration() Option {
	return func(c *config) { c.engineOpts = append(c.engineOpts, core.WithDeltaIteration()) }
}

// WithTrace installs a callback invoked with the evolving index after
// initialisation (iteration 0) and after each fixpoint pass. The callback
// must not retain or mutate the index.
func WithTrace(fn func(iteration int, ix *Index)) Option {
	return func(c *config) { c.engineOpts = append(c.engineOpts, core.WithTrace(fn)) }
}

// WithTracer installs a Trace whose hooks fire with one PassEvent per
// closure pass — pass index, products, per-nonterminal nnz before/after,
// frontier saturation, estimated bytes, wall time. Passed to NewEngine it
// observes every evaluation the engine runs; passed per call (via
// Request.Options or a query method's opts) it observes that evaluation
// only. A disabled trace costs evaluations one pointer test and no
// allocations. For a collected per-pass table instead of callbacks, set
// Request.Trace and read Result.Explain.Passes.
func WithTracer(t Trace) Option {
	return func(c *config) { c.engineOpts = append(c.engineOpts, core.WithTracer(&t)) }
}

// WithTraceContext returns a context carrying the trace: every evaluation
// run under the returned context fires its hooks, whichever engine or
// Prepared handle runs it — the httptrace.ClientTrace idiom.
func WithTraceContext(ctx context.Context, t *Trace) context.Context {
	return core.WithTraceContext(ctx, t)
}

// ContextTrace returns the trace attached to ctx by WithTraceContext, or
// nil.
func ContextTrace(ctx context.Context) *Trace {
	return core.ContextTrace(ctx)
}

// MemoryBudgetError reports that an evaluation was abandoned because its
// estimated matrix storage outgrew the memory budget (WithMemoryBudget).
// Detect it with errors.As; serving layers map it to HTTP 413.
type MemoryBudgetError = core.MemoryBudgetError

// WithMemoryBudget bounds the estimated matrix bytes one closure
// evaluation may hold at once; a breach fails fast with a
// *MemoryBudgetError before the offending allocation instead of running
// the process out of memory. bytes ≤ 0 means unlimited (the default).
// Pass it to NewEngine to govern every evaluation — including Prepare's
// index build — or per call to bound a single one. The estimate covers
// the index matrices plus schedule-dependent working copies; transient
// kernel scratch is not counted.
func WithMemoryBudget(bytes int64) Option {
	return func(c *config) { c.engineOpts = append(c.engineOpts, core.WithMemoryBudget(bytes)) }
}

func buildConfig(opts []Option) *config {
	c := &config{}
	for _, o := range opts {
		o(c)
	}
	return c
}

// --- deprecated one-shot wrappers --------------------------------------
//
// The free functions below predate Engine. They evaluate with a default
// (sparse) engine, a background context, and any backend chosen through
// the deprecated WithX options. They remain so existing callers keep
// working; new code should construct an Engine.

// Query evaluates R_start on the graph under the relational semantics and
// returns the sorted pair list.
//
// Deprecated: use NewEngine(backend).Do with Request{Graph: g, Grammar:
// gram, Nonterminal: start} (or the Query sugar) with a context.
func Query(g *Graph, gram *Grammar, start string, opts ...Option) ([]Pair, error) {
	//lint:allow cfpqlint/ctxflow deprecated ctx-less wrapper: no caller context exists; the Engine method is the ctx-aware path
	return NewEngine(Sparse).Query(context.Background(), g, gram, start, opts...)
}

// Evaluate runs the matrix closure and returns the full Index, from which
// the relation of every non-terminal can be read (Relation, Has, Count).
// It discards evaluation errors, so do not combine it with
// WithMemoryBudget: an over-budget closure would come back as a nil
// Index with no explanation. Budgeted callers need the Engine method,
// whose error carries the *MemoryBudgetError.
//
// Deprecated: use NewEngine(backend).Evaluate with a context.
func Evaluate(g *Graph, cnf *CNF, opts ...Option) (*Index, Stats) {
	//lint:allow cfpqlint/ctxflow deprecated ctx-less wrapper: no caller context exists; the Engine method is the ctx-aware path
	ix, stats, _ := NewEngine(Sparse).Evaluate(context.Background(), g, cnf, opts...)
	return ix, stats
}

// SinglePath evaluates the single-path query semantics: the returned
// PathIndex reports, for every pair of every relation, a witness-path
// length (Length) and a concrete path of exactly that length (Path).
//
// Deprecated: use NewEngine(backend).SinglePath with a context.
func SinglePath(g *Graph, cnf *CNF) *PathIndex {
	//lint:allow cfpqlint/ctxflow deprecated ctx-less wrapper: no caller context exists; the Engine method is the ctx-aware path
	px, _ := NewEngine(Sparse).SinglePath(context.Background(), g, cnf)
	return px
}

// AllPaths enumerates distinct paths witnessing (start, i, j) in
// nondecreasing length order, bounded by opts.
//
// Deprecated: use NewEngine(backend).AllPaths with a context, or the
// streaming Prepared.Paths.
func AllPaths(g *Graph, ix *Index, start string, i, j int, opts AllPathsOptions) ([][]Edge, error) {
	//lint:allow cfpqlint/ctxflow deprecated ctx-less wrapper: no caller context exists; the Engine method is the ctx-aware path
	return NewEngine(Sparse).AllPaths(context.Background(), g, ix, start, i, j, opts)
}
