package cfpq

import (
	"fmt"
	"io"

	"cfpq/internal/core"
	"cfpq/internal/grammar"
	"cfpq/internal/graph"
	"cfpq/internal/matrix"
)

// Re-exported data types. The concrete implementations live in internal
// packages; these aliases are the supported public surface.
type (
	// Graph is an edge-labelled directed multigraph with nodes 0..N-1.
	Graph = graph.Graph
	// Edge is one labelled directed edge.
	Edge = graph.Edge
	// Triple is an RDF triple used by the N-Triples loader.
	Triple = graph.Triple
	// Grammar is a context-free grammar (no designated start symbol).
	Grammar = grammar.Grammar
	// CNF is a grammar compiled to Chomsky Normal Form.
	CNF = grammar.CNF
	// Pair is one (source, target) element of a query relation.
	Pair = matrix.Pair
	// Index holds the evaluated relations of every non-terminal.
	Index = core.Index
	// PathIndex supports the single-path query semantics.
	PathIndex = core.PathIndex
	// Stats reports closure work (passes and matrix products).
	Stats = core.Stats
)

// NewGraph returns an empty graph with n nodes; AddEdge grows it on demand.
func NewGraph(n int) *Graph { return graph.New(n) }

// LoadNTriples reads an N-Triples document and expands each triple
// (o, p, s) into the edges (o, p, s) and (s, p+"_r", o), following the
// paper's RDF-to-graph conversion. The returned map gives node id ← IRI.
func LoadNTriples(r io.Reader) (*Graph, map[string]int, error) {
	return graph.LoadNTriples(r)
}

// ParseGrammar parses the grammar text format:
//
//	S -> subClassOf_r S subClassOf | subClassOf_r subClassOf
//	B -> "Quoted Terminal" B x | eps
//
// Upper-case-initial identifiers are non-terminals, everything else (and
// anything quoted) is a terminal, `eps` is the empty string, `|` separates
// alternatives.
func ParseGrammar(text string) (*Grammar, error) { return grammar.ParseString(text) }

// MustParseGrammar is ParseGrammar that panics on error.
func MustParseGrammar(text string) *Grammar { return grammar.MustParse(text) }

// ToCNF converts a grammar to Chomsky Normal Form. Query does this
// internally; convert explicitly when evaluating many queries against the
// same grammar.
func ToCNF(g *Grammar) (*CNF, error) { return grammar.ToCNF(g) }

// Option configures query evaluation.
type Option func(*config)

type config struct {
	engineOpts []core.Option
	emptyPaths bool
}

// WithDense selects bit-packed dense matrices (serial kernel).
func WithDense() Option {
	return func(c *config) { c.engineOpts = append(c.engineOpts, core.WithBackend(matrix.Dense())) }
}

// WithDenseParallel selects dense matrices with a row-parallel kernel
// (the paper's dGPU analogue); workers ≤ 0 means GOMAXPROCS.
func WithDenseParallel(workers int) Option {
	return func(c *config) {
		c.engineOpts = append(c.engineOpts, core.WithBackend(matrix.DenseParallel(workers)))
	}
}

// WithSparse selects CSR sparse matrices (the paper's sCPU analogue). This
// is the default.
func WithSparse() Option {
	return func(c *config) { c.engineOpts = append(c.engineOpts, core.WithBackend(matrix.Sparse())) }
}

// WithSparseParallel selects CSR sparse matrices with a row-parallel SpGEMM
// (the paper's sGPU analogue); workers ≤ 0 means GOMAXPROCS.
func WithSparseParallel(workers int) Option {
	return func(c *config) {
		c.engineOpts = append(c.engineOpts, core.WithBackend(matrix.SparseParallel(workers)))
	}
}

// WithEmptyPaths includes the reflexive pairs (v, v) in query results when
// the queried non-terminal derives the empty string (only empty paths are
// labelled ε).
func WithEmptyPaths() Option {
	return func(c *config) { c.emptyPaths = true }
}

// WithNaiveIteration makes the closure follow the paper's Algorithm 1
// literally — every pass multiplies snapshots of the previous pass's state,
// T ← T ∪ (T_prev × T_prev) — instead of the faster in-place schedule. Both
// reach the same fixpoint; naive iteration reproduces the paper's worked
// example states T₀, T₁, … exactly.
func WithNaiveIteration() Option {
	return func(c *config) { c.engineOpts = append(c.engineOpts, core.WithNaiveIteration()) }
}

// WithTrace installs a callback invoked with the evolving index after
// initialisation (iteration 0) and after each fixpoint pass. The callback
// must not retain or mutate the index.
func WithTrace(fn func(iteration int, ix *Index)) Option {
	return func(c *config) { c.engineOpts = append(c.engineOpts, core.WithTrace(fn)) }
}

func buildConfig(opts []Option) *config {
	c := &config{}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Query evaluates R_start on the graph under the relational semantics and
// returns the sorted pair list.
func Query(g *Graph, gram *Grammar, start string, opts ...Option) ([]Pair, error) {
	c := buildConfig(opts)
	e := core.NewEngine(c.engineOpts...)
	return e.Query(g, gram, start, core.QueryOptions{IncludeEmptyPaths: c.emptyPaths})
}

// Evaluate runs the matrix closure and returns the full Index, from which
// the relation of every non-terminal can be read (Relation, Has, Count).
// Use this instead of Query when several non-terminals are of interest.
func Evaluate(g *Graph, cnf *CNF, opts ...Option) (*Index, Stats) {
	c := buildConfig(opts)
	return core.NewEngine(c.engineOpts...).Run(g, cnf)
}

// SinglePath evaluates the single-path query semantics: the returned
// PathIndex reports, for every pair of every relation, a witness-path
// length (Length) and a concrete path of exactly that length (Path).
func SinglePath(g *Graph, cnf *CNF) *PathIndex {
	return core.NewPathIndex(g, cnf)
}

// AllPathsOptions bounds all-path enumeration.
type AllPathsOptions = core.AllPathsOptions

// AllPaths enumerates distinct paths witnessing (start, i, j) in
// nondecreasing length order, bounded by opts.
func AllPaths(g *Graph, ix *Index, start string, i, j int, opts AllPathsOptions) ([][]Edge, error) {
	if _, ok := ix.CNF().Index(start); !ok {
		return nil, fmt.Errorf("cfpq: unknown non-terminal %q", start)
	}
	return ix.AllPaths(g, start, i, j, opts), nil
}
