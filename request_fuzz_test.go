package cfpq_test

// FuzzRequestJSON fuzzes the wire form of the declarative Request:
// whatever bytes arrive, decode → Validate → re-encode must never panic,
// a valid request must re-encode to a stable round trip (decode(encode(r))
// revalidates and re-encodes identically — the property the HTTP layer
// relies on), and an invalid one must yield the structured *RequestError
// the error envelope is built from.

import (
	"encoding/json"
	"errors"
	"testing"

	"cfpq"
)

func FuzzRequestJSON(f *testing.F) {
	f.Add([]byte(`{"nonterminal":"S"}`))
	f.Add([]byte(`{"nonterminal":"S","sources":[1,2],"targets":[3],"output":"count","limit":10}`))
	f.Add([]byte(`{"expr":"a* b+","targets":[0],"output":"exists"}`))
	f.Add([]byte(`{"nonterminal":"S","sources":[0],"targets":[2],"output":"paths","max_path_length":8,"limit":4}`))
	f.Add([]byte(`{"nonterminal":"S","expr":"a"}`))
	f.Add([]byte(`{"output":"pairs"}`))
	f.Add([]byte(`{"nonterminal":"S","sources":[]}`))
	f.Add([]byte(`{"nonterminal":"S","sources":[-1]}`))
	f.Add([]byte(`{"nonterminal":"S","output":"frobnicate","limit":-3}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var req cfpq.Request
		if err := json.Unmarshal(data, &req); err != nil {
			return // not a Request document at all
		}
		err := req.Validate()
		if err != nil {
			var reqErr *cfpq.RequestError
			if !errors.As(err, &reqErr) {
				t.Fatalf("Validate returned an unstructured error %T: %v", err, err)
			}
			if reqErr.Field == "" || reqErr.Reason == "" {
				t.Fatalf("structured error with empty field/reason: %+v", reqErr)
			}
			return
		}
		// Valid requests must round-trip stably through the wire form.
		blob, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-encoding a valid request: %v", err)
		}
		var again cfpq.Request
		if err := json.Unmarshal(blob, &again); err != nil {
			t.Fatalf("decoding re-encoded request: %v\nblob: %s", err, blob)
		}
		if err := again.Validate(); err != nil {
			t.Fatalf("round-tripped request became invalid: %v\nblob: %s", err, blob)
		}
		blob2, err := json.Marshal(again)
		if err != nil {
			t.Fatalf("re-encoding round-tripped request: %v", err)
		}
		if string(blob) != string(blob2) {
			t.Fatalf("unstable round trip:\n first: %s\nsecond: %s", blob, blob2)
		}
	})
}
