package cfpq

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func mustPrepare(t *testing.T, eng *Engine, g *Graph, text string) *Prepared {
	t.Helper()
	p, err := eng.Prepare(context.Background(), g, MustParseGrammar(text))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPreparedBasics(t *testing.T) {
	g := NewGraph(0)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(2, "b", 3)
	g.AddEdge(3, "b", 4)
	p := mustPrepare(t, NewEngine(Sparse), g, "S -> a S b | a b")

	if !p.Has(context.Background(), "S", 1, 3) || !p.Has(context.Background(), "S", 0, 4) {
		t.Error("expected pairs missing")
	}
	if p.Has(context.Background(), "S", 0, 1) || p.Has(context.Background(), "S", -1, 0) || p.Has(context.Background(), "S", 0, 99) || p.Has(context.Background(), "Nope", 0, 1) {
		t.Error("unexpected pair answered true")
	}
	if n := p.Count(context.Background(), "S"); n != 2 {
		t.Errorf("Count = %d, want 2", n)
	}
	if c := p.Counts(); c["S"] != 2 {
		t.Errorf("Counts = %v", c)
	}
	want := []Pair{{I: 0, J: 4}, {I: 1, J: 3}}
	if rel := p.Relation(context.Background(), "S"); !reflect.DeepEqual(rel, want) {
		t.Errorf("Relation = %v, want %v", rel, want)
	}

	// Streaming agrees with the materialised relation, and early break
	// releases the lock (the follow-up Count would deadlock otherwise).
	var streamed []Pair
	for pr := range p.Pairs(context.Background(), "S") {
		streamed = append(streamed, pr)
	}
	if !reflect.DeepEqual(streamed, want) {
		t.Errorf("Pairs = %v, want %v", streamed, want)
	}
	for range p.Pairs(context.Background(), "S") {
		break
	}
	_ = p.Count(context.Background(), "S")

	var paths [][]Edge
	for path := range p.Paths(context.Background(), "S", 1, 3, AllPathsOptions{MaxPaths: 4}) {
		paths = append(paths, path)
	}
	if len(paths) != 1 || len(paths[0]) != 2 {
		t.Errorf("Paths = %v", paths)
	}

	st := p.Stats()
	if st.Nodes != 5 || st.Entries == 0 || st.Build.Iterations == 0 || st.Queries == 0 {
		t.Errorf("Stats = %+v", st)
	}
}

// TestPreparedPatchAgreesWithColdRebuild streams edge batches — including
// node-growing ones — through AddEdges and checks after every batch that
// the patched index matches a from-scratch closure of an identically
// mutated graph.
func TestPreparedPatchAgreesWithColdRebuild(t *testing.T) {
	const text = "S -> a S b | a b"
	eng := NewEngine(Sparse)
	g := NewGraph(0)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "b", 2)
	shadow := g.Clone()
	p := mustPrepare(t, eng, g, text)
	cnf, _ := ToCNF(MustParseGrammar(text))

	batches := [][]Edge{
		{{From: 0, Label: "a", To: 0}},                                // cycle on existing nodes
		{{From: 2, Label: "b", To: 3}, {From: 3, Label: "b", To: 4}},  // grows the node set
		{{From: 0, Label: "a", To: 1}},                                // duplicate: no-op
		{{From: 4, Label: "a", To: 5}, {From: 5, Label: "b", To: 6}},  // grows again
		{{From: 1, Label: "b", To: 2}, {From: 6, Label: "a", To: 10}}, // mixed dup + growth
	}
	for bi, batch := range batches {
		info, err := p.AddEdges(context.Background(), batch...)
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		for _, e := range batch {
			if !shadow.HasEdge(e.From, e.Label, e.To) {
				shadow.AddEdge(e.From, e.Label, e.To)
			}
		}
		if shadow.Nodes() > p.Nodes() {
			t.Fatalf("batch %d: handle has %d nodes, shadow %d (info %+v)", bi, p.Nodes(), shadow.Nodes(), info)
		}
		cold, _, err := eng.Evaluate(context.Background(), shadow, cnf)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := p.Relation(context.Background(), "S"), cold.Relation("S"); !reflect.DeepEqual(got, want) {
			t.Fatalf("batch %d: patched relation %v != cold rebuild %v", bi, got, want)
		}
	}
	if st := p.Stats(); st.Updates != len(batches) {
		t.Errorf("Updates = %d, want %d", p.Stats().Updates, len(batches))
	}
}

// TestPreparedConcurrentQueriesRaceUpdates races readers over every query
// method against a writer streaming edges in; run under -race. Afterwards
// the handle must agree with a cold closure of the final graph.
func TestPreparedConcurrentQueriesRaceUpdates(t *testing.T) {
	const k = 12
	const extra = 8
	text := "S -> a S b | a b"
	g := NewGraph(0)
	for i := 0; i < k; i++ {
		g.AddEdge(i, "a", i+1)
	}
	for i := k; i < 2*k-1; i++ {
		g.AddEdge(i, "b", i+1)
	}
	eng := NewEngine(SparseParallel(2))
	p := mustPrepare(t, eng, g.Clone(), text)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	start := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < extra; i++ {
			at := 2*k - 1 + i
			if _, err := p.AddEdges(context.Background(), Edge{From: at, Label: "b", To: at + 1}); err != nil {
				errs <- fmt.Errorf("writer: %w", err)
				return
			}
		}
	}()
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				switch i % 4 {
				case 0:
					p.Has(context.Background(), "S", 0, 2*k)
				case 1:
					p.Count(context.Background(), "S")
				case 2:
					for range p.Pairs(context.Background(), "S") {
					}
				case 3:
					p.Counts()
				}
			}
		}(r)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i := 0; i < extra; i++ {
		at := 2*k - 1 + i
		g.AddEdge(at, "b", at+1)
	}
	cnf, _ := ToCNF(MustParseGrammar(text))
	cold, _, err := NewEngine(Sparse).Evaluate(context.Background(), g, cnf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Count(context.Background(), "S"), cold.Count("S"); got != want {
		t.Fatalf("post-race Count = %d, cold rebuild = %d", got, want)
	}
	if !reflect.DeepEqual(p.Relation(context.Background(), "S"), cold.Relation("S")) {
		t.Fatal("post-race relation disagrees with cold rebuild")
	}
}

// TestPreparedCancelledPatchRepairs: a cancelled AddEdges leaves the handle
// sound but flagged dirty; the next successful AddEdges repairs it with a
// full rebuild, after which it agrees with a cold closure.
func TestPreparedCancelledPatchRepairs(t *testing.T) {
	text := "S -> a S b | a b"
	g := NewGraph(0)
	for i := 0; i < 6; i++ {
		g.AddEdge(i, "a", i+1)
	}
	for i := 6; i < 11; i++ {
		g.AddEdge(i, "b", i+1)
	}
	eng := NewEngine(Sparse)
	p := mustPrepare(t, eng, g.Clone(), text)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.AddEdges(cancelled, Edge{From: 11, Label: "b", To: 12}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Repair with a successful (empty) update.
	if _, err := p.AddEdges(context.Background()); err != nil {
		t.Fatal(err)
	}
	g.AddEdge(11, "b", 12)
	cnf, _ := ToCNF(MustParseGrammar(text))
	cold, _, err := eng.Evaluate(context.Background(), g, cnf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Relation(context.Background(), "S"), cold.Relation("S")) {
		t.Fatalf("repaired relation %v != cold rebuild %v", p.Relation(context.Background(), "S"), cold.Relation("S"))
	}
}

// fakeWAL records journaled batches and can be told to fail.
type fakeWAL struct {
	batches [][]Edge
	fail    error
}

func (f *fakeWAL) AppendEdges(edges []Edge) error {
	if f.fail != nil {
		return f.fail
	}
	cp := make([]Edge, len(edges))
	copy(cp, edges)
	f.batches = append(f.batches, cp)
	return nil
}

func TestPreparedAttachWALTeesFreshEdges(t *testing.T) {
	ctx := context.Background()
	g := NewGraph(0)
	g.AddEdge(0, "a", 1)
	p := mustPrepare(t, NewEngine(Sparse), g, "S -> a S b | a b")
	wal := &fakeWAL{}
	p.AttachWAL(wal)

	// Duplicates of existing edges and within-batch repeats must not be
	// journaled: replaying the WAL over the original graph has to rebuild
	// exactly the final edge multiset.
	dup := Edge{From: 0, Label: "a", To: 1}
	fresh := Edge{From: 1, Label: "b", To: 2}
	if _, err := p.AddEdges(ctx, dup, fresh, fresh); err != nil {
		t.Fatal(err)
	}
	if len(wal.batches) != 1 || !reflect.DeepEqual(wal.batches[0], []Edge{fresh}) {
		t.Fatalf("journaled %v, want [[%v]]", wal.batches, fresh)
	}
	if !p.Has(context.Background(), "S", 0, 2) {
		t.Error("patch missing after journaled AddEdges")
	}

	// A journal failure is write-ahead: no in-memory effect.
	wal.fail = errors.New("disk gone")
	if _, err := p.AddEdges(ctx, Edge{From: 2, Label: "a", To: 3}); err == nil {
		t.Fatal("AddEdges succeeded with failing WAL")
	}
	if p.Nodes() != 3 {
		t.Errorf("failed journal mutated the graph: %d nodes, want 3", p.Nodes())
	}
	// An all-duplicates batch journals nothing even while failing.
	wal.fail = errors.New("still down")
	if _, err := p.AddEdges(ctx, dup); err != nil {
		t.Errorf("no-op batch hit the WAL: %v", err)
	}
}

func TestPrepareFromIndexWarmStart(t *testing.T) {
	ctx := context.Background()
	g := NewGraph(0)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(2, "b", 3)
	gram := MustParseGrammar("S -> a S b | a b")
	cnf, err := ToCNF(gram)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(Sparse)
	cold, err := eng.PrepareCNF(ctx, g.Clone(), cnf)
	if err != nil {
		t.Fatal(err)
	}
	ix, _, err := eng.Evaluate(ctx, g, cnf)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := eng.PrepareFromIndex(g, cnf, ix)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Relation(context.Background(), "S"), cold.Relation(context.Background(), "S")) {
		t.Error("warm handle answers differ from cold")
	}
	if st := warm.Stats(); st.Build.Products != 0 || st.Build.Iterations != 0 {
		t.Errorf("warm start ran a closure: %+v", st.Build)
	}
	// The warm handle keeps absorbing updates: b(3,4) completes
	// a a b b from 0 to 4.
	if _, err := warm.AddEdges(ctx, Edge{From: 3, Label: "b", To: 4}); err != nil {
		t.Fatal(err)
	}
	if !warm.Has(context.Background(), "S", 0, 4) {
		t.Error("warm handle missed incremental consequence")
	}
	// CNF identity is enforced.
	otherCNF, err := ToCNF(gram)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.PrepareFromIndex(NewGraph(1), otherCNF, ix); err == nil {
		t.Error("foreign CNF accepted")
	}
}
