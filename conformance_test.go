package cfpq_test

// The golden cross-backend conformance suite: fixed graphs and grammars
// with committed expected results for every query method — Query,
// QueryFrom, SinglePath, ShortestPath, AllPaths, RPQ and QueryConjunctive
// — run against all four matrix backends. These goldens pin the observable
// semantics of the library so the evaluation internals (in particular the
// source-restricted closure and any future kernel work) can be refactored
// aggressively: any behavioural drift fails here first, with the exact
// pair that moved.

import (
	"context"
	"fmt"
	"slices"
	"testing"

	"cfpq"
	"cfpq/internal/dataset"
)

// figure5 returns the paper's worked-example graph (Figure 5) and the
// same-generation grammar of Figure 3.
func figure5() (*cfpq.Graph, *cfpq.Grammar) {
	g := cfpq.NewGraph(3)
	g.AddEdge(0, "subClassOf_r", 0)
	g.AddEdge(0, "type_r", 1)
	g.AddEdge(1, "type_r", 2)
	g.AddEdge(2, "subClassOf", 0)
	g.AddEdge(2, "type", 2)
	gram := cfpq.MustParseGrammar(`
		S -> subClassOf_r S subClassOf | subClassOf_r subClassOf
		S -> type_r S type | type_r type
	`)
	return g, gram
}

// forEachBackend runs the check once per paper backend, as a subtest.
func forEachBackend(t *testing.T, fn func(t *testing.T, eng *cfpq.Engine)) {
	t.Helper()
	for _, be := range cfpq.Backends() {
		t.Run(be.Name(), func(t *testing.T) { fn(t, cfpq.NewEngine(be)) })
	}
}

// TestConformanceDatasetCounts pins |R_S| of the paper's two queries on
// the six smallest dataset ontologies (deterministically generated, so
// the counts are stable), for every backend.
func TestConformanceDatasetCounts(t *testing.T) {
	golden := []struct {
		dataset string
		nodes   int
		q1Count int
		q2Count int
	}{
		{"skos", 161, 857, 85},
		{"generations", 173, 771, 92},
		{"travel", 175, 837, 93},
		{"univ-bench", 186, 871, 98},
		{"atom-primitive", 269, 1389, 142},
		{"foaf", 404, 2096, 211},
	}
	ctx := context.Background()
	forEachBackend(t, func(t *testing.T, eng *cfpq.Engine) {
		for _, row := range golden {
			d, ok := dataset.ByName(row.dataset)
			if !ok {
				t.Fatalf("unknown dataset %q", row.dataset)
			}
			g := d.Build()
			if g.Nodes() != row.nodes {
				t.Fatalf("%s: %d nodes, want %d (generator drifted — goldens need review)",
					row.dataset, g.Nodes(), row.nodes)
			}
			for q, want := range map[int]int{1: row.q1Count, 2: row.q2Count} {
				pairs, err := eng.Query(ctx, g, dataset.Query(q), "S")
				if err != nil {
					t.Fatal(err)
				}
				if len(pairs) != want {
					t.Errorf("%s query %d: %d pairs, want %d", row.dataset, q, len(pairs), want)
				}
			}
		}
	})
}

// TestConformanceFigure5 pins every query method's exact answer on the
// paper's worked example.
func TestConformanceFigure5(t *testing.T) {
	ctx := context.Background()
	wantS := []cfpq.Pair{{I: 0, J: 0}, {I: 0, J: 2}, {I: 1, J: 2}}
	wantLengths := map[cfpq.Pair]int{{I: 0, J: 0}: 6, {I: 0, J: 2}: 4, {I: 1, J: 2}: 2}
	forEachBackend(t, func(t *testing.T, eng *cfpq.Engine) {
		g, gram := figure5()
		cnf, err := cfpq.ToCNF(gram)
		if err != nil {
			t.Fatal(err)
		}

		// Query (relational semantics).
		pairs, err := eng.Query(ctx, g, gram, "S")
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(pairs, wantS) {
			t.Errorf("Query = %v, want %v", pairs, wantS)
		}

		// QueryFrom: filtered to source node 1.
		from, err := eng.QueryFrom(ctx, g, gram, "S", []int{1})
		if err != nil {
			t.Fatal(err)
		}
		if want := []cfpq.Pair{{I: 1, J: 2}}; !slices.Equal(from, want) {
			t.Errorf("QueryFrom([1]) = %v, want %v", from, want)
		}

		// SinglePath and ShortestPath: same relation, pinned witness
		// lengths (on this instance the single-path witnesses are already
		// minimal).
		for name, run := range map[string]func(context.Context, *cfpq.Graph, *cfpq.CNF) (*cfpq.PathIndex, error){
			"SinglePath":   eng.SinglePath,
			"ShortestPath": eng.ShortestPath,
		} {
			px, err := run(ctx, g, cnf)
			if err != nil {
				t.Fatal(err)
			}
			rel := px.Relation("S")
			if len(rel) != len(wantS) {
				t.Fatalf("%s relation = %v, want pairs %v", name, rel, wantS)
			}
			for _, lp := range rel {
				if want := wantLengths[cfpq.Pair{I: lp.I, J: lp.J}]; lp.Length != want {
					t.Errorf("%s length(%d,%d) = %d, want %d", name, lp.I, lp.J, lp.Length, want)
				}
				path, ok := px.Path("S", lp.I, lp.J)
				if !ok || len(path) != lp.Length {
					t.Errorf("%s path(%d,%d): ok=%v len=%d, want length %d", name, lp.I, lp.J, ok, len(path), lp.Length)
				}
			}
		}

		// AllPaths: the exact witness enumeration, one path per pair on
		// this instance (bounded by length 6).
		ix, _, err := eng.Evaluate(ctx, g, cnf)
		if err != nil {
			t.Fatal(err)
		}
		wantPaths := map[cfpq.Pair][]string{
			{I: 0, J: 0}: {"0-subClassOf_r->0", "0-type_r->1", "1-type_r->2", "2-type->2", "2-type->2", "2-subClassOf->0"},
			{I: 0, J: 2}: {"0-type_r->1", "1-type_r->2", "2-type->2", "2-type->2"},
			{I: 1, J: 2}: {"1-type_r->2", "2-type->2"},
		}
		for pr, want := range wantPaths {
			paths, err := eng.AllPaths(ctx, g, ix, "S", pr.I, pr.J, cfpq.AllPathsOptions{MaxLength: 6, MaxPaths: 8})
			if err != nil {
				t.Fatal(err)
			}
			if len(paths) != 1 {
				t.Fatalf("AllPaths(%d,%d): %d paths, want 1", pr.I, pr.J, len(paths))
			}
			got := make([]string, len(paths[0]))
			for i, e := range paths[0] {
				got[i] = fmt.Sprintf("%d-%s->%d", e.From, e.Label, e.To)
			}
			if !slices.Equal(got, want) {
				t.Errorf("AllPaths(%d,%d) = %v, want %v", pr.I, pr.J, got, want)
			}
		}
	})
}

// TestConformanceRPQ pins a regular path query on a fixed class
// hierarchy: instances 4 and 5 reach their classes' ancestors via
// `type subClassOf*`.
func TestConformanceRPQ(t *testing.T) {
	ctx := context.Background()
	want := []cfpq.Pair{{I: 4, J: 0}, {I: 4, J: 1}, {I: 4, J: 3}, {I: 5, J: 0}, {I: 5, J: 2}}
	forEachBackend(t, func(t *testing.T, eng *cfpq.Engine) {
		h := cfpq.NewGraph(6)
		h.AddEdge(1, "subClassOf", 0)
		h.AddEdge(2, "subClassOf", 0)
		h.AddEdge(3, "subClassOf", 1)
		h.AddEdge(4, "type", 3)
		h.AddEdge(5, "type", 2)
		pairs, err := eng.RPQ(ctx, h, "type subClassOf*")
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(pairs, want) {
			t.Errorf("RPQ = %v, want %v", pairs, want)
		}
	})
}

// TestConformanceConjunctive pins the canonical conjunctive query
// {aⁿbⁿcⁿ} on the linear word a²b²c²: exactly the full-word pair.
func TestConformanceConjunctive(t *testing.T) {
	ctx := context.Background()
	cg, err := cfpq.ParseConjunctive(`
		S -> A B & D C
		A -> a A | a
		B -> b B c | b c
		C -> c C | c
		D -> a D b | a b
	`)
	if err != nil {
		t.Fatal(err)
	}
	want := []cfpq.Pair{{I: 0, J: 6}}
	forEachBackend(t, func(t *testing.T, eng *cfpq.Engine) {
		w := cfpq.NewGraph(0)
		for i, l := range []string{"a", "a", "b", "b", "c", "c"} {
			w.AddEdge(i, l, i+1)
		}
		pairs, err := eng.QueryConjunctive(ctx, w, cg, "S")
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(pairs, want) {
			t.Errorf("QueryConjunctive = %v, want %v", pairs, want)
		}
	})
}

// TestConformanceRequestDatasets pins Request-path answers on the six
// smallest dataset ontologies: the target- and source-restricted counts
// of the paper's Query 1 for the restriction {0,1,2,3}, and the
// target-restricted ancestors relation (whose reverse frontier saturates
// on these root-heavy nodes, pinning the fallback path too), for every
// backend. These goldens hold the planner to the answers the full
// closure gives; any strategy drift fails here with the exact count that
// moved.
func TestConformanceRequestDatasets(t *testing.T) {
	golden := []struct {
		dataset        string
		nodes          int
		q1TargetCount  int
		q1SourceCount  int
		ancestorsCount int
	}{
		{"skos", 161, 100, 100, 204},
		{"generations", 173, 87, 87, 145},
		{"travel", 175, 113, 113, 188},
		{"univ-bench", 186, 94, 94, 188},
		{"atom-primitive", 269, 122, 122, 212},
		{"foaf", 404, 158, 158, 398},
	}
	ctx := context.Background()
	restriction := []int{0, 1, 2, 3}
	ancestors := cfpq.MustParseGrammar("S -> subClassOf S | subClassOf")
	forEachBackend(t, func(t *testing.T, eng *cfpq.Engine) {
		for _, row := range golden {
			d, ok := dataset.ByName(row.dataset)
			if !ok {
				t.Fatalf("unknown dataset %q", row.dataset)
			}
			g := d.Build()
			if g.Nodes() != row.nodes {
				t.Fatalf("%s: %d nodes, want %d (generator drifted — goldens need review)",
					row.dataset, g.Nodes(), row.nodes)
			}
			rt, err := eng.Do(ctx, cfpq.Request{
				Graph: g, Grammar: dataset.Query(1), Nonterminal: "S",
				Targets: restriction, Output: cfpq.OutputCount,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rt.Explain.Strategy != cfpq.StrategyTargetFrontier {
				t.Errorf("%s: q1 target strategy %q", row.dataset, rt.Explain.Strategy)
			}
			if rt.Count != row.q1TargetCount {
				t.Errorf("%s: q1 target count %d, want %d", row.dataset, rt.Count, row.q1TargetCount)
			}
			rs, err := eng.Do(ctx, cfpq.Request{
				Graph: g, Grammar: dataset.Query(1), Nonterminal: "S",
				Sources: restriction, Output: cfpq.OutputCount,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rs.Explain.Strategy != cfpq.StrategySourceFrontier {
				t.Errorf("%s: q1 source strategy %q", row.dataset, rs.Explain.Strategy)
			}
			if rs.Count != row.q1SourceCount {
				t.Errorf("%s: q1 source count %d, want %d", row.dataset, rs.Count, row.q1SourceCount)
			}
			ra, err := eng.Do(ctx, cfpq.Request{
				Graph: g, Grammar: ancestors, Nonterminal: "S", Targets: restriction,
			})
			if err != nil {
				t.Fatal(err)
			}
			if ra.Count != row.ancestorsCount {
				t.Errorf("%s: ancestors target count %d, want %d", row.dataset, ra.Count, row.ancestorsCount)
			}
			for p := range ra.Pairs() {
				if p.J > 3 {
					t.Errorf("%s: pair %v escaped the target restriction", row.dataset, p)
					break
				}
			}
		}
	})
}
