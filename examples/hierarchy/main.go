// Hierarchy demonstrates the single-path and all-path query semantics
// (paper Sections 5 and 7) through the Engine API, on a same-generation
// query over a corporate reporting hierarchy: employees are on the same
// level when they sit at equal depth below a common manager.
//
// Run with:
//
//	go run ./examples/hierarchy
package main

import (
	"context"
	"fmt"
	"io"
	"os"

	"cfpq"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run holds the whole example; main is a thin shell so the package's smoke
// test can drive the same logic against a buffer.
func run(w io.Writer) error {
	ctx := context.Background()
	eng := cfpq.NewEngine(cfpq.Sparse)

	// reportsTo edges child → parent, plus explicit inverse edges.
	people := []string{"ceo", "vp1", "vp2", "eng1", "eng2", "sales1"}
	id := map[string]int{}
	for i, p := range people {
		id[p] = i
	}
	g := cfpq.NewGraph(len(people))
	reports := func(child, parent string) {
		g.AddEdge(id[child], "reportsTo", id[parent])
		g.AddEdge(id[parent], "reportsTo_r", id[child])
	}
	reports("vp1", "ceo")
	reports("vp2", "ceo")
	reports("eng1", "vp1")
	reports("eng2", "vp1")
	reports("sales1", "vp2")

	// Same-level query: ascend k levels from x, descend k levels to y.
	gram := cfpq.MustParseGrammar(`
		Same -> reportsTo Same reportsTo_r | reportsTo reportsTo_r
	`)
	cnf, err := cfpq.ToCNF(gram)
	if err != nil {
		return err
	}

	ix, _, err := eng.Evaluate(ctx, g, cnf)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Same-level pairs (relational semantics):")
	for _, p := range ix.Relation("Same") {
		if p.I < p.J {
			fmt.Fprintf(w, "  %s ~ %s\n", people[p.I], people[p.J])
		}
	}

	// Single-path semantics: one witness per pair, with its length.
	px, err := eng.SinglePath(ctx, g, cnf)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nWitness paths (single-path semantics):")
	for _, lp := range px.Relation("Same") {
		if lp.I >= lp.J {
			continue
		}
		path, _ := px.Path("Same", lp.I, lp.J)
		fmt.Fprintf(w, "  %s ~ %s via", people[lp.I], people[lp.J])
		at := lp.I
		for _, edge := range path {
			fmt.Fprintf(w, " %s -%s->", people[at], edge.Label)
			at = edge.To
		}
		fmt.Fprintf(w, " %s\n", people[at])
	}

	// All-path semantics: enumerate every distinct witness for one pair.
	fmt.Fprintln(w, "\nAll paths eng1 ~ sales1 (all-path semantics):")
	paths, err := eng.AllPaths(ctx, g, ix, "Same", id["eng1"], id["sales1"],
		cfpq.AllPathsOptions{MaxPaths: 10})
	if err != nil {
		return err
	}
	for _, p := range paths {
		labels := make([]string, len(p))
		for i, e := range p {
			labels[i] = e.Label
		}
		fmt.Fprintf(w, "  length %d: %v\n", len(p), labels)
	}
	return nil
}
