package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the example end to end: relational, single-path and
// all-path semantics on the reporting hierarchy.
func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Same-level pairs (relational semantics):",
		"vp1 ~ vp2",
		"eng1 ~ sales1",
		"Witness paths (single-path semantics):",
		"All paths eng1 ~ sales1 (all-path semantics):",
		"length 4:",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
