package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the example end to end: snapshot, index save, WAL
// tee, crash recovery and warm start must all hold together.
func TestRun(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Session 1: closure over 6 modules",
		"Persisted index:",
		"db now depends on vuln",
		"1 WAL record(s) replayed",
		"warm handle ran 0 closure passes",
		"Has(app -> vuln) = true",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q\n---\n%s", want, out.String())
		}
	}
}
