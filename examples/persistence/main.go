// Persistence demonstrates the durable store behind `cfpqd -data-dir`:
// a session registers a graph, journals live edge additions write-ahead
// into a WAL, and persists an evaluated closure index; a "restart" then
// recovers everything from disk and answers the same queries without
// re-running any closure — including the consequences of edges that were
// only ever in the WAL.
//
// The scenario continues examples/dynamic's package-dependency graph:
// `imports` edges between modules, a vulnerability discovered mid-session,
// and a service restart in the middle of the incident.
//
// Run with:
//
//	go run ./examples/persistence
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"

	"cfpq"
	"cfpq/internal/store"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run holds the whole example; main is a thin shell so the package's smoke
// test can drive the same logic against a buffer.
func run(w io.Writer) error {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "cfpq-persistence-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	mods := []string{"app", "api", "auth", "db", "log", "vuln"}
	id := map[string]int{}
	for i, m := range mods {
		id[m] = i
	}

	// ---- Session 1: build, persist, journal, "crash" -----------------
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	g := cfpq.NewGraph(len(mods))
	for _, e := range [][2]string{
		{"app", "api"}, {"api", "auth"}, {"api", "db"}, {"auth", "log"}, {"db", "log"},
	} {
		g.AddEdge(id[e[0]], "imports", id[e[1]])
	}
	// The snapshot holds the graph and its node names.
	if err := st.CreateGraph("deps", g, mods); err != nil {
		return err
	}

	gram := cfpq.MustParseGrammar("Dep -> imports Dep | imports")
	cnf, err := cfpq.ToCNF(gram)
	if err != nil {
		return err
	}
	eng := cfpq.NewEngine(cfpq.Sparse)
	prep, err := eng.PrepareCNF(ctx, g.Clone(), cnf)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Session 1: closure over %d modules: %d Dep pairs in %d passes\n",
		len(mods), prep.Count(ctx, "Dep"), prep.Stats().Build.Iterations)

	// Persist the evaluated index at the current WAL position (seq 0: no
	// edges journaled yet).
	var buf bytes.Buffer
	if err := prep.WriteIndex(&buf); err != nil {
		return err
	}
	if err := st.SaveIndex("deps", "dep", "sparse", 0, buf.Bytes()); err != nil {
		return err
	}
	fmt.Fprintf(w, "Persisted index: %d bytes\n", buf.Len())

	// Tee subsequent mutations into the store's WAL, write-ahead: the
	// fsync happens before the in-memory patch.
	prep.AttachWAL(st.Log("deps"))
	fmt.Fprintln(w, "\nIncident! db starts importing vuln (journaled to the WAL):")
	if _, err := prep.AddEdges(ctx, cfpq.Edge{From: id["db"], Label: "imports", To: id["vuln"]}); err != nil {
		return err
	}
	for p := range prep.Pairs(ctx, "Dep") {
		if mods[p.J] == "vuln" {
			fmt.Fprintf(w, "  %s now depends on vuln\n", mods[p.I])
		}
	}
	// No snapshot, no graceful anything: the process "dies" here.
	if err := st.Close(); err != nil {
		return err
	}

	// ---- Session 2: recover and warm-start ---------------------------
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	defer st2.Close()
	g2, names, seq, err := st2.GraphState("deps")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nSession 2: recovered %q: %d nodes, %d edges, %d WAL record(s) replayed\n",
		"deps", g2.Nodes(), g2.EdgeCount(), seq)

	infos := st2.Indexes("deps")
	ix, idxSeq, err := st2.LoadIndex(infos[0], cnf, nil)
	if err != nil {
		return err
	}
	// The saved index predates the journaled edge; patch the difference
	// with the incremental delta closure — not a full re-evaluation.
	tail, ok := st2.EdgesSince("deps", idxSeq)
	if !ok {
		tail = g2.Edges() // compacted away: repair from the full edge set
	}
	stats, err := eng.Update(ctx, ix, tail...)
	if err != nil {
		return err
	}
	warm, err := eng.PrepareFromIndex(g2, cnf, ix)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Patched %d WAL edge(s) in %d passes; warm handle ran %d closure passes\n",
		len(tail), stats.Iterations, warm.Stats().Build.Iterations)
	fmt.Fprintf(w, "After restart, Has(app -> vuln) = %v (name table intact: node %d = %q)\n",
		warm.Has(ctx, "Dep", id["app"], id["vuln"]), id["vuln"], names[id["vuln"]])
	return nil
}
